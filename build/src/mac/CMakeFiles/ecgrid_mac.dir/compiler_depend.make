# Empty compiler generated dependencies file for ecgrid_mac.
# This may be replaced when dependencies are built.
