file(REMOVE_RECURSE
  "CMakeFiles/ecgrid_mac.dir/csma.cpp.o"
  "CMakeFiles/ecgrid_mac.dir/csma.cpp.o.d"
  "libecgrid_mac.a"
  "libecgrid_mac.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecgrid_mac.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
