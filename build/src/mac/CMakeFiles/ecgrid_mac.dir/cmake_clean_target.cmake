file(REMOVE_RECURSE
  "libecgrid_mac.a"
)
