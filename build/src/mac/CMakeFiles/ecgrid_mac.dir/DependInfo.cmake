
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mac/csma.cpp" "src/mac/CMakeFiles/ecgrid_mac.dir/csma.cpp.o" "gcc" "src/mac/CMakeFiles/ecgrid_mac.dir/csma.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/phy/CMakeFiles/ecgrid_phy.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ecgrid_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ecgrid_util.dir/DependInfo.cmake"
  "/root/repo/build/src/energy/CMakeFiles/ecgrid_energy.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/ecgrid_geo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
