# Empty dependencies file for ecgrid_phy.
# This may be replaced when dependencies are built.
