file(REMOVE_RECURSE
  "libecgrid_phy.a"
)
