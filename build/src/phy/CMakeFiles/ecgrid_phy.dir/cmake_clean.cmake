file(REMOVE_RECURSE
  "CMakeFiles/ecgrid_phy.dir/channel.cpp.o"
  "CMakeFiles/ecgrid_phy.dir/channel.cpp.o.d"
  "CMakeFiles/ecgrid_phy.dir/paging.cpp.o"
  "CMakeFiles/ecgrid_phy.dir/paging.cpp.o.d"
  "CMakeFiles/ecgrid_phy.dir/radio.cpp.o"
  "CMakeFiles/ecgrid_phy.dir/radio.cpp.o.d"
  "libecgrid_phy.a"
  "libecgrid_phy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecgrid_phy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
