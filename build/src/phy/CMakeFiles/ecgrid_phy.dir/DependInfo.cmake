
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/phy/channel.cpp" "src/phy/CMakeFiles/ecgrid_phy.dir/channel.cpp.o" "gcc" "src/phy/CMakeFiles/ecgrid_phy.dir/channel.cpp.o.d"
  "/root/repo/src/phy/paging.cpp" "src/phy/CMakeFiles/ecgrid_phy.dir/paging.cpp.o" "gcc" "src/phy/CMakeFiles/ecgrid_phy.dir/paging.cpp.o.d"
  "/root/repo/src/phy/radio.cpp" "src/phy/CMakeFiles/ecgrid_phy.dir/radio.cpp.o" "gcc" "src/phy/CMakeFiles/ecgrid_phy.dir/radio.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/energy/CMakeFiles/ecgrid_energy.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/ecgrid_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ecgrid_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ecgrid_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
