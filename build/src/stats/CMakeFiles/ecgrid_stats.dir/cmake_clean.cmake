file(REMOVE_RECURSE
  "CMakeFiles/ecgrid_stats.dir/energy_recorder.cpp.o"
  "CMakeFiles/ecgrid_stats.dir/energy_recorder.cpp.o.d"
  "CMakeFiles/ecgrid_stats.dir/packet_accounting.cpp.o"
  "CMakeFiles/ecgrid_stats.dir/packet_accounting.cpp.o.d"
  "CMakeFiles/ecgrid_stats.dir/timeseries.cpp.o"
  "CMakeFiles/ecgrid_stats.dir/timeseries.cpp.o.d"
  "CMakeFiles/ecgrid_stats.dir/trace_recorder.cpp.o"
  "CMakeFiles/ecgrid_stats.dir/trace_recorder.cpp.o.d"
  "libecgrid_stats.a"
  "libecgrid_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecgrid_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
