file(REMOVE_RECURSE
  "libecgrid_stats.a"
)
