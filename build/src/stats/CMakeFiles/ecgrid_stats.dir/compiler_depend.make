# Empty compiler generated dependencies file for ecgrid_stats.
# This may be replaced when dependencies are built.
