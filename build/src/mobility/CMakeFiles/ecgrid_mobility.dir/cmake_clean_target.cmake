file(REMOVE_RECURSE
  "libecgrid_mobility.a"
)
