# Empty compiler generated dependencies file for ecgrid_mobility.
# This may be replaced when dependencies are built.
