file(REMOVE_RECURSE
  "CMakeFiles/ecgrid_mobility.dir/grid_tracker.cpp.o"
  "CMakeFiles/ecgrid_mobility.dir/grid_tracker.cpp.o.d"
  "CMakeFiles/ecgrid_mobility.dir/mobility_model.cpp.o"
  "CMakeFiles/ecgrid_mobility.dir/mobility_model.cpp.o.d"
  "CMakeFiles/ecgrid_mobility.dir/random_walk.cpp.o"
  "CMakeFiles/ecgrid_mobility.dir/random_walk.cpp.o.d"
  "CMakeFiles/ecgrid_mobility.dir/random_waypoint.cpp.o"
  "CMakeFiles/ecgrid_mobility.dir/random_waypoint.cpp.o.d"
  "libecgrid_mobility.a"
  "libecgrid_mobility.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecgrid_mobility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
