# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("sim")
subdirs("geo")
subdirs("energy")
subdirs("mobility")
subdirs("phy")
subdirs("mac")
subdirs("net")
subdirs("traffic")
subdirs("stats")
subdirs("protocols")
subdirs("core")
subdirs("harness")
