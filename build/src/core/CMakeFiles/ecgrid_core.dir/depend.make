# Empty dependencies file for ecgrid_core.
# This may be replaced when dependencies are built.
