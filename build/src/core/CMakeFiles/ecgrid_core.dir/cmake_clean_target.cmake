file(REMOVE_RECURSE
  "libecgrid_core.a"
)
