file(REMOVE_RECURSE
  "CMakeFiles/ecgrid_core.dir/ecgrid_protocol.cpp.o"
  "CMakeFiles/ecgrid_core.dir/ecgrid_protocol.cpp.o.d"
  "libecgrid_core.a"
  "libecgrid_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecgrid_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
