file(REMOVE_RECURSE
  "CMakeFiles/ecgrid_energy.dir/battery.cpp.o"
  "CMakeFiles/ecgrid_energy.dir/battery.cpp.o.d"
  "libecgrid_energy.a"
  "libecgrid_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecgrid_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
