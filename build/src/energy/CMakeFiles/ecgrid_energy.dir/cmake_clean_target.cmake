file(REMOVE_RECURSE
  "libecgrid_energy.a"
)
