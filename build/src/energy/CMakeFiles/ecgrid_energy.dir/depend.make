# Empty dependencies file for ecgrid_energy.
# This may be replaced when dependencies are built.
