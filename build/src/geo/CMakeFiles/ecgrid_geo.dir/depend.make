# Empty dependencies file for ecgrid_geo.
# This may be replaced when dependencies are built.
