file(REMOVE_RECURSE
  "CMakeFiles/ecgrid_geo.dir/grid.cpp.o"
  "CMakeFiles/ecgrid_geo.dir/grid.cpp.o.d"
  "libecgrid_geo.a"
  "libecgrid_geo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecgrid_geo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
