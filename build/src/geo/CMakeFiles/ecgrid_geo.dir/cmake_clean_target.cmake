file(REMOVE_RECURSE
  "libecgrid_geo.a"
)
