file(REMOVE_RECURSE
  "CMakeFiles/ecgrid_harness.dir/scenario.cpp.o"
  "CMakeFiles/ecgrid_harness.dir/scenario.cpp.o.d"
  "libecgrid_harness.a"
  "libecgrid_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecgrid_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
