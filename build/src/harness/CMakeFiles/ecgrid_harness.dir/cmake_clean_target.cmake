file(REMOVE_RECURSE
  "libecgrid_harness.a"
)
