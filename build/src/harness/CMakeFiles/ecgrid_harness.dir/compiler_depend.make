# Empty compiler generated dependencies file for ecgrid_harness.
# This may be replaced when dependencies are built.
