file(REMOVE_RECURSE
  "CMakeFiles/ecgrid_util.dir/flags.cpp.o"
  "CMakeFiles/ecgrid_util.dir/flags.cpp.o.d"
  "CMakeFiles/ecgrid_util.dir/log.cpp.o"
  "CMakeFiles/ecgrid_util.dir/log.cpp.o.d"
  "libecgrid_util.a"
  "libecgrid_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecgrid_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
