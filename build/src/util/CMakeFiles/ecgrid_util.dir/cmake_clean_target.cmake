file(REMOVE_RECURSE
  "libecgrid_util.a"
)
