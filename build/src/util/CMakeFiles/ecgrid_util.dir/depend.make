# Empty dependencies file for ecgrid_util.
# This may be replaced when dependencies are built.
