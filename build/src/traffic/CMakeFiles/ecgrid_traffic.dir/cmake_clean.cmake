file(REMOVE_RECURSE
  "CMakeFiles/ecgrid_traffic.dir/cbr.cpp.o"
  "CMakeFiles/ecgrid_traffic.dir/cbr.cpp.o.d"
  "CMakeFiles/ecgrid_traffic.dir/flow_manager.cpp.o"
  "CMakeFiles/ecgrid_traffic.dir/flow_manager.cpp.o.d"
  "libecgrid_traffic.a"
  "libecgrid_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecgrid_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
