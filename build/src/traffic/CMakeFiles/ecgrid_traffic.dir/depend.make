# Empty dependencies file for ecgrid_traffic.
# This may be replaced when dependencies are built.
