
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/traffic/cbr.cpp" "src/traffic/CMakeFiles/ecgrid_traffic.dir/cbr.cpp.o" "gcc" "src/traffic/CMakeFiles/ecgrid_traffic.dir/cbr.cpp.o.d"
  "/root/repo/src/traffic/flow_manager.cpp" "src/traffic/CMakeFiles/ecgrid_traffic.dir/flow_manager.cpp.o" "gcc" "src/traffic/CMakeFiles/ecgrid_traffic.dir/flow_manager.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/ecgrid_net.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/ecgrid_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ecgrid_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ecgrid_util.dir/DependInfo.cmake"
  "/root/repo/build/src/protocols/CMakeFiles/ecgrid_protocols.dir/DependInfo.cmake"
  "/root/repo/build/src/mac/CMakeFiles/ecgrid_mac.dir/DependInfo.cmake"
  "/root/repo/build/src/phy/CMakeFiles/ecgrid_phy.dir/DependInfo.cmake"
  "/root/repo/build/src/mobility/CMakeFiles/ecgrid_mobility.dir/DependInfo.cmake"
  "/root/repo/build/src/energy/CMakeFiles/ecgrid_energy.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/ecgrid_geo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
