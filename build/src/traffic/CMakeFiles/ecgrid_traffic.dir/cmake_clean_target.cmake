file(REMOVE_RECURSE
  "libecgrid_traffic.a"
)
