file(REMOVE_RECURSE
  "CMakeFiles/ecgrid_protocols.dir/common/election.cpp.o"
  "CMakeFiles/ecgrid_protocols.dir/common/election.cpp.o.d"
  "CMakeFiles/ecgrid_protocols.dir/common/grid_protocol_base.cpp.o"
  "CMakeFiles/ecgrid_protocols.dir/common/grid_protocol_base.cpp.o.d"
  "CMakeFiles/ecgrid_protocols.dir/common/routing_engine.cpp.o"
  "CMakeFiles/ecgrid_protocols.dir/common/routing_engine.cpp.o.d"
  "CMakeFiles/ecgrid_protocols.dir/common/routing_table.cpp.o"
  "CMakeFiles/ecgrid_protocols.dir/common/routing_table.cpp.o.d"
  "CMakeFiles/ecgrid_protocols.dir/common/tables.cpp.o"
  "CMakeFiles/ecgrid_protocols.dir/common/tables.cpp.o.d"
  "CMakeFiles/ecgrid_protocols.dir/flooding/flooding_protocol.cpp.o"
  "CMakeFiles/ecgrid_protocols.dir/flooding/flooding_protocol.cpp.o.d"
  "CMakeFiles/ecgrid_protocols.dir/gaf/gaf_protocol.cpp.o"
  "CMakeFiles/ecgrid_protocols.dir/gaf/gaf_protocol.cpp.o.d"
  "libecgrid_protocols.a"
  "libecgrid_protocols.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecgrid_protocols.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
