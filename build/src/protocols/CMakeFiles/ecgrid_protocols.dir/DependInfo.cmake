
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/protocols/common/election.cpp" "src/protocols/CMakeFiles/ecgrid_protocols.dir/common/election.cpp.o" "gcc" "src/protocols/CMakeFiles/ecgrid_protocols.dir/common/election.cpp.o.d"
  "/root/repo/src/protocols/common/grid_protocol_base.cpp" "src/protocols/CMakeFiles/ecgrid_protocols.dir/common/grid_protocol_base.cpp.o" "gcc" "src/protocols/CMakeFiles/ecgrid_protocols.dir/common/grid_protocol_base.cpp.o.d"
  "/root/repo/src/protocols/common/routing_engine.cpp" "src/protocols/CMakeFiles/ecgrid_protocols.dir/common/routing_engine.cpp.o" "gcc" "src/protocols/CMakeFiles/ecgrid_protocols.dir/common/routing_engine.cpp.o.d"
  "/root/repo/src/protocols/common/routing_table.cpp" "src/protocols/CMakeFiles/ecgrid_protocols.dir/common/routing_table.cpp.o" "gcc" "src/protocols/CMakeFiles/ecgrid_protocols.dir/common/routing_table.cpp.o.d"
  "/root/repo/src/protocols/common/tables.cpp" "src/protocols/CMakeFiles/ecgrid_protocols.dir/common/tables.cpp.o" "gcc" "src/protocols/CMakeFiles/ecgrid_protocols.dir/common/tables.cpp.o.d"
  "/root/repo/src/protocols/flooding/flooding_protocol.cpp" "src/protocols/CMakeFiles/ecgrid_protocols.dir/flooding/flooding_protocol.cpp.o" "gcc" "src/protocols/CMakeFiles/ecgrid_protocols.dir/flooding/flooding_protocol.cpp.o.d"
  "/root/repo/src/protocols/gaf/gaf_protocol.cpp" "src/protocols/CMakeFiles/ecgrid_protocols.dir/gaf/gaf_protocol.cpp.o" "gcc" "src/protocols/CMakeFiles/ecgrid_protocols.dir/gaf/gaf_protocol.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/ecgrid_net.dir/DependInfo.cmake"
  "/root/repo/build/src/energy/CMakeFiles/ecgrid_energy.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/ecgrid_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ecgrid_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ecgrid_util.dir/DependInfo.cmake"
  "/root/repo/build/src/mac/CMakeFiles/ecgrid_mac.dir/DependInfo.cmake"
  "/root/repo/build/src/phy/CMakeFiles/ecgrid_phy.dir/DependInfo.cmake"
  "/root/repo/build/src/mobility/CMakeFiles/ecgrid_mobility.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
