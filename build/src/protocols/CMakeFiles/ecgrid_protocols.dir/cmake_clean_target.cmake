file(REMOVE_RECURSE
  "libecgrid_protocols.a"
)
