# Empty dependencies file for ecgrid_protocols.
# This may be replaced when dependencies are built.
