file(REMOVE_RECURSE
  "CMakeFiles/ecgrid_sim.dir/event.cpp.o"
  "CMakeFiles/ecgrid_sim.dir/event.cpp.o.d"
  "CMakeFiles/ecgrid_sim.dir/rng.cpp.o"
  "CMakeFiles/ecgrid_sim.dir/rng.cpp.o.d"
  "CMakeFiles/ecgrid_sim.dir/simulator.cpp.o"
  "CMakeFiles/ecgrid_sim.dir/simulator.cpp.o.d"
  "libecgrid_sim.a"
  "libecgrid_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecgrid_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
