# Empty compiler generated dependencies file for ecgrid_sim.
# This may be replaced when dependencies are built.
