file(REMOVE_RECURSE
  "libecgrid_sim.a"
)
