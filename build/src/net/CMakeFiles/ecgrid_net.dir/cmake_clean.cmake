file(REMOVE_RECURSE
  "CMakeFiles/ecgrid_net.dir/network.cpp.o"
  "CMakeFiles/ecgrid_net.dir/network.cpp.o.d"
  "CMakeFiles/ecgrid_net.dir/node.cpp.o"
  "CMakeFiles/ecgrid_net.dir/node.cpp.o.d"
  "libecgrid_net.a"
  "libecgrid_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecgrid_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
