file(REMOVE_RECURSE
  "libecgrid_net.a"
)
