# Empty compiler generated dependencies file for ecgrid_net.
# This may be replaced when dependencies are built.
