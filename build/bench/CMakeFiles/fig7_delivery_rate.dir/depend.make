# Empty dependencies file for fig7_delivery_rate.
# This may be replaced when dependencies are built.
