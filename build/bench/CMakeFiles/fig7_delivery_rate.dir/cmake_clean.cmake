file(REMOVE_RECURSE
  "CMakeFiles/fig7_delivery_rate.dir/fig7_delivery_rate.cpp.o"
  "CMakeFiles/fig7_delivery_rate.dir/fig7_delivery_rate.cpp.o.d"
  "fig7_delivery_rate"
  "fig7_delivery_rate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_delivery_rate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
