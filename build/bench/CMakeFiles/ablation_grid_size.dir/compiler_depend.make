# Empty compiler generated dependencies file for ablation_grid_size.
# This may be replaced when dependencies are built.
