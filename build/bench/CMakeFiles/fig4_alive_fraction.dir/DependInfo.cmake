
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig4_alive_fraction.cpp" "bench/CMakeFiles/fig4_alive_fraction.dir/fig4_alive_fraction.cpp.o" "gcc" "bench/CMakeFiles/fig4_alive_fraction.dir/fig4_alive_fraction.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/ecgrid_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ecgrid_core.dir/DependInfo.cmake"
  "/root/repo/build/src/traffic/CMakeFiles/ecgrid_traffic.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/ecgrid_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/protocols/CMakeFiles/ecgrid_protocols.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/ecgrid_net.dir/DependInfo.cmake"
  "/root/repo/build/src/mac/CMakeFiles/ecgrid_mac.dir/DependInfo.cmake"
  "/root/repo/build/src/phy/CMakeFiles/ecgrid_phy.dir/DependInfo.cmake"
  "/root/repo/build/src/energy/CMakeFiles/ecgrid_energy.dir/DependInfo.cmake"
  "/root/repo/build/src/mobility/CMakeFiles/ecgrid_mobility.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/ecgrid_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ecgrid_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ecgrid_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
