file(REMOVE_RECURSE
  "CMakeFiles/fig4_alive_fraction.dir/fig4_alive_fraction.cpp.o"
  "CMakeFiles/fig4_alive_fraction.dir/fig4_alive_fraction.cpp.o.d"
  "fig4_alive_fraction"
  "fig4_alive_fraction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_alive_fraction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
