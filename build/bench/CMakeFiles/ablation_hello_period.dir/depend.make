# Empty dependencies file for ablation_hello_period.
# This may be replaced when dependencies are built.
