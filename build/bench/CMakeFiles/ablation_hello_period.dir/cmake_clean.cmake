file(REMOVE_RECURSE
  "CMakeFiles/ablation_hello_period.dir/ablation_hello_period.cpp.o"
  "CMakeFiles/ablation_hello_period.dir/ablation_hello_period.cpp.o.d"
  "ablation_hello_period"
  "ablation_hello_period.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_hello_period.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
