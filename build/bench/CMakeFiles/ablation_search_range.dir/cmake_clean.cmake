file(REMOVE_RECURSE
  "CMakeFiles/ablation_search_range.dir/ablation_search_range.cpp.o"
  "CMakeFiles/ablation_search_range.dir/ablation_search_range.cpp.o.d"
  "ablation_search_range"
  "ablation_search_range.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_search_range.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
