# Empty dependencies file for ablation_sleep.
# This may be replaced when dependencies are built.
