file(REMOVE_RECURSE
  "CMakeFiles/fig8_density.dir/fig8_density.cpp.o"
  "CMakeFiles/fig8_density.dir/fig8_density.cpp.o.d"
  "fig8_density"
  "fig8_density.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_density.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
