# Empty compiler generated dependencies file for fig8_density.
# This may be replaced when dependencies are built.
