
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/ecgrid_protocol_test.cpp" "tests/CMakeFiles/ecgrid_tests.dir/ecgrid_protocol_test.cpp.o" "gcc" "tests/CMakeFiles/ecgrid_tests.dir/ecgrid_protocol_test.cpp.o.d"
  "/root/repo/tests/election_test.cpp" "tests/CMakeFiles/ecgrid_tests.dir/election_test.cpp.o" "gcc" "tests/CMakeFiles/ecgrid_tests.dir/election_test.cpp.o.d"
  "/root/repo/tests/energy_test.cpp" "tests/CMakeFiles/ecgrid_tests.dir/energy_test.cpp.o" "gcc" "tests/CMakeFiles/ecgrid_tests.dir/energy_test.cpp.o.d"
  "/root/repo/tests/gaf_protocol_test.cpp" "tests/CMakeFiles/ecgrid_tests.dir/gaf_protocol_test.cpp.o" "gcc" "tests/CMakeFiles/ecgrid_tests.dir/gaf_protocol_test.cpp.o.d"
  "/root/repo/tests/geo_test.cpp" "tests/CMakeFiles/ecgrid_tests.dir/geo_test.cpp.o" "gcc" "tests/CMakeFiles/ecgrid_tests.dir/geo_test.cpp.o.d"
  "/root/repo/tests/grid_protocol_test.cpp" "tests/CMakeFiles/ecgrid_tests.dir/grid_protocol_test.cpp.o" "gcc" "tests/CMakeFiles/ecgrid_tests.dir/grid_protocol_test.cpp.o.d"
  "/root/repo/tests/mac_test.cpp" "tests/CMakeFiles/ecgrid_tests.dir/mac_test.cpp.o" "gcc" "tests/CMakeFiles/ecgrid_tests.dir/mac_test.cpp.o.d"
  "/root/repo/tests/messages_test.cpp" "tests/CMakeFiles/ecgrid_tests.dir/messages_test.cpp.o" "gcc" "tests/CMakeFiles/ecgrid_tests.dir/messages_test.cpp.o.d"
  "/root/repo/tests/mobility_test.cpp" "tests/CMakeFiles/ecgrid_tests.dir/mobility_test.cpp.o" "gcc" "tests/CMakeFiles/ecgrid_tests.dir/mobility_test.cpp.o.d"
  "/root/repo/tests/net_test.cpp" "tests/CMakeFiles/ecgrid_tests.dir/net_test.cpp.o" "gcc" "tests/CMakeFiles/ecgrid_tests.dir/net_test.cpp.o.d"
  "/root/repo/tests/phy_test.cpp" "tests/CMakeFiles/ecgrid_tests.dir/phy_test.cpp.o" "gcc" "tests/CMakeFiles/ecgrid_tests.dir/phy_test.cpp.o.d"
  "/root/repo/tests/property_test.cpp" "tests/CMakeFiles/ecgrid_tests.dir/property_test.cpp.o" "gcc" "tests/CMakeFiles/ecgrid_tests.dir/property_test.cpp.o.d"
  "/root/repo/tests/routing_engine_unit_test.cpp" "tests/CMakeFiles/ecgrid_tests.dir/routing_engine_unit_test.cpp.o" "gcc" "tests/CMakeFiles/ecgrid_tests.dir/routing_engine_unit_test.cpp.o.d"
  "/root/repo/tests/routing_test.cpp" "tests/CMakeFiles/ecgrid_tests.dir/routing_test.cpp.o" "gcc" "tests/CMakeFiles/ecgrid_tests.dir/routing_test.cpp.o.d"
  "/root/repo/tests/scenario_test.cpp" "tests/CMakeFiles/ecgrid_tests.dir/scenario_test.cpp.o" "gcc" "tests/CMakeFiles/ecgrid_tests.dir/scenario_test.cpp.o.d"
  "/root/repo/tests/sim_test.cpp" "tests/CMakeFiles/ecgrid_tests.dir/sim_test.cpp.o" "gcc" "tests/CMakeFiles/ecgrid_tests.dir/sim_test.cpp.o.d"
  "/root/repo/tests/tables_test.cpp" "tests/CMakeFiles/ecgrid_tests.dir/tables_test.cpp.o" "gcc" "tests/CMakeFiles/ecgrid_tests.dir/tables_test.cpp.o.d"
  "/root/repo/tests/traffic_stats_test.cpp" "tests/CMakeFiles/ecgrid_tests.dir/traffic_stats_test.cpp.o" "gcc" "tests/CMakeFiles/ecgrid_tests.dir/traffic_stats_test.cpp.o.d"
  "/root/repo/tests/util_test.cpp" "tests/CMakeFiles/ecgrid_tests.dir/util_test.cpp.o" "gcc" "tests/CMakeFiles/ecgrid_tests.dir/util_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/ecgrid_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ecgrid_core.dir/DependInfo.cmake"
  "/root/repo/build/src/traffic/CMakeFiles/ecgrid_traffic.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/ecgrid_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/protocols/CMakeFiles/ecgrid_protocols.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/ecgrid_net.dir/DependInfo.cmake"
  "/root/repo/build/src/mac/CMakeFiles/ecgrid_mac.dir/DependInfo.cmake"
  "/root/repo/build/src/phy/CMakeFiles/ecgrid_phy.dir/DependInfo.cmake"
  "/root/repo/build/src/energy/CMakeFiles/ecgrid_energy.dir/DependInfo.cmake"
  "/root/repo/build/src/mobility/CMakeFiles/ecgrid_mobility.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/ecgrid_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ecgrid_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ecgrid_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
