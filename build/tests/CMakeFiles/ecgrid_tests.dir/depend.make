# Empty dependencies file for ecgrid_tests.
# This may be replaced when dependencies are built.
