file(REMOVE_RECURSE
  "CMakeFiles/convoy_patrol.dir/convoy_patrol.cpp.o"
  "CMakeFiles/convoy_patrol.dir/convoy_patrol.cpp.o.d"
  "convoy_patrol"
  "convoy_patrol.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/convoy_patrol.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
