# Empty compiler generated dependencies file for convoy_patrol.
# This may be replaced when dependencies are built.
