// Quickstart: run one ECGRID scenario and print the headline numbers.
//
//   $ ./quickstart [--protocol ECGRID|GRID|GAF|FLOOD] [--hosts N]
//                  [--speed M/S] [--duration S] [--seed N] [--shards N]
//                  [--trace-events PATH] [--telemetry PATH] [--profile]
//                  [--log SPEC]
//
// This is the smallest complete use of the library: configure a scenario,
// run it, read the result. The observability flags:
//   --trace-events=ev.jsonl  write protocol event spans (convert with
//                            tools/trace_chrome.py, open in Perfetto)
//   --telemetry=tm.jsonl     stream run-health samples (ecgrid-telemetry
//                            v1; validate with tools/trace_check.py)
//   --telemetry-every=N      telemetry cadence in committed events
//   --profile                per-event-label dispatch counts + wall time
//   --log=info,mac=debug     per-component log levels with sim-time stamps
#include <algorithm>
#include <cstdio>
#include <vector>

#include "harness/scenario.hpp"
#include "util/flags.hpp"
#include "util/log.hpp"

int main(int argc, char** argv) {
  using namespace ecgrid;

  util::Flags flags(argc, argv,
                    {"protocol", "hosts", "speed", "duration", "seed",
                     "flows", "pps", "latency-percentiles", "trace-events",
                     "telemetry", "telemetry-every", "shards", "profile",
                     "log"});

  harness::ScenarioConfig config;
  auto protocol =
      harness::protocolFromString(flags.getString("protocol", "ECGRID"));
  if (!protocol.has_value()) {
    std::fprintf(stderr, "unknown protocol\n");
    return 1;
  }
  config.protocol = *protocol;
  config.hostCount = flags.getInt("hosts", 100);
  config.maxSpeed = flags.getDouble("speed", 1.0);
  config.duration = flags.getDouble("duration", 600.0);
  config.seed = static_cast<std::uint64_t>(flags.getInt("seed", 1));
  config.flowCount = flags.getInt("flows", 10);
  config.packetsPerSecondPerFlow = flags.getDouble("pps", 1.0);
  config.eventTracePath = flags.getString("trace-events", "");
  config.telemetryPath = flags.getString("telemetry", "");
  config.telemetryEveryEvents =
      static_cast<std::uint64_t>(flags.getInt("telemetry-every", 16384));
  config.shards = flags.getInt("shards", 1);
  config.profileSimulator = flags.getBool("profile", false);
  if (flags.has("log")) {
    util::Logger::configure(flags.getString("log", "info"));
  }

  std::printf("ECGRID quickstart — protocol=%s hosts=%d speed=%.1f m/s "
              "duration=%.0f s\n",
              harness::toString(config.protocol), config.hostCount,
              config.maxSpeed, config.duration);

  harness::ScenarioResult result = harness::runScenario(config);

  std::printf("  events executed      : %llu\n",
              static_cast<unsigned long long>(result.eventsExecuted));
  std::printf("  frames on the air    : %llu\n",
              static_cast<unsigned long long>(result.framesTransmitted));
  std::printf("  RAS pages sent       : %llu\n",
              static_cast<unsigned long long>(result.pagesSent));
  std::printf("  packets sent/received: %llu / %llu (PDR %.2f%%)\n",
              static_cast<unsigned long long>(result.packetsSent),
              static_cast<unsigned long long>(result.packetsReceived),
              100.0 * result.deliveryRate);
  std::printf("  mean latency         : %.2f ms (p95 %.2f ms)\n",
              1e3 * result.meanLatencySeconds, 1e3 * result.p95LatencySeconds);
  std::printf("  median latency       : %.2f ms\n",
              1e3 * result.p50LatencySeconds);
  std::printf("  first host death     : %s\n",
              result.firstDeath >= sim::kTimeNever
                  ? "none"
                  : (std::to_string(result.firstDeath) + " s").c_str());
  std::printf("  alive at end         : %.0f%%\n",
              100.0 * result.aliveFraction.points().back().second);
  std::printf("  alive curve          :");
  for (double t : {200.0, 400.0, 600.0, 800.0, 1000.0, 1200.0, 1600.0,
                   2000.0}) {
    if (t > config.duration) break;
    std::printf(" %.0f:%.2f", t, result.aliveFraction.valueAt(t));
  }
  std::printf("\n");
  std::printf("  awake curve          :");
  for (double t : {100.0, 300.0, 500.0, 700.0, 900.0}) {
    if (t > config.duration) break;
    std::printf(" %.0f:%.2f", t, result.awakeFraction.valueAt(t));
  }
  std::printf("\n");
  std::printf("  aen at end           : %.3f\n",
              result.aen.points().back().second);
  if (flags.getBool("latency-percentiles", false) &&
      !result.latencies.empty()) {
    std::vector<double> sorted = result.latencies;
    std::sort(sorted.begin(), sorted.end());
    for (double p : {5.0, 10.0, 25.0, 50.0, 75.0, 90.0, 95.0, 99.0}) {
      std::size_t idx =
          static_cast<std::size_t>(p / 100.0 * (sorted.size() - 1));
      std::printf("  latency p%-4.0f        : %.1f ms\n", p,
                  1e3 * sorted[idx]);
    }
  }
  std::printf("  mac: sent=%llu dropped=%llu retx=%llu acks=%llu/skip=%llu\n",
              static_cast<unsigned long long>(result.macFramesSent),
              static_cast<unsigned long long>(result.macFramesDropped),
              static_cast<unsigned long long>(result.macRetransmissions),
              static_cast<unsigned long long>(result.macAcksSent),
              static_cast<unsigned long long>(result.macAcksSkipped));
  std::printf(
      "  routing: originated=%llu forwarded=%llu delivered=%llu "
      "dropped=%llu rreq=%llu rrep=%llu rerr=%llu disc=%llu discFail=%llu\n",
      static_cast<unsigned long long>(result.routing.dataOriginated),
      static_cast<unsigned long long>(result.routing.dataForwarded),
      static_cast<unsigned long long>(result.routing.dataDeliveredLocal),
      static_cast<unsigned long long>(result.routing.dataDropped),
      static_cast<unsigned long long>(result.routing.rreqsSent),
      static_cast<unsigned long long>(result.routing.rrepsSent),
      static_cast<unsigned long long>(result.routing.rerrsSent),
      static_cast<unsigned long long>(result.routing.discoveriesStarted),
      static_cast<unsigned long long>(result.routing.discoveriesFailed));
  if (!config.eventTracePath.empty()) {
    std::printf("  event trace          : %s (%llu events; convert with "
                "tools/trace_chrome.py)\n",
                config.eventTracePath.c_str(),
                static_cast<unsigned long long>(result.traceEventsWritten));
  }
  if (!config.telemetryPath.empty()) {
    std::printf("  telemetry            : %s (%llu samples; peak queue %llu, "
                "slab %llu slots; validate with tools/trace_check.py)\n",
                config.telemetryPath.c_str(),
                static_cast<unsigned long long>(result.telemetrySamples),
                static_cast<unsigned long long>(result.peakQueueDepth),
                static_cast<unsigned long long>(result.slabSlotsTotal));
  }
  if (config.profileSimulator) {
    std::printf("  profile (top event labels by wall time):\n");
    std::vector<std::pair<double, std::string>> byWall;
    const std::string prefix = "profile.events.";
    const std::string suffix = ".wall_s";
    for (const auto& [name, value] : result.metrics) {
      if (name.size() > prefix.size() + suffix.size() &&
          name.compare(0, prefix.size(), prefix) == 0 &&
          name.compare(name.size() - suffix.size(), suffix.size(), suffix) ==
              0) {
        byWall.emplace_back(
            value, name.substr(prefix.size(),
                               name.size() - prefix.size() - suffix.size()));
      }
    }
    std::sort(byWall.rbegin(), byWall.rend());
    for (std::size_t i = 0; i < byWall.size() && i < 6; ++i) {
      auto countIt =
          result.metrics.find(prefix + byWall[i].second + ".count");
      std::printf("    %-22s %10.0f events %9.3f s\n",
                  byWall[i].second.c_str(),
                  countIt != result.metrics.end() ? countIt->second : 0.0,
                  byWall[i].first);
    }
  }
  return 0;
}
