// Disaster-relief deployment — the paper's motivating scenario family
// ("natural disasters, battle fields": rapidly deployed, no infrastructure,
// batteries are everything).
//
// A search-and-rescue operation covers a 1 km² collapsed-structures zone:
//   * a static command post in one corner;
//   * field teams sweeping the area on foot (slow random waypoint);
//   * every team reports a status packet to the command post every few
//     seconds, and the post periodically pushes tasking to a team.
// The question a mission planner asks: with ECGRID, how much longer does
// the mesh outlive a plain GRID deployment, and is any reporting lost?
#include <cstdio>
#include <memory>

#include "core/ecgrid_protocol.hpp"
#include "mobility/random_waypoint.hpp"
#include "protocols/grid/grid_protocol.hpp"
#include "stats/energy_recorder.hpp"
#include "stats/packet_accounting.hpp"
#include "util/flags.hpp"

namespace {

using namespace ecgrid;

struct MissionResult {
  double earlyReportPct = 0.0;       ///< delivery during minutes 0–10
  double lateReportPct = 0.0;        ///< delivery during minutes 10–13
  std::uint64_t lateReportCount = 0;  ///< absolute deliveries after min 10
  double taskingDeliveryPct = 0.0;
  double meshAliveAtEnd = 0.0;
  sim::Time firstRadioDeath = sim::kTimeNever;
};

constexpr double kMissionSeconds = 780.0;  // a 13-minute operation
constexpr double kLateWindowStart = 600.0;

MissionResult runMission(bool useEcgrid, int teams, std::uint64_t seed) {
  sim::Simulator simulator(seed);
  net::NetworkConfig netConfig;  // paper radio: 2 Mbps, 250 m, d = 100 m
  net::Network network(simulator, netConfig);

  // Location oracle: rescue teams carry GPS and share coarse positions.
  auto oracle = [&network](net::NodeId id) -> std::optional<geo::GridCoord> {
    net::Node* node = network.findNode(id);
    if (node == nullptr || !node->alive()) return std::nullopt;
    return node->cell();
  };

  auto installProtocol = [&](net::Node& node) {
    if (useEcgrid) {
      core::EcgridConfig config;
      config.base.locationHint = oracle;
      node.setProtocol(std::make_unique<core::EcgridProtocol>(node, config));
    } else {
      protocols::GridProtocolConfig config;
      config.locationHint = oracle;
      node.setProtocol(
          std::make_unique<protocols::GridProtocol>(node, config));
    }
  };

  // Command post: corner of the zone, generator-powered (infinite).
  const net::NodeId kPost = 0;
  {
    net::NodeConfig config;
    config.id = kPost;
    config.infiniteBattery = true;
    net::Node& node = network.addNode(
        std::make_unique<mobility::StaticMobility>(geo::Vec2{60.0, 60.0}),
        config);
    installProtocol(node);
  }
  // Field teams: battery radios, walking pace.
  mobility::RandomWaypointConfig walk;
  walk.maxSpeed = 1.5;  // m/s, on foot through rubble
  walk.pauseTime = 20.0;
  for (int i = 1; i <= teams; ++i) {
    net::NodeConfig config;
    config.id = i;
    config.batteryCapacityJ = 500.0;
    net::Node& node = network.addNode(
        std::make_unique<mobility::RandomWaypoint>(
            walk, simulator.rng().stream("walk", i)),
        config);
    installProtocol(node);
  }

  stats::PacketAccounting earlyReports;  // team -> post, minutes 0–9
  stats::PacketAccounting lateReports;   // team -> post, minutes 10–15
  stats::PacketAccounting tasking;       // post -> team
  for (std::size_t i = 0; i < network.nodeCount(); ++i) {
    net::Node& node = network.node(i);
    if (node.id() == kPost) {
      node.setAppReceiveCallback(
          [&](net::NodeId, const net::DataTag& tag, int) {
            (tag.sentAt < kLateWindowStart ? earlyReports : lateReports)
                .onReceived(tag, simulator.now());
          });
    } else {
      node.setAppReceiveCallback(
          [&](net::NodeId, const net::DataTag& tag, int) {
            tasking.onReceived(tag, simulator.now());
          });
    }
  }
  stats::EnergyRecorder recorder(network, 10.0);

  // Status reports: each team, one 200 B packet every 5 s (staggered).
  // Self-rescheduling closures live on the heap so they outlive this
  // set-up scope.
  for (int i = 1; i <= teams; ++i) {
    double phase = simulator.rng().stream("phase", i).uniform(0.0, 5.0);
    auto seq = std::make_shared<std::uint64_t>(0);
    auto report = std::make_shared<std::function<void()>>();
    *report = [&, i, seq, report]() {
      net::Node* team = network.findNode(i);
      if (team == nullptr) return;
      net::DataTag tag{static_cast<std::uint64_t>(i), (*seq)++,
                       simulator.now()};
      (simulator.now() < kLateWindowStart ? earlyReports : lateReports)
          .onSent(tag.flowId, tag.sequence, team->alive());
      team->sendFromApp(kPost, 200, tag);
      simulator.schedule(5.0, *report);
    };
    simulator.schedule(1.0 + phase, *report);
  }
  // Tasking: the post addresses a rotating team once per second.
  {
    auto seq = std::make_shared<std::uint64_t>(0);
    auto task = std::make_shared<std::function<void()>>();
    *task = [&, seq, task]() {
      net::NodeId target = 1 + static_cast<net::NodeId>(*seq % teams);
      net::DataTag tag{1000, (*seq)++, simulator.now()};
      if (network.findNode(target)->alive()) {
        tasking.onSent(tag.flowId, tag.sequence, true);
        network.findNode(kPost)->sendFromApp(target, 200, tag);
      }
      simulator.schedule(1.0, *task);
    };
    simulator.schedule(1.5, *task);
  }

  network.start();
  simulator.run(kMissionSeconds);
  recorder.sample();

  MissionResult result;
  result.earlyReportPct = 100.0 * earlyReports.deliveryRate();
  result.lateReportPct = 100.0 * lateReports.deliveryRate();
  result.lateReportCount = lateReports.packetsReceived();
  result.taskingDeliveryPct = 100.0 * tasking.deliveryRate();
  result.meshAliveAtEnd = recorder.aliveFraction().valueAt(kMissionSeconds);
  result.firstRadioDeath = recorder.firstDeath();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(argc, argv, {"teams", "seed"});
  int teams = flags.getInt("teams", 80);
  std::uint64_t seed = static_cast<std::uint64_t>(flags.getInt("seed", 3));

  std::printf("Disaster-relief mesh: %d field teams + command post, "
              "1 km^2, 13 min mission\n\n", teams);
  std::printf("  %-10s %15s %12s %12s %11s %14s\n", "protocol",
              "reports 0-10m%", "late rcvd", "tasking%", "alive@end",
              "1st death (s)");
  for (bool useEcgrid : {false, true}) {
    MissionResult r = runMission(useEcgrid, teams, seed);
    std::printf("  %-10s %15.2f %12llu %12.2f %11.2f %14.0f\n",
                useEcgrid ? "ECGRID" : "GRID", r.earlyReportPct,
                static_cast<unsigned long long>(r.lateReportCount),
                r.taskingDeliveryPct, r.meshAliveAtEnd,
                r.firstRadioDeath >= sim::kTimeNever ? -1.0
                                                     : r.firstRadioDeath);
  }
  std::printf("\nThe story: both meshes report fine for the first nine "
              "minutes; at ~9.6 min GRID's radios hit\nthe 500 J wall and "
              "deliver nothing afterwards ('late rcvd'), while the ECGRID "
              "mesh keeps\nreporting through the end of the mission.\n");
  return 0;
}
