// Degraded network — ECGRID under burst loss and gateway crashes.
//
// The paper evaluates ECGRID on an ideal channel where hosts die only by
// battery depletion. Real deployments are messier: urban multipath fades
// frames in bursts, and the host elected gateway is exactly the one whose
// owner trips over it. This example runs an ECGRID mesh through both at
// once, using the fault layer (src/fault) at its two API levels:
//
//   * a FaultPlan + FaultInjector arm a Gilbert–Elliott channel whose
//     stationary loss is 20 % (bursts of ~20 frames — a deep fade, not
//     i.i.d. sprinkle), and 5 % RAS paging loss on top;
//   * two hosts that are actually serving as gateways at t = 150 s are
//     crashed directly via Node::crash() and rebooted 45 s later with
//     Node::restart() — the protocol stack comes back blank, like a real
//     reboot.
//
// What to watch: delivery sags but does not collapse (the MAC's ARQ eats
// most of the burst losses), and each crashed grid re-elects a gateway
// within a HELLO period or two, so the mesh routes around the hole before
// the crashed hosts even reboot.
#include <cstdio>
#include <memory>

#include "core/ecgrid_protocol.hpp"
#include "fault/fault_injector.hpp"
#include "mobility/random_waypoint.hpp"
#include "protocols/common/grid_protocol_base.hpp"
#include "stats/packet_accounting.hpp"
#include "util/flags.hpp"

namespace {

using namespace ecgrid;

constexpr double kRunSeconds = 600.0;
constexpr double kCrashAt = 150.0;
constexpr double kRebootAfter = 45.0;

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(argc, argv, {"hosts", "seed"});
  const int hosts = flags.getInt("hosts", 60);
  const std::uint64_t seed =
      static_cast<std::uint64_t>(flags.getInt("seed", 7));

  sim::Simulator simulator(seed);
  net::NetworkConfig netConfig;  // paper radio: 2 Mbps, 250 m, d = 100 m
  net::Network network(simulator, netConfig);

  auto oracle = [&network](net::NodeId id) -> std::optional<geo::GridCoord> {
    net::Node* node = network.findNode(id);
    if (node == nullptr || !node->alive()) return std::nullopt;
    return node->cell();
  };

  mobility::RandomWaypointConfig walk;
  walk.maxSpeed = 1.0;
  for (int i = 0; i < hosts; ++i) {
    net::NodeConfig config;
    config.id = i;
    config.batteryCapacityJ = 500.0;
    net::Node& node = network.addNode(
        std::make_unique<mobility::RandomWaypoint>(
            walk, simulator.rng().stream("walk", i)),
        config);
    // Factory install so restart() can rebuild the stack after a crash.
    node.setProtocolFactory([&node, oracle] {
      core::EcgridConfig config;
      config.base.locationHint = oracle;
      return std::make_unique<core::EcgridProtocol>(node, config);
    });
  }

  // The adverse conditions: a bursty 20 %-loss channel plus flaky paging.
  fault::FaultPlan plan;
  plan.channel.kind = fault::ChannelErrorKind::kGilbertElliott;
  plan.channel.pBadToGood = 0.05;  // mean burst = 20 frames
  plan.channel.pGoodToBad =
      fault::gilbertElliottPGoodToBad(0.20, plan.channel.pBadToGood);
  plan.paging.lossProbability = 0.05;
  fault::FaultInjector injector(simulator, network, plan);

  // Traffic: five hosts each report 200 B to host 0 once per second.
  stats::PacketAccounting accounting;
  for (int i = 1; i <= 5; ++i) {
    auto seq = std::make_shared<std::uint64_t>(0);
    auto send = std::make_shared<std::function<void()>>();
    *send = [&, i, seq, send]() {
      net::Node* src = network.findNode(i);
      net::DataTag tag{static_cast<std::uint64_t>(i), (*seq)++,
                       simulator.now()};
      accounting.onSent(tag.flowId, tag.sequence, src->alive());
      src->sendFromApp(0, 200, tag);
      simulator.schedule(1.0, *send);
    };
    simulator.schedule(1.0 + 0.1 * i, *send);
  }
  network.findNode(0)->setAppReceiveCallback(
      [&](net::NodeId, const net::DataTag& tag, int) {
        accounting.onReceived(tag, simulator.now());
      });

  // At t = 150 s, crash two hosts that are gateways RIGHT NOW — the worst
  // hosts to lose — and reboot them 45 s later.
  auto crashedIds = std::make_shared<std::vector<net::NodeId>>();
  simulator.scheduleAt(kCrashAt, [&network, &simulator, crashedIds] {
    for (auto& node : network.nodes()) {
      if (crashedIds->size() >= 2) break;
      auto* grid =
          dynamic_cast<protocols::GridProtocolBase*>(&node->protocol());
      if (grid == nullptr || !grid->isGateway() || !node->alive()) continue;
      std::printf("  t=%.0f: gateway %d (grid %ld,%ld) crashes\n",
                  simulator.now(), node->id(),
                  static_cast<long>(node->cell().x),
                  static_cast<long>(node->cell().y));
      crashedIds->push_back(node->id());
      net::Node* raw = node.get();
      raw->crash();
      simulator.schedule(kRebootAfter, [raw, &simulator] {
        std::printf("  t=%.0f: host %d reboots with a blank stack\n",
                    simulator.now(), raw->id());
        raw->restart();
      });
    }
  });

  std::printf("Degraded ECGRID mesh: %d hosts, 20%% burst loss, 5%% paging "
              "loss,\ntwo gateway crashes at t=%.0f s (reboot after %.0f "
              "s), %.0f s run\n\n",
              hosts, kCrashAt, kRebootAfter, kRunSeconds);

  network.start();
  simulator.run(kRunSeconds);

  std::printf("\n  delivery rate        %6.2f %%\n",
              100.0 * accounting.deliveryRate());
  std::printf("  mean latency         %6.1f ms\n",
              1e3 * accounting.meanLatency());
  std::printf("  corrupted deliveries %6llu  (channel fault)\n",
              static_cast<unsigned long long>(
                  network.channel().deliveriesCorrupted()));
  std::printf("  pages lost           %6llu  (paging fault)\n",
              static_cast<unsigned long long>(network.paging().pagesLost()));
  std::printf("  alive at end         %zu/%d\n", network.aliveCount(), hosts);
  std::printf("\nThe story: a fifth of all frames corrupt in bursts and two "
              "serving gateways drop\nmid-run, yet delivery stays high — "
              "ARQ rides out the fades and the crashed grids\nre-elect "
              "before the old gateways even finish rebooting.\n");
  return 0;
}
