// Convoy + patrol scenario — "fleets on the oceans, armies on the march"
// (paper §1): a column of vehicles crossing the field while fast patrol
// units roam around it, all sharing one ECGRID mesh.
//
// Demonstrates scripted mobility, heterogeneous speeds, the dwell-timer
// wakeups of sleeping hosts as the convoy crosses grid after grid, and
// end-to-end reporting from the convoy tail to the lead vehicle.
#include <cstdio>
#include <memory>

#include "core/ecgrid_protocol.hpp"
#include "mobility/random_waypoint.hpp"
#include "stats/energy_recorder.hpp"
#include "stats/trace_recorder.hpp"
#include "stats/packet_accounting.hpp"
#include "util/flags.hpp"

int main(int argc, char** argv) {
  using namespace ecgrid;
  util::Flags flags(argc, argv, {"vehicles", "patrols", "seed", "trace"});
  const int vehicles = flags.getInt("vehicles", 12);
  const int patrols = flags.getInt("patrols", 30);
  const auto seed = static_cast<std::uint64_t>(flags.getInt("seed", 11));

  sim::Simulator simulator(seed);
  net::Network network(simulator, net::NetworkConfig{});

  auto oracle = [&network](net::NodeId id) -> std::optional<geo::GridCoord> {
    net::Node* node = network.findNode(id);
    if (node == nullptr || !node->alive()) return std::nullopt;
    return node->cell();
  };
  auto install = [&](net::Node& node) {
    core::EcgridConfig config;
    config.base.locationHint = oracle;
    node.setProtocol(std::make_unique<core::EcgridProtocol>(node, config));
  };

  // The convoy: a column driving west→east at 8 m/s, 60 m spacing,
  // re-crossing the field once it exits (scripted out-and-back).
  for (int i = 0; i < vehicles; ++i) {
    double x0 = 40.0 - 60.0 * i;  // tail starts off-field and rolls in
    std::vector<mobility::ScriptedMobility::Leg> legs;
    legs.push_back({0.0, {x0, 480.0}, {8.0, 0.0}});
    double tTurn = (960.0 - x0) / 8.0;  // reach x=960, turn around
    legs.push_back({tTurn, {960.0, 480.0}, {-8.0, 0.0}});
    double tBack = tTurn + (960.0 - 40.0) / 8.0;
    legs.push_back({tBack, {40.0, 480.0}, {8.0, 0.0}});
    net::NodeConfig config;
    config.id = i;
    net::Node& node = network.addNode(
        std::make_unique<mobility::ScriptedMobility>(std::move(legs)),
        config);
    install(node);
  }
  // Patrols: fast random waypoint across the whole field.
  mobility::RandomWaypointConfig fast;
  fast.maxSpeed = 10.0;
  for (int i = 0; i < patrols; ++i) {
    net::NodeConfig config;
    config.id = vehicles + i;
    net::Node& node = network.addNode(
        std::make_unique<mobility::RandomWaypoint>(
            fast, simulator.rng().stream("patrol", i)),
        config);
    install(node);
  }

  // Tail → lead status stream (the column's length spans several grids).
  const net::NodeId kLead = 0;
  const net::NodeId kTail = vehicles - 1;
  stats::PacketAccounting accounting;
  for (std::size_t i = 0; i < network.nodeCount(); ++i) {
    net::Node& node = network.node(i);
    node.setAppReceiveCallback(
        [&](net::NodeId, const net::DataTag& tag, int) {
          accounting.onReceived(tag, simulator.now());
        });
  }
  std::function<void()> report = [&]() {
    static std::uint64_t seq = 0;
    net::DataTag tag{1, seq++, simulator.now()};
    accounting.onSent(tag.flowId, tag.sequence,
                      network.findNode(kTail)->alive());
    network.findNode(kTail)->sendFromApp(kLead, 256, tag);
    simulator.schedule(0.5, report);
  };
  simulator.schedule(2.0, report);

  stats::EnergyRecorder recorder(network, 10.0);
  std::unique_ptr<stats::TraceRecorder> trace;
  if (flags.has("trace")) {
    // One JSON line per host per 5 s — feed it to your favourite plotter
    // to watch the column drag gateway duty across the field.
    trace = std::make_unique<stats::TraceRecorder>(
        network, 5.0, flags.getString("trace", "convoy_trace.jsonl"));
  }
  network.start();
  simulator.run(600.0);
  recorder.sample();

  std::printf("Convoy patrol — %d vehicles in column, %d patrol units, "
              "10 min\n", vehicles, patrols);
  std::printf("  tail->lead reports    : %llu sent, %llu delivered "
              "(%.2f%%)\n",
              static_cast<unsigned long long>(accounting.packetsSent()),
              static_cast<unsigned long long>(accounting.packetsReceived()),
              100.0 * accounting.deliveryRate());
  std::printf("  mean report latency   : %.1f ms\n",
              1e3 * accounting.meanLatency());
  std::printf("  RAS pages sent        : %llu (dwell wakeups as the "
              "column crosses grids)\n",
              static_cast<unsigned long long>(network.paging().pagesSent()));
  std::printf("  alive fraction at end : %.2f (GRID would be at ~0.06 "
              "of its life budget already)\n",
              recorder.aliveFraction().valueAt(600.0));
  std::printf("  aen at end            : %.3f\n",
              recorder.aen().valueAt(600.0));
  return 0;
}
