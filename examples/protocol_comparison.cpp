// Side-by-side protocol comparison on one identical scenario — a compact
// version of the paper's whole evaluation, handy as a regression summary
// and as a template for running your own parameter studies.
#include <cstdio>

#include "harness/scenario.hpp"
#include "util/flags.hpp"

int main(int argc, char** argv) {
  using namespace ecgrid;
  util::Flags flags(argc, argv,
                    {"hosts", "speed", "duration", "seed", "flows", "pps"});

  harness::ScenarioConfig base;
  base.hostCount = flags.getInt("hosts", 100);
  base.maxSpeed = flags.getDouble("speed", 1.0);
  base.duration = flags.getDouble("duration", 900.0);
  base.seed = static_cast<std::uint64_t>(flags.getInt("seed", 1));
  base.flowCount = flags.getInt("flows", 1);
  base.packetsPerSecondPerFlow = flags.getDouble("pps", 10.0);

  std::printf("Protocol comparison — %d hosts, %.0f pkt/s, %.0f m/s, "
              "%.0f s\n\n",
              base.hostCount, base.flowCount * base.packetsPerSecondPerFlow,
              base.maxSpeed, base.duration);
  std::printf("  %-8s %8s %10s %10s %10s %10s %10s\n", "proto", "PDR%",
              "lat ms", "1st death", "alive@590", "alive@800", "aen@500");

  for (harness::ProtocolKind protocol :
       {harness::ProtocolKind::kGrid, harness::ProtocolKind::kEcgrid,
        harness::ProtocolKind::kGaf}) {
    harness::ScenarioConfig config = base;
    config.protocol = protocol;
    harness::ScenarioResult r = harness::runScenario(config);
    std::printf("  %-8s %8.2f %10.1f %10.0f %10.2f %10.2f %10.3f\n",
                harness::toString(protocol), 100.0 * r.deliveryRate,
                1e3 * r.meanLatencySeconds,
                r.firstDeath >= sim::kTimeNever ? -1.0 : r.firstDeath,
                r.aliveFraction.valueAt(590.0),
                r.aliveFraction.valueAt(800.0), r.aen.valueAt(500.0));
  }
  std::printf("\nExpected shape (paper): GRID collapses at ~590 s; ECGRID "
              "and GAF extend the lifetime,\nGAF slightly ahead (its "
              "Model-1 endpoints are free); delivery >99%% for all.\n");
  return 0;
}
