// Ablation — confining the RREQ search area (paper §3.3, citing the
// broadcast-storm problem).
//
// Compares rectangle-confined discovery (the paper's scheme: smallest
// rectangle covering source and destination grids, widened per retry)
// against always-global flooding. Confinement should slash the RREQ
// relays on the air without hurting delivery, since a failed confined
// search falls back to a global one.
#include <cstdio>

#include "bench_support.hpp"

int main() {
  using namespace ecgrid;

  const double duration = bench::quickMode() ? 300.0 : 590.0;
  std::printf("Ablation — RREQ search-range confinement\n");
  std::printf("  %-26s %10s %12s %14s %12s\n", "variant", "PDR%%",
              "latency ms", "frames on air", "RREQ relays");

  struct Variant {
    const char* label;
    bool confined;
    bool oracle;
  };
  // "no oracle" = the source has no location info for the destination, so
  // every search is global (paper: "a global search for a route is also
  // needed when the source does not have location information").
  for (const Variant& v :
       {Variant{"confined (margin 1)", true, true},
        Variant{"global flooding", false, true},
        Variant{"no location oracle", true, false}}) {
    harness::ScenarioConfig config = bench::paperBaseline();
    config.protocol = harness::ProtocolKind::kEcgrid;
    config.duration = duration;
    config.ecgrid.base.routing.confinedSearch = v.confined;
    config.useLocationOracle = v.oracle;
    // More flows = more discoveries = a sharper contrast.
    config.flowCount = 5;
    config.packetsPerSecondPerFlow = 2.0;
    harness::ScenarioResult result = harness::runScenario(config);
    std::printf("  %-26s %10.2f %12.1f %14llu %12llu\n", v.label,
                100.0 * result.deliveryRate, 1e3 * result.meanLatencySeconds,
                static_cast<unsigned long long>(result.framesTransmitted),
                static_cast<unsigned long long>(result.routing.rreqsSent));
  }
  return 0;
}
