// Shared scaffolding for the figure-reproduction benches.
//
// Every bench binary reproduces one figure of the paper: it sweeps the
// figure's parameter(s), prints the same series the paper plots as an
// aligned text table, and writes a CSV next to the binary (bench_out/)
// for plotting. Benches honour two environment variables:
//   ECGRID_BENCH_QUICK=1  — shrink horizons/sweeps for smoke runs
//   ECGRID_BENCH_SEEDS=N  — number of seeds averaged where applicable
#pragma once

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "harness/scenario.hpp"
#include "stats/timeseries.hpp"

namespace ecgrid::bench {

inline bool quickMode() {
  const char* env = std::getenv("ECGRID_BENCH_QUICK");
  return env != nullptr && std::string(env) != "0";
}

inline int seedCount(int fallback) {
  const char* env = std::getenv("ECGRID_BENCH_SEEDS");
  if (env == nullptr) return fallback;
  int n = std::atoi(env);
  return n > 0 ? n : fallback;
}

/// The paper's common scenario (§4): 1000×1000 m, d=100 m, r=250 m,
/// 2 Mbps, 500 J, random waypoint, CBR 512 B with a total network load of
/// 10 pkt/s (one 10-packets-per-second source, see EXPERIMENTS.md).
inline harness::ScenarioConfig paperBaseline() {
  harness::ScenarioConfig config;
  config.hostCount = 100;
  config.flowCount = 1;
  config.packetsPerSecondPerFlow = 10.0;
  config.maxSpeed = 1.0;
  config.pauseTime = 0.0;
  config.duration = 2000.0;
  return config;
}

inline std::string outputDir() {
  std::filesystem::path dir = "bench_out";
  std::filesystem::create_directories(dir);
  return dir.string();
}

inline void writeSeries(const std::string& figure,
                        const std::vector<stats::TimeSeries>& series) {
  std::string path = outputDir() + "/" + figure + ".csv";
  stats::writeCsv(path, series);
  std::printf("  [csv] %s\n", path.c_str());
}

/// Print one time series row-sampled at fixed instants.
inline void printSampled(const char* label, const stats::TimeSeries& series,
                         const std::vector<double>& sampleTimes) {
  std::printf("  %-22s", label);
  for (double t : sampleTimes) {
    std::printf(" %6.3f", series.valueAt(t));
  }
  std::printf("\n");
}

inline void printHeaderTimes(const char* what,
                             const std::vector<double>& sampleTimes) {
  std::printf("  %-22s", what);
  for (double t : sampleTimes) std::printf(" %6.0f", t);
  std::printf("\n");
}

}  // namespace ecgrid::bench
