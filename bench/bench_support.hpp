// Shared scaffolding for the figure-reproduction benches.
//
// Every bench binary reproduces one figure of the paper: it sweeps the
// figure's parameter(s), prints the same series the paper plots as an
// aligned text table, and writes a CSV next to the binary (bench_out/)
// for plotting, plus a machine-readable BENCH_<figure>.json perf record
// (see BenchReport below). Benches honour these environment variables:
//   ECGRID_BENCH_QUICK=1    — shrink horizons/sweeps for smoke runs
//   ECGRID_BENCH_SEEDS=N    — number of seeds averaged where applicable
//   ECGRID_BENCH_JOBS=N     — worker threads for independent runs (default
//                             1 = serial; results are identical either way)
//   ECGRID_BENCH_HORIZON=S  — cap every run's duration at S seconds (CI
//                             smoke under slow sanitizers)
//   ECGRID_BENCH_SHARDS=N   — run every scenario on the sharded event
//                             engine with N spatial shards (default 1 =
//                             serial oracle). Figure numbers are
//                             byte-identical at any value — the sharded
//                             engine commits the identical event order
//                             (tests/sharded_test.cpp) — so this only
//                             changes engine mechanics and the profile.*
//                             attribution.
//   ECGRID_BENCH_OUT=DIR    — write artifacts to DIR instead of bench_out/
//                             (CI scratch runs; keeps committed records
//                             untouched)
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <utility>
#include <vector>

#include "harness/parallel_runner.hpp"
#include "harness/scenario.hpp"
#include "obs/metrics.hpp"
#include "stats/timeseries.hpp"

namespace ecgrid::bench {

inline bool quickMode() {
  const char* env = std::getenv("ECGRID_BENCH_QUICK");
  return env != nullptr && std::string(env) != "0";
}

inline int seedCount(int fallback) {
  const char* env = std::getenv("ECGRID_BENCH_SEEDS");
  if (env == nullptr) return fallback;
  int n = std::atoi(env);
  return n > 0 ? n : fallback;
}

/// Worker threads for runScenariosParallel. Default 1 (serial).
inline unsigned benchJobs() {
  const char* env = std::getenv("ECGRID_BENCH_JOBS");
  if (env == nullptr) return 1;
  int n = std::atoi(env);
  return n > 0 ? static_cast<unsigned>(n) : 1u;
}

/// Optional hard cap on run duration (seconds), for CI smoke runs under
/// sanitizers where even quick-mode horizons are too slow. 0 = no cap.
inline double horizonCap() {
  const char* env = std::getenv("ECGRID_BENCH_HORIZON");
  if (env == nullptr) return 0.0;
  double s = std::atof(env);
  return s > 0.0 ? s : 0.0;
}

/// Apply the ECGRID_BENCH_HORIZON cap to one config.
inline void applyHorizonCap(harness::ScenarioConfig& config) {
  double cap = horizonCap();
  if (cap > 0.0 && config.duration > cap) config.duration = cap;
}

/// Event-engine shard count for every bench scenario (ECGRID_BENCH_SHARDS,
/// default 1 = the serial oracle). Applied by paperBaseline(), so every
/// figure bench honours it without per-bench wiring.
inline int benchShards() {
  const char* env = std::getenv("ECGRID_BENCH_SHARDS");
  if (env == nullptr) return 1;
  int n = std::atoi(env);
  return n > 0 ? n : 1;
}

/// Wall-clock stopwatch for the whole bench. Wall time never feeds the
/// simulation — it is reporting-only, hence the lint suppressions.
class WallTimer {
 public:
  // ecgrid-lint: allow(banned-random)
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  double seconds() const {
    // ecgrid-lint: allow(banned-random)
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;  // ecgrid-lint: allow(banned-random)
};

/// The paper's common scenario (§4): 1000×1000 m, d=100 m, r=250 m,
/// 2 Mbps, 500 J, random waypoint, CBR 512 B with a total network load of
/// 10 pkt/s (one 10-packets-per-second source, see EXPERIMENTS.md).
inline harness::ScenarioConfig paperBaseline() {
  harness::ScenarioConfig config;
  config.hostCount = 100;
  config.flowCount = 1;
  config.packetsPerSecondPerFlow = 10.0;
  config.maxSpeed = 1.0;
  config.pauseTime = 0.0;
  config.duration = 2000.0;
  config.shards = benchShards();
  return config;
}

/// Downsample a dense (time, value) sample stream into a ~`targetPoints`-
/// bucket min/mean/max envelope, returned as three TimeSeries labelled
/// `<prefix>_min` / `<prefix>_mean` / `<prefix>_max` (each point sits at
/// its bucket's mean time). Long profiled runs produce tens of thousands
/// of queue-depth samples; the envelope keeps BENCH_*.json records small
/// while preserving the spikes a plain stride-decimation would drop.
/// Deterministic in the input.
inline std::vector<stats::TimeSeries> downsampleEnvelope(
    const std::string& prefix,
    const std::vector<std::pair<double, double>>& samples,
    std::size_t targetPoints = 256) {
  std::vector<stats::TimeSeries> envelope;
  envelope.emplace_back(prefix + "_min");
  envelope.emplace_back(prefix + "_mean");
  envelope.emplace_back(prefix + "_max");
  if (samples.empty()) return envelope;
  if (targetPoints == 0) targetPoints = 1;
  const std::size_t bucketSize =
      (samples.size() + targetPoints - 1) / targetPoints;
  for (std::size_t begin = 0; begin < samples.size(); begin += bucketSize) {
    const std::size_t end = std::min(begin + bucketSize, samples.size());
    double lo = samples[begin].second;
    double hi = samples[begin].second;
    double valueSum = 0.0;
    double timeSum = 0.0;
    for (std::size_t i = begin; i < end; ++i) {
      lo = std::min(lo, samples[i].second);
      hi = std::max(hi, samples[i].second);
      valueSum += samples[i].second;
      timeSum += samples[i].first;
    }
    const double count = static_cast<double>(end - begin);
    envelope[0].add(timeSum / count, lo);
    envelope[1].add(timeSum / count, valueSum / count);
    envelope[2].add(timeSum / count, hi);
  }
  return envelope;
}

/// Artifact directory: bench_out/ by default, ECGRID_BENCH_OUT overrides.
/// CI smoke runs point this at a scratch directory so regenerated output
/// never collides with the committed BENCH_*.json reference records —
/// refreshing those is a deliberate local run into the default dir.
inline std::string outputDir() {
  const char* env = std::getenv("ECGRID_BENCH_OUT");
  std::filesystem::path dir =
      (env != nullptr && *env != '\0') ? env : "bench_out";
  std::filesystem::create_directories(dir);
  return dir.string();
}

inline void writeSeries(const std::string& figure,
                        const std::vector<stats::TimeSeries>& series) {
  std::string path = outputDir() + "/" + figure + ".csv";
  stats::writeCsv(path, series);
  std::printf("  [csv] %s\n", path.c_str());
}

/// Print one time series row-sampled at fixed instants.
inline void printSampled(const char* label, const stats::TimeSeries& series,
                         const std::vector<double>& sampleTimes) {
  std::printf("  %-22s", label);
  for (double t : sampleTimes) {
    std::printf(" %6.3f", series.valueAt(t));
  }
  std::printf("\n");
}

inline void printHeaderTimes(const char* what,
                             const std::vector<double>& sampleTimes) {
  std::printf("  %-22s", what);
  for (double t : sampleTimes) std::printf(" %6.0f", t);
  std::printf("\n");
}

/// Machine-readable perf record, written as bench_out/BENCH_<figure>.json:
/// {
///   "figure": "...", "quick": bool, "jobs": N, "runs": N,
///   "wall_seconds": s, "events_executed": N, "events_per_second": x,
///   "frames_transmitted": N, "frames_per_second": x,
///   "metrics": {"name": value, ...},
///   "series": {"label": {"t": [...], "v": [...]}, ...},
///   "scenarios": {"label": {"metric": value, ...}, ...}
/// }
/// Values are plain doubles/integers; names are [A-Za-z0-9_.-] so no JSON
/// escaping is needed. CI and the perf trajectory tooling diff these.
class BenchReport {
 public:
  explicit BenchReport(std::string figure) : figure_(std::move(figure)) {}

  /// Fold one finished run into the aggregate throughput counters.
  void addRun(const harness::ScenarioResult& result) {
    ++runs_;
    eventsExecuted_ += result.eventsExecuted;
    framesTransmitted_ += result.framesTransmitted;
  }
  void addRuns(const std::vector<harness::ScenarioResult>& results) {
    for (const harness::ScenarioResult& r : results) addRun(r);
  }

  /// Scalar headline metric (e.g. "grid_ecgrid_aen_ratio_t500").
  void addMetric(const std::string& name, double value) {
    metrics_.emplace_back(name, value);
  }

  /// A plotted series, stored as parallel t/v arrays.
  void addSeries(const stats::TimeSeries& series) {
    series_.push_back(series);
  }
  void addSeries(const std::vector<stats::TimeSeries>& series) {
    for (const stats::TimeSeries& s : series) series_.push_back(s);
  }

  /// One run's full MetricsRegistry snapshot (harness::ScenarioResult::
  /// metrics), keyed by a scenario label. Counter/histogram values are
  /// deterministic per (config, seed); profile.* wall-clock entries appear
  /// only when that run enabled the simulator profiler.
  void addScenarioMetrics(const std::string& label,
                          const obs::MetricsSnapshot& snapshot) {
    scenarios_.emplace_back(label, snapshot);
  }

  /// Write BENCH_<figure>.json and print its path. Call once, last.
  void write(double wallSeconds) const {
    std::string path = outputDir() + "/BENCH_" + figure_ + ".json";
    std::FILE* out = std::fopen(path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return;
    }
    std::fprintf(out, "{\n  \"figure\": \"%s\",\n", figure_.c_str());
    std::fprintf(out, "  \"quick\": %s,\n", quickMode() ? "true" : "false");
    std::fprintf(out, "  \"jobs\": %u,\n", benchJobs());
    std::fprintf(out, "  \"runs\": %llu,\n",
                 static_cast<unsigned long long>(runs_));
    std::fprintf(out, "  \"wall_seconds\": %.3f,\n", wallSeconds);
    std::fprintf(out, "  \"events_executed\": %llu,\n",
                 static_cast<unsigned long long>(eventsExecuted_));
    std::fprintf(out, "  \"events_per_second\": %.1f,\n",
                 wallSeconds > 0.0 ? eventsExecuted_ / wallSeconds : 0.0);
    std::fprintf(out, "  \"frames_transmitted\": %llu,\n",
                 static_cast<unsigned long long>(framesTransmitted_));
    std::fprintf(out, "  \"frames_per_second\": %.1f,\n",
                 wallSeconds > 0.0 ? framesTransmitted_ / wallSeconds : 0.0);
    std::fprintf(out, "  \"metrics\": {");
    for (std::size_t i = 0; i < metrics_.size(); ++i) {
      std::fprintf(out, "%s\n    \"%s\": %.17g", i == 0 ? "" : ",",
                   metrics_[i].first.c_str(), metrics_[i].second);
    }
    std::fprintf(out, "%s},\n", metrics_.empty() ? "" : "\n  ");
    std::fprintf(out, "  \"series\": {");
    for (std::size_t i = 0; i < series_.size(); ++i) {
      const stats::TimeSeries& s = series_[i];
      std::fprintf(out, "%s\n    \"%s\": {\"t\": [", i == 0 ? "" : ",",
                   s.label().c_str());
      for (std::size_t j = 0; j < s.points().size(); ++j) {
        std::fprintf(out, "%s%.17g", j == 0 ? "" : ", ", s.points()[j].first);
      }
      std::fprintf(out, "], \"v\": [");
      for (std::size_t j = 0; j < s.points().size(); ++j) {
        std::fprintf(out, "%s%.17g", j == 0 ? "" : ", ", s.points()[j].second);
      }
      std::fprintf(out, "]}");
    }
    std::fprintf(out, "%s},\n", series_.empty() ? "" : "\n  ");
    std::fprintf(out, "  \"scenarios\": {");
    for (std::size_t i = 0; i < scenarios_.size(); ++i) {
      std::fprintf(out, "%s\n    \"%s\": {", i == 0 ? "" : ",",
                   scenarios_[i].first.c_str());
      std::size_t j = 0;
      for (const auto& [name, value] : scenarios_[i].second) {
        std::fprintf(out, "%s\n      \"%s\": %.17g", j++ == 0 ? "" : ",",
                     name.c_str(), value);
      }
      std::fprintf(out, "%s}", scenarios_[i].second.empty() ? "" : "\n    ");
    }
    std::fprintf(out, "%s}\n}\n", scenarios_.empty() ? "" : "\n  ");
    std::fclose(out);
    std::printf("  [json] %s (%.2fs wall, %u job(s), %llu events)\n",
                path.c_str(), wallSeconds, benchJobs(),
                static_cast<unsigned long long>(eventsExecuted_));
  }

 private:
  std::string figure_;
  std::uint64_t runs_ = 0;
  std::uint64_t eventsExecuted_ = 0;
  std::uint64_t framesTransmitted_ = 0;
  std::vector<std::pair<std::string, double>> metrics_;
  std::vector<stats::TimeSeries> series_;
  std::vector<std::pair<std::string, obs::MetricsSnapshot>> scenarios_;
};

}  // namespace ecgrid::bench
