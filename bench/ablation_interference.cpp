// Ablation — interference ring beyond decode range.
//
// The pure unit-disk model (the paper's, and our default) lets two
// transmitters 251 m apart coexist perfectly; real radios hear energy
// well past their decode range. This bench widens the interference
// radius to 1.5× and 2× the 250 m decode range and reports how delivery,
// latency and ARQ retransmissions degrade — the fidelity margin of the
// unit-disk assumption behind all the paper's figures.
#include <cstdio>

#include "bench_support.hpp"

int main() {
  using namespace ecgrid;

  const double duration = bench::quickMode() ? 300.0 : 590.0;
  std::printf("Ablation — interference range (decode range 250 m)\n");
  std::printf("  %-16s %10s %12s %12s %14s\n", "interf. range", "PDR%%",
              "latency ms", "MAC retx", "frames on air");

  for (double factor : {1.0, 1.5, 2.0}) {
    harness::ScenarioConfig config = bench::paperBaseline();
    config.protocol = harness::ProtocolKind::kEcgrid;
    config.duration = duration;
    harness::ScenarioResult result;
    {
      // Route the factor through the scenario's channel config.
      harness::ScenarioConfig tuned = config;
      tuned.interferenceRangeFactor = factor;
      result = harness::runScenario(tuned);
    }
    std::printf("  %-16.1f %10.2f %12.1f %12llu %14llu\n",
                factor * 250.0, 100.0 * result.deliveryRate,
                1e3 * result.meanLatencySeconds,
                static_cast<unsigned long long>(result.macRetransmissions),
                static_cast<unsigned long long>(result.framesTransmitted));
  }
  return 0;
}
