// Robustness — delivery rate under adverse conditions (beyond the paper).
//
// The paper evaluates ECGRID on an ideal channel with hosts that die only
// by battery depletion. This bench stresses the protocols with the fault
// layer (src/fault): a Gilbert–Elliott burst-loss channel swept over
// stationary loss rates, crossed with a Poisson host crash/restart
// process, for GRID, ECGRID, and GAF. The question it answers: how much
// of ECGRID's energy-conserving machinery (single awake gateway per grid,
// RAS wake-ups) survives when frames corrupt and gateways crash mid-duty?
//
// Expectation: delivery degrades gracefully with loss (the MAC's ARQ
// absorbs most of it until retries exhaust) and crashes cost extra only
// while re-election converges; ECGRID should track GRID closely since
// both re-elect via the same HELLO machinery.
#include <cstdio>

#include "bench_support.hpp"
#include "fault/fault_plan.hpp"

int main() {
  using namespace ecgrid;
  using harness::ProtocolKind;

  const std::vector<double> lossRates =
      bench::quickMode() ? std::vector<double>{0.0, 0.2}
                         : std::vector<double>{0.0, 0.1, 0.2, 0.3};
  const std::vector<double> crashRates =
      bench::quickMode() ? std::vector<double>{0.0, 1e-3}
                         : std::vector<double>{0.0, 2e-4, 1e-3};
  const std::vector<ProtocolKind> protocols = {
      ProtocolKind::kGrid, ProtocolKind::kEcgrid, ProtocolKind::kGaf};
  const int seeds = bench::seedCount(bench::quickMode() ? 1 : 2);
  const double horizon = bench::quickMode() ? 120.0 : 300.0;
  // Mean burst = 20 frames; mean downtime 30 s before reboot.
  const double meanBurstFrames = 20.0;
  const double meanDowntime = 30.0;

  std::printf("Robustness — delivery rate (%%) under burst loss x crashes\n");
  std::printf("(Gilbert-Elliott, mean burst %.0f frames; Poisson crashes, "
              "mean downtime %.0f s; horizon %.0f s, %d seed(s))\n",
              meanBurstFrames, meanDowntime, horizon, seeds);

  bench::WallTimer timer;
  bench::BenchReport report("fig_robustness");

  std::vector<harness::ScenarioConfig> configs;
  for (ProtocolKind protocol : protocols) {
    for (double crashRate : crashRates) {
      for (double loss : lossRates) {
        for (int seed = 0; seed < seeds; ++seed) {
          harness::ScenarioConfig config = bench::paperBaseline();
          config.protocol = protocol;
          config.duration = horizon;
          config.seed = static_cast<std::uint64_t>(1 + seed);
          if (loss > 0.0) {
            fault::ChannelFault& ch = config.fault.channel;
            ch.kind = fault::ChannelErrorKind::kGilbertElliott;
            ch.pBadToGood = 1.0 / meanBurstFrames;
            ch.pGoodToBad = fault::gilbertElliottPGoodToBad(loss, ch.pBadToGood);
          }
          if (crashRate > 0.0) {
            config.fault.hosts.crashRatePerHostPerSecond = crashRate;
            config.fault.hosts.meanDowntimeSeconds = meanDowntime;
          }
          bench::applyHorizonCap(config);
          configs.push_back(config);
        }
      }
    }
  }
  std::vector<harness::ScenarioResult> results =
      harness::runScenariosParallel(configs, bench::benchJobs());
  report.addRuns(results);

  std::size_t run = 0;
  std::uint64_t crashes = 0, restarts = 0, corrupted = 0;
  std::vector<stats::TimeSeries> csv;
  for (ProtocolKind protocol : protocols) {
    std::printf("\n%s\n", harness::toString(protocol));
    std::printf("  %-22s", "loss rate");
    for (double l : lossRates) std::printf(" %6.2f", l);
    std::printf("\n");
    for (double crashRate : crashRates) {
      char label[64];
      std::snprintf(label, sizeof label, "%s_pdr_pct_crash%g",
                    harness::toString(protocol), crashRate);
      stats::TimeSeries row(label);
      char rowLabel[32];
      std::snprintf(rowLabel, sizeof rowLabel, "crash rate %g", crashRate);
      std::printf("  %-22s", rowLabel);
      for (double loss : lossRates) {
        char mlabel[80];
        std::snprintf(mlabel, sizeof mlabel, "%s_crash%g_loss%g",
                      harness::toString(protocol), crashRate, loss);
        report.addScenarioMetrics(mlabel, results[run].metrics);
        double sum = 0.0;
        for (int seed = 0; seed < seeds; ++seed) {
          const harness::ScenarioResult& r = results[run++];
          sum += 100.0 * r.deliveryRate;
          crashes += r.crashesInjected;
          restarts += r.restartsInjected;
          corrupted += r.deliveriesCorrupted;
        }
        double pct = sum / seeds;
        std::printf(" %6.2f", pct);
        row.add(loss, pct);
      }
      std::printf("\n");
      csv.push_back(std::move(row));
    }
  }
  std::printf("\n(%llu crashes, %llu restarts, %llu corrupted deliveries "
              "across all runs)\n",
              static_cast<unsigned long long>(crashes),
              static_cast<unsigned long long>(restarts),
              static_cast<unsigned long long>(corrupted));
  report.addMetric("crashes_injected", static_cast<double>(crashes));
  report.addMetric("restarts_injected", static_cast<double>(restarts));
  report.addMetric("deliveries_corrupted", static_cast<double>(corrupted));
  report.addSeries(csv);
  bench::writeSeries("fig_robustness_pdr", csv);
  report.write(timer.seconds());
  return 0;
}
