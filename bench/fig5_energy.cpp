// Figure 5 — mean energy consumption per host (aen) vs. simulation time.
//
// aen = Σᵢ consumedᵢ(t) / (n·E₀), the paper's eq. (2). Before GRID's
// 590 s collapse the paper reports GRID ≈33 % above ECGRID and ≈38 %
// above GAF; after every GRID host dies its aen pins at 1.0.
#include <cstdio>

#include "bench_support.hpp"

int main() {
  using namespace ecgrid;
  using harness::ProtocolKind;

  const std::vector<double> sampleTimes = {100, 200, 300, 400, 500,
                                           590, 800, 1200, 2000};
  const std::vector<double> speeds = {1.0, 10.0};
  const std::vector<ProtocolKind> protocols = {
      ProtocolKind::kGrid, ProtocolKind::kEcgrid, ProtocolKind::kGaf};
  const double duration = bench::quickMode() ? 800.0 : 2000.0;

  std::printf("Figure 5 — mean energy consumption per host (aen) vs time\n");
  std::printf("(paper: before 590 s, GRID ~33%% above ECGRID and ~38%% "
              "above GAF)\n");

  bench::WallTimer timer;
  bench::BenchReport report("fig5_energy");

  std::vector<harness::ScenarioConfig> configs;
  for (double speed : speeds) {
    for (ProtocolKind protocol : protocols) {
      harness::ScenarioConfig config = bench::paperBaseline();
      config.protocol = protocol;
      config.maxSpeed = speed;
      config.duration = duration;
      bench::applyHorizonCap(config);
      configs.push_back(config);
    }
  }
  std::vector<harness::ScenarioResult> results =
      harness::runScenariosParallel(configs, bench::benchJobs());
  report.addRuns(results);

  std::size_t run = 0;
  for (double speed : speeds) {
    std::printf("\n(%c) roaming speed = %.0f m/s\n", speed == 1.0 ? 'a' : 'b',
                speed);
    bench::printHeaderTimes("t (s)", sampleTimes);
    std::vector<stats::TimeSeries> csv;
    double aenAt500[3] = {0, 0, 0};
    int idx = 0;
    for (ProtocolKind protocol : protocols) {
      const harness::ScenarioResult& result = results[run++];
      bench::printSampled(harness::toString(protocol), result.aen,
                          sampleTimes);
      aenAt500[idx++] = result.aen.valueAt(500.0);
      char label[64];
      std::snprintf(label, sizeof label, "%s_speed%.0f",
                    harness::toString(protocol), speed);
      report.addScenarioMetrics(label, result.metrics);
      std::snprintf(label, sizeof label, "%s_aen_speed%.0f",
                    harness::toString(protocol), speed);
      stats::TimeSeries labelled(label);
      for (auto [t, v] : result.aen.points()) labelled.add(t, v);
      csv.push_back(std::move(labelled));
    }
    if (aenAt500[1] > 0.0 && aenAt500[2] > 0.0) {
      std::printf("  GRID/ECGRID aen ratio at t=500: %.2f (paper ~1.33)\n",
                  aenAt500[0] / aenAt500[1]);
      std::printf("  GRID/GAF    aen ratio at t=500: %.2f (paper ~1.38)\n",
                  aenAt500[0] / aenAt500[2]);
      char metric[64];
      std::snprintf(metric, sizeof metric, "grid_ecgrid_aen_ratio_speed%.0f",
                    speed);
      report.addMetric(metric, aenAt500[0] / aenAt500[1]);
      std::snprintf(metric, sizeof metric, "grid_gaf_aen_ratio_speed%.0f",
                    speed);
      report.addMetric(metric, aenAt500[0] / aenAt500[2]);
    }
    report.addSeries(csv);
    bench::writeSeries(speed == 1.0 ? "fig5a_aen_speed1" : "fig5b_aen_speed10",
                       csv);
  }
  report.write(timer.seconds());
  return 0;
}
