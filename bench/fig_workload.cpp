// Workload — per-class SLO attainment under production-style traffic
// (beyond the paper).
//
// The paper drives every experiment with fixed-rate CBR flows. This bench
// replaces them with the PR-8 workload layer: an "interactive" class
// (Poisson session arrivals, small request/response flows, tight SLO) and
// a "bulk" class (bursty Pareto on-off arrivals, heavy-tailed flow sizes,
// loose SLO) running side by side, swept over an offered-load multiplier
// for GRID, ECGRID, and GAF. The question it answers: when traffic stops
// being smooth, how much tail latency do the energy-conserving protocols'
// sleep/wake cycles add, and at what load do flows start aborting instead
// of completing?
//
// Expectation: interactive SLO attainment stays high until the bulk
// class's ON bursts saturate the shared channel, then degrades first for
// the protocols that funnel traffic through a single awake gateway per
// grid (ECGRID/GAF) — the gateway's queue is where the burst lands.
#include <cstdio>

#include "bench_support.hpp"
#include "traffic/workload/workload_plan.hpp"

namespace {

double metricOr(const ecgrid::obs::MetricsSnapshot& metrics,
                const std::string& name, double fallback) {
  auto it = metrics.find(name);
  return it == metrics.end() ? fallback : it->second;
}

/// SLO attainment (%) for one class in one run: slo_met / flows_completed.
double sloPct(const ecgrid::obs::MetricsSnapshot& metrics,
              const std::string& cls) {
  const double completed =
      metricOr(metrics, "workload." + cls + ".flows_completed", 0.0);
  if (completed <= 0.0) return 0.0;
  return 100.0 * metricOr(metrics, "workload." + cls + ".slo_met", 0.0) /
         completed;
}

}  // namespace

int main() {
  using namespace ecgrid;
  using harness::ProtocolKind;

  const std::vector<double> loadScales =
      bench::quickMode() ? std::vector<double>{1.0}
                         : std::vector<double>{0.5, 1.0, 2.0};
  const std::vector<ProtocolKind> protocols = {
      ProtocolKind::kGrid, ProtocolKind::kEcgrid, ProtocolKind::kGaf};
  const int seeds = bench::seedCount(bench::quickMode() ? 1 : 2);
  const double horizon = bench::quickMode() ? 120.0 : 300.0;

  std::printf("Workload — per-class SLO attainment (%%) vs offered load\n");
  std::printf("(interactive: Poisson arrivals, 2 s SLO; bulk: Pareto "
              "on-off arrivals, heavy-tailed sizes, 20 s SLO; horizon "
              "%.0f s, %d seed(s))\n",
              horizon, seeds);

  bench::WallTimer timer;
  bench::BenchReport report("workload");

  std::vector<harness::ScenarioConfig> configs;
  for (ProtocolKind protocol : protocols) {
    for (double scale : loadScales) {
      for (int seed = 0; seed < seeds; ++seed) {
        harness::ScenarioConfig config = bench::paperBaseline();
        config.protocol = protocol;
        config.duration = horizon;
        config.seed = static_cast<std::uint64_t>(1 + seed);
        // The workload replaces the CBR flows entirely.
        config.flowCount = 0;

        traffic::WorkloadClass interactive;
        interactive.name = "interactive";
        interactive.arrivals = traffic::ArrivalKind::kPoisson;
        interactive.sessionsPerSecond = 0.5 * scale;
        interactive.minFlowBytes = 1024;
        interactive.maxFlowBytes = 16384;
        interactive.flowSizeShape = 1.3;
        interactive.packetBytes = 512;
        interactive.packetsPerSecond = 20.0;
        interactive.requestResponse = true;
        interactive.responseBytes = 512;
        interactive.sloSeconds = 2.0;
        interactive.abortAfterSeconds = 30.0;

        traffic::WorkloadClass bulk;
        bulk.name = "bulk";
        bulk.arrivals = traffic::ArrivalKind::kParetoOnOff;
        bulk.sessionsPerSecond = 0.2 * scale;
        bulk.onMeanSeconds = 5.0;
        bulk.offMeanSeconds = 20.0;
        bulk.onOffShape = 1.5;
        bulk.minFlowBytes = 8192;
        bulk.maxFlowBytes = 262144;
        bulk.flowSizeShape = 1.2;
        bulk.packetBytes = 512;
        bulk.packetsPerSecond = 40.0;
        bulk.requestResponse = false;
        bulk.sloSeconds = 20.0;
        bulk.abortAfterSeconds = 60.0;

        config.workload.classes = {interactive, bulk};
        config.workload.clientPopulation = 20;
        config.workload.sinkCount = 2;
        bench::applyHorizonCap(config);
        configs.push_back(config);
      }
    }
  }
  std::vector<harness::ScenarioResult> results =
      harness::runScenariosParallel(configs, bench::benchJobs());
  report.addRuns(results);

  std::size_t run = 0;
  std::uint64_t aborted = 0;
  std::vector<stats::TimeSeries> csv;
  for (ProtocolKind protocol : protocols) {
    std::printf("\n%s\n", harness::toString(protocol));
    std::printf("  %-22s", "load scale");
    for (double s : loadScales) std::printf(" %6.2f", s);
    std::printf("\n");
    stats::TimeSeries interactiveRow(
        std::string(harness::toString(protocol)) + "_interactive_slo_pct");
    stats::TimeSeries bulkRow(std::string(harness::toString(protocol)) +
                              "_bulk_slo_pct");
    stats::TimeSeries abortRow(std::string(harness::toString(protocol)) +
                               "_aborted_flows");
    // Energy and queue hotspots: what the offered load costs the hosts
    // (aen = mean consumed J/host at the horizon, the Fig. 5 metric) and
    // the shared channel (MAC drops — the gateway queue is where a burst
    // backs up first).
    stats::TimeSeries aenRow(std::string(harness::toString(protocol)) +
                             "_aen_joules");
    stats::TimeSeries dropRow(std::string(harness::toString(protocol)) +
                              "_mac_frames_dropped");
    for (double scale : loadScales) {
      double interactiveSum = 0.0;
      double bulkSum = 0.0;
      double abortSum = 0.0;
      double aenSum = 0.0;
      double dropSum = 0.0;
      for (int seed = 0; seed < seeds; ++seed) {
        const harness::ScenarioResult& r = results[run];
        if (seed == 0) {
          char label[64];
          std::snprintf(label, sizeof label, "%s_load%g",
                        harness::toString(protocol), scale);
          report.addScenarioMetrics(label, r.metrics);
        }
        interactiveSum += sloPct(r.metrics, "interactive");
        bulkSum += sloPct(r.metrics, "bulk");
        abortSum += static_cast<double>(r.abortedFlows);
        aenSum += r.aen.points().empty() ? 0.0 : r.aen.points().back().second;
        dropSum += static_cast<double>(r.macFramesDropped);
        aborted += r.abortedFlows;
        ++run;
      }
      interactiveRow.add(scale, interactiveSum / seeds);
      bulkRow.add(scale, bulkSum / seeds);
      abortRow.add(scale, abortSum / seeds);
      aenRow.add(scale, aenSum / seeds);
      dropRow.add(scale, dropSum / seeds);
    }
    bench::printSampled("interactive SLO %", interactiveRow, loadScales);
    bench::printSampled("bulk SLO %", bulkRow, loadScales);
    bench::printSampled("aborted flows", abortRow, loadScales);
    bench::printSampled("aen (J/host)", aenRow, loadScales);
    bench::printSampled("mac drops", dropRow, loadScales);
    csv.push_back(std::move(interactiveRow));
    csv.push_back(std::move(bulkRow));
    csv.push_back(std::move(abortRow));
    csv.push_back(std::move(aenRow));
    csv.push_back(std::move(dropRow));
  }
  std::printf("\n(%llu aborted flows across all runs)\n",
              static_cast<unsigned long long>(aborted));
  report.addMetric("aborted_flows_total", static_cast<double>(aborted));
  report.addSeries(csv);
  bench::writeSeries("fig_workload_slo", csv);
  report.write(timer.seconds());
  return 0;
}
