// Ablation — the grid dimensioning rule d = √2·r/3 (paper §2).
//
// Sweeps the cell side d around the paper's 100 m choice (r = 250 m gives
// d_max = √2·250/3 ≈ 117.9 m). Larger cells mean fewer gateways awake
// (more energy saved) but break the guarantee that a centre gateway
// reaches all eight neighbours — delivery should degrade past d_max.
// Smaller cells keep delivery perfect but leave many more hosts awake.
#include <cstdio>

#include "bench_support.hpp"
#include "geo/grid.hpp"

int main() {
  using namespace ecgrid;

  const double duration = bench::quickMode() ? 400.0 : 590.0;
  std::printf("Ablation — grid cell side d (r=250 m, d_max=%.1f m)\n",
              geo::maxCellSideForRange(250.0));
  std::printf("  %-10s %10s %12s %12s %12s\n", "d (m)", "PDR%%",
              "latency ms", "awake@300", "alive@end");

  for (double d : {60.0, 80.0, 100.0, 118.0, 140.0, 170.0}) {
    harness::ScenarioConfig config = bench::paperBaseline();
    config.protocol = harness::ProtocolKind::kEcgrid;
    config.gridCellSide = d;
    config.duration = duration;
    harness::ScenarioResult result = harness::runScenario(config);
    std::printf("  %-10.0f %10.2f %12.1f %12.2f %12.2f\n", d,
                100.0 * result.deliveryRate, 1e3 * result.meanLatencySeconds,
                result.awakeFraction.valueAt(300.0),
                result.aliveFraction.points().back().second);
  }
  return 0;
}
