// Ablation — the HELLO period.
//
// The paper attributes ECGRID's small lifetime deficit against GAF to its
// periodic HELLOs ("the increased power consumption results from the
// exchanging of the HELLO message"). Sweeping the period exposes the
// trade: short periods keep tables fresh (good delivery/latency) but cost
// beacon energy; long periods save beacons but let gateway/host tables go
// stale, hurting delivery and triggering more repairs.
#include <cstdio>

#include "bench_support.hpp"

int main() {
  using namespace ecgrid;

  const double duration = bench::quickMode() ? 400.0 : 1000.0;
  std::printf("Ablation — HELLO period (ECGRID)\n");
  std::printf("  %-12s %10s %12s %12s %12s\n", "period (s)", "PDR%%",
              "latency ms", "alive@800", "frames/s");

  for (double period : {0.5, 1.0, 2.0, 4.0}) {
    harness::ScenarioConfig config = bench::paperBaseline();
    config.protocol = harness::ProtocolKind::kEcgrid;
    config.duration = duration;
    config.ecgrid.base.helloPeriod = period;
    harness::ScenarioResult result = harness::runScenario(config);
    std::printf("  %-12.1f %10.2f %12.1f %12.2f %12.0f\n", period,
                100.0 * result.deliveryRate, 1e3 * result.meanLatencySeconds,
                result.aliveFraction.valueAt(800.0),
                static_cast<double>(result.framesTransmitted) / duration);
  }
  return 0;
}
