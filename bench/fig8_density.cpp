// Figure 8 — fraction of alive hosts vs. time for varying host density.
//
// Paper setup: 50/100/150/200 hosts, GRID vs ECGRID, 10 pkt/s, pause 0,
// speeds 1 and 10 m/s. GRID's lifetime does not depend on density (every
// host idles); ECGRID's lifetime grows with density because more hosts
// share each grid's gateway duty. Higher speed mixes hosts across grids,
// improving load balance (later first deaths) at the cost of more
// election overhead.
#include <cstdio>

#include "bench_support.hpp"

int main() {
  using namespace ecgrid;
  using harness::ProtocolKind;

  const std::vector<int> densities =
      bench::quickMode() ? std::vector<int>{50, 100}
                         : std::vector<int>{50, 100, 150, 200};
  const std::vector<double> sampleTimes = {300, 590, 700, 800, 1000,
                                           1200, 1600, 2000};
  const std::vector<double> speeds = {1.0, 10.0};
  const std::vector<ProtocolKind> protocols = {ProtocolKind::kGrid,
                                               ProtocolKind::kEcgrid};
  const double duration = bench::quickMode() ? 800.0 : 2000.0;

  std::printf("Figure 8 — alive fraction vs time, by host density\n");
  std::printf("(paper: GRID flat in density; ECGRID lifetime grows with "
              "density)\n");

  bench::WallTimer timer;
  bench::BenchReport report("fig8_density");

  std::vector<harness::ScenarioConfig> configs;
  for (double speed : speeds) {
    for (ProtocolKind protocol : protocols) {
      for (int hosts : densities) {
        harness::ScenarioConfig config = bench::paperBaseline();
        config.protocol = protocol;
        config.hostCount = hosts;
        config.maxSpeed = speed;
        config.duration = duration;
        bench::applyHorizonCap(config);
        configs.push_back(config);
      }
    }
  }
  std::vector<harness::ScenarioResult> results =
      harness::runScenariosParallel(configs, bench::benchJobs());
  report.addRuns(results);

  std::size_t run = 0;
  for (double speed : speeds) {
    std::printf("\n(%c) roaming speed = %.0f m/s\n", speed == 1.0 ? 'a' : 'b',
                speed);
    bench::printHeaderTimes("t (s)", sampleTimes);
    std::vector<stats::TimeSeries> csv;
    for (ProtocolKind protocol : protocols) {
      for (int hosts : densities) {
        const harness::ScenarioResult& result = results[run++];
        char label[64];
        std::snprintf(label, sizeof label, "%s n=%d",
                      harness::toString(protocol), hosts);
        bench::printSampled(label, result.aliveFraction, sampleTimes);
        char csvLabel[64];
        std::snprintf(csvLabel, sizeof csvLabel, "%s_n%d_speed%.0f",
                      harness::toString(protocol), hosts, speed);
        report.addScenarioMetrics(csvLabel, result.metrics);
        stats::TimeSeries labelled(csvLabel);
        for (auto [t, v] : result.aliveFraction.points()) labelled.add(t, v);
        csv.push_back(std::move(labelled));
      }
    }
    report.addSeries(csv);
    bench::writeSeries(
        speed == 1.0 ? "fig8a_density_speed1" : "fig8b_density_speed10", csv);
  }
  report.write(timer.seconds());
  return 0;
}
