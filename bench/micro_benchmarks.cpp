// Microbenchmarks (google-benchmark) for the simulator's hot paths: the
// event queue, RNG streams, grid math, the unit-disk channel fan-out, and
// the gateway election rules. These bound how fast whole scenarios can
// run; a 2000 s / 100-host ECGRID run executes a few million events.
#include <benchmark/benchmark.h>

#include "energy/battery.hpp"
#include "geo/grid.hpp"
#include "mobility/random_waypoint.hpp"
#include "net/network.hpp"
#include "protocols/common/election.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace ecgrid;

void BM_EventQueuePushPop(benchmark::State& state) {
  const int batch = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::EventQueue queue;
    int fired = 0;
    for (int i = 0; i < batch; ++i) {
      queue.push(static_cast<double>((i * 7919) % batch),
                 [&fired] { ++fired; });
    }
    while (auto record = queue.pop()) {
      record->action();
    }
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_EventQueuePushPop)->Arg(1024)->Arg(16384);

void BM_EventCancellation(benchmark::State& state) {
  const int batch = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::EventQueue queue;
    std::vector<sim::EventHandle> handles;
    handles.reserve(batch);
    for (int i = 0; i < batch; ++i) {
      handles.push_back(queue.push(static_cast<double>(i), [] {}));
    }
    for (int i = 0; i < batch; i += 2) handles[i].cancel();
    int live = 0;
    while (auto record = queue.pop()) {
      record->action();
      ++live;
    }
    benchmark::DoNotOptimize(live);
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_EventCancellation)->Arg(4096);

void BM_RngStream(benchmark::State& state) {
  sim::RngStream rng(42);
  double acc = 0.0;
  for (auto _ : state) {
    acc += rng.uniform(0.0, 1.0);
  }
  benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_RngStream);

void BM_GridMapping(benchmark::State& state) {
  geo::GridMap grid(100.0);
  double x = 3.0;
  std::int64_t acc = 0;
  for (auto _ : state) {
    geo::Vec2 p{x, 1000.0 - x};
    geo::GridCoord c = grid.cellOf(p);
    acc += c.x + c.y;
    x += 0.37;
    if (x > 1000.0) x = 0.0;
  }
  benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_GridMapping);

void BM_WaypointAdvance(benchmark::State& state) {
  sim::RngFactory factory(7);
  mobility::RandomWaypointConfig config;
  config.maxSpeed = 10.0;
  mobility::RandomWaypoint waypoint(config, factory.stream("bench"));
  double t = 0.0;
  geo::Vec2 acc{};
  for (auto _ : state) {
    t += 0.5;
    acc += waypoint.positionAt(t);
  }
  benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_WaypointAdvance);

void BM_Election(benchmark::State& state) {
  const int fieldSize = static_cast<int>(state.range(0));
  std::vector<protocols::Candidate> field;
  sim::RngStream rng(3);
  for (int i = 0; i < fieldSize; ++i) {
    protocols::Candidate c;
    c.id = i;
    c.level = static_cast<energy::BatteryLevel>(rng.uniformInt(0, 2));
    c.distToCenter = rng.uniform(0.0, 70.0);
    field.push_back(c);
  }
  protocols::ElectionPolicy policy;
  for (auto _ : state) {
    auto winner = protocols::electGateway(field, policy);
    benchmark::DoNotOptimize(winner);
  }
}
BENCHMARK(BM_Election)->Arg(8)->Arg(64);

void BM_ChannelBroadcastFanout(benchmark::State& state) {
  const int nodes = static_cast<int>(state.range(0));
  sim::Simulator simulator(11);
  net::NetworkConfig netConfig;
  net::Network network(simulator, netConfig);
  sim::RngStream rng(5);
  for (int i = 0; i < nodes; ++i) {
    net::NodeConfig nodeConfig;
    nodeConfig.id = i;
    nodeConfig.infiniteBattery = true;
    auto mobility = std::make_unique<mobility::StaticMobility>(
        geo::Vec2{rng.uniform(0.0, 1000.0), rng.uniform(0.0, 1000.0)});
    network.addNode(std::move(mobility), nodeConfig);
  }
  net::Packet frame;
  frame.macSrc = 0;
  frame.macDst = net::kBroadcastId;
  class Tiny final : public net::Header {
   public:
    int bytes() const override { return 8; }
    const char* name() const override { return "tiny"; }
  };
  frame.header = std::make_shared<Tiny>();
  for (auto _ : state) {
    network.channel().transmitFrom(network.node(0).radio(), frame, 1e-4);
    simulator.run(simulator.now() + 1.0);
  }
  state.SetItemsProcessed(state.iterations() * nodes);
}
BENCHMARK(BM_ChannelBroadcastFanout)->Arg(50)->Arg(200);

void BM_BatteryIntegration(benchmark::State& state) {
  energy::Battery battery(1e12);
  double t = 0.0;
  for (auto _ : state) {
    t += 0.01;
    battery.setPowerW(t - std::floor(t) + 0.1, t);
    benchmark::DoNotOptimize(battery.remainingJ(t));
  }
}
BENCHMARK(BM_BatteryIntegration);

}  // namespace

BENCHMARK_MAIN();
