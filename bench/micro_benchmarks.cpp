// Microbenchmarks (google-benchmark) for the simulator's hot paths: the
// event queue, RNG streams, grid math, the unit-disk channel fan-out, and
// the gateway election rules. These bound how fast whole scenarios can
// run; a 2000 s / 100-host ECGRID run executes a few million events.
//
// Unless the caller passes --benchmark_out, results are also written as
// bench_out/BENCH_micro.json (google-benchmark's JSON schema) so the perf
// trajectory has a machine-readable record.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "bench_support.hpp"
#include "sim/sharded/engine.hpp"
#include "energy/battery.hpp"
#include "geo/grid.hpp"
#include "mobility/random_waypoint.hpp"
#include "net/network.hpp"
#include "protocols/common/election.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace ecgrid;

void BM_EventQueuePushPop(benchmark::State& state) {
  const int batch = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::EventQueue queue;
    int fired = 0;
    for (int i = 0; i < batch; ++i) {
      queue.push(static_cast<double>((i * 7919) % batch),
                 [&fired] { ++fired; });
    }
    double time = 0.0;
    sim::InlineTask action;
    while (queue.pop(time, action)) {
      action();
    }
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_EventQueuePushPop)->Arg(1024)->Arg(16384);

void BM_EventCancellation(benchmark::State& state) {
  const int batch = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::EventQueue queue;
    std::vector<sim::EventHandle> handles;
    handles.reserve(batch);
    for (int i = 0; i < batch; ++i) {
      handles.push_back(queue.push(static_cast<double>(i), [] {}));
    }
    for (int i = 0; i < batch; i += 2) handles[i].cancel();
    int live = 0;
    double time = 0.0;
    sim::InlineTask action;
    while (queue.pop(time, action)) {
      action();
      ++live;
    }
    benchmark::DoNotOptimize(live);
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_EventCancellation)->Arg(4096);

// Steady-state DES load: a standing population of events where every pop
// schedules a successor. This is the regime the pooled slab targets — the
// free-list keeps recycling the same few slots, so steady state allocates
// nothing per event.
void BM_EventQueueChurn(benchmark::State& state) {
  const int standing = static_cast<int>(state.range(0));
  sim::EventQueue queue;
  sim::RngStream rng(13);
  double now = 0.0;
  for (int i = 0; i < standing; ++i) {
    queue.push(rng.uniform(0.0, 10.0), [] {});
  }
  sim::InlineTask action;
  for (auto _ : state) {
    queue.pop(now, action);
    queue.push(now + rng.uniform(0.0, 10.0), [] {});
  }
  benchmark::DoNotOptimize(now);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EventQueueChurn)->Arg(64)->Arg(4096);

void BM_RngStream(benchmark::State& state) {
  sim::RngStream rng(42);
  double acc = 0.0;
  for (auto _ : state) {
    acc += rng.uniform(0.0, 1.0);
  }
  benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_RngStream);

void BM_GridMapping(benchmark::State& state) {
  geo::GridMap grid(100.0);
  double x = 3.0;
  std::int64_t acc = 0;
  for (auto _ : state) {
    geo::Vec2 p{x, 1000.0 - x};
    geo::GridCoord c = grid.cellOf(p);
    acc += c.x + c.y;
    x += 0.37;
    if (x > 1000.0) x = 0.0;
  }
  benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_GridMapping);

void BM_WaypointAdvance(benchmark::State& state) {
  sim::RngFactory factory(7);
  mobility::RandomWaypointConfig config;
  config.maxSpeed = 10.0;
  mobility::RandomWaypoint waypoint(config, factory.stream("bench"));
  double t = 0.0;
  geo::Vec2 acc{};
  for (auto _ : state) {
    t += 0.5;
    acc += waypoint.positionAt(t);
  }
  benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_WaypointAdvance);

void BM_Election(benchmark::State& state) {
  const int fieldSize = static_cast<int>(state.range(0));
  std::vector<protocols::Candidate> field;
  sim::RngStream rng(3);
  for (int i = 0; i < fieldSize; ++i) {
    protocols::Candidate c;
    c.id = i;
    c.level = static_cast<energy::BatteryLevel>(rng.uniformInt(0, 2));
    c.distToCenter = rng.uniform(0.0, 70.0);
    field.push_back(c);
  }
  protocols::ElectionPolicy policy;
  for (auto _ : state) {
    auto winner = protocols::electGateway(field, policy);
    benchmark::DoNotOptimize(winner);
  }
}
BENCHMARK(BM_Election)->Arg(8)->Arg(64);

void BM_ChannelBroadcastFanout(benchmark::State& state) {
  const int nodes = static_cast<int>(state.range(0));
  sim::Simulator simulator(11);
  net::NetworkConfig netConfig;
  net::Network network(simulator, netConfig);
  sim::RngStream rng(5);
  for (int i = 0; i < nodes; ++i) {
    net::NodeConfig nodeConfig;
    nodeConfig.id = i;
    nodeConfig.infiniteBattery = true;
    auto mobility = std::make_unique<mobility::StaticMobility>(
        geo::Vec2{rng.uniform(0.0, 1000.0), rng.uniform(0.0, 1000.0)});
    network.addNode(std::move(mobility), nodeConfig);
  }
  net::Packet frame;
  frame.macSrc = 0;
  frame.macDst = net::kBroadcastId;
  class Tiny final : public net::Header {
   public:
    int bytes() const override { return 8; }
    const char* name() const override { return "tiny"; }
  };
  frame.header = std::make_shared<Tiny>();
  for (auto _ : state) {
    network.channel().transmitFrom(network.node(0).radio(), frame, 1e-4);
    simulator.run(simulator.now() + 1.0);
  }
  state.SetItemsProcessed(state.iterations() * nodes);
}
BENCHMARK(BM_ChannelBroadcastFanout)->Arg(50)->Arg(200);

// Spatial-index fan-out vs the brute-force scan at a fixed attachment
// count. Field side scales with the node count to hold the paper's
// density (100 hosts per 1000 m square), so the broadcast's *delivery*
// work is constant and the measured difference is the candidate scan:
// all N attachments (brute) vs the 3x3 index buckets around the sender.
// Manual timing covers transmitFrom only — the scan plus delivery
// scheduling; the scheduled receiver-side events drain untimed between
// iterations because that work is identical in both modes and would only
// dilute the comparison (BM_ChannelBroadcastFanout keeps an end-to-end
// transmit-and-drain measurement).
void BM_ChannelFanOut(benchmark::State& state) {
  const int nodes = static_cast<int>(state.range(0));
  const bool indexed = state.range(1) != 0;
  const double field = 1000.0 * std::sqrt(nodes / 100.0);
  sim::Simulator simulator(11);
  net::NetworkConfig netConfig;
  netConfig.channel.useSpatialIndex = indexed;
  net::Network network(simulator, netConfig);
  sim::RngStream rng(5);
  for (int i = 0; i < nodes; ++i) {
    net::NodeConfig nodeConfig;
    nodeConfig.id = i;
    nodeConfig.infiniteBattery = true;
    auto mobility = std::make_unique<mobility::StaticMobility>(
        geo::Vec2{rng.uniform(0.0, field), rng.uniform(0.0, field)});
    network.addNode(std::move(mobility), nodeConfig);
  }
  net::Packet frame;
  frame.macSrc = 0;
  frame.macDst = net::kBroadcastId;
  class Tiny final : public net::Header {
   public:
    int bytes() const override { return 8; }
    const char* name() const override { return "tiny"; }
  };
  frame.header = std::make_shared<Tiny>();
  // Sleeping receivers make the delivery events trivial, isolating the
  // fan-out scan that this benchmark compares across modes.
  for (int i = 1; i < nodes; ++i) network.node(i).radio().sleep();
  for (auto _ : state) {
    // Manual-time benchmark: wall clock is the measurement itself.
    // ecgrid-lint: allow(banned-random)
    const auto start = std::chrono::steady_clock::now();
    network.channel().transmitFrom(network.node(0).radio(), frame, 1e-4);
    const auto stop = std::chrono::steady_clock::now();  // ecgrid-lint: allow(banned-random)
    simulator.run(simulator.now() + 1.0);
    state.SetIterationTime(
        std::chrono::duration<double>(stop - start).count());
  }
  state.SetItemsProcessed(state.iterations() * nodes);
}
BENCHMARK(BM_ChannelFanOut)
    ->ArgNames({"radios", "indexed"})
    ->Args({500, 1})
    ->Args({500, 0})
    ->Args({100, 1})
    ->Args({100, 0})
    ->UseManualTime();

// Cost of a boundary event's shard handoff: post into an edge mailbox,
// drain the mailbox into the destination shard's queue, pop and recycle.
// This is the sharded engine's analogue of BM_EventQueuePushPop and
// bounds how much cross-stripe phy/paging traffic costs per frame.
void BM_ShardHandoff(benchmark::State& state) {
  const int batch = static_cast<int>(state.range(0));
  sim::sharded::EdgeMailbox mailbox;
  sim::sharded::ShardQueue queue;
  std::uint64_t fired = 0;
  for (auto _ : state) {
    for (int i = 0; i < batch; ++i) {
      sim::sharded::EventKey key;
      key.time = static_cast<double>((i * 7919) % batch);
      key.tieKey = static_cast<std::uint64_t>(i);
      key.sequence = static_cast<std::uint64_t>(i);
      mailbox.post(key, sim::sharded::InlineTask([&fired] { ++fired; }),
                   "bench/handoff", sim::kTimeZero);
    }
    mailbox.drainInto(queue);
    double time = 0.0;
    sim::sharded::InlineTask task;
    const char* label = nullptr;
    while (queue.popFront(time, task, label)) {
      task();
      task.reset();
      queue.finishExecuting();
    }
  }
  benchmark::DoNotOptimize(fired);
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_ShardHandoff)->Arg(64)->Arg(4096);

// Cost of one conservative window: per-shard standing timers that only
// repost locally, so every window executes a handful of events and the
// measured time is dominated by the window loop's floor computation,
// mailbox sweep, and (workers > 1) the thread-pool barrier.
void BM_ShardWindowBarrier(benchmark::State& state) {
  const int shards = static_cast<int>(state.range(0));
  const int workers = static_cast<int>(state.range(1));
  sim::sharded::ShardedEngineConfig config;
  config.shards = shards;
  config.lookaheadSeconds = 1e-3;
  sim::sharded::ShardedEngine engine(config);
  struct Timer {
    sim::sharded::ShardedEngine::ShardContext* context;
    void operator()() {
      context->postLocal(1e-3, sim::sharded::InlineTask(*this));
    }
  };
  for (int s = 0; s < shards; ++s) {
    Timer timer{&engine.shardContext(s)};
    engine.seedWindowed(s, 1e-3, sim::sharded::InlineTask(timer));
  }
  double until = 0.0;
  std::uint64_t windows = 0;
  for (auto _ : state) {
    until += 1.0;  // ~1000 windows per iteration at 1 ms lookahead
    windows += engine.runWindowed(workers, until).windows;
  }
  benchmark::DoNotOptimize(windows);
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_ShardWindowBarrier)
    ->ArgNames({"shards", "workers"})
    ->Args({4, 1})
    ->Args({4, 2})
    ->Args({4, 4});

void BM_BatteryIntegration(benchmark::State& state) {
  energy::Battery battery(1e12);
  double t = 0.0;
  for (auto _ : state) {
    t += 0.01;
    battery.setPowerW(t - std::floor(t) + 0.1, t);
    benchmark::DoNotOptimize(battery.remainingJ(t));
  }
}
BENCHMARK(BM_BatteryIntegration);

}  // namespace

// BENCHMARK_MAIN(), plus a default --benchmark_out=bench_out/BENCH_micro.json
// --benchmark_out_format=json when the caller did not pick an output file.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  bool callerChoseOutput = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]).rfind("--benchmark_out=", 0) == 0) {
      callerChoseOutput = true;
    }
  }
  std::string outFlag;
  std::string formatFlag;
  if (!callerChoseOutput) {
    outFlag = "--benchmark_out=" + bench::outputDir() + "/BENCH_micro.json";
    formatFlag = "--benchmark_out_format=json";
    args.push_back(outFlag.data());
    args.push_back(formatFlag.data());
  }
  int count = static_cast<int>(args.size());
  benchmark::Initialize(&count, args.data());
  if (benchmark::ReportUnrecognizedArguments(count, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
