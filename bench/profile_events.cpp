// Simulator profile — where the event loop spends its time, per protocol.
//
// Runs the paper's baseline scenario once per protocol with the simulator
// profiler enabled (harness::ScenarioConfig::profileSimulator) and reports
// per-event-label dispatch counts and wall-clock attribution, plus an
// event-queue depth timeseries sampled every `profileQueueSampleEvents`
// executed events. The profile.*.wall_s entries are wall-clock and thus
// vary run to run; profile.*.count entries and the queue-depth series are
// deterministic per (config, seed) — the profiler observes the schedule,
// it never perturbs it (the PR's determinism gate proves this).
//
// Output: BENCH_profile.json with one scenarios entry per protocol and
// queue_depth_<protocol>_{min,mean,max} envelope series (x = sim time,
// y = queue size, downsampled to ~256 buckets).
//
// Two shard-scaling sections follow the per-protocol profiles:
//   * scenario scaling — the profiled ECGRID scenario at 1 vs N shards
//     (ECGRID_BENCH_SHARDS, default 4). Sequenced mode commits the
//     identical global event order, so this is expected to sit near
//     1.0×: it reports the engine's bookkeeping overhead and the
//     per-shard wall attribution (profile.shards.*), not a speedup.
//   * dispatch scaling — a pure event-dispatch workload (self-
//     rescheduling timers, no protocol work) on the serial queue vs
//     the windowed sharded engine. The serial queue is measured twice:
//     with its InlineTask slots and with every closure boxed in a
//     std::function first — the pre-PR-9 storage strategy — so
//     `dispatch.serial_inline_speedup` reports what moving the serial
//     engine onto inline slots bought. Sharding then pays on top:
//     each shard's heap is smaller and cache-resident. The headline
//     `dispatch.speedup_shards4` metric is the sharding PR's >= 2x
//     gate.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <vector>

#include "bench_support.hpp"
#include "sim/event.hpp"
#include "sim/sharded/engine.hpp"
#include "sim/sharded/lookahead.hpp"

namespace {

/// The hot-path closure the engines really carry: phy/deliver captures a
/// receiver pointer, a ~48-byte packet, and a duration — well past
/// std::function's 16-byte small-buffer optimisation, so the serial
/// queue pays one malloc/free per delivered event. InlineTask's 96-byte
/// slot holds it inline. Both dispatch workloads below schedule closures
/// of exactly this size so the comparison measures the storage strategy,
/// not the payload.
struct DeliveryPayload {
  void* receiver = nullptr;
  unsigned char packet[48] = {};
  double duration = 0.0;
};

/// Standing event population for the dispatch workloads. Sized at the
/// city-scale regime the sharding targets: a dense scenario keeps tens
/// of thousands of timers pending, so the serial binary heap is ~17
/// levels deep and spills L2, while a 4-shard split both shortens each
/// heap and keeps it cache-resident — that locality, plus the inline
/// task slots, is where the measured speedup comes from.
constexpr int kStanding = 100'000;

/// Serial dispatch baseline: a standing population of self-rescheduling
/// timers on the serial EventQueue, closures held in the queue's
/// InlineTask slots — the same regime BM_EventQueueChurn measures, sized
/// here in events per wall second.
double serialDispatchEventsPerSecond(std::uint64_t events) {
  using namespace ecgrid;
  sim::EventQueue queue;
  sim::RngStream rng(17);
  std::uint64_t sink = 0;
  DeliveryPayload payload;
  for (int i = 0; i < kStanding; ++i) {
    payload.packet[0] = static_cast<unsigned char>(i);
    queue.push(rng.uniform(0.0, 1.0),
               [payload, &sink] { sink += payload.packet[0]; });
  }
  bench::WallTimer timer;
  double now = 0.0;
  sim::InlineTask action;
  for (std::uint64_t i = 0; i < events; ++i) {
    queue.pop(now, action);
    action();
    payload.packet[0] = static_cast<unsigned char>(i);
    queue.push(now + rng.uniform(0.0, 1.0),
               [payload, &sink] { sink += payload.packet[0]; });
  }
  return events / timer.seconds();
}

/// The same workload under the pre-PR-9 storage strategy: every closure
/// boxed in a std::function before scheduling. The payload exceeds
/// std::function's small-buffer optimisation, so each push pays one heap
/// allocation and each execution one free — exactly what the serial
/// queue paid per delivered event before its slots moved to InlineTask.
/// The delta against serialDispatchEventsPerSecond isolates the boxing
/// cost; everything else (heap discipline, slab recycling, payload
/// size) is identical.
double serialStdFunctionDispatchEventsPerSecond(std::uint64_t events) {
  using namespace ecgrid;
  sim::EventQueue queue;
  sim::RngStream rng(17);
  std::uint64_t sink = 0;
  DeliveryPayload payload;
  auto boxedPush = [&](double at) {
    std::function<void()> boxed = [payload, &sink] {
      sink += payload.packet[0];
    };
    queue.push(at, [fn = std::move(boxed)] { fn(); });
  };
  for (int i = 0; i < kStanding; ++i) {
    payload.packet[0] = static_cast<unsigned char>(i);
    boxedPush(rng.uniform(0.0, 1.0));
  }
  bench::WallTimer timer;
  double now = 0.0;
  sim::InlineTask action;
  for (std::uint64_t i = 0; i < events; ++i) {
    queue.pop(now, action);
    action();
    payload.packet[0] = static_cast<unsigned char>(i);
    boxedPush(now + rng.uniform(0.0, 1.0));
  }
  return events / timer.seconds();
}

/// Sharded windowed dispatch: the same standing-timer workload spread
/// over `shards` stripes, self-rescheduling through InlineTask slots
/// with occasional cross-shard hops at the conservative lookahead.
double windowedDispatchEventsPerSecond(int shards, std::uint64_t events) {
  using namespace ecgrid;
  using sim::sharded::InlineTask;
  sim::sharded::ShardedEngineConfig config;
  config.shards = shards;
  config.lookaheadSeconds = sim::sharded::conservativeLookahead(
      0.0, 3e8, 192e-6, 40, 2e6);
  sim::sharded::ShardedEngine engine(config);

  struct Timer {
    sim::sharded::ShardedEngine* engine;
    sim::sharded::ShardedEngine::ShardContext* context;
    std::uint64_t rng;
    DeliveryPayload payload;
    void operator()() {
      payload.duration += 1.0;
      rng = rng * 6364136223846793005ULL + 1442695040888963407ULL;
      const double lookahead = engine->lookaheadSeconds();
      if (rng % 16 == 0 && engine->shardCount() > 1) {
        const int target =
            (context->shard() + 1) % engine->shardCount();
        Timer next = *this;
        next.context = &engine->shardContext(target);
        context->postRemote(target, lookahead * (1.0 + (rng % 7)),
                            InlineTask(next), "dispatch/hop");
      } else {
        context->postLocal(lookahead * 0.25 * (1 + (rng % 5)),
                           InlineTask(*this), "dispatch/tick");
      }
    }
  };
  static_assert(sizeof(Timer) <= InlineTask::kInlineBytes);

  // Seed the whole standing population inside the first lookahead
  // window so it is live from the start.
  for (int i = 0; i < kStanding; ++i) {
    const int shard = i % shards;
    Timer timer{&engine, &engine.shardContext(shard),
                0x9e3779b97f4a7c15ULL * (i + 1), DeliveryPayload{}};
    engine.seedWindowed(
        shard, config.lookaheadSeconds * static_cast<double>(i) / kStanding,
        InlineTask(timer), "dispatch/seed");
  }
  // The timers live forever; bound the run by simulated horizon sized
  // so the executed-event count lands near `events` (each timer fires
  // roughly every 0.75 * lookahead across the mix of delays).
  const double horizon =
      config.lookaheadSeconds *
      (1.0 + 0.75 * static_cast<double>(events) / kStanding);
  bench::WallTimer timer;
  const sim::sharded::WindowedStats stats = engine.runWindowed(1, horizon);
  return stats.eventsExecuted / timer.seconds();
}

}  // namespace

int main() {
  using namespace ecgrid;
  using harness::ProtocolKind;

  const std::vector<ProtocolKind> protocols = {
      ProtocolKind::kGrid, ProtocolKind::kEcgrid, ProtocolKind::kGaf};
  const double duration = bench::quickMode() ? 120.0 : 590.0;

  std::printf("Simulator profile — event dispatch by label\n");
  std::printf("(paper baseline, horizon %.0f s; wall-clock attribution is "
              "indicative, counts are deterministic)\n",
              duration);

  bench::WallTimer timer;
  bench::BenchReport report("profile");

  std::vector<harness::ScenarioConfig> configs;
  for (ProtocolKind protocol : protocols) {
    harness::ScenarioConfig config = bench::paperBaseline();
    config.protocol = protocol;
    config.duration = duration;
    config.profileSimulator = true;
    config.profileQueueSampleEvents = 1024;
    bench::applyHorizonCap(config);
    configs.push_back(config);
  }
  std::vector<harness::ScenarioResult> results =
      harness::runScenariosParallel(configs, bench::benchJobs());
  report.addRuns(results);

  std::size_t run = 0;
  for (ProtocolKind protocol : protocols) {
    const harness::ScenarioResult& result = results[run++];
    std::printf("\n%s — %llu events, top labels by wall share:\n",
                harness::toString(protocol),
                static_cast<unsigned long long>(result.eventsExecuted));

    // Rank labels by wall seconds from the metrics snapshot.
    std::vector<std::pair<std::string, double>> byWall;
    for (const auto& [name, value] : result.metrics) {
      const std::string prefix = "profile.events.";
      const std::string suffix = ".wall_s";
      if (name.size() > prefix.size() + suffix.size() &&
          name.compare(0, prefix.size(), prefix) == 0 &&
          name.compare(name.size() - suffix.size(), suffix.size(), suffix) ==
              0) {
        byWall.emplace_back(
            name.substr(prefix.size(),
                        name.size() - prefix.size() - suffix.size()),
            value);
      }
    }
    std::sort(byWall.begin(), byWall.end(),
              [](const auto& a, const auto& b) { return a.second > b.second; });
    double totalWall = 0.0;
    if (auto it = result.metrics.find("profile.wall_s_total");
        it != result.metrics.end()) {
      totalWall = it->second;
    }
    for (std::size_t i = 0; i < byWall.size() && i < 8; ++i) {
      auto countIt =
          result.metrics.find("profile.events." + byWall[i].first + ".count");
      double count = countIt != result.metrics.end() ? countIt->second : 0.0;
      std::printf("  %-24s %10.0f events  %8.3f s  %5.1f%%\n",
                  byWall[i].first.c_str(), count, byWall[i].second,
                  totalWall > 0.0 ? 100.0 * byWall[i].second / totalWall : 0.0);
    }

    report.addScenarioMetrics(harness::toString(protocol), result.metrics);

    char label[64];
    std::snprintf(label, sizeof label, "queue_depth_%s",
                  harness::toString(protocol));
    report.addSeries(bench::downsampleEnvelope(label,
                                               result.queueDepthSamples));
  }

  // --- Scenario shard scaling -------------------------------------------
  // The profiled ECGRID scenario, serial vs sharded. Sequenced mode
  // executes the identical event schedule (the parity tests prove it),
  // so events/s here measures engine overhead, and the sharded run's
  // snapshot carries the per-shard wall attribution (profile.shards.*).
  {
    const int shards = std::max(4, bench::benchShards());
    std::printf("\nScenario shard scaling (sequenced; identical schedule, "
                "1 vs %d shards):\n", shards);
    harness::ScenarioConfig config = bench::paperBaseline();
    config.protocol = ProtocolKind::kEcgrid;
    config.duration = bench::quickMode() ? 60.0 : 300.0;
    config.profileSimulator = true;
    bench::applyHorizonCap(config);
    config.shards = 1;
    bench::WallTimer serialTimer;
    const harness::ScenarioResult serial = harness::runScenario(config);
    const double serialWall = serialTimer.seconds();
    config.shards = shards;
    bench::WallTimer shardedTimer;
    const harness::ScenarioResult sharded = harness::runScenario(config);
    const double shardedWall = shardedTimer.seconds();
    report.addRun(serial);
    report.addRun(sharded);
    const double serialRate = serial.eventsExecuted / serialWall;
    const double shardedRate = sharded.eventsExecuted / shardedWall;
    std::printf("  serial       %10.0f events/s\n", serialRate);
    std::printf("  %d shards     %10.0f events/s  (%.2fx; %llu boundary "
                "events, %llu migrations)\n",
                shards, shardedRate, shardedRate / serialRate,
                static_cast<unsigned long long>(sharded.crossShardEvents),
                static_cast<unsigned long long>(sharded.shardMigrations));
    report.addMetric("scenario.serial.events_per_s", serialRate);
    report.addMetric("scenario.sharded.events_per_s", shardedRate);
    report.addMetric("scenario.sharded.shards", shards);
    report.addMetric("scenario.sharded.cross_shard_events",
                     static_cast<double>(sharded.crossShardEvents));
    report.addMetric("scenario.sharded.migrations",
                     static_cast<double>(sharded.shardMigrations));
    report.addScenarioMetrics("ecgrid_sharded", sharded.metrics);
  }

  // --- Dispatch shard scaling -------------------------------------------
  // Pure event-dispatch throughput: the serial queue (InlineTask slots,
  // with the pre-PR-9 std::function-boxed strategy alongside for the
  // storage-migration delta) vs the windowed sharded engine at 1/2/4/8
  // shards. The >= 2x acceptance gate lives on dispatch.speedup_shards4.
  {
    const std::uint64_t events = bench::quickMode() ? 400'000 : 4'000'000;
    std::printf("\nDispatch shard scaling (%llu events, standing timers):\n",
                static_cast<unsigned long long>(events));
    const double boxedRate = serialStdFunctionDispatchEventsPerSecond(events);
    const double serialRate = serialDispatchEventsPerSecond(events);
    std::printf("  serial boxed %10.0f events/s  (std::function per event)\n",
                boxedRate);
    std::printf("  serial queue %10.0f events/s  (InlineTask slots, %.2fx "
                "boxed)\n",
                serialRate, serialRate / boxedRate);
    report.addMetric("dispatch.serial_stdfunction.events_per_s", boxedRate);
    report.addMetric("dispatch.serial.events_per_s", serialRate);
    report.addMetric("dispatch.serial_inline_speedup", serialRate / boxedRate);
    double rate4 = 0.0;
    for (int shards : {1, 2, 4, 8}) {
      const double rate = windowedDispatchEventsPerSecond(shards, events);
      if (shards == 4) rate4 = rate;
      std::printf("  %d shard(s)   %10.0f events/s  (%.2fx serial)\n",
                  shards, rate, rate / serialRate);
      char name[48];
      std::snprintf(name, sizeof name, "dispatch.shards%d.events_per_s",
                    shards);
      report.addMetric(name, rate);
    }
    report.addMetric("dispatch.speedup_shards4", rate4 / serialRate);
  }

  report.write(timer.seconds());
  return 0;
}
