// Simulator profile — where the event loop spends its time, per protocol.
//
// Runs the paper's baseline scenario once per protocol with the simulator
// profiler enabled (harness::ScenarioConfig::profileSimulator) and reports
// per-event-label dispatch counts and wall-clock attribution, plus an
// event-queue depth timeseries sampled every `profileQueueSampleEvents`
// executed events. The profile.*.wall_s entries are wall-clock and thus
// vary run to run; profile.*.count entries and the queue-depth series are
// deterministic per (config, seed) — the profiler observes the schedule,
// it never perturbs it (the PR's determinism gate proves this).
//
// Output: BENCH_profile.json with one scenarios entry per protocol and
// queue_depth_<protocol> series (x = sim time, y = queue size).
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_support.hpp"

int main() {
  using namespace ecgrid;
  using harness::ProtocolKind;

  const std::vector<ProtocolKind> protocols = {
      ProtocolKind::kGrid, ProtocolKind::kEcgrid, ProtocolKind::kGaf};
  const double duration = bench::quickMode() ? 120.0 : 590.0;

  std::printf("Simulator profile — event dispatch by label\n");
  std::printf("(paper baseline, horizon %.0f s; wall-clock attribution is "
              "indicative, counts are deterministic)\n",
              duration);

  bench::WallTimer timer;
  bench::BenchReport report("profile");

  std::vector<harness::ScenarioConfig> configs;
  for (ProtocolKind protocol : protocols) {
    harness::ScenarioConfig config = bench::paperBaseline();
    config.protocol = protocol;
    config.duration = duration;
    config.profileSimulator = true;
    config.profileQueueSampleEvents = 1024;
    bench::applyHorizonCap(config);
    configs.push_back(config);
  }
  std::vector<harness::ScenarioResult> results =
      harness::runScenariosParallel(configs, bench::benchJobs());
  report.addRuns(results);

  std::size_t run = 0;
  for (ProtocolKind protocol : protocols) {
    const harness::ScenarioResult& result = results[run++];
    std::printf("\n%s — %llu events, top labels by wall share:\n",
                harness::toString(protocol),
                static_cast<unsigned long long>(result.eventsExecuted));

    // Rank labels by wall seconds from the metrics snapshot.
    std::vector<std::pair<std::string, double>> byWall;
    for (const auto& [name, value] : result.metrics) {
      const std::string prefix = "profile.events.";
      const std::string suffix = ".wall_s";
      if (name.size() > prefix.size() + suffix.size() &&
          name.compare(0, prefix.size(), prefix) == 0 &&
          name.compare(name.size() - suffix.size(), suffix.size(), suffix) ==
              0) {
        byWall.emplace_back(
            name.substr(prefix.size(),
                        name.size() - prefix.size() - suffix.size()),
            value);
      }
    }
    std::sort(byWall.begin(), byWall.end(),
              [](const auto& a, const auto& b) { return a.second > b.second; });
    double totalWall = 0.0;
    if (auto it = result.metrics.find("profile.wall_s_total");
        it != result.metrics.end()) {
      totalWall = it->second;
    }
    for (std::size_t i = 0; i < byWall.size() && i < 8; ++i) {
      auto countIt =
          result.metrics.find("profile.events." + byWall[i].first + ".count");
      double count = countIt != result.metrics.end() ? countIt->second : 0.0;
      std::printf("  %-24s %10.0f events  %8.3f s  %5.1f%%\n",
                  byWall[i].first.c_str(), count, byWall[i].second,
                  totalWall > 0.0 ? 100.0 * byWall[i].second / totalWall : 0.0);
    }

    report.addScenarioMetrics(harness::toString(protocol), result.metrics);

    char label[64];
    std::snprintf(label, sizeof label, "queue_depth_%s",
                  harness::toString(protocol));
    stats::TimeSeries depth(label);
    for (auto [simTime, queueSize] : result.queueDepthSamples) {
      depth.add(simTime, queueSize);
    }
    report.addSeries(depth);
  }
  report.write(timer.seconds());
  return 0;
}
