// Figure 4 — fraction of alive hosts vs. simulation time.
//
// Paper setup: 100 hosts, 10 pkt/s CBR, constant mobility (pause 0),
// roaming speed 1 m/s (a) and 10 m/s (b), horizon 2000 s. GRID (no energy
// management) collapses at ≈590 s; ECGRID and GAF extend the lifetime,
// with GAF slightly ahead of ECGRID (its Model-1 endpoints are free).
#include <cstdio>

#include "bench_support.hpp"

int main() {
  using namespace ecgrid;
  using harness::ProtocolKind;

  const std::vector<double> sampleTimes = {100, 300, 590, 800, 1000,
                                           1200, 1500, 2000};
  const double duration = bench::quickMode() ? 800.0 : 2000.0;

  std::printf("Figure 4 — fraction of alive hosts vs simulation time\n");
  std::printf("(100 hosts, 10 pkt/s, pause 0; paper: GRID down at 590 s, "
              "ECGRID/GAF extend lifetime, GAF slightly ahead)\n");

  for (double speed : {1.0, 10.0}) {
    std::printf("\n(%c) roaming speed = %.0f m/s\n", speed == 1.0 ? 'a' : 'b',
                speed);
    bench::printHeaderTimes("t (s)", sampleTimes);
    std::vector<stats::TimeSeries> csv;
    for (ProtocolKind protocol :
         {ProtocolKind::kGrid, ProtocolKind::kEcgrid, ProtocolKind::kGaf}) {
      harness::ScenarioConfig config = bench::paperBaseline();
      config.protocol = protocol;
      config.maxSpeed = speed;
      config.duration = duration;
      harness::ScenarioResult result = harness::runScenario(config);
      bench::printSampled(harness::toString(protocol), result.aliveFraction,
                          sampleTimes);
      stats::TimeSeries labelled(std::string(harness::toString(protocol)) +
                                 "_alive");
      for (auto [t, v] : result.aliveFraction.points()) labelled.add(t, v);
      csv.push_back(std::move(labelled));
    }
    bench::writeSeries(
        speed == 1.0 ? "fig4a_alive_speed1" : "fig4b_alive_speed10", csv);
  }
  return 0;
}
