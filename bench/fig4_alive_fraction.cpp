// Figure 4 — fraction of alive hosts vs. simulation time.
//
// Paper setup: 100 hosts, 10 pkt/s CBR, constant mobility (pause 0),
// roaming speed 1 m/s (a) and 10 m/s (b), horizon 2000 s. GRID (no energy
// management) collapses at ≈590 s; ECGRID and GAF extend the lifetime,
// with GAF slightly ahead of ECGRID (its Model-1 endpoints are free).
#include <cstdio>

#include "bench_support.hpp"

int main() {
  using namespace ecgrid;
  using harness::ProtocolKind;

  const std::vector<double> sampleTimes = {100, 300, 590, 800, 1000,
                                           1200, 1500, 2000};
  const std::vector<double> speeds = {1.0, 10.0};
  const std::vector<ProtocolKind> protocols = {
      ProtocolKind::kGrid, ProtocolKind::kEcgrid, ProtocolKind::kGaf};
  const double duration = bench::quickMode() ? 800.0 : 2000.0;

  std::printf("Figure 4 — fraction of alive hosts vs simulation time\n");
  std::printf("(100 hosts, 10 pkt/s, pause 0; paper: GRID down at 590 s, "
              "ECGRID/GAF extend lifetime, GAF slightly ahead)\n");

  bench::WallTimer timer;
  bench::BenchReport report("fig4_alive_fraction");

  // Flatten the (speed × protocol) sweep so independent runs can spread
  // across ECGRID_BENCH_JOBS threads; results come back in input order.
  std::vector<harness::ScenarioConfig> configs;
  for (double speed : speeds) {
    for (ProtocolKind protocol : protocols) {
      harness::ScenarioConfig config = bench::paperBaseline();
      config.protocol = protocol;
      config.maxSpeed = speed;
      config.duration = duration;
      bench::applyHorizonCap(config);
      configs.push_back(config);
    }
  }
  std::vector<harness::ScenarioResult> results =
      harness::runScenariosParallel(configs, bench::benchJobs());
  report.addRuns(results);

  std::size_t run = 0;
  for (double speed : speeds) {
    std::printf("\n(%c) roaming speed = %.0f m/s\n", speed == 1.0 ? 'a' : 'b',
                speed);
    bench::printHeaderTimes("t (s)", sampleTimes);
    std::vector<stats::TimeSeries> csv;
    for (ProtocolKind protocol : protocols) {
      const harness::ScenarioResult& result = results[run++];
      bench::printSampled(harness::toString(protocol), result.aliveFraction,
                          sampleTimes);
      char label[64];
      std::snprintf(label, sizeof label, "%s_speed%.0f",
                    harness::toString(protocol), speed);
      report.addScenarioMetrics(label, result.metrics);
      std::snprintf(label, sizeof label, "%s_alive_speed%.0f",
                    harness::toString(protocol), speed);
      stats::TimeSeries labelled(label);
      for (auto [t, v] : result.aliveFraction.points()) labelled.add(t, v);
      csv.push_back(std::move(labelled));
    }
    report.addSeries(csv);
    bench::writeSeries(
        speed == 1.0 ? "fig4a_alive_speed1" : "fig4b_alive_speed10", csv);
  }
  report.write(timer.seconds());
  return 0;
}
