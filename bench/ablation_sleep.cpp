// Ablation — what actually saves the energy?
//
// Three variants isolate ECGRID's two mechanisms:
//   GRID                      — no energy management at all;
//   ECGRID (sleep off)        — battery-aware election + load balance,
//                               but transceivers never sleep;
//   ECGRID (full)             — sleeping + paging + everything.
// The paper's core claim is that the sleeping (with RAS paging so nothing
// is lost) does the heavy lifting; election rules alone merely reshuffle
// who dies first.
#include <cstdio>

#include "bench_support.hpp"

int main() {
  using namespace ecgrid;

  const double duration = bench::quickMode() ? 900.0 : 1600.0;
  std::printf("Ablation — sleep mode vs election rules only\n");
  std::printf("  %-28s %10s %10s %10s %10s\n", "variant", "1st death",
              "alive@700", "alive@900", "PDR%%");

  auto report = [&](const char* label, harness::ScenarioConfig config) {
    config.duration = duration;
    harness::ScenarioResult result = harness::runScenario(config);
    std::printf("  %-28s %10.0f %10.2f %10.2f %10.2f\n", label,
                result.firstDeath >= sim::kTimeNever ? -1.0
                                                     : result.firstDeath,
                result.aliveFraction.valueAt(700.0),
                result.aliveFraction.valueAt(900.0),
                100.0 * result.deliveryRate);
  };

  {
    harness::ScenarioConfig config = bench::paperBaseline();
    config.protocol = harness::ProtocolKind::kGrid;
    report("GRID", config);
  }
  {
    harness::ScenarioConfig config = bench::paperBaseline();
    config.protocol = harness::ProtocolKind::kEcgrid;
    config.ecgrid.enableSleep = false;
    report("ECGRID (sleep off)", config);
  }
  {
    harness::ScenarioConfig config = bench::paperBaseline();
    config.protocol = harness::ProtocolKind::kEcgrid;
    report("ECGRID (full)", config);
  }
  return 0;
}
