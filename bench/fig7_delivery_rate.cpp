// Figure 7 — packet delivery rate vs. pause time.
//
// Same setup as Figure 6. The paper reports >99 % for all three protocols
// at both speeds and every pause time (GAF only thanks to its Model-1
// always-active endpoints).
#include <cstdio>

#include "bench_support.hpp"

int main() {
  using namespace ecgrid;
  using harness::ProtocolKind;

  const std::vector<double> pauseTimes =
      bench::quickMode() ? std::vector<double>{0, 300, 600}
                         : std::vector<double>{0, 150, 300, 450, 600};
  const std::vector<double> speeds = {1.0, 10.0};
  const std::vector<ProtocolKind> protocols = {
      ProtocolKind::kGrid, ProtocolKind::kEcgrid, ProtocolKind::kGaf};
  const int seeds = bench::seedCount(bench::quickMode() ? 1 : 2);
  const double horizon = bench::quickMode() ? 300.0 : 590.0;

  std::printf("Figure 7 — packet delivery rate (%%) vs pause time\n");
  std::printf("(horizon %.0f s, %d seed(s) averaged; paper: >99%% "
              "everywhere)\n",
              horizon, seeds);

  bench::WallTimer timer;
  bench::BenchReport report("fig7_delivery_rate");

  std::vector<harness::ScenarioConfig> configs;
  for (double speed : speeds) {
    for (ProtocolKind protocol : protocols) {
      for (double pause : pauseTimes) {
        for (int seed = 0; seed < seeds; ++seed) {
          harness::ScenarioConfig config = bench::paperBaseline();
          config.protocol = protocol;
          config.maxSpeed = speed;
          config.pauseTime = pause;
          config.duration = horizon;
          config.seed = static_cast<std::uint64_t>(1 + seed);
          bench::applyHorizonCap(config);
          configs.push_back(config);
        }
      }
    }
  }
  std::vector<harness::ScenarioResult> results =
      harness::runScenariosParallel(configs, bench::benchJobs());
  report.addRuns(results);

  std::size_t run = 0;
  for (double speed : speeds) {
    std::printf("\n(%c) roaming speed = %.0f m/s\n", speed == 1.0 ? 'a' : 'b',
                speed);
    std::printf("  %-22s", "pause (s)");
    for (double p : pauseTimes) std::printf(" %6.0f", p);
    std::printf("\n");

    std::vector<stats::TimeSeries> csv;
    for (ProtocolKind protocol : protocols) {
      char label[64];
      std::snprintf(label, sizeof label, "%s_pdr_pct_speed%.0f",
                    harness::toString(protocol), speed);
      stats::TimeSeries row(label);
      std::printf("  %-22s", harness::toString(protocol));
      for (double pause : pauseTimes) {
        char mlabel[80];
        std::snprintf(mlabel, sizeof mlabel, "%s_speed%.0f_pause%.0f",
                      harness::toString(protocol), speed, pause);
        report.addScenarioMetrics(mlabel, results[run].metrics);
        double sum = 0.0;
        for (int seed = 0; seed < seeds; ++seed) {
          sum += 100.0 * results[run++].deliveryRate;
        }
        double pct = sum / seeds;
        std::printf(" %6.2f", pct);
        row.add(pause, pct);
      }
      std::printf("\n");
      csv.push_back(std::move(row));
    }
    report.addSeries(csv);
    bench::writeSeries(
        speed == 1.0 ? "fig7a_pdr_speed1" : "fig7b_pdr_speed10", csv);
  }
  report.write(timer.seconds());
  return 0;
}
