// Figure 6 — mean packet delivery latency vs. pause time.
//
// Paper setup: 100 hosts, 10 pkt/s, horizon 590 s (GRID's lifetime),
// pause times 0–600 s, speeds 1 and 10 m/s. All three protocols land in
// the same single-digit-to-low-teens millisecond band, roughly flat in
// pause time and slightly higher at 10 m/s. Results are averaged over
// several seeds because a single CBR flow's latency is dominated by its
// (random) endpoint distance.
#include <cstdio>

#include "bench_support.hpp"

int main() {
  using namespace ecgrid;
  using harness::ProtocolKind;

  const std::vector<double> pauseTimes =
      bench::quickMode() ? std::vector<double>{0, 300, 600}
                         : std::vector<double>{0, 150, 300, 450, 600};
  const std::vector<double> speeds = {1.0, 10.0};
  const std::vector<ProtocolKind> protocols = {
      ProtocolKind::kGrid, ProtocolKind::kEcgrid, ProtocolKind::kGaf};
  const int seeds = bench::seedCount(bench::quickMode() ? 1 : 2);
  const double horizon = bench::quickMode() ? 300.0 : 590.0;

  std::printf("Figure 6 — mean packet delivery latency (ms) vs pause time\n");
  std::printf("(horizon %.0f s, %d seed(s) averaged; paper: 7.1–10.7 ms at "
              "1 m/s, 8.5–12.5 ms at 10 m/s)\n",
              horizon, seeds);

  bench::WallTimer timer;
  bench::BenchReport report("fig6_latency");

  std::vector<harness::ScenarioConfig> configs;
  for (double speed : speeds) {
    for (ProtocolKind protocol : protocols) {
      for (double pause : pauseTimes) {
        for (int seed = 0; seed < seeds; ++seed) {
          harness::ScenarioConfig config = bench::paperBaseline();
          config.protocol = protocol;
          config.maxSpeed = speed;
          config.pauseTime = pause;
          config.duration = horizon;
          config.seed = static_cast<std::uint64_t>(1 + seed);
          bench::applyHorizonCap(config);
          configs.push_back(config);
        }
      }
    }
  }
  std::vector<harness::ScenarioResult> results =
      harness::runScenariosParallel(configs, bench::benchJobs());
  report.addRuns(results);

  std::size_t run = 0;
  for (double speed : speeds) {
    std::printf("\n(%c) roaming speed = %.0f m/s\n", speed == 1.0 ? 'a' : 'b',
                speed);
    std::printf("  %-22s", "pause (s)");
    for (double p : pauseTimes) std::printf(" %6.0f", p);
    std::printf("\n");

    std::vector<stats::TimeSeries> csv;
    for (ProtocolKind protocol : protocols) {
      char label[80];
      std::snprintf(label, sizeof label, "%s_latency_ms_speed%.0f",
                    harness::toString(protocol), speed);
      stats::TimeSeries row(label);
      std::snprintf(label, sizeof label, "%s_latency_p99_ms_speed%.0f",
                    harness::toString(protocol), speed);
      stats::TimeSeries p99Row(label);
      std::printf("  %-22s", harness::toString(protocol));
      for (double pause : pauseTimes) {
        double sumMs = 0.0;
        double sumP99Ms = 0.0;
        // Seed 0's full metrics snapshot (including the e2e.latency_s
        // histogram) represents the scenario in the perf record.
        std::snprintf(label, sizeof label, "%s_speed%.0f_pause%.0f",
                      harness::toString(protocol), speed, pause);
        report.addScenarioMetrics(label, results[run].metrics);
        for (int seed = 0; seed < seeds; ++seed) {
          sumMs += 1e3 * results[run].meanLatencySeconds;
          sumP99Ms += 1e3 * results[run].p99LatencySeconds;
          ++run;
        }
        double meanMs = sumMs / seeds;
        std::printf(" %6.1f", meanMs);
        row.add(pause, meanMs);
        p99Row.add(pause, sumP99Ms / seeds);
      }
      std::printf("\n");
      csv.push_back(std::move(row));
      csv.push_back(std::move(p99Row));
    }
    report.addSeries(csv);
    bench::writeSeries(
        speed == 1.0 ? "fig6a_latency_speed1" : "fig6b_latency_speed10", csv);
  }
  report.write(timer.seconds());
  return 0;
}
