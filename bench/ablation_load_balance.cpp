// Ablation — ECGRID's battery-level load-balance retirement (paper §3.2).
//
// Compares full ECGRID against ECGRID with load-balance retirement
// disabled (gateways serve until they leave the grid or die). The rule's
// value shows up in the *spread* of death times: without rotation the
// unlucky early gateways burn out first while sleepers coast, so first
// deaths come earlier and the alive curve decays with a long tail.
#include <algorithm>
#include <cmath>
#include <cstdio>

#include "bench_support.hpp"

namespace {

double deathSpread(const std::vector<double>& deaths) {
  if (deaths.size() < 2) return 0.0;
  double mean = 0.0;
  for (double d : deaths) mean += d;
  mean /= static_cast<double>(deaths.size());
  double var = 0.0;
  for (double d : deaths) var += (d - mean) * (d - mean);
  return std::sqrt(var / static_cast<double>(deaths.size()));
}

}  // namespace

int main() {
  using namespace ecgrid;

  const double duration = bench::quickMode() ? 900.0 : 1600.0;
  std::printf("Ablation — ECGRID load-balance retirement\n");
  std::printf("  %-28s %10s %10s %10s %10s\n", "variant", "1st death",
              "death std", "alive@800", "PDR%%");

  for (bool loadBalance : {true, false}) {
    harness::ScenarioConfig config = bench::paperBaseline();
    config.protocol = harness::ProtocolKind::kEcgrid;
    config.duration = duration;
    config.ecgrid.enableLoadBalance = loadBalance;
    harness::ScenarioResult result = harness::runScenario(config);
    std::printf("  %-28s %10.0f %10.1f %10.2f %10.2f\n",
                loadBalance ? "ECGRID (load balance on)"
                            : "ECGRID (load balance off)",
                result.firstDeath >= sim::kTimeNever ? -1.0
                                                     : result.firstDeath,
                deathSpread(result.deathTimes),
                result.aliveFraction.valueAt(800.0),
                100.0 * result.deliveryRate);
  }
  return 0;
}
