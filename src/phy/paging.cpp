#include "phy/paging.hpp"

#include "obs/observability.hpp"
#include "util/error.hpp"

namespace ecgrid::phy {

PagingChannel::PagingChannel(sim::Simulator& sim, const PagingConfig& config)
    : sim_(sim),
      config_(config),
      mPagesSent_(obs::counter(sim, "paging.pages_sent")),
      mPagesDelivered_(obs::counter(sim, "paging.pages_delivered")),
      mPagesLost_(obs::counter(sim, "paging.pages_lost")) {
  ECGRID_REQUIRE(config.rangeMeters > 0.0, "paging range must be positive");
  ECGRID_REQUIRE(config.latencySeconds >= 0.0, "latency cannot be negative");
}

std::size_t PagingChannel::attach(
    net::NodeId id, std::function<geo::Vec2()> position,
    std::function<geo::GridCoord()> cell,
    std::function<void(const net::PageSignal&)> onPaged) {
  ECGRID_REQUIRE(position && cell && onPaged, "all pager hooks required");
  Attachment a;
  a.id = id;
  a.active = true;
  a.position = std::move(position);
  a.cell = std::move(cell);
  a.onPaged = std::move(onPaged);
  attachments_.push_back(std::move(a));
  return attachments_.size() - 1;
}

void PagingChannel::detach(std::size_t attachmentId) {
  ECGRID_REQUIRE(attachmentId < attachments_.size(), "bad attachment id");
  attachments_[attachmentId].active = false;
}

bool PagingChannel::inRange(const geo::Vec2& from, const Attachment& a) const {
  return from.distanceSquaredTo(a.position()) <=
         config_.rangeMeters * config_.rangeMeters;
}

void PagingChannel::deliver(const Attachment& a,
                            const net::PageSignal& signal) {
  if (config_.pageLoss && config_.pageLoss(a.id)) {
    ++pagesLost_;
    mPagesLost_.add();
    return;
  }
  ++pagesDelivered_;
  mPagesDelivered_.add();
  // Copy the hook: the attachment vector may grow before the event fires.
  // scheduleFor routes the signal to the paged host's shard (paging
  // across shards is a boundary event under the sharded engine).
  auto hook = a.onPaged;
  sim_.scheduleFor(
      sim::hostEventKey(a.id), config_.latencySeconds,
      [hook, signal] { hook(signal); }, "paging/deliver");
}

void PagingChannel::pageHost(net::NodeId pagedBy, const geo::Vec2& from,
                             net::NodeId target) {
  ++pagesSent_;
  mPagesSent_.add();
  net::PageSignal signal;
  signal.kind = net::PageKind::kHost;
  signal.host = target;
  signal.pagedBy = pagedBy;
  for (const Attachment& a : attachments_) {
    if (!a.active || a.id != target) continue;
    if (inRange(from, a)) deliver(a, signal);
  }
}

void PagingChannel::pageGrid(net::NodeId pagedBy, const geo::Vec2& from,
                             const geo::GridCoord& grid) {
  ++pagesSent_;
  mPagesSent_.add();
  net::PageSignal signal;
  signal.kind = net::PageKind::kGrid;
  signal.grid = grid;
  signal.pagedBy = pagedBy;
  for (const Attachment& a : attachments_) {
    if (!a.active || a.id == pagedBy) continue;
    if (a.cell() == grid && inRange(from, a)) deliver(a, signal);
  }
}

}  // namespace ecgrid::phy
