#include "phy/spatial_index.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace ecgrid::phy {

void SpatialIndex::addToBucket(std::size_t id, const geo::GridCoord& bucket) {
  buckets_[bucket].push_back(id);
}

void SpatialIndex::removeFromBucket(std::size_t id,
                                    const geo::GridCoord& bucket) {
  auto it = buckets_.find(bucket);
  ECGRID_CHECK(it != buckets_.end(), "spatial index bucket missing");
  std::vector<std::size_t>& ids = it->second;
  auto pos = std::find(ids.begin(), ids.end(), id);
  ECGRID_CHECK(pos != ids.end(), "id missing from its spatial index bucket");
  *pos = ids.back();
  ids.pop_back();
  if (ids.empty()) buckets_.erase(it);
}

void SpatialIndex::insert(std::size_t id, const geo::Vec2& position) {
  geo::GridCoord bucket = grid_.cellOf(position);
  bool inserted = entries_.emplace(id, bucket).second;
  ECGRID_CHECK(inserted, "id already in spatial index");
  addToBucket(id, bucket);
}

void SpatialIndex::remove(std::size_t id) {
  auto it = entries_.find(id);
  ECGRID_CHECK(it != entries_.end(), "id not in spatial index");
  removeFromBucket(id, it->second);
  entries_.erase(it);
}

void SpatialIndex::update(std::size_t id, const geo::Vec2& position) {
  auto it = entries_.find(id);
  ECGRID_CHECK(it != entries_.end(), "id not in spatial index");
  geo::GridCoord bucket = grid_.cellOf(position);
  if (bucket == it->second) return;
  removeFromBucket(id, it->second);
  addToBucket(id, bucket);
  it->second = bucket;
}

void SpatialIndex::collectNear(const geo::Vec2& position,
                               std::vector<std::size_t>& out) const {
  geo::GridCoord center = grid_.cellOf(position);
  for (std::int32_t dy = -1; dy <= 1; ++dy) {
    for (std::int32_t dx = -1; dx <= 1; ++dx) {
      auto it = buckets_.find(geo::GridCoord{center.x + dx, center.y + dy});
      if (it == buckets_.end()) continue;
      out.insert(out.end(), it->second.begin(), it->second.end());
    }
  }
}

}  // namespace ecgrid::phy
