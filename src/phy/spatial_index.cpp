#include "phy/spatial_index.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/hot_path.hpp"

namespace ecgrid::phy {

// Bucket membership is amortized steady-state: once mobility has
// materialized the occupied cells and their high-water populations, moves
// only splice ids between existing vectors. The map/vector growth below is
// that warm-up, so it carries lint allows instead of a runtime hot scope.
ECGRID_HOT_PATH void SpatialIndex::addToBucket(std::size_t id,
                                               const geo::GridCoord& bucket) {
  buckets_[bucket].push_back(id);  // ecgrid-lint: allow(hot-path-container-growth)
}

ECGRID_HOT_PATH void SpatialIndex::removeFromBucket(
    std::size_t id, const geo::GridCoord& bucket) {
  auto it = buckets_.find(bucket);
  ECGRID_CHECK(it != buckets_.end(), "spatial index bucket missing");
  std::vector<std::size_t>& ids = it->second;
  auto pos = std::find(ids.begin(), ids.end(), id);
  ECGRID_CHECK(pos != ids.end(), "id missing from its spatial index bucket");
  *pos = ids.back();
  ids.pop_back();
  if (ids.empty()) buckets_.erase(it);
}

void SpatialIndex::insert(std::size_t id, const geo::Vec2& position) {
  geo::GridCoord bucket = grid_.cellOf(position);
  bool inserted = entries_.emplace(id, bucket).second;
  ECGRID_CHECK(inserted, "id already in spatial index");
  addToBucket(id, bucket);
}

void SpatialIndex::remove(std::size_t id) {
  auto it = entries_.find(id);
  ECGRID_CHECK(it != entries_.end(), "id not in spatial index");
  removeFromBucket(id, it->second);
  entries_.erase(it);
}

ECGRID_HOT_PATH void SpatialIndex::update(std::size_t id,
                                          const geo::Vec2& position) {
  auto it = entries_.find(id);
  ECGRID_CHECK(it != entries_.end(), "id not in spatial index");
  geo::GridCoord bucket = grid_.cellOf(position);
  if (bucket == it->second) return;
  removeFromBucket(id, it->second);
  addToBucket(id, bucket);
  it->second = bucket;
}

ECGRID_HOT_PATH void SpatialIndex::collectNear(
    const geo::Vec2& position, std::vector<std::size_t>& out) const {
  geo::GridCoord center = grid_.cellOf(position);
  for (std::int32_t dy = -1; dy <= 1; ++dy) {
    for (std::int32_t dx = -1; dx <= 1; ++dx) {
      auto it = buckets_.find(geo::GridCoord{center.x + dx, center.y + dy});
      if (it == buckets_.end()) continue;
      // Caller-owned scratch, reserved at its high-water mark by the
      // Channel constructor.
      out.insert(out.end(), it->second.begin(), it->second.end());  // ecgrid-lint: allow(hot-path-container-growth)
    }
  }
}

}  // namespace ecgrid::phy
