// Radio transceiver state machine with integrated energy accounting.
//
// States: Idle (listening), Tx, Rx, Sleep (transceiver off, RAS pager
// still alive), Off (host dead). Every state change re-prices the battery
// draw using the paper's power table and re-arms the depletion timer, so
// hosts die at the exact instant their integral of power hits capacity.
//
// Reception models collisions: any two transmissions overlapping in time
// at a receiver corrupt each other (no capture). Frames are decoded and
// handed up only when their reception completes uncorrupted and the frame
// is addressed to this host or broadcast.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "energy/battery.hpp"
#include "energy/power_profile.hpp"
#include "net/packet.hpp"
#include "sim/simulator.hpp"
#include "util/hot_path.hpp"
#include "util/ownership.hpp"

namespace ecgrid::phy {

class Channel;

enum class RadioState : std::uint8_t {
  kIdle,
  kTx,
  kRx,
  kSleep,
  kOff,
};

const char* toString(RadioState s);

class ECGRID_DOMAIN_PER_HOST Radio {
 public:
  /// `battery` and `sim` must outlive the radio. The radio starts Idle.
  Radio(sim::Simulator& sim, energy::Battery& battery,
        const energy::PowerProfile& profile, net::NodeId id);

  ~Radio();
  Radio(const Radio&) = delete;
  Radio& operator=(const Radio&) = delete;

  net::NodeId id() const { return id_; }
  RadioState state() const { return state_; }
  bool sleeping() const { return state_ == RadioState::kSleep; }
  bool dead() const { return state_ == RadioState::kOff; }
  /// True while a sleep() is deferred behind an in-flight transmission.
  bool sleepPending() const { return sleepPending_; }

  /// Wired once by the Node / network builder.
  void attachChannel(Channel* channel) { channel_ = channel; }

  /// Sentinel for "not attached to a channel".
  static constexpr std::size_t kNoAttachment = static_cast<std::size_t>(-1);

  /// Channel bookkeeping: the attachment slot this radio occupies, set by
  /// Channel::attach and cleared by Channel::detach. Lets transmitFrom
  /// find the sender in O(1) instead of scanning all attachments.
  void setChannelAttachmentId(std::size_t id) { channelAttachmentId_ = id; }
  std::size_t channelAttachmentId() const { return channelAttachmentId_; }

  /// Frame fully received, uncorrupted, addressed to us (or broadcast).
  void setFrameCallback(std::function<void(const net::Packet&)> cb);
  /// Transmission finished (MAC may start its next access cycle).
  void setTxCompleteCallback(std::function<void()> cb);
  /// Battery hit zero; the radio is already Off.
  void setDeathCallback(std::function<void()> cb);

  /// True when the medium is sensed busy at this radio (we are
  /// transmitting or at least one transmission is arriving).
  bool mediumBusy() const {
    return state_ == RadioState::kTx || state_ == RadioState::kRx;
  }

  /// Earliest time the currently sensed activity ends (own transmission,
  /// arriving frames, or the NAV reservation below). Returns the current
  /// time when the medium is idle. The MAC defers its backoff to this
  /// instant, as 802.11 DCF freezes backoff counters while busy.
  sim::Time mediumIdleAt() const;

  /// Virtual carrier sense: overhearing a unicast addressed to another
  /// host reserves the medium for `guard` seconds past the frame end, so
  /// the receiver's SIFS + ACK go uncontested (802.11's NAV).
  void setNavGuard(sim::Time guard) { navGuard_ = guard; }

  /// Begin transmitting; the radio holds Tx for `duration` then reverts to
  /// Idle and fires the tx-complete callback. Requires Idle state (the MAC
  /// enforces carrier sense; transmitting over an in-progress reception
  /// aborts that reception, as real half-duplex hardware does).
  void transmit(const net::Packet& packet, sim::Time duration);

  /// Enter sleep mode. If a transmission is in flight the sleep is
  /// deferred until it completes. Any in-progress receptions are lost.
  void sleep();

  /// Leave sleep mode (RAS wake or protocol decision). No-op unless
  /// sleeping. `wakeLatency` models transceiver power-up; the radio is
  /// unable to receive until it elapses.
  void wake();

  /// Fault-injection (host crash): force the transceiver Off WITHOUT
  /// firing the death callback — the host is failed, not battery-dead.
  /// Off draws zero power, so the battery freezes for the downtime.
  /// No-op if already Off.
  void powerDown();

  /// Fault-injection (host restart): bring a powered-down radio back to
  /// Idle. Requires Off state. Carrier-sense residue (NAV, interference)
  /// from before the crash is discarded.
  void powerUp();

  /// Channel-facing: a transmission starts arriving at this radio.
  /// `duration` is its airtime; `packet` the frame carried.
  void beginReceive(const net::Packet& packet, sim::Time duration);

  /// Channel-facing: undecodable energy arrives (a transmitter inside the
  /// interference ring but outside decode range). Corrupts any reception
  /// in progress or starting while it lasts, and holds carrier sense
  /// busy, but is never delivered.
  void beginInterference(sim::Time duration);

  /// Consumed/remaining energy passthroughs for stats.
  energy::Battery& battery() { return battery_; }

 private:
  struct Reception {
    net::Packet packet;
    sim::Time end = 0.0;
    bool corrupted = false;
    sim::EventHandle endEvent;
  };

  void setState(RadioState next);
  void rearmDepletion();
  void die();
  void onReceptionEnd(std::size_t token);
  void abortAllReceptions();

  sim::Simulator& sim_;
  energy::Battery& battery_;
  energy::PowerProfile profile_;
  net::NodeId id_;
  Channel* channel_ = nullptr;
  std::size_t channelAttachmentId_ = kNoAttachment;

  RadioState state_ = RadioState::kIdle;
  bool sleepPending_ = false;
  sim::Time txEndsAt_ = 0.0;
  sim::Time navGuard_ = 0.0;
  sim::Time navUntil_ = 0.0;
  sim::Time interferenceUntil_ = 0.0;

  std::vector<std::pair<std::size_t, Reception>> receptions_;
  std::size_t nextReceptionToken_ = 0;

  sim::EventHandle txEnd_;
  sim::EventHandle depletion_;

  std::function<void(const net::Packet&)> onFrame_;
  std::function<void()> onTxComplete_;
  std::function<void()> onDeath_;
};

/// One Radio per host at city scale: three std::function callbacks
/// (96 B) plus the power profile dominate; the budget keeps incidental
/// state from creeping in.
ECGRID_LAYOUT_BUDGET(Radio, 280);

}  // namespace ecgrid::phy
