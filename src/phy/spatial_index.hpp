// Grid-bucket spatial index over channel attachments.
//
// The channel partitions the plane into square buckets of side strictly
// greater than the radio's effective reach (decode range or interference
// range, whichever is larger). Any receiver within reach of a transmitter
// then lies in the transmitter's bucket or one of its eight neighbours, so
// a broadcast only has to examine the O(density) radios in a 3x3 block of
// buckets instead of all N attachments.
//
// The index stores *cells*, not positions: an entry is (attachment id,
// bucket), refreshed by the owner whenever the radio crosses a bucket
// boundary (Node drives this from a mobility::GridTracker armed on the
// index grid). Because the bucket side exceeds the effective reach by a
// strict margin, an entry that is stale by one boundary crossing within
// the current timestamp still lands in the correct 3x3 neighbourhood —
// see DESIGN.md "Performance" for the argument.
#pragma once

#include <cstddef>
#include <unordered_map>
#include <vector>

#include "geo/grid.hpp"
#include "geo/vec2.hpp"
#include "util/ownership.hpp"

namespace ecgrid::phy {

class ECGRID_DOMAIN_PER_SCENARIO SpatialIndex {
 public:
  /// `cellSideMeters` must be positive (GridMap enforces this); callers
  /// pick it strictly larger than the effective radio reach.
  explicit SpatialIndex(double cellSideMeters) : grid_(cellSideMeters) {}

  /// The bucket grid. Stable for the index's lifetime, so callers may arm
  /// GridTrackers on a reference to it.
  const geo::GridMap& grid() const { return grid_; }

  /// Register `id` at `position`. `id` must not already be present.
  void insert(std::size_t id, const geo::Vec2& position);

  /// Remove `id`. `id` must be present.
  void remove(std::size_t id);

  /// Re-bucket `id` after it moved. Cheap no-op when the bucket is
  /// unchanged.
  void update(std::size_t id, const geo::Vec2& position);

  std::size_t size() const { return entries_.size(); }

  /// Append every id whose bucket is within Chebyshev distance 1 of the
  /// bucket containing `position` (the 3x3 block). Order is unspecified —
  /// callers needing determinism must sort.
  void collectNear(const geo::Vec2& position,
                   std::vector<std::size_t>& out) const;

 private:
  void addToBucket(std::size_t id, const geo::GridCoord& bucket);
  void removeFromBucket(std::size_t id, const geo::GridCoord& bucket);

  geo::GridMap grid_;
  std::unordered_map<geo::GridCoord, std::vector<std::size_t>> buckets_;
  std::unordered_map<std::size_t, geo::GridCoord> entries_;
};

}  // namespace ecgrid::phy
