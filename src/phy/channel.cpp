#include "phy/channel.hpp"

#include <algorithm>
#include <cmath>

#include "obs/observability.hpp"
#include "phy/radio.hpp"
#include "util/error.hpp"
#include "util/hot_path.hpp"

namespace ecgrid::phy {

namespace {
// Index buckets must be strictly wider than the effective reach so that a
// receiver whose bucket is stale by one boundary crossing (GridTracker
// events at the same timestamp may not have fired yet) still falls inside
// the sender's 3x3 neighbourhood. Any factor > 1 works; 1/16 extra keeps
// the candidate blocks tight.
constexpr double kIndexCellMargin = 1.0625;

// Candidate scratch capacity: a 3x3 bucket neighbourhood at paper-baseline
// densities holds a few dozen radios; 256 covers city-scale hotspots so
// steady-state transmissions never grow the buffer.
constexpr std::size_t kInitialScratch = 256;
}  // namespace

Channel::Channel(sim::Simulator& sim, const ChannelConfig& config)
    : sim_(sim),
      config_(config),
      mFramesTransmitted_(obs::counter(sim, "phy.frames_transmitted")),
      mDeliveriesScheduled_(obs::counter(sim, "phy.deliveries_scheduled")),
      mDeliveriesCorrupted_(obs::counter(sim, "phy.deliveries_corrupted")) {
  ECGRID_REQUIRE(config.rangeMeters > 0.0, "range must be positive");
  ECGRID_REQUIRE(config.bitrateBps > 0.0, "bitrate must be positive");
  if (config_.useSpatialIndex) {
    double reach =
        std::max(config_.rangeMeters, config_.interferenceRangeMeters);
    index_.emplace(reach * kIndexCellMargin);
  }
  scratch_.reserve(kInitialScratch);
}

sim::Time Channel::frameAirtime(int bytes) const {
  ECGRID_REQUIRE(bytes > 0, "frame must have positive size");
  return config_.preambleSeconds + bytes * 8.0 / config_.bitrateBps;
}

std::size_t Channel::attach(Radio* radio, std::function<geo::Vec2()> position) {
  ECGRID_REQUIRE(radio != nullptr, "radio required");
  ECGRID_REQUIRE(position != nullptr, "position provider required");
  std::size_t id;
  if (!freeSlots_.empty()) {
    id = freeSlots_.back();
    freeSlots_.pop_back();
    attachments_[id] = Attachment{radio, std::move(position)};
  } else {
    id = attachments_.size();
    attachments_.push_back(Attachment{radio, std::move(position)});
  }
  radio->setChannelAttachmentId(id);
  if (index_) index_->insert(id, attachments_[id].position());
  ++liveAttachments_;
  return id;
}

void Channel::detach(std::size_t attachmentId) {
  ECGRID_REQUIRE(attachmentId < attachments_.size(), "bad attachment id");
  Attachment& slot = attachments_[attachmentId];
  ECGRID_REQUIRE(slot.radio != nullptr, "attachment already detached");
  if (index_) index_->remove(attachmentId);
  slot.radio->setChannelAttachmentId(Radio::kNoAttachment);
  slot.radio = nullptr;
  slot.position = nullptr;
  freeSlots_.push_back(attachmentId);
  --liveAttachments_;
}

void Channel::notifyMoved(std::size_t attachmentId) {
  ECGRID_REQUIRE(attachmentId < attachments_.size(), "bad attachment id");
  if (!index_) return;
  const Attachment& slot = attachments_[attachmentId];
  ECGRID_REQUIRE(slot.radio != nullptr, "attachment is detached");
  index_->update(attachmentId, slot.position());
}

const geo::GridMap* Channel::indexGrid() const {
  return index_ ? &index_->grid() : nullptr;
}

ECGRID_HOT_PATH void Channel::deliverTo(const Attachment& attachment,
                                        net::NodeId senderId,
                                        const geo::Vec2& senderPos,
                                        const net::Packet& stamped,
                                        sim::Time duration) {
  ECGRID_HOT_SCOPE();
  const double rangeSq = config_.rangeMeters * config_.rangeMeters;
  const double interfSq =
      config_.interferenceRangeMeters * config_.interferenceRangeMeters;
  geo::Vec2 rxPos = attachment.position();
  double distSq = senderPos.distanceSquaredTo(rxPos);
  if (distSq > rangeSq && distSq > interfSq) return;
  double delay = std::sqrt(distSq) / config_.propagationSpeed;
  Radio* receiver = attachment.radio;
  if (distSq <= rangeSq) {
    ++deliveriesScheduled_;
    mDeliveriesScheduled_.add();
    if (config_.deliveryFault &&
        config_.deliveryFault(senderId, receiver->id())) {
      // Channel error: the frame arrives as undecodable energy — carrier
      // sense stays busy and concurrent receptions are ruined, but the
      // frame itself is lost (the MAC's ARQ sees a missing ACK).
      ++deliveriesCorrupted_;
      mDeliveriesCorrupted_.add();
      sim_.scheduleFor(
          sim::hostEventKey(receiver->id()), delay,
          [receiver, duration] { receiver->beginInterference(duration); },
          "phy/interference");
      return;
    }
    // scheduleFor, not schedule: the reception belongs to the receiver's
    // host, which the sharded engine may own on the other side of a
    // stripe edge (the frame-crossing-a-shard-boundary event).
    sim_.scheduleFor(
        sim::hostEventKey(receiver->id()), delay,
        [receiver, stamped, duration] {
          receiver->beginReceive(stamped, duration);
        },
        "phy/deliver");
  } else {
    // Inside the interference ring: energy arrives but cannot decode.
    sim_.scheduleFor(
        sim::hostEventKey(receiver->id()), delay,
        [receiver, duration] { receiver->beginInterference(duration); },
        "phy/interference");
  }
}

ECGRID_HOT_PATH void Channel::transmitFrom(Radio& sender,
                                           const net::Packet& packet,
                                           sim::Time duration) {
  ECGRID_HOT_SCOPE();
  ++framesTransmitted_;
  mFramesTransmitted_.add();
  net::Packet stamped = packet;
  stamped.uid = nextUid_++;

  const std::size_t senderId = sender.channelAttachmentId();
  ECGRID_CHECK(senderId < attachments_.size() &&
                   attachments_[senderId].radio == &sender,
               "transmitting radio is not attached to this channel");
  geo::Vec2 senderPos = attachments_[senderId].position();

  if (index_) {
    scratch_.clear();
    index_->collectNear(senderPos, scratch_);
    // Bucket iteration order is hash-dependent; sorting by attachment id
    // restores the exact slot-order schedule of the brute-force scan, so
    // both modes produce bit-identical simulations.
    std::sort(scratch_.begin(), scratch_.end());
    for (std::size_t id : scratch_) {
      if (id == senderId) continue;
      deliverTo(attachments_[id], sender.id(), senderPos, stamped, duration);
    }
  } else {
    for (const Attachment& a : attachments_) {
      if (a.radio == nullptr || a.radio == &sender) continue;
      deliverTo(a, sender.id(), senderPos, stamped, duration);
    }
  }
}

}  // namespace ecgrid::phy
