#include "phy/channel.hpp"

#include <cmath>

#include "phy/radio.hpp"
#include "util/error.hpp"

namespace ecgrid::phy {

Channel::Channel(sim::Simulator& sim, const ChannelConfig& config)
    : sim_(sim), config_(config) {
  ECGRID_REQUIRE(config.rangeMeters > 0.0, "range must be positive");
  ECGRID_REQUIRE(config.bitrateBps > 0.0, "bitrate must be positive");
}

sim::Time Channel::frameAirtime(int bytes) const {
  ECGRID_REQUIRE(bytes > 0, "frame must have positive size");
  return config_.preambleSeconds + bytes * 8.0 / config_.bitrateBps;
}

std::size_t Channel::attach(Radio* radio, std::function<geo::Vec2()> position) {
  ECGRID_REQUIRE(radio != nullptr, "radio required");
  ECGRID_REQUIRE(position != nullptr, "position provider required");
  attachments_.push_back(Attachment{radio, std::move(position)});
  return attachments_.size() - 1;
}

void Channel::detach(std::size_t attachmentId) {
  ECGRID_REQUIRE(attachmentId < attachments_.size(), "bad attachment id");
  attachments_[attachmentId].radio = nullptr;
  attachments_[attachmentId].position = nullptr;
}

void Channel::transmitFrom(Radio& sender, const net::Packet& packet,
                           sim::Time duration) {
  ++framesTransmitted_;
  net::Packet stamped = packet;
  stamped.uid = nextUid_++;

  // Find the sender's attachment to read its position.
  geo::Vec2 senderPos{};
  bool found = false;
  for (const Attachment& a : attachments_) {
    if (a.radio == &sender) {
      senderPos = a.position();
      found = true;
      break;
    }
  }
  ECGRID_CHECK(found, "transmitting radio is not attached to this channel");

  const double rangeSq = config_.rangeMeters * config_.rangeMeters;
  const double interfSq =
      config_.interferenceRangeMeters * config_.interferenceRangeMeters;
  for (const Attachment& a : attachments_) {
    if (a.radio == nullptr || a.radio == &sender) continue;
    geo::Vec2 rxPos = a.position();
    double distSq = senderPos.distanceSquaredTo(rxPos);
    if (distSq > rangeSq && distSq > interfSq) continue;
    double delay = std::sqrt(distSq) / config_.propagationSpeed;
    Radio* receiver = a.radio;
    if (distSq <= rangeSq) {
      ++deliveriesScheduled_;
      sim_.schedule(delay, [receiver, stamped, duration] {
        receiver->beginReceive(stamped, duration);
      });
    } else {
      // Inside the interference ring: energy arrives but cannot decode.
      sim_.schedule(delay, [receiver, duration] {
        receiver->beginInterference(duration);
      });
    }
  }
}

}  // namespace ecgrid::phy
