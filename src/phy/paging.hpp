// RAS — Remotely Activated Switch paging channel (paper §2, Fig. 1).
//
// Each host carries an RF-tag pager that keeps listening even when the
// main transceiver sleeps. A pager matches two sequences: the host's own
// ID (its unique paging sequence) and the broadcast sequence of whatever
// grid the host currently occupies. A gateway uses the former to wake one
// sleeping host when buffered data arrives for it, and the latter to wake
// the whole grid for a gateway election or RETIRE handover.
//
// Per the paper, RAS power consumption is ignored, so paging costs no
// energy on either side. Delivery is range-limited like the data radio
// (RF tags are short-range) and incurs a small fixed latency that models
// the paging signal plus transceiver power-up.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "geo/grid.hpp"
#include "geo/vec2.hpp"
#include "net/host_env.hpp"
#include "obs/metrics.hpp"
#include "sim/simulator.hpp"
#include "util/ownership.hpp"

namespace ecgrid::phy {

struct PagingConfig {
  double rangeMeters = 250.0;
  double latencySeconds = 2e-3;  ///< paging signal + transceiver power-up
  /// Fault-injection slot (src/fault): when set, consulted once per
  /// in-range pager about to receive a page; returning true means that
  /// pager misses the page. Null (the default) costs nothing. Also
  /// armable post-construction via setPageLoss.
  std::function<bool(net::NodeId target)> pageLoss;
};

class ECGRID_DOMAIN_PER_SCENARIO PagingChannel {
 public:
  PagingChannel(sim::Simulator& sim, const PagingConfig& config);

  const PagingConfig& config() const { return config_; }

  /// Register host `id`'s pager. `position` is read lazily; `cell` must
  /// return the host's current grid (for broadcast-sequence matching);
  /// `onPaged` fires when a matching page arrives. Returns attachment id.
  std::size_t attach(net::NodeId id, std::function<geo::Vec2()> position,
                     std::function<geo::GridCoord()> cell,
                     std::function<void(const net::PageSignal&)> onPaged);

  void detach(std::size_t attachmentId);

  /// Page host `target` from a pager at `from`. Delivered iff the target
  /// is in range at send time.
  void pageHost(net::NodeId pagedBy, const geo::Vec2& from,
                net::NodeId target);

  /// Page every host currently in `grid` and in range of `from`
  /// (the grid's broadcast sequence).
  void pageGrid(net::NodeId pagedBy, const geo::Vec2& from,
                const geo::GridCoord& grid);

  /// Arm (or, with nullptr, disarm) the page-loss fault slot.
  void setPageLoss(std::function<bool(net::NodeId target)> loss) {
    config_.pageLoss = std::move(loss);
  }

  std::uint64_t pagesSent() const { return pagesSent_; }
  std::uint64_t pagesDelivered() const { return pagesDelivered_; }
  /// In-range page receptions suppressed by the fault slot.
  std::uint64_t pagesLost() const { return pagesLost_; }

 private:
  struct Attachment {
    net::NodeId id = net::kBroadcastId;
    bool active = false;
    std::function<geo::Vec2()> position;
    std::function<geo::GridCoord()> cell;
    std::function<void(const net::PageSignal&)> onPaged;
  };

  void deliver(const Attachment& a, const net::PageSignal& signal);
  bool inRange(const geo::Vec2& from, const Attachment& a) const;

  sim::Simulator& sim_;
  PagingConfig config_;
  std::vector<Attachment> attachments_;
  std::uint64_t pagesSent_ = 0;
  std::uint64_t pagesDelivered_ = 0;
  std::uint64_t pagesLost_ = 0;
  // Registry mirrors of the counters above (inert without an
  // Observability hub; see obs/observability.hpp).
  obs::Counter mPagesSent_;
  obs::Counter mPagesDelivered_;
  obs::Counter mPagesLost_;
};

}  // namespace ecgrid::phy
