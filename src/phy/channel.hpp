// Shared wireless medium: unit-disk propagation at 2 Mbps.
//
// Every attached radio within `range` metres of a transmitter receives the
// frame after the speed-of-light propagation delay; radios outside hear
// nothing (unit-disk model, the same abstraction the paper's d = √2·r/3
// grid dimensioning assumes). Airtime = PLCP preamble + bytes·8/bitrate.
// Collisions are decided per-receiver by the Radio (any temporal overlap
// corrupts), so hidden-terminal losses emerge naturally.
//
// Fan-out uses a SpatialIndex by default: attachments are bucketed by a
// grid of side strictly greater than the effective reach, and a broadcast
// scans only the 3x3 buckets around the sender. Candidate ids are sorted
// before delivery so the schedule order (and hence every sequence number)
// is identical to the brute-force O(N) scan, which is kept behind
// `ChannelConfig::useSpatialIndex = false` for differential testing.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "geo/vec2.hpp"
#include "net/packet.hpp"
#include "obs/metrics.hpp"
#include "phy/spatial_index.hpp"
#include "sim/simulator.hpp"
#include "util/ownership.hpp"

namespace ecgrid::phy {

class Radio;

struct ChannelConfig {
  double rangeMeters = 250.0;     ///< paper §4 transmission range
  double bitrateBps = 2e6;        ///< paper §4 bandwidth
  double preambleSeconds = 192e-6;  ///< 802.11 DSSS long PLCP preamble
  double propagationSpeed = 3e8;  ///< m/s
  /// Interference radius: transmissions reach radios out to this distance
  /// as *undecodable energy* that corrupts concurrent receptions and
  /// holds carrier sense busy. Values <= rangeMeters (the default 0)
  /// disable the extra ring — the pure unit-disk model the paper's
  /// d = √2·r/3 dimensioning assumes. Real 802.11 cards hear roughly
  /// 1.8–2.2× their decode range; `ablation_interference` sweeps this.
  double interferenceRangeMeters = 0.0;
  /// Bucket attachments spatially so broadcasts scan O(density) radios
  /// instead of all N. Off = the brute-force full scan (identical event
  /// schedule; kept for differential tests and as a paranoia escape hatch).
  bool useSpatialIndex = true;
  /// Fault-injection slot (src/fault): when set, consulted once per
  /// (transmission, in-range receiver) pair, in ascending attachment order
  /// — identical in both fan-out modes, so the spatial-index fast path is
  /// unaffected. Returning true corrupts that delivery: the energy still
  /// arrives (carrier sense, collisions) but the frame cannot decode.
  /// Null (the default) costs nothing. Also armable post-construction via
  /// Channel::setDeliveryFault.
  std::function<bool(net::NodeId sender, net::NodeId receiver)> deliveryFault;
};

class ECGRID_DOMAIN_PER_SCENARIO Channel {
 public:
  Channel(sim::Simulator& sim, const ChannelConfig& config);

  const ChannelConfig& config() const { return config_; }

  /// Airtime of a frame of `bytes` (MAC framing already included by
  /// Packet::bytes()).
  sim::Time frameAirtime(int bytes) const;

  /// Register a radio with a provider for its *current* position
  /// (evaluated lazily at each transmission). Returns an attachment id;
  /// ids of detached radios are recycled. The id is also stored on the
  /// radio so transmitFrom can find the sender without scanning.
  std::size_t attach(Radio* radio, std::function<geo::Vec2()> position);

  /// Detach (host death). The radio receives nothing afterwards and the
  /// attachment id becomes free for reuse.
  void detach(std::size_t attachmentId);

  /// Spatial-index maintenance: the radio behind `attachmentId` may have
  /// crossed an index-bucket boundary; re-bucket it from its current
  /// position. Callers whose radios move MUST call this at least once per
  /// bucket crossing (Node arms a GridTracker on indexGrid() for exactly
  /// this). No-op in brute-force mode.
  void notifyMoved(std::size_t attachmentId);

  /// The spatial index's bucket grid, or nullptr in brute-force mode.
  /// Stable for the channel's lifetime.
  const geo::GridMap* indexGrid() const;

  /// Called by a transmitting radio. Schedules beginReceive on every other
  /// attached radio within range.
  void transmitFrom(Radio& sender, const net::Packet& packet,
                    sim::Time duration);

  /// Arm (or, with nullptr, disarm) the fault-injection slot after
  /// construction — the FaultInjector's hook point.
  void setDeliveryFault(
      std::function<bool(net::NodeId sender, net::NodeId receiver)> fault) {
    config_.deliveryFault = std::move(fault);
  }

  /// Frames ever transmitted (for stats / broadcast-storm accounting).
  std::uint64_t framesTransmitted() const { return framesTransmitted_; }
  /// Sum over transmissions of in-range potential receivers.
  std::uint64_t deliveriesScheduled() const { return deliveriesScheduled_; }
  /// In-range deliveries corrupted by the fault-injection slot.
  std::uint64_t deliveriesCorrupted() const { return deliveriesCorrupted_; }
  /// Attachments currently live (attached and not yet detached).
  std::size_t liveAttachmentCount() const { return liveAttachments_; }

 private:
  struct Attachment {
    Radio* radio = nullptr;  // nullptr = detached slot
    std::function<geo::Vec2()> position;
  };

  void deliverTo(const Attachment& attachment, net::NodeId senderId,
                 const geo::Vec2& senderPos, const net::Packet& stamped,
                 sim::Time duration);

  sim::Simulator& sim_;
  ChannelConfig config_;
  std::vector<Attachment> attachments_;
  std::vector<std::size_t> freeSlots_;
  std::optional<SpatialIndex> index_;
  std::vector<std::size_t> scratch_;  ///< candidate buffer, reused per tx
  std::size_t liveAttachments_ = 0;
  std::uint64_t framesTransmitted_ = 0;
  std::uint64_t deliveriesScheduled_ = 0;
  std::uint64_t deliveriesCorrupted_ = 0;
  std::uint64_t nextUid_ = 1;
  // Registry mirrors of the counters above (inert without an
  // Observability hub; see obs/observability.hpp).
  obs::Counter mFramesTransmitted_;
  obs::Counter mDeliveriesScheduled_;
  obs::Counter mDeliveriesCorrupted_;
};

}  // namespace ecgrid::phy
