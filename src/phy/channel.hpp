// Shared wireless medium: unit-disk propagation at 2 Mbps.
//
// Every attached radio within `range` metres of a transmitter receives the
// frame after the speed-of-light propagation delay; radios outside hear
// nothing (unit-disk model, the same abstraction the paper's d = √2·r/3
// grid dimensioning assumes). Airtime = PLCP preamble + bytes·8/bitrate.
// Collisions are decided per-receiver by the Radio (any temporal overlap
// corrupts), so hidden-terminal losses emerge naturally.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "geo/vec2.hpp"
#include "net/packet.hpp"
#include "sim/simulator.hpp"

namespace ecgrid::phy {

class Radio;

struct ChannelConfig {
  double rangeMeters = 250.0;     ///< paper §4 transmission range
  double bitrateBps = 2e6;        ///< paper §4 bandwidth
  double preambleSeconds = 192e-6;  ///< 802.11 DSSS long PLCP preamble
  double propagationSpeed = 3e8;  ///< m/s
  /// Interference radius: transmissions reach radios out to this distance
  /// as *undecodable energy* that corrupts concurrent receptions and
  /// holds carrier sense busy. Values <= rangeMeters (the default 0)
  /// disable the extra ring — the pure unit-disk model the paper's
  /// d = √2·r/3 dimensioning assumes. Real 802.11 cards hear roughly
  /// 1.8–2.2× their decode range; `ablation_interference` sweeps this.
  double interferenceRangeMeters = 0.0;
};

class Channel {
 public:
  Channel(sim::Simulator& sim, const ChannelConfig& config);

  const ChannelConfig& config() const { return config_; }

  /// Airtime of a frame of `bytes` (MAC framing already included by
  /// Packet::bytes()).
  sim::Time frameAirtime(int bytes) const;

  /// Register a radio with a provider for its *current* position
  /// (evaluated lazily at each transmission). Returns an attachment id.
  std::size_t attach(Radio* radio, std::function<geo::Vec2()> position);

  /// Detach (host death). The radio receives nothing afterwards.
  void detach(std::size_t attachmentId);

  /// Called by a transmitting radio. Schedules beginReceive on every other
  /// attached radio within range.
  void transmitFrom(Radio& sender, const net::Packet& packet,
                    sim::Time duration);

  /// Frames ever transmitted (for stats / broadcast-storm accounting).
  std::uint64_t framesTransmitted() const { return framesTransmitted_; }
  /// Sum over transmissions of in-range potential receivers.
  std::uint64_t deliveriesScheduled() const { return deliveriesScheduled_; }

 private:
  struct Attachment {
    Radio* radio = nullptr;  // nullptr = detached slot
    std::function<geo::Vec2()> position;
  };

  sim::Simulator& sim_;
  ChannelConfig config_;
  std::vector<Attachment> attachments_;
  std::uint64_t framesTransmitted_ = 0;
  std::uint64_t deliveriesScheduled_ = 0;
  std::uint64_t nextUid_ = 1;
};

}  // namespace ecgrid::phy
