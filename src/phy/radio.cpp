#include "phy/radio.hpp"

#include <algorithm>
#include <limits>

#include "phy/channel.hpp"
#include "util/error.hpp"
#include "util/hot_path.hpp"
#include "util/log.hpp"

namespace ecgrid::phy {

namespace {
constexpr const char* kTag = "radio";

// Concurrent arrivals at one receiver (decodable + interference energy).
// CSMA keeps real overlap to a handful; 16 covers collision bursts so
// steady-state receptions never grow the vector.
constexpr std::size_t kInitialReceptions = 16;
}

const char* toString(RadioState s) {
  switch (s) {
    case RadioState::kIdle:
      return "idle";
    case RadioState::kTx:
      return "tx";
    case RadioState::kRx:
      return "rx";
    case RadioState::kSleep:
      return "sleep";
    case RadioState::kOff:
      return "off";
  }
  return "?";
}

namespace {

energy::PowerState toPowerState(RadioState s) {
  switch (s) {
    case RadioState::kIdle:
      return energy::PowerState::kIdle;
    case RadioState::kTx:
      return energy::PowerState::kTx;
    case RadioState::kRx:
      return energy::PowerState::kRx;
    case RadioState::kSleep:
      return energy::PowerState::kSleep;
    case RadioState::kOff:
      return energy::PowerState::kOff;
  }
  return energy::PowerState::kOff;
}

}  // namespace

Radio::Radio(sim::Simulator& sim, energy::Battery& battery,
             const energy::PowerProfile& profile, net::NodeId id)
    : sim_(sim), battery_(battery), profile_(profile), id_(id) {
  receptions_.reserve(kInitialReceptions);
  battery_.setPowerW(profile_.totalPowerW(energy::PowerState::kIdle),
                     sim_.now());
  rearmDepletion();
}

Radio::~Radio() {
  txEnd_.cancel();
  depletion_.cancel();
  for (auto& [token, rx] : receptions_) rx.endEvent.cancel();
}

void Radio::setFrameCallback(std::function<void(const net::Packet&)> cb) {
  onFrame_ = std::move(cb);
}

void Radio::setTxCompleteCallback(std::function<void()> cb) {
  onTxComplete_ = std::move(cb);
}

void Radio::setDeathCallback(std::function<void()> cb) {
  onDeath_ = std::move(cb);
}

void Radio::setState(RadioState next) {
  if (state_ == next) return;
  state_ = next;
  battery_.setPowerW(profile_.totalPowerW(toPowerState(next)), sim_.now());
  rearmDepletion();
}

void Radio::rearmDepletion() {
  depletion_.cancel();
  if (state_ == RadioState::kOff) return;
  double horizon = battery_.timeToEmpty(sim_.now());
  if (horizon == std::numeric_limits<double>::infinity()) return;
  depletion_ = sim_.schedule(horizon, [this] { die(); }, "phy/battery");
}

void Radio::die() {
  if (state_ == RadioState::kOff) return;
  ECGRID_LOG_INFO(kTag, "host " << id_ << " battery exhausted at t="
                                << sim_.now());
  txEnd_.cancel();
  abortAllReceptions();
  setState(RadioState::kOff);
  if (onDeath_) onDeath_();
}

void Radio::powerDown() {
  if (state_ == RadioState::kOff) return;
  txEnd_.cancel();
  abortAllReceptions();
  sleepPending_ = false;
  setState(RadioState::kOff);
}

void Radio::powerUp() {
  ECGRID_REQUIRE(state_ == RadioState::kOff,
                 "powerUp requires a powered-down radio");
  navUntil_ = 0.0;
  interferenceUntil_ = 0.0;
  txEndsAt_ = 0.0;
  setState(RadioState::kIdle);
}

ECGRID_HOT_PATH void Radio::transmit(const net::Packet& packet,
                                     sim::Time duration) {
  ECGRID_HOT_SCOPE();
  ECGRID_REQUIRE(duration > 0.0, "transmit duration must be positive");
  ECGRID_CHECK(channel_ != nullptr, "radio not attached to a channel");
  if (state_ == RadioState::kOff || state_ == RadioState::kSleep) return;
  ECGRID_CHECK(state_ != RadioState::kTx, "MAC started tx over tx");
  // Half-duplex: transmitting stomps any reception in progress.
  if (state_ == RadioState::kRx) abortAllReceptions();
  txEndsAt_ = sim_.now() + duration;
  setState(RadioState::kTx);
  channel_->transmitFrom(*this, packet, duration);
  txEnd_ = sim_.schedule(
      duration,
      [this] {
        if (state_ != RadioState::kTx) return;  // died mid-transmission
        setState(sleepPending_ ? RadioState::kSleep : RadioState::kIdle);
        sleepPending_ = false;
        // Fire even when the radio fell asleep so the MAC can reset its
        // transmit latch and drain its queue.
        if (onTxComplete_) onTxComplete_();
      },
      "phy/tx_end");
}

void Radio::sleep() {
  if (state_ == RadioState::kOff || state_ == RadioState::kSleep) return;
  if (state_ == RadioState::kTx) {
    sleepPending_ = true;
    return;
  }
  if (state_ == RadioState::kRx) abortAllReceptions();
  setState(RadioState::kSleep);
}

void Radio::wake() {
  sleepPending_ = false;
  if (state_ != RadioState::kSleep) return;
  setState(RadioState::kIdle);
}

ECGRID_HOT_PATH void Radio::beginReceive(const net::Packet& packet,
                                         sim::Time duration) {
  // Trace logging below allocates when enabled; the audit gate runs with
  // logging at its default level, where both branches are dormant.
  ECGRID_HOT_SCOPE();
  if (state_ == RadioState::kOff || state_ == RadioState::kSleep ||
      state_ == RadioState::kTx) {
    if (packet.macDst == id_) {
      ECGRID_LOG_TRACE(kTag, "t=" << sim_.now() << " node " << id_
                                  << " deaf(" << toString(state_) << ") to "
                                  << packet.header->name() << " from "
                                  << packet.macSrc);
    }
    return;  // transceiver cannot hear this arrival
  }
  bool collision =
      !receptions_.empty() || sim_.now() < interferenceUntil_;
  if (collision && packet.macDst == id_) {
    ECGRID_LOG_TRACE(kTag, "t=" << sim_.now() << " node " << id_
                                << " collision on "
                                << packet.header->name() << " from "
                                << packet.macSrc);
  }
  if (!net::isBroadcast(packet.macDst) && packet.macDst != id_ &&
      navGuard_ > 0.0) {
    sim::Time reserve = sim_.now() + duration + navGuard_;
    if (reserve > navUntil_) navUntil_ = reserve;
  }
  std::size_t token = nextReceptionToken_++;
  Reception rx;
  rx.packet = packet;
  rx.end = sim_.now() + duration;
  rx.corrupted = collision;
  rx.endEvent = sim_.schedule(
      duration, [this, token] { onReceptionEnd(token); }, "phy/rx_end");
  if (collision) {
    for (auto& [t, existing] : receptions_) existing.corrupted = true;
  }
  receptions_.emplace_back(token, std::move(rx));
  setState(RadioState::kRx);
}

ECGRID_HOT_PATH void Radio::onReceptionEnd(std::size_t token) {
  auto it = std::find_if(receptions_.begin(), receptions_.end(),
                         [&](const auto& p) { return p.first == token; });
  if (it == receptions_.end()) return;
  Reception finished = std::move(it->second);
  receptions_.erase(it);
  if (receptions_.empty() && state_ == RadioState::kRx) {
    setState(RadioState::kIdle);
  }
  if (finished.corrupted) return;
  // No runtime hot scope past this point: onFrame_ climbs into the MAC
  // and routing layers, whose event bodies may allocate legitimately
  // (ACK headers, dedup entries, route-table updates).
  const net::Packet& pkt = finished.packet;
  bool forUs = net::isBroadcast(pkt.macDst) || pkt.macDst == id_;
  if (forUs && onFrame_) onFrame_(pkt);
}

ECGRID_HOT_PATH void Radio::beginInterference(sim::Time duration) {
  ECGRID_HOT_SCOPE();
  if (state_ == RadioState::kOff || state_ == RadioState::kSleep ||
      state_ == RadioState::kTx) {
    return;
  }
  sim::Time until = sim_.now() + duration;
  if (until > interferenceUntil_) interferenceUntil_ = until;
  // Any frame currently being decoded is ruined by the extra energy.
  for (auto& [token, rx] : receptions_) rx.corrupted = true;
}

ECGRID_HOT_PATH sim::Time Radio::mediumIdleAt() const {
  sim::Time now = sim_.now();
  sim::Time idleAt = now;
  if (state_ == RadioState::kTx && txEndsAt_ > idleAt) idleAt = txEndsAt_;
  for (const auto& [token, rx] : receptions_) {
    if (rx.end > idleAt) idleAt = rx.end;
  }
  if (navUntil_ > idleAt) idleAt = navUntil_;
  if (interferenceUntil_ > idleAt) idleAt = interferenceUntil_;
  return idleAt;
}

void Radio::abortAllReceptions() {
  for (auto& [token, rx] : receptions_) rx.endEvent.cancel();
  receptions_.clear();
  if (state_ == RadioState::kRx) setState(RadioState::kIdle);
}

}  // namespace ecgrid::phy
