// ECGRID — Energy-Conserving GRID routing (the paper's contribution, §3).
//
// ECGRID keeps GRID's partition and grid-by-grid routing and adds the
// energy dimension:
//   * battery-level-first gateway election (upper > boundary > lower,
//     then distance-to-centre, then smallest ID);
//   * every non-gateway host turns its transceiver off. Sleepers never
//     poll: the gateway wakes them through the RAS paging channel, either
//     individually (data arrived; unique paging sequence = host ID) or
//     grid-wide (election/RETIRE; broadcast sequence = grid coordinate);
//   * sleepers arm a GPS-derived dwell timer and wake exactly when they
//     could be leaving the grid (implemented event-exactly by
//     mobility::GridTracker), LEAVE-notify the old gateway and run the
//     newcomer handshake in the new grid;
//   * a sleeping host with data to send wakes and sends ACQ(gid, D); the
//     gateway answers with a HELLO, re-establishing who is in charge;
//   * the gateway buffers data for sleeping destinations, pages them, and
//     forwards once the destination's HELLO proves it awake;
//   * load balancing: a gateway retires when its battery level drops a
//     class (upper→boundary, boundary→lower) and shortly before
//     exhaustion, handing the routing table over via wake-all + RETIRE.
#pragma once

#include <deque>
#include <map>

#include "protocols/common/grid_protocol_base.hpp"
#include "util/ownership.hpp"

namespace ecgrid::core {

struct EcgridConfig {
  protocols::GridProtocolConfig base;

  /// An active non-gateway host returns to sleep after this long without
  /// application traffic in either direction. Deliberately shorter than
  /// the paper's CBR packet interval: ECGRID sources/destinations sleep
  /// *between* packets, waking per packet via ACQ (source side, §3.3) and
  /// RAS paging (destination side) — that is the whole point of the RAS.
  sim::Time idleBeforeSleep = 0.35;
  /// How long a gateway waits for a paged host's HELLO before re-paging.
  sim::Time pageResponseTimeout = 0.25;
  int pageRetries = 3;
  /// Buffered frames per sleeping destination.
  std::size_t wakeBufferLimit = 32;
  /// A sleeping source waits this long for the gateway's HELLO after its
  /// ACQ before declaring a no-gateway event.
  sim::Time acqResponseTimeout = 0.3;
  /// Retire (hand over gatewaying) when the battery ratio falls below
  /// this, so the RETIRE still gets out before the host dies.
  double retireBatteryRatio = 0.02;
  /// Master switch for transceiver sleeping — disabling it turns ECGRID
  /// into "GRID with battery-aware election" (used by the ablation bench).
  bool enableSleep = true;
  /// Master switch for load-balance retirement (ablation).
  bool enableLoadBalance = true;

  EcgridConfig() { base.election.useBatteryLevel = true; }
};

class ECGRID_DOMAIN_PER_HOST EcgridProtocol final : public protocols::GridProtocolBase {
 public:
  EcgridProtocol(net::HostEnv& env, const EcgridConfig& config);

  const char* name() const override { return "ECGRID"; }

  void sendData(net::NodeId destination, int payloadBytes,
                const net::DataTag& tag) override;
  void onPaged(const net::PageSignal& signal) override;
  void onCellChanged(const geo::GridCoord& from,
                     const geo::GridCoord& to) override;
  void onFrame(const net::Packet& packet) override;
  void onShutdown() override;

  bool sleeping() const { return role() == Role::kSleeping; }
  const EcgridConfig& ecgridConfig() const { return ecgridConfig_; }

  void onSendFailed(const net::Packet& packet) override;

 protected:
  void maybeSleep() override;
  bool assumeSeededHostsSleep() const override {
    return ecgridConfig_.enableSleep;
  }
  void deliverToLocalHost(net::NodeId dst, const net::Packet& frame) override;
  void beginRetire(const geo::GridCoord& forGrid) override;
  void onNoGateway() override;
  void onLocalHostActive(net::NodeId host) override;
  void onRoleChanged(Role from, Role to) override;
  void gatewayPeriodic() override;

 private:
  struct WakeState {
    std::deque<net::Packet> buffered;
    int pagesSent = 0;
    sim::Time firstPageAt = -1.0;  ///< when the first RAS page went out
    sim::EventHandle retryTimer;
  };

  void goToSleep();
  void wakeAsMember();
  void noteAppActivity();
  void scheduleSleepCheck();
  void pageAndBuffer(net::NodeId dst, const net::Packet& frame);
  void onPageTimeout(net::NodeId dst);
  void flushWakeBuffer(net::NodeId dst);
  void sendAcq(net::NodeId destination);
  void retireForLoadBalance();

  /// Span id correlating one gateway's page→wake→flush chain for `dst`.
  std::uint64_t wakeChainSpanId(net::NodeId dst) const;

  EcgridConfig ecgridConfig_;
  std::map<net::NodeId, WakeState> wakeBuffer_;
  // Observability (inert without a hub; see obs/observability.hpp).
  obs::Counter mSleeps_;
  obs::Counter mWakes_;
  obs::Counter mAcqsSent_;
  obs::Histogram mWakeLatency_;
  sim::Time lastAppActivity_ = -1e9;
  sim::EventHandle sleepTimer_;
  sim::EventHandle acqTimer_;
  energy::BatteryLevel levelWhenElected_ = energy::BatteryLevel::kUpper;
  bool retireIssuedAtLevel_ = false;
  bool finalRetireIssued_ = false;
};

}  // namespace ecgrid::core
