#include "core/ecgrid_protocol.hpp"

#include "obs/observability.hpp"
#include "util/error.hpp"
#include "util/log.hpp"

namespace ecgrid::core {

namespace {
constexpr const char* kTag = "ecgrid";
using protocols::AcqHeader;
using protocols::DataHeader;
/// RAS paging latency headroom used for optimistic post-page forwarding.
constexpr sim::Time kOptimisticWakeDelay = 2e-3;
}  // namespace

EcgridProtocol::EcgridProtocol(net::HostEnv& env, const EcgridConfig& config)
    : GridProtocolBase(env, config.base),
      ecgridConfig_(config),
      mSleeps_(obs::counter(env.simulator(), "ecgrid.sleeps")),
      mWakes_(obs::counter(env.simulator(), "ecgrid.wakes")),
      mAcqsSent_(obs::counter(env.simulator(), "ecgrid.acqs_sent")),
      mWakeLatency_(obs::histogram(
          env.simulator(), "paging.wake_latency_s",
          {0.002, 0.005, 0.01, 0.02, 0.05, 0.1, 0.2, 0.5, 1.0})) {
  ECGRID_REQUIRE(config.base.election.useBatteryLevel,
                 "ECGRID requires battery-aware election rules");
}

std::uint64_t EcgridProtocol::wakeChainSpanId(net::NodeId dst) const {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(env_.id()))
          << 32) |
         static_cast<std::uint32_t>(dst);
}

void EcgridProtocol::onShutdown() {
  sleepTimer_.cancel();
  acqTimer_.cancel();
  for (auto& [dst, state] : wakeBuffer_) state.retryTimer.cancel();
  wakeBuffer_.clear();
  GridProtocolBase::onShutdown();
}

// --------------------------------------------------------------------------
// sleeping

void EcgridProtocol::maybeSleep() {
  if (!ecgridConfig_.enableSleep) return;
  if (role() != Role::kMember) return;
  if (graceRouting()) return;  // still forwarding for the old grid
  if (!currentGateway_.has_value() || gatewayIsStale()) return;
  if (!appPending_.empty()) return;
  if (env_.link().queueDepth() > 0) {
    // Frames still in the MAC (queued or mid-ARQ): sleeping now would
    // silently discard them. Check again shortly.
    sleepTimer_.cancel();
    sleepTimer_ = env_.simulator().schedule(0.05, [this] { maybeSleep(); },
                                            "ecgrid/sleep_check");
    return;
  }
  sim::Time now = env_.simulator().now();
  sim::Time idleFor = now - lastAppActivity_;
  if (idleFor < ecgridConfig_.idleBeforeSleep) {
    scheduleSleepCheck();
    return;
  }
  goToSleep();
}

void EcgridProtocol::scheduleSleepCheck() {
  if (sleepTimer_.pending()) return;
  sim::Time now = env_.simulator().now();
  sim::Time wait = ecgridConfig_.idleBeforeSleep - (now - lastAppActivity_);
  if (wait < 0.01) wait = 0.01;
  sleepTimer_ = env_.simulator().schedule(wait, [this] { maybeSleep(); },
                                          "ecgrid/sleep_check");
}

void EcgridProtocol::goToSleep() {
  ECGRID_LOG_DEBUG(kTag, "node " << env_.id() << " sleeps at t="
                                 << env_.simulator().now());
  sleepTimer_.cancel();
  acqTimer_.cancel();
  // Tell the gateway our status column flips to "sleep" (paper §3 host
  // table), then power the transceiver down once that unicast has had
  // time to clear the MAC.
  if (currentGateway_.has_value() && *currentGateway_ != env_.id()) {
    unicastFrame(*currentGateway_, std::make_shared<protocols::SleepNoticeHeader>(
                                       env_.id(), env_.cell()));
  }
  mSleeps_.add();
  if (auto* tracer = obs::tracer(env_.simulator())) {
    tracer->instant("ecgrid", "sleep", env_.id());
  }
  setRole(Role::kSleeping);
  env_.simulator().schedule(
      8e-3,
      [this] {
        if (role() == Role::kSleeping) env_.sleepRadio();
      },
      "ecgrid/radio_down");
  // The GPS dwell timer (paper §3.2) is realised by the node's
  // GridTracker: onCellChanged() fires exactly when we cross out of the
  // grid, which is the event the paper's sleep timer polls for.
}

void EcgridProtocol::wakeAsMember() {
  if (role() != Role::kSleeping) return;
  env_.wakeRadio();
  mWakes_.add();
  if (auto* tracer = obs::tracer(env_.simulator())) {
    tracer->instant("ecgrid", "wake", env_.id());
  }
  setRole(Role::kMember);
  // The gateway-staleness clock ran while we slept; a sleeping host does
  // not doubt its gateway until there is evidence (failed ACQ/unicast),
  // so restart the watchdog from now instead of paging the grid for a
  // spurious election on every wake.
  if (currentGateway_.has_value()) {
    lastGatewayHello_ = env_.simulator().now();
  }
}

void EcgridProtocol::noteAppActivity() {
  lastAppActivity_ = env_.simulator().now();
}

// --------------------------------------------------------------------------
// data path

void EcgridProtocol::sendData(net::NodeId destination, int payloadBytes,
                              const net::DataTag& tag) {
  if (role() == Role::kDead) return;
  noteAppActivity();
  if (role() == Role::kSleeping) {
    // Paper §3.3: a sleeping source wakes and sends ACQ(gid, D); the
    // gateway answers with a HELLO. We forward the data to the last-known
    // gateway optimistically in parallel — if the gateway changed while
    // we slept, the ARQ failure re-queues the packet and the ACQ
    // handshake re-establishes who is in charge.
    wakeAsMember();
    auto header = std::make_shared<DataHeader>(env_.id(), destination,
                                               payloadBytes, tag);
    sendAcq(destination);
    queueAppData(header);
    scheduleSleepCheck();
    return;
  }
  GridProtocolBase::sendData(destination, payloadBytes, tag);
  scheduleSleepCheck();
}

void EcgridProtocol::sendAcq(net::NodeId destination) {
  mAcqsSent_.add();
  if (auto* tracer = obs::tracer(env_.simulator())) {
    tracer->instant("ras", "acq", env_.id(), {{"dst", destination}});
  }
  auto acq =
      std::make_shared<AcqHeader>(env_.id(), env_.cell(), destination);
  broadcastFrameRaw(acq);
  acqTimer_.cancel();
  acqTimer_ = env_.simulator().schedule(
      ecgridConfig_.acqResponseTimeout,
      [this] {
        // Detector 2 (paper §3.2): a sleeping host woke to transmit but
        // the gateway never answered.
        if (role() == Role::kDead) return;
        if (currentGateway_.has_value() && !gatewayIsStale()) return;
        currentGateway_.reset();
        onNoGateway();
      },
      "ecgrid/acq_timeout");
}

void EcgridProtocol::onFrame(const net::Packet& packet) {
  GridProtocolBase::onFrame(packet);
  if (role() == Role::kDead) return;
  if (const auto* data = packet.headerAs<DataHeader>()) {
    if (data->appDst() == env_.id()) {
      // Receiving application traffic keeps us awake a little longer.
      noteAppActivity();
      scheduleSleepCheck();
    }
  }
}

void EcgridProtocol::deliverToLocalHost(net::NodeId dst,
                                        const net::Packet& frame) {
  sim::Time now = env_.simulator().now();
  if (!hostTable_.isSleeping(dst, now)) {
    unicastFrame(dst, frame.header);
    return;
  }
  pageAndBuffer(dst, frame);
}

void EcgridProtocol::pageAndBuffer(net::NodeId dst, const net::Packet& frame) {
  WakeState& state = wakeBuffer_[dst];
  if (state.buffered.size() >= ecgridConfig_.wakeBufferLimit) {
    return;  // buffer full: tail-drop
  }
  state.buffered.push_back(frame);
  if (state.pagesSent == 0) {
    // First buffered frame for this sleeper: page it (paper §3.3 "the
    // gateway is responsible for waking up the destination host") and
    // forward optimistically once the RAS latency has elapsed — the
    // paper's gateway forwards the buffered packets itself; it does not
    // wait for an application-layer handshake. The page-retry timer stays
    // armed in case the optimistic flush fails.
    ++state.pagesSent;
    state.firstPageAt = env_.simulator().now();
    if (auto* tracer = obs::tracer(env_.simulator())) {
      tracer->begin("ras", "wake_chain", wakeChainSpanId(dst), env_.id(),
                    {{"dst", dst}});
      tracer->instant("ras", "page_host", env_.id(),
                      {{"dst", dst}, {"attempt", state.pagesSent}});
    }
    env_.pageHost(dst);
    state.retryTimer = env_.simulator().schedule(
        ecgridConfig_.pageResponseTimeout,
        [this, dst] { onPageTimeout(dst); }, "ecgrid/page_timeout");
    env_.simulator().schedule(
        2.5 * kOptimisticWakeDelay, [this, dst] { flushWakeBuffer(dst); },
        "ecgrid/wake_flush");
  }
}

void EcgridProtocol::onPageTimeout(net::NodeId dst) {
  auto it = wakeBuffer_.find(dst);
  if (it == wakeBuffer_.end()) return;
  WakeState& state = it->second;
  if (state.pagesSent >= ecgridConfig_.pageRetries) {
    // The sleeper is gone (moved away or died): purge it so routing stops
    // treating it as local.
    ECGRID_LOG_DEBUG(kTag, "node " << env_.id() << " gives up paging "
                                   << dst);
    if (auto* tracer = obs::tracer(env_.simulator())) {
      tracer->end("ras", "wake_chain", wakeChainSpanId(dst), env_.id(),
                  {{"delivered", 0}});
    }
    hostTable_.remove(dst);
    wakeBuffer_.erase(it);
    return;
  }
  ++state.pagesSent;
  if (auto* tracer = obs::tracer(env_.simulator())) {
    tracer->instant("ras", "page_timeout", env_.id(), {{"dst", dst}});
    tracer->instant("ras", "page_host", env_.id(),
                    {{"dst", dst}, {"attempt", state.pagesSent}});
  }
  env_.pageHost(dst);
  state.retryTimer = env_.simulator().schedule(
      ecgridConfig_.pageResponseTimeout, [this, dst] { onPageTimeout(dst); },
      "ecgrid/page_timeout");
}

void EcgridProtocol::onSendFailed(const net::Packet& packet) {
  const auto* data = packet.headerAs<protocols::DataHeader>();
  if (data != nullptr && data->appDst() == packet.macDst &&
      (isGateway() || graceRouting()) &&
      hostTable_.contains(packet.macDst, env_.simulator().now())) {
    // Final hop went unanswered: the host fell asleep without us noticing
    // (e.g. it was seeded as active). Do not purge it — mark it sleeping
    // and restart the delivery through the RAS pager.
    hostTable_.markSleeping(packet.macDst, env_.simulator().now());
    if (packet.routeRetries < config_.routing.maxRouteRetries) {
      net::Packet retry = packet;
      retry.routeRetries = packet.routeRetries + 1;
      pageAndBuffer(packet.macDst, retry);
    }
    return;
  }
  GridProtocolBase::onSendFailed(packet);
}

void EcgridProtocol::onLocalHostActive(net::NodeId host) {
  flushWakeBuffer(host);
}

void EcgridProtocol::flushWakeBuffer(net::NodeId dst) {
  auto it = wakeBuffer_.find(dst);
  if (it == wakeBuffer_.end()) return;
  it->second.retryTimer.cancel();
  const sim::Time firstPageAt = it->second.firstPageAt;
  std::deque<net::Packet> frames = std::move(it->second.buffered);
  wakeBuffer_.erase(it);
  if (firstPageAt >= 0.0) {
    const sim::Time latency = env_.simulator().now() - firstPageAt;
    mWakeLatency_.observe(latency);
    if (auto* tracer = obs::tracer(env_.simulator())) {
      tracer->end("ras", "wake_chain", wakeChainSpanId(dst), env_.id(),
                  {{"delivered", static_cast<int>(frames.size())},
                   {"latency_s", latency}});
    }
  }
  for (net::Packet& frame : frames) {
    unicastFrame(dst, frame.header);
  }
}

// --------------------------------------------------------------------------
// paging

void EcgridProtocol::onPaged(const net::PageSignal& signal) {
  if (role() == Role::kDead) return;
  if (role() == Role::kSleeping) {
    wakeAsMember();
  }
  noteAppActivity();  // hold the radio up while the transaction completes
  // Announce ourselves so the pager (the gateway) learns we are awake and
  // flushes anything it buffered; for a grid page this HELLO is also our
  // election candidacy.
  sendHello();
  scheduleSleepCheck();
  (void)signal;
}

// --------------------------------------------------------------------------
// mobility

void EcgridProtocol::onCellChanged(const geo::GridCoord& from,
                                   const geo::GridCoord& to) {
  if (role() == Role::kDead) return;
  if (role() == Role::kSleeping) {
    // The dwell timer fired and we really are leaving: wake, notify, and
    // run the newcomer handshake (paper §3.2).
    wakeAsMember();
  }
  GridProtocolBase::onCellChanged(from, to);
}

// --------------------------------------------------------------------------
// gateway duties

void EcgridProtocol::onRoleChanged(Role from, Role to) {
  if (to == Role::kGateway) {
    levelWhenElected_ = env_.batteryLevel();
    retireIssuedAtLevel_ = false;
  }
  if (from == Role::kGateway) {
    for (auto& [dst, state] : wakeBuffer_) state.retryTimer.cancel();
    wakeBuffer_.clear();
  }
  if (to == Role::kMember) {
    scheduleSleepCheck();
  }
}

void EcgridProtocol::gatewayPeriodic() {
  if (!ecgridConfig_.enableLoadBalance) return;
  energy::BatteryLevel nowLevel = env_.batteryLevel();
  double ratio = env_.batteryRatio();

  if (!finalRetireIssued_ && ratio < ecgridConfig_.retireBatteryRatio) {
    // Paper §3.2: "the gateway will issue a broadcast sequence and a
    // RETIRE message before its battery runs out."
    finalRetireIssued_ = true;
    retireForLoadBalance();
    return;
  }
  if (!retireIssuedAtLevel_ &&
      energy::electionRank(nowLevel) <
          energy::electionRank(levelWhenElected_)) {
    // Level dropped a class (upper→boundary or boundary→lower): release
    // the gateway role so the grid load-balances (paper §3.2).
    retireIssuedAtLevel_ = true;
    retireForLoadBalance();
  }
}

void EcgridProtocol::retireForLoadBalance() {
  ECGRID_LOG_DEBUG(kTag, "node " << env_.id() << " retires (load balance) t="
                                 << env_.simulator().now());
  geo::GridCoord grid = env_.cell();
  beginRetire(grid);
  setRole(Role::kMember);
  enterGraceRouting();
  currentGateway_.reset();
  // Remain active (grace-routing in-flight traffic) until a successor
  // declares; if nobody does (we are alone), the no-gateway watchdog
  // re-elects us and we serve until the battery empties — exactly the
  // paper's rule for lower-level gateways.
}

void EcgridProtocol::beginRetire(const geo::GridCoord& forGrid) {
  // Paper §3.2: wake the whole grid with its broadcast sequence, wait τ
  // so transceivers are up, then broadcast RETIRE(grid, rtab).
  if (auto* tracer = obs::tracer(env_.simulator())) {
    tracer->instant("ras", "page_grid", env_.id(),
                    {{"gx", forGrid.x}, {"gy", forGrid.y}});
  }
  env_.pageGrid(forGrid);
  auto records = engine_.routes().exportRecords(env_.simulator().now());
  geo::GridCoord grid = forGrid;
  env_.simulator().schedule(
      config_.retireTau,
      [this, grid, records]() mutable {
        if (role() == Role::kDead) return;
        broadcastRetire(grid, std::move(records));
      },
      "ecgrid/retire_tau");
}

void EcgridProtocol::onNoGateway() {
  // Wake the whole grid before the election so sleepers can stand as
  // candidates (paper §3.2: "to elect a new gateway, all hosts in the
  // same grid must be in active mode").
  if (auto* tracer = obs::tracer(env_.simulator())) {
    const geo::GridCoord grid = env_.cell();
    tracer->instant("ras", "page_grid", env_.id(),
                    {{"gx", grid.x}, {"gy", grid.y}});
  }
  env_.pageGrid(env_.cell());
  startElection();
}

}  // namespace ecgrid::core
