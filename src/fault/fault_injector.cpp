#include "fault/fault_injector.hpp"

#include "util/error.hpp"

namespace ecgrid::fault {

FaultInjector::FaultInjector(sim::Simulator& sim, net::Network& network,
                             const FaultPlan& plan)
    : sim_(sim),
      network_(network),
      plan_(plan),
      pagingRng_(sim.rng().stream("fault/paging")),
      crashRng_(sim.rng().stream("fault/crash")),
      gpsRng_(sim.rng().stream("fault/gps")) {
  if (plan_.channel.enabled()) armChannel();
  if (plan_.paging.enabled()) armPaging();
  if (plan_.hosts.enabled()) armCrashes();
  if (plan_.gps.enabled()) armGps();
}

FaultInjector::~FaultInjector() {
  // Disarm the media hooks: the network may outlive the injector.
  if (plan_.channel.enabled()) network_.channel().setDeliveryFault(nullptr);
  if (plan_.paging.enabled()) network_.paging().setPageLoss(nullptr);
}

bool FaultInjector::faultEligible(const net::Node& node) const {
  // Infinite-battery endpoints (GAF Model 1) model wired infrastructure:
  // exempt from the Poisson failure process and from GPS error. Scripted
  // CrashEvents are applied verbatim to whatever host they name.
  return !node.config().infiniteBattery;
}

void FaultInjector::armChannel() {
  sim::RngStream rng = sim_.rng().stream("fault/channel");
  switch (plan_.channel.kind) {
    case ChannelErrorKind::kNone:
      return;
    case ChannelErrorKind::kIid:
      errorModel_ =
          std::make_unique<IidLossModel>(plan_.channel.lossProbability, rng);
      break;
    case ChannelErrorKind::kGilbertElliott:
      errorModel_ = std::make_unique<GilbertElliottModel>(plan_.channel, rng);
      break;
  }
  network_.channel().setDeliveryFault(
      [model = errorModel_.get()](net::NodeId sender, net::NodeId receiver) {
        return model->dropDelivery(sender, receiver);
      });
}

void FaultInjector::armPaging() {
  network_.paging().setPageLoss([this](net::NodeId /*target*/) {
    return pagingRng_.chance(plan_.paging.lossProbability);
  });
}

void FaultInjector::armCrashes() {
  for (const CrashEvent& e : plan_.hosts.crashes) {
    net::Node* node = network_.findNode(e.host);
    ECGRID_REQUIRE(node != nullptr, "scripted crash names an unknown host");
    ECGRID_REQUIRE(e.at >= sim_.now(), "scripted crash is in the past");
    ECGRID_REQUIRE(e.restartAt > e.at, "restart must follow the crash");
    // Host-directed intervention: route to the victim's shard so the
    // crash executes in its owner's context under the sharded engine.
    sim_.scheduleFor(
        sim::hostEventKey(e.host), e.at - sim_.now(),
        [this, node, restartAt = e.restartAt] {
          crashNow(*node, restartAt, /*poisson=*/false);
        },
        "fault/crash");
  }
  if (plan_.hosts.crashRatePerHostPerSecond > 0.0) {
    for (auto& nodePtr : network_.nodes()) {
      if (faultEligible(*nodePtr)) schedulePoissonCrash(*nodePtr);
    }
  }
}

void FaultInjector::armGps() {
  ECGRID_REQUIRE(plan_.gps.offsetStddevMeters >= 0.0 &&
                     plan_.gps.driftStddevMeters >= 0.0,
                 "GPS error stddevs cannot be negative");
  ECGRID_REQUIRE(plan_.gps.driftStddevMeters == 0.0 ||
                     plan_.gps.driftPeriodSeconds > 0.0,
                 "GPS drift needs a positive period");
  // Offsets apply through a t = 0 event so protocols are started before
  // any onCellChanged fires.
  // Injector-owned sweep over every host, not a host-directed delivery:
  // it legitimately runs in the hub context (the per-host work happens
  // through Node's own entry points).
  // ecgrid-lint: allow(shard-mailbox-bypass)
  sim_.schedule(0.0, [this] {
    for (auto& nodePtr : network_.nodes()) {
      if (!faultEligible(*nodePtr)) continue;
      geo::Vec2 error{gpsRng_.gaussian(0.0, plan_.gps.offsetStddevMeters),
                      gpsRng_.gaussian(0.0, plan_.gps.offsetStddevMeters)};
      nodePtr->setGpsError(error);
    }
    if (plan_.gps.driftStddevMeters > 0.0) {
      // Hub-owned periodic sweep (see armGps).
      // ecgrid-lint: allow(shard-mailbox-bypass)
      sim_.schedule(plan_.gps.driftPeriodSeconds, [this] { gpsDriftTick(); },
                    "fault/gps_drift");
    }
  }, "fault/gps_arm");
}

void FaultInjector::gpsDriftTick() {
  for (auto& nodePtr : network_.nodes()) {
    if (!faultEligible(*nodePtr)) continue;
    // Draw for every eligible host — even down ones — so RNG consumption
    // never depends on the death pattern.
    geo::Vec2 error = nodePtr->gpsError();
    error.x += gpsRng_.gaussian(0.0, plan_.gps.driftStddevMeters);
    error.y += gpsRng_.gaussian(0.0, plan_.gps.driftStddevMeters);
    nodePtr->setGpsError(error);
  }
  // Hub-owned periodic sweep (see armGps).
  // ecgrid-lint: allow(shard-mailbox-bypass)
  sim_.schedule(plan_.gps.driftPeriodSeconds, [this] { gpsDriftTick(); },
                "fault/gps_drift");
}

void FaultInjector::schedulePoissonCrash(net::Node& node) {
  poissonPending_.insert(node.id());
  sim::Time dt =
      crashRng_.exponential(1.0 / plan_.hosts.crashRatePerHostPerSecond);
  // Host-directed intervention: route to the victim's shard (see
  // armCrashes).
  sim_.scheduleFor(
      sim::hostEventKey(node.id()), dt,
      [this, &node] {
        // Clear the pending marker even when the crash no-ops on an
        // already-down host: the next restart (whatever revives the host)
        // re-arms the process via restartNow.
        poissonPending_.erase(node.id());
        crashNow(node, sim::kTimeNever, /*poisson=*/true);
      },
      "fault/crash");
}

void FaultInjector::crashNow(net::Node& node, sim::Time restartAt,
                             bool poisson) {
  if (!node.alive()) return;  // already crashed or battery-dead
  node.crash();
  ++crashes_;
  if (poisson && plan_.hosts.meanDowntimeSeconds > 0.0) {
    restartAt =
        sim_.now() + crashRng_.exponential(plan_.hosts.meanDowntimeSeconds);
  }
  if (restartAt < sim::kTimeNever) {
    // Host-directed intervention: route to the victim's shard (see
    // armCrashes).
    sim_.scheduleFor(sim::hostEventKey(node.id()), restartAt - sim_.now(),
                     [this, &node] { restartNow(node); }, "fault/restart");
  }
}

void FaultInjector::restartNow(net::Node& node) {
  if (!node.crashed()) return;  // stale event: another restart beat us
  node.restart();
  ++restarts_;
  // A rebooted member of the Poisson pool re-enters the failure process —
  // regardless of which event (Poisson downtime or a scripted restart)
  // revived it — unless a crash for it is already in flight. Keying on
  // the reviving event instead would leak hosts out of the pool: a
  // scripted restart firing during Poisson downtime rebooted the host
  // with no Poisson crash pending, ending its failure process for good.
  if (plan_.hosts.crashRatePerHostPerSecond > 0.0 && faultEligible(node) &&
      poissonPending_.count(node.id()) == 0) {
    schedulePoissonCrash(node);
  }
}

}  // namespace ecgrid::fault
