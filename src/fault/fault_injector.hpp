// FaultInjector — arms a FaultPlan on a live network.
//
// Construction wires every enabled fault into the simulation:
//
//   * channel errors  → an ErrorModel behind phy::Channel's deliveryFault
//                       slot (frames corrupt instead of decode);
//   * paging loss     → phy::PagingChannel's pageLoss slot;
//   * host crashes    → scripted CrashEvents plus a per-host Poisson
//                       failure process, via Node::crash()/restart();
//   * GPS error       → per-host offset draw at t = 0 and a periodic
//                       random-walk drift tick, via Node::setGpsError().
//
// All randomness comes from dedicated named streams ("fault/channel",
// "fault/paging", "fault/crash", "fault/gps") split off the run's master
// seed, so arming a fault never perturbs mobility, MAC backoff, or
// traffic draws, and the same (plan, seed) pair replays exactly.
//
// The destructor disarms the channel and paging hooks; declare the
// injector after the Network so it is destroyed first. An empty() plan
// arms nothing (runScenario skips construction entirely).
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_set>

#include "fault/error_model.hpp"
#include "fault/fault_plan.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"
#include "util/ownership.hpp"

namespace ecgrid::fault {

class ECGRID_DOMAIN_PER_SCENARIO FaultInjector {
 public:
  FaultInjector(sim::Simulator& sim, net::Network& network,
                const FaultPlan& plan);
  ~FaultInjector();

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  const FaultPlan& plan() const { return plan_; }

  /// Host crashes actually applied (scripted + Poisson; crashes aimed at
  /// hosts already down do not count).
  std::uint64_t crashesInjected() const { return crashes_; }
  /// Successful reboots.
  std::uint64_t restartsInjected() const { return restarts_; }

 private:
  void armChannel();
  void armPaging();
  void armCrashes();
  void armGps();
  bool faultEligible(const net::Node& node) const;
  void crashNow(net::Node& node, sim::Time restartAt, bool poisson);
  void restartNow(net::Node& node);
  void schedulePoissonCrash(net::Node& node);
  void gpsDriftTick();

  sim::Simulator& sim_;
  net::Network& network_;
  FaultPlan plan_;

  std::unique_ptr<ErrorModel> errorModel_;
  sim::RngStream pagingRng_;
  sim::RngStream crashRng_;
  sim::RngStream gpsRng_;

  std::uint64_t crashes_ = 0;
  std::uint64_t restarts_ = 0;

  /// Hosts with a Poisson crash event currently in flight. Membership in
  /// the Poisson failure *pool* is (crashRate > 0 && faultEligible);
  /// this set only tracks the pending event so that a restart — whatever
  /// event revived the host — can re-arm the process exactly when no
  /// crash is already scheduled. Without it, a Poisson crash event that
  /// no-ops on an already-down host (or a scripted restart reviving a
  /// host mid-downtime) would silently end that host's failure process.
  std::unordered_set<net::NodeId> poissonPending_;
};

}  // namespace ecgrid::fault
