#include "fault/error_model.hpp"

#include "util/error.hpp"

namespace ecgrid::fault {

const char* toString(ChannelErrorKind kind) {
  switch (kind) {
    case ChannelErrorKind::kNone:
      return "none";
    case ChannelErrorKind::kIid:
      return "iid";
    case ChannelErrorKind::kGilbertElliott:
      return "gilbert-elliott";
  }
  return "?";
}

double gilbertElliottPGoodToBad(double targetLoss, double pBadToGood) {
  ECGRID_REQUIRE(targetLoss >= 0.0 && targetLoss < 1.0,
                 "target loss must be in [0, 1)");
  ECGRID_REQUIRE(pBadToGood > 0.0 && pBadToGood <= 1.0,
                 "pBadToGood must be in (0, 1]");
  // πB = pGB/(pGB+pBG) = targetLoss  ⇒  pGB = pBG·L/(1−L).
  return pBadToGood * targetLoss / (1.0 - targetLoss);
}

IidLossModel::IidLossModel(double lossProbability, sim::RngStream rng)
    : lossProbability_(lossProbability), rng_(rng) {
  ECGRID_REQUIRE(lossProbability >= 0.0 && lossProbability <= 1.0,
                 "loss probability out of range");
}

bool IidLossModel::dropDelivery(net::NodeId /*sender*/,
                                net::NodeId /*receiver*/) {
  return rng_.chance(lossProbability_);
}

GilbertElliottModel::GilbertElliottModel(const ChannelFault& params,
                                         sim::RngStream rng)
    : params_(params), rng_(rng) {
  ECGRID_REQUIRE(params.pGoodToBad >= 0.0 && params.pGoodToBad <= 1.0,
                 "pGoodToBad out of range");
  ECGRID_REQUIRE(params.pBadToGood > 0.0 && params.pBadToGood <= 1.0,
                 "pBadToGood must be in (0, 1]");
  ECGRID_REQUIRE(params.lossGood >= 0.0 && params.lossGood <= 1.0,
                 "lossGood out of range");
  ECGRID_REQUIRE(params.lossBad >= 0.0 && params.lossBad <= 1.0,
                 "lossBad out of range");
}

bool GilbertElliottModel::dropDelivery(net::NodeId /*sender*/,
                                       net::NodeId receiver) {
  bool& bad = inBadState_[receiver];  // chains start Good
  bool drop = rng_.chance(bad ? params_.lossBad : params_.lossGood);
  bad = bad ? !rng_.chance(params_.pBadToGood) : rng_.chance(params_.pGoodToBad);
  return drop;
}

double GilbertElliottModel::stationaryLoss() const {
  double denom = params_.pGoodToBad + params_.pBadToGood;
  if (denom <= 0.0) return params_.lossGood;  // chain never leaves Good
  double piBad = params_.pGoodToBad / denom;
  return piBad * params_.lossBad + (1.0 - piBad) * params_.lossGood;
}

}  // namespace ecgrid::fault
