// Channel error models: per-delivery corruption decisions.
//
// An ErrorModel is consulted by phy::Channel once per (transmission,
// in-range receiver) pair, in ascending receiver-attachment order — the
// same order in both the spatial-index and brute-force fan-out paths, so
// RNG consumption (and hence the whole run) is identical in either mode.
// Returning true corrupts that delivery: the frame's energy still arrives
// at the receiver (carrier sense stays busy, concurrent receptions are
// ruined) but the frame itself can never decode.
//
// Both shipped models are pure over their own RngStream, so the
// statistical tests can drive them directly against the analytic loss
// rate and burst length without running a simulation.
#pragma once

#include <unordered_map>

#include "fault/fault_plan.hpp"
#include "net/packet.hpp"
#include "sim/rng.hpp"

namespace ecgrid::fault {

class ErrorModel {
 public:
  virtual ~ErrorModel() = default;

  /// One decision per delivery: corrupt the frame travelling
  /// sender → receiver? Called in deterministic receiver order.
  virtual bool dropDelivery(net::NodeId sender, net::NodeId receiver) = 0;

  /// Long-run expected loss rate (for tests and bench labelling).
  virtual double stationaryLoss() const = 0;
};

/// Memoryless loss: every delivery is corrupted independently.
class IidLossModel final : public ErrorModel {
 public:
  IidLossModel(double lossProbability, sim::RngStream rng);

  bool dropDelivery(net::NodeId sender, net::NodeId receiver) override;
  double stationaryLoss() const override { return lossProbability_; }

 private:
  double lossProbability_;
  sim::RngStream rng_;
};

/// Two-state Gilbert–Elliott burst-loss chain, one chain per receiver
/// (each receiver sits in its own fading environment). The chain starts
/// Good and advances once per delivered frame: the current state picks
/// the loss probability, then the state transitions.
class GilbertElliottModel final : public ErrorModel {
 public:
  GilbertElliottModel(const ChannelFault& params, sim::RngStream rng);

  bool dropDelivery(net::NodeId sender, net::NodeId receiver) override;

  /// πB·lossBad + (1−πB)·lossGood with πB = pGB/(pGB+pBG).
  double stationaryLoss() const override;

  /// Mean frames spent in the bad state per visit: 1/pBadToGood.
  double meanBadSojournFrames() const { return 1.0 / params_.pBadToGood; }

 private:
  ChannelFault params_;
  sim::RngStream rng_;
  std::unordered_map<net::NodeId, bool> inBadState_;
};

}  // namespace ecgrid::fault
