// FaultPlan — a pure value describing the adverse conditions of one run.
//
// The paper evaluates ECGRID under ideal conditions: a collision-only
// channel, perfect GPS, hosts that die only by battery depletion, and an
// RAS pager that never misses. A FaultPlan describes the departures from
// that ideal — seeded, schedulable, and deterministic — and a
// FaultInjector (fault_injector.hpp) arms them on a live network:
//
//   * ChannelFault  — frame corruption: i.i.d. loss or a two-state
//                     Gilbert–Elliott burst-loss chain per receiver;
//   * HostFault     — crashes (scheduled or Poisson) and restarts;
//   * GpsFault      — per-host position error: fixed bias and/or
//                     random-walk drift, so hosts misjudge their grid;
//   * PagingFault   — RAS pages missed with some probability.
//
// Like ScenarioConfig, a FaultPlan carries no behaviour. An
// all-default plan (empty() == true) arms nothing, and runs are
// byte-identical to a simulation without the fault layer at all.
#pragma once

#include <cstdint>

#include <vector>

#include "net/packet.hpp"
#include "sim/time.hpp"

namespace ecgrid::fault {

enum class ChannelErrorKind : std::uint8_t {
  kNone,            ///< ideal channel (collisions only)
  kIid,             ///< every delivery lost independently with lossProbability
  kGilbertElliott,  ///< two-state burst-loss Markov chain per receiver
};

const char* toString(ChannelErrorKind kind);

struct ChannelFault {
  ChannelErrorKind kind = ChannelErrorKind::kNone;

  /// kIid: probability each in-range delivery is corrupted.
  double lossProbability = 0.0;

  // kGilbertElliott: transition and loss parameters. The chain advances
  // once per delivered frame per receiver; stationary loss is
  //   πB·lossBad + (1−πB)·lossGood  with  πB = pGoodToBad/(pGoodToBad+pBadToGood)
  // and the mean bad-state sojourn is 1/pBadToGood frames.
  double pGoodToBad = 0.0;
  double pBadToGood = 0.0;
  double lossGood = 0.0;
  double lossBad = 1.0;

  bool enabled() const { return kind != ChannelErrorKind::kNone; }
};

/// For lossGood = 0, lossBad = 1: the pGoodToBad that yields `targetLoss`
/// stationary loss at a given recovery rate (mean burst = 1/pBadToGood).
double gilbertElliottPGoodToBad(double targetLoss, double pBadToGood);

/// One scripted host failure. `restartAt` past the horizon (or the
/// default kTimeNever) leaves the host down for good.
struct CrashEvent {
  net::NodeId host = 0;
  sim::Time at = 0.0;
  sim::Time restartAt = sim::kTimeNever;
};

struct HostFault {
  /// Scripted crashes, applied to the named hosts verbatim.
  std::vector<CrashEvent> crashes;

  /// Poisson crash process: each finite-battery host fails with this
  /// rate (exponential inter-arrival times). Infinite-battery endpoints
  /// (GAF Model 1 sources/sinks) are exempt — they model wired
  /// infrastructure, and crashing them voids the traffic accounting.
  double crashRatePerHostPerSecond = 0.0;

  /// Mean of the exponential downtime after a Poisson crash; the host
  /// then reboots with a fresh protocol stack. 0 = crashed hosts stay
  /// down forever.
  double meanDowntimeSeconds = 0.0;

  bool enabled() const {
    return !crashes.empty() || crashRatePerHostPerSecond > 0.0;
  }
};

struct GpsFault {
  /// Fixed per-host position bias, drawn once per axis ~ N(0, σ).
  double offsetStddevMeters = 0.0;

  /// Random-walk drift: every driftPeriodSeconds each host's error takes
  /// a per-axis step ~ N(0, σ). Models wandering GPS fixes; hosts can
  /// walk in and out of misjudging their own grid.
  double driftStddevMeters = 0.0;
  sim::Time driftPeriodSeconds = 10.0;

  bool enabled() const {
    return offsetStddevMeters > 0.0 || driftStddevMeters > 0.0;
  }
};

struct PagingFault {
  /// Probability each individually delivered page (unicast or
  /// grid-broadcast, per in-range pager) is missed.
  double lossProbability = 0.0;

  bool enabled() const { return lossProbability > 0.0; }
};

struct FaultPlan {
  ChannelFault channel;
  HostFault hosts;
  GpsFault gps;
  PagingFault paging;

  /// True when the plan arms nothing at all — runScenario skips the
  /// injector entirely and the run is byte-identical to a pre-fault-layer
  /// simulation.
  bool empty() const {
    return !channel.enabled() && !hosts.enabled() && !gps.enabled() &&
           !paging.enabled();
  }
};

}  // namespace ecgrid::fault
