#include "stats/packet_accounting.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace ecgrid::stats {

void PacketAccounting::onSent(std::uint64_t flowId, std::uint64_t sequence,
                              bool sourceAlive, sim::Time now) {
  (void)sequence;
  FlowTimes& times = flowTimes_[flowId];
  if (times.firstAttempt >= sim::kTimeNever) times.firstAttempt = now;
  ++times.attempts;
  if (!sourceAlive) return;
  ++sent_;
  ++sentPerFlow_[flowId];
}

void PacketAccounting::onReceived(const net::DataTag& tag, sim::Time now) {
  if (!delivered_.emplace(tag.flowId, tag.sequence).second) {
    ++duplicates_;
    return;
  }
  ++received_;
  ++receivedPerFlow_[tag.flowId];
  FlowTimes& times = flowTimes_[tag.flowId];
  if (times.firstDelivery >= sim::kTimeNever) times.firstDelivery = now;
  times.lastDelivery = now;
  ++times.delivered;
  double latency = now - tag.sentAt;
  ECGRID_CHECK(latency >= 0.0, "packet received before it was sent");
  latencies_.push_back(latency);
  if (deliveryListener_) deliveryListener_(tag, now);
}

void PacketAccounting::onFlowAborted(std::uint64_t flowId) {
  FlowTimes& times = flowTimes_[flowId];
  if (times.aborted) return;
  times.aborted = true;
  ++abortedFlows_;
}

std::uint64_t PacketAccounting::inFlightFlows() const {
  std::uint64_t inFlight = 0;
  for (const auto& [flow, times] : flowTimes_) {
    if (!times.aborted && times.attempts > times.delivered) ++inFlight;
  }
  return inFlight;
}

FlowTimes PacketAccounting::flowTimes(std::uint64_t flowId) const {
  auto it = flowTimes_.find(flowId);
  return it == flowTimes_.end() ? FlowTimes{} : it->second;
}

double PacketAccounting::deliveryRate() const {
  if (sent_ == 0) return 1.0;
  return static_cast<double>(received_) / static_cast<double>(sent_);
}

double PacketAccounting::meanLatency() const {
  if (latencies_.empty()) return 0.0;
  double sum = 0.0;
  for (double l : latencies_) sum += l;
  return sum / static_cast<double>(latencies_.size());
}

double PacketAccounting::latencyPercentile(double p) const {
  ECGRID_REQUIRE(p >= 0.0 && p <= 100.0, "percentile out of range");
  if (latencies_.empty()) return 0.0;
  std::vector<double> sorted = latencies_;
  std::sort(sorted.begin(), sorted.end());
  double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  std::size_t lo = static_cast<std::size_t>(std::floor(rank));
  std::size_t hi = static_cast<std::size_t>(std::ceil(rank));
  double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

std::map<std::uint64_t, double> PacketAccounting::perFlowDeliveryRate() const {
  std::map<std::uint64_t, double> out;
  for (const auto& [flow, sent] : sentPerFlow_) {
    auto it = receivedPerFlow_.find(flow);
    std::uint64_t recv = it == receivedPerFlow_.end() ? 0 : it->second;
    out[flow] = sent == 0 ? 1.0
                          : static_cast<double>(recv) /
                                static_cast<double>(sent);
  }
  return out;
}

}  // namespace ecgrid::stats
