#include "stats/trace_recorder.hpp"

#include <optional>

#include "protocols/common/grid_protocol_base.hpp"
#include "protocols/gaf/gaf_protocol.hpp"
#include "util/error.hpp"

namespace ecgrid::stats {

TraceRecorder::TraceRecorder(net::Network& network, sim::Time interval,
                             const std::string& path)
    : network_(network), interval_(interval), out_(path) {
  ECGRID_REQUIRE(interval > 0.0, "trace interval must be positive");
  ECGRID_REQUIRE(out_.good(), "cannot open trace output: " + path);
  // Schema header (not counted in linesWritten): lets tools/trace_check.py
  // distinguish state traces from event traces and version the columns.
  out_ << "{\"schema\":\"ecgrid-state\",\"version\":2,\"interval\":" << interval_
       << "}\n";
  sample();
  timer_ = network_.simulator().schedule(interval_, [this] { tick(); },
                                         "stats/trace");
}

TraceRecorder::~TraceRecorder() {
  timer_.cancel();
  out_.flush();
}

void TraceRecorder::tick() {
  sample();
  timer_ = network_.simulator().schedule(interval_, [this] { tick(); },
                                         "stats/trace");
}

void TraceRecorder::sample() {
  sim::Time now = network_.simulator().now();
  for (auto& node : network_.nodes()) {
    bool alive = node->alive();
    bool gateway = false;
    std::optional<geo::GridCoord> served;
    if (alive) {
      if (auto* base = dynamic_cast<protocols::GridProtocolBase*>(
              &node->protocol())) {
        gateway = base->isGateway();
        if (gateway) served = base->servedGrid();
      } else if (auto* gaf = dynamic_cast<protocols::GafProtocol*>(
                     &node->protocol())) {
        gateway = gaf->isLeader();
      }
    }
    // x/y are ground truth (what an observer would plot); gps_err is the
    // magnitude of the injected position error, so a viewer can colour
    // hosts that misjudge their grid.
    geo::Vec2 pos = node->truePosition();
    geo::GridCoord cell = node->gridMap().cellOf(pos);
    out_ << "{\"t\":" << now << ",\"id\":" << node->id()
         << ",\"x\":" << pos.x << ",\"y\":" << pos.y
         << ",\"alive\":" << (alive ? "true" : "false")
         << ",\"crashed\":" << (node->crashed() ? "true" : "false")
         << ",\"sleeping\":" << (node->radio().sleeping() ? "true" : "false")
         << ",\"gateway\":" << (gateway ? "true" : "false")
         << ",\"cell_x\":" << cell.x << ",\"cell_y\":" << cell.y
         << ",\"battery\":" << node->batteryRef().remainingRatio(now)
         << ",\"gps_err\":" << node->gpsError().length();
    // v2: gateways report the grid they serve. Under GPS error (or during
    // a hand-off race) this can differ from cell_x/cell_y — exactly the
    // frames a viewer should highlight.
    if (served) {
      out_ << ",\"served_x\":" << served->x << ",\"served_y\":" << served->y;
    }
    out_ << "}\n";
    ++lines_;
  }
}

}  // namespace ecgrid::stats
