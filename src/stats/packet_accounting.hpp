// End-to-end packet accounting: delivery rate and latency (paper §4C).
//
// Definitions follow the paper exactly:
//   * packet delivery rate = packets received by destinations / packets
//     issued by the corresponding sources;
//   * average packet delivery latency = mean of (reception time −
//     transmission time) over delivered packets.
// Duplicate deliveries of the same (flow, sequence) are counted once.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "net/host_env.hpp"
#include "sim/time.hpp"
#include "util/ownership.hpp"

namespace ecgrid::stats {

class ECGRID_DOMAIN_PER_SCENARIO PacketAccounting {
 public:
  /// A source attempted to issue packet (flowId, sequence). Only attempts
  /// from live sources count toward the denominator (a dead host issues
  /// nothing — the paper measures delivery while the network lives).
  void onSent(std::uint64_t flowId, std::uint64_t sequence, bool sourceAlive);

  /// The addressed destination received the packet carrying `tag`.
  void onReceived(const net::DataTag& tag, sim::Time now);

  std::uint64_t packetsSent() const { return sent_; }
  std::uint64_t packetsReceived() const { return received_; }
  std::uint64_t duplicatesSuppressed() const { return duplicates_; }

  /// In [0, 1]; 1.0 when nothing was sent.
  double deliveryRate() const;

  /// Mean end-to-end latency in seconds over delivered packets (0 if none).
  double meanLatency() const;

  /// Latency percentile in seconds (p in [0, 100]).
  double latencyPercentile(double p) const;

  const std::vector<double>& latencies() const { return latencies_; }

  /// Per-flow delivery rate, keyed by flow id.
  std::map<std::uint64_t, double> perFlowDeliveryRate() const;

 private:
  std::uint64_t sent_ = 0;
  std::uint64_t received_ = 0;
  std::uint64_t duplicates_ = 0;
  std::vector<double> latencies_;
  std::set<std::pair<std::uint64_t, std::uint64_t>> delivered_;
  std::map<std::uint64_t, std::uint64_t> sentPerFlow_;
  std::map<std::uint64_t, std::uint64_t> receivedPerFlow_;
};

}  // namespace ecgrid::stats
