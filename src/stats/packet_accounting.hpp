// End-to-end packet accounting: delivery rate and latency (paper §4C).
//
// Definitions follow the paper exactly:
//   * packet delivery rate = packets received by destinations / packets
//     issued by the corresponding sources;
//   * average packet delivery latency = mean of (reception time −
//     transmission time) over delivered packets.
// Duplicate deliveries of the same (flow, sequence) are counted once.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <vector>

#include "net/host_env.hpp"
#include "sim/time.hpp"
#include "util/ownership.hpp"

namespace ecgrid::stats {

/// Per-flow lifecycle timestamps. `firstAttempt`/`firstDelivery`/
/// `lastDelivery` are kTimeNever until the corresponding event happens,
/// so at horizon end an *aborted* flow (explicitly given up on),
/// an *in-flight* flow (attempts outstanding, nobody gave up), and a
/// *fully drained* flow are three distinguishable states instead of one
/// undifferentiated "didn't deliver everything".
struct FlowTimes {
  sim::Time firstAttempt = sim::kTimeNever;
  sim::Time firstDelivery = sim::kTimeNever;
  sim::Time lastDelivery = sim::kTimeNever;
  std::uint64_t attempts = 0;
  std::uint64_t delivered = 0;
  bool aborted = false;
};

class ECGRID_DOMAIN_PER_SCENARIO PacketAccounting {
 public:
  /// A source attempted to issue packet (flowId, sequence) at `now`. Only
  /// attempts from live sources count toward the denominator (a dead host
  /// issues nothing — the paper measures delivery while the network
  /// lives); a dead-source attempt still stamps the flow's firstAttempt.
  void onSent(std::uint64_t flowId, std::uint64_t sequence, bool sourceAlive,
              sim::Time now = sim::kTimeZero);

  /// The addressed destination received the packet carrying `tag`.
  void onReceived(const net::DataTag& tag, sim::Time now);

  /// The traffic layer gave up on `flowId` (source died, SLO deadline
  /// blown, horizon reached with the session incomplete). Idempotent.
  void onFlowAborted(std::uint64_t flowId);

  /// Invoked once per *first* delivery of a (flow, sequence) pair, after
  /// the accounting has been updated — duplicates never reach it. The
  /// workload generator hangs its session bookkeeping here so the app
  /// receive hook stays single-owner (FlowManager installs it once).
  void setDeliveryListener(
      std::function<void(const net::DataTag&, sim::Time)> listener) {
    deliveryListener_ = std::move(listener);
  }

  std::uint64_t packetsSent() const { return sent_; }
  std::uint64_t packetsReceived() const { return received_; }
  std::uint64_t duplicatesSuppressed() const { return duplicates_; }

  /// Flows explicitly marked aborted via onFlowAborted().
  std::uint64_t abortedFlows() const { return abortedFlows_; }

  /// Flows with outstanding attempts at horizon end that nobody aborted:
  /// attempts > delivered and not aborted. (CBR flows normally end here —
  /// open-loop sources never "complete"; the split matters for the
  /// workload layer's session accounting.)
  std::uint64_t inFlightFlows() const;

  /// Lifecycle timestamps for `flowId` (default FlowTimes if unknown).
  FlowTimes flowTimes(std::uint64_t flowId) const;

  /// In [0, 1]; 1.0 when nothing was sent.
  double deliveryRate() const;

  /// Mean end-to-end latency in seconds over delivered packets (0 if none).
  double meanLatency() const;

  /// Latency percentile in seconds (p in [0, 100]).
  double latencyPercentile(double p) const;

  const std::vector<double>& latencies() const { return latencies_; }

  /// Per-flow delivery rate, keyed by flow id.
  std::map<std::uint64_t, double> perFlowDeliveryRate() const;

 private:
  std::uint64_t sent_ = 0;
  std::uint64_t received_ = 0;
  std::uint64_t duplicates_ = 0;
  std::uint64_t abortedFlows_ = 0;
  std::vector<double> latencies_;
  std::set<std::pair<std::uint64_t, std::uint64_t>> delivered_;
  std::map<std::uint64_t, std::uint64_t> sentPerFlow_;
  std::map<std::uint64_t, std::uint64_t> receivedPerFlow_;
  std::map<std::uint64_t, FlowTimes> flowTimes_;
  std::function<void(const net::DataTag&, sim::Time)> deliveryListener_;
};

}  // namespace ecgrid::stats
