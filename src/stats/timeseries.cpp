#include "stats/timeseries.hpp"

#include <fstream>

#include "util/error.hpp"

namespace ecgrid::stats {

double TimeSeries::valueAt(sim::Time t) const {
  if (points_.empty()) return 0.0;
  double value = points_.front().second;
  for (const auto& [pt, pv] : points_) {
    if (pt > t) break;
    value = pv;
  }
  return value;
}

sim::Time TimeSeries::firstTimeBelow(double threshold) const {
  for (const auto& [t, v] : points_) {
    if (v <= threshold) return t;
  }
  return sim::kTimeNever;
}

void writeCsv(const std::string& path, const std::vector<TimeSeries>& series) {
  ECGRID_REQUIRE(!series.empty(), "need at least one series");
  std::ofstream out(path);
  ECGRID_REQUIRE(out.good(), "cannot open CSV output: " + path);

  out << "time";
  for (const TimeSeries& s : series) out << "," << s.label();
  out << "\n";

  std::size_t rows = 0;
  for (const TimeSeries& s : series) rows = std::max(rows, s.size());
  for (std::size_t i = 0; i < rows; ++i) {
    bool timeWritten = false;
    std::string line;
    for (const TimeSeries& s : series) {
      if (!timeWritten && i < s.size()) {
        out << s.points()[i].first;
        timeWritten = true;
      }
      if (!timeWritten) out << "";
    }
    for (const TimeSeries& s : series) {
      out << ",";
      if (i < s.size()) out << s.points()[i].second;
    }
    out << "\n";
  }
}

}  // namespace ecgrid::stats
