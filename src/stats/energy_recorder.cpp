#include "stats/energy_recorder.hpp"

#include "util/error.hpp"

namespace ecgrid::stats {

EnergyRecorder::EnergyRecorder(net::Network& network, sim::Time interval,
                               std::vector<net::Node*> metered)
    : network_(network), interval_(interval), metered_(std::move(metered)) {
  ECGRID_REQUIRE(interval > 0.0, "sample interval must be positive");
  if (metered_.empty()) {
    for (auto& node : network_.nodes()) {
      if (!node->batteryRef().isInfinite()) metered_.push_back(node.get());
    }
  }
  ECGRID_REQUIRE(!metered_.empty(), "nothing to meter");
  for (net::Node* node : metered_) {
    node->setDeathCallback([this](net::NodeId, sim::Time when) {
      deathTimes_.push_back(when);
    });
  }
  sample();
  timer_ = network_.simulator().schedule(interval_, [this] { tick(); },
                                         "stats/sample");
}

void EnergyRecorder::tick() {
  sample();
  timer_ = network_.simulator().schedule(interval_, [this] { tick(); },
                                         "stats/sample");
}

void EnergyRecorder::sample() {
  sim::Time now = network_.simulator().now();
  std::size_t alive = 0;
  std::size_t awake = 0;
  double consumed = 0.0;
  double capacity = 0.0;
  for (net::Node* node : metered_) {
    if (node->alive()) {
      ++alive;
      if (!node->radio().sleeping()) ++awake;
    }
    consumed += node->batteryRef().consumedJ(now);
    capacity += node->batteryRef().capacityJ();
  }
  aliveFraction_.add(now, static_cast<double>(alive) /
                              static_cast<double>(metered_.size()));
  aen_.add(now, capacity > 0.0 ? consumed / capacity : 0.0);
  awakeFraction_.add(now, static_cast<double>(awake) /
                              static_cast<double>(metered_.size()));
}

}  // namespace ecgrid::stats
