// Periodic network-state tracing for visualization and post-mortems.
//
// Samples every host's position, radio state, and protocol role on a
// fixed interval and appends one JSON object per host per sample to a
// JSON-Lines file. The format is deliberately flat so a ten-line Python
// script (or jq) can animate gateway hand-offs, sleep coverage, and death
// waves. The file opens with a schema header line
//
//   {"schema":"ecgrid-state","version":2,"interval":5}
//
// followed by one record per host per sample:
//
//   {"t":120.0,"id":17,"x":431.2,"y":87.9,"alive":true,"crashed":false,
//    "sleeping":false,"gateway":true,"cell_x":4,"cell_y":0,
//    "battery":0.73,"gps_err":0,"served_x":4,"served_y":0}
//
// x/y (and cell_x/cell_y) are ground truth; under an injected GPS fault
// the host itself may believe a different cell, and `gps_err` carries the
// magnitude of its position error. `served_x`/`served_y` (v2, gateways
// only) is the grid the gateway *believes* it serves — highlight frames
// where it differs from cell_x/cell_y. `crashed` distinguishes an
// injected host failure (battery frozen, may restart) from battery death
// (`alive` false, `crashed` false). tools/trace_check.py validates the
// format.
#pragma once

#include <fstream>
#include <string>

#include "net/network.hpp"
#include "sim/simulator.hpp"
#include "util/ownership.hpp"

namespace ecgrid::stats {

class ECGRID_DOMAIN_PER_SCENARIO TraceRecorder {
 public:
  /// Starts sampling immediately, then every `interval` seconds, into
  /// `path` (truncated). Throws if the file cannot be opened.
  TraceRecorder(net::Network& network, sim::Time interval,
                const std::string& path);

  ~TraceRecorder();
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// Take one sample now (also invoked by the periodic timer).
  void sample();

  /// Flush buffered lines to disk.
  void flush() { out_.flush(); }

  std::uint64_t linesWritten() const { return lines_; }

 private:
  void tick();

  net::Network& network_;
  sim::Time interval_;
  std::ofstream out_;
  std::uint64_t lines_ = 0;
  sim::EventHandle timer_;
};

}  // namespace ecgrid::stats
