// Periodic sampling of the network's energy state (paper §4A/B/D).
//
// Samples two series on a fixed interval over a set of *metered* hosts:
//   * alive fraction — hosts with battery left / metered hosts;
//   * aen            — the paper's eq. (2): mean normalised energy
//                      consumption, Σᵢ consumedᵢ(t) / (n · E₀).
// GAF Model 1 runs meter only the 100 finite hosts; the ten
// infinite-energy endpoints are excluded by construction.
#pragma once

#include <vector>

#include "net/network.hpp"
#include "stats/timeseries.hpp"
#include "util/ownership.hpp"

namespace ecgrid::stats {

class ECGRID_DOMAIN_PER_SCENARIO EnergyRecorder {
 public:
  /// Starts sampling immediately and then every `interval` seconds.
  /// `metered` selects the nodes to measure (empty = all finite-battery
  /// nodes in the network).
  EnergyRecorder(net::Network& network, sim::Time interval,
                 std::vector<net::Node*> metered = {});

  ~EnergyRecorder() { timer_.cancel(); }
  EnergyRecorder(const EnergyRecorder&) = delete;
  EnergyRecorder& operator=(const EnergyRecorder&) = delete;

  const TimeSeries& aliveFraction() const { return aliveFraction_; }
  const TimeSeries& aen() const { return aen_; }
  /// Fraction of metered hosts that are alive with their transceiver on
  /// (gateway or active member) — the protocol's duty cycle.
  const TimeSeries& awakeFraction() const { return awakeFraction_; }

  /// Take one sample now (also called by the periodic timer).
  void sample();

  /// Times at which metered hosts died, in death order.
  const std::vector<sim::Time>& deathTimes() const { return deathTimes_; }

  /// First host death, or kTimeNever.
  sim::Time firstDeath() const {
    return deathTimes_.empty() ? sim::kTimeNever : deathTimes_.front();
  }

 private:
  void tick();

  net::Network& network_;
  sim::Time interval_;
  std::vector<net::Node*> metered_;
  TimeSeries aliveFraction_{"alive_fraction"};
  TimeSeries aen_{"aen"};
  TimeSeries awakeFraction_{"awake_fraction"};
  std::vector<sim::Time> deathTimes_;
  sim::EventHandle timer_;
};

}  // namespace ecgrid::stats
