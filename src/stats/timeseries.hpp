// Sampled time series (alive fraction, aen, ...) with CSV emission.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "sim/time.hpp"

namespace ecgrid::stats {

class TimeSeries {
 public:
  TimeSeries() = default;
  explicit TimeSeries(std::string label) : label_(std::move(label)) {}

  void add(sim::Time t, double value) { points_.emplace_back(t, value); }

  const std::string& label() const { return label_; }
  const std::vector<std::pair<sim::Time, double>>& points() const {
    return points_;
  }
  bool empty() const { return points_.empty(); }
  std::size_t size() const { return points_.size(); }

  /// Last sampled value at or before `t` (first value if t precedes all
  /// samples, 0 for an empty series).
  double valueAt(sim::Time t) const;

  /// Earliest sample time at which the value drops to or below
  /// `threshold`; kTimeNever if it never does.
  sim::Time firstTimeBelow(double threshold) const;

 private:
  std::string label_;
  std::vector<std::pair<sim::Time, double>> points_;
};

/// Writes aligned series (shared time column) as CSV. All series must be
/// sampled on the same grid; shorter series pad with blanks.
void writeCsv(const std::string& path, const std::vector<TimeSeries>& series);

}  // namespace ecgrid::stats
