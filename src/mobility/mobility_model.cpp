#include "mobility/mobility_model.hpp"

#include <limits>

#include "util/error.hpp"

namespace ecgrid::mobility {

namespace {
// Nudges boundary-exit timers strictly past the crossing so the follow-up
// position query lands inside the next cell, not on the shared edge.
constexpr double kBoundaryEpsilon = 1e-6;
}  // namespace

sim::Time MobilityModel::nextPossibleCellExit(const geo::GridMap& grid,
                                              sim::Time t,
                                              const geo::Vec2& offset) {
  geo::Vec2 pos = positionAt(t) + offset;
  geo::Vec2 vel = velocityAt(t);
  double exit = grid.timeToExitCell(pos, vel);
  sim::Time byMotion =
      exit == std::numeric_limits<double>::infinity() ? sim::kTimeNever
                                                      : t + exit;
  sim::Time byChange = nextChangeTime(t);
  sim::Time next = byMotion < byChange ? byMotion : byChange;
  if (next >= sim::kTimeNever) return sim::kTimeNever;
  if (next <= t) next = t;
  return next + kBoundaryEpsilon;
}

ScriptedMobility::ScriptedMobility(std::vector<Leg> legs)
    : legs_(std::move(legs)) {
  ECGRID_REQUIRE(!legs_.empty(), "scripted mobility needs at least one leg");
  ECGRID_REQUIRE(legs_.front().start == 0.0, "first leg must start at t=0");
  for (std::size_t i = 1; i < legs_.size(); ++i) {
    ECGRID_REQUIRE(legs_[i].start > legs_[i - 1].start,
                   "legs must be strictly ordered by start time");
  }
}

const ScriptedMobility::Leg& ScriptedMobility::legAt(sim::Time t) const {
  // Linear scan is fine: scripted trajectories are short test fixtures.
  const Leg* current = &legs_.front();
  for (const Leg& leg : legs_) {
    if (leg.start <= t) current = &leg;
  }
  return *current;
}

geo::Vec2 ScriptedMobility::positionAt(sim::Time t) {
  const Leg& leg = legAt(t);
  return leg.origin + leg.velocity * (t - leg.start);
}

geo::Vec2 ScriptedMobility::velocityAt(sim::Time t) { return legAt(t).velocity; }

sim::Time ScriptedMobility::nextChangeTime(sim::Time t) {
  for (const Leg& leg : legs_) {
    if (leg.start > t) return leg.start;
  }
  return sim::kTimeNever;
}

}  // namespace ecgrid::mobility
