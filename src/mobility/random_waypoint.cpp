#include "mobility/random_waypoint.hpp"

#include "util/error.hpp"

namespace ecgrid::mobility {

RandomWaypoint::RandomWaypoint(const RandomWaypointConfig& config,
                               sim::RngStream rng)
    : config_(config), rng_(std::move(rng)) {
  ECGRID_REQUIRE(config.fieldWidth > 0.0 && config.fieldHeight > 0.0,
                 "field must have positive area");
  ECGRID_REQUIRE(config.maxSpeed > config.minSpeed && config.minSpeed > 0.0,
                 "need 0 < minSpeed < maxSpeed");
  ECGRID_REQUIRE(config.pauseTime >= 0.0, "pause time cannot be negative");
  geo::Vec2 start{rng_.uniform(0.0, config_.fieldWidth),
                  rng_.uniform(0.0, config_.fieldHeight)};
  if (config_.pauseTime > 0.0) {
    current_ = makePauseLeg(0.0, config_.pauseTime, start);
  } else {
    current_ = makeTravelLeg(0.0, start);
  }
}

RandomWaypoint::Leg RandomWaypoint::makePauseLeg(sim::Time start,
                                                 sim::Time duration,
                                                 const geo::Vec2& at) {
  Leg leg;
  leg.start = start;
  leg.end = start + duration;
  leg.origin = at;
  leg.velocity = {};
  return leg;
}

RandomWaypoint::Leg RandomWaypoint::makeTravelLeg(sim::Time start,
                                                  const geo::Vec2& from) {
  geo::Vec2 waypoint{rng_.uniform(0.0, config_.fieldWidth),
                     rng_.uniform(0.0, config_.fieldHeight)};
  double speed = rng_.uniform(config_.minSpeed, config_.maxSpeed);
  double distance = from.distanceTo(waypoint);
  Leg leg;
  leg.start = start;
  leg.origin = from;
  if (distance < 1e-9) {
    // Degenerate waypoint on top of us: treat as an instantaneous arrival
    // by pausing one speed-unit; the next advance picks a fresh waypoint.
    leg.end = start + 1e-3;
    leg.velocity = {};
  } else {
    leg.end = start + distance / speed;
    leg.velocity = (waypoint - from) * (speed / distance);
  }
  return leg;
}

void RandomWaypoint::advanceTo(sim::Time t) {
  ECGRID_REQUIRE(t + 1e-9 >= current_.start,
                 "mobility queried backwards in time");
  while (t >= current_.end) {
    geo::Vec2 endPos =
        current_.origin + current_.velocity * (current_.end - current_.start);
    bool wasTravel = current_.velocity.lengthSquared() > 0.0;
    if (wasTravel && config_.pauseTime > 0.0) {
      current_ = makePauseLeg(current_.end, config_.pauseTime, endPos);
    } else {
      current_ = makeTravelLeg(current_.end, endPos);
    }
  }
}

geo::Vec2 RandomWaypoint::positionAt(sim::Time t) {
  advanceTo(t);
  return current_.origin + current_.velocity * (t - current_.start);
}

geo::Vec2 RandomWaypoint::velocityAt(sim::Time t) {
  advanceTo(t);
  return current_.velocity;
}

sim::Time RandomWaypoint::nextChangeTime(sim::Time t) {
  advanceTo(t);
  return current_.end;
}

}  // namespace ecgrid::mobility
