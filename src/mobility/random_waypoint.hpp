// Random-waypoint mobility (paper §4).
//
// A host repeatedly: picks a uniformly random destination inside the field
// and a uniformly random speed in (0, vMax], moves there in a straight
// line, then pauses for `pauseTime` before picking the next waypoint.
// The paper evaluates vMax ∈ {1, 10} m/s and pause times 0–600 s.
//
// Note on the speed distribution: the paper says "uniformly distributed
// between 0 and vMax". Sampling arbitrarily-close-to-zero speeds makes
// legs arbitrarily long (the classic random-waypoint speed-decay
// pathology), so we floor the draw at a small minSpeed (default 0.01 m/s)
// — indistinguishable in the metrics but numerically safe.
#pragma once

#include <memory>

#include "mobility/mobility_model.hpp"
#include "sim/rng.hpp"
#include "util/ownership.hpp"

namespace ecgrid::mobility {

struct RandomWaypointConfig {
  double fieldWidth = 1000.0;   ///< metres
  double fieldHeight = 1000.0;  ///< metres
  double maxSpeed = 1.0;        ///< m/s, exclusive upper bound of the draw
  double minSpeed = 0.01;       ///< m/s floor (see header comment)
  double pauseTime = 0.0;       ///< seconds at each waypoint
};

class ECGRID_DOMAIN_PER_HOST RandomWaypoint final : public MobilityModel {
 public:
  /// Starts at a uniformly random position, beginning with a pause leg of
  /// `config.pauseTime` (matching ns-2 setdest traces).
  RandomWaypoint(const RandomWaypointConfig& config, sim::RngStream rng);

  geo::Vec2 positionAt(sim::Time t) override;
  geo::Vec2 velocityAt(sim::Time t) override;
  sim::Time nextChangeTime(sim::Time t) override;

 private:
  struct Leg {
    sim::Time start = 0.0;
    sim::Time end = 0.0;
    geo::Vec2 origin;
    geo::Vec2 velocity;
  };

  /// Extends the trajectory until the current leg covers `t`.
  void advanceTo(sim::Time t);
  Leg makeTravelLeg(sim::Time start, const geo::Vec2& from);
  static Leg makePauseLeg(sim::Time start, sim::Time duration,
                          const geo::Vec2& at);

  RandomWaypointConfig config_;
  sim::RngStream rng_;
  Leg current_;
};

}  // namespace ecgrid::mobility
