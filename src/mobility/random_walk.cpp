#include "mobility/random_walk.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "util/error.hpp"

namespace ecgrid::mobility {

RandomWalk::RandomWalk(const RandomWalkConfig& config, sim::RngStream rng)
    : config_(config), rng_(std::move(rng)) {
  ECGRID_REQUIRE(config.speed > 0.0, "walk speed must be positive");
  ECGRID_REQUIRE(config.epoch > 0.0, "walk epoch must be positive");
  geo::Vec2 start{rng_.uniform(0.0, config_.fieldWidth),
                  rng_.uniform(0.0, config_.fieldHeight)};
  current_ = makeLeg(0.0, start);
}

RandomWalk::Leg RandomWalk::makeLeg(sim::Time start, const geo::Vec2& from) {
  double heading = rng_.uniform(0.0, 2.0 * std::numbers::pi);
  geo::Vec2 velocity{config_.speed * std::cos(heading),
                     config_.speed * std::sin(heading)};
  // Truncate the epoch at the first field-edge hit; the next leg then
  // starts with a fresh heading drawn from the interior, which acts as a
  // reflection without ever leaving the field.
  double tEdge = config_.epoch;
  auto clip = [&](double p, double v, double hi) {
    if (v > 0.0) tEdge = std::min(tEdge, (hi - p) / v);
    if (v < 0.0) tEdge = std::min(tEdge, (0.0 - p) / v);
  };
  clip(from.x, velocity.x, config_.fieldWidth);
  clip(from.y, velocity.y, config_.fieldHeight);
  if (tEdge < 1e-6) tEdge = 1e-6;

  Leg leg;
  leg.start = start;
  leg.end = start + tEdge;
  leg.origin = from;
  leg.velocity = velocity;
  return leg;
}

void RandomWalk::advanceTo(sim::Time t) {
  ECGRID_REQUIRE(t + 1e-9 >= current_.start,
                 "mobility queried backwards in time");
  while (t >= current_.end) {
    geo::Vec2 endPos =
        current_.origin + current_.velocity * (current_.end - current_.start);
    // Numerical safety: clamp strictly inside the field before re-drawing.
    endPos.x = std::clamp(endPos.x, 0.0, config_.fieldWidth);
    endPos.y = std::clamp(endPos.y, 0.0, config_.fieldHeight);
    current_ = makeLeg(current_.end, endPos);
  }
}

geo::Vec2 RandomWalk::positionAt(sim::Time t) {
  advanceTo(t);
  return current_.origin + current_.velocity * (t - current_.start);
}

geo::Vec2 RandomWalk::velocityAt(sim::Time t) {
  advanceTo(t);
  return current_.velocity;
}

sim::Time RandomWalk::nextChangeTime(sim::Time t) {
  advanceTo(t);
  return current_.end;
}

}  // namespace ecgrid::mobility
