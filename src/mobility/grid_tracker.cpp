#include "mobility/grid_tracker.hpp"

#include "util/error.hpp"

namespace ecgrid::mobility {

GridTracker::GridTracker(sim::Simulator& sim, const geo::GridMap& grid,
                         MobilityModel& model,
                         CellChangeCallback onCellChanged,
                         PositionOffset offset)
    : sim_(sim),
      grid_(grid),
      model_(model),
      onCellChanged_(std::move(onCellChanged)),
      offset_(std::move(offset)) {
  ECGRID_REQUIRE(onCellChanged_ != nullptr, "cell-change callback required");
  cell_ = observedCell();
  arm();
}

geo::GridCoord GridTracker::observedCell() {
  geo::Vec2 pos = model_.positionAt(sim_.now());
  if (offset_) pos += offset_();
  return grid_.cellOf(pos);
}

void GridTracker::stop() {
  stopped_ = true;
  pending_.cancel();
}

void GridTracker::restart() {
  if (!stopped_) return;
  stopped_ = false;
  pending_.cancel();
  cell_ = observedCell();
  arm();
}

void GridTracker::refresh() {
  if (stopped_) return;
  pending_.cancel();
  geo::GridCoord now = observedCell();
  if (now != cell_) {
    geo::GridCoord old = cell_;
    cell_ = now;
    onCellChanged_(old, now);
    if (stopped_) return;  // callback may have stopped us
  }
  arm();
}

void GridTracker::arm() {
  if (stopped_) return;
  sim::Time next = model_.nextPossibleCellExit(
      grid_, sim_.now(), offset_ ? offset_() : geo::Vec2{});
  if (next >= sim::kTimeNever) return;  // static host: nothing to track
  pending_ = sim_.scheduleAt(next, [this] { onTimer(); },
                             "mobility/cell_exit");
}

void GridTracker::onTimer() {
  if (stopped_) return;
  geo::GridCoord now = observedCell();
  if (now != cell_) {
    geo::GridCoord old = cell_;
    cell_ = now;
    onCellChanged_(old, now);
    if (stopped_) return;  // callback may have stopped us (host died)
  }
  arm();
}

}  // namespace ecgrid::mobility
