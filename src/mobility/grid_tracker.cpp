#include "mobility/grid_tracker.hpp"

#include "util/error.hpp"

namespace ecgrid::mobility {

GridTracker::GridTracker(sim::Simulator& sim, const geo::GridMap& grid,
                         MobilityModel& model,
                         CellChangeCallback onCellChanged)
    : sim_(sim),
      grid_(grid),
      model_(model),
      onCellChanged_(std::move(onCellChanged)) {
  ECGRID_REQUIRE(onCellChanged_ != nullptr, "cell-change callback required");
  cell_ = grid_.cellOf(model_.positionAt(sim_.now()));
  arm();
}

void GridTracker::stop() {
  stopped_ = true;
  pending_.cancel();
}

void GridTracker::restart() {
  if (!stopped_) return;
  stopped_ = false;
  pending_.cancel();
  cell_ = grid_.cellOf(model_.positionAt(sim_.now()));
  arm();
}

void GridTracker::arm() {
  if (stopped_) return;
  sim::Time next = model_.nextPossibleCellExit(grid_, sim_.now());
  if (next >= sim::kTimeNever) return;  // static host: nothing to track
  pending_ = sim_.scheduleAt(next, [this] { onTimer(); });
}

void GridTracker::onTimer() {
  if (stopped_) return;
  geo::GridCoord now = grid_.cellOf(model_.positionAt(sim_.now()));
  if (now != cell_) {
    geo::GridCoord old = cell_;
    cell_ = now;
    onCellChanged_(old, now);
    if (stopped_) return;  // callback may have stopped us (host died)
  }
  arm();
}

}  // namespace ecgrid::mobility
