// Host mobility.
//
// Models are piecewise-linear: a host moves with constant velocity between
// "motion changes" (waypoint reached, pause over, direction change). The
// simulator exploits this to schedule *exact* grid-boundary-crossing events
// instead of polling positions — see GridTracker.
//
// The paper equips every host with GPS, so protocols may read position and
// velocity directly; that is exactly the interface exposed here.
#pragma once

#include <vector>

#include "geo/grid.hpp"
#include "geo/vec2.hpp"
#include "sim/time.hpp"
#include "util/ownership.hpp"

namespace ecgrid::mobility {

class ECGRID_DOMAIN_PER_HOST MobilityModel {
 public:
  virtual ~MobilityModel() = default;

  /// Position at time `t`. `t` must be non-decreasing across calls (models
  /// generate their trajectory lazily).
  virtual geo::Vec2 positionAt(sim::Time t) = 0;

  /// Velocity during the motion leg containing `t` (zero while paused).
  virtual geo::Vec2 velocityAt(sim::Time t) = 0;

  /// Absolute time of the next velocity change at or after `t`
  /// (kTimeNever for models that never change).
  virtual sim::Time nextChangeTime(sim::Time t) = 0;

  /// Estimated dwell: earliest future time at which the host *could* leave
  /// its current grid cell — either by crossing the boundary on its
  /// current leg or because its velocity changes first. This is the
  /// paper's sleep-timer estimate ("depends on the location and velocity
  /// of the host", §3.2). Guaranteed strictly greater than `t`.
  ///
  /// `offset` shifts the position the boundary test runs against without
  /// touching the trajectory — a host with GPS error plans around the cell
  /// it *believes* it occupies (believed position = true position +
  /// offset, same velocity, so the crossing time stays exact).
  sim::Time nextPossibleCellExit(const geo::GridMap& grid, sim::Time t,
                                 const geo::Vec2& offset = {});
};

/// A host that never moves; used by tests and static-deployment examples.
class StaticMobility final : public MobilityModel {
 public:
  explicit StaticMobility(geo::Vec2 position) : position_(position) {}

  geo::Vec2 positionAt(sim::Time) override { return position_; }
  geo::Vec2 velocityAt(sim::Time) override { return {}; }
  sim::Time nextChangeTime(sim::Time) override { return sim::kTimeNever; }

 private:
  geo::Vec2 position_;
};

/// Scripted piecewise-linear motion for deterministic tests: the host
/// follows a fixed list of (startTime, startPos, velocity) legs.
class ScriptedMobility final : public MobilityModel {
 public:
  struct Leg {
    sim::Time start = 0.0;
    geo::Vec2 origin;
    geo::Vec2 velocity;
  };

  /// Legs must be sorted by start time; the first must start at 0.
  explicit ScriptedMobility(std::vector<Leg> legs);

  geo::Vec2 positionAt(sim::Time t) override;
  geo::Vec2 velocityAt(sim::Time t) override;
  sim::Time nextChangeTime(sim::Time t) override;

 private:
  const Leg& legAt(sim::Time t) const;
  std::vector<Leg> legs_;
};

}  // namespace ecgrid::mobility
