// Random-walk (random-direction) mobility.
//
// Not used by the paper's headline figures, but provided (a) as an extra
// stressor for tests — it produces many more grid crossings per second
// than random waypoint at the same speed — and (b) for the mobility
// ablation benches. The host picks a uniformly random heading and walks at
// constant speed for a fixed epoch, reflecting off the field edges.
#pragma once

#include "mobility/mobility_model.hpp"
#include "sim/rng.hpp"
#include "util/ownership.hpp"

namespace ecgrid::mobility {

struct RandomWalkConfig {
  double fieldWidth = 1000.0;
  double fieldHeight = 1000.0;
  double speed = 1.0;        ///< m/s, constant
  double epoch = 20.0;       ///< seconds per heading
};

class ECGRID_DOMAIN_PER_HOST RandomWalk final : public MobilityModel {
 public:
  RandomWalk(const RandomWalkConfig& config, sim::RngStream rng);

  geo::Vec2 positionAt(sim::Time t) override;
  geo::Vec2 velocityAt(sim::Time t) override;
  sim::Time nextChangeTime(sim::Time t) override;

 private:
  struct Leg {
    sim::Time start = 0.0;
    sim::Time end = 0.0;
    geo::Vec2 origin;
    geo::Vec2 velocity;
  };

  void advanceTo(sim::Time t);
  Leg makeLeg(sim::Time start, const geo::Vec2& from);

  RandomWalkConfig config_;
  sim::RngStream rng_;
  Leg current_;
};

}  // namespace ecgrid::mobility
