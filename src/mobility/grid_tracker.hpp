// Event-driven grid-crossing detection.
//
// Because mobility is piecewise linear, the exact moment a host leaves its
// current cell is computable: it is the sooner of (a) the straight-line
// boundary crossing at current velocity and (b) the next velocity change
// (after which we recompute). GridTracker schedules a simulator event at
// that moment, fires `onCellChanged(old, new)` when the cell really did
// change, and re-arms. This gives protocols exact "host entered/left grid"
// notifications with zero polling — the discrete-event analogue of the
// paper's GPS-driven dwell estimation.
//
// An optional PositionOffset makes the tracker watch a *shifted* position
// (believed position under GPS error) with the same exactness: a constant
// offset just translates every boundary, so crossing times stay
// computable. refresh() re-tests immediately when the offset changes.
#pragma once

#include <functional>

#include "geo/grid.hpp"
#include "mobility/mobility_model.hpp"
#include "sim/simulator.hpp"
#include "util/ownership.hpp"

namespace ecgrid::mobility {

class ECGRID_DOMAIN_PER_HOST GridTracker {
 public:
  using CellChangeCallback =
      std::function<void(const geo::GridCoord& from, const geo::GridCoord& to)>;
  /// Optional world-frame shift applied to the model's position before
  /// the cell test: tracking a *believed* position (true + GPS error)
  /// instead of the ground truth. Must be cheap; re-read at every check.
  using PositionOffset = std::function<geo::Vec2()>;

  /// Starts tracking immediately. `model` and `sim` must outlive this.
  /// With no `offset` (or one returning zero) the tracker watches
  /// ground-truth crossings exactly as before.
  GridTracker(sim::Simulator& sim, const geo::GridMap& grid,
              MobilityModel& model, CellChangeCallback onCellChanged,
              PositionOffset offset = nullptr);

  ~GridTracker() { stop(); }

  GridTracker(const GridTracker&) = delete;
  GridTracker& operator=(const GridTracker&) = delete;

  /// Cell the host was last observed in.
  const geo::GridCoord& currentCell() const { return cell_; }

  /// Cancels the pending check; no further callbacks fire.
  void stop();

  /// Resume tracking after stop() (host restart after a crash). The
  /// current cell is re-read from the mobility model — no callback fires
  /// for movement that happened while stopped.
  void restart();

  /// The position offset changed (e.g. a GPS-error update): re-test the
  /// cell *now* — firing the callback if the shift moved it — and re-arm
  /// the boundary timer against the shifted geometry. No-op while
  /// stopped.
  void refresh();

 private:
  void arm();
  void onTimer();
  geo::GridCoord observedCell();

  sim::Simulator& sim_;
  geo::GridMap grid_;
  MobilityModel& model_;
  CellChangeCallback onCellChanged_;
  PositionOffset offset_;
  geo::GridCoord cell_;
  sim::EventHandle pending_;
  bool stopped_ = false;
};

}  // namespace ecgrid::mobility
