// Determinism analysis: state digests for replay & tie-order checking.
//
// Every experimental claim in this reproduction rests on exact replay:
// protocols are compared on byte-identical mobility/traffic traces, and
// the fault layer promises that an inert FaultPlan leaves a run
// bit-for-bit unchanged. A StateDigest makes that promise checkable at
// runtime: it folds the observable simulation state — per-host position,
// cell, battery, radio, MAC counters, protocol role, and route tables,
// plus network-wide frame/page counters — into one FNV-1a value. Two
// runs of the same ScenarioConfig must produce identical digest traces;
// a run whose event-queue tie-break is perturbed (see
// EventQueue::perturbTieBreak) must still land on the same *final*
// digest, or some component depends on the execution order of
// same-instant events — the simulator's analogue of a data race.
//
// harness::checkDeterminism (src/harness/determinism.hpp) drives both
// comparisons over full scenarios.
#pragma once

#include <cstdint>
#include <cstring>
#include <string_view>
#include <vector>

#include "sim/time.hpp"

namespace ecgrid::net {
class Network;
}

namespace ecgrid::check {

/// Incremental 64-bit FNV-1a. A tiny value type so audits and tests can
/// fold arbitrary state without pulling in a hashing library.
class Fnv1a {
 public:
  [[nodiscard]] std::uint64_t value() const { return hash_; }

  void mixBytes(const void* data, std::size_t size) {
    const auto* bytes = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < size; ++i) {
      hash_ ^= bytes[i];
      hash_ *= kPrime;
    }
  }

  void mixU64(std::uint64_t v) { mixBytes(&v, sizeof(v)); }
  void mixI64(std::int64_t v) { mixU64(static_cast<std::uint64_t>(v)); }
  void mixBool(bool v) { mixU64(v ? 1 : 0); }

  /// Doubles are mixed by bit pattern: the digest asks "bit-identical?",
  /// not "approximately equal?".
  void mixDouble(double v) {
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    mixU64(bits);
  }

  void mixString(std::string_view s) {
    mixU64(s.size());
    mixBytes(s.data(), s.size());
  }

 private:
  static constexpr std::uint64_t kOffsetBasis = 0xcbf29ce484222325ull;
  static constexpr std::uint64_t kPrime = 0x100000001b3ull;

  std::uint64_t hash_ = kOffsetBasis;
};

/// Digest of the whole network's observable state at one instant. Nodes
/// are folded in population order (deterministic by construction); route
/// tables are ordered maps, so their iteration order is value-determined.
[[nodiscard]] std::uint64_t stateDigest(net::Network& network);

/// One sampled point of a digest trace.
struct DigestSample {
  std::uint64_t eventsExecuted = 0;
  sim::Time at = sim::kTimeZero;
  std::uint64_t digest = 0;

  bool operator==(const DigestSample&) const = default;
};

using DigestTrace = std::vector<DigestSample>;

}  // namespace ecgrid::check
