#include "check/alloc_audit.hpp"

#include "util/hot_path.hpp"

#if defined(ECGRID_ALLOC_AUDIT)
#include <cstdlib>
#include <new>
#if defined(__GLIBC__) || defined(__linux__)
#include <execinfo.h>
#include <unistd.h>
#define ECGRID_ALLOC_AUDIT_HAS_BACKTRACE 1
#endif
#endif

namespace ecgrid::check {

namespace {

constexpr int kPhaseCount = 3;

/// Plain-old-data so the thread_local needs no dynamic initialisation —
/// operator new may fire before any ecgrid code runs on a thread.
struct AuditState {
  std::uint64_t allocations[kPhaseCount];
  std::uint64_t deallocations[kPhaseCount];
  std::uint64_t bytes[kPhaseCount];
  std::uint64_t hotAllocations[kPhaseCount];
  std::uint8_t phase;
};

AuditState& state() noexcept {
  thread_local AuditState s{};  // ecgrid-lint: allow(shared-mutable-global)
  return s;
}

#if defined(ECGRID_ALLOC_AUDIT)

/// With ECGRID_ALLOC_AUDIT_TRACE set in the environment, the first few
/// steady-phase hot allocations dump a stack to stderr so the offending
/// call site can be read off directly instead of bisected. Uses
/// backtrace_symbols_fd, which writes to the fd without allocating — no
/// recursion through the counting operator new.
void maybeTraceHotAllocation() noexcept {
#if defined(ECGRID_ALLOC_AUDIT_HAS_BACKTRACE)
  static const bool enabled =
      std::getenv("ECGRID_ALLOC_AUDIT_TRACE") != nullptr;
  if (!enabled) return;
  thread_local int remaining = 16;
  if (remaining <= 0) return;
  --remaining;
  constexpr int kMaxFrames = 32;
  void* frames[kMaxFrames];
  const int depth = backtrace(frames, kMaxFrames);
  constexpr char kHeader[] = "\n[alloc-audit] steady-phase hot allocation:\n";
  // write() over fprintf: the stdio path may itself allocate buffers.
  [[maybe_unused]] ssize_t ignored =
      write(STDERR_FILENO, kHeader, sizeof(kHeader) - 1);
  backtrace_symbols_fd(frames, depth, STDERR_FILENO);
#endif
}

void recordAllocation(std::size_t size) noexcept {
  AuditState& s = state();
  const std::uint8_t phase = s.phase;
  ++s.allocations[phase];
  s.bytes[phase] += size;
  if (util::hotPathDepth() > 0 && util::hotPathExemptDepth() == 0) {
    ++s.hotAllocations[phase];
    if (phase == static_cast<std::uint8_t>(AllocPhase::kSteady)) {
      maybeTraceHotAllocation();
    }
  }
}

void recordDeallocation() noexcept { ++state().deallocations[state().phase]; }
#endif

}  // namespace

bool allocAuditCompiled() noexcept {
#if defined(ECGRID_ALLOC_AUDIT)
  return true;
#else
  return false;
#endif
}

void allocAuditReset() noexcept { state() = AuditState{}; }

void allocAuditSetPhase(AllocPhase phase) noexcept {
  state().phase = static_cast<std::uint8_t>(phase);
}

AllocPhase allocAuditPhase() noexcept {
  return static_cast<AllocPhase>(state().phase);
}

AllocAuditCounts allocAuditCounts(AllocPhase phase) noexcept {
  const AuditState& s = state();
  const auto i = static_cast<std::uint8_t>(phase);
  AllocAuditCounts counts;
  counts.allocations = s.allocations[i];
  counts.deallocations = s.deallocations[i];
  counts.bytes = s.bytes[i];
  counts.hotAllocations = s.hotAllocations[i];
  return counts;
}

// The depth itself lives in util/hot_path.hpp (ECGRID_ALLOC_EXEMPT uses
// the same counter from src/sim, below this module in the layering).
AllocExemptScope::AllocExemptScope() noexcept { ++util::hotPathExemptDepth(); }
AllocExemptScope::~AllocExemptScope() { --util::hotPathExemptDepth(); }

}  // namespace ecgrid::check

#if defined(ECGRID_ALLOC_AUDIT)

// Counting replacements for the global allocation functions. The
// standard nothrow and non-sized forms funnel through these, so every
// heap allocation in the process is attributed. malloc/free do the real
// work — no change in allocation behaviour, only observation.

void* operator new(std::size_t size) {
  ecgrid::check::recordAllocation(size);
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  ecgrid::check::recordAllocation(size);
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}

void* operator new(std::size_t size, std::align_val_t align) {
  ecgrid::check::recordAllocation(size);
  const std::size_t alignment = static_cast<std::size_t>(align);
  const std::size_t rounded = (size + alignment - 1) / alignment * alignment;
  if (void* p = std::aligned_alloc(alignment, rounded)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}

void operator delete(void* ptr) noexcept {
  if (ptr == nullptr) return;
  ecgrid::check::recordDeallocation();
  std::free(ptr);
}

void operator delete[](void* ptr) noexcept { ::operator delete(ptr); }

void operator delete(void* ptr, std::size_t) noexcept {
  ::operator delete(ptr);
}

void operator delete[](void* ptr, std::size_t) noexcept {
  ::operator delete(ptr);
}

void operator delete(void* ptr, std::align_val_t) noexcept {
  if (ptr == nullptr) return;
  ecgrid::check::recordDeallocation();
  std::free(ptr);
}

void operator delete[](void* ptr, std::align_val_t align) noexcept {
  ::operator delete(ptr, align);
}

void operator delete(void* ptr, std::size_t, std::align_val_t align) noexcept {
  ::operator delete(ptr, align);
}

void operator delete[](void* ptr, std::size_t,
                       std::align_val_t align) noexcept {
  ::operator delete(ptr, align);
}

#endif  // ECGRID_ALLOC_AUDIT
