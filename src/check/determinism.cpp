#include "check/determinism.hpp"

#include "net/network.hpp"
#include "net/node.hpp"
#include "protocols/common/grid_protocol_base.hpp"
#include "protocols/gaf/gaf_protocol.hpp"

namespace ecgrid::check {

namespace {

void mixCoord(Fnv1a& h, const geo::GridCoord& c) {
  h.mixI64(c.x);
  h.mixI64(c.y);
}

void mixRoutingTable(Fnv1a& h, const protocols::RoutingTable& table) {
  h.mixU64(table.size());
  for (const auto& [destination, entry] : table.entries()) {
    h.mixI64(destination);
    mixCoord(h, entry.nextGrid);
    mixCoord(h, entry.destGrid);
    h.mixI64(entry.nextHop);
    h.mixU64(entry.destSeq);
    h.mixDouble(entry.expiry);
    h.mixI64(entry.hopCount);
  }
}

void mixRoutingStats(Fnv1a& h, const protocols::RoutingStats& s) {
  h.mixU64(s.dataOriginated);
  h.mixU64(s.dataForwarded);
  h.mixU64(s.dataDeliveredLocal);
  h.mixU64(s.dataDropped);
  h.mixU64(s.rreqsSent);
  h.mixU64(s.rrepsSent);
  h.mixU64(s.rerrsSent);
  h.mixU64(s.discoveriesStarted);
  h.mixU64(s.discoveriesFailed);
}

void mixProtocol(Fnv1a& h, net::RoutingProtocol& protocol) {
  h.mixString(protocol.name());
  if (auto* base = dynamic_cast<protocols::GridProtocolBase*>(&protocol)) {
    h.mixI64(static_cast<int>(base->role()));
    h.mixBool(base->servedGrid().has_value());
    if (base->servedGrid()) mixCoord(h, *base->servedGrid());
    h.mixBool(base->currentGateway().has_value());
    if (base->currentGateway()) h.mixI64(*base->currentGateway());
    mixRoutingStats(h, base->routingStats());
    mixRoutingTable(h, base->routingEngine().routes());
    mixRoutingTable(h, base->routingEngine().reverseRoutes());
  } else if (auto* gaf = dynamic_cast<protocols::GafProtocol*>(&protocol)) {
    h.mixI64(static_cast<int>(gaf->state()));
    mixRoutingStats(h, gaf->routingStats());
  }
}

}  // namespace

std::uint64_t stateDigest(net::Network& network) {
  Fnv1a h;
  const sim::Time now = network.simulator().now();
  h.mixDouble(now);

  h.mixU64(network.nodes().size());
  for (auto& nodePtr : network.nodes()) {
    net::Node& node = *nodePtr;
    h.mixI64(node.id());
    h.mixBool(node.alive());
    h.mixBool(node.crashed());
    h.mixI64(static_cast<int>(node.radio().state()));

    // Believed position and cell — what the protocol acts on. True
    // position is mobility(now) and thus covered transitively.
    const geo::Vec2 pos = node.position();
    h.mixDouble(pos.x);
    h.mixDouble(pos.y);
    mixCoord(h, node.cell());

    // A crashed host's battery is frozen at the crash instant, so hash
    // the freeze marker instead. Live batteries are peeked, never
    // advanced: a committed read would chunk the drain integral at
    // digest-sample times, and under tie-break perturbation the n-th
    // event lands at a different instant, leaving ulp-level residue in
    // the accumulator that masquerades as real divergence.
    if (node.crashed()) {
      h.mixDouble(node.crashedAt());
    } else {
      h.mixDouble(node.batteryRef().peekRemainingJ(now));
    }

    h.mixU64(node.mac().framesSent());
    h.mixU64(node.mac().framesDropped());
    h.mixU64(node.mac().retransmissions());
    h.mixU64(node.mac().acksSent());
    h.mixU64(node.mac().acksSkipped());
    h.mixU64(node.mac().queueDepth());

    mixProtocol(h, node.protocol());
  }

  h.mixU64(network.channel().framesTransmitted());
  h.mixU64(network.channel().deliveriesCorrupted());
  h.mixU64(network.paging().pagesSent());
  h.mixU64(network.paging().pagesLost());
  return h.value();
}

}  // namespace ecgrid::check
