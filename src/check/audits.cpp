#include "check/audits.hpp"

#include <sstream>

namespace ecgrid::check {

namespace {

/// With a positive conflict range, a multi-claim only counts as a contest
/// when some claimant pair is physically close enough to exchange the
/// HELLOs that would settle it; range 0 = every multi-claim contests.
bool resolvableContest(const std::vector<GatewaySighting>& claimants,
                       double rangeMeters) {
  if (rangeMeters <= 0.0) return true;
  const double rangeSq = rangeMeters * rangeMeters;
  for (std::size_t i = 0; i < claimants.size(); ++i) {
    for (std::size_t j = i + 1; j < claimants.size(); ++j) {
      if (claimants[i].position.distanceSquaredTo(claimants[j].position) <=
          rangeSq) {
        return true;
      }
    }
  }
  return false;
}

}  // namespace

void GatewayUniquenessAudit::observe(
    const std::vector<GatewaySighting>& gateways, AuditContext& context) {
  std::map<geo::GridCoord, std::vector<GatewaySighting>> byGrid;
  for (const GatewaySighting& sighting : gateways) {
    byGrid[sighting.grid].push_back(sighting);
  }

  // Contested grids: start/extend their conflict clocks; report the ones
  // whose contest outlived the grace window.
  std::map<geo::GridCoord, sim::Time> stillContested;
  for (const auto& [grid, claimants] : byGrid) {
    if (claimants.size() <= 1) continue;
    if (!resolvableContest(claimants, conflictRangeMeters_)) continue;
    auto it = conflictSince_.find(grid);
    sim::Time since = it != conflictSince_.end() ? it->second : context.now();
    stillContested[grid] = since;
    if (context.now() - since > conflictGrace_) {
      std::ostringstream os;
      os << "grid " << grid << " has " << claimants.size() << " gateways (";
      for (std::size_t i = 0; i < claimants.size(); ++i) {
        os << (i != 0 ? ", " : "") << claimants[i].id;
      }
      os << ") unresolved for " << context.now() - since << " s";
      context.report(os.str());
    }
  }
  conflictSince_ = std::move(stillContested);
}

void SleepTransmitAudit::observe(const std::vector<SleepTxSighting>& hosts,
                                 AuditContext& context) {
  std::map<net::NodeId, sim::Time> stillInconsistent;
  for (const SleepTxSighting& host : hosts) {
    if (!host.protocolSleeping) continue;
    const bool radioConsistent = host.radioState == phy::RadioState::kSleep ||
                                 host.radioState == phy::RadioState::kOff ||
                                 host.sleepPending;
    if (radioConsistent) continue;
    auto it = inconsistentSince_.find(host.id);
    sim::Time since = it != inconsistentSince_.end() ? it->second
                                                     : context.now();
    stillInconsistent[host.id] = since;
    if (context.now() - since > settleGrace_) {
      std::ostringstream os;
      os << "host " << host.id << " has been protocol-sleeping for "
         << context.now() - since << " s while its radio is "
         << phy::toString(host.radioState) << " with no sleep pending";
      context.report(os.str());
    }
  }
  inconsistentSince_ = std::move(stillInconsistent);
}

void BatteryMonotonicityAudit::observe(net::NodeId id, double remainingJ,
                                       AuditContext& context) {
  constexpr double kEpsilonJ = 1e-9;
  auto it = lastRemaining_.find(id);
  if (it != lastRemaining_.end() && remainingJ > it->second + kEpsilonJ) {
    std::ostringstream os;
    os << "host " << id << " battery rose from " << it->second << " J to "
       << remainingJ << " J";
    context.report(os.str());
  }
  lastRemaining_[id] = remainingJ;
}

void RouteLivenessAudit::observe(const std::vector<RouteSighting>& routes,
                                 AuditContext& context) {
  for (const RouteSighting& route : routes) {
    if (route.expired) continue;
    if (net::isBroadcast(route.nextHop)) continue;
    if (!route.nextHopExists) {
      std::ostringstream os;
      os << "router " << route.owner << " holds a live route to "
         << route.destination << " via nonexistent host " << route.nextHop;
      context.report(os.str());
      continue;
    }
    if (route.nextHopAlive) continue;
    const sim::Time deadFor = context.now() - route.nextHopDeadSince;
    if (deadFor > deadGrace_) {
      std::ostringstream os;
      os << "router " << route.owner << " holds a live route to "
         << route.destination << " via host " << route.nextHop
         << " which died " << deadFor << " s ago";
      context.report(os.str());
    }
  }
}

void EventTimeMonotonicityAudit::observe(sim::Time now, sim::Time nextEventTime,
                                         AuditContext& context) {
  if (seen_ && now < lastNow_) {
    std::ostringstream os;
    os << "simulation clock regressed from " << lastNow_ << " to " << now;
    context.report(os.str());
  }
  if (nextEventTime < now) {
    std::ostringstream os;
    os << "next pending event at " << nextEventTime
       << " is before the clock at " << now;
    context.report(os.str());
  }
  seen_ = true;
  lastNow_ = now;
}

}  // namespace ecgrid::check
