#include "check/network_audits.hpp"

#include <memory>
#include <string>
#include <vector>

#include "check/audits.hpp"
#include "protocols/common/grid_protocol_base.hpp"
#include "protocols/gaf/gaf_protocol.hpp"

namespace ecgrid::check {

namespace {

bool protocolSleeping(net::Node& node) {
  if (const auto* grid =
          dynamic_cast<const protocols::GridProtocolBase*>(&node.protocol())) {
    return grid->role() == protocols::GridProtocolBase::Role::kSleeping;
  }
  if (const auto* gaf =
          dynamic_cast<const protocols::GafProtocol*>(&node.protocol())) {
    return gaf->state() == protocols::GafProtocol::State::kSleep;
  }
  return false;
}

/// Date a down host: injected crashes stamp Node::crashedAt(), battery
/// deaths stamp the battery. A down host with neither (it cannot happen
/// today, but the audit should not crash if a future death path forgets)
/// is dated at first sight.
sim::Time deadSince(net::Node& node, sim::Time now) {
  if (node.crashed()) return node.crashedAt();
  sim::Time death = node.batteryRef().deathTime();
  return death == sim::kTimeNever ? now : death;
}

}  // namespace

void installStandardAudits(InvariantAuditor& auditor, net::Network& network,
                           const StandardAuditOptions& options) {
  auto gatewayAudit = std::make_shared<GatewayUniquenessAudit>(
      options.gatewayConflictGrace, options.gatewayConflictRangeMeters);
  auditor.add("gateway-uniqueness", [&network, gatewayAudit](
                                        AuditContext& context) {
    std::vector<GatewaySighting> sightings;
    for (auto& node : network.nodes()) {
      if (!node->alive()) continue;  // crashed/dead hosts serve nothing
      auto* grid =
          dynamic_cast<protocols::GridProtocolBase*>(&node->protocol());
      if (grid == nullptr || !grid->servedGrid().has_value()) continue;
      sightings.push_back(GatewaySighting{*grid->servedGrid(), node->id(),
                                          node->truePosition()});
    }
    gatewayAudit->observe(sightings, context);
  });

  auto sleepAudit =
      std::make_shared<SleepTransmitAudit>(options.sleepSettleGrace);
  auditor.add("no-tx-while-sleeping", [&network,
                                       sleepAudit](AuditContext& context) {
    std::vector<SleepTxSighting> sightings;
    for (auto& node : network.nodes()) {
      SleepTxSighting sighting;
      sighting.id = node->id();
      sighting.protocolSleeping = protocolSleeping(*node);
      sighting.radioState = node->radio().state();
      sighting.sleepPending = node->radio().sleepPending();
      sightings.push_back(sighting);
    }
    sleepAudit->observe(sightings, context);
  });

  auto batteryAudit = std::make_shared<BatteryMonotonicityAudit>();
  auditor.add("battery-monotonicity", [&network,
                                       batteryAudit](AuditContext& context) {
    for (auto& node : network.nodes()) {
      batteryAudit->observe(node->id(),
                            node->batteryRef().remainingJ(context.now()),
                            context);
    }
  });

  auto routeAudit =
      std::make_shared<RouteLivenessAudit>(options.deadNextHopGrace);
  auditor.add("route-next-hop-liveness", [&network,
                                          routeAudit](AuditContext& context) {
    std::vector<RouteSighting> sightings;
    for (auto& node : network.nodes()) {
      auto* grid =
          dynamic_cast<protocols::GridProtocolBase*>(&node->protocol());
      if (grid == nullptr || !node->alive()) continue;
      for (const auto& [destination, entry] :
           grid->routingEngine().routes().entries()) {
        RouteSighting sighting;
        sighting.owner = node->id();
        sighting.destination = destination;
        sighting.nextHop = entry.nextHop;
        sighting.expired = entry.expiry < context.now();
        net::Node* hop = network.findNode(entry.nextHop);
        sighting.nextHopExists =
            hop != nullptr || net::isBroadcast(entry.nextHop);
        sighting.nextHopAlive = hop != nullptr && hop->alive();
        if (hop != nullptr && !hop->alive()) {
          sighting.nextHopDeadSince = deadSince(*hop, context.now());
        }
        sightings.push_back(sighting);
      }
    }
    routeAudit->observe(sightings, context);
  });

  auto timeAudit = std::make_shared<EventTimeMonotonicityAudit>();
  auditor.add("event-time-monotonicity",
              [&network, timeAudit](AuditContext& context) {
                sim::Simulator& sim = network.simulator();
                timeAudit->observe(sim.now(), sim.nextEventTime(), context);
              });

  // Channel bookkeeping: every alive host holds exactly one live channel
  // attachment — battery deaths detach in onDeath, injected crashes in
  // Node::crash (and restarts re-attach) — so a drifting count means a
  // leaked tombstone slot, a double detach, or a crash path that forgot
  // to release (or a restart that forgot to re-take) its slot.
  auditor.add("channel-attachment-count", [&network](AuditContext& context) {
    std::size_t live = network.channel().liveAttachmentCount();
    std::size_t alive = network.aliveCount();
    std::size_t crashed = 0;
    for (auto& node : network.nodes()) {
      if (node->crashed()) ++crashed;
    }
    if (live != alive) {
      context.report("channel has " + std::to_string(live) +
                     " live attachments but " + std::to_string(alive) +
                     " hosts are alive (" + std::to_string(crashed) +
                     " crashed)");
    }
  });
}

}  // namespace ecgrid::check
