// alloc_audit — runtime verification gate for hot-path memory discipline.
//
// The lint side of PR 9 (tools/ecgrid_lint: hot-path-allocation,
// hot-path-container-growth, layout-budget) proves by inspection that
// annotated regions do not allocate; this gate proves it by execution.
// Built with -DECGRID_ALLOC_AUDIT=ON (the `alloc-audit` preset), this TU
// replaces the global operator new/delete with counting versions that
// attribute every allocation to the current scenario phase
// (setup → warmup → steady, advanced by the harness) and flag it as
// *hot* when it fires inside an open ECGRID_HOT_SCOPE()
// (util/hot_path.hpp) — i.e. inside the event engines' push/pop/schedule
// machinery, the channel fan-out, or the radio reception path.
//
// The checked property is: after warmup, paper-baseline GRID/ECGRID/GAF
// scenarios execute with **zero hot allocations** — every event slot,
// heap entry, reception record, and scratch buffer is recycled, so
// city-scale runs cannot death-spiral on malloc. Whole-process zero is
// deliberately NOT the contract: protocol logic legitimately allocates
// (packet headers are shared_ptr-shared across broadcast fan-out, route
// tables grow on discovery); the discipline boundary is the annotated
// hot region, the same boundary the lint enforces.
//
// Without ECGRID_ALLOC_AUDIT everything here compiles to cheap no-ops
// (the counters exist but nothing increments them), so the harness can
// mark phases unconditionally.
//
// Counters are thread-local: parallel scenario workers audit their own
// runs without synchronisation. Read the report from the thread that ran
// the scenario (runScenario already does).
#pragma once

#include <cstdint>

namespace ecgrid::check {

/// Scenario phases for allocation attribution. The harness advances the
/// calling thread's phase; operator new reads it.
enum class AllocPhase : std::uint8_t { kSetup = 0, kWarmup = 1, kSteady = 2 };

struct AllocAuditCounts {
  std::uint64_t allocations = 0;    ///< operator new calls in the phase
  std::uint64_t deallocations = 0;  ///< operator delete calls in the phase
  std::uint64_t bytes = 0;          ///< sum of requested allocation sizes
  /// Allocations that fired while a hot scope was open — the gated
  /// quantity (must be zero in kSteady).
  std::uint64_t hotAllocations = 0;
};

/// True when the binary was built with ECGRID_ALLOC_AUDIT (i.e. the
/// counting operator new is live). Tests skip the gate otherwise.
bool allocAuditCompiled() noexcept;

/// Zero all phase counters and return the phase to kSetup. Call at
/// scenario entry so back-to-back runs on one thread (tests, benches,
/// campaign workers) never leak counts across scenarios.
void allocAuditReset() noexcept;

void allocAuditSetPhase(AllocPhase phase) noexcept;
AllocPhase allocAuditPhase() noexcept;

/// Counters accumulated for `phase` on the calling thread since the last
/// reset. All-zero when the audit is not compiled in.
AllocAuditCounts allocAuditCounts(AllocPhase phase) noexcept;

/// RAII: allocations inside the scope are still counted per phase but
/// not attributed as hot, even under an open hot scope. For the rare
/// justified allocation on an annotated path — slab high-water growth
/// beyond the constructor reserve, never steady-state churn. Pair every
/// use with a comment saying why, exactly like a lint allow().
class AllocExemptScope {
 public:
  AllocExemptScope() noexcept;
  ~AllocExemptScope();
  AllocExemptScope(const AllocExemptScope&) = delete;
  AllocExemptScope& operator=(const AllocExemptScope&) = delete;
};

}  // namespace ecgrid::check
