// The concrete invariant audits shipped with the simulator.
//
// Each audit is a small state machine fed *observations* — plain structs
// snapshotted from the live network — and reports violations through an
// AuditContext. Keeping the audit logic pure over observation values (no
// direct Network dependency) lets the injection tests fabricate violating
// states directly, proving each audit fires, while network_audits.hpp
// binds the same classes to a real net::Network for production runs.
//
// Several of the paper's invariants are *eventual*: a lossy MANET can
// transiently hold two gateways for one grid (split-brain elections under
// collisions) or a route whose next hop just died (RERR still in flight).
// Those audits therefore carry a grace window and only report conflicts
// that persist beyond it — persistent breakage is a protocol bug; a
// transient that the protocol itself resolves is not.
#pragma once

#include <map>
#include <vector>

#include "geo/grid.hpp"
#include "geo/vec2.hpp"
#include "net/packet.hpp"
#include "phy/radio.hpp"
#include "check/invariant_auditor.hpp"
#include "sim/time.hpp"

namespace ecgrid::check {

// --------------------------------------------------------------------------
// 1. Gateway uniqueness: at most one gateway serving each grid (paper §3.1).
//    A conflict must resolve within `conflictGrace` seconds (the HELLO
//    exchange that makes the loser yield) or it is reported.
//
//    A host serves the grid it *believes* it occupies, so under GPS error
//    two physically distant hosts can claim one grid while unable to hear
//    each other — nothing in the protocol can resolve that. With a
//    positive `conflictRangeMeters` the audit therefore only counts a
//    contest whose claimants include a pair within that physical range
//    (they can exchange the HELLOs that settle it); 0 keeps the strict
//    fault-free reading where every multi-claim is a contest.

struct GatewaySighting {
  geo::GridCoord grid;  ///< grid the host currently serves as gateway
  net::NodeId id = net::kBroadcastId;
  geo::Vec2 position;  ///< physical position (for conflictRangeMeters)
};

class GatewayUniquenessAudit {
 public:
  explicit GatewayUniquenessAudit(sim::Time conflictGrace = 5.0,
                                  double conflictRangeMeters = 0.0)
      : conflictGrace_(conflictGrace),
        conflictRangeMeters_(conflictRangeMeters) {}

  void observe(const std::vector<GatewaySighting>& gateways,
               AuditContext& context);

 private:
  sim::Time conflictGrace_;
  double conflictRangeMeters_;
  /// Grids currently contested and when the contest was first seen.
  std::map<geo::GridCoord, sim::Time> conflictSince_;
};

// --------------------------------------------------------------------------
// 2. No TX while sleeping: a host whose protocol believes it is in sleep
//    mode must have its radio asleep (or a deferred sleep pending behind
//    the final in-flight transmission) — never actively transmitting.
//    ECGRID deliberately holds Role::kSleeping for a few milliseconds
//    while the SLEEP notice clears the MAC before powering the radio
//    down, so only inconsistency that *persists* past `settleGrace` is a
//    violation.

struct SleepTxSighting {
  net::NodeId id = net::kBroadcastId;
  bool protocolSleeping = false;  ///< routing layer says "I am asleep"
  phy::RadioState radioState = phy::RadioState::kIdle;
  bool sleepPending = false;  ///< radio sleep deferred behind a TX
};

class SleepTransmitAudit {
 public:
  explicit SleepTransmitAudit(sim::Time settleGrace = 1.0)
      : settleGrace_(settleGrace) {}

  void observe(const std::vector<SleepTxSighting>& hosts,
               AuditContext& context);

 private:
  sim::Time settleGrace_;
  /// Hosts currently inconsistent and when the inconsistency started.
  std::map<net::NodeId, sim::Time> inconsistentSince_;
};

// --------------------------------------------------------------------------
// 3. Battery monotonicity: remaining energy never increases (paper §2 —
//    hosts only drain). Tolerates a tiny epsilon for float noise.

class BatteryMonotonicityAudit {
 public:
  void observe(net::NodeId id, double remainingJ, AuditContext& context);

 private:
  std::map<net::NodeId, double> lastRemaining_;
};

// --------------------------------------------------------------------------
// 4. Routing-table next-hop liveness: an unexpired route entry must point
//    at a host that exists, and that has not been dead for longer than
//    `deadGrace` (long enough for RERR propagation / route repair; an
//    entry still live past that was refreshed post-mortem — a bug).
//    "Dead" covers both battery depletion and injected crashes; the
//    network binding dates crashed hosts from Node::crashedAt().

struct RouteSighting {
  net::NodeId owner = net::kBroadcastId;        ///< router holding the entry
  net::NodeId destination = net::kBroadcastId;  ///< entry key
  net::NodeId nextHop = net::kBroadcastId;      ///< entry's concrete hop
  bool expired = false;
  bool nextHopExists = true;
  bool nextHopAlive = true;
  sim::Time nextHopDeadSince = sim::kTimeNever;
};

class RouteLivenessAudit {
 public:
  explicit RouteLivenessAudit(sim::Time deadGrace = 15.0)
      : deadGrace_(deadGrace) {}

  void observe(const std::vector<RouteSighting>& routes,
               AuditContext& context);

 private:
  sim::Time deadGrace_;
};

// --------------------------------------------------------------------------
// 5. Event-queue time monotonicity: the simulation clock never regresses
//    between audit runs and the next pending event is never in the past.

class EventTimeMonotonicityAudit {
 public:
  void observe(sim::Time now, sim::Time nextEventTime, AuditContext& context);

 private:
  bool seen_ = false;
  sim::Time lastNow_ = sim::kTimeZero;
};

}  // namespace ecgrid::check
