#include "check/invariant_auditor.hpp"

#include <sstream>
#include <stdexcept>

#include "util/error.hpp"

namespace ecgrid::check {

void AuditContext::report(const std::string& detail) {
  owner_.fileViolation(detail, now_);
}

void InvariantAuditor::add(std::string name, AuditFn fn) {
  ECGRID_REQUIRE(!name.empty(), "audit needs a name");
  ECGRID_REQUIRE(fn != nullptr, "audit needs a function");
  audits_.push_back(NamedAudit{std::move(name), std::move(fn)});
}

void InvariantAuditor::run(sim::Time now) {
  ++runs_;
  for (NamedAudit& audit : audits_) {
    running_ = &audit.name;
    AuditContext context(*this, now);
    audit.fn(context);
  }
  running_ = nullptr;
}

void InvariantAuditor::fileViolation(const std::string& detail,
                                     sim::Time when) {
  Violation violation;
  violation.audit = running_ != nullptr ? *running_ : "<unregistered>";
  violation.detail = detail;
  violation.when = when;
  violations_.push_back(violation);
  if (mode_ == FailMode::kThrow) {
    std::ostringstream os;
    os << "invariant audit '" << violation.audit << "' failed at t=" << when
       << ": " << detail;
    running_ = nullptr;
    throw std::logic_error(os.str());
  }
}

}  // namespace ecgrid::check
