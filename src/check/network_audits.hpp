// Binds the standard audits (audits.hpp) to a live net::Network.
//
// installStandardAudits() registers the five shipped invariant audits on
// an InvariantAuditor, each one snapshotting the network into observation
// structs on every run. The usual wiring (done by the scenario harness
// when ScenarioConfig::auditInvariants is set):
//
//   check::InvariantAuditor auditor;                 // throws on violation
//   check::installStandardAudits(auditor, network);
//   simulator.setPeriodicHook(
//       auditPeriodEvents, [&] { auditor.run(simulator.now()); });
//
// The auditor must not outlive the network.
#pragma once

#include "check/invariant_auditor.hpp"
#include "net/network.hpp"

namespace ecgrid::check {

struct StandardAuditOptions {
  /// Seconds two gateways may contest one grid before it is a violation
  /// (split-brain elections legitimately occur under HELLO collisions and
  /// resolve via the gflag exchange; persistence is the bug).
  sim::Time gatewayConflictGrace = 5.0;
  /// Seconds a live route entry may keep pointing at a dead next hop
  /// before it is a violation (covers RERR propagation and route repair).
  sim::Time deadNextHopGrace = 15.0;
  /// Seconds a host may claim sleep while its radio is still up (ECGRID's
  /// SLEEP notice drains through the MAC before the radio powers down).
  sim::Time sleepSettleGrace = 1.0;
  /// Gateway-uniqueness under GPS error: hosts claim the grid they
  /// *believe* they occupy, so two physically distant hosts can contest a
  /// grid without any way to hear each other and resolve it. With a
  /// positive range (the harness passes the radio range when a GPS fault
  /// is armed) only contests with a claimant pair inside that physical
  /// distance are violations; 0 = strict fault-free reading.
  double gatewayConflictRangeMeters = 0.0;
};

/// Register the five standard audits — gateway uniqueness, no-TX-while-
/// sleeping, battery monotonicity, route next-hop liveness, event-time
/// monotonicity — against `network` and its simulator.
void installStandardAudits(InvariantAuditor& auditor, net::Network& network,
                           const StandardAuditOptions& options = {});

}  // namespace ecgrid::check
