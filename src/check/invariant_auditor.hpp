// Runtime invariant auditing (the "correctness tooling" layer).
//
// The paper states invariants the protocol machinery is supposed to keep —
// one awake gateway per occupied grid, sleeping hosts never transmit,
// batteries only drain, routing tables point at live successors — but the
// simulator historically only checked them ad hoc in tests. An
// InvariantAuditor holds a set of named audit functions; the Simulator's
// periodic hook (see Simulator::setPeriodicHook) invokes run() every N
// events so the whole world state is cross-checked continuously while
// scenarios execute, not just at the end.
//
// Audits report through an AuditContext. In FailMode::kThrow (the default,
// used by the scenario harness) the first violation raises
// std::logic_error so the run fails loudly at the moment the invariant
// breaks; FailMode::kRecord collects violations for inspection, which the
// injection tests use to prove each audit actually fires.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "sim/time.hpp"
#include "util/ownership.hpp"

namespace ecgrid::check {

struct Violation {
  std::string audit;   ///< name the audit was registered under
  std::string detail;  ///< human-readable description of the breakage
  sim::Time when = sim::kTimeZero;
};

enum class FailMode : std::uint8_t {
  kThrow,   ///< throw std::logic_error on the first violation
  kRecord,  ///< collect violations; caller inspects violations()
};

class InvariantAuditor;

/// Handed to every audit function while it runs. report() files a
/// violation against the audit currently executing.
class AuditContext {
 public:
  sim::Time now() const { return now_; }
  void report(const std::string& detail);

 private:
  friend class InvariantAuditor;
  AuditContext(InvariantAuditor& owner, sim::Time now)
      : owner_(owner), now_(now) {}

  InvariantAuditor& owner_;
  sim::Time now_;
};

class ECGRID_DOMAIN_PER_SCENARIO InvariantAuditor {
 public:
  using AuditFn = std::function<void(AuditContext&)>;

  explicit InvariantAuditor(FailMode mode = FailMode::kThrow) : mode_(mode) {}

  InvariantAuditor(const InvariantAuditor&) = delete;
  InvariantAuditor& operator=(const InvariantAuditor&) = delete;

  /// Register `fn` under `name`. Audits run in registration order.
  void add(std::string name, AuditFn fn);

  /// Run every registered audit once against the current world state.
  void run(sim::Time now);

  FailMode mode() const { return mode_; }
  std::uint64_t runs() const { return runs_; }
  std::size_t auditCount() const { return audits_.size(); }
  const std::vector<Violation>& violations() const { return violations_; }
  void clearViolations() { violations_.clear(); }

 private:
  friend class AuditContext;
  void fileViolation(const std::string& detail, sim::Time when);

  struct NamedAudit {
    std::string name;
    AuditFn fn;
  };

  FailMode mode_;
  std::vector<NamedAudit> audits_;
  std::vector<Violation> violations_;
  std::uint64_t runs_ = 0;
  const std::string* running_ = nullptr;  ///< name of the audit executing
};

}  // namespace ecgrid::check
