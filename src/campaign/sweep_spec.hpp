// Declarative sweep specification for the campaign runner.
//
// A campaign spec is a JSON document describing a grid of scenarios the
// way an experiment service would accept it: a `base` config, a list of
// `axes` (each a config key and the values to sweep it over), and a list
// of `seeds`. Expansion is the cartesian product axes × seeds — a few
// axes with a handful of values each multiply into the thousands of runs
// the offered-load studies need:
//
//   {
//     "name": "offered-load",
//     "base": { "duration": 200, "hostCount": 100,
//               "workload.classes": [ { "name": "interactive" } ] },
//     "axes": [
//       { "key": "protocol", "values": ["GRID", "ECGRID"] },
//       { "key": "workload.class.sessionsPerSecond",
//         "values": [0.5, 1.0, 2.0] }
//     ],
//     "seeds": [1, 2, 3]
//   }
//
// Config keys are the ScenarioConfig field names (see resolveConfig for
// the accepted set); "workload.classes" takes an array of workload-class
// objects and "workload.class.<field>" rewrites that field on every
// class, which is how an axis sweeps a per-class knob. Unknown keys
// throw std::invalid_argument naming the key — a spec typo must not
// silently run the wrong experiment.
//
// Every expanded run carries a *fingerprint*: FNV-1a over the canonical
// JSON dump of its merged overrides plus the seed. The fingerprint is
// the campaign's resume key (campaign_runner.hpp) — two spec files that
// resolve to the same merged overrides produce the same fingerprints,
// regardless of key order or whitespace in the source files.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "harness/scenario.hpp"
#include "util/json.hpp"

namespace ecgrid::campaign {

struct SweepAxis {
  std::string key;
  std::vector<util::JsonValue> values;
};

struct CampaignSpec {
  std::string name;
  util::JsonObject base;
  std::vector<SweepAxis> axes;
  std::vector<std::uint64_t> seeds;

  /// axes-product × seeds — the size of the expansion.
  [[nodiscard]] std::size_t runCount() const;
};

/// Parse and structurally validate a spec document. Throws
/// std::invalid_argument (with a line:column locus for syntax errors, or
/// a field name for shape errors). Axis values must be non-empty; at
/// least one seed is required; axis keys must not repeat or collide.
[[nodiscard]] CampaignSpec parseCampaignSpec(const std::string& jsonText);

/// One expanded (config, seed) pair of a campaign.
struct RunSpec {
  std::string fingerprint;      ///< resume key: hash(overrides, seed)
  util::JsonObject overrides;   ///< base ∪ axis assignments (axis wins)
  std::uint64_t seed = 0;
};

/// Deterministic expansion in odometer order (last axis fastest, then
/// seeds). The same spec always expands to the same sequence.
[[nodiscard]] std::vector<RunSpec> expandCampaign(const CampaignSpec& spec);

/// FNV-1a-64 hex of the canonical overrides dump + the seed.
[[nodiscard]] std::string runFingerprint(const util::JsonObject& overrides,
                                         std::uint64_t seed);

/// Apply `overrides` to a default ScenarioConfig and set the seed.
/// Throws std::invalid_argument for unknown keys or mistyped values.
[[nodiscard]] harness::ScenarioConfig resolveConfig(
    const util::JsonObject& overrides, std::uint64_t seed);

}  // namespace ecgrid::campaign
