// Resumable campaign execution: sweep spec in, JSONL results out.
//
// runCampaign() expands a CampaignSpec (sweep_spec.hpp), subtracts every
// run whose fingerprint already appears in the results file(s), and
// executes the remainder in batches through the failure-collecting
// runScenariosParallel — one poisoned config produces a failure record
// and cannot perturb its neighbours. Each completed scenario appends ONE
// line to the results file and flushes before the next batch starts, so
// a kill at any instant loses at most the in-flight batch; restarting
// with the same spec and results path re-reads the file, skips the
// completed fingerprints, and finishes exactly the remaining runs
// (tests/campaign_test.cpp proves the interrupted + resumed file equals
// the uninterrupted one, order-normalized).
//
// Records are pure functions of (overrides, seed): no wall-clock or
// hostname fields, numbers via the canonical %.17g dump. That is what
// makes the resume-equality gate byte-exact rather than merely
// approximate.
//
// Multi-process campaigns stripe the expansion: worker w of N owns runs
// with index % N == w (index over the *post-resume* remainder is NOT
// used — striping is over the full expansion, so workers never race on a
// fingerprint). Each worker appends to its own file; the CLI
// (tools/ecgrid-campaign) merges worker files back into the main results
// file and passes every file to the resume scan.
#pragma once

#include <cstddef>
#include <functional>
#include <set>
#include <string>
#include <vector>

#include "campaign/sweep_spec.hpp"
#include "harness/scenario.hpp"

namespace ecgrid::campaign {

struct CampaignOptions {
  /// JSONL output, appended to (created if absent). Required.
  std::string resultsPath;
  /// Extra JSONL files consulted (read-only) by the resume scan — the
  /// main file of a multi-process run, or leftover worker files.
  std::vector<std::string> resumeFrom;
  /// In-process scenario threads per batch.
  unsigned jobs = 1;
  /// Stripe: this process owns expansion indices with
  /// index % workerCount == workerIndex.
  int workerIndex = 0;
  int workerCount = 1;
  /// Stop (cleanly, after flushing) once this many scenarios have been
  /// executed in this invocation; < 0 = no cap. The campaign smoke test
  /// uses this to simulate a mid-campaign kill.
  long maxRuns = -1;
  /// Optional progress sink (one human-readable line per batch).
  std::function<void(const std::string&)> progress;

  /// Live status heartbeat (PR 10): when non-empty, a JSON snapshot of
  /// this worker's progress — counts, in-flight fingerprints, wall-time
  /// percentiles of completed runs, ETA, stragglers flagged at
  /// `stragglerFactor`× the median wall time — is rewritten (atomically,
  /// via rename) before and after every batch and once more with
  /// done=true at exit. The status file is ephemeral and wall-clock-laden
  /// by design; nothing in it ever feeds the byte-reproducible results
  /// JSONL.
  std::string statusPath;
  /// A completed run is a straggler when its wall time reaches this
  /// multiple of the median completed wall time (<= 0 disables).
  double stragglerFactor = 4.0;
};

struct CampaignOutcome {
  std::size_t totalRuns = 0;   ///< full expansion size
  std::size_t stripeRuns = 0;  ///< owned by this worker stripe
  std::size_t skipped = 0;     ///< already present in the results file(s)
  std::size_t executed = 0;    ///< scenarios actually run this invocation
  std::size_t failed = 0;      ///< of executed, how many threw
};

/// Fingerprints of every parseable record in `paths` (missing files are
/// fine — a fresh campaign has no results yet). Malformed lines (e.g. a
/// torn final line after a kill) are skipped, not fatal: the run they
/// would have recorded simply executes again.
[[nodiscard]] std::set<std::string> completedFingerprints(
    const std::vector<std::string>& paths);

/// One JSONL record (no trailing newline). `result` may be null for a
/// failed run; `error` carries the exception text then.
[[nodiscard]] std::string recordToJson(const std::string& campaignName,
                                       const RunSpec& run,
                                       const harness::ScenarioResult* result,
                                       const std::string& error);

/// Execute the campaign per `options`. Throws std::invalid_argument on
/// bad options; scenario failures are recorded, never rethrown.
CampaignOutcome runCampaign(const CampaignSpec& spec,
                            const CampaignOptions& options);

}  // namespace ecgrid::campaign
