#include "campaign/sweep_spec.hpp"

#include <cmath>
#include <cstdio>

#include "util/error.hpp"

namespace ecgrid::campaign {

namespace {

/// Numbers in specs are counts, rates, and seeds; reject NaN/inf early so
/// fingerprints and configs stay well-defined.
double finiteNumber(const util::JsonValue& v, const std::string& key) {
  const double n = v.asNumber();
  ECGRID_REQUIRE(std::isfinite(n), "spec key '" + key + "' is not finite");
  return n;
}

int intNumber(const util::JsonValue& v, const std::string& key) {
  const double n = finiteNumber(v, key);
  ECGRID_REQUIRE(n == std::floor(n),
                 "spec key '" + key + "' must be an integer");
  return static_cast<int>(n);
}

std::uint64_t u64Number(const util::JsonValue& v, const std::string& key) {
  const double n = finiteNumber(v, key);
  ECGRID_REQUIRE(n >= 0.0 && n == std::floor(n),
                 "spec key '" + key + "' must be a non-negative integer");
  return static_cast<std::uint64_t>(n);
}

traffic::ArrivalKind arrivalsFromString(const std::string& s) {
  if (s == "poisson") return traffic::ArrivalKind::kPoisson;
  if (s == "pareto_on_off") return traffic::ArrivalKind::kParetoOnOff;
  throw std::invalid_argument(
      "unknown arrivals kind '" + s + "' (expected poisson | pareto_on_off)");
}

/// Shared between whole-class objects ("workload.classes") and the
/// per-field sweep form ("workload.class.<field>"). Returns false for a
/// field this setter does not know.
bool applyClassField(traffic::WorkloadClass& cls, const std::string& field,
                     const util::JsonValue& value, const std::string& key) {
  if (field == "name") {
    cls.name = value.asString();
  } else if (field == "arrivals") {
    cls.arrivals = arrivalsFromString(value.asString());
  } else if (field == "sessionsPerSecond") {
    cls.sessionsPerSecond = finiteNumber(value, key);
  } else if (field == "onMeanSeconds") {
    cls.onMeanSeconds = finiteNumber(value, key);
  } else if (field == "offMeanSeconds") {
    cls.offMeanSeconds = finiteNumber(value, key);
  } else if (field == "onOffShape") {
    cls.onOffShape = finiteNumber(value, key);
  } else if (field == "minFlowBytes") {
    cls.minFlowBytes = finiteNumber(value, key);
  } else if (field == "flowSizeShape") {
    cls.flowSizeShape = finiteNumber(value, key);
  } else if (field == "maxFlowBytes") {
    cls.maxFlowBytes = finiteNumber(value, key);
  } else if (field == "packetBytes") {
    cls.packetBytes = intNumber(value, key);
  } else if (field == "packetsPerSecond") {
    cls.packetsPerSecond = finiteNumber(value, key);
  } else if (field == "requestResponse") {
    cls.requestResponse = value.asBool();
  } else if (field == "responseBytes") {
    cls.responseBytes = finiteNumber(value, key);
  } else if (field == "sloSeconds") {
    cls.sloSeconds = finiteNumber(value, key);
  } else if (field == "abortAfterSeconds") {
    cls.abortAfterSeconds = finiteNumber(value, key);
  } else {
    return false;
  }
  return true;
}

traffic::WorkloadClass classFromJson(const util::JsonValue& value) {
  traffic::WorkloadClass cls;
  for (const auto& [field, fieldValue] : value.asObject()) {
    ECGRID_REQUIRE(applyClassField(cls, field, fieldValue,
                                   "workload.classes." + field),
                   "unknown workload class field '" + field + "'");
  }
  return cls;
}

/// Apply one non-class-array override. "workload.classes" is handled by
/// the caller first so "workload.class.<field>" (which sorts *before* it
/// in the std::map) always sees the final class list.
void applyKey(harness::ScenarioConfig& config, const std::string& key,
              const util::JsonValue& value) {
  // --- scenario scalars --------------------------------------------------
  if (key == "protocol") {
    const auto kind = harness::protocolFromString(value.asString());
    ECGRID_REQUIRE(kind.has_value(),
                   "unknown protocol '" + value.asString() + "'");
    config.protocol = *kind;
  } else if (key == "hostCount") {
    config.hostCount = intNumber(value, key);
  } else if (key == "fieldSize") {
    config.fieldSize = finiteNumber(value, key);
  } else if (key == "gridCellSide") {
    config.gridCellSide = finiteNumber(value, key);
  } else if (key == "radioRange") {
    config.radioRange = finiteNumber(value, key);
  } else if (key == "bitrateBps") {
    config.bitrateBps = finiteNumber(value, key);
  } else if (key == "batteryCapacityJ") {
    config.batteryCapacityJ = finiteNumber(value, key);
  } else if (key == "maxSpeed") {
    config.maxSpeed = finiteNumber(value, key);
  } else if (key == "pauseTime") {
    config.pauseTime = finiteNumber(value, key);
  } else if (key == "flowCount") {
    config.flowCount = intNumber(value, key);
  } else if (key == "packetsPerSecondPerFlow") {
    config.packetsPerSecondPerFlow = finiteNumber(value, key);
  } else if (key == "payloadBytes") {
    config.payloadBytes = intNumber(value, key);
  } else if (key == "trafficStart") {
    config.trafficStart = finiteNumber(value, key);
  } else if (key == "duration") {
    config.duration = finiteNumber(value, key);
  } else if (key == "sampleInterval") {
    config.sampleInterval = finiteNumber(value, key);
  } else if (key == "shards") {
    config.shards = intNumber(value, key);
  } else if (key == "auditInvariants") {
    config.auditInvariants = value.asBool();
  } else if (key == "gafModelOne") {
    config.gafModelOne = value.asBool();
  } else if (key == "gafEndpointCount") {
    config.gafEndpointCount = intNumber(value, key);
  } else if (key == "interferenceRangeFactor") {
    config.interferenceRangeFactor = finiteNumber(value, key);
  } else if (key == "channelSpatialIndex") {
    config.channelSpatialIndex = value.asBool();
  } else if (key == "useLocationOracle") {
    config.useLocationOracle = value.asBool();
  } else if (key == "digestEveryEvents") {
    config.digestEveryEvents = u64Number(value, key);
    // --- workload plan ---------------------------------------------------
  } else if (key == "workload.clientPopulation") {
    config.workload.clientPopulation = intNumber(value, key);
  } else if (key == "workload.sinkCount") {
    config.workload.sinkCount = intNumber(value, key);
  } else if (key == "workload.startTime") {
    config.workload.startTime = finiteNumber(value, key);
  } else if (key == "workload.stopTime") {
    config.workload.stopTime = finiteNumber(value, key);
  } else if (key.rfind("workload.class.", 0) == 0) {
    const std::string field = key.substr(std::string("workload.class.").size());
    if (config.workload.classes.empty()) {
      config.workload.classes.emplace_back();  // sweeping arms the default
    }
    for (traffic::WorkloadClass& cls : config.workload.classes) {
      ECGRID_REQUIRE(applyClassField(cls, field, value, key),
                     "unknown workload class field '" + field + "'");
    }
  } else {
    throw std::invalid_argument("unknown campaign config key '" + key + "'");
  }
}

}  // namespace

std::size_t CampaignSpec::runCount() const {
  std::size_t count = seeds.size();
  for (const SweepAxis& axis : axes) count *= axis.values.size();
  return count;
}

CampaignSpec parseCampaignSpec(const std::string& jsonText) {
  const util::JsonValue doc = util::parseJson(jsonText);
  const util::JsonObject& root = doc.asObject();
  CampaignSpec spec;
  for (const auto& [key, value] : root) {
    if (key == "name") {
      spec.name = value.asString();
    } else if (key == "base") {
      spec.base = value.asObject();
    } else if (key == "axes") {
      for (const util::JsonValue& axisValue : value.asArray()) {
        SweepAxis axis;
        const util::JsonValue* axisKey = axisValue.find("key");
        const util::JsonValue* axisValues = axisValue.find("values");
        ECGRID_REQUIRE(axisKey != nullptr && axisValues != nullptr,
                       "each axis needs 'key' and 'values'");
        axis.key = axisKey->asString();
        axis.values = axisValues->asArray();
        ECGRID_REQUIRE(!axis.values.empty(),
                       "axis '" + axis.key + "' has no values");
        for (const auto& [field, ignored] : axisValue.asObject()) {
          (void)ignored;
          ECGRID_REQUIRE(field == "key" || field == "values",
                         "unknown axis field '" + field + "'");
        }
        spec.axes.push_back(std::move(axis));
      }
    } else if (key == "seeds") {
      for (const util::JsonValue& seed : value.asArray()) {
        spec.seeds.push_back(u64Number(seed, "seeds"));
      }
    } else {
      throw std::invalid_argument("unknown campaign spec field '" + key +
                                  "'");
    }
  }
  ECGRID_REQUIRE(!spec.name.empty(), "campaign spec needs a 'name'");
  ECGRID_REQUIRE(!spec.seeds.empty(), "campaign spec needs at least one seed");
  for (std::size_t i = 0; i < spec.axes.size(); ++i) {
    for (std::size_t j = 0; j < i; ++j) {
      ECGRID_REQUIRE(spec.axes[j].key != spec.axes[i].key,
                     "axis key '" + spec.axes[i].key + "' repeats");
    }
  }
  return spec;
}

std::string runFingerprint(const util::JsonObject& overrides,
                           std::uint64_t seed) {
  const std::string canonical =
      util::JsonValue(overrides).dump() + "\n" + std::to_string(seed);
  // FNV-1a 64 — same construction as check::stateDigest.
  std::uint64_t hash = 1469598103934665603ULL;
  for (unsigned char c : canonical) {
    hash ^= c;
    hash *= 1099511628211ULL;
  }
  char buffer[17];
  std::snprintf(buffer, sizeof buffer, "%016llx",
                static_cast<unsigned long long>(hash));
  return buffer;
}

std::vector<RunSpec> expandCampaign(const CampaignSpec& spec) {
  std::vector<RunSpec> runs;
  runs.reserve(spec.runCount());
  std::vector<std::size_t> odometer(spec.axes.size(), 0);
  while (true) {
    util::JsonObject overrides = spec.base;
    for (std::size_t a = 0; a < spec.axes.size(); ++a) {
      overrides[spec.axes[a].key] = spec.axes[a].values[odometer[a]];
    }
    for (std::uint64_t seed : spec.seeds) {
      RunSpec run;
      run.overrides = overrides;
      run.seed = seed;
      run.fingerprint = runFingerprint(overrides, seed);
      runs.push_back(std::move(run));
    }
    // Odometer tick, last axis fastest.
    std::size_t a = spec.axes.size();
    while (a > 0) {
      --a;
      if (++odometer[a] < spec.axes[a].values.size()) break;
      odometer[a] = 0;
      if (a == 0) return runs;
    }
    if (spec.axes.empty()) return runs;
  }
}

harness::ScenarioConfig resolveConfig(const util::JsonObject& overrides,
                                      std::uint64_t seed) {
  harness::ScenarioConfig config;
  // Class list first: "workload.class.<field>" sorts before
  // "workload.classes" in the map, but must apply after it.
  if (auto it = overrides.find("workload.classes"); it != overrides.end()) {
    for (const util::JsonValue& cls : it->second.asArray()) {
      config.workload.classes.push_back(classFromJson(cls));
    }
  }
  for (const auto& [key, value] : overrides) {
    if (key == "workload.classes") continue;
    applyKey(config, key, value);
  }
  config.seed = seed;
  return config;
}

}  // namespace ecgrid::campaign
