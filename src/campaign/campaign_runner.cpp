#include "campaign/campaign_runner.hpp"

#include <algorithm>
#include <exception>
#include <fstream>

#include "harness/parallel_runner.hpp"
#include "util/error.hpp"
#include "util/json.hpp"

namespace ecgrid::campaign {

namespace {

util::JsonObject resultToJson(const harness::ScenarioResult& result) {
  util::JsonObject out;
  out["packetsSent"] = static_cast<double>(result.packetsSent);
  out["packetsReceived"] = static_cast<double>(result.packetsReceived);
  out["abortedFlows"] = static_cast<double>(result.abortedFlows);
  out["deliveryRate"] = result.deliveryRate;
  out["meanLatencySeconds"] = result.meanLatencySeconds;
  out["p50LatencySeconds"] = result.p50LatencySeconds;
  out["p95LatencySeconds"] = result.p95LatencySeconds;
  out["p99LatencySeconds"] = result.p99LatencySeconds;
  out["framesTransmitted"] = static_cast<double>(result.framesTransmitted);
  out["pagesSent"] = static_cast<double>(result.pagesSent);
  out["eventsExecuted"] = static_cast<double>(result.eventsExecuted);
  out["firstDeath"] = result.firstDeath;
  out["networkDown"] = result.networkDown;
  out["macFramesSent"] = static_cast<double>(result.macFramesSent);
  out["macFramesDropped"] = static_cast<double>(result.macFramesDropped);
  out["macRetransmissions"] =
      static_cast<double>(result.macRetransmissions);
  util::JsonObject metrics;
  for (const auto& [name, value] : result.metrics) metrics[name] = value;
  out["metrics"] = std::move(metrics);
  return out;
}

std::string describeException(const std::exception_ptr& error) {
  try {
    std::rethrow_exception(error);
  } catch (const std::exception& e) {
    return e.what();
  } catch (...) {
    return "unknown error";
  }
}

}  // namespace

std::set<std::string> completedFingerprints(
    const std::vector<std::string>& paths) {
  std::set<std::string> done;
  for (const std::string& path : paths) {
    std::ifstream in(path);
    if (!in) continue;  // fresh campaign: nothing recorded yet
    std::string line;
    while (std::getline(in, line)) {
      if (line.empty()) continue;
      try {
        const util::JsonValue record = util::parseJson(line);
        const util::JsonValue* fingerprint = record.find("fingerprint");
        if (fingerprint != nullptr) done.insert(fingerprint->asString());
      } catch (const std::invalid_argument&) {
        // Torn line (the process died mid-write): that run simply does
        // not count as completed and will execute again.
      }
    }
  }
  return done;
}

std::string recordToJson(const std::string& campaignName, const RunSpec& run,
                         const harness::ScenarioResult* result,
                         const std::string& error) {
  util::JsonObject record;
  record["campaign"] = campaignName;
  record["fingerprint"] = run.fingerprint;
  record["seed"] = static_cast<double>(run.seed);
  record["config"] = run.overrides;
  record["ok"] = result != nullptr;
  record["error"] = error;
  if (result != nullptr) record["result"] = resultToJson(*result);
  return util::JsonValue(std::move(record)).dump();
}

CampaignOutcome runCampaign(const CampaignSpec& spec,
                            const CampaignOptions& options) {
  ECGRID_REQUIRE(!options.resultsPath.empty(), "campaign needs a results path");
  ECGRID_REQUIRE(options.workerCount >= 1, "workerCount must be >= 1");
  ECGRID_REQUIRE(options.workerIndex >= 0 &&
                     options.workerIndex < options.workerCount,
                 "workerIndex out of range");

  const std::vector<RunSpec> runs = expandCampaign(spec);
  std::vector<std::string> resumePaths = options.resumeFrom;
  resumePaths.push_back(options.resultsPath);
  const std::set<std::string> done = completedFingerprints(resumePaths);

  CampaignOutcome outcome;
  outcome.totalRuns = runs.size();
  std::vector<const RunSpec*> pending;
  for (std::size_t i = 0; i < runs.size(); ++i) {
    // Stripe over the FULL expansion: worker ownership is independent of
    // what happens to be completed, so two workers never share a run.
    if (static_cast<int>(i % static_cast<std::size_t>(options.workerCount)) !=
        options.workerIndex) {
      continue;
    }
    ++outcome.stripeRuns;
    if (done.count(runs[i].fingerprint) > 0) {
      ++outcome.skipped;
      continue;
    }
    pending.push_back(&runs[i]);
  }

  std::ofstream out(options.resultsPath, std::ios::app);
  ECGRID_REQUIRE(static_cast<bool>(out), "cannot open campaign results file '" +
                                             options.resultsPath +
                                             "' for append");

  const std::size_t batchSize = std::max(1u, options.jobs);
  std::size_t cursor = 0;
  while (cursor < pending.size()) {
    if (options.maxRuns >= 0 &&
        outcome.executed >= static_cast<std::size_t>(options.maxRuns)) {
      break;
    }
    std::size_t batchEnd = std::min(pending.size(), cursor + batchSize);
    if (options.maxRuns >= 0) {
      const std::size_t budget =
          static_cast<std::size_t>(options.maxRuns) - outcome.executed;
      batchEnd = std::min(batchEnd, cursor + budget);
    }

    // Resolve the batch. A spec that names an unknown key fails at parse
    // time, but value-level errors (e.g. a negative rate the workload
    // plan rejects) surface here — record them, keep going.
    std::vector<harness::ScenarioConfig> configs;
    std::vector<const RunSpec*> batchRuns;
    for (std::size_t i = cursor; i < batchEnd; ++i) {
      const RunSpec& run = *pending[i];
      try {
        configs.push_back(resolveConfig(run.overrides, run.seed));
        batchRuns.push_back(&run);
      } catch (const std::exception& e) {
        out << recordToJson(spec.name, run, nullptr, e.what()) << '\n';
        ++outcome.executed;
        ++outcome.failed;
      }
    }

    std::vector<std::exception_ptr> failures;
    const std::vector<harness::ScenarioResult> results =
        harness::runScenariosParallel(configs, options.jobs, failures);
    for (std::size_t i = 0; i < batchRuns.size(); ++i) {
      ++outcome.executed;
      if (failures[i] != nullptr) {
        ++outcome.failed;
        out << recordToJson(spec.name, *batchRuns[i], nullptr,
                            describeException(failures[i]))
            << '\n';
      } else {
        out << recordToJson(spec.name, *batchRuns[i], &results[i], "")
            << '\n';
      }
    }
    out.flush();
    ECGRID_CHECK(static_cast<bool>(out),
                 "writing campaign results failed (disk full?)");

    if (options.progress) {
      options.progress("campaign " + spec.name + ": " +
                       std::to_string(outcome.skipped + outcome.executed) +
                       "/" + std::to_string(outcome.stripeRuns) +
                       " runs done (" + std::to_string(outcome.failed) +
                       " failed)");
    }
    cursor = batchEnd;
  }
  return outcome;
}

}  // namespace ecgrid::campaign
