#include "campaign/campaign_runner.hpp"

#include <algorithm>
#include <cstdio>
#include <exception>
#include <fstream>

#include "harness/parallel_runner.hpp"
#include "util/error.hpp"
#include "util/json.hpp"

namespace ecgrid::campaign {

namespace {

/// Completed-run wall-time ledger backing the status heartbeat. Wall
/// times come from ScenarioResult::runWallSeconds — the runner itself
/// never reads a clock, so the results JSONL stays wall-free.
struct WallLedger {
  std::vector<std::pair<std::string, double>> runs;  ///< (fingerprint, s)

  void add(const std::string& fingerprint, double seconds) {
    runs.emplace_back(fingerprint, seconds);
  }

  [[nodiscard]] std::vector<double> sortedSeconds() const {
    std::vector<double> seconds;
    seconds.reserve(runs.size());
    for (const auto& [fingerprint, s] : runs) seconds.push_back(s);
    std::sort(seconds.begin(), seconds.end());
    return seconds;
  }
};

double percentileOf(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

/// One status snapshot, written atomically (temp file + rename) so a
/// watcher polling the path never reads a torn JSON document.
void writeStatus(const CampaignOptions& options, const std::string& name,
                 const CampaignOutcome& outcome, const WallLedger& ledger,
                 const std::vector<std::string>& inFlight, bool done) {
  if (options.statusPath.empty()) return;
  const std::vector<double> sorted = ledger.sortedSeconds();
  // Lower median: with few completed runs this biases the baseline to
  // the fast side, so a single slow run still stands out as a straggler.
  const double median =
      sorted.empty() ? 0.0 : sorted[(sorted.size() - 1) / 2];
  double total = 0.0;
  for (double s : sorted) total += s;

  util::JsonObject status;
  status["campaign"] = name;
  status["worker_index"] = static_cast<double>(options.workerIndex);
  status["worker_count"] = static_cast<double>(options.workerCount);
  status["total_runs"] = static_cast<double>(outcome.totalRuns);
  status["stripe_runs"] = static_cast<double>(outcome.stripeRuns);
  status["skipped"] = static_cast<double>(outcome.skipped);
  status["executed"] = static_cast<double>(outcome.executed);
  status["failed"] = static_cast<double>(outcome.failed);
  const std::size_t accounted =
      std::min(outcome.stripeRuns, outcome.skipped + outcome.executed);
  const std::size_t remaining = outcome.stripeRuns - accounted;
  status["remaining"] = static_cast<double>(remaining);
  util::JsonArray inFlightJson;
  for (const std::string& fingerprint : inFlight) {
    inFlightJson.emplace_back(fingerprint);
  }
  status["in_flight"] = util::JsonValue(std::move(inFlightJson));

  util::JsonObject wall;
  wall["completed"] = static_cast<double>(sorted.size());
  wall["mean"] = sorted.empty()
                     ? 0.0
                     : total / static_cast<double>(sorted.size());
  wall["p50"] = percentileOf(sorted, 50.0);
  wall["p90"] = percentileOf(sorted, 90.0);
  wall["max"] = sorted.empty() ? 0.0 : sorted.back();
  status["wall_seconds"] = util::JsonValue(std::move(wall));
  // ETA from the median completed run, scaled by in-process parallelism.
  status["eta_seconds"] =
      median * static_cast<double>(remaining) /
      static_cast<double>(std::max(1u, options.jobs));

  util::JsonArray stragglers;
  if (options.stragglerFactor > 0.0 && median > 0.0) {
    for (const auto& [fingerprint, seconds] : ledger.runs) {
      if (seconds >= options.stragglerFactor * median) {
        util::JsonObject straggler;
        straggler["fingerprint"] = fingerprint;
        straggler["wall_seconds"] = seconds;
        straggler["ratio"] = seconds / median;
        stragglers.emplace_back(std::move(straggler));
      }
    }
  }
  status["stragglers"] = util::JsonValue(std::move(stragglers));
  status["done"] = done;

  const std::string tmpPath = options.statusPath + ".tmp";
  {
    std::ofstream out(tmpPath, std::ios::trunc);
    if (!out) return;  // status is best-effort; never fail the campaign
    out << util::JsonValue(std::move(status)).dump() << '\n';
  }
  std::rename(tmpPath.c_str(), options.statusPath.c_str());
}

/// Deterministic telemetry roll-up for one record. Every field is a pure
/// function of (overrides, seed) — peak depths, slab size, per-shard
/// balance, events per SIM second — never of wall time, preserving the
/// byte-exact resume-equality contract. Wall-side health (events per
/// wall second, ETA, stragglers) lives in the ephemeral status file.
util::JsonObject telemetryToJson(const harness::ScenarioResult& result,
                                 double simDuration) {
  util::JsonObject telemetry;
  telemetry["peakQueueDepth"] = static_cast<double>(result.peakQueueDepth);
  telemetry["slabSlots"] = static_cast<double>(result.slabSlotsTotal);
  telemetry["eventsPerSimSecond"] =
      simDuration > 0.0
          ? static_cast<double>(result.eventsExecuted) / simDuration
          : 0.0;
  telemetry["shardImbalance"] = result.shardImbalance;
  telemetry["windowStalls"] = static_cast<double>(result.shardWindowStalls);
  telemetry["crossShardEvents"] = static_cast<double>(result.crossShardEvents);
  return telemetry;
}

util::JsonObject resultToJson(const harness::ScenarioResult& result) {
  util::JsonObject out;
  out["packetsSent"] = static_cast<double>(result.packetsSent);
  out["packetsReceived"] = static_cast<double>(result.packetsReceived);
  out["abortedFlows"] = static_cast<double>(result.abortedFlows);
  out["deliveryRate"] = result.deliveryRate;
  out["meanLatencySeconds"] = result.meanLatencySeconds;
  out["p50LatencySeconds"] = result.p50LatencySeconds;
  out["p95LatencySeconds"] = result.p95LatencySeconds;
  out["p99LatencySeconds"] = result.p99LatencySeconds;
  out["framesTransmitted"] = static_cast<double>(result.framesTransmitted);
  out["pagesSent"] = static_cast<double>(result.pagesSent);
  out["eventsExecuted"] = static_cast<double>(result.eventsExecuted);
  out["firstDeath"] = result.firstDeath;
  out["networkDown"] = result.networkDown;
  out["macFramesSent"] = static_cast<double>(result.macFramesSent);
  out["macFramesDropped"] = static_cast<double>(result.macFramesDropped);
  out["macRetransmissions"] =
      static_cast<double>(result.macRetransmissions);
  util::JsonObject metrics;
  for (const auto& [name, value] : result.metrics) metrics[name] = value;
  out["metrics"] = std::move(metrics);
  return out;
}

std::string describeException(const std::exception_ptr& error) {
  try {
    std::rethrow_exception(error);
  } catch (const std::exception& e) {
    return e.what();
  } catch (...) {
    return "unknown error";
  }
}

}  // namespace

std::set<std::string> completedFingerprints(
    const std::vector<std::string>& paths) {
  std::set<std::string> done;
  for (const std::string& path : paths) {
    std::ifstream in(path);
    if (!in) continue;  // fresh campaign: nothing recorded yet
    std::string line;
    while (std::getline(in, line)) {
      if (line.empty()) continue;
      try {
        const util::JsonValue record = util::parseJson(line);
        const util::JsonValue* fingerprint = record.find("fingerprint");
        if (fingerprint != nullptr) done.insert(fingerprint->asString());
      } catch (const std::invalid_argument&) {
        // Torn line (the process died mid-write): that run simply does
        // not count as completed and will execute again.
      }
    }
  }
  return done;
}

std::string recordToJson(const std::string& campaignName, const RunSpec& run,
                         const harness::ScenarioResult* result,
                         const std::string& error) {
  util::JsonObject record;
  record["campaign"] = campaignName;
  record["fingerprint"] = run.fingerprint;
  record["seed"] = static_cast<double>(run.seed);
  record["config"] = run.overrides;
  record["ok"] = result != nullptr;
  record["error"] = error;
  if (result != nullptr) {
    record["result"] = resultToJson(*result);
    // Sim duration for the events-per-sim-second roll-up: re-resolve the
    // config (cheap — no simulation). This already succeeded for any run
    // that produced a result; the fallback covers hand-built records.
    double simDuration = 0.0;
    try {
      simDuration = resolveConfig(run.overrides, run.seed).duration;
    } catch (const std::exception&) {
      simDuration = 0.0;
    }
    record["telemetry"] = telemetryToJson(*result, simDuration);
  }
  return util::JsonValue(std::move(record)).dump();
}

CampaignOutcome runCampaign(const CampaignSpec& spec,
                            const CampaignOptions& options) {
  ECGRID_REQUIRE(!options.resultsPath.empty(), "campaign needs a results path");
  ECGRID_REQUIRE(options.workerCount >= 1, "workerCount must be >= 1");
  ECGRID_REQUIRE(options.workerIndex >= 0 &&
                     options.workerIndex < options.workerCount,
                 "workerIndex out of range");

  const std::vector<RunSpec> runs = expandCampaign(spec);
  std::vector<std::string> resumePaths = options.resumeFrom;
  resumePaths.push_back(options.resultsPath);
  const std::set<std::string> done = completedFingerprints(resumePaths);

  CampaignOutcome outcome;
  outcome.totalRuns = runs.size();
  std::vector<const RunSpec*> pending;
  for (std::size_t i = 0; i < runs.size(); ++i) {
    // Stripe over the FULL expansion: worker ownership is independent of
    // what happens to be completed, so two workers never share a run.
    if (static_cast<int>(i % static_cast<std::size_t>(options.workerCount)) !=
        options.workerIndex) {
      continue;
    }
    ++outcome.stripeRuns;
    if (done.count(runs[i].fingerprint) > 0) {
      ++outcome.skipped;
      continue;
    }
    pending.push_back(&runs[i]);
  }

  std::ofstream out(options.resultsPath, std::ios::app);
  ECGRID_REQUIRE(static_cast<bool>(out), "cannot open campaign results file '" +
                                             options.resultsPath +
                                             "' for append");

  const std::size_t batchSize = std::max(1u, options.jobs);
  WallLedger ledger;
  writeStatus(options, spec.name, outcome, ledger, {}, false);
  std::size_t cursor = 0;
  while (cursor < pending.size()) {
    if (options.maxRuns >= 0 &&
        outcome.executed >= static_cast<std::size_t>(options.maxRuns)) {
      break;
    }
    std::size_t batchEnd = std::min(pending.size(), cursor + batchSize);
    if (options.maxRuns >= 0) {
      const std::size_t budget =
          static_cast<std::size_t>(options.maxRuns) - outcome.executed;
      batchEnd = std::min(batchEnd, cursor + budget);
    }

    // Resolve the batch. A spec that names an unknown key fails at parse
    // time, but value-level errors (e.g. a negative rate the workload
    // plan rejects) surface here — record them, keep going.
    std::vector<harness::ScenarioConfig> configs;
    std::vector<const RunSpec*> batchRuns;
    for (std::size_t i = cursor; i < batchEnd; ++i) {
      const RunSpec& run = *pending[i];
      try {
        configs.push_back(resolveConfig(run.overrides, run.seed));
        batchRuns.push_back(&run);
      } catch (const std::exception& e) {
        out << recordToJson(spec.name, run, nullptr, e.what()) << '\n';
        ++outcome.executed;
        ++outcome.failed;
      }
    }

    if (!options.statusPath.empty() && !batchRuns.empty()) {
      // Heartbeat before the batch runs: a watcher sees which
      // fingerprints are in flight, so a wedged batch is attributable.
      std::vector<std::string> inFlight;
      inFlight.reserve(batchRuns.size());
      for (const RunSpec* run : batchRuns) {
        inFlight.push_back(run->fingerprint);
      }
      writeStatus(options, spec.name, outcome, ledger, inFlight, false);
    }

    std::vector<std::exception_ptr> failures;
    const std::vector<harness::ScenarioResult> results =
        harness::runScenariosParallel(configs, options.jobs, failures);
    for (std::size_t i = 0; i < batchRuns.size(); ++i) {
      ++outcome.executed;
      if (failures[i] != nullptr) {
        ++outcome.failed;
        out << recordToJson(spec.name, *batchRuns[i], nullptr,
                            describeException(failures[i]))
            << '\n';
      } else {
        ledger.add(batchRuns[i]->fingerprint, results[i].runWallSeconds);
        out << recordToJson(spec.name, *batchRuns[i], &results[i], "")
            << '\n';
      }
    }
    out.flush();
    ECGRID_CHECK(static_cast<bool>(out),
                 "writing campaign results failed (disk full?)");

    if (options.progress) {
      options.progress("campaign " + spec.name + ": " +
                       std::to_string(outcome.skipped + outcome.executed) +
                       "/" + std::to_string(outcome.stripeRuns) +
                       " runs done (" + std::to_string(outcome.failed) +
                       " failed)");
    }
    writeStatus(options, spec.name, outcome, ledger, {}, false);
    cursor = batchEnd;
  }
  // done=true only when the stripe is fully accounted for — a maxRuns
  // cut (the simulated kill) leaves done=false, and the resumed
  // invocation's status picks the counts back up from the results file.
  writeStatus(options, spec.name, outcome, ledger, {},
              outcome.skipped + outcome.executed >= outcome.stripeRuns);
  return outcome;
}

}  // namespace ecgrid::campaign
