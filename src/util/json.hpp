// Minimal JSON value + recursive-descent parser (stdlib only).
//
// The campaign layer (src/campaign) consumes declarative sweep specs and
// re-reads its own JSONL results file, so the repo needs to *parse* JSON,
// not just emit it the way bench_support does. The subset implemented is
// exactly RFC 8259 minus surrogate-pair escapes: objects, arrays, strings
// (\" \\ \/ \b \f \n \r \t and \uXXXX for the BMP), numbers (parsed as
// double — the spec's numbers are seeds, rates, and counts, all exactly
// representable), true/false/null. Objects preserve no duplicate keys
// (last write wins) and are stored in std::map, so iteration order is
// sorted and deterministic — the same discipline the rest of the repo
// follows for anything that feeds output files.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "util/ownership.hpp"

namespace ecgrid::util {

class JsonValue;

using JsonArray = std::vector<JsonValue>;
using JsonObject = std::map<std::string, JsonValue>;

enum class JsonKind : std::uint8_t { kNull, kBool, kNumber, kString, kArray, kObject };

const char* toString(JsonKind kind);

/// One parsed JSON value. Value-semantic; containers are heap-boxed so
/// the type stays complete for std::map/std::vector.
class JsonValue {
 public:
  JsonValue() : kind_(JsonKind::kNull) {}
  JsonValue(bool b) : kind_(JsonKind::kBool), bool_(b) {}          // NOLINT
  JsonValue(double n) : kind_(JsonKind::kNumber), number_(n) {}    // NOLINT
  JsonValue(int n) : JsonValue(static_cast<double>(n)) {}          // NOLINT
  JsonValue(std::string s)                                         // NOLINT
      : kind_(JsonKind::kString), string_(std::move(s)) {}
  JsonValue(const char* s) : JsonValue(std::string(s)) {}          // NOLINT
  JsonValue(JsonArray a);                                          // NOLINT
  JsonValue(JsonObject o);                                         // NOLINT

  [[nodiscard]] JsonKind kind() const { return kind_; }
  [[nodiscard]] bool isNull() const { return kind_ == JsonKind::kNull; }

  /// Typed accessors throw std::invalid_argument on a kind mismatch with
  /// a message naming both kinds, so spec errors surface readably.
  [[nodiscard]] bool asBool() const;
  [[nodiscard]] double asNumber() const;
  [[nodiscard]] const std::string& asString() const;
  [[nodiscard]] const JsonArray& asArray() const;
  [[nodiscard]] const JsonObject& asObject() const;

  /// Object member lookup; nullptr when absent or not an object.
  [[nodiscard]] const JsonValue* find(const std::string& key) const;

  /// Compact canonical serialization: sorted object keys (std::map
  /// order), no whitespace, numbers via %.17g — fingerprint-stable.
  [[nodiscard]] std::string dump() const;

 private:
  JsonKind kind_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::shared_ptr<const JsonArray> array_;
  std::shared_ptr<const JsonObject> object_;
};

/// Parse one JSON document (throws std::invalid_argument with a
/// line:column locus on malformed input; trailing garbage is an error).
[[nodiscard]] JsonValue parseJson(const std::string& text);

/// Escape `s` for embedding inside a JSON string literal (no quotes).
[[nodiscard]] std::string jsonEscape(const std::string& s);

}  // namespace ecgrid::util
