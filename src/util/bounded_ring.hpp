// BoundedRing — a FIFO over one flat allocation, for hot-path queues
// whose depth is bounded by configuration (MAC transmit queues capped by
// queueLimit, dedup windows capped by dedupWindow).
//
// std::deque would work functionally but churns: libstdc++ frees a block
// every time pop_front empties it and allocates a fresh one as push_back
// crosses the next boundary, so a steady-state producer/consumer pair
// allocates forever — exactly the pattern the hot-path-allocation lint
// and the ECGRID_ALLOC_AUDIT gate exist to catch. The ring instead wraps
// head/tail indices around one vector: after the depth high-water mark is
// reached, pushes and pops touch no allocator at all.
//
// Growth is geometric (power-of-two capacities) like std::vector, so a
// queue that never goes deep never pays for its configured bound — at
// city scale, 10k hosts × a fully pre-sized 128-deep MAC queue would be
// real memory. reserve() in the owner's constructor sets the floor.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "util/error.hpp"

namespace ecgrid::util {

template <class T>
class BoundedRing {
 public:
  /// Pre-size to at least `n` slots (rounded up to a power of two).
  /// Callers reserve their expected steady depth up front so growth —
  /// which relocates every element — happens off the hot path.
  void reserve(std::size_t n) {
    if (n > slots_.size()) grow(roundUpPow2(n));
  }

  [[nodiscard]] bool empty() const { return count_ == 0; }
  [[nodiscard]] std::size_t size() const { return count_; }
  [[nodiscard]] std::size_t capacity() const { return slots_.size(); }

  [[nodiscard]] T& front() {
    ECGRID_REQUIRE(count_ > 0, "front() on empty ring");
    return slots_[head_];
  }
  [[nodiscard]] const T& front() const {
    ECGRID_REQUIRE(count_ > 0, "front() on empty ring");
    return slots_[head_];
  }

  void push_back(T value) {
    if (count_ == slots_.size()) grow(slots_.empty() ? 8 : slots_.size() * 2);
    slots_[(head_ + count_) & (slots_.size() - 1)] = std::move(value);
    ++count_;
  }

  void pop_front() {
    ECGRID_REQUIRE(count_ > 0, "pop_front() on empty ring");
    slots_[head_] = T{};  // release owned resources now, not at wraparound
    head_ = (head_ + 1) & (slots_.size() - 1);
    --count_;
  }

  void clear() {
    while (count_ > 0) pop_front();
    head_ = 0;
  }

 private:
  static std::size_t roundUpPow2(std::size_t n) {
    std::size_t p = 1;
    while (p < n) p *= 2;
    return p;
  }

  void grow(std::size_t newCapacity) {
    std::vector<T> next(newCapacity);
    for (std::size_t i = 0; i < count_; ++i) {
      next[i] = std::move(slots_[(head_ + i) & (slots_.size() - 1)]);
    }
    slots_.swap(next);
    head_ = 0;
  }

  /// Capacity is always a power of two (or zero before first use), so
  /// index wraparound is a mask instead of a modulo.
  std::vector<T> slots_;
  std::size_t head_ = 0;
  std::size_t count_ = 0;
};

}  // namespace ecgrid::util
