// Ownership-domain tags — which shard of the system owns an object.
//
// Thread-safety annotations (util/thread_annotations.hpp) say which lock
// guards a field; these macros say which *execution domain* owns a whole
// class, which is the contract the planned intra-run sharding (ROADMAP
// item 2) will cut along. Three domains cover the repo (DESIGN.md §13):
//
//   ECGRID_DOMAIN_PER_HOST      Owned by exactly one mobile host: the
//                               protocol stack, MAC, radio, battery,
//                               mobility model, per-host tables. May
//                               touch other hosts ONLY through the
//                               shared-medium interfaces (phy::Channel,
//                               phy::PagingChannel) or the HostEnv pager
//                               — never via a Node/HostEnv pointer to a
//                               remote host. tools/ecgrid_lint rule
//                               `cross-host-access` enforces this.
//
//   ECGRID_DOMAIN_PER_SCENARIO  Owned by one scenario run: Simulator,
//                               EventQueue, Network, Channel,
//                               SpatialIndex, Observability sinks, stats
//                               recorders, fault injector. One instance
//                               per runScenario call; never shared
//                               between concurrent runs, so needs no
//                               locking — parallel workers each build
//                               their own.
//
//   ECGRID_DOMAIN_GLOBAL        Process-wide and reachable from every
//                               worker thread (util/log's Logger, the
//                               harness thread pool bookkeeping). Must be
//                               thread-safe: atomics, ECGRID_GUARDED_BY
//                               fields, or immutable-after-init. New
//                               mutable globals are rejected by the
//                               `shared-mutable-global` lint rule unless
//                               justified.
//
// The macros expand to nothing — they are declarative markers placed in
// the class head (`class ECGRID_DOMAIN_PER_HOST CsmaMac final ...`) so
// the domain census stays greppable:
//   grep -rn 'ECGRID_DOMAIN_' src/
#pragma once

#define ECGRID_DOMAIN_PER_HOST
#define ECGRID_DOMAIN_PER_SCENARIO
#define ECGRID_DOMAIN_GLOBAL
