#include "util/flags.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/error.hpp"

namespace ecgrid::util {

namespace {

bool isKnown(const std::vector<std::string>& known, const std::string& name) {
  return std::find(known.begin(), known.end(), name) != known.end();
}

}  // namespace

Flags::Flags(int argc, const char* const* argv,
             std::vector<std::string> known) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    std::string body = arg.substr(2);
    std::string name;
    std::string value;
    auto eq = body.find('=');
    if (eq != std::string::npos) {
      name = body.substr(0, eq);
      value = body.substr(eq + 1);
    } else {
      name = body;
      // "--name value" form: consume next token unless it is another flag.
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        value = argv[++i];
      } else {
        value = "true";
      }
    }
    if (!isKnown(known, name)) {
      throw std::invalid_argument("unknown flag: --" + name);
    }
    values_[name] = value;
  }
}

bool Flags::has(const std::string& name) const {
  return values_.count(name) > 0;
}

std::string Flags::getString(const std::string& name,
                             const std::string& fallback) const {
  auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

double Flags::getDouble(const std::string& name, double fallback) const {
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  return std::stod(it->second);
}

int Flags::getInt(const std::string& name, int fallback) const {
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  return std::stoi(it->second);
}

bool Flags::getBool(const std::string& name, bool fallback) const {
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

}  // namespace ecgrid::util
