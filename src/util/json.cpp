#include "util/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>

namespace ecgrid::util {

const char* toString(JsonKind kind) {
  switch (kind) {
    case JsonKind::kNull:
      return "null";
    case JsonKind::kBool:
      return "bool";
    case JsonKind::kNumber:
      return "number";
    case JsonKind::kString:
      return "string";
    case JsonKind::kArray:
      return "array";
    case JsonKind::kObject:
      return "object";
  }
  return "?";
}

JsonValue::JsonValue(JsonArray a)
    : kind_(JsonKind::kArray),
      array_(std::make_shared<const JsonArray>(std::move(a))) {}

JsonValue::JsonValue(JsonObject o)
    : kind_(JsonKind::kObject),
      object_(std::make_shared<const JsonObject>(std::move(o))) {}

namespace {

[[noreturn]] void kindMismatch(JsonKind want, JsonKind got) {
  throw std::invalid_argument(std::string("JSON value is ") + toString(got) +
                              ", expected " + toString(want));
}

}  // namespace

bool JsonValue::asBool() const {
  if (kind_ != JsonKind::kBool) kindMismatch(JsonKind::kBool, kind_);
  return bool_;
}

double JsonValue::asNumber() const {
  if (kind_ != JsonKind::kNumber) kindMismatch(JsonKind::kNumber, kind_);
  return number_;
}

const std::string& JsonValue::asString() const {
  if (kind_ != JsonKind::kString) kindMismatch(JsonKind::kString, kind_);
  return string_;
}

const JsonArray& JsonValue::asArray() const {
  if (kind_ != JsonKind::kArray) kindMismatch(JsonKind::kArray, kind_);
  return *array_;
}

const JsonObject& JsonValue::asObject() const {
  if (kind_ != JsonKind::kObject) kindMismatch(JsonKind::kObject, kind_);
  return *object_;
}

const JsonValue* JsonValue::find(const std::string& key) const {
  if (kind_ != JsonKind::kObject) return nullptr;
  auto it = object_->find(key);
  return it == object_->end() ? nullptr : &it->second;
}

std::string jsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string JsonValue::dump() const {
  switch (kind_) {
    case JsonKind::kNull:
      return "null";
    case JsonKind::kBool:
      return bool_ ? "true" : "false";
    case JsonKind::kNumber: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.17g", number_);
      return buf;
    }
    case JsonKind::kString:
      return "\"" + jsonEscape(string_) + "\"";
    case JsonKind::kArray: {
      std::string out = "[";
      for (std::size_t i = 0; i < array_->size(); ++i) {
        if (i > 0) out += ",";
        out += (*array_)[i].dump();
      }
      return out + "]";
    }
    case JsonKind::kObject: {
      std::string out = "{";
      bool first = true;
      for (const auto& [key, value] : *object_) {
        if (!first) out += ",";
        first = false;
        out += "\"" + jsonEscape(key) + "\":" + value.dump();
      }
      return out + "}";
    }
  }
  return "null";
}

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  JsonValue document() {
    JsonValue value = parseValue();
    skipWhitespace();
    if (pos_ != text_.size()) fail("trailing characters after JSON document");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    std::size_t line = 1;
    std::size_t col = 1;
    for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
    }
    std::ostringstream os;
    os << "JSON parse error at " << line << ":" << col << " — " << what;
    throw std::invalid_argument(os.str());
  }

  void skipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    skipWhitespace();
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consumeKeyword(const char* kw) {
    std::size_t len = 0;
    while (kw[len] != '\0') ++len;
    if (text_.compare(pos_, len, kw) != 0) return false;
    pos_ += len;
    return true;
  }

  JsonValue parseValue() {
    switch (peek()) {
      case '{':
        return parseObject();
      case '[':
        return parseArray();
      case '"':
        return JsonValue(parseString());
      case 't':
        if (consumeKeyword("true")) return JsonValue(true);
        fail("invalid keyword (expected 'true')");
      case 'f':
        if (consumeKeyword("false")) return JsonValue(false);
        fail("invalid keyword (expected 'false')");
      case 'n':
        if (consumeKeyword("null")) return JsonValue();
        fail("invalid keyword (expected 'null')");
      default:
        return parseNumber();
    }
  }

  JsonValue parseObject() {
    expect('{');
    JsonObject object;
    if (peek() == '}') {
      ++pos_;
      return JsonValue(std::move(object));
    }
    while (true) {
      if (peek() != '"') fail("object key must be a string");
      std::string key = parseString();
      expect(':');
      object[std::move(key)] = parseValue();
      char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == '}') {
        ++pos_;
        return JsonValue(std::move(object));
      }
      fail("expected ',' or '}' in object");
    }
  }

  JsonValue parseArray() {
    expect('[');
    JsonArray array;
    if (peek() == ']') {
      ++pos_;
      return JsonValue(std::move(array));
    }
    while (true) {
      array.push_back(parseValue());
      char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == ']') {
        ++pos_;
        return JsonValue(std::move(array));
      }
      fail("expected ',' or ']' in array");
    }
  }

  std::string parseString() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("unescaped control character in string");
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      char esc = text_[pos_++];
      switch (esc) {
        case '"':
          out += '"';
          break;
        case '\\':
          out += '\\';
          break;
        case '/':
          out += '/';
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'n':
          out += '\n';
          break;
        case 'r':
          out += '\r';
          break;
        case 't':
          out += '\t';
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("invalid hex digit in \\u escape");
            }
          }
          if (code >= 0xD800 && code <= 0xDFFF) {
            fail("surrogate-pair escapes are not supported");
          }
          // UTF-8 encode the BMP code point.
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          fail("unknown escape sequence");
      }
    }
  }

  JsonValue parseNumber() {
    skipWhitespace();
    std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("invalid value");
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    double value = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0' || !std::isfinite(value)) {
      pos_ = start;
      fail("malformed number '" + token + "'");
    }
    return JsonValue(value);
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue parseJson(const std::string& text) {
  return Parser(text).document();
}

}  // namespace ecgrid::util
