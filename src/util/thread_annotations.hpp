// Clang thread-safety annotation macros (shard-safety static analysis).
//
// These wrap clang's capability analysis attributes so cross-thread
// surfaces can declare, in the type system, which lock guards which
// state. The `thread-safety` CMake preset builds the tree with
// `-Wthread-safety -Werror`, turning a forgotten lock into a compile
// error instead of a TSan report three PRs later. On compilers without
// the attributes (gcc, msvc) every macro expands to nothing, so the
// annotations are free documentation there.
//
// Vocabulary (see util/mutex.hpp for the annotated lock types):
//
//   ECGRID_CAPABILITY("mutex")   class is a lockable capability
//   ECGRID_SCOPED_CAPABILITY     RAII type that acquires/releases one
//   ECGRID_GUARDED_BY(mu)        field may only be touched holding mu
//   ECGRID_PT_GUARDED_BY(mu)     pointee may only be touched holding mu
//   ECGRID_REQUIRES(mu)          caller must already hold mu
//   ECGRID_ACQUIRE(mu)/ECGRID_RELEASE(mu)
//                                function takes / drops the lock
//   ECGRID_EXCLUDES(mu)          caller must NOT hold mu (deadlock guard)
//   ECGRID_ACQUIRED_BEFORE/AFTER declare lock ordering
//   ECGRID_RETURN_CAPABILITY(mu) accessor returns a reference to mu
//   ECGRID_NO_THREAD_SAFETY_ANALYSIS
//                                opt a function out (justify in a comment)
//
// The sibling ownership-domain macros (which *thread/shard* owns an
// object, rather than which lock guards a field) live in
// util/ownership.hpp.
#pragma once

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define ECGRID_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef ECGRID_THREAD_ANNOTATION
#define ECGRID_THREAD_ANNOTATION(x)  // no-op off clang
#endif

#define ECGRID_CAPABILITY(name) ECGRID_THREAD_ANNOTATION(capability(name))
#define ECGRID_SCOPED_CAPABILITY ECGRID_THREAD_ANNOTATION(scoped_lockable)
#define ECGRID_GUARDED_BY(mu) ECGRID_THREAD_ANNOTATION(guarded_by(mu))
#define ECGRID_PT_GUARDED_BY(mu) ECGRID_THREAD_ANNOTATION(pt_guarded_by(mu))
#define ECGRID_REQUIRES(...) \
  ECGRID_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define ECGRID_REQUIRES_SHARED(...) \
  ECGRID_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))
#define ECGRID_ACQUIRE(...) \
  ECGRID_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define ECGRID_ACQUIRE_SHARED(...) \
  ECGRID_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define ECGRID_RELEASE(...) \
  ECGRID_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define ECGRID_RELEASE_SHARED(...) \
  ECGRID_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
#define ECGRID_TRY_ACQUIRE(...) \
  ECGRID_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define ECGRID_EXCLUDES(...) \
  ECGRID_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define ECGRID_ACQUIRED_BEFORE(...) \
  ECGRID_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define ECGRID_ACQUIRED_AFTER(...) \
  ECGRID_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))
#define ECGRID_RETURN_CAPABILITY(x) \
  ECGRID_THREAD_ANNOTATION(lock_returned(x))
#define ECGRID_NO_THREAD_SAFETY_ANALYSIS \
  ECGRID_THREAD_ANNOTATION(no_thread_safety_analysis)
