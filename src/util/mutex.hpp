// Annotated mutex types for clang's thread-safety analysis.
//
// std::mutex carries none of the capability attributes the analysis
// needs, so cross-thread state in this repo locks through these thin
// wrappers instead: `Mutex` is an annotated capability over std::mutex,
// `MutexLock` the RAII guard. Under the `thread-safety` preset
// (-Wthread-safety -Werror) a field declared
//
//   Mutex mutex_;
//   std::map<std::string, int> byTag_ ECGRID_GUARDED_BY(mutex_);
//
// cannot be read or written without holding mutex_ — the compiler
// rejects the access. Off clang the attributes vanish and these are
// zero-overhead std::mutex / std::lock_guard.
//
// Keep the surface minimal on purpose: the simulator core is
// single-threaded by design (one Simulator per scenario, per-host state
// never crosses shards — see util/ownership.hpp and DESIGN.md §13), so
// only genuinely process-wide registries (util/log) and the harness
// thread pool ever need a lock. New locks in src/ should be rare and
// reviewed; each one is shared state a future intra-run shard boundary
// has to cut around.
#pragma once

#include <mutex>

#include "util/thread_annotations.hpp"

namespace ecgrid::util {

/// std::mutex with capability annotations.
class ECGRID_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ECGRID_ACQUIRE() { impl_.lock(); }
  void unlock() ECGRID_RELEASE() { impl_.unlock(); }
  bool tryLock() ECGRID_TRY_ACQUIRE(true) { return impl_.try_lock(); }

 private:
  std::mutex impl_;
};

/// RAII lock over Mutex (std::lock_guard with scoped-capability
/// annotations).
class ECGRID_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) ECGRID_ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.lock();
  }
  ~MutexLock() ECGRID_RELEASE() { mutex_.unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mutex_;
};

}  // namespace ecgrid::util
