// Lightweight contract checking for the ECGRID simulator.
//
// ECGRID_REQUIRE is used for caller contract violations (throws
// std::invalid_argument); ECGRID_CHECK is used for internal invariants
// (throws std::logic_error). Both are always on: simulation correctness
// matters more than the nanoseconds a branch costs, and a silently corrupt
// discrete-event run is worthless.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace ecgrid::util {

[[noreturn]] inline void throwRequire(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "requirement failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw std::invalid_argument(os.str());
}

[[noreturn]] inline void throwCheck(const char* expr, const char* file,
                                    int line, const std::string& msg) {
  std::ostringstream os;
  os << "invariant violated: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw std::logic_error(os.str());
}

}  // namespace ecgrid::util

#define ECGRID_REQUIRE(expr, msg)                                     \
  do {                                                                \
    if (!(expr))                                                      \
      ::ecgrid::util::throwRequire(#expr, __FILE__, __LINE__, (msg)); \
  } while (false)

#define ECGRID_CHECK(expr, msg)                                     \
  do {                                                              \
    if (!(expr))                                                    \
      ::ecgrid::util::throwCheck(#expr, __FILE__, __LINE__, (msg)); \
  } while (false)
