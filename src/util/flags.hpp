// Tiny command-line flag parser used by the bench and example binaries.
//
// Supports "--name=value", "--name value" and boolean "--name". Unknown
// flags raise std::invalid_argument so experiment scripts fail loudly
// instead of silently running the wrong configuration.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace ecgrid::util {

class Flags {
 public:
  /// Parses argv. `known` lists every accepted flag name (without "--").
  Flags(int argc, const char* const* argv, std::vector<std::string> known);

  [[nodiscard]] bool has(const std::string& name) const;
  [[nodiscard]] std::string getString(const std::string& name,
                                      const std::string& fallback) const;
  [[nodiscard]] double getDouble(const std::string& name,
                                 double fallback) const;
  [[nodiscard]] int getInt(const std::string& name, int fallback) const;
  [[nodiscard]] bool getBool(const std::string& name, bool fallback) const;

  /// Positional (non-flag) arguments in order of appearance.
  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace ecgrid::util
