#include "util/log.hpp"

#include <cstdlib>
#include <iostream>

namespace ecgrid::util {

namespace {

int initialLevelFromEnv() {
  const char* env = std::getenv("ECGRID_LOG");
  if (env == nullptr) return static_cast<int>(LogLevel::kOff);
  return static_cast<int>(Logger::parseLevel(env));
}

const char* levelName(LogLevel lvl) {
  switch (lvl) {
    case LogLevel::kOff:
      return "off";
    case LogLevel::kError:
      return "error";
    case LogLevel::kWarn:
      return "warn";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kDebug:
      return "debug";
    case LogLevel::kTrace:
      return "trace";
  }
  return "?";
}

}  // namespace

std::atomic<int>& Logger::levelStorage() {
  static std::atomic<int> storage{initialLevelFromEnv()};
  return storage;
}

LogLevel Logger::level() {
  return static_cast<LogLevel>(levelStorage().load(std::memory_order_relaxed));
}

void Logger::setLevel(LogLevel level) {
  levelStorage().store(static_cast<int>(level), std::memory_order_relaxed);
}

void Logger::write(LogLevel level, const std::string& tag,
                   const std::string& message) {
  std::cerr << "[" << levelName(level) << "] [" << tag << "] " << message
            << "\n";
}

LogLevel Logger::parseLevel(const std::string& text) {
  if (text == "error" || text == "1") return LogLevel::kError;
  if (text == "warn" || text == "2") return LogLevel::kWarn;
  if (text == "info" || text == "3") return LogLevel::kInfo;
  if (text == "debug" || text == "4") return LogLevel::kDebug;
  if (text == "trace" || text == "5") return LogLevel::kTrace;
  return LogLevel::kOff;
}

}  // namespace ecgrid::util
