#include "util/log.hpp"

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <map>
#include <mutex>

namespace ecgrid::util {

namespace {

/// Per-component level overrides, shared across threads (the global
/// logger is process-wide); guarded by a mutex with an atomic "any
/// overrides at all?" fast path so the common no-override case costs one
/// relaxed load.
struct Overrides {
  std::mutex mutex;
  std::map<std::string, int> byTag;
  std::atomic<bool> any{false};
};

Overrides& overridesStorage() {
  static Overrides storage;
  return storage;
}

/// Thread-local simulation clock for line prefixes (see LogSimClock).
const double*& simClockSlot() {
  thread_local const double* clock = nullptr;
  return clock;
}

/// Parse a spec ("info,mac=debug") into the global level + overrides.
/// Shared by Logger::configure and the one-time ECGRID_LOG read. `base`
/// is the level to keep when the spec names no bare level token; passed
/// in (not read via Logger::level()) so the ECGRID_LOG path cannot
/// recurse into levelStorage()'s own initialization.
int applySpec(const std::string& spec, int base) {
  Overrides& overrides = overridesStorage();
  std::lock_guard<std::mutex> lock(overrides.mutex);
  overrides.byTag.clear();
  std::size_t start = 0;
  while (start <= spec.size()) {
    std::size_t comma = spec.find(',', start);
    if (comma == std::string::npos) comma = spec.size();
    const std::string token = spec.substr(start, comma - start);
    start = comma + 1;
    if (token.empty()) continue;
    const std::size_t eq = token.find('=');
    if (eq == std::string::npos) {
      base = static_cast<int>(Logger::parseLevel(token));
    } else {
      overrides.byTag[token.substr(0, eq)] =
          static_cast<int>(Logger::parseLevel(token.substr(eq + 1)));
    }
  }
  overrides.any.store(!overrides.byTag.empty(), std::memory_order_relaxed);
  return base;
}

int initialLevelFromEnv() {
  const char* env = std::getenv("ECGRID_LOG");
  if (env == nullptr) return static_cast<int>(LogLevel::kOff);
  return applySpec(env, static_cast<int>(LogLevel::kOff));
}

const char* levelName(LogLevel lvl) {
  switch (lvl) {
    case LogLevel::kOff:
      return "off";
    case LogLevel::kError:
      return "error";
    case LogLevel::kWarn:
      return "warn";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kDebug:
      return "debug";
    case LogLevel::kTrace:
      return "trace";
  }
  return "?";
}

}  // namespace

std::atomic<int>& Logger::levelStorage() {
  static std::atomic<int> storage{initialLevelFromEnv()};
  return storage;
}

LogLevel Logger::level() {
  return static_cast<LogLevel>(levelStorage().load(std::memory_order_relaxed));
}

void Logger::setLevel(LogLevel level) {
  levelStorage().store(static_cast<int>(level), std::memory_order_relaxed);
}

void Logger::configure(const std::string& spec) {
  const int base = levelStorage().load(std::memory_order_relaxed);
  levelStorage().store(applySpec(spec, base), std::memory_order_relaxed);
}

bool Logger::hasOverrides() {
  return overridesStorage().any.load(std::memory_order_relaxed);
}

LogLevel Logger::levelFor(const char* tag) {
  if (!hasOverrides()) return level();
  Overrides& overrides = overridesStorage();
  std::lock_guard<std::mutex> lock(overrides.mutex);
  auto it = overrides.byTag.find(tag);
  return it != overrides.byTag.end() ? static_cast<LogLevel>(it->second)
                                     : level();
}

void Logger::write(LogLevel level, const std::string& tag,
                   const std::string& message) {
  const double* clock = simClockSlot();
  if (clock != nullptr) {
    char prefix[40];
    std::snprintf(prefix, sizeof(prefix), "[t=%.6f] ", *clock);
    std::cerr << prefix;
  }
  std::cerr << "[" << levelName(level) << "] [" << tag << "] " << message
            << "\n";
}

LogLevel Logger::parseLevel(const std::string& text) {
  if (text == "error" || text == "1") return LogLevel::kError;
  if (text == "warn" || text == "2") return LogLevel::kWarn;
  if (text == "info" || text == "3") return LogLevel::kInfo;
  if (text == "debug" || text == "4") return LogLevel::kDebug;
  if (text == "trace" || text == "5") return LogLevel::kTrace;
  return LogLevel::kOff;
}

LogSimClock::LogSimClock(const double* now) : previous_(simClockSlot()) {
  simClockSlot() = now;
}

LogSimClock::~LogSimClock() { simClockSlot() = previous_; }

}  // namespace ecgrid::util
