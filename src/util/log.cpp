#include "util/log.hpp"

#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>

#include "util/mutex.hpp"
#include "util/ownership.hpp"

namespace ecgrid::util {

namespace {

/// Per-component level overrides, shared across threads (the global
/// logger is process-wide); guarded by a mutex with an atomic "any
/// overrides at all?" fast path so the common no-override case costs one
/// relaxed load. `any` is published under the mutex so a reader that sees
/// it true finds the matching map contents behind the lock.
struct ECGRID_DOMAIN_GLOBAL Overrides {
  Mutex mutex;
  std::map<std::string, int> byTag ECGRID_GUARDED_BY(mutex);
  std::atomic<bool> any{false};
};

Overrides& overridesStorage() {
  // Process-wide registry by design: construction is thread-safe (Meyers
  // singleton) and all mutable state inside is mutex/atomic-protected.
  static Overrides storage;  // ecgrid-lint: allow(shared-mutable-global)
  return storage;
}

/// Thread-local simulation clock for line prefixes (see LogSimClock).
/// Thread-local, not shared: each parallel scenario worker registers its
/// own simulator's clock.
const double*& simClockSlot() {
  thread_local const double* clock = nullptr;
  return clock;
}

/// Parse a spec ("info,mac=debug") into the global level + overrides.
/// Shared by Logger::configure and the one-time ECGRID_LOG read. `base`
/// is the level to keep when the spec names no bare level token; passed
/// in (not read via Logger::level()) so the ECGRID_LOG path cannot
/// recurse into levelStorage()'s own initialization.
int applySpec(const std::string& spec, int base) {
  Overrides& overrides = overridesStorage();
  MutexLock lock(overrides.mutex);
  overrides.byTag.clear();
  std::size_t start = 0;
  while (start <= spec.size()) {
    std::size_t comma = spec.find(',', start);
    if (comma == std::string::npos) comma = spec.size();
    const std::string token = spec.substr(start, comma - start);
    start = comma + 1;
    if (token.empty()) continue;
    const std::size_t eq = token.find('=');
    if (eq == std::string::npos) {
      base = static_cast<int>(Logger::parseLevel(token));
    } else {
      overrides.byTag[token.substr(0, eq)] =
          static_cast<int>(Logger::parseLevel(token.substr(eq + 1)));
    }
  }
  overrides.any.store(!overrides.byTag.empty(), std::memory_order_release);
  return base;
}

int initialLevelFromEnv() {
  // Read once during levelStorage() initialization, before any worker
  // thread exists; getenv is safe here. NOLINTNEXTLINE(concurrency-mt-unsafe)
  const char* env = std::getenv("ECGRID_LOG");
  if (env == nullptr) return static_cast<int>(LogLevel::kOff);
  return applySpec(env, static_cast<int>(LogLevel::kOff));
}

const char* levelName(LogLevel lvl) {
  switch (lvl) {
    case LogLevel::kOff:
      return "off";
    case LogLevel::kError:
      return "error";
    case LogLevel::kWarn:
      return "warn";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kDebug:
      return "debug";
    case LogLevel::kTrace:
      return "trace";
  }
  return "?";
}

}  // namespace

std::atomic<int>& Logger::levelStorage() {
  // Process-wide level gate: a single atomic int, shared by design.
  static std::atomic<int> storage{  // ecgrid-lint: allow(shared-mutable-global)
      initialLevelFromEnv()};
  return storage;
}

LogLevel Logger::level() {
  return static_cast<LogLevel>(levelStorage().load(std::memory_order_relaxed));
}

void Logger::setLevel(LogLevel level) {
  levelStorage().store(static_cast<int>(level), std::memory_order_relaxed);
}

void Logger::configure(const std::string& spec) {
  const int base = levelStorage().load(std::memory_order_relaxed);
  levelStorage().store(applySpec(spec, base), std::memory_order_relaxed);
}

bool Logger::hasOverrides() {
  return overridesStorage().any.load(std::memory_order_acquire);
}

LogLevel Logger::levelFor(const char* tag) {
  if (!hasOverrides()) return level();
  Overrides& overrides = overridesStorage();
  MutexLock lock(overrides.mutex);
  auto it = overrides.byTag.find(tag);
  return it != overrides.byTag.end() ? static_cast<LogLevel>(it->second)
                                     : level();
}

void Logger::write(LogLevel level, const std::string& tag,
                   const std::string& message) {
  // Assemble the whole line first and emit it with one stdio call:
  // stderr is unbuffered, so concurrent scenario workers' lines cannot
  // interleave mid-line the way chained stream insertions could.
  std::string line;
  line.reserve(tag.size() + message.size() + 48);
  const double* clock = simClockSlot();
  if (clock != nullptr) {
    char prefix[40];
    std::snprintf(prefix, sizeof(prefix), "[t=%.6f] ", *clock);
    line += prefix;
  }
  line += '[';
  line += levelName(level);
  line += "] [";
  line += tag;
  line += "] ";
  line += message;
  line += '\n';
  std::fputs(line.c_str(), stderr);
}

LogLevel Logger::parseLevel(const std::string& text) {
  if (text == "error" || text == "1") return LogLevel::kError;
  if (text == "warn" || text == "2") return LogLevel::kWarn;
  if (text == "info" || text == "3") return LogLevel::kInfo;
  if (text == "debug" || text == "4") return LogLevel::kDebug;
  if (text == "trace" || text == "5") return LogLevel::kTrace;
  return LogLevel::kOff;
}

LogSimClock::LogSimClock(const double* now) : previous_(simClockSlot()) {
  simClockSlot() = now;
}

LogSimClock::~LogSimClock() { simClockSlot() = previous_; }

}  // namespace ecgrid::util
