// Minimal leveled logger for simulator diagnostics.
//
// Logging is opt-in and cheap when disabled: each macro checks an atomic
// level before building the message. The level can be set programmatically
// (Logger::setLevel / Logger::configure) or via the ECGRID_LOG environment
// variable, read once at startup.
//
// A configuration is either a plain level ("error" | "warn" | "info" |
// "debug" | "trace") or a spec with per-component overrides, e.g.
// "info,mac=debug,route=trace": the bare token sets the global level and
// each tag=level pair raises (or lowers) one component's threshold. The
// example binaries expose this as --log=<spec> through util/flags.
//
// While a Simulator exists on the current thread, every line is prefixed
// with the current simulation time ("[t=12.004103] ...") so debug logs
// line up with event traces (src/obs). Without one — unit tests, startup
// code — the prefix is omitted and the classic format is unchanged.
//
// Log lines carry the simulation component tag and are intended for humans
// debugging protocol behaviour, not for machine consumption — metrics go
// through ecgrid::obs / ecgrid::stats instead.
//
// Thread-safety contract (audited against harness::runScenariosParallel):
// Logger is the repo's one sanctioned mutable global. The level gate is a
// relaxed atomic, the per-component override table is mutex-guarded
// (ECGRID_GUARDED_BY under the thread-safety preset), configure() may run
// while parallel scenario workers are logging (last writer wins; readers
// see either the old or the new table, never a torn one), and write()
// emits each line with a single stdio call so worker lines cannot
// interleave mid-line. The sim-time prefix clock is thread-local — each
// worker registers its own simulator. tests/log_test.cpp exercises
// configure-while-logging from parallel scenarios; the tsan preset holds
// it race-free.
#pragma once

#include <atomic>
#include <sstream>
#include <string>

#include "util/ownership.hpp"

namespace ecgrid::util {

enum class LogLevel : int {
  kOff = 0,
  kError = 1,
  kWarn = 2,
  kInfo = 3,
  kDebug = 4,
  kTrace = 5,
};

class ECGRID_DOMAIN_GLOBAL Logger {
 public:
  /// Current global level; defaults to kOff unless ECGRID_LOG is set.
  static LogLevel level();
  static void setLevel(LogLevel level);

  /// Apply a spec: "debug" or "info,mac=debug,route=trace". A bare level
  /// token sets the global level; tag=level pairs become per-component
  /// overrides. Previous overrides are cleared first; an empty spec just
  /// clears them. Unknown level names map to kOff, as in parseLevel.
  static void configure(const std::string& spec);

  /// Effective threshold for one component tag (its override, or the
  /// global level when none is set).
  static LogLevel levelFor(const char* tag);

  /// True when any per-component override is configured (fast atomic
  /// read; lets the enabled check skip the override lookup entirely).
  static bool hasOverrides();

  /// Emit one line to stderr: "[level] [tag] message", prefixed with
  /// "[t=<sim time>] " while a Simulator exists on this thread.
  static void write(LogLevel level, const std::string& tag,
                    const std::string& message);

  /// Parse "debug", "3", etc.; unknown strings map to kOff.
  static LogLevel parseLevel(const std::string& text);

 private:
  static std::atomic<int>& levelStorage();
};

/// RAII registration of a simulation clock for log-line prefixes. The
/// Simulator holds one pointing at its internal clock; registration is
/// thread-local (each parallel bench worker runs its own simulator), and
/// the previous clock — normally none — is restored on destruction.
class LogSimClock {
 public:
  explicit LogSimClock(const double* now);
  ~LogSimClock();
  LogSimClock(const LogSimClock&) = delete;
  LogSimClock& operator=(const LogSimClock&) = delete;

 private:
  const double* previous_;
};

inline bool logEnabled(LogLevel lvl) {
  return static_cast<int>(lvl) <= static_cast<int>(Logger::level());
}

/// Component-aware check: global level first (one atomic read, the common
/// path), then the per-tag override table only when one exists.
inline bool logEnabled(LogLevel lvl, const char* tag) {
  if (static_cast<int>(lvl) <= static_cast<int>(Logger::level())) return true;
  return Logger::hasOverrides() &&
         static_cast<int>(lvl) <= static_cast<int>(Logger::levelFor(tag));
}

}  // namespace ecgrid::util

#define ECGRID_LOG_AT(lvl, tag, expr)                            \
  do {                                                           \
    if (::ecgrid::util::logEnabled(lvl, tag)) {                  \
      std::ostringstream ecgrid_log_os;                          \
      ecgrid_log_os << expr;                                     \
      ::ecgrid::util::Logger::write(lvl, tag,                    \
                                    ecgrid_log_os.str());        \
    }                                                            \
  } while (false)

#define ECGRID_LOG_ERROR(tag, expr) \
  ECGRID_LOG_AT(::ecgrid::util::LogLevel::kError, tag, expr)
#define ECGRID_LOG_WARN(tag, expr) \
  ECGRID_LOG_AT(::ecgrid::util::LogLevel::kWarn, tag, expr)
#define ECGRID_LOG_INFO(tag, expr) \
  ECGRID_LOG_AT(::ecgrid::util::LogLevel::kInfo, tag, expr)
#define ECGRID_LOG_DEBUG(tag, expr) \
  ECGRID_LOG_AT(::ecgrid::util::LogLevel::kDebug, tag, expr)
#define ECGRID_LOG_TRACE(tag, expr) \
  ECGRID_LOG_AT(::ecgrid::util::LogLevel::kTrace, tag, expr)
