// Minimal leveled logger for simulator diagnostics.
//
// Logging is opt-in and cheap when disabled: each macro checks an atomic
// level before building the message. The level can be set programmatically
// (Logger::setLevel) or via the ECGRID_LOG environment variable
// ("error" | "warn" | "info" | "debug" | "trace"), read once at startup.
//
// Log lines carry the simulation component tag and are intended for humans
// debugging protocol behaviour, not for machine consumption — metrics go
// through ecgrid::stats instead.
#pragma once

#include <atomic>
#include <sstream>
#include <string>

namespace ecgrid::util {

enum class LogLevel : int {
  kOff = 0,
  kError = 1,
  kWarn = 2,
  kInfo = 3,
  kDebug = 4,
  kTrace = 5,
};

class Logger {
 public:
  /// Current global level; defaults to kOff unless ECGRID_LOG is set.
  static LogLevel level();
  static void setLevel(LogLevel level);

  /// Emit one line to stderr: "[level] [tag] message".
  static void write(LogLevel level, const std::string& tag,
                    const std::string& message);

  /// Parse "debug", "3", etc.; unknown strings map to kOff.
  static LogLevel parseLevel(const std::string& text);

 private:
  static std::atomic<int>& levelStorage();
};

inline bool logEnabled(LogLevel lvl) {
  return static_cast<int>(lvl) <= static_cast<int>(Logger::level());
}

}  // namespace ecgrid::util

#define ECGRID_LOG_AT(lvl, tag, expr)                            \
  do {                                                           \
    if (::ecgrid::util::logEnabled(lvl)) {                       \
      std::ostringstream ecgrid_log_os;                          \
      ecgrid_log_os << expr;                                     \
      ::ecgrid::util::Logger::write(lvl, tag,                    \
                                    ecgrid_log_os.str());        \
    }                                                            \
  } while (false)

#define ECGRID_LOG_ERROR(tag, expr) \
  ECGRID_LOG_AT(::ecgrid::util::LogLevel::kError, tag, expr)
#define ECGRID_LOG_WARN(tag, expr) \
  ECGRID_LOG_AT(::ecgrid::util::LogLevel::kWarn, tag, expr)
#define ECGRID_LOG_INFO(tag, expr) \
  ECGRID_LOG_AT(::ecgrid::util::LogLevel::kInfo, tag, expr)
#define ECGRID_LOG_DEBUG(tag, expr) \
  ECGRID_LOG_AT(::ecgrid::util::LogLevel::kDebug, tag, expr)
#define ECGRID_LOG_TRACE(tag, expr) \
  ECGRID_LOG_AT(::ecgrid::util::LogLevel::kTrace, tag, expr)
