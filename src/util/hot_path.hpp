// Hot-path memory-discipline vocabulary (allocation lint + alloc audit).
//
// Mirrors util/thread_annotations.hpp: a small macro vocabulary that
// declares, at the source level, which code is on the per-event hot path
// and which structs sit one-per-host (or one-per-event) in city-scale
// runs. The static tier is consumed by tools/ecgrid_lint, which forbids
// heap traffic inside annotated regions; the runtime tier is compiled
// only under the `alloc-audit` preset (-DECGRID_ALLOC_AUDIT=ON), where
// src/check/alloc_audit.{hpp,cpp} counts every global operator new that
// fires while a hot scope is open and the harness gate asserts the
// steady-state count is zero.
//
// Static tier (always no-ops; greppable markers for the lint):
//
//   ECGRID_HOT_PATH            function-level marker: the body is a hot
//                              region. Place it on the definition, before
//                              the return type or trailing after the
//                              signature; the region is the brace block
//                              that follows.
//   ECGRID_HOT_PATH_BEGIN      explicit sub-function region markers, for
//   ECGRID_HOT_PATH_END        when only part of a long function is hot.
//   ECGRID_LAYOUT_BUDGET(Type, Bytes)
//                              static_assert(sizeof(Type) <= Bytes):
//                              per-host / per-event structs carry one so
//                              a field added casually cannot silently
//                              fatten 100k slots. The lint's
//                              `layout-budget` rule enforces presence on
//                              the census (InlineTask, event slots,
//                              route-table entries, Radio).
//
// Inside a hot region the lint's `hot-path-allocation` rule bans
// new / make_shared / make_unique / std::function construction /
// std::string temporaries, and `hot-path-container-growth` bans
// un-reserve()d push_back / emplace_back / map insertion. Exceptions are
// suppressed per line with `// ecgrid-lint: allow(<rule>)` plus a
// justification, same as every other rule.
//
// Runtime tier:
//
//   ECGRID_HOT_SCOPE()         RAII statement marking the current thread
//                              as executing hot-path code until end of
//                              scope. Expands to nothing unless
//                              ECGRID_ALLOC_AUDIT is defined, so the
//                              default build pays zero cost.
//   ECGRID_ALLOC_EXEMPT()      RAII statement: allocations until end of
//                              scope are counted but not attributed as
//                              hot, even inside an open hot scope. For
//                              the one legitimate allocation class on
//                              the hot path — amortised high-water slab
//                              growth past the constructor reserve —
//                              never steady-state churn. Pair every use
//                              with a justifying comment, exactly like
//                              a lint allow(). No-op outside audit
//                              builds.
#pragma once

#define ECGRID_HOT_PATH
#define ECGRID_HOT_PATH_BEGIN
#define ECGRID_HOT_PATH_END

#define ECGRID_LAYOUT_BUDGET(Type, Bytes)                                \
  static_assert(sizeof(Type) <= (Bytes),                                 \
                "layout budget exceeded: sizeof(" #Type ") > " #Bytes    \
                " bytes — trim the struct or renegotiate the budget in " \
                "DESIGN.md §16")

namespace ecgrid::util {

/// Nesting depth of open hot scopes on the calling thread. Thread-local
/// so parallel scenario workers audit independently. Defined in every
/// build (it is one int); only audit builds ever increment it.
inline int& hotPathDepth() noexcept {
  thread_local int depth = 0;  // ecgrid-lint: allow(shared-mutable-global)
  return depth;
}

/// RAII body behind ECGRID_HOT_SCOPE(). Instantiate via the macro, not
/// directly, so non-audit builds compile the scope away entirely.
class HotPathScope {
 public:
  HotPathScope() noexcept { ++hotPathDepth(); }
  ~HotPathScope() { --hotPathDepth(); }
  HotPathScope(const HotPathScope&) = delete;
  HotPathScope& operator=(const HotPathScope&) = delete;
};

/// Nesting depth of open allocation exemptions (ECGRID_ALLOC_EXEMPT and
/// check::AllocExemptScope both sit on this counter). Lives here rather
/// than in src/check because the exempted call sites are in src/sim,
/// which check depends on — not the other way round.
inline int& hotPathExemptDepth() noexcept {
  thread_local int depth = 0;  // ecgrid-lint: allow(shared-mutable-global)
  return depth;
}

/// RAII body behind ECGRID_ALLOC_EXEMPT(). Instantiate via the macro.
class HotPathExemptScope {
 public:
  HotPathExemptScope() noexcept { ++hotPathExemptDepth(); }
  ~HotPathExemptScope() { --hotPathExemptDepth(); }
  HotPathExemptScope(const HotPathExemptScope&) = delete;
  HotPathExemptScope& operator=(const HotPathExemptScope&) = delete;
};

}  // namespace ecgrid::util

#if defined(ECGRID_ALLOC_AUDIT)
#define ECGRID_HOT_SCOPE_CONCAT_INNER(a, b) a##b
#define ECGRID_HOT_SCOPE_CONCAT(a, b) ECGRID_HOT_SCOPE_CONCAT_INNER(a, b)
#define ECGRID_HOT_SCOPE()            \
  const ::ecgrid::util::HotPathScope \
      ECGRID_HOT_SCOPE_CONCAT(ecgridHotScope_, __LINE__)
#define ECGRID_ALLOC_EXEMPT()               \
  const ::ecgrid::util::HotPathExemptScope \
      ECGRID_HOT_SCOPE_CONCAT(ecgridAllocExempt_, __LINE__)
#else
#define ECGRID_HOT_SCOPE() static_cast<void>(0)
#define ECGRID_ALLOC_EXEMPT() static_cast<void>(0)
#endif
