// Simplified 802.11-DCF-style CSMA MAC over the unit-disk channel.
//
// Access procedure per frame:
//   1. wait DIFS + a uniformly random number of 20 µs slots,
//   2. if the medium is sensed idle, transmit; otherwise draw a fresh
//      backoff and retry (bounded).
//
// Unicast frames are acknowledged: the receiver returns a MAC-level ACK
// after SIFS, and the sender retransmits (fresh backoff, doubled
// contention window) up to `retryLimit` times before dropping — the same
// stop-and-wait ARQ the paper's ns-2 802.11 MAC provides, which is what
// pushes per-hop reliability high enough for the >99 % end-to-end
// delivery the paper reports. Receivers suppress duplicate deliveries of
// retransmitted frames by (source, MAC sequence number).
//
// Broadcast frames are fire-and-forget but get a random jitter so the
// synchronized rebroadcasts of flooding protocols de-correlate — the
// standard broadcast-storm mitigation.
#pragma once

#include <functional>
#include <set>
#include <utility>

#include "net/link_layer.hpp"
#include "net/packet.hpp"
#include "obs/metrics.hpp"
#include "phy/channel.hpp"
#include "phy/radio.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"
#include "util/bounded_ring.hpp"
#include "util/hot_path.hpp"
#include "util/ownership.hpp"

namespace ecgrid::mac {

/// MAC-level acknowledgement. Never reaches the routing layer.
class AckHeader final : public net::Header {
 public:
  explicit AckHeader(std::uint64_t ackedSeq) : ackedSeq_(ackedSeq) {}
  std::uint64_t ackedSeq() const { return ackedSeq_; }
  int bytes() const override { return 2; }  // + MAC framing = 36 B on air
  const char* name() const override { return "ACK"; }

 private:
  std::uint64_t ackedSeq_;
};

struct CsmaConfig {
  double difsSeconds = 50e-6;
  double sifsSeconds = 10e-6;
  double slotSeconds = 20e-6;
  int contentionWindowMin = 16;   ///< backoff drawn from [0, cw-1] slots
  int contentionWindowMax = 256;  ///< cw doubles per retry up to this
  int maxAccessAttempts = 12;     ///< medium-busy re-draws before dropping
  int retryLimit = 6;             ///< unicast retransmissions before dropping
  double ackTimeoutSeconds = 1.2e-3;  ///< from end of data tx
  double broadcastJitterSeconds = 25e-3;
  std::size_t queueLimit = 128;   ///< tail-drop beyond this
  std::size_t dedupWindow = 512;  ///< remembered (src, seq) pairs
};

class ECGRID_DOMAIN_PER_HOST CsmaMac final : public net::LinkLayer {
 public:
  CsmaMac(sim::Simulator& sim, phy::Radio& radio, phy::Channel& channel,
          const CsmaConfig& config, sim::RngStream rng);

  CsmaMac(const CsmaMac&) = delete;
  CsmaMac& operator=(const CsmaMac&) = delete;

  // LinkLayer
  void send(net::Packet packet) override;
  void setReceiveCallback(std::function<void(const net::Packet&)> cb) override;
  void setSendFailureCallback(
      std::function<void(const net::Packet&)> cb) override;
  std::size_t queueDepth() const override { return queue_.size(); }
  void clearQueue() override;

  std::uint64_t framesSent() const { return framesSent_; }
  std::uint64_t framesDropped() const { return framesDropped_; }
  std::uint64_t acksSent() const { return acksSent_; }
  std::uint64_t acksSkipped() const { return acksSkipped_; }
  std::uint64_t retransmissions() const { return retransmissions_; }

 private:
  struct Pending {
    net::Packet packet;
    int busyRetries = 0;  ///< access attempts foiled by a busy medium
    int txAttempts = 0;   ///< actual transmissions (ARQ)
    int cw = 0;           ///< current contention window
  };
  /// One per queued frame, ring-resident up to queueLimit deep per host.
  ECGRID_LAYOUT_BUDGET(Pending, 64);

  void onRadioFrame(const net::Packet& frame);
  void scheduleAccess();
  void tryTransmit();
  void onTxComplete();
  void onAckTimeout();
  void finishFront(bool delivered);
  void sendAck(net::NodeId to, std::uint64_t seq);

  sim::Simulator& sim_;
  phy::Radio& radio_;
  phy::Channel& channel_;
  CsmaConfig config_;
  sim::RngStream rng_;

  /// FIFO of frames awaiting channel access, bounded by queueLimit.
  /// A ring, not a deque: deque block churn on pop/push is steady-state
  /// allocation the hot-path lint and alloc-audit gate both flag.
  util::BoundedRing<Pending> queue_;
  bool accessPending_ = false;
  bool transmitting_ = false;
  bool awaitingAck_ = false;
  sim::EventHandle accessTimer_;
  sim::EventHandle ackTimer_;

  std::uint64_t nextMacSeq_ = 1;
  std::function<void(const net::Packet&)> upperReceive_;
  std::function<void(const net::Packet&)> sendFailure_;

  // Duplicate suppression for retransmitted unicasts. The set carries a
  // lint allow where it grows: node-based churn, but bounded at
  // dedupWindow entries and evicted in FIFO order by the ring below.
  std::set<std::pair<net::NodeId, std::uint64_t>> seen_;
  util::BoundedRing<std::pair<net::NodeId, std::uint64_t>> seenOrder_;

  std::uint64_t framesSent_ = 0;
  std::uint64_t framesDropped_ = 0;
  std::uint64_t acksSent_ = 0;
  std::uint64_t acksSkipped_ = 0;
  std::uint64_t retransmissions_ = 0;
  // Registry mirrors of the counters above (inert without an
  // Observability hub; see obs/observability.hpp). Shared across all MACs
  // on the simulator: re-registering a name returns the same cell.
  obs::Counter mFramesSent_;
  obs::Counter mFramesDropped_;
  obs::Counter mAcksSent_;
  obs::Counter mAcksSkipped_;
  obs::Counter mRetransmissions_;
};

}  // namespace ecgrid::mac
