#include "mac/csma.hpp"

#include <algorithm>

#include "obs/observability.hpp"
#include "util/error.hpp"
#include "util/log.hpp"

namespace ecgrid::mac {

namespace {
constexpr const char* kTag = "mac";
}

CsmaMac::CsmaMac(sim::Simulator& sim, phy::Radio& radio, phy::Channel& channel,
                 const CsmaConfig& config, sim::RngStream rng)
    : sim_(sim),
      radio_(radio),
      channel_(channel),
      config_(config),
      rng_(std::move(rng)),
      mFramesSent_(obs::counter(sim, "mac.frames_sent")),
      mFramesDropped_(obs::counter(sim, "mac.frames_dropped")),
      mAcksSent_(obs::counter(sim, "mac.acks_sent")),
      mAcksSkipped_(obs::counter(sim, "mac.acks_skipped")),
      mRetransmissions_(obs::counter(sim, "mac.retransmissions")) {
  ECGRID_REQUIRE(config.contentionWindowMin >= 1, "contention window >= 1");
  ECGRID_REQUIRE(config.maxAccessAttempts >= 1, "need at least one attempt");
  ECGRID_REQUIRE(config.retryLimit >= 0, "retry limit cannot be negative");
  // Steady-depth floors; both rings grow geometrically toward their
  // config bounds only under congestion, so an idle host stays small.
  queue_.reserve(16);
  seenOrder_.reserve(64);
  radio_.setTxCompleteCallback([this] { onTxComplete(); });
  radio_.setFrameCallback(
      [this](const net::Packet& frame) { onRadioFrame(frame); });
  // NAV reservation: overheard unicasts keep neighbours quiet through the
  // receiver's SIFS + ACK.
  net::Packet ackSize;
  ackSize.header = std::make_shared<AckHeader>(0);
  radio_.setNavGuard(config_.sifsSeconds +
                     channel_.frameAirtime(ackSize.bytes()) + 20e-6);
}

void CsmaMac::setReceiveCallback(std::function<void(const net::Packet&)> cb) {
  upperReceive_ = std::move(cb);
}

void CsmaMac::setSendFailureCallback(
    std::function<void(const net::Packet&)> cb) {
  sendFailure_ = std::move(cb);
}

// --------------------------------------------------------------------------
// receive path

ECGRID_HOT_PATH void CsmaMac::onRadioFrame(const net::Packet& frame) {
  if (const auto* ack = frame.headerAs<AckHeader>()) {
    if (awaitingAck_ && !queue_.empty() &&
        queue_.front().packet.macSeq == ack->ackedSeq() &&
        queue_.front().packet.macDst == frame.macSrc) {
      awaitingAck_ = false;
      ackTimer_.cancel();
      finishFront(/*delivered=*/true);
    }
    return;
  }

  if (!net::isBroadcast(frame.macDst)) {
    // Unicast for us: acknowledge, and deliver only the first copy.
    sendAck(frame.macSrc, frame.macSeq);
    auto key = std::make_pair(frame.macSrc, frame.macSeq);
    // Node churn bounded at dedupWindow entries; the ring evicts FIFO.
    if (!seen_.insert(key).second) return;  // ARQ duplicate  // ecgrid-lint: allow(hot-path-container-growth)
    seenOrder_.push_back(key);
    if (seenOrder_.size() > config_.dedupWindow) {
      seen_.erase(seenOrder_.front());
      seenOrder_.pop_front();
    }
  }
  if (upperReceive_) upperReceive_(frame);
}

ECGRID_HOT_PATH void CsmaMac::sendAck(net::NodeId to, std::uint64_t seq) {
  net::Packet ack;
  ack.macSrc = radio_.id();
  ack.macDst = to;
  // The ACK header is the protocol's wire object — one allocation per
  // acknowledged frame, shared by every copy the channel fans out.
  ack.header = std::make_shared<AckHeader>(seq);  // ecgrid-lint: allow(hot-path-allocation)
  sim_.schedule(
      config_.sifsSeconds,
      [this, ack] {
        // The ACK pre-empts normal traffic (SIFS < DIFS) but cannot
        // interrupt a transmission already in progress — the data sender
        // will simply retransmit in that (rare) case.
        if (radio_.dead() || radio_.sleeping() ||
            radio_.state() == phy::RadioState::kTx) {
          ++acksSkipped_;
          mAcksSkipped_.add();
          return;
        }
        ++acksSent_;
        mAcksSent_.add();
        radio_.transmit(ack, channel_.frameAirtime(ack.bytes()));
      },
      "mac/ack");
}

// --------------------------------------------------------------------------
// send path

ECGRID_HOT_PATH void CsmaMac::send(net::Packet packet) {
  ECGRID_REQUIRE(packet.header != nullptr, "packet must carry a header");
  if (radio_.dead() || radio_.sleeping()) {
    ++framesDropped_;
    mFramesDropped_.add();
    if (auto* tracer = obs::tracer(sim_)) {
      tracer->instant("mac", "drop", radio_.id(),
                      {{"reason", "radio_down"},
                       {"hdr", packet.header->name()}});
    }
    return;
  }
  if (queue_.size() >= config_.queueLimit) {
    ++framesDropped_;
    mFramesDropped_.add();
    if (auto* tracer = obs::tracer(sim_)) {
      tracer->instant("mac", "drop", radio_.id(),
                      {{"reason", "queue_overflow"},
                       {"hdr", packet.header->name()}});
    }
    ECGRID_LOG_DEBUG(kTag, "node " << radio_.id() << " queue overflow, drop "
                                   << packet.header->name());
    return;
  }
  packet.macSeq = nextMacSeq_++;
  if (auto* tracer = obs::tracer(sim_)) {
    tracer->instant("mac", "enqueue", radio_.id(),
                    {{"seq", packet.macSeq},
                     {"dst", packet.macDst},
                     {"hdr", packet.header->name()}});
  }
  Pending pending;
  pending.packet = std::move(packet);
  pending.cw = config_.contentionWindowMin;
  queue_.push_back(std::move(pending));
  scheduleAccess();
}

void CsmaMac::clearQueue() {
  framesDropped_ += queue_.size();
  mFramesDropped_.add(queue_.size());
  queue_.clear();
  accessTimer_.cancel();
  ackTimer_.cancel();
  accessPending_ = false;
  awaitingAck_ = false;
  // Also drop the transmit latch: a crash mid-transmission cancels the
  // radio's tx-end event, so onTxComplete would never clear it and the
  // MAC would be wedged forever after restart.
  transmitting_ = false;
}

ECGRID_HOT_PATH void CsmaMac::scheduleAccess() {
  if (accessPending_ || transmitting_ || awaitingAck_ || queue_.empty()) {
    return;
  }
  accessPending_ = true;
  Pending& front = queue_.front();
  double backoffSlots = static_cast<double>(rng_.uniformInt(0, front.cw - 1));
  double delay = config_.difsSeconds + backoffSlots * config_.slotSeconds;
  if (net::isBroadcast(front.packet.macDst) &&
      config_.broadcastJitterSeconds > 0.0 && front.txAttempts == 0 &&
      front.busyRetries == 0) {
    delay += rng_.uniform(0.0, config_.broadcastJitterSeconds);
  }
  accessTimer_ =
      sim_.schedule(delay, [this] { tryTransmit(); }, "mac/access");
}

ECGRID_HOT_PATH void CsmaMac::tryTransmit() {
  accessPending_ = false;
  if (queue_.empty() || transmitting_ || awaitingAck_) return;
  if (radio_.dead() || radio_.sleeping()) {
    clearQueue();
    return;
  }
  Pending& front = queue_.front();
  if (radio_.mediumBusy() || radio_.mediumIdleAt() > sim_.now()) {
    if (++front.busyRetries >= config_.maxAccessAttempts) {
      ECGRID_LOG_DEBUG(kTag, "node " << radio_.id()
                                     << " exceeded access attempts, drop "
                                     << front.packet.header->name());
      if (auto* tracer = obs::tracer(sim_)) {
        tracer->instant("mac", "drop", radio_.id(),
                        {{"reason", "access_exhausted"},
                         {"seq", front.packet.macSeq},
                         {"hdr", front.packet.header->name()}});
      }
      finishFront(/*delivered=*/false);
      return;
    }
    // DCF-style deferral: wait out the sensed activity, then contend with
    // a fresh DIFS + backoff (802.11 freezes backoff while busy; deferring
    // to the estimated idle point is the event-driven equivalent).
    accessPending_ = true;
    double wait = radio_.mediumIdleAt() - sim_.now();
    if (wait < 0.0) wait = 0.0;
    double backoffSlots =
        static_cast<double>(rng_.uniformInt(0, front.cw - 1));
    accessTimer_ = sim_.schedule(
        wait + config_.difsSeconds + backoffSlots * config_.slotSeconds,
        [this] { tryTransmit(); }, "mac/access");
    return;
  }
  transmitting_ = true;
  ++front.txAttempts;
  if (front.txAttempts > 1) {
    ++retransmissions_;
    mRetransmissions_.add();
  }
  if (auto* tracer = obs::tracer(sim_)) {
    tracer->instant("mac", "tx", radio_.id(),
                    {{"seq", front.packet.macSeq},
                     {"attempt", front.txAttempts},
                     {"hdr", front.packet.header->name()}});
  }
  radio_.transmit(front.packet, channel_.frameAirtime(front.packet.bytes()));
}

ECGRID_HOT_PATH void CsmaMac::onTxComplete() {
  if (!transmitting_) {
    // An ACK we sent finished; resume normal access if work is queued.
    if (!radio_.sleeping() && !radio_.dead()) scheduleAccess();
    return;
  }
  transmitting_ = false;
  if (radio_.sleeping() || radio_.dead()) {
    clearQueue();
    return;
  }
  ECGRID_CHECK(!queue_.empty(), "tx completed with empty queue");
  Pending& front = queue_.front();
  if (net::isBroadcast(front.packet.macDst)) {
    finishFront(/*delivered=*/true);
    return;
  }
  awaitingAck_ = true;
  ackTimer_ = sim_.schedule(
      config_.ackTimeoutSeconds, [this] { onAckTimeout(); },
      "mac/ack_timeout");
}

ECGRID_HOT_PATH void CsmaMac::onAckTimeout() {
  if (!awaitingAck_) return;
  awaitingAck_ = false;
  ECGRID_CHECK(!queue_.empty(), "ack timeout with empty queue");
  Pending& front = queue_.front();
  ECGRID_LOG_TRACE(kTag, "node " << radio_.id() << " ack-timeout "
                                 << front.packet.header->name() << " to "
                                 << front.packet.macDst << " attempt "
                                 << front.txAttempts);
  if (front.txAttempts > config_.retryLimit) {
    ECGRID_LOG_DEBUG(kTag, "node " << radio_.id() << " retry limit, drop "
                                   << front.packet.header->name() << " to "
                                   << front.packet.macDst);
    if (auto* tracer = obs::tracer(sim_)) {
      tracer->instant("mac", "drop", radio_.id(),
                      {{"reason", "retry_limit"},
                       {"seq", front.packet.macSeq},
                       {"dst", front.packet.macDst},
                       {"hdr", front.packet.header->name()}});
    }
    finishFront(/*delivered=*/false);
    return;
  }
  front.cw = std::min(front.cw * 2, config_.contentionWindowMax);
  scheduleAccess();
}

ECGRID_HOT_PATH void CsmaMac::finishFront(bool delivered) {
  ECGRID_CHECK(!queue_.empty(), "finishing with empty queue");
  net::Packet failed;
  bool notify = false;
  if (delivered) {
    ++framesSent_;
    mFramesSent_.add();
    if (auto* tracer = obs::tracer(sim_)) {
      tracer->instant("mac", "sent", radio_.id(),
                      {{"seq", queue_.front().packet.macSeq},
                       {"hdr", queue_.front().packet.header->name()}});
    }
  } else {
    ++framesDropped_;
    mFramesDropped_.add();
    if (sendFailure_ && !net::isBroadcast(queue_.front().packet.macDst)) {
      failed = queue_.front().packet;
      notify = true;
    }
  }
  queue_.pop_front();
  // Notify after popping: the callback may re-route and re-enqueue.
  if (notify) sendFailure_(failed);
  scheduleAccess();
}

}  // namespace ecgrid::mac
