// GRID — the energy-oblivious baseline (Liao, Tseng, Sheu 2001; paper §1).
//
// Same grid partition, same gateway-centric grid-by-grid routing as
// ECGRID, but no energy management whatsoever: the election ignores
// battery levels (distance-to-centre then smallest ID), no host ever
// sleeps, and there is no load-balance retirement. Every host therefore
// idles at 830 mW (+GPS) and the whole network burns down at
// ≈ E₀ / (idle + GPS) — the paper's ≈590 s wall.
#pragma once

#include "protocols/common/grid_protocol_base.hpp"
#include "util/ownership.hpp"

namespace ecgrid::protocols {

class ECGRID_DOMAIN_PER_HOST GridProtocol final : public GridProtocolBase {
 public:
  GridProtocol(net::HostEnv& env, GridProtocolConfig config)
      : GridProtocolBase(env, disableEnergyRules(std::move(config))) {}

  const char* name() const override { return "GRID"; }

 private:
  static GridProtocolConfig disableEnergyRules(GridProtocolConfig config) {
    config.election.useBatteryLevel = false;
    return config;
  }
};

}  // namespace ecgrid::protocols
