#include "protocols/gaf/gaf_protocol.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/hot_path.hpp"
#include "util/log.hpp"

namespace ecgrid::protocols {

namespace {
constexpr const char* kTag = "gaf";
using NodeState = GafDiscoveryHeader::NodeState;
}  // namespace

GafProtocol::GafProtocol(net::HostEnv& env, const GafConfig& config)
    : env_(env),
      config_(config),
      engine_(env, makeHooks(), config.routing),
      rng_(env.simulator().rng().stream("gaf", env.id())) {}

RoutingEngine::Hooks GafProtocol::makeHooks() {
  RoutingEngine::Hooks hooks;
  hooks.isRouter = [this] {
    // Model-1 endpoints route for themselves: they originate discoveries
    // and answer RREQs addressed to them, but never lead a grid.
    return state_ == State::kActive || config_.endpointMode;
  };
  hooks.mayRelayRreq = [this] {
    return state_ == State::kActive && !config_.endpointMode;
  };
  hooks.routerOf =
      [this](const geo::GridCoord& grid) -> std::optional<net::NodeId> {
    sim::Time now = env_.simulator().now();
    if (state_ == State::kActive && grid == env_.cell()) return env_.id();
    // Freshest known active node in that grid that is still within reach.
    geo::Vec2 here = env_.position();
    std::optional<net::NodeId> best;
    sim::Time bestHeard = sim::kTimeZero;
    for (const auto& [id, s] : sightings_) {
      if (s.grid != grid || s.state != NodeState::kActive) continue;
      if (now - s.lastHeard > config_.sightingStale) continue;
      if (here.distanceTo(s.position) > config_.routing.maxForwardDistance) {
        continue;
      }
      if (!best.has_value() || s.lastHeard > bestHeard) {
        best = id;
        bestHeard = s.lastHeard;
      }
    }
    return best;
  };
  hooks.hostIsLocal = [this](net::NodeId host) {
    // GAF has no host table: a host is reachable only while it beacons —
    // i.e. while it is awake. This is exactly GAF's sleeping-destination
    // blind spot (paper §1).
    sim::Time now = env_.simulator().now();
    auto it = sightings_.find(host);
    if (it == sightings_.end()) return false;
    return it->second.grid == env_.cell() &&
           now - it->second.lastHeard <= config_.sightingStale;
  };
  hooks.deliverLocal = [this](net::NodeId dst, const net::Packet& frame) {
    if (dst == env_.id()) {
      const auto* data = frame.headerAs<DataHeader>();
      ECGRID_CHECK(data != nullptr, "local delivery of non-data frame");
      env_.deliverToApp(data->appSrc(), data->tag(), data->payloadBytes());
      return;
    }
    unicastFrame(dst, frame.header);
  };
  hooks.locationHint =
      [this](net::NodeId host) -> std::optional<geo::GridCoord> {
    if (config_.locationHint) return config_.locationHint(host);
    return std::nullopt;
  };
  hooks.observeRouter = [this](const geo::GridCoord& grid, net::NodeId id,
                               const geo::Vec2& position) {
    if (id == env_.id()) return;
    Sighting s;
    s.state = NodeState::kActive;
    s.rank = 0.0;
    s.enatRemaining = 0.0;
    s.lastHeard = env_.simulator().now();
    s.grid = grid;
    s.position = position;
    sightings_[id] = s;
  };
  return hooks;
}

// --------------------------------------------------------------------------
// state machine

void GafProtocol::start() {
  if (config_.endpointMode) {
    // Model-1 endpoint: always active, never leads, never forwards.
    state_ = State::kDiscovery;  // placeholder; endpoints just beacon
    beacon();
    beaconTick();
    return;
  }
  enterDiscovery();
  beaconTick();
}

void GafProtocol::onShutdown() {
  state_ = State::kDead;
  stateTimer_.cancel();
  beaconTimer_.cancel();
  engine_.stopRouting();
  appPending_.clear();
}

double GafProtocol::myRank() { return env_.batteryRatio(); }

void GafProtocol::enterDiscovery() {
  if (state_ == State::kDead) return;
  state_ = State::kDiscovery;
  discoveryStartedAt_ = env_.simulator().now();
  env_.wakeRadio();
  beacon();
  stateTimer_.cancel();
  stateTimer_ = env_.simulator().schedule(
      config_.discoveryWindow * (1.0 + rng_.uniform(0.0, 0.5)),
      [this] { endDiscovery(); });
}

void GafProtocol::endDiscovery() {
  if (state_ != State::kDiscovery || config_.endpointMode) return;
  sim::Time now = env_.simulator().now();
  geo::GridCoord myGrid = env_.cell();

  // An existing leader in this grid sends us to sleep for its remaining
  // active time.
  for (const auto& [id, s] : sightings_) {
    if (s.grid != myGrid || now - s.lastHeard > config_.sightingStale) continue;
    if (s.state == NodeState::kActive) {
      sleepFor(std::clamp(s.enatRemaining, config_.minSleepTime,
                          config_.maxSleepTime));
      return;
    }
  }
  // A higher-ranked fellow discoverer wins; back off briefly and re-check.
  double rank = myRank();
  for (const auto& [id, s] : sightings_) {
    if (s.grid != myGrid || now - s.lastHeard > config_.discoveryWindow * 2) {
      continue;
    }
    if (s.state != NodeState::kDiscovery) continue;
    if (s.rank > rank || (s.rank == rank && id < env_.id())) {
      sleepFor(std::clamp(config_.discoveryWindow * 4.0,
                          config_.minSleepTime, config_.maxSleepTime));
      return;
    }
  }
  becomeActive();
}

void GafProtocol::becomeActive() {
  if (state_ == State::kDead) return;
  state_ = State::kActive;
  env_.wakeRadio();
  // Ta: bounded by how long GPS says we will stay in this grid.
  sim::Time dwell = env_.nextPossibleCellExit() - env_.simulator().now();
  sim::Time ta = std::clamp(dwell, config_.minSleepTime, config_.maxActiveTime);
  activeUntil_ = env_.simulator().now() + ta;
  beacon();
  flushAppQueue();
  stateTimer_.cancel();
  stateTimer_ = env_.simulator().schedule(ta, [this] {
    if (state_ != State::kActive) return;
    engine_.stopRouting();
    enterDiscovery();  // hand the grid over (GAF load balancing)
  });
}

void GafProtocol::sleepFor(sim::Time duration) {
  if (state_ == State::kDead || config_.endpointMode) return;
  if (!appPending_.empty()) {
    // Data waiting for a leader: stay up in discovery instead.
    return;
  }
  state_ = State::kSleep;
  engine_.stopRouting();
  env_.sleepRadio();
  stateTimer_.cancel();
  stateTimer_ = env_.simulator().schedule(duration, [this] {
    if (state_ != State::kSleep) return;
    // Ts expired: wake and re-run discovery (the periodic wakeup the
    // paper contrasts ECGRID's paging against).
    enterDiscovery();
  });
}

// --------------------------------------------------------------------------
// beacons

ECGRID_HOT_PATH void GafProtocol::beacon() {
  if (state_ == State::kDead || state_ == State::kSleep) return;
  NodeState advertised = config_.endpointMode ? NodeState::kEndpoint
                         : state_ == State::kActive ? NodeState::kActive
                                                    : NodeState::kDiscovery;
  double enat = state_ == State::kActive
                    ? std::max(0.0, activeUntil_ - env_.simulator().now())
                    : 0.0;
  // The discovery header is GAF's wire object — one allocation per
  // beacon, shared by every copy the channel fans out.
  auto disc = std::make_shared<GafDiscoveryHeader>(  // ecgrid-lint: allow(hot-path-allocation)
      env_.id(), env_.cell(), advertised, myRank(), enat, env_.position());
  net::Packet frame;
  frame.macSrc = env_.id();
  frame.macDst = net::kBroadcastId;
  frame.header = std::move(disc);
  env_.link().send(frame);
}

ECGRID_HOT_PATH void GafProtocol::beaconTick() {
  if (state_ == State::kDead) return;
  if (state_ != State::kSleep) beacon();
  beaconTimer_ = env_.simulator().schedule(
      config_.beaconInterval *
          (1.0 + rng_.uniform(0.0, config_.beaconJitterFrac)),
      [this] { beaconTick(); });
}

// --------------------------------------------------------------------------
// frames

ECGRID_HOT_PATH void GafProtocol::handleDiscovery(const net::Packet& frame,
                                  const GafDiscoveryHeader& disc) {
  (void)frame;
  sim::Time now = env_.simulator().now();
  Sighting s;
  s.state = disc.state();
  s.rank = disc.rank();
  s.enatRemaining = disc.enatRemaining();
  s.lastHeard = now;
  s.grid = disc.grid();
  s.position = disc.position();
  sightings_[disc.id()] = s;

  if (config_.endpointMode) return;
  if (disc.grid() != env_.cell()) return;
  if (disc.state() != NodeState::kActive) return;

  if (state_ == State::kDiscovery) {
    // Leader already exists: stop discovering, sleep for its enat.
    stateTimer_.cancel();
    sleepFor(std::clamp(disc.enatRemaining(), config_.minSleepTime,
                        config_.maxSleepTime));
  } else if (state_ == State::kActive && disc.id() != env_.id()) {
    // Two leaders (grid merge): the lower-ranked one yields.
    double rank = myRank();
    if (disc.rank() > rank || (disc.rank() == rank && disc.id() < env_.id())) {
      engine_.stopRouting();
      sleepFor(std::clamp(disc.enatRemaining(), config_.minSleepTime,
                          config_.maxSleepTime));
    }
  }
}

ECGRID_HOT_PATH void GafProtocol::onFrame(const net::Packet& packet) {
  if (state_ == State::kDead || state_ == State::kSleep) return;
  if (const auto* disc = packet.headerAs<GafDiscoveryHeader>()) {
    handleDiscovery(packet, *disc);
    return;
  }
  if (const auto* data = packet.headerAs<DataHeader>()) {
    if (data->appDst() == env_.id()) {
      env_.deliverToApp(data->appSrc(), data->tag(), data->payloadBytes());
      return;
    }
    if (config_.endpointMode) {
      return;  // Model 1: endpoints do not forward traffic
    }
    if (state_ == State::kActive) {
      engine_.routeData(packet, *data);
    } else if (auto leader = localLeader();
               leader.has_value() && *leader != packet.macSrc) {
      unicastFrame(*leader, packet.header);
    }
    return;
  }
  if (state_ == State::kActive || config_.endpointMode) {
    engine_.onFrame(packet);
  }
}

std::optional<net::NodeId> GafProtocol::localLeader() {
  sim::Time now = env_.simulator().now();
  geo::GridCoord myGrid = env_.cell();
  std::optional<net::NodeId> best;
  sim::Time bestHeard = sim::kTimeZero;
  for (const auto& [id, s] : sightings_) {
    if (s.grid != myGrid || s.state != NodeState::kActive) continue;
    if (now - s.lastHeard > config_.sightingStale) continue;
    if (!best.has_value() || s.lastHeard > bestHeard) {
      best = id;
      bestHeard = s.lastHeard;
    }
  }
  return best;
}

// --------------------------------------------------------------------------
// application data

void GafProtocol::sendData(net::NodeId destination, int payloadBytes,
                           const net::DataTag& tag) {
  if (state_ == State::kDead) return;
  auto header = std::make_shared<DataHeader>(env_.id(), destination,
                                             payloadBytes, tag);
  if (state_ == State::kSleep) {
    // Wake into discovery; the data flows once a leader is found (or we
    // become one).
    stateTimer_.cancel();
    appPending_.push_back(std::move(header));
    enterDiscovery();
    return;
  }
  if (state_ == State::kActive || config_.endpointMode) {
    net::Packet frame;
    frame.macSrc = env_.id();
    frame.macDst = env_.id();
    frame.header = header;
    engine_.routeData(frame, *header);
    return;
  }
  if (auto leader = localLeader(); leader.has_value()) {
    unicastFrame(*leader, header);
    return;
  }
  if (appPending_.size() >= config_.appPendingLimit) appPending_.pop_front();
  appPending_.push_back(std::move(header));
}

void GafProtocol::flushAppQueue() {
  if (appPending_.empty()) return;
  std::deque<std::shared_ptr<const net::Header>> pending;
  pending.swap(appPending_);
  for (auto& header : pending) {
    const auto* data = dynamic_cast<const DataHeader*>(header.get());
    ECGRID_CHECK(data != nullptr, "app queue held a non-data header");
    if (state_ == State::kActive) {
      net::Packet frame;
      frame.macSrc = env_.id();
      frame.macDst = env_.id();
      frame.header = header;
      engine_.routeData(frame, *data);
    } else if (auto leader = localLeader(); leader.has_value()) {
      unicastFrame(*leader, header);
    } else {
      appPending_.push_back(header);  // still no leader
    }
  }
}

// --------------------------------------------------------------------------
// misc

void GafProtocol::onPaged(const net::PageSignal&) {
  // GAF predates the RAS idea — pages are meaningless to it.
}

void GafProtocol::onSendFailed(const net::Packet& packet) {
  if (state_ == State::kDead) return;
  const auto* data = packet.headerAs<DataHeader>();
  if (data == nullptr) return;
  // The believed leader did not acknowledge — it slept or left. Purge the
  // sighting and re-route (bounded), re-discovering if needed.
  sightings_.erase(packet.macDst);
  if (packet.routeRetries >= config_.routing.maxRouteRetries) return;
  net::Packet retry = packet;
  retry.routeRetries = packet.routeRetries + 1;
  if (state_ == State::kActive || config_.endpointMode) {
    engine_.routes().erase(data->appDst());
    engine_.routeData(retry, *data);
  } else if (auto leader = localLeader(); leader.has_value()) {
    unicastFrame(*leader, retry.header);
  }
}

void GafProtocol::onCellChanged(const geo::GridCoord& from,
                                const geo::GridCoord& to) {
  (void)from;
  (void)to;
  if (state_ == State::kDead) return;
  if (config_.endpointMode) return;
  // Whatever we were doing belonged to the old grid; rejoin as a
  // discoverer in the new one.
  if (state_ == State::kActive) engine_.stopRouting();
  if (state_ == State::kDiscovery &&
      discoveryStartedAt_ == env_.simulator().now()) {
    // The active-handover timer (Ta bounded by the dwell estimate) fires
    // at this same instant and already re-entered discovery; restarting
    // it here would beacon twice and draw a second discovery window,
    // making the outcome depend on same-instant event order.
    return;
  }
  stateTimer_.cancel();
  enterDiscovery();
}

ECGRID_HOT_PATH void GafProtocol::unicastFrame(net::NodeId to,
                               std::shared_ptr<const net::Header> header) {
  net::Packet frame;
  frame.macSrc = env_.id();
  frame.macDst = to;
  frame.header = std::move(header);
  env_.link().send(frame);
}

}  // namespace ecgrid::protocols
