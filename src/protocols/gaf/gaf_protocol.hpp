// GAF — Geographical Adaptive Fidelity (Xu, Heidemann, Estrin, MobiCom'01),
// re-implemented as the paper's second baseline (§1, §4).
//
// GAF partitions the plane into the same grids and keeps one *leader*
// (active node) per grid, but manages activity with timers instead of a
// gateway protocol:
//   * Discovery: radio on, beacon, listen for Td; an existing leader or a
//     higher-ranked discoverer sends the node to sleep, otherwise it
//     becomes the leader;
//   * Active: lead (route) for Ta — bounded by the GPS dwell estimate —
//     then return to Discovery so the grid load-balances;
//   * Sleep: radio off for Ts, then wake into Discovery. Sleepers wake
//     *periodically*; there is no paging. Consequently GAF cannot wake a
//     sleeping destination — the deficiency ECGRID fixes — so the paper's
//     evaluation grants GAF "Model 1": ten infinite-energy, always-active
//     endpoint hosts that source/sink all traffic and never forward.
//
// Ranking: active beats discovery; ties break by higher remaining battery
// ratio (our stand-in for GAF's expected-node-active-time), then lower id.
#pragma once

#include <cstdint>

#include <deque>
#include <functional>
#include <map>
#include <optional>

#include "net/host_env.hpp"
#include "net/routing_protocol.hpp"
#include "protocols/common/messages.hpp"
#include "protocols/common/routing_engine.hpp"
#include "sim/rng.hpp"
#include "util/ownership.hpp"

namespace ecgrid::protocols {

/// GAF discovery beacon: node id, grid, state, rank, and the announced
/// remaining active time (enat) sleepers base Ts on.
class GafDiscoveryHeader final : public net::Header {
 public:
  enum class NodeState : std::uint8_t { kDiscovery, kActive, kEndpoint };

  GafDiscoveryHeader(net::NodeId id, geo::GridCoord grid, NodeState state,
                     double rank, double enatRemaining, geo::Vec2 position)
      : id_(id), grid_(grid), state_(state), rank_(rank),
        enatRemaining_(enatRemaining), position_(position) {}

  net::NodeId id() const { return id_; }
  const geo::GridCoord& grid() const { return grid_; }
  NodeState state() const { return state_; }
  double rank() const { return rank_; }
  double enatRemaining() const { return enatRemaining_; }
  const geo::Vec2& position() const { return position_; }

  int bytes() const override { return 32; }
  const char* name() const override { return "GAF-DISC"; }

 private:
  net::NodeId id_;
  geo::GridCoord grid_;
  NodeState state_;
  double rank_;
  double enatRemaining_;
  geo::Vec2 position_;
};

struct GafConfig {
  sim::Time beaconInterval = 2.0;   ///< discovery-message period when awake
  double beaconJitterFrac = 0.1;
  sim::Time discoveryWindow = 0.6;  ///< Td
  sim::Time maxActiveTime = 60.0;   ///< Ta cap
  sim::Time maxSleepTime = 60.0;    ///< Ts cap
  sim::Time minSleepTime = 1.0;
  sim::Time sightingStale = 5.0;    ///< same-grid/neighbour table freshness
  std::size_t appPendingLimit = 32;
  RoutingConfig routing;
  bool endpointMode = false;        ///< Model-1 endpoint (see header comment)
  std::function<std::optional<geo::GridCoord>(net::NodeId)> locationHint;
};

class ECGRID_DOMAIN_PER_HOST GafProtocol final : public net::RoutingProtocol {
 public:
  enum class State : std::uint8_t { kDiscovery, kActive, kSleep, kDead };

  GafProtocol(net::HostEnv& env, const GafConfig& config);

  const char* name() const override { return "GAF"; }
  void start() override;
  void onFrame(const net::Packet& packet) override;
  void sendData(net::NodeId destination, int payloadBytes,
                const net::DataTag& tag) override;
  void onPaged(const net::PageSignal& signal) override;
  void onSendFailed(const net::Packet& packet) override;
  void onCellChanged(const geo::GridCoord& from,
                     const geo::GridCoord& to) override;
  void onShutdown() override;

  State state() const { return state_; }
  bool isLeader() const { return state_ == State::kActive; }
  const RoutingStats& routingStats() const { return engine_.stats(); }

 private:
  struct Sighting {
    GafDiscoveryHeader::NodeState state = GafDiscoveryHeader::NodeState::kDiscovery;
    double rank = 0.0;
    double enatRemaining = 0.0;
    sim::Time lastHeard = sim::kTimeZero;
    geo::GridCoord grid;
    geo::Vec2 position;
  };

  void enterDiscovery();
  void becomeActive();
  void sleepFor(sim::Time duration);
  void beacon();
  void beaconTick();
  void endDiscovery();
  double myRank();
  /// Fresh same-grid leader, if any.
  std::optional<net::NodeId> localLeader();
  void flushAppQueue();
  void handleDiscovery(const net::Packet& frame,
                       const GafDiscoveryHeader& disc);
  RoutingEngine::Hooks makeHooks();
  void unicastFrame(net::NodeId to, std::shared_ptr<const net::Header> header);

  net::HostEnv& env_;
  GafConfig config_;
  RoutingEngine engine_;
  sim::RngStream rng_;

  State state_ = State::kDiscovery;
  sim::Time activeUntil_ = sim::kTimeZero;
  /// Instant discovery was last (re-)entered. Ta is bounded by the GPS
  /// dwell estimate, so the active-handover timer and the grid tracker's
  /// cell-crossing event land at the same instant; this timestamp lets
  /// onCellChanged recognise that the co-scheduled timer already ran the
  /// handover, making the pair commute under either execution order.
  sim::Time discoveryStartedAt_ = -1.0;
  std::map<net::NodeId, Sighting> sightings_;  ///< all grids, pruned lazily
  std::deque<std::shared_ptr<const net::Header>> appPending_;

  sim::EventHandle stateTimer_;
  sim::EventHandle beaconTimer_;
};

}  // namespace ecgrid::protocols
