// Grid-by-grid route discovery and data forwarding (paper §3.3–3.4).
//
// This is the AODV-derived core that GRID introduced and ECGRID inherits:
//   * RREQ flooding among gateways, confined to a search rectangle
//     (smallest rectangle covering source and destination grids, grown by
//     a margin), with (S, id) duplicate suppression and a global re-search
//     when the confined search fails;
//   * reverse pointers laid down by RREQs, RREPs unicast back along them,
//     forward routes laid down by RREPs;
//   * data forwarded gateway-to-gateway along forward routes, with local
//     repair (buffer + re-discover) when the next hop evaporates, and
//     RERR propagation toward the source when repair fails.
//
// The engine is deliberately ignorant of *who* routes: it asks its owner
// through Hooks whether this host is currently the grid's router, who
// routes a neighbouring grid, whether a destination host lives in this
// grid, and how to hand a packet to a local host. That lets one engine
// serve GRID gateways, ECGRID gateways (which wake sleeping destinations
// before the final hop), and GAF leaders.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <optional>

#include "geo/rect.hpp"
#include "net/host_env.hpp"
#include "obs/metrics.hpp"
#include "protocols/common/messages.hpp"
#include "protocols/common/routing_table.hpp"
#include "protocols/common/tables.hpp"
#include "sim/rng.hpp"
#include "util/ownership.hpp"

namespace ecgrid::protocols {

struct RoutingConfig {
  sim::Time routeLifetime = 10.0;
  sim::Time rreqCacheHorizon = 5.0;
  /// Hops are only formed/used between routers whose last-known positions
  /// are within this distance — slightly inside radio range so mobility
  /// between beacon and use does not carry the pair out of reach.
  double maxForwardDistance = 230.0;
  /// Re-route attempts per data frame after link-layer failures.
  int maxRouteRetries = 2;
  sim::Time rrepTimeout = 0.3;      ///< per discovery attempt
  int maxDiscoveryAttempts = 3;     ///< first confined, rest global
  int rangeMargin = 1;              ///< cells added around the S–D rectangle
  bool confinedSearch = true;       ///< false = always flood globally
  int maxHops = 64;
  std::size_t pendingLimit = 64;    ///< buffered data per destination
};

struct RoutingStats {
  std::uint64_t dataOriginated = 0;
  std::uint64_t dataForwarded = 0;
  std::uint64_t dataDeliveredLocal = 0;
  std::uint64_t dataDropped = 0;
  std::uint64_t rreqsSent = 0;
  std::uint64_t rrepsSent = 0;
  std::uint64_t rerrsSent = 0;
  std::uint64_t discoveriesStarted = 0;
  std::uint64_t discoveriesFailed = 0;
};

class ECGRID_DOMAIN_PER_HOST RoutingEngine {
 public:
  struct Hooks {
    /// Is this host currently the router (gateway/leader) of its grid?
    std::function<bool()> isRouter;
    /// May this host *relay* route requests? Defaults to isRouter when
    /// unset. GAF Model-1 endpoints route for themselves (isRouter true)
    /// but never relay or forward for others.
    std::function<bool()> mayRelayRreq;
    /// Believed router of a (neighbouring) grid, if known.
    std::function<std::optional<net::NodeId>(const geo::GridCoord&)> routerOf;
    /// Does `host` live in this grid (i.e. should we do the final hop)?
    std::function<bool(net::NodeId)> hostIsLocal;
    /// Final hop: get `packet` (a DATA frame) to local host `dst`.
    /// ECGRID buffers + pages sleeping hosts here.
    std::function<void(net::NodeId dst, const net::Packet& packet)>
        deliverLocal;
    /// Best known grid of a destination host (location service / GPS
    /// assumption); nullopt forces a global search.
    std::function<std::optional<geo::GridCoord>(net::NodeId)> locationHint;
    /// A routing message proved that `id` currently routes `grid` from
    /// `position` — warm the owner's router table so the freshly
    /// discovered hops resolve immediately.
    std::function<void(const geo::GridCoord& grid, net::NodeId id,
                       const geo::Vec2& position)>
        observeRouter;
  };

  RoutingEngine(net::HostEnv& env, Hooks hooks, const RoutingConfig& config);

  // --- owner-facing ---------------------------------------------------
  /// Route + forward one data frame. Called both for data this router
  /// originates on behalf of a local host and for transit data.
  void routeData(const net::Packet& frame, const DataHeader& data);

  /// Frame dispatch; returns true when the frame was a routing message
  /// this engine consumed (RREQ/RREP/RERR/DATA).
  bool onFrame(const net::Packet& frame);

  /// This host stopped being its grid's router: cancel discoveries, drop
  /// buffered transit data (the paper hands the routing table over
  /// separately via RETIRE/HANDOFF).
  void stopRouting();

  RoutingTable& routes() { return routes_; }
  RoutingTable& reverseRoutes() { return reverse_; }
  const RoutingStats& stats() const { return stats_; }

 private:
  struct Discovery {
    int attempts = 0;
    sim::EventHandle timeout;
    std::deque<net::Packet> pendingData;
  };

  void onRreq(const net::Packet& frame, const RreqHeader& rreq);
  void onRrep(const net::Packet& frame, const RrepHeader& rrep);
  void onRerr(const net::Packet& frame, const RerrHeader& rerr);

  void startDiscovery(net::NodeId destination, const net::Packet& firstData);
  void sendRreqAttempt(net::NodeId destination, Discovery& discovery);
  void onDiscoveryTimeout(net::NodeId destination);
  void completeDiscovery(net::NodeId destination);
  void failDiscovery(net::NodeId destination);

  void replyAsDestinationSide(const RreqHeader& rreq);
  void forwardRrep(const RrepHeader& rrep);
  void sendRerrTowards(net::NodeId source, net::NodeId destination,
                       SeqNo destSeq);

  /// Unicast `header` to the believed router of `grid`, or — when none is
  /// known — to `fallbackHop` (the node that taught us this route), if
  /// given. False when neither resolves. `routeRetries` is carried on the
  /// frame for link-failure bookkeeping.
  bool unicastToGridRouter(const geo::GridCoord& grid,
                           std::shared_ptr<const net::Header> header,
                           int routeRetries = 0,
                           net::NodeId fallbackHop = net::kBroadcastId);
  void broadcastFrame(std::shared_ptr<const net::Header> header);

  net::HostEnv& env_;
  Hooks hooks_;
  RoutingConfig config_;

  RoutingTable routes_;
  RoutingTable reverse_;
  RreqCache rreqCache_;
  std::map<net::NodeId, Discovery> discoveries_;
  std::map<net::NodeId, SeqNo> ownSeq_;  ///< d_seq we answer for local hosts

  sim::RngStream rng_;
  SeqNo sourceSeq_ = 0;
  RoutingStats stats_;
  // Registry mirrors of stats_ (inert without an Observability hub; see
  // obs/observability.hpp). Shared across engines on the simulator.
  obs::Counter mDataForwarded_;
  obs::Counter mDataDeliveredLocal_;
  obs::Counter mDataDropped_;
  obs::Counter mRreqsSent_;
  obs::Counter mRrepsSent_;
  obs::Counter mRerrsSent_;
  obs::Counter mDiscoveriesStarted_;
  obs::Counter mDiscoveriesFailed_;
};

}  // namespace ecgrid::protocols
