// Gateway election rules (paper §3).
//
// ECGRID's rules, in priority order:
//   1. higher battery-remaining-capacity *level* (upper > boundary > lower),
//   2. among equals, smallest distance to the grid's geometric centre
//      (a central host stays in the grid longest),
//   3. smallest host ID as the final tie-break.
// GRID, which is energy-oblivious, uses the same procedure with rule 1
// disabled. The rules are pure functions over announced candidate state
// (taken from HELLO fields), so elections are deterministic and every
// participant reaches the same verdict from the same HELLO set.
#pragma once

#include <optional>
#include <vector>

#include "energy/battery.hpp"
#include "net/packet.hpp"

namespace ecgrid::protocols {

struct Candidate {
  net::NodeId id = net::kBroadcastId;
  energy::BatteryLevel level = energy::BatteryLevel::kUpper;
  double distToCenter = 0.0;
};

struct ElectionPolicy {
  /// Rule 1 on/off: ECGRID true, GRID false.
  bool useBatteryLevel = true;
  /// Distances closer than this are considered equal (GPS noise guard).
  double distanceEpsilon = 1e-6;
};

/// True when `a` beats `b` under the rules.
bool beats(const Candidate& a, const Candidate& b,
           const ElectionPolicy& policy);

/// The winning candidate, or nullopt for an empty field.
std::optional<Candidate> electGateway(const std::vector<Candidate>& field,
                                      const ElectionPolicy& policy);

/// Paper §3.2 replacement rule for newcomers: an incoming host replaces
/// the sitting gateway only when its battery *level* is strictly higher —
/// "this rule prevents frequent replacement of gateways".
bool newcomerReplaces(const Candidate& newcomer, const Candidate& gateway,
                      const ElectionPolicy& policy);

}  // namespace ecgrid::protocols
