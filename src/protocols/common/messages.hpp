// Wire messages shared by the grid protocols (paper §3).
//
// Sizes are chosen to be byte-realistic for the fields each message
// carries (32-bit host ids, 2×32-bit grid coordinates, 32-bit sequence
// numbers); control-message airtime is a first-class experimental
// quantity, so these constants are deliberate, not arbitrary.
#pragma once

#include <cstdint>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "energy/battery.hpp"
#include "geo/grid.hpp"
#include "geo/rect.hpp"
#include "net/host_env.hpp"
#include "net/packet.hpp"

namespace ecgrid::protocols {

using SeqNo = std::uint32_t;

/// True when `a` is fresher than `b` (handles wraparound like AODV).
inline bool seqFresher(SeqNo a, SeqNo b) {
  return static_cast<std::int32_t>(a - b) > 0;
}

/// HELLO — periodic beacon of every *active* host (paper §3.1).
/// Fields exactly as listed in the paper — id, grid, gflag, level, dist —
/// plus the sender's GPS position, which every location-aware beacon in
/// this protocol family carries (GRID's beacons do; receivers need it to
/// judge whether an advertised gateway is actually within radio reach).
class HelloHeader final : public net::Header {
 public:
  HelloHeader(net::NodeId id, geo::GridCoord grid, bool gatewayFlag,
              energy::BatteryLevel level, double distToCenter,
              geo::Vec2 position)
      : id_(id),
        grid_(grid),
        gatewayFlag_(gatewayFlag),
        level_(level),
        distToCenter_(distToCenter),
        position_(position) {}

  net::NodeId id() const { return id_; }
  const geo::GridCoord& grid() const { return grid_; }
  bool gatewayFlag() const { return gatewayFlag_; }
  energy::BatteryLevel level() const { return level_; }
  double distToCenter() const { return distToCenter_; }
  const geo::Vec2& position() const { return position_; }

  int bytes() const override { return 28; }  // id4+grid8+flags1+lvl1+dist4+pos8+pad
  const char* name() const override { return "HELLO"; }
  std::string describe() const override {
    std::ostringstream os;
    os << "HELLO{id=" << id_ << " grid=" << grid_
       << " g=" << (gatewayFlag_ ? 1 : 0) << " lvl=" << toString(level_)
       << "}";
    return os.str();
  }

 private:
  net::NodeId id_;
  geo::GridCoord grid_;
  bool gatewayFlag_;
  energy::BatteryLevel level_;
  double distToCenter_;
  geo::Vec2 position_;
};

/// One serialised routing-table entry (carried by RETIRE / HANDOFF).
struct RouteRecord {
  net::NodeId destination = net::kBroadcastId;
  geo::GridCoord nextGrid;
  geo::GridCoord destGrid;
  SeqNo destSeq = 0;
  double expiry = 0.0;
};

inline constexpr int kRouteRecordBytes = 24;

/// RETIRE(grid, rtab) — a departing/exhausted gateway hands its routing
/// table to the grid it is leaving (paper §3.2).
class RetireHeader final : public net::Header {
 public:
  RetireHeader(geo::GridCoord grid, std::vector<RouteRecord> table)
      : grid_(grid), table_(std::move(table)) {}

  const geo::GridCoord& grid() const { return grid_; }
  const std::vector<RouteRecord>& table() const { return table_; }

  int bytes() const override {
    return 12 + static_cast<int>(table_.size()) * kRouteRecordBytes;
  }
  const char* name() const override { return "RETIRE"; }

 private:
  geo::GridCoord grid_;
  std::vector<RouteRecord> table_;
};

/// HANDOFF — unicast routing-table transfer when a newcomer replaces the
/// gateway in place (paper §3.2 case 1: "the original gateway ... will
/// transmit the routing and host tables to the new gateway").
class HandoffHeader final : public net::Header {
 public:
  HandoffHeader(geo::GridCoord grid, std::vector<RouteRecord> table,
                std::vector<std::pair<net::NodeId, bool>> hostTable)
      : grid_(grid), table_(std::move(table)), hostTable_(std::move(hostTable)) {}

  const geo::GridCoord& grid() const { return grid_; }
  const std::vector<RouteRecord>& table() const { return table_; }
  /// (hostId, isSleeping) pairs.
  const std::vector<std::pair<net::NodeId, bool>>& hostTable() const {
    return hostTable_;
  }

  int bytes() const override {
    return 12 + static_cast<int>(table_.size()) * kRouteRecordBytes +
           static_cast<int>(hostTable_.size()) * 5;
  }
  const char* name() const override { return "HANDOFF"; }

 private:
  geo::GridCoord grid_;
  std::vector<RouteRecord> table_;
  std::vector<std::pair<net::NodeId, bool>> hostTable_;
};

/// LEAVE — a non-gateway host notifies its gateway that it is departing
/// the grid (paper §3.2 "it must notify the gateway about its departure by
/// sending a unicast message").
class LeaveHeader final : public net::Header {
 public:
  LeaveHeader(net::NodeId host, geo::GridCoord grid)
      : host_(host), grid_(grid) {}

  net::NodeId host() const { return host_; }
  const geo::GridCoord& grid() const { return grid_; }

  int bytes() const override { return 12; }
  const char* name() const override { return "LEAVE"; }

 private:
  net::NodeId host_;
  geo::GridCoord grid_;
};

/// SLEEP — a member tells its gateway it is turning its transceiver off,
/// keeping the host table's transmit/sleep status column (paper §3)
/// accurate so the gateway pages instead of unicasting into a dead ear.
class SleepNoticeHeader final : public net::Header {
 public:
  SleepNoticeHeader(net::NodeId host, geo::GridCoord grid)
      : host_(host), grid_(grid) {}

  net::NodeId host() const { return host_; }
  const geo::GridCoord& grid() const { return grid_; }

  int bytes() const override { return 12; }
  const char* name() const override { return "SLEEP"; }

 private:
  net::NodeId host_;
  geo::GridCoord grid_;
};

/// ACQ(gid, D) — a sleeping host that woke to transmit informs its
/// gateway (paper §3.3); the gateway answers with a HELLO.
class AcqHeader final : public net::Header {
 public:
  AcqHeader(net::NodeId host, geo::GridCoord grid, net::NodeId destination)
      : host_(host), grid_(grid), destination_(destination) {}

  net::NodeId host() const { return host_; }
  const geo::GridCoord& grid() const { return grid_; }
  net::NodeId destination() const { return destination_; }

  int bytes() const override { return 16; }
  const char* name() const override { return "ACQ"; }

 private:
  net::NodeId host_;
  geo::GridCoord grid_;
  net::NodeId destination_;
};

/// RREQ(S, s_seq, D, d_seq, id, range) — grid-confined route request
/// (paper §3.3). `originGrid` lets receivers build the reverse path.
class RreqHeader final : public net::Header {
 public:
  RreqHeader(net::NodeId source, SeqNo sourceSeq, net::NodeId destination,
             SeqNo destSeqKnown, std::uint32_t requestId, geo::GridRect range,
             geo::GridCoord senderGrid, geo::Vec2 senderPos, int hopCount)
      : source_(source),
        sourceSeq_(sourceSeq),
        destination_(destination),
        destSeqKnown_(destSeqKnown),
        requestId_(requestId),
        range_(range),
        senderGrid_(senderGrid),
        senderPos_(senderPos),
        hopCount_(hopCount) {}

  net::NodeId source() const { return source_; }
  SeqNo sourceSeq() const { return sourceSeq_; }
  net::NodeId destination() const { return destination_; }
  SeqNo destSeqKnown() const { return destSeqKnown_; }
  std::uint32_t requestId() const { return requestId_; }
  const geo::GridRect& range() const { return range_; }
  /// Grid of the gateway that (re)broadcast this copy — the reverse-path
  /// pointer target.
  const geo::GridCoord& senderGrid() const { return senderGrid_; }
  /// GPS position of that gateway when it sent this copy; receivers use
  /// it to reject hops that would already be at the edge of radio reach.
  const geo::Vec2& senderPos() const { return senderPos_; }
  int hopCount() const { return hopCount_; }

  int bytes() const override { return 52; }
  const char* name() const override { return "RREQ"; }
  std::string describe() const override {
    std::ostringstream os;
    os << "RREQ{S=" << source_ << " D=" << destination_
       << " id=" << requestId_ << " from=" << senderGrid_ << "}";
    return os.str();
  }

 private:
  net::NodeId source_;
  SeqNo sourceSeq_;
  net::NodeId destination_;
  SeqNo destSeqKnown_;
  std::uint32_t requestId_;
  geo::GridRect range_;
  geo::GridCoord senderGrid_;
  geo::Vec2 senderPos_;
  int hopCount_;
};

/// RREP(S, D, d_seq) — unicast back along the reverse path (paper §3.3).
class RrepHeader final : public net::Header {
 public:
  RrepHeader(net::NodeId source, net::NodeId destination, SeqNo destSeq,
             geo::GridCoord destGrid, geo::GridCoord senderGrid,
             geo::Vec2 senderPos, int hopCount)
      : source_(source),
        destination_(destination),
        destSeq_(destSeq),
        destGrid_(destGrid),
        senderGrid_(senderGrid),
        senderPos_(senderPos),
        hopCount_(hopCount) {}

  net::NodeId source() const { return source_; }
  net::NodeId destination() const { return destination_; }
  SeqNo destSeq() const { return destSeq_; }
  const geo::GridCoord& destGrid() const { return destGrid_; }
  /// Grid of the gateway forwarding this copy — the forward-path pointer.
  const geo::GridCoord& senderGrid() const { return senderGrid_; }
  /// GPS position of that gateway (keeps receivers' router tables warm).
  const geo::Vec2& senderPos() const { return senderPos_; }
  int hopCount() const { return hopCount_; }

  int bytes() const override { return 40; }
  const char* name() const override { return "RREP"; }

 private:
  net::NodeId source_;
  net::NodeId destination_;
  SeqNo destSeq_;
  geo::GridCoord destGrid_;
  geo::GridCoord senderGrid_;
  geo::Vec2 senderPos_;
  int hopCount_;
};

/// RERR — a gateway on the path could not forward towards `destination`;
/// propagated back so stale routes are purged and sources re-discover.
class RerrHeader final : public net::Header {
 public:
  RerrHeader(net::NodeId source, net::NodeId destination, SeqNo destSeq,
             geo::GridCoord senderGrid)
      : source_(source),
        destination_(destination),
        destSeq_(destSeq),
        senderGrid_(senderGrid) {}

  net::NodeId source() const { return source_; }
  net::NodeId destination() const { return destination_; }
  SeqNo destSeq() const { return destSeq_; }
  const geo::GridCoord& senderGrid() const { return senderGrid_; }

  int bytes() const override { return 20; }
  const char* name() const override { return "RERR"; }

 private:
  net::NodeId source_;
  net::NodeId destination_;
  SeqNo destSeq_;
  geo::GridCoord senderGrid_;
};

/// Application data riding the grid route. `payloadBytes` is the CBR
/// payload (512 B in the paper); the grid header adds 20 B.
class DataHeader final : public net::Header {
 public:
  DataHeader(net::NodeId appSrc, net::NodeId appDst, int payloadBytes,
             net::DataTag tag)
      : appSrc_(appSrc), appDst_(appDst), payloadBytes_(payloadBytes), tag_(tag) {}

  net::NodeId appSrc() const { return appSrc_; }
  net::NodeId appDst() const { return appDst_; }
  int payloadBytes() const { return payloadBytes_; }
  const net::DataTag& tag() const { return tag_; }

  int bytes() const override { return 20 + payloadBytes_; }
  const char* name() const override { return "DATA"; }
  std::string describe() const override {
    std::ostringstream os;
    os << "DATA{" << appSrc_ << "->" << appDst_ << " seq=" << tag_.sequence
       << "}";
    return os.str();
  }

 private:
  net::NodeId appSrc_;
  net::NodeId appDst_;
  int payloadBytes_;
  net::DataTag tag_;
};

}  // namespace ecgrid::protocols
