#include "protocols/common/routing_engine.hpp"

#include "obs/observability.hpp"
#include "util/error.hpp"
#include "util/hot_path.hpp"
#include "util/log.hpp"

namespace ecgrid::protocols {

namespace {
constexpr const char* kTag = "route";

/// Span id correlating one router's discovery for one destination.
std::uint64_t discoverySpanId(net::NodeId router, net::NodeId destination) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(router))
          << 32) |
         static_cast<std::uint32_t>(destination);
}
}  // namespace

RoutingEngine::RoutingEngine(net::HostEnv& env, Hooks hooks,
                             const RoutingConfig& config)
    : env_(env),
      hooks_(std::move(hooks)),
      config_(config),
      routes_(config.routeLifetime),
      reverse_(config.routeLifetime),
      rreqCache_(config.rreqCacheHorizon),
      rng_(env.simulator().rng().stream("routing", env.id())),
      mDataForwarded_(obs::counter(env.simulator(), "routing.data_forwarded")),
      mDataDeliveredLocal_(
          obs::counter(env.simulator(), "routing.data_delivered_local")),
      mDataDropped_(obs::counter(env.simulator(), "routing.data_dropped")),
      mRreqsSent_(obs::counter(env.simulator(), "routing.rreqs_sent")),
      mRrepsSent_(obs::counter(env.simulator(), "routing.rreps_sent")),
      mRerrsSent_(obs::counter(env.simulator(), "routing.rerrs_sent")),
      mDiscoveriesStarted_(
          obs::counter(env.simulator(), "routing.discoveries_started")),
      mDiscoveriesFailed_(
          obs::counter(env.simulator(), "routing.discoveries_failed")) {
  ECGRID_REQUIRE(hooks_.isRouter && hooks_.routerOf && hooks_.hostIsLocal &&
                     hooks_.deliverLocal && hooks_.locationHint,
                 "all routing hooks are required");
}

void RoutingEngine::broadcastFrame(std::shared_ptr<const net::Header> header) {
  net::Packet frame;
  frame.macSrc = env_.id();
  frame.macDst = net::kBroadcastId;
  frame.header = std::move(header);
  env_.link().send(frame);
}

bool RoutingEngine::unicastToGridRouter(
    const geo::GridCoord& grid, std::shared_ptr<const net::Header> header,
    int routeRetries, net::NodeId fallbackHop) {
  if (grid == env_.cell() && hooks_.isRouter() &&
      fallbackHop == net::kBroadcastId) {
    // Shouldn't happen (callers handle local), but keep it safe.
    return false;
  }
  std::optional<net::NodeId> router = hooks_.routerOf(grid);
  if (!router.has_value() && fallbackHop != net::kBroadcastId &&
      fallbackHop != env_.id()) {
    router = fallbackHop;
  }
  if (!router.has_value()) return false;
  net::Packet frame;
  frame.macSrc = env_.id();
  frame.macDst = *router;
  frame.header = std::move(header);
  frame.routeRetries = routeRetries;
  env_.link().send(frame);
  return true;
}

ECGRID_HOT_PATH bool RoutingEngine::onFrame(const net::Packet& frame) {
  if (const auto* rreq = frame.headerAs<RreqHeader>()) {
    onRreq(frame, *rreq);
    return true;
  }
  if (const auto* rrep = frame.headerAs<RrepHeader>()) {
    onRrep(frame, *rrep);
    return true;
  }
  if (const auto* rerr = frame.headerAs<RerrHeader>()) {
    onRerr(frame, *rerr);
    return true;
  }
  if (const auto* data = frame.headerAs<DataHeader>()) {
    routeData(frame, *data);
    return true;
  }
  return false;
}

ECGRID_HOT_PATH void RoutingEngine::routeData(const net::Packet& frame,
                              const DataHeader& data) {
  sim::Time now = env_.simulator().now();
  net::NodeId dst = data.appDst();

  if (dst == env_.id() || hooks_.hostIsLocal(dst)) {
    ++stats_.dataDeliveredLocal;
    mDataDeliveredLocal_.add();
    ECGRID_LOG_TRACE(kTag, "t=" << now << " node " << env_.id() << " @"
                                << env_.cell() << " local-deliver "
                                << data.describe());
    hooks_.deliverLocal(dst, frame);
    return;
  }
  if (!hooks_.isRouter()) {
    // Non-router hosts never carry transit traffic.
    ++stats_.dataDropped;
    mDataDropped_.add();
    ECGRID_LOG_TRACE(kTag, "t=" << now << " node " << env_.id()
                                << " non-router drop " << data.describe());
    return;
  }

  auto route = routes_.lookup(dst, now);
  if (route.has_value()) {
    if (unicastToGridRouter(route->nextGrid, frame.header,
                            frame.routeRetries, route->nextHop)) {
      ECGRID_LOG_TRACE(kTag, "t=" << now << " node " << env_.id() << " @"
                                  << env_.cell() << " fwd "
                                  << data.describe() << " -> grid "
                                  << route->nextGrid);
      ++stats_.dataForwarded;
      mDataForwarded_.add();
      routes_.refresh(dst, now);
      reverse_.refresh(data.appSrc(), now);
      return;
    }
    // Next-hop gateway evaporated: purge and fall through to repair.
    routes_.erase(dst);
  }

  ECGRID_LOG_TRACE(kTag, "t=" << now << " node " << env_.id() << " @"
                              << env_.cell() << " no-route-buffer "
                              << data.describe());
  // Local repair: buffer the packet and (re)start discovery.
  auto it = discoveries_.find(dst);
  if (it != discoveries_.end()) {
    if (it->second.pendingData.size() < config_.pendingLimit) {
      // Route-repair buffer, bounded at pendingLimit packets and only
      // populated while a discovery is outstanding — not steady state.
      it->second.pendingData.push_back(frame);  // ecgrid-lint: allow(hot-path-container-growth)
    } else {
      ++stats_.dataDropped;
      mDataDropped_.add();
    }
    return;
  }
  startDiscovery(dst, frame);
}

void RoutingEngine::startDiscovery(net::NodeId destination,
                                   const net::Packet& firstData) {
  ++stats_.discoveriesStarted;
  mDiscoveriesStarted_.add();
  if (auto* tracer = obs::tracer(env_.simulator())) {
    tracer->begin("route", "discovery", discoverySpanId(env_.id(), destination),
                  env_.id(), {{"dst", destination}});
  }
  Discovery& discovery = discoveries_[destination];
  discovery.attempts = 0;
  discovery.pendingData.push_back(firstData);
  sendRreqAttempt(destination, discovery);
}

void RoutingEngine::sendRreqAttempt(net::NodeId destination,
                                    Discovery& discovery) {
  ++discovery.attempts;
  ++sourceSeq_;

  geo::GridRect range = geo::GridRect::everywhere();
  if (config_.confinedSearch &&
      discovery.attempts < config_.maxDiscoveryAttempts) {
    // Paper §3.3: the search area is confined when the source has location
    // information for the destination; the rectangle widens per retry and
    // the final attempt searches the whole plane.
    std::optional<geo::GridCoord> hint = hooks_.locationHint(destination);
    if (hint.has_value()) {
      range = geo::GridRect::covering(env_.cell(), *hint)
                  .expanded(config_.rangeMargin +
                            2 * (discovery.attempts - 1));
    }
  }

  auto rreq = std::make_shared<RreqHeader>(
      env_.id(), sourceSeq_, destination, routes_.lastKnownSeq(destination),
      static_cast<std::uint32_t>(rng_.raw()), range, env_.cell(),
      env_.position(), /*hopCount=*/0);
  ++stats_.rreqsSent;
  mRreqsSent_.add();
  if (auto* tracer = obs::tracer(env_.simulator())) {
    tracer->instant("route", "rreq", env_.id(),
                    {{"dst", destination}, {"attempt", discovery.attempts}});
  }
  ECGRID_LOG_DEBUG(kTag, "node " << env_.id() << " RREQ for " << destination
                                 << " attempt " << discovery.attempts);
  broadcastFrame(rreq);

  discovery.timeout = env_.simulator().schedule(
      config_.rrepTimeout,
      [this, destination] { onDiscoveryTimeout(destination); },
      "route/discovery_timeout");
}

void RoutingEngine::onDiscoveryTimeout(net::NodeId destination) {
  auto it = discoveries_.find(destination);
  if (it == discoveries_.end()) return;
  if (it->second.attempts >= config_.maxDiscoveryAttempts) {
    failDiscovery(destination);
    return;
  }
  sendRreqAttempt(destination, it->second);
}

void RoutingEngine::completeDiscovery(net::NodeId destination) {
  auto it = discoveries_.find(destination);
  if (it == discoveries_.end()) return;
  if (auto* tracer = obs::tracer(env_.simulator())) {
    tracer->end("route", "discovery", discoverySpanId(env_.id(), destination),
                env_.id(), {{"found", 1}});
  }
  it->second.timeout.cancel();
  std::deque<net::Packet> pending = std::move(it->second.pendingData);
  discoveries_.erase(it);
  for (net::Packet& frame : pending) {
    const auto* data = frame.headerAs<DataHeader>();
    ECGRID_CHECK(data != nullptr, "pending queue held a non-data frame");
    routeData(frame, *data);
  }
}

void RoutingEngine::failDiscovery(net::NodeId destination) {
  auto it = discoveries_.find(destination);
  if (it == discoveries_.end()) return;
  ++stats_.discoveriesFailed;
  mDiscoveriesFailed_.add();
  if (auto* tracer = obs::tracer(env_.simulator())) {
    tracer->end("route", "discovery", discoverySpanId(env_.id(), destination),
                env_.id(), {{"found", 0}});
  }
  it->second.timeout.cancel();
  for (const net::Packet& frame : it->second.pendingData) {
    (void)frame;
    ++stats_.dataDropped;
    mDataDropped_.add();
  }
  discoveries_.erase(it);
  ECGRID_LOG_DEBUG(kTag, "node " << env_.id() << " discovery for "
                                 << destination << " failed");
}

void RoutingEngine::onRreq(const net::Packet& frame, const RreqHeader& rreq) {
  (void)frame;
  if (!hooks_.isRouter()) return;  // only gateways take part (paper §3.3)
  sim::Time now = env_.simulator().now();
  geo::GridCoord myGrid = env_.cell();

  if (!rreq.range().contains(myGrid)) return;  // outside the search area
  if (rreq.source() == env_.id()) return;      // our own flood came back
  if (env_.position().distanceTo(rreq.senderPos()) >
      config_.maxForwardDistance) {
    // We heard this copy only because we are at the very edge of the
    // sender's radio disk; a route built on such a hop would be dead on
    // arrival, so pretend we did not hear it.
    return;
  }
  // The (re)broadcasting gateway just proved it routes senderGrid.
  if (hooks_.observeRouter) {
    hooks_.observeRouter(rreq.senderGrid(), frame.macSrc, rreq.senderPos());
  }

  if (!rreqCache_.firstSighting(rreq.source(), rreq.requestId(), now)) return;

  // Reverse pointer toward the source, used by RREP/RERR.
  RouteEntry reverseEntry;
  reverseEntry.nextGrid = rreq.senderGrid();
  reverseEntry.destGrid = rreq.senderGrid();
  reverseEntry.nextHop = frame.macSrc;
  reverseEntry.destSeq = rreq.sourceSeq();
  reverseEntry.hopCount = rreq.hopCount() + 1;
  reverse_.update(rreq.source(), reverseEntry, now);

  if (rreq.destination() == env_.id() ||
      hooks_.hostIsLocal(rreq.destination())) {
    ECGRID_LOG_TRACE(kTag, "t=" << now << " node " << env_.id()
                                << " answers RREQ for "
                                << rreq.destination());
    replyAsDestinationSide(rreq);
    return;
  }

  ECGRID_LOG_TRACE(kTag, "t=" << now << " node " << env_.id() << " @"
                              << env_.cell() << " relay RREQ S="
                              << rreq.source() << " D=" << rreq.destination()
                              << " hop" << rreq.hopCount());
  if (rreq.hopCount() + 1 >= config_.maxHops) return;
  if (hooks_.mayRelayRreq && !hooks_.mayRelayRreq()) return;
  auto relay = std::make_shared<RreqHeader>(
      rreq.source(), rreq.sourceSeq(), rreq.destination(), rreq.destSeqKnown(),
      rreq.requestId(), rreq.range(), myGrid, env_.position(),
      rreq.hopCount() + 1);
  broadcastFrame(relay);
}

void RoutingEngine::replyAsDestinationSide(const RreqHeader& rreq) {
  sim::Time now = env_.simulator().now();
  // Answer with a destination sequence number strictly fresher than
  // anything the requester has seen (AODV destination behaviour, executed
  // by the destination's gateway per paper §3.3).
  SeqNo& seq = ownSeq_[rreq.destination()];
  if (!seqFresher(seq, rreq.destSeqKnown())) seq = rreq.destSeqKnown() + 1;
  ++seq;

  auto rrep = std::make_shared<RrepHeader>(rreq.source(), rreq.destination(),
                                           seq, env_.cell(), env_.cell(),
                                           env_.position(), /*hopCount=*/0);
  ++stats_.rrepsSent;
  mRrepsSent_.add();
  if (auto* tracer = obs::tracer(env_.simulator())) {
    tracer->instant("route", "rrep", env_.id(),
                    {{"src", rreq.source()}, {"dst", rreq.destination()}});
  }

  auto reverse = reverse_.lookup(rreq.source(), now);
  if (!reverse.has_value()) return;  // reverse path already gone
  if (!unicastToGridRouter(reverse->nextGrid, rrep, 0, reverse->nextHop)) {
    ECGRID_LOG_DEBUG(kTag, "node " << env_.id()
                                   << " RREP reverse hop unknown");
  }
}

void RoutingEngine::onRrep(const net::Packet& frame, const RrepHeader& rrep) {
  (void)frame;
  if (!hooks_.isRouter()) return;
  sim::Time now = env_.simulator().now();

  if (hooks_.observeRouter) {
    hooks_.observeRouter(rrep.senderGrid(), frame.macSrc, rrep.senderPos());
  }

  // Forward route toward the destination.
  RouteEntry entry;
  entry.nextGrid = rrep.senderGrid();
  entry.destGrid = rrep.destGrid();
  entry.nextHop = frame.macSrc;
  entry.destSeq = rrep.destSeq();
  entry.hopCount = rrep.hopCount() + 1;
  routes_.update(rrep.destination(), entry, now);

  if (discoveries_.count(rrep.destination()) > 0 &&
      (rrep.source() == env_.id() || hooks_.hostIsLocal(rrep.source()))) {
    completeDiscovery(rrep.destination());
    return;
  }
  forwardRrep(rrep);
}

void RoutingEngine::forwardRrep(const RrepHeader& rrep) {
  sim::Time now = env_.simulator().now();
  auto reverse = reverse_.lookup(rrep.source(), now);
  if (!reverse.has_value()) return;
  auto relay = std::make_shared<RrepHeader>(
      rrep.source(), rrep.destination(), rrep.destSeq(), rrep.destGrid(),
      env_.cell(), env_.position(), rrep.hopCount() + 1);
  unicastToGridRouter(reverse->nextGrid, relay, 0, reverse->nextHop);
}

void RoutingEngine::sendRerrTowards(net::NodeId source, net::NodeId destination,
                                    SeqNo destSeq) {
  sim::Time now = env_.simulator().now();
  auto reverse = reverse_.lookup(source, now);
  if (!reverse.has_value()) return;
  ++stats_.rerrsSent;
  mRerrsSent_.add();
  if (auto* tracer = obs::tracer(env_.simulator())) {
    tracer->instant("route", "rerr", env_.id(),
                    {{"src", source}, {"dst", destination}});
  }
  auto rerr =
      std::make_shared<RerrHeader>(source, destination, destSeq, env_.cell());
  unicastToGridRouter(reverse->nextGrid, rerr, 0, reverse->nextHop);
}

void RoutingEngine::onRerr(const net::Packet& frame, const RerrHeader& rerr) {
  (void)frame;
  if (!hooks_.isRouter()) return;
  routes_.erase(rerr.destination());
  if (rerr.source() == env_.id() || hooks_.hostIsLocal(rerr.source())) {
    return;  // reached the source side; new data will re-discover
  }
  sendRerrTowards(rerr.source(), rerr.destination(), rerr.destSeq());
}

void RoutingEngine::stopRouting() {
  for (auto& [dst, discovery] : discoveries_) {
    discovery.timeout.cancel();
    stats_.dataDropped += discovery.pendingData.size();
    mDataDropped_.add(discovery.pendingData.size());
    if (auto* tracer = obs::tracer(env_.simulator())) {
      tracer->end("route", "discovery", discoverySpanId(env_.id(), dst),
                  env_.id(), {{"found", 0}, {"reason", "stop_routing"}});
    }
  }
  discoveries_.clear();
}

}  // namespace ecgrid::protocols
