// Small protocol-state tables: RREQ duplicate cache, neighbour-gateway
// table, and the gateway's host table (paper §3).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <utility>
#include <vector>

#include "geo/grid.hpp"
#include "net/packet.hpp"
#include "sim/time.hpp"
#include "util/hot_path.hpp"
#include "util/ownership.hpp"

namespace ecgrid::protocols {

/// Detects duplicate RREQs by (source, requestId) (paper §3.3: "The pair
/// (S, id) can be used to detect duplicate RREQ packets").
class ECGRID_DOMAIN_PER_HOST RreqCache {
 public:
  explicit RreqCache(sim::Time horizon) : horizon_(horizon) {}

  /// Returns true the first time this (source, id) is seen within the
  /// horizon; later sightings return false.
  bool firstSighting(net::NodeId source, std::uint32_t requestId,
                     sim::Time now);

  std::size_t size() const { return seen_.size(); }

 private:
  void sweep(sim::Time now);

  sim::Time horizon_;
  std::map<std::pair<net::NodeId, std::uint32_t>, sim::Time> seen_;
  sim::Time lastSweep_ = sim::kTimeZero;
};

/// Which host is gatewaying each nearby grid, learned from overheard
/// gateway-flagged HELLOs (which carry the sender's GPS position).
/// Entries age out when the gateway goes quiet; lookups are range-checked
/// so a gateway that has drifted out of radio reach is not offered as a
/// next hop.
class ECGRID_DOMAIN_PER_HOST NeighbourGatewayTable {
 public:
  explicit NeighbourGatewayTable(sim::Time staleAfter)
      : staleAfter_(staleAfter) {}

  void observe(const geo::GridCoord& grid, net::NodeId gateway,
               const geo::Vec2& position, sim::Time now);

  /// Forget a specific association (e.g. after a RETIRE from that host).
  void forget(const geo::GridCoord& grid, net::NodeId gateway);

  /// Drop every entry pointing at `gateway` (a unicast to it just failed).
  void forgetById(net::NodeId gateway);

  /// Current believed gateway of `grid`, if fresh and — when `from` is
  /// given — last heard within `maxDistance` of `from`.
  std::optional<net::NodeId> gatewayOf(const geo::GridCoord& grid,
                                       sim::Time now) const;
  std::optional<net::NodeId> gatewayOf(const geo::GridCoord& grid,
                                       sim::Time now, const geo::Vec2& from,
                                       double maxDistance) const;

  void clear() { entries_.clear(); }

 private:
  struct Entry {
    net::NodeId gateway = net::kBroadcastId;
    geo::Vec2 position;
    sim::Time lastHeard = sim::kTimeZero;
  };
  ECGRID_LAYOUT_BUDGET(Entry, 32);
  sim::Time staleAfter_;
  std::map<geo::GridCoord, Entry> entries_;
};

/// The gateway's table of hosts in its grid with their mode (paper §3:
/// "host ID and status (transmit/sleep mode)"). Active entries age out
/// when their HELLOs stop; sleeping entries persist until the host leaves,
/// dies visibly (paging timeout), or the table is handed over.
class ECGRID_DOMAIN_PER_HOST HostTable {
 public:
  explicit HostTable(sim::Time activeStaleAfter)
      : activeStaleAfter_(activeStaleAfter) {}

  void markActive(net::NodeId host, sim::Time now);
  void markSleeping(net::NodeId host, sim::Time now);
  void remove(net::NodeId host);
  void clear() { hosts_.clear(); }

  bool contains(net::NodeId host, sim::Time now) const;
  bool isSleeping(net::NodeId host, sim::Time now) const;

  /// Every active host whose HELLO is stale is presumed asleep (the
  /// ECGRID post-election convention: non-gateways stop HELLOing when they
  /// enter sleep mode).
  void demoteStaleActives(sim::Time now);

  std::vector<std::pair<net::NodeId, bool>> exportEntries() const;
  void importEntries(const std::vector<std::pair<net::NodeId, bool>>& entries,
                     sim::Time now);

  std::size_t size() const { return hosts_.size(); }

 private:
  struct Entry {
    bool sleeping = false;
    sim::Time lastSeen = sim::kTimeZero;
  };
  ECGRID_LAYOUT_BUDGET(Entry, 16);
  sim::Time activeStaleAfter_;
  std::map<net::NodeId, Entry> hosts_;
};

}  // namespace ecgrid::protocols
