// Grid-granularity routing table (paper §3.3).
//
// ECGRID/GRID establish routes "in a grid-by-grid manner, instead of in a
// host-by-host manner": an entry maps a destination *host* to the
// neighbouring *grid* data should be forwarded to, plus the AODV-style
// destination sequence number that decides freshness. Reverse routes
// toward sources (set up while RREQs flood) use the same structure.
#pragma once

#include <map>
#include <optional>
#include <vector>

#include "geo/grid.hpp"
#include "protocols/common/messages.hpp"
#include "sim/time.hpp"
#include "util/hot_path.hpp"
#include "util/ownership.hpp"

namespace ecgrid::protocols {

struct RouteEntry {
  geo::GridCoord nextGrid;  ///< neighbouring grid to forward through
  geo::GridCoord destGrid;  ///< grid the destination was last known in
  /// Concrete node the routing message that created this entry came from.
  /// Used as a fallback when no router is currently known for nextGrid —
  /// in particular for GAF Model-1 endpoints, which are valid route
  /// termini but never advertise themselves as grid leaders.
  net::NodeId nextHop = net::kBroadcastId;
  SeqNo destSeq = 0;
  sim::Time expiry = sim::kTimeZero;
  int hopCount = 0;
};
/// One per (host, destination) pair — the dominant per-host state at city
/// scale, so growth here multiplies across the whole population.
ECGRID_LAYOUT_BUDGET(RouteEntry, 40);

class ECGRID_DOMAIN_PER_HOST RoutingTable {
 public:
  /// `lifetime`: how long an entry stays valid after insert/refresh.
  explicit RoutingTable(sim::Time lifetime) : lifetime_(lifetime) {}

  /// Insert/overwrite if the route is fresher (higher seq) or equally
  /// fresh but shorter, per AODV acceptance. Returns true if stored.
  bool update(net::NodeId destination, const RouteEntry& candidate,
              sim::Time now);

  /// Valid (unexpired) entry for `destination`, if any.
  [[nodiscard]] std::optional<RouteEntry> lookup(net::NodeId destination,
                                                 sim::Time now);

  /// Extends the expiry of an entry that was just used for forwarding.
  void refresh(net::NodeId destination, sim::Time now);

  void erase(net::NodeId destination);
  void clear() { routes_.clear(); }

  /// Last sequence number this table has seen for `destination`
  /// (0 when unknown) — used to fill RREQ d_seq.
  SeqNo lastKnownSeq(net::NodeId destination) const;

  /// Serialise live entries for RETIRE/HANDOFF messages.
  std::vector<RouteRecord> exportRecords(sim::Time now) const;

  /// Merge records from a RETIRE/HANDOFF (same freshness rules).
  void importRecords(const std::vector<RouteRecord>& records, sim::Time now);

  std::size_t size() const { return routes_.size(); }
  sim::Time lifetime() const { return lifetime_; }

  /// Raw view of every entry, expired or not — the invariant auditor
  /// walks this to cross-check next hops against the host population.
  const std::map<net::NodeId, RouteEntry>& entries() const { return routes_; }

 private:
  sim::Time lifetime_;
  std::map<net::NodeId, RouteEntry> routes_;
};

}  // namespace ecgrid::protocols
