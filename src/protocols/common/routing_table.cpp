#include "protocols/common/routing_table.hpp"

namespace ecgrid::protocols {

bool RoutingTable::update(net::NodeId destination, const RouteEntry& candidate,
                          sim::Time now) {
  auto it = routes_.find(destination);
  if (it != routes_.end() && it->second.expiry > now) {
    const RouteEntry& have = it->second;
    bool fresher = seqFresher(candidate.destSeq, have.destSeq);
    bool sameButShorter = candidate.destSeq == have.destSeq &&
                          candidate.hopCount < have.hopCount;
    if (!fresher && !sameButShorter) return false;
  }
  RouteEntry stored = candidate;
  stored.expiry = now + lifetime_;
  routes_[destination] = stored;
  return true;
}

std::optional<RouteEntry> RoutingTable::lookup(net::NodeId destination,
                                               sim::Time now) {
  auto it = routes_.find(destination);
  if (it == routes_.end()) return std::nullopt;
  if (it->second.expiry <= now) return std::nullopt;
  return it->second;
}

void RoutingTable::refresh(net::NodeId destination, sim::Time now) {
  auto it = routes_.find(destination);
  if (it != routes_.end() && it->second.expiry > now) {
    it->second.expiry = now + lifetime_;
  }
}

void RoutingTable::erase(net::NodeId destination) { routes_.erase(destination); }

SeqNo RoutingTable::lastKnownSeq(net::NodeId destination) const {
  auto it = routes_.find(destination);
  return it == routes_.end() ? 0 : it->second.destSeq;
}

std::vector<RouteRecord> RoutingTable::exportRecords(sim::Time now) const {
  std::vector<RouteRecord> records;
  records.reserve(routes_.size());
  for (const auto& [dest, entry] : routes_) {
    if (entry.expiry <= now) continue;
    RouteRecord rec;
    rec.destination = dest;
    rec.nextGrid = entry.nextGrid;
    rec.destGrid = entry.destGrid;
    rec.destSeq = entry.destSeq;
    rec.expiry = entry.expiry;
    records.push_back(rec);
  }
  return records;
}

void RoutingTable::importRecords(const std::vector<RouteRecord>& records,
                                 sim::Time now) {
  for (const RouteRecord& rec : records) {
    if (rec.expiry <= now) continue;
    RouteEntry entry;
    entry.nextGrid = rec.nextGrid;
    entry.destGrid = rec.destGrid;
    entry.destSeq = rec.destSeq;
    entry.hopCount = 0;  // unknown after handover; any fresher info wins
    auto it = routes_.find(rec.destination);
    if (it == routes_.end() || !seqFresher(it->second.destSeq, rec.destSeq)) {
      entry.expiry = rec.expiry;
      routes_[rec.destination] = entry;
    }
  }
  (void)now;
}

}  // namespace ecgrid::protocols
