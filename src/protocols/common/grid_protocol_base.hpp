// Shared machinery of the GRID family (paper §3).
//
// GridProtocolBase implements everything GRID and ECGRID have in common:
//   * periodic HELLO beacons from every active host, carrying the paper's
//     five fields (id, grid, gflag, level, dist);
//   * the distributed gateway election algorithm (HELLO collection window
//     followed by deterministic rule application — see election.hpp);
//   * gateway bookkeeping: host table, neighbour-gateway table, newcomer
//     handshakes, LEAVE notifications, gateway hand-offs (HANDOFF),
//     departure/exhaustion retirement (RETIRE) and no-gateway detection;
//   * the data path: members relay through their gateway, gateways run the
//     shared RoutingEngine (grid-confined AODV).
//
// Derived classes specialise the energy dimension:
//   * GridProtocol (baseline) disables battery-aware election and never
//     sleeps — every host idles awake, exactly the paper's GRID;
//   * EcgridProtocol layers sleeping, RAS paging, ACQ, buffered wakeup
//     delivery, and battery-level load balancing on top.
#pragma once

#include <cstdint>

#include <deque>
#include <functional>
#include <map>
#include <optional>

#include "net/host_env.hpp"
#include "net/routing_protocol.hpp"
#include "obs/metrics.hpp"
#include "protocols/common/election.hpp"
#include "protocols/common/messages.hpp"
#include "protocols/common/routing_engine.hpp"
#include "protocols/common/tables.hpp"
#include "sim/rng.hpp"
#include "util/ownership.hpp"

namespace ecgrid::protocols {

struct GridProtocolConfig {
  sim::Time helloPeriod = 1.0;          ///< paper's "HELLO period"
  double helloJitterFrac = 0.1;         ///< de-synchronise beacons
  double gatewayStaleFactor = 2.5;      ///< ×helloPeriod: no-gateway timeout
  sim::Time electionWindow = 0.5;       ///< HELLO collection after RETIRE
  sim::Time newcomerWait = 2.0;         ///< silence ⇒ empty grid ⇒ self-elect
  sim::Time retireTau = 0.05;           ///< paper's τ between wakeup and RETIRE
  std::size_t appPendingLimit = 32;     ///< app data queued while gateway unknown
  RoutingConfig routing;
  ElectionPolicy election;
  /// Location service used to confine RREQ search areas. The harness
  /// installs a GPS oracle; nullopt answers force global searches.
  std::function<std::optional<geo::GridCoord>(net::NodeId)> locationHint;
};

class ECGRID_DOMAIN_PER_HOST GridProtocolBase : public net::RoutingProtocol {
 public:
  enum class Role : std::uint8_t {
    kUndecided,  ///< collecting HELLOs before the first election
    kMember,     ///< active non-gateway
    kGateway,
    kSleeping,   ///< ECGRID only
    kDead,
  };

  GridProtocolBase(net::HostEnv& env, const GridProtocolConfig& config);

  // net::RoutingProtocol
  void start() override;
  void onFrame(const net::Packet& packet) override;
  void sendData(net::NodeId destination, int payloadBytes,
                const net::DataTag& tag) override;
  void onPaged(const net::PageSignal& signal) override;
  void onSendFailed(const net::Packet& packet) override;
  void onCellChanged(const geo::GridCoord& from,
                     const geo::GridCoord& to) override;
  void onShutdown() override;

  Role role() const { return role_; }
  bool isGateway() const { return role_ == Role::kGateway; }
  std::optional<net::NodeId> currentGateway() const { return currentGateway_; }
  /// Grid this host is currently gateway of (set while Role::kGateway,
  /// including the retire window after the host left the cell). Used by
  /// the invariant auditor's gateway-uniqueness check.
  std::optional<geo::GridCoord> servedGrid() const { return servedGrid_; }
  const RoutingStats& routingStats() const { return engine_.stats(); }
  /// Routing engine introspection for audits and fault-injection tests.
  RoutingEngine& routingEngine() { return engine_; }
  const GridProtocolConfig& config() const { return config_; }

 protected:
  // --- hooks for derived protocols -----------------------------------------
  /// May this host sleep right now? Called whenever a sleep opportunity
  /// appears (gateway known, nothing pending). Base: never.
  virtual void maybeSleep() {}

  /// Final data hop to an in-grid host that is not us. Base/GRID: direct
  /// unicast (everyone is awake). ECGRID: buffer + RAS page.
  virtual void deliverToLocalHost(net::NodeId dst, const net::Packet& frame);

  /// Gateway leaves `forGrid` (or retires for load balance): run the
  /// paper's handover. Base/GRID: immediate RETIRE broadcast. ECGRID:
  /// grid-page, wait τ, then RETIRE.
  virtual void beginRetire(const geo::GridCoord& forGrid);

  /// No-gateway event detected (paper §3.2 lists the three detectors).
  /// Base: start a re-election among active hosts. ECGRID: page the grid
  /// first so sleepers join.
  virtual void onNoGateway();

  /// A local host we believed sleeping just proved active (HELLO/ACQ).
  virtual void onLocalHostActive(net::NodeId /*host*/) {}

  /// Role transition notification.
  virtual void onRoleChanged(Role /*from*/, Role /*to*/) {}

  /// Runs once per HELLO period while this host is the gateway — ECGRID
  /// hangs its battery-level load-balance check here.
  virtual void gatewayPeriodic() {}

  /// Should hosts seeded into a fresh gateway's table from election-time
  /// HELLOs be presumed asleep? False for GRID (nobody sleeps), true for
  /// ECGRID (members sleep as soon as the gateway declares).
  virtual bool assumeSeededHostsSleep() const { return false; }

  // --- operations shared with derived classes ------------------------------
  Candidate selfCandidate();
  std::shared_ptr<const HelloHeader> makeHelloHeader();
  void sendHello();
  void becomeGateway();
  void stepDownToMember(std::optional<net::NodeId> newGateway);
  void startElection();
  void broadcastRetire(const geo::GridCoord& forGrid,
                       std::vector<RouteRecord> table);
  /// Queue app data while no gateway is reachable; flushed on discovery.
  void queueAppData(std::shared_ptr<const net::Header> header);
  void flushAppQueue();
  void setRole(Role role);
  void noteGatewaySeen(net::NodeId gateway);
  bool gatewayIsStale() const;
  /// Make-before-break: after RETIREing, keep forwarding transit data
  /// until the successor gateway is established, so handovers do not
  /// black-hole in-flight flows ("the new gateway will inherit the
  /// routing table from the original gateway", paper §3).
  void enterGraceRouting();
  void endGraceRouting();
  bool graceRouting() const { return graceRouting_; }
  void unicastFrame(net::NodeId to, std::shared_ptr<const net::Header> header);
  void broadcastFrameRaw(std::shared_ptr<const net::Header> header);

  net::HostEnv& env_;
  GridProtocolConfig config_;
  RoutingEngine engine_;
  HostTable hostTable_;
  NeighbourGatewayTable neighbours_;
  sim::RngStream rng_;

  Role role_ = Role::kUndecided;
  std::optional<geo::GridCoord> servedGrid_;
  std::optional<net::NodeId> currentGateway_;
  sim::Time lastGatewayHello_ = sim::kTimeZero;
  sim::Time lastHelloSent_ = -1.0;

  /// Same-grid HELLO sightings used as the election field.
  struct Sighting {
    Candidate candidate;
    sim::Time lastHeard = sim::kTimeZero;
  };
  std::map<net::NodeId, Sighting> candidates_;

  /// Routing table stored from a RETIRE, adopted if we win the election.
  std::optional<std::vector<RouteRecord>> storedRetireTable_;

  /// Set between entering a new grid and assessing its sitting gateway.
  bool awaitingGatewayAssessment_ = false;

  std::deque<std::shared_ptr<const net::Header>> appPending_;

  sim::EventHandle helloTimer_;
  sim::EventHandle electionTimer_;
  sim::EventHandle newcomerTimer_;
  sim::EventHandle graceTimer_;
  bool graceRouting_ = false;

 private:
  /// Open an election-round trace span (and count the round). Safe to
  /// call with a round already open: no-op until decideElection closes it.
  void beginElectionRound();
  /// Close the open election-round span, if any, recording the outcome.
  void endElectionRound(bool won);

  void helloTick();
  void decideElection();
  void handleHello(const net::Packet& frame, const HelloHeader& hello);
  void handleRetire(const net::Packet& frame, const RetireHeader& retire);
  void handleHandoff(const net::Packet& frame, const HandoffHeader& handoff);
  void handleLeave(const net::Packet& frame, const LeaveHeader& leave);
  void handleAcq(const net::Packet& frame, const AcqHeader& acq);
  void handleData(const net::Packet& frame, const DataHeader& data);
  std::vector<Candidate> freshCandidates(sim::Time window);
  void handOffTo(net::NodeId newGateway);
  RoutingEngine::Hooks makeHooks();

  // Observability (inert without a hub; see obs/observability.hpp).
  obs::Counter mElectionsStarted_;
  obs::Counter mElectionsWon_;
  obs::Counter mRetires_;
  obs::Counter mHandoffs_;
  std::uint32_t electionSeq_ = 0;   ///< per-host round number (span ids)
  std::uint64_t openElectionSpan_ = 0;  ///< 0 = no round in flight
};

}  // namespace ecgrid::protocols
