#include "protocols/common/election.hpp"

namespace ecgrid::protocols {

bool beats(const Candidate& a, const Candidate& b,
           const ElectionPolicy& policy) {
  if (policy.useBatteryLevel) {
    int ra = energy::electionRank(a.level);
    int rb = energy::electionRank(b.level);
    if (ra != rb) return ra > rb;
  }
  double diff = a.distToCenter - b.distToCenter;
  if (diff < -policy.distanceEpsilon) return true;
  if (diff > policy.distanceEpsilon) return false;
  return a.id < b.id;
}

std::optional<Candidate> electGateway(const std::vector<Candidate>& field,
                                      const ElectionPolicy& policy) {
  if (field.empty()) return std::nullopt;
  const Candidate* best = &field.front();
  for (const Candidate& c : field) {
    if (beats(c, *best, policy)) best = &c;
  }
  return *best;
}

bool newcomerReplaces(const Candidate& newcomer, const Candidate& gateway,
                      const ElectionPolicy& policy) {
  if (!policy.useBatteryLevel) return false;  // GRID never hot-swaps
  return energy::electionRank(newcomer.level) >
         energy::electionRank(gateway.level);
}

}  // namespace ecgrid::protocols
