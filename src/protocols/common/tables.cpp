#include "protocols/common/tables.hpp"

namespace ecgrid::protocols {

bool RreqCache::firstSighting(net::NodeId source, std::uint32_t requestId,
                              sim::Time now) {
  sweep(now);
  auto key = std::make_pair(source, requestId);
  auto [it, inserted] = seen_.try_emplace(key, now);
  if (!inserted) {
    it->second = now;  // keep suppressing while copies circulate
    return false;
  }
  return true;
}

void RreqCache::sweep(sim::Time now) {
  // Amortised: sweep at most once per horizon.
  if (now - lastSweep_ < horizon_) return;
  lastSweep_ = now;
  for (auto it = seen_.begin(); it != seen_.end();) {
    if (now - it->second > horizon_) {
      it = seen_.erase(it);
    } else {
      ++it;
    }
  }
}

void NeighbourGatewayTable::observe(const geo::GridCoord& grid,
                                    net::NodeId gateway,
                                    const geo::Vec2& position, sim::Time now) {
  entries_[grid] = Entry{gateway, position, now};
}

void NeighbourGatewayTable::forget(const geo::GridCoord& grid,
                                   net::NodeId gateway) {
  auto it = entries_.find(grid);
  if (it != entries_.end() && it->second.gateway == gateway) {
    entries_.erase(it);
  }
}

void NeighbourGatewayTable::forgetById(net::NodeId gateway) {
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->second.gateway == gateway) {
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
}

std::optional<net::NodeId> NeighbourGatewayTable::gatewayOf(
    const geo::GridCoord& grid, sim::Time now) const {
  auto it = entries_.find(grid);
  if (it == entries_.end()) return std::nullopt;
  if (now - it->second.lastHeard > staleAfter_) return std::nullopt;
  return it->second.gateway;
}

std::optional<net::NodeId> NeighbourGatewayTable::gatewayOf(
    const geo::GridCoord& grid, sim::Time now, const geo::Vec2& from,
    double maxDistance) const {
  auto it = entries_.find(grid);
  if (it == entries_.end()) return std::nullopt;
  if (now - it->second.lastHeard > staleAfter_) return std::nullopt;
  if (from.distanceTo(it->second.position) > maxDistance) return std::nullopt;
  return it->second.gateway;
}

void HostTable::markActive(net::NodeId host, sim::Time now) {
  hosts_[host] = Entry{false, now};
}

void HostTable::markSleeping(net::NodeId host, sim::Time now) {
  hosts_[host] = Entry{true, now};
}

void HostTable::remove(net::NodeId host) { hosts_.erase(host); }

bool HostTable::contains(net::NodeId host, sim::Time) const {
  return hosts_.count(host) > 0;
}

bool HostTable::isSleeping(net::NodeId host, sim::Time now) const {
  auto it = hosts_.find(host);
  if (it == hosts_.end()) return false;
  if (it->second.sleeping) return true;
  // An "active" host that stopped HELLOing is presumed to have slept.
  return now - it->second.lastSeen > activeStaleAfter_;
}

void HostTable::demoteStaleActives(sim::Time now) {
  for (auto& [host, entry] : hosts_) {
    if (!entry.sleeping && now - entry.lastSeen > activeStaleAfter_) {
      entry.sleeping = true;
    }
  }
}

std::vector<std::pair<net::NodeId, bool>> HostTable::exportEntries() const {
  std::vector<std::pair<net::NodeId, bool>> out;
  out.reserve(hosts_.size());
  for (const auto& [host, entry] : hosts_) {
    out.emplace_back(host, entry.sleeping);
  }
  return out;
}

void HostTable::importEntries(
    const std::vector<std::pair<net::NodeId, bool>>& entries, sim::Time now) {
  for (const auto& [host, sleeping] : entries) {
    hosts_[host] = Entry{sleeping, now};
  }
}

}  // namespace ecgrid::protocols
