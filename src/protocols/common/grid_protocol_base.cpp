#include "protocols/common/grid_protocol_base.hpp"

#include "obs/observability.hpp"
#include "util/error.hpp"
#include "util/hot_path.hpp"
#include "util/log.hpp"

namespace ecgrid::protocols {

namespace {
constexpr const char* kTag = "gridproto";
}

GridProtocolBase::GridProtocolBase(net::HostEnv& env,
                                   const GridProtocolConfig& config)
    : env_(env),
      config_(config),
      engine_(env, makeHooks(), config.routing),
      hostTable_(config.helloPeriod * config.gatewayStaleFactor),
      neighbours_(config.helloPeriod * config.gatewayStaleFactor),
      rng_(env.simulator().rng().stream("gridproto", env.id())),
      mElectionsStarted_(
          obs::counter(env.simulator(), "grid.elections.started")),
      mElectionsWon_(obs::counter(env.simulator(), "grid.elections.won")),
      mRetires_(obs::counter(env.simulator(), "grid.retires")),
      mHandoffs_(obs::counter(env.simulator(), "grid.handoffs")) {
  ECGRID_REQUIRE(config.helloPeriod > 0.0, "HELLO period must be positive");
}

void GridProtocolBase::beginElectionRound() {
  if (openElectionSpan_ != 0) return;
  mElectionsStarted_.add();
  openElectionSpan_ =
      (static_cast<std::uint64_t>(static_cast<std::uint32_t>(env_.id()))
       << 32) |
      ++electionSeq_;
  if (auto* tracer = obs::tracer(env_.simulator())) {
    tracer->begin("grid", "election", openElectionSpan_, env_.id(),
                  {{"round", electionSeq_}});
  }
}

void GridProtocolBase::endElectionRound(bool won) {
  if (openElectionSpan_ == 0) return;
  if (won) mElectionsWon_.add();
  if (auto* tracer = obs::tracer(env_.simulator())) {
    tracer->end("grid", "election", openElectionSpan_, env_.id(),
                {{"won", won ? 1 : 0}});
  }
  openElectionSpan_ = 0;
}

RoutingEngine::Hooks GridProtocolBase::makeHooks() {
  RoutingEngine::Hooks hooks;
  hooks.isRouter = [this] {
    return role_ == Role::kGateway || graceRouting_;
  };
  hooks.routerOf =
      [this](const geo::GridCoord& grid) -> std::optional<net::NodeId> {
    if (role_ == Role::kGateway && grid == env_.cell()) return env_.id();
    return neighbours_.gatewayOf(grid, env_.simulator().now(),
                                 env_.position(),
                                 config_.routing.maxForwardDistance);
  };
  hooks.hostIsLocal = [this](net::NodeId host) {
    return (role_ == Role::kGateway || graceRouting_) &&
           hostTable_.contains(host, env_.simulator().now());
  };
  hooks.deliverLocal = [this](net::NodeId dst, const net::Packet& frame) {
    if (dst == env_.id()) {
      const auto* data = frame.headerAs<DataHeader>();
      ECGRID_CHECK(data != nullptr, "local delivery of non-data frame");
      env_.deliverToApp(data->appSrc(), data->tag(), data->payloadBytes());
      return;
    }
    deliverToLocalHost(dst, frame);
  };
  hooks.locationHint =
      [this](net::NodeId host) -> std::optional<geo::GridCoord> {
    if (config_.locationHint) return config_.locationHint(host);
    return std::nullopt;
  };
  hooks.observeRouter = [this](const geo::GridCoord& grid, net::NodeId id,
                               const geo::Vec2& position) {
    if (id == env_.id()) return;
    neighbours_.observe(grid, id, position, env_.simulator().now());
  };
  return hooks;
}

// --------------------------------------------------------------------------
// lifecycle

void GridProtocolBase::start() {
  setRole(Role::kUndecided);
  sendHello();
  beginElectionRound();
  double jitter = rng_.uniform(0.0, config_.helloJitterFrac);
  electionTimer_ = env_.simulator().schedule(
      config_.helloPeriod * (1.0 + jitter), [this] { decideElection(); },
      "proto/election");
  helloTimer_ = env_.simulator().schedule(
      config_.helloPeriod * (1.0 + rng_.uniform(0.0, config_.helloJitterFrac)),
      [this] { helloTick(); }, "proto/hello");
}

void GridProtocolBase::onShutdown() {
  endElectionRound(/*won=*/false);
  setRole(Role::kDead);
  helloTimer_.cancel();
  electionTimer_.cancel();
  newcomerTimer_.cancel();
  graceTimer_.cancel();
  graceRouting_ = false;
  engine_.stopRouting();
  appPending_.clear();
}

void GridProtocolBase::setRole(Role role) {
  if (role_ == role) return;
  Role old = role_;
  role_ = role;
  if (old == Role::kGateway) servedGrid_.reset();
  ECGRID_LOG_DEBUG(kTag, "node " << env_.id() << " role "
                                 << static_cast<int>(old) << " -> "
                                 << static_cast<int>(role));
  if (auto* tracer = obs::tracer(env_.simulator())) {
    tracer->instant("grid", "role", env_.id(),
                    {{"from", static_cast<int>(old)},
                     {"to", static_cast<int>(role)}});
  }
  onRoleChanged(old, role);
}

// --------------------------------------------------------------------------
// HELLO beaconing and the periodic tick

Candidate GridProtocolBase::selfCandidate() {
  Candidate c;
  c.id = env_.id();
  c.level = env_.batteryLevel();
  c.distToCenter = env_.gridMap().distanceToOwnCenter(env_.position());
  return c;
}

std::shared_ptr<const HelloHeader> GridProtocolBase::makeHelloHeader() {
  Candidate self = selfCandidate();
  return std::make_shared<HelloHeader>(
      env_.id(), env_.cell(), role_ == Role::kGateway, self.level,
      self.distToCenter, env_.position());
}

ECGRID_HOT_PATH void GridProtocolBase::sendHello() {
  if (role_ == Role::kDead || role_ == Role::kSleeping) return;
  broadcastFrameRaw(makeHelloHeader());
  lastHelloSent_ = env_.simulator().now();
}

ECGRID_HOT_PATH void GridProtocolBase::helloTick() {
  if (role_ == Role::kDead) return;
  if (role_ != Role::kSleeping) {
    sendHello();
    if (role_ == Role::kGateway) {
      hostTable_.demoteStaleActives(env_.simulator().now());
      gatewayPeriodic();
    } else if (currentGateway_.has_value() && gatewayIsStale()) {
      // Detector 1 (paper §3.2): an active host stopped hearing the
      // gateway's HELLOs.
      currentGateway_.reset();
      onNoGateway();
    } else if (!currentGateway_.has_value() && role_ == Role::kMember &&
               !electionTimer_.pending() && !newcomerTimer_.pending()) {
      onNoGateway();
    }
  }
  helloTimer_ = env_.simulator().schedule(
      config_.helloPeriod * (1.0 + rng_.uniform(0.0, config_.helloJitterFrac)),
      [this] { helloTick(); }, "proto/hello");
}

bool GridProtocolBase::gatewayIsStale() const {
  return env_.simulator().now() - lastGatewayHello_ >
         config_.helloPeriod * config_.gatewayStaleFactor;
}

void GridProtocolBase::noteGatewaySeen(net::NodeId gateway) {
  currentGateway_ = gateway;
  lastGatewayHello_ = env_.simulator().now();
}

// --------------------------------------------------------------------------
// elections

std::vector<Candidate> GridProtocolBase::freshCandidates(sim::Time window) {
  sim::Time now = env_.simulator().now();
  geo::GridCoord myGrid = env_.cell();
  std::vector<Candidate> field;
  for (auto it = candidates_.begin(); it != candidates_.end();) {
    if (now - it->second.lastHeard > window) {
      it = candidates_.erase(it);
      continue;
    }
    (void)myGrid;
    field.push_back(it->second.candidate);
    ++it;
  }
  return field;
}

void GridProtocolBase::decideElection() {
  if (role_ == Role::kDead || role_ == Role::kGateway) return;
  if (currentGateway_.has_value() && !gatewayIsStale()) {
    endElectionRound(/*won=*/false);
    return;
  }
  std::vector<Candidate> field =
      freshCandidates(config_.helloPeriod * config_.gatewayStaleFactor);
  field.push_back(selfCandidate());
  std::optional<Candidate> winner = electGateway(field, config_.election);
  ECGRID_CHECK(winner.has_value(), "election field contained self");
  endElectionRound(/*won=*/winner->id == env_.id());
  if (winner->id == env_.id()) {
    becomeGateway();
  }
  // Losers stay put: the winner's gflag HELLO will arrive, and the
  // watchdog in helloTick() restarts the election if it never does.
}

void GridProtocolBase::startElection() {
  if (role_ == Role::kDead || role_ == Role::kGateway) return;
  if (electionTimer_.pending()) return;  // election already under way
  beginElectionRound();
  sendHello();
  electionTimer_ = env_.simulator().schedule(
      config_.electionWindow *
          (1.0 + rng_.uniform(0.0, config_.helloJitterFrac)),
      [this] { decideElection(); }, "proto/election");
}

void GridProtocolBase::enterGraceRouting() {
  graceRouting_ = true;
  graceTimer_.cancel();
  graceTimer_ = env_.simulator().schedule(
      config_.electionWindow * 3.0, [this] { endGraceRouting(); },
      "proto/grace");
}

void GridProtocolBase::endGraceRouting() {
  if (!graceRouting_) return;
  graceRouting_ = false;
  graceTimer_.cancel();
  if (role_ != Role::kGateway) {
    engine_.stopRouting();
    hostTable_.clear();
    maybeSleep();
  }
}

void GridProtocolBase::becomeGateway() {
  endElectionRound(/*won=*/true);
  newcomerTimer_.cancel();
  electionTimer_.cancel();
  if (graceRouting_) {
    // Promoted while still grace-routing the previous grid: the old host
    // table is stale, the routes remain useful.
    graceRouting_ = false;
    graceTimer_.cancel();
    hostTable_.clear();
  }
  setRole(Role::kGateway);
  servedGrid_ = env_.cell();
  currentGateway_ = env_.id();
  lastGatewayHello_ = env_.simulator().now();
  // Seed the host table from the HELLOs collected while we were a mere
  // candidate: members may drop into sleep mode the instant they hear our
  // gflag HELLO, and a gateway must know its sleepers to answer RREQs and
  // page them (paper §3: the host table is "constructed from the id field
  // of the HELLO messages").
  {
    sim::Time now = env_.simulator().now();
    sim::Time window = config_.helloPeriod * config_.gatewayStaleFactor;
    for (const auto& [id, sighting] : candidates_) {
      if (id == env_.id()) continue;
      if (now - sighting.lastHeard > window) continue;
      if (assumeSeededHostsSleep()) {
        // ECGRID: losers drop into sleep mode the moment the gflag HELLO
        // lands, so deliveries to them must start with an RAS page.
        hostTable_.markSleeping(id, sighting.lastHeard);
      } else {
        hostTable_.markActive(id, sighting.lastHeard);
      }
    }
  }
  if (storedRetireTable_.has_value()) {
    engine_.routes().importRecords(*storedRetireTable_,
                                   env_.simulator().now());
    storedRetireTable_.reset();
  }
  // Declare immediately (paper §3.1 rule 3: HELLO with the gflag set);
  // this also tells neighbouring gateways about the change.
  sendHello();
  flushAppQueue();
}

void GridProtocolBase::stepDownToMember(
    std::optional<net::NodeId> newGateway) {
  engine_.stopRouting();
  hostTable_.clear();
  setRole(Role::kMember);
  if (newGateway.has_value()) {
    noteGatewaySeen(*newGateway);
  } else {
    currentGateway_.reset();
  }
  maybeSleep();
}

void GridProtocolBase::handOffTo(net::NodeId newGateway) {
  mHandoffs_.add();
  if (auto* tracer = obs::tracer(env_.simulator())) {
    tracer->instant("grid", "handoff", env_.id(), {{"to", newGateway}});
  }
  auto handoff = std::make_shared<HandoffHeader>(
      env_.cell(), engine_.routes().exportRecords(env_.simulator().now()),
      hostTable_.exportEntries());
  unicastFrame(newGateway, handoff);
  stepDownToMember(newGateway);
}

void GridProtocolBase::broadcastRetire(const geo::GridCoord& forGrid,
                                       std::vector<RouteRecord> table) {
  mRetires_.add();
  if (auto* tracer = obs::tracer(env_.simulator())) {
    tracer->instant("grid", "retire", env_.id(),
                    {{"gx", forGrid.x}, {"gy", forGrid.y}});
  }
  auto retire = std::make_shared<RetireHeader>(forGrid, std::move(table));
  broadcastFrameRaw(retire);
}

void GridProtocolBase::beginRetire(const geo::GridCoord& forGrid) {
  // GRID baseline: everyone is awake, so the RETIRE can go out at once.
  broadcastRetire(forGrid, engine_.routes().exportRecords(env_.simulator().now()));
}

void GridProtocolBase::onNoGateway() { startElection(); }

// --------------------------------------------------------------------------
// frame handling

ECGRID_HOT_PATH void GridProtocolBase::onFrame(const net::Packet& frame) {
  if (role_ == Role::kDead || role_ == Role::kSleeping) return;
  if (const auto* hello = frame.headerAs<HelloHeader>()) {
    handleHello(frame, *hello);
    return;
  }
  if (const auto* data = frame.headerAs<DataHeader>()) {
    handleData(frame, *data);
    return;
  }
  if (frame.headerAs<RreqHeader>() != nullptr ||
      frame.headerAs<RrepHeader>() != nullptr ||
      frame.headerAs<RerrHeader>() != nullptr) {
    engine_.onFrame(frame);
    return;
  }
  if (const auto* retire = frame.headerAs<RetireHeader>()) {
    handleRetire(frame, *retire);
    return;
  }
  if (const auto* handoff = frame.headerAs<HandoffHeader>()) {
    handleHandoff(frame, *handoff);
    return;
  }
  if (const auto* leave = frame.headerAs<LeaveHeader>()) {
    handleLeave(frame, *leave);
    return;
  }
  if (const auto* snooze = frame.headerAs<SleepNoticeHeader>()) {
    if ((role_ == Role::kGateway || graceRouting_) &&
        snooze->grid() == env_.cell()) {
      hostTable_.markSleeping(snooze->host(), env_.simulator().now());
    }
    return;
  }
  if (const auto* acq = frame.headerAs<AcqHeader>()) {
    handleAcq(frame, *acq);
    return;
  }
}

ECGRID_HOT_PATH void GridProtocolBase::handleHello(const net::Packet& frame,
                                   const HelloHeader& hello) {
  (void)frame;
  sim::Time now = env_.simulator().now();
  geo::GridCoord myGrid = env_.cell();

  if (hello.grid() != myGrid) {
    if (hello.gatewayFlag()) {
      neighbours_.observe(hello.grid(), hello.id(), hello.position(), now);
    }
    return;
  }

  // Same-grid HELLO: record the sender as an election candidate.
  Sighting sighting;
  sighting.candidate = Candidate{hello.id(), hello.level(),
                                 hello.distToCenter()};
  sighting.lastHeard = now;
  candidates_[hello.id()] = sighting;

  if (hello.gatewayFlag()) {
    if (role_ == Role::kGateway) {
      // Two gateways in one grid (merge or simultaneous declarations):
      // the weaker candidate yields and hands its tables over.
      if (beats(sighting.candidate, selfCandidate(), config_.election)) {
        ECGRID_LOG_DEBUG(kTag, "node " << env_.id() << " yields gateway to "
                                       << hello.id());
        handOffTo(hello.id());
      }
      return;
    }
    noteGatewaySeen(hello.id());
    electionTimer_.cancel();
    newcomerTimer_.cancel();
    if (role_ == Role::kUndecided) setRole(Role::kMember);

    if (awaitingGatewayAssessment_) {
      awaitingGatewayAssessment_ = false;
      // Paper §3.2 situation 1: an incoming host replaces the gateway only
      // with a strictly higher battery level.
      if (newcomerReplaces(selfCandidate(), sighting.candidate,
                           config_.election)) {
        becomeGateway();  // the old gateway yields on hearing our gflag
        return;
      }
    }
    flushAppQueue();
    maybeSleep();
    return;
  }

  // Plain member HELLO in our grid.
  if (role_ == Role::kGateway) {
    sim::Time before = now;
    bool isNew = !hostTable_.contains(hello.id(), before);
    hostTable_.markActive(hello.id(), now);
    onLocalHostActive(hello.id());
    if (isNew && now - lastHelloSent_ > 0.25) {
      // Paper §3.2: the gateway re-beacons when it hears a newcomer, so
      // the newcomer learns who is in charge.
      sendHello();
    }
  }
}

void GridProtocolBase::handleRetire(const net::Packet& frame,
                                    const RetireHeader& retire) {
  sim::Time now = env_.simulator().now();
  neighbours_.forget(retire.grid(), frame.macSrc);
  if (retire.grid() != env_.cell()) return;
  if (role_ == Role::kGateway) return;  // stale duplicate; ignore
  if (frame.macSrc == env_.id()) return;

  storedRetireTable_ = retire.table();
  if (currentGateway_ == frame.macSrc) currentGateway_.reset();
  (void)now;
  startElection();
}

void GridProtocolBase::handleHandoff(const net::Packet& frame,
                                     const HandoffHeader& handoff) {
  if (frame.macDst != env_.id()) return;
  if (role_ == Role::kDead) return;
  sim::Time now = env_.simulator().now();
  engine_.routes().importRecords(handoff.table(), now);
  hostTable_.importEntries(handoff.hostTable(), now);
  if (role_ != Role::kGateway) becomeGateway();
}

void GridProtocolBase::handleLeave(const net::Packet& frame,
                                   const LeaveHeader& leave) {
  (void)frame;
  if (role_ != Role::kGateway) return;
  if (leave.grid() != env_.cell()) return;
  hostTable_.remove(leave.host());
}

void GridProtocolBase::handleAcq(const net::Packet& frame,
                                 const AcqHeader& acq) {
  (void)frame;
  if (role_ != Role::kGateway) return;
  if (acq.grid() != env_.cell()) return;
  hostTable_.markActive(acq.host(), env_.simulator().now());
  onLocalHostActive(acq.host());
  // Paper §3.3: "The gateway of S will respond with a HELLO message";
  // the waking host learns the (possibly new) gateway identity from it.
  // Unicast so the response skips the broadcast de-correlation jitter —
  // this handshake is on the per-packet latency path of sleeping sources.
  unicastFrame(acq.host(), makeHelloHeader());
}

ECGRID_HOT_PATH void GridProtocolBase::handleData(const net::Packet& frame,
                                  const DataHeader& data) {
  if (data.appDst() == env_.id()) {
    env_.deliverToApp(data.appSrc(), data.tag(), data.payloadBytes());
    return;
  }
  if (role_ == Role::kGateway || graceRouting_) {
    engine_.routeData(frame, data);
    return;
  }
  // Transit data reached a non-gateway (e.g. a just-retired gateway whose
  // neighbours have stale tables): relay it to the current gateway rather
  // than dropping it on the floor.
  if (currentGateway_.has_value() && *currentGateway_ != env_.id() &&
      *currentGateway_ != frame.macSrc) {
    ECGRID_LOG_TRACE(kTag, "node " << env_.id() << " member-relay "
                                   << data.describe() << " -> "
                                   << *currentGateway_);
    unicastFrame(*currentGateway_, frame.header);
  } else {
    ECGRID_LOG_TRACE(kTag, "node " << env_.id() << " @" << env_.cell()
                                   << " member-drop " << data.describe()
                                   << " gw="
                                   << (currentGateway_.has_value()
                                           ? *currentGateway_
                                           : -2)
                                   << " from=" << frame.macSrc);
  }
}

// --------------------------------------------------------------------------
// application data

void GridProtocolBase::sendData(net::NodeId destination, int payloadBytes,
                                const net::DataTag& tag) {
  if (role_ == Role::kDead) return;
  auto header = std::make_shared<DataHeader>(env_.id(), destination,
                                             payloadBytes, tag);
  if (role_ == Role::kGateway) {
    net::Packet frame;
    frame.macSrc = env_.id();
    frame.macDst = env_.id();
    frame.header = header;
    engine_.routeData(frame, *header);
    return;
  }
  if (role_ != Role::kSleeping && currentGateway_.has_value() &&
      !gatewayIsStale()) {
    unicastFrame(*currentGateway_, header);
    return;
  }
  queueAppData(header);
}

void GridProtocolBase::queueAppData(std::shared_ptr<const net::Header> header) {
  if (appPending_.size() >= config_.appPendingLimit) {
    appPending_.pop_front();  // drop-oldest
  }
  appPending_.push_back(std::move(header));
  if (role_ == Role::kMember && !currentGateway_.has_value()) {
    onNoGateway();
  }
}

void GridProtocolBase::flushAppQueue() {
  if (appPending_.empty()) return;
  if (role_ == Role::kGateway) {
    std::deque<std::shared_ptr<const net::Header>> pending;
    pending.swap(appPending_);
    for (auto& header : pending) {
      const auto* data = dynamic_cast<const DataHeader*>(header.get());
      ECGRID_CHECK(data != nullptr, "app queue held a non-data header");
      net::Packet frame;
      frame.macSrc = env_.id();
      frame.macDst = env_.id();
      frame.header = header;
      engine_.routeData(frame, *data);
    }
    return;
  }
  if (!currentGateway_.has_value()) return;
  std::deque<std::shared_ptr<const net::Header>> pending;
  pending.swap(appPending_);
  for (auto& header : pending) {
    unicastFrame(*currentGateway_, header);
  }
}

// --------------------------------------------------------------------------
// mobility

void GridProtocolBase::onCellChanged(const geo::GridCoord& from,
                                     const geo::GridCoord& to) {
  (void)to;
  if (role_ == Role::kDead) return;

  if (role_ == Role::kGateway) {
    // Paper §3.2 "hosts move out of a grid": a departing gateway hands its
    // routing table to the grid it left, and keeps forwarding in-flight
    // traffic until the successor is elected (grace routing).
    beginRetire(from);
    setRole(Role::kMember);
    enterGraceRouting();
  } else if (role_ == Role::kMember || role_ == Role::kUndecided) {
    // Non-gateway departure: unicast LEAVE to the old gateway.
    if (currentGateway_.has_value() && *currentGateway_ != env_.id()) {
      unicastFrame(*currentGateway_,
                   std::make_shared<LeaveHeader>(env_.id(), from));
    }
    setRole(Role::kMember);
  }

  // Newcomer procedure in the new grid (paper §3.2 situation 1).
  currentGateway_.reset();
  candidates_.clear();
  awaitingGatewayAssessment_ = true;
  sendHello();
  newcomerTimer_.cancel();
  newcomerTimer_ = env_.simulator().schedule(
      config_.newcomerWait *
          (1.0 + rng_.uniform(0.0, config_.helloJitterFrac)),
      [this] {
        if (role_ == Role::kDead || role_ == Role::kGateway) return;
        if (currentGateway_.has_value() && !gatewayIsStale()) return;
        // No HELLO response within a HELLO period: the grid is empty and
        // we are its gateway now (paper §3.2).
        awaitingGatewayAssessment_ = false;
        becomeGateway();
      },
      "proto/newcomer");
}

// --------------------------------------------------------------------------
// misc

void GridProtocolBase::onPaged(const net::PageSignal&) {
  // Base protocols (GRID) never sleep, so pages are no-ops.
}

void GridProtocolBase::onSendFailed(const net::Packet& packet) {
  if (role_ == Role::kDead) return;
  const auto* data = packet.headerAs<DataHeader>();
  if (data == nullptr) {
    // A lost control unicast (RREP/HANDOFF/LEAVE) is recovered by the
    // protocol timers above it (discovery retry, no-gateway watchdog).
    return;
  }
  // The believed gateway did not acknowledge: stop offering it as a hop.
  neighbours_.forgetById(packet.macDst);
  if (packet.routeRetries >= config_.routing.maxRouteRetries) return;

  net::Packet retry = packet;
  retry.routeRetries = packet.routeRetries + 1;
  if (role_ == Role::kGateway) {
    if (data->appDst() == packet.macDst) {
      // Final hop failed: the host left (or slept) without telling us.
      hostTable_.remove(packet.macDst);
    }
    engine_.routes().erase(data->appDst());
    engine_.routeData(retry, *data);
    return;
  }
  if (currentGateway_ == packet.macDst) currentGateway_.reset();
  if (data->appSrc() == env_.id()) {
    // Our own data: hold it until a gateway reappears.
    queueAppData(retry.header);
  }
}

ECGRID_HOT_PATH void GridProtocolBase::unicastFrame(net::NodeId to,
                                    std::shared_ptr<const net::Header> header) {
  net::Packet frame;
  frame.macSrc = env_.id();
  frame.macDst = to;
  frame.header = std::move(header);
  env_.link().send(frame);
}

ECGRID_HOT_PATH void GridProtocolBase::broadcastFrameRaw(
    std::shared_ptr<const net::Header> header) {
  net::Packet frame;
  frame.macSrc = env_.id();
  frame.macDst = net::kBroadcastId;
  frame.header = std::move(header);
  env_.link().send(frame);
}

ECGRID_HOT_PATH void GridProtocolBase::deliverToLocalHost(net::NodeId dst,
                                          const net::Packet& frame) {
  // GRID: every host is awake, so the final hop is a plain unicast.
  unicastFrame(dst, frame.header);
}

}  // namespace ecgrid::protocols
