// Blind flooding — a correctness oracle, not a contender.
//
// Every host stays awake and rebroadcasts every data packet once
// (duplicate-suppressed, TTL-bounded). Within a connected component this
// delivers whenever *any* route exists, so integration tests use it as a
// reachability oracle against which the grid protocols' delivery is
// judged; the broadcast-storm ablation bench uses it as the "no search
// range at all" extreme.
#pragma once

#include <cstdint>
#include <set>
#include <utility>

#include "net/host_env.hpp"
#include "net/routing_protocol.hpp"
#include "protocols/common/messages.hpp"
#include "util/ownership.hpp"

namespace ecgrid::protocols {

/// Data wrapped with flood bookkeeping (origin + sequence + TTL).
class FloodHeader final : public net::Header {
 public:
  FloodHeader(net::NodeId origin, std::uint32_t floodSeq, int ttl,
              DataHeader data)
      : origin_(origin), floodSeq_(floodSeq), ttl_(ttl), data_(std::move(data)) {}

  net::NodeId origin() const { return origin_; }
  std::uint32_t floodSeq() const { return floodSeq_; }
  int ttl() const { return ttl_; }
  const DataHeader& data() const { return data_; }

  int bytes() const override { return 12 + data_.bytes(); }
  const char* name() const override { return "FLOOD"; }

 private:
  net::NodeId origin_;
  std::uint32_t floodSeq_;
  int ttl_;
  DataHeader data_;
};

struct FloodingConfig {
  int ttl = 64;
};

class ECGRID_DOMAIN_PER_HOST FloodingProtocol final : public net::RoutingProtocol {
 public:
  FloodingProtocol(net::HostEnv& env, const FloodingConfig& config)
      : env_(env), config_(config) {}

  const char* name() const override { return "FLOOD"; }
  void start() override {}
  void onFrame(const net::Packet& packet) override;
  void sendData(net::NodeId destination, int payloadBytes,
                const net::DataTag& tag) override;
  void onPaged(const net::PageSignal&) override {}
  void onCellChanged(const geo::GridCoord&, const geo::GridCoord&) override {}
  void onShutdown() override { dead_ = true; }

  std::uint64_t rebroadcasts() const { return rebroadcasts_; }

 private:
  void broadcast(std::shared_ptr<const net::Header> header);

  net::HostEnv& env_;
  FloodingConfig config_;
  bool dead_ = false;
  std::uint32_t nextSeq_ = 1;
  std::set<std::pair<net::NodeId, std::uint32_t>> seen_;
  std::uint64_t rebroadcasts_ = 0;
};

}  // namespace ecgrid::protocols
