#include "protocols/flooding/flooding_protocol.hpp"

namespace ecgrid::protocols {

void FloodingProtocol::broadcast(std::shared_ptr<const net::Header> header) {
  net::Packet frame;
  frame.macSrc = env_.id();
  frame.macDst = net::kBroadcastId;
  frame.header = std::move(header);
  env_.link().send(frame);
}

void FloodingProtocol::sendData(net::NodeId destination, int payloadBytes,
                                const net::DataTag& tag) {
  if (dead_) return;
  DataHeader data(env_.id(), destination, payloadBytes, tag);
  if (destination == env_.id()) {
    env_.deliverToApp(env_.id(), tag, payloadBytes);
    return;
  }
  auto flood = std::make_shared<FloodHeader>(env_.id(), nextSeq_++,
                                             config_.ttl, std::move(data));
  seen_.emplace(flood->origin(), flood->floodSeq());
  broadcast(flood);
}

void FloodingProtocol::onFrame(const net::Packet& packet) {
  if (dead_) return;
  const auto* flood = packet.headerAs<FloodHeader>();
  if (flood == nullptr) return;
  if (!seen_.emplace(flood->origin(), flood->floodSeq()).second) return;

  const DataHeader& data = flood->data();
  if (data.appDst() == env_.id()) {
    env_.deliverToApp(data.appSrc(), data.tag(), data.payloadBytes());
    return;
  }
  if (flood->ttl() <= 1) return;
  ++rebroadcasts_;
  broadcast(std::make_shared<FloodHeader>(flood->origin(), flood->floodSeq(),
                                          flood->ttl() - 1, data));
}

}  // namespace ecgrid::protocols
