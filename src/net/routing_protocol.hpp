// Routing-protocol plug-in interface.
//
// A Node owns exactly one RoutingProtocol instance, constructed over the
// node's HostEnv. The simulator drives it through the five entry points
// below; everything else (timers, elections, sleeping, route state) is the
// protocol's private business.
#pragma once

#include "geo/grid.hpp"
#include "net/host_env.hpp"
#include "net/packet.hpp"
#include "util/ownership.hpp"

namespace ecgrid::net {

class ECGRID_DOMAIN_PER_HOST RoutingProtocol {
 public:
  virtual ~RoutingProtocol() = default;

  virtual const char* name() const = 0;

  /// Called once at simulation start, after the whole network exists.
  virtual void start() = 0;

  /// A frame addressed to this host (or broadcast) was decoded by the MAC.
  virtual void onFrame(const Packet& packet) = 0;

  /// The local application wants `payloadBytes` of data delivered to
  /// `destination`. `tag` identifies the packet for end-to-end stats and
  /// must travel with it.
  virtual void sendData(NodeId destination, int payloadBytes,
                        const DataTag& tag) = 0;

  /// The RAS pager matched one of this host's paging sequences.
  virtual void onPaged(const PageSignal& signal) = 0;

  /// The MAC gave up delivering a unicast frame this protocol sent
  /// (ARQ retries exhausted). Default: ignore.
  virtual void onSendFailed(const Packet& /*packet*/) {}

  /// GPS says the host crossed a grid boundary.
  virtual void onCellChanged(const geo::GridCoord& from,
                             const geo::GridCoord& to) = 0;

  /// The battery died (or the host was torn down). The radio is already
  /// off; the protocol must not schedule further work.
  virtual void onShutdown() = 0;
};

}  // namespace ecgrid::net
