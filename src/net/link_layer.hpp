// Link-layer service interface offered by the MAC to routing protocols.
#pragma once

#include <functional>

#include "net/packet.hpp"

namespace ecgrid::net {

class LinkLayer {
 public:
  virtual ~LinkLayer() = default;

  /// Queue a frame for transmission. Broadcast frames (macDst ==
  /// kBroadcastId) are delivered best-effort to every in-range, awake
  /// radio; unicast frames are likewise best-effort (the protocols in
  /// this repo, like the paper's, run over an unacknowledged MAC and
  /// recover at the routing layer).
  virtual void send(Packet packet) = 0;

  /// Frames decoded by the radio are handed to this callback.
  virtual void setReceiveCallback(std::function<void(const Packet&)> cb) = 0;

  /// Invoked when a unicast frame is dropped after exhausting ARQ retries
  /// or channel-access attempts — the link-layer failure feedback AODV
  /// derivatives use to trigger route repair.
  virtual void setSendFailureCallback(
      std::function<void(const Packet&)> cb) = 0;

  /// Number of frames waiting (including the one in flight, if any).
  virtual std::size_t queueDepth() const = 0;

  /// Drop all queued frames (used when a host goes to sleep or dies).
  virtual void clearQueue() = 0;
};

}  // namespace ecgrid::net
