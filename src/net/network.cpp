#include "net/network.hpp"

#include "util/error.hpp"

namespace ecgrid::net {

Network::Network(sim::Simulator& sim, const NetworkConfig& config)
    : sim_(sim),
      grid_(config.gridCellSide),
      channel_(sim, config.channel),
      paging_(sim, config.paging) {}

Node& Network::addNode(std::unique_ptr<mobility::MobilityModel> mobility,
                       const NodeConfig& config) {
  for (const auto& existing : nodes_) {
    ECGRID_REQUIRE(existing->id() != config.id, "duplicate node id");
  }
  nodes_.push_back(std::make_unique<Node>(sim_, grid_, channel_, paging_,
                                          std::move(mobility), config));
  return *nodes_.back();
}

void Network::start() {
  for (auto& node : nodes_) node->start();
}

Node* Network::findNode(NodeId id) {
  for (auto& node : nodes_) {
    if (node->id() == id) return node.get();
  }
  return nullptr;
}

std::size_t Network::aliveCount() const {
  std::size_t alive = 0;
  for (const auto& node : nodes_) {
    if (node->alive()) ++alive;
  }
  return alive;
}

}  // namespace ecgrid::net
