// The whole MANET: shared media plus all hosts.
//
// Network owns the data channel, the RAS paging channel, the grid map and
// every Node. It is the object benches/examples construct, populate, and
// run; the harness module layers paper-scenario presets on top.
#pragma once

#include <memory>
#include <vector>

#include "geo/grid.hpp"
#include "net/node.hpp"
#include "phy/channel.hpp"
#include "phy/paging.hpp"
#include "sim/simulator.hpp"
#include "util/ownership.hpp"

namespace ecgrid::net {

struct NetworkConfig {
  double gridCellSide = 100.0;  ///< d (paper §4 uses 100 m)
  phy::ChannelConfig channel;
  phy::PagingConfig paging;
};

class ECGRID_DOMAIN_PER_SCENARIO Network {
 public:
  Network(sim::Simulator& sim, const NetworkConfig& config);

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Create and register a host. The returned reference stays valid for
  /// the network's lifetime.
  Node& addNode(std::unique_ptr<mobility::MobilityModel> mobility,
                const NodeConfig& config);

  /// Call every node's protocol start() hook.
  void start();

  sim::Simulator& simulator() { return sim_; }
  const geo::GridMap& gridMap() const { return grid_; }
  phy::Channel& channel() { return channel_; }
  phy::PagingChannel& paging() { return paging_; }

  std::size_t nodeCount() const { return nodes_.size(); }
  Node& node(std::size_t index) { return *nodes_.at(index); }
  const Node& node(std::size_t index) const { return *nodes_.at(index); }

  /// Node with the given id, or nullptr.
  Node* findNode(NodeId id);

  /// Number of hosts still alive at the current simulation time.
  std::size_t aliveCount() const;

  std::vector<std::unique_ptr<Node>>& nodes() { return nodes_; }

 private:
  sim::Simulator& sim_;
  geo::GridMap grid_;
  phy::Channel channel_;
  phy::PagingChannel paging_;
  std::vector<std::unique_ptr<Node>> nodes_;
};

}  // namespace ecgrid::net
