// The per-host environment a routing protocol runs against.
//
// HostEnv abstracts everything the paper's protocol stack assumes a mobile
// host has: a GPS fix (position/velocity/grid), a transceiver it may put
// to sleep, an RAS pager that can wake *other* hosts by ID or a whole grid
// by its broadcast sequence, a battery with the paper's three-level
// classification, and an application to deliver data to. Protocols depend
// only on this interface, so GRID / ECGRID / GAF are interchangeable
// plug-ins and unit tests can run them against a scripted fake host.
#pragma once

#include <cstdint>

#include "energy/battery.hpp"
#include "geo/grid.hpp"
#include "geo/vec2.hpp"
#include "net/link_layer.hpp"
#include "net/packet.hpp"
#include "sim/simulator.hpp"

namespace ecgrid::net {

/// RAS paging signal kinds (paper §2–§3): a host's paging sequence is its
/// unique ID; a grid's "broadcast sequence" is its coordinate.
enum class PageKind : std::uint8_t {
  kHost,  ///< wake one specific host
  kGrid,  ///< wake every host in a grid (gateway election / RETIRE)
};

struct PageSignal {
  PageKind kind = PageKind::kHost;
  NodeId host = kBroadcastId;   ///< target host (kind == kHost)
  geo::GridCoord grid;          ///< target grid (kind == kGrid)
  NodeId pagedBy = kBroadcastId;
};

/// Identifies one application-layer data packet for end-to-end accounting.
struct DataTag {
  std::uint64_t flowId = 0;
  std::uint64_t sequence = 0;
  sim::Time sentAt = sim::kTimeZero;
};

class HostEnv {
 public:
  virtual ~HostEnv() = default;

  virtual sim::Simulator& simulator() = 0;
  virtual NodeId id() const = 0;

  // --- GPS view -----------------------------------------------------------
  virtual const geo::GridMap& gridMap() const = 0;
  virtual geo::Vec2 position() = 0;
  virtual geo::Vec2 velocity() = 0;
  virtual geo::GridCoord cell() = 0;
  /// Earliest future time the host could leave its current cell — the
  /// paper's sleep-timer ("dwell") estimate.
  virtual sim::Time nextPossibleCellExit() = 0;

  // --- transceiver --------------------------------------------------------
  virtual LinkLayer& link() = 0;
  /// Turn the transceiver off (sleep-mode power). Pending MAC queue is
  /// dropped; the RAS pager keeps listening.
  virtual void sleepRadio() = 0;
  /// Bring the transceiver back to idle/receive.
  virtual void wakeRadio() = 0;
  virtual bool radioSleeping() const = 0;

  // --- RAS pager ----------------------------------------------------------
  virtual void pageHost(NodeId target) = 0;
  virtual void pageGrid(const geo::GridCoord& grid) = 0;

  // --- battery ------------------------------------------------------------
  virtual energy::BatteryLevel batteryLevel() = 0;
  virtual double batteryRatio() = 0;
  virtual bool alive() const = 0;

  // --- application --------------------------------------------------------
  virtual void deliverToApp(NodeId appSrc, const DataTag& tag,
                            int payloadBytes) = 0;
};

}  // namespace ecgrid::net
