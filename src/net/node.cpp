#include "net/node.hpp"

#include "obs/observability.hpp"
#include "util/error.hpp"
#include "util/log.hpp"

namespace ecgrid::net {

namespace {
constexpr const char* kTag = "node";

/// Span id correlating a packet's originate with its delivery: flows are
/// globally unique, sequences unique within a flow.
std::uint64_t flowSpanId(const DataTag& tag) {
  return (tag.flowId << 32) | (tag.sequence & 0xffffffffULL);
}
}  // namespace

Node::Node(sim::Simulator& sim, const geo::GridMap& grid,
           phy::Channel& channel, phy::PagingChannel& paging,
           std::unique_ptr<mobility::MobilityModel> mobility,
           const NodeConfig& config)
    : sim_(sim),
      grid_(grid),
      channel_(channel),
      paging_(paging),
      config_(config),
      battery_(config.infiniteBattery
                   ? energy::Battery::infinite()
                   : energy::Battery(config.batteryCapacityJ)),
      mobility_(std::move(mobility)) {
  ECGRID_REQUIRE(mobility_ != nullptr, "node needs a mobility model");
  ECGRID_REQUIRE(config.id >= 0, "node ids must be non-negative");

  radio_ = std::make_unique<phy::Radio>(sim_, battery_, config_.powerProfile,
                                        config_.id);
  radio_->attachChannel(&channel_);
  radio_->setDeathCallback([this] { onDeath(); });

  mac_ = std::make_unique<mac::CsmaMac>(
      sim_, *radio_, channel_, config_.macConfig,
      sim_.rng().stream("mac", config_.id));

  attachToMedia();

  mac_->setReceiveCallback([this](const Packet& packet) {
    if (protocol_ && alive()) protocol_->onFrame(packet);
  });
  mac_->setSendFailureCallback([this](const Packet& packet) {
    if (protocol_ && alive()) protocol_->onSendFailed(packet);
  });

  // The tracker watches the *believed* position (true position + GPS
  // error): a static offset only translates the boundaries, so crossings
  // of the believed grid are still exact events, firing when the host's
  // own notion of its cell changes — which may be well before or after
  // the ground-truth crossing. With zero GPS error the offset vanishes
  // and the protocol sees the classic ground-truth crossing stream.
  tracker_ = std::make_unique<mobility::GridTracker>(
      sim_, grid_, *mobility_,
      [this](const geo::GridCoord&, const geo::GridCoord&) {
        notifyCellMaybeChanged();
      },
      [this] { return gpsError_; });
  believedCell_ = cell();

  // Keep the channel's spatial index current: re-bucket this radio every
  // time it crosses an index-bucket boundary. Static hosts never arm a
  // timer (nextPossibleCellExit = never), so this costs nothing for them.
  if (const geo::GridMap* indexGrid = channel_.indexGrid()) {
    phyTracker_ = std::make_unique<mobility::GridTracker>(
        sim_, *indexGrid, *mobility_,
        [this](const geo::GridCoord&, const geo::GridCoord&) {
          channel_.notifyMoved(channelAttachment_);
        });
  }
}

Node::~Node() = default;

void Node::attachToMedia() {
  // Physical media always see the ground-truth position: GPS error warps
  // what the host believes, not where its antenna radiates.
  channelAttachment_ =
      channel_.attach(radio_.get(), [this] { return truePosition(); });
  pagingAttachment_ = paging_.attach(
      config_.id, [this] { return truePosition(); },
      // The pager's broadcast sequence is programmed with the grid the
      // host BELIEVES it occupies — under GPS error it can miss pages
      // meant for its physical grid, exactly the failure mode under test.
      [this] { return cell(); },
      [this](const PageSignal& signal) {
        if (!alive()) return;
        // The RAS powers the transceiver up before the protocol reacts.
        wakeRadio();
        if (protocol_) protocol_->onPaged(signal);
      });
}

void Node::notifyCellMaybeChanged() {
  geo::GridCoord now = cell();
  if (now == believedCell_) return;
  geo::GridCoord old = believedCell_;
  believedCell_ = now;
  if (protocol_ && alive()) protocol_->onCellChanged(old, now);
}

void Node::setProtocol(std::unique_ptr<RoutingProtocol> protocol) {
  ECGRID_REQUIRE(protocol != nullptr, "protocol must not be null");
  protocol_ = std::move(protocol);
}

void Node::setProtocolFactory(
    std::function<std::unique_ptr<RoutingProtocol>()> factory) {
  ECGRID_REQUIRE(factory != nullptr, "protocol factory must not be null");
  protocolFactory_ = std::move(factory);
  setProtocol(protocolFactory_());
}

RoutingProtocol& Node::protocol() {
  ECGRID_CHECK(protocol_ != nullptr, "protocol not installed");
  return *protocol_;
}

void Node::start() {
  ECGRID_CHECK(protocol_ != nullptr, "start() before setProtocol()");
  // Host-context scope (here and in sendFromApp/restart): these are the
  // entry points where hub-owned callers (network start-up, traffic
  // ticks, fault injection) cross into per-host code, so timers the
  // protocol stack schedules from them inherit this host's shard under
  // the sharded engine. Free on the serial path.
  sim::Simulator::HostScope scope(sim_, sim::hostEventKey(config_.id));
  protocol_->start();
}

void Node::sendFromApp(NodeId destination, int payloadBytes,
                       const DataTag& tag) {
  if (!alive()) return;
  sim::Simulator::HostScope scope(sim_, sim::hostEventKey(config_.id));
  if (auto* tracer = obs::tracer(sim_)) {
    tracer->begin("pkt", "flow", flowSpanId(tag), config_.id,
                  {{"dst", destination},
                   {"bytes", payloadBytes},
                   {"flow", tag.flowId},
                   {"seq", tag.sequence}});
  }
  protocol_->sendData(destination, payloadBytes, tag);
}

void Node::setAppReceiveCallback(
    std::function<void(NodeId, const DataTag&, int)> cb) {
  onAppReceive_ = std::move(cb);
}

void Node::setDeathCallback(std::function<void(NodeId, sim::Time)> cb) {
  onDeathCb_ = std::move(cb);
}

void Node::sleepRadio() {
  mac_->clearQueue();
  radio_->sleep();
}

void Node::wakeRadio() { radio_->wake(); }

void Node::pageHost(NodeId target) {
  paging_.pageHost(config_.id, truePosition(), target);
}

void Node::pageGrid(const geo::GridCoord& gridCoord) {
  paging_.pageGrid(config_.id, truePosition(), gridCoord);
}

void Node::deliverToApp(NodeId appSrc, const DataTag& tag, int payloadBytes) {
  if (auto* tracer = obs::tracer(sim_)) {
    tracer->end("pkt", "flow", flowSpanId(tag), config_.id,
                {{"src", appSrc}, {"bytes", payloadBytes}});
  }
  if (onAppReceive_) onAppReceive_(appSrc, tag, payloadBytes);
}

void Node::crash() {
  if (!alive() || crashed_) return;
  ECGRID_LOG_INFO(kTag, "node " << config_.id << " crashed at t="
                                << sim_.now());
  crashed_ = true;
  crashedAt_ = sim_.now();
  obs::counter(sim_, "fault.crashes").add();
  if (auto* tracer = obs::tracer(sim_)) {
    tracer->instant("fault", "crash", config_.id);
  }
  tracker_->stop();
  if (phyTracker_) phyTracker_->stop();
  mac_->clearQueue();
  channel_.detach(channelAttachment_);
  paging_.detach(pagingAttachment_);
  // powerDown (not die): the battery freezes at Off's 0 W and the death
  // callback stays silent — the host is failed, not exhausted.
  radio_->powerDown();
  if (protocol_) protocol_->onShutdown();
}

void Node::restart() {
  ECGRID_REQUIRE(crashed_, "restart() requires a crashed host");
  ECGRID_REQUIRE(protocolFactory_ != nullptr,
                 "restart() needs a protocol factory to rebuild state");
  ECGRID_LOG_INFO(kTag, "node " << config_.id << " restarted at t="
                                << sim_.now());
  crashed_ = false;
  obs::counter(sim_, "fault.restarts").add();
  if (auto* tracer = obs::tracer(sim_)) {
    tracer->instant("fault", "restart", config_.id);
  }
  sim::Simulator::HostScope scope(sim_, sim::hostEventKey(config_.id));
  radio_->powerUp();
  attachToMedia();
  tracker_->restart();
  if (phyTracker_) phyTracker_->restart();
  believedCell_ = cell();  // no event: the fresh protocol reads cell()
  protocol_ = protocolFactory_();
  protocol_->start();
}

void Node::setGpsError(const geo::Vec2& error) {
  gpsError_ = error;
  // refresh() both re-tests the believed cell now (firing onCellChanged
  // through the tracker callback if it moved) and re-arms the boundary
  // timer against the shifted geometry; notifyCellMaybeChanged alone
  // would leave the timer aimed at the old boundaries.
  if (alive()) tracker_->refresh();
}

void Node::onDeath() {
  ECGRID_LOG_INFO(kTag, "node " << config_.id << " died at t=" << sim_.now());
  obs::counter(sim_, "energy.deaths").add();
  if (auto* tracer = obs::tracer(sim_)) {
    tracer->instant("node", "death", config_.id);
  }
  tracker_->stop();
  if (phyTracker_) phyTracker_->stop();
  mac_->clearQueue();
  channel_.detach(channelAttachment_);
  paging_.detach(pagingAttachment_);
  if (protocol_) protocol_->onShutdown();
  if (onDeathCb_) onDeathCb_(config_.id, sim_.now());
}

}  // namespace ecgrid::net
