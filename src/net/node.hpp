// A mobile host: battery + radio + MAC + RAS pager + GPS + routing agent.
//
// Node implements HostEnv, the environment its RoutingProtocol plug-in
// runs against, and owns the glue: it forwards decoded frames to the
// protocol, GPS cell crossings to the protocol, RAS pages to the protocol
// (waking the radio first), and battery death to everyone.
//
// Nodes must outlive the simulation run: in-flight channel deliveries
// hold raw pointers to their radios (a dead radio simply ignores them).
#pragma once

#include <functional>
#include <memory>

#include "energy/battery.hpp"
#include "energy/power_profile.hpp"
#include "geo/grid.hpp"
#include "mac/csma.hpp"
#include "mobility/grid_tracker.hpp"
#include "mobility/mobility_model.hpp"
#include "net/host_env.hpp"
#include "net/routing_protocol.hpp"
#include "phy/channel.hpp"
#include "phy/paging.hpp"
#include "phy/radio.hpp"
#include "sim/simulator.hpp"
#include "util/ownership.hpp"

namespace ecgrid::net {

struct NodeConfig {
  NodeId id = 0;
  double batteryCapacityJ = 500.0;  ///< paper §4 initial energy
  bool infiniteBattery = false;     ///< GAF "Model 1" endpoints
  energy::PowerProfile powerProfile = energy::PowerProfile::paperDefaults();
  mac::CsmaConfig macConfig;
};

class ECGRID_DOMAIN_PER_HOST Node final : public HostEnv {
 public:
  Node(sim::Simulator& sim, const geo::GridMap& grid, phy::Channel& channel,
       phy::PagingChannel& paging,
       std::unique_ptr<mobility::MobilityModel> mobility,
       const NodeConfig& config);

  ~Node() override;
  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  /// Install the routing agent. Must happen before start().
  void setProtocol(std::unique_ptr<RoutingProtocol> protocol);

  /// Install the routing agent through a factory so restart() can rebuild
  /// it from scratch after a crash. Invokes the factory once immediately —
  /// byte-identical to setProtocol for hosts that never crash.
  void setProtocolFactory(
      std::function<std::unique_ptr<RoutingProtocol>()> factory);

  RoutingProtocol& protocol();

  /// Called once when the simulation begins.
  void start();

  /// Application entry point (traffic sources call this).
  void sendFromApp(NodeId destination, int payloadBytes, const DataTag& tag);

  /// Application exit point: fires when the routing layer delivers data
  /// addressed to this host.
  void setAppReceiveCallback(
      std::function<void(NodeId src, const DataTag&, int bytes)> cb);

  /// Fires once when the battery empties.
  void setDeathCallback(std::function<void(NodeId, sim::Time)> cb);

  // --- fault injection (src/fault) -----------------------------------------
  /// Hard host failure: radio forced Off (the battery freezes — a crash is
  /// not a battery death, so the death callback does NOT fire), channel and
  /// pager detached, trackers stopped, protocol shut down. alive() reads
  /// false until restart(). No-op on hosts already down.
  void crash();

  /// Bring a crashed host back: radio powered up, media re-attached,
  /// trackers resumed, and a FRESH protocol built from the factory — the
  /// crash wiped all volatile routing state, as a reboot would.
  /// Requires crashed() and a protocol factory.
  void restart();

  bool crashed() const { return crashed_; }
  /// Time of the most recent crash (meaningful only while crashed()).
  sim::Time crashedAt() const { return crashedAt_; }

  /// GPS error: world-frame offset added to the position this host
  /// *believes* (HostEnv::position()/cell()). Physical propagation — the
  /// channel and pager range checks — always uses truePosition(). If the
  /// new error moves the believed cell, the protocol sees onCellChanged.
  void setGpsError(const geo::Vec2& error);
  const geo::Vec2& gpsError() const { return gpsError_; }

  /// Ground-truth physical position (what the channel propagates from).
  geo::Vec2 truePosition() { return mobility_->positionAt(sim_.now()); }

  // --- HostEnv ------------------------------------------------------------
  sim::Simulator& simulator() override { return sim_; }
  NodeId id() const override { return config_.id; }
  const geo::GridMap& gridMap() const override { return grid_; }
  geo::Vec2 position() override { return truePosition() + gpsError_; }
  geo::Vec2 velocity() override { return mobility_->velocityAt(sim_.now()); }
  geo::GridCoord cell() override { return grid_.cellOf(position()); }
  sim::Time nextPossibleCellExit() override {
    // Sleep timers are planned around the cell the host *believes* it is
    // in, consistent with position()/cell() above.
    return mobility_->nextPossibleCellExit(grid_, sim_.now(), gpsError_);
  }
  LinkLayer& link() override { return *mac_; }
  void sleepRadio() override;
  void wakeRadio() override;
  bool radioSleeping() const override { return radio_->sleeping(); }
  void pageHost(NodeId target) override;
  void pageGrid(const geo::GridCoord& gridCoord) override;
  energy::BatteryLevel batteryLevel() override {
    return battery_.level(sim_.now());
  }
  double batteryRatio() override { return battery_.remainingRatio(sim_.now()); }
  bool alive() const override { return !radio_->dead(); }
  void deliverToApp(NodeId appSrc, const DataTag& tag,
                    int payloadBytes) override;

  // --- introspection for stats/tests --------------------------------------
  energy::Battery& batteryRef() { return battery_; }
  phy::Radio& radio() { return *radio_; }
  mac::CsmaMac& mac() { return *mac_; }
  mobility::MobilityModel& mobilityModel() { return *mobility_; }
  const NodeConfig& config() const { return config_; }

 private:
  void onDeath();
  void attachToMedia();
  void notifyCellMaybeChanged();

  sim::Simulator& sim_;
  geo::GridMap grid_;
  phy::Channel& channel_;
  phy::PagingChannel& paging_;
  NodeConfig config_;

  energy::Battery battery_;
  std::unique_ptr<mobility::MobilityModel> mobility_;
  std::unique_ptr<phy::Radio> radio_;
  std::unique_ptr<mac::CsmaMac> mac_;
  std::unique_ptr<mobility::GridTracker> tracker_;
  std::unique_ptr<mobility::GridTracker> phyTracker_;  ///< spatial-index upkeep
  std::unique_ptr<RoutingProtocol> protocol_;
  std::function<std::unique_ptr<RoutingProtocol>()> protocolFactory_;

  std::size_t channelAttachment_ = 0;
  std::size_t pagingAttachment_ = 0;

  geo::Vec2 gpsError_{0.0, 0.0};
  geo::GridCoord believedCell_{0, 0};
  bool crashed_ = false;
  sim::Time crashedAt_ = 0.0;

  std::function<void(NodeId, const DataTag&, int)> onAppReceive_;
  std::function<void(NodeId, sim::Time)> onDeathCb_;
};

}  // namespace ecgrid::net
