// Packets and protocol headers.
//
// A Packet is a MAC frame: link-layer source/destination plus one typed
// header object (which includes any payload size accounting). Headers are
// immutable and shared: broadcasting to twenty neighbours enqueues twenty
// Packet values pointing at one header allocation.
//
// Sizes are byte-accurate because control overhead *is* the experiment:
// the paper attributes ECGRID's lifetime gap to GAF entirely to HELLO
// traffic, so HELLO/RREQ/RREP/RETIRE bytes must cost realistic airtime
// and therefore realistic transmit/receive energy.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

namespace ecgrid::net {

/// Host identifier (the paper's unique host ID — an IP or MAC address;
/// also the host's RAS paging sequence).
using NodeId = std::int32_t;

/// Link-layer broadcast address.
inline constexpr NodeId kBroadcastId = -1;

[[nodiscard]] inline constexpr bool isBroadcast(NodeId id) {
  return id == kBroadcastId;
}

/// 802.11-style MAC framing overhead added to every header's bytes().
inline constexpr int kMacOverheadBytes = 34;

/// Base class for all protocol headers. Concrete headers live with the
/// protocol that owns them (protocols/common, core, protocols/gaf).
class Header {
 public:
  virtual ~Header() = default;

  /// Wire size of this header plus any payload it carries, in bytes,
  /// excluding MAC framing.
  [[nodiscard]] virtual int bytes() const = 0;

  /// Short name for logs ("HELLO", "RREQ", ...).
  [[nodiscard]] virtual const char* name() const = 0;

  /// One-line human-readable rendering for trace logs.
  [[nodiscard]] virtual std::string describe() const { return name(); }
};

struct Packet {
  NodeId macSrc = kBroadcastId;
  NodeId macDst = kBroadcastId;
  std::shared_ptr<const Header> header;

  /// Unique id assigned by the channel on first transmission; copies made
  /// for each receiver share it, so traces can correlate deliveries.
  std::uint64_t uid = 0;

  /// Sender-local MAC sequence number. Stable across ARQ retransmissions
  /// of the same frame; receivers use (macSrc, macSeq) to acknowledge and
  /// to suppress duplicate deliveries.
  std::uint64_t macSeq = 0;

  /// How many times the routing layer has re-routed this frame after a
  /// link-layer delivery failure; bounds repair loops.
  int routeRetries = 0;

  [[nodiscard]] int bytes() const { return kMacOverheadBytes + header->bytes(); }

  /// Typed view of the header; nullptr when it is some other type.
  template <typename H>
  const H* headerAs() const {
    return dynamic_cast<const H*>(header.get());
  }
};

}  // namespace ecgrid::net
