// ExecutionProbe — opt-in per-event instrumentation hook.
//
// When a probe is installed (Simulator::setExecutionProbe), the simulator
// times each event's callback with the wall clock and reports it together
// with the event's schedule-site label (see Simulator::schedule) and the
// queue size. The concrete implementation lives in src/obs (SimProfiler);
// this interface keeps the sim layer free of any obs dependency.
//
// A probe must be passive: it observes, it never schedules events, draws
// RNG, or mutates simulation state — the profiled run's event order and
// final state digest are identical to the unprofiled run's (gated in
// tests/obs_test.cpp).
#pragma once

#include <cstdint>

#include "sim/time.hpp"

namespace ecgrid::sim {

class ExecutionProbe {
 public:
  virtual ~ExecutionProbe() = default;

  /// Called after each executed event. `label` is the schedule site's
  /// static label, or nullptr for unlabeled events; `wallSeconds` is the
  /// callback's wall-clock cost; `queueSize` counts queued heap entries
  /// (including not-yet-discarded cancellations) right after the event;
  /// `shard` is the executing shard under the sharded engine, 0 on the
  /// serial engine.
  virtual void onEvent(const char* label, double wallSeconds, Time simTime,
                       std::uint64_t eventsExecuted, std::size_t queueSize,
                       int shard) = 0;
};

}  // namespace ecgrid::sim
