#include "sim/rng.hpp"

#include "util/error.hpp"

namespace ecgrid::sim {

double RngStream::uniform(double lo, double hi) {
  ECGRID_REQUIRE(lo <= hi, "uniform bounds inverted");
  std::uniform_real_distribution<double> dist(lo, hi);
  return dist(engine_);
}

std::int64_t RngStream::uniformInt(std::int64_t lo, std::int64_t hi) {
  ECGRID_REQUIRE(lo <= hi, "uniformInt bounds inverted");
  std::uniform_int_distribution<std::int64_t> dist(lo, hi);
  return dist(engine_);
}

double RngStream::exponential(double mean) {
  ECGRID_REQUIRE(mean > 0.0, "exponential mean must be positive");
  std::exponential_distribution<double> dist(1.0 / mean);
  return dist(engine_);
}

double RngStream::gaussian(double mean, double stddev) {
  ECGRID_REQUIRE(stddev >= 0.0, "gaussian stddev cannot be negative");
  if (stddev == 0.0) return mean;
  std::normal_distribution<double> dist(mean, stddev);
  return dist(engine_);
}

bool RngStream::chance(double probability) {
  ECGRID_REQUIRE(probability >= 0.0 && probability <= 1.0,
                 "probability out of range");
  std::bernoulli_distribution dist(probability);
  return dist(engine_);
}

namespace {

// FNV-1a, enough to decorrelate stream names; the result is further mixed
// through splitmix64 with the master seed.
std::uint64_t fnv1a(const std::string& text) {
  std::uint64_t h = 1469598103934665603ull;
  for (unsigned char c : text) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

RngStream RngFactory::stream(const std::string& name) const {
  return RngStream(splitmix64(masterSeed_ ^ splitmix64(fnv1a(name))));
}

RngStream RngFactory::stream(const std::string& component, int index) const {
  return stream(component + "/" + std::to_string(index));
}

}  // namespace ecgrid::sim
