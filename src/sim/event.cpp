#include "sim/event.hpp"

#include <utility>

#include "util/error.hpp"

namespace ecgrid::sim {

std::uint32_t EventQueue::allocSlot() {
  if (freeHead_ != kNoSlot) {
    std::uint32_t index = freeHead_;
    freeHead_ = slots_[index].nextFree;
    return index;
  }
  slots_.emplace_back();
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

void EventQueue::freeSlot(std::uint32_t index) {
  Slot& slot = slots_[index];
  slot.live = false;
  slot.cancelled = false;
  slot.label = nullptr;
  slot.action = nullptr;
  // Bump the generation on free so stale handles can never alias a record
  // that reuses this slot.
  ++slot.generation;
  slot.nextFree = freeHead_;
  freeHead_ = index;
}

EventHandle EventQueue::push(Time time, std::function<void()> action,
                             const char* label) {
  ECGRID_REQUIRE(action != nullptr, "event action must be callable");
  std::uint32_t index = allocSlot();
  Slot& slot = slots_[index];
  slot.time = time;
  slot.live = true;
  slot.cancelled = false;
  slot.label = label;
  slot.action = std::move(action);
  const std::uint64_t sequence = nextSequence_++;
  const std::uint64_t tieKey = tieBreakRng_ ? tieBreakRng_->raw() : sequence;
  heap_.push_back(HeapEntry{time, tieKey, sequence, index});
  siftUp(heap_.size() - 1);
  return makeHandle(this, index, slot.generation);
}

void EventQueue::siftUp(std::size_t i) {
  HeapEntry entry = heap_[i];
  while (i > 0) {
    std::size_t parent = (i - 1) / 2;
    if (!earlier(entry, heap_[parent])) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = entry;
}

void EventQueue::siftDown(std::size_t i) {
  const std::size_t size = heap_.size();
  HeapEntry entry = heap_[i];
  while (true) {
    std::size_t child = 2 * i + 1;
    if (child >= size) break;
    if (child + 1 < size && earlier(heap_[child + 1], heap_[child])) ++child;
    if (!earlier(heap_[child], entry)) break;
    heap_[i] = heap_[child];
    i = child;
  }
  heap_[i] = entry;
}

void EventQueue::removeHeapTop() {
  heap_.front() = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) siftDown(0);
}

void EventQueue::skipCancelled() {
  while (!heap_.empty() && slots_[heap_.front().slot].cancelled) {
    freeSlot(heap_.front().slot);
    removeHeapTop();
  }
}

bool EventQueue::pop(Time& time, std::function<void()>& action) {
  const char* label = nullptr;
  return pop(time, action, label);
}

bool EventQueue::pop(Time& time, std::function<void()>& action,
                     const char*& label) {
  // The previous event's record outlived its execution (see header); now
  // that the caller is back for the next event, recycle it.
  if (executing_ != kNoSlot) {
    freeSlot(executing_);
    executing_ = kNoSlot;
  }
  skipCancelled();
  if (heap_.empty()) return false;
  std::uint32_t index = heap_.front().slot;
  Slot& slot = slots_[index];
  time = slot.time;
  action = std::move(slot.action);
  slot.action = nullptr;
  label = slot.label;
  removeHeapTop();
  executing_ = index;
  return true;
}

Time EventQueue::peekTime() {
  skipCancelled();
  return heap_.empty() ? kTimeNever : heap_.front().time;
}

bool EventQueue::empty() {
  skipCancelled();
  return heap_.empty();
}

void EventQueue::cancelSlot(std::uint32_t slot, std::uint32_t generation) {
  if (slot >= slots_.size()) return;
  Slot& record = slots_[slot];
  if (!record.live || record.generation != generation) return;
  record.cancelled = true;
  // Release the closure eagerly so cancelled events do not pin captured
  // resources until they percolate to the heap top.
  record.action = nullptr;
}

bool EventQueue::slotPending(std::uint32_t slot,
                             std::uint32_t generation) const {
  if (slot >= slots_.size()) return false;
  const Slot& record = slots_[slot];
  return record.live && record.generation == generation && !record.cancelled;
}

}  // namespace ecgrid::sim
