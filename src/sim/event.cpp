#include "sim/event.hpp"

#include "util/error.hpp"

namespace ecgrid::sim {

EventHandle EventQueue::push(Time time, std::function<void()> action) {
  ECGRID_REQUIRE(action != nullptr, "event action must be callable");
  auto record = std::make_shared<detail::EventRecord>();
  record->time = time;
  record->sequence = nextSequence_++;
  record->action = std::move(action);
  heap_.push(record);
  return EventHandle(record);
}

void EventQueue::skipCancelled() {
  while (!heap_.empty() && heap_.top()->cancelled) {
    heap_.pop();
  }
}

std::shared_ptr<detail::EventRecord> EventQueue::pop() {
  skipCancelled();
  if (heap_.empty()) return nullptr;
  auto top = heap_.top();
  heap_.pop();
  return top;
}

Time EventQueue::peekTime() {
  skipCancelled();
  return heap_.empty() ? kTimeNever : heap_.top()->time;
}

bool EventQueue::empty() {
  skipCancelled();
  return heap_.empty();
}

}  // namespace ecgrid::sim
