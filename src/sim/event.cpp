#include "sim/event.hpp"

#include <utility>

#include "util/error.hpp"
#include "util/hot_path.hpp"

namespace ecgrid::sim {

namespace {
/// Slab capacity pre-sized at construction so paper-baseline runs never
/// grow the vectors on the hot path (the audit gate would count it).
constexpr std::size_t kInitialSlots = 256;
}  // namespace

EventQueue::EventQueue() {
  slots_.reserve(kInitialSlots);
  heap_.reserve(kInitialSlots);
}

ECGRID_HOT_PATH std::uint32_t EventQueue::allocSlot() {
  if (freeHead_ != kNoSlot) {
    std::uint32_t index = freeHead_;
    freeHead_ = slots_[index].nextFree;
    return index;
  }
  if (slots_.size() == slots_.capacity()) {
    // Slab growth: monotone high-water mark, not steady-state churn — a
    // geometric number of growth events total, audit-exempt by the same
    // argument every lint allow() on a reserved container makes. The
    // reserve() above covers baseline runs; bigger scenarios amortise.
    ECGRID_ALLOC_EXEMPT();
    slots_.reserve(slots_.empty() ? kInitialSlots : slots_.capacity() * 2);
  }
  slots_.emplace_back();
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

ECGRID_HOT_PATH void EventQueue::freeSlot(std::uint32_t index) {
  Slot& slot = slots_[index];
  slot.live = false;
  slot.cancelled = false;
  slot.label = nullptr;
  slot.action.reset();
  // Bump the generation on free so stale handles can never alias a record
  // that reuses this slot.
  ++slot.generation;
  slot.nextFree = freeHead_;
  freeHead_ = index;
}

ECGRID_HOT_PATH EventHandle EventQueue::push(Time time, InlineTask action,
                                             const char* label) {
  ECGRID_HOT_SCOPE();
  ECGRID_REQUIRE(static_cast<bool>(action), "event action must be callable");
  std::uint32_t index = allocSlot();
  Slot& slot = slots_[index];
  slot.time = time;
  slot.live = true;
  slot.cancelled = false;
  slot.label = label;
  slot.action = std::move(action);
  const std::uint64_t sequence = nextSequence_++;
  const std::uint64_t tieKey = tieBreakRng_ ? tieBreakRng_->raw() : sequence;
  if (heap_.size() == heap_.capacity()) {
    // High-water growth, same argument as the slab in allocSlot().
    ECGRID_ALLOC_EXEMPT();
    heap_.reserve(heap_.empty() ? kInitialSlots : heap_.capacity() * 2);
  }
  heap_.push_back(HeapEntry{time, tieKey, sequence, index});
  if (heap_.size() > peakDepth_) peakDepth_ = heap_.size();
  siftUp(heap_.size() - 1);
  return makeHandle(this, index, slot.generation);
}

ECGRID_HOT_PATH void EventQueue::siftUp(std::size_t i) {
  HeapEntry entry = heap_[i];
  while (i > 0) {
    std::size_t parent = (i - 1) / 2;
    if (!earlier(entry, heap_[parent])) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = entry;
}

ECGRID_HOT_PATH void EventQueue::siftDown(std::size_t i) {
  const std::size_t size = heap_.size();
  HeapEntry entry = heap_[i];
  while (true) {
    std::size_t child = 2 * i + 1;
    if (child >= size) break;
    if (child + 1 < size && earlier(heap_[child + 1], heap_[child])) ++child;
    if (!earlier(heap_[child], entry)) break;
    heap_[i] = heap_[child];
    i = child;
  }
  heap_[i] = entry;
}

ECGRID_HOT_PATH void EventQueue::removeHeapTop() {
  heap_.front() = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) siftDown(0);
}

ECGRID_HOT_PATH void EventQueue::skipCancelled() {
  while (!heap_.empty() && slots_[heap_.front().slot].cancelled) {
    freeSlot(heap_.front().slot);
    removeHeapTop();
    --cancelledInHeap_;
  }
}

ECGRID_HOT_PATH void EventQueue::purgeCancelled() {
  std::size_t kept = 0;
  for (const HeapEntry& entry : heap_) {
    if (slots_[entry.slot].cancelled) {
      freeSlot(entry.slot);
    } else {
      heap_[kept++] = entry;
    }
  }
  heap_.resize(kept);
  // Bottom-up heapify restores the heap property in O(n). The internal
  // arrangement differs from an insertion-built heap, but pop order is
  // fixed by the (time, tieKey, sequence) total order alone, so replay
  // digests are unaffected.
  for (std::size_t i = kept / 2; i-- > 0;) siftDown(i);
  cancelledInHeap_ = 0;
}

bool EventQueue::pop(Time& time, InlineTask& action) {
  const char* label = nullptr;
  return pop(time, action, label);
}

ECGRID_HOT_PATH bool EventQueue::pop(Time& time, InlineTask& action,
                                     const char*& label) {
  ECGRID_HOT_SCOPE();
  // The previous event's record outlived its execution (see header); now
  // that the caller is back for the next event, recycle it.
  if (executing_ != kNoSlot) {
    freeSlot(executing_);
    executing_ = kNoSlot;
  }
  skipCancelled();
  if (heap_.empty()) return false;
  std::uint32_t index = heap_.front().slot;
  Slot& slot = slots_[index];
  time = slot.time;
  action = std::move(slot.action);
  label = slot.label;
  removeHeapTop();
  executing_ = index;
  return true;
}

Time EventQueue::peekTime() {
  skipCancelled();
  return heap_.empty() ? kTimeNever : heap_.front().time;
}

bool EventQueue::empty() {
  skipCancelled();
  return heap_.empty();
}

ECGRID_HOT_PATH void EventQueue::cancelSlot(std::uint32_t slot,
                                            std::uint32_t generation) {
  if (slot >= slots_.size()) return;
  Slot& record = slots_[slot];
  if (!record.live || record.generation != generation) return;
  if (record.cancelled) return;
  record.cancelled = true;
  // Release the closure eagerly so cancelled events do not pin captured
  // resources until they percolate to the heap top.
  record.action.reset();
  // The currently-executing slot has no heap entry any more; everything
  // else sits in the heap until reclaimed lazily — and must be *counted*,
  // because cancel-heavy workloads (Radio::rearmDepletion re-arms a
  // far-future depletion event on every energy change) would otherwise
  // accumulate dead far-future entries for the whole run, growing the
  // slab and heap without bound. The alloc-audit gate caught exactly
  // that. Past the threshold, rebuild the heap without the dead entries:
  // O(n) per purge, amortised O(1) per cancellation, and the queue's
  // footprint stays bounded by ~2x the live high-water mark.
  if (slot != executing_) {
    ++cancelledInHeap_;
    if (cancelledInHeap_ >= kPurgeFloor && cancelledInHeap_ * 2 >= heap_.size()) {
      purgeCancelled();
    }
  }
}

bool EventQueue::slotPending(std::uint32_t slot,
                             std::uint32_t generation) const {
  if (slot >= slots_.size()) return false;
  const Slot& record = slots_[slot];
  return record.live && record.generation == generation && !record.cancelled;
}

}  // namespace ecgrid::sim
