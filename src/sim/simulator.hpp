// The simulation context: clock + event queue + RNG factory.
//
// A Simulator owns the run. Components hold a non-owning reference and use
// it to read the clock, schedule/cancel timers, and obtain named random
// streams. There is deliberately no global/singleton instance: benches run
// many simulations sequentially (and tests run them concurrently), each
// with its own Simulator.
//
// Observability (src/obs) attaches here without the sim layer depending on
// it: the harness installs an opaque Observability hub pointer that
// components resolve through obs/observability.hpp, and an optional
// ExecutionProbe (sim/probe.hpp) that step() feeds per-event wall-clock
// attribution. Both are passive — with neither installed the simulator
// behaves and performs exactly as before.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "sim/event.hpp"
#include "sim/rng.hpp"
#include "sim/task.hpp"
#include "sim/time.hpp"
#include "util/hot_path.hpp"
#include "util/log.hpp"
#include "util/ownership.hpp"

namespace ecgrid::obs {
class Observability;
}

namespace ecgrid::sim {

class ExecutionProbe;

namespace sharded {
class ShardedEngine;
struct ShardedEngineConfig;
}  // namespace sharded

/// Stable owner key for host-directed events (scheduleFor / the sharded
/// engine's host registry), derived from a net::NodeId without the sim
/// layer depending on net/.
constexpr std::uint64_t hostEventKey(std::int32_t hostId) {
  return static_cast<std::uint64_t>(static_cast<std::uint32_t>(hostId));
}

class ECGRID_DOMAIN_PER_SCENARIO Simulator {
 public:
  explicit Simulator(std::uint64_t masterSeed = 1);
  ~Simulator();

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulation time.
  Time now() const { return now_; }

  /// Schedule `action` to run `delay` seconds from now (delay >= 0).
  /// `label` optionally tags the schedule site for the execution profiler
  /// ("mac/access", "phy/deliver", ...); it must be a string literal (or
  /// other storage outliving the simulator) — nullptr is fine and costs
  /// nothing. Accepts any callable; it is packed into an InlineTask at
  /// the call site (sim/task.hpp), so captures up to
  /// InlineTask::kInlineBytes never touch the heap — the pre-PR-9
  /// std::function signature boxed every capture over 16 bytes.
  template <class F>
  ECGRID_HOT_PATH EventHandle schedule(Time delay, F&& action,
                                       const char* label = nullptr) {
    // Scope opens before the InlineTask packs, so a heap-boxed oversized
    // closure scheduled in steady state is caught by the alloc audit.
    ECGRID_HOT_SCOPE();
    return scheduleTaskIn(delay, InlineTask(std::forward<F>(action)), label);
  }

  /// Schedule `action` at absolute time `when` (when >= now()).
  template <class F>
  ECGRID_HOT_PATH EventHandle scheduleAt(Time when, F&& action,
                                         const char* label = nullptr) {
    ECGRID_HOT_SCOPE();
    return scheduleTaskAt(when, InlineTask(std::forward<F>(action)), label);
  }

  /// Schedule `action` on behalf of host `ownerKey` (hostEventKey of its
  /// node id) — the boundary-crossing entry point for shared-medium
  /// deliveries (phy::Channel, phy::PagingChannel). On the serial engine
  /// this is exactly schedule(); on the sharded engine the event is
  /// routed to the shard owning that host, crossing an edge mailbox when
  /// the sender executes elsewhere. Cross-shard deliveries are fire-and-
  /// forget: the returned handle is inert for them (every call site
  /// discards it).
  template <class F>
  ECGRID_HOT_PATH EventHandle scheduleFor(std::uint64_t ownerKey, Time delay,
                                          F&& action,
                                          const char* label = nullptr) {
    ECGRID_HOT_SCOPE();
    return scheduleTaskFor(ownerKey, delay,
                           InlineTask(std::forward<F>(action)), label);
  }

  /// Monomorphic backends behind the schedule templates (the templates
  /// only build the InlineTask; everything else stays out of line).
  EventHandle scheduleTaskIn(Time delay, InlineTask action, const char* label);
  EventHandle scheduleTaskAt(Time when, InlineTask action, const char* label);
  EventHandle scheduleTaskFor(std::uint64_t ownerKey, Time delay,
                              InlineTask action, const char* label);

  /// Run events until the queue drains or the clock passes `until`.
  /// Events scheduled exactly at `until` are executed.
  void run(Time until = kTimeNever);

  /// Run exactly one event if any is pending before `until`.
  /// Returns false when nothing was executed.
  bool step(Time until = kTimeNever);

  /// Request that run() return after the current event completes.
  void requestStop() { stopRequested_ = true; }

  std::uint64_t eventsExecuted() const { return eventsExecuted_; }

  /// Time of the next live event, or kTimeNever when the queue is empty.
  Time nextEventTime();

  // ---- Telemetry surface (src/obs/telemetry.hpp reads these) -----------

  /// Events queued right now: heap entries including not-yet-reclaimed
  /// cancellations, plus mailbox-buffered boundary events when sharded.
  std::size_t queueDepth() const;

  /// High-water mark of queueDepth over the run. Exact (per-push) on the
  /// serial path; commit-granularity on the sharded engine.
  std::size_t peakQueueDepth() const;

  /// Pooled event-slot records ever allocated across all queues — the
  /// slab high-water mark (slots recycle; slabs never shrink).
  std::size_t slabSlotsTotal() const;

  /// Swap the serial event queue for the sharded engine
  /// (sim/sharded/engine.hpp, sequenced mode). Must be called before
  /// anything is scheduled; the run then commits events in the identical
  /// global order the serial queue would (the digest-parity contract).
  /// The serial path is the oracle: with this never called, scheduling
  /// and stepping do not touch the engine at all.
  void enableSharding(const sharded::ShardedEngineConfig& config);

  /// The sharded engine, or nullptr on the serial path.
  sharded::ShardedEngine* shardedEngine() const { return engine_.get(); }

  /// Register host `ownerKey` with a live x-position provider so the
  /// sharded engine can derive (and migrate) its owning shard. No-op on
  /// the serial path.
  void registerShardHost(std::uint64_t ownerKey,
                         std::function<double()> xProvider);

  /// RAII host-execution context: while alive, events scheduled without
  /// an owner key land on `ownerKey`'s shard — placed in the per-host
  /// entry points (Node::start/restart/sendFromApp) so timer chains
  /// inherit their host's shard. Null-safe: free on the serial path.
  class HostScope {
   public:
    HostScope(Simulator& sim, std::uint64_t ownerKey);
    ~HostScope();
    HostScope(const HostScope&) = delete;
    HostScope& operator=(const HostScope&) = delete;

   private:
    sharded::ShardedEngine* engine_;
    int previousShard_ = 0;
  };

  /// Determinism-analysis debug mode: randomise the tie-break among
  /// equal-time events using the dedicated "check/tiebreak" stream (see
  /// EventQueue::perturbTieBreak). Call before scheduling anything so
  /// every event of the run participates. The perturbed run is itself
  /// deterministic in the master seed; it is *different* from the
  /// unperturbed run exactly when some component depends on the order
  /// of same-instant events.
  void perturbTieBreaks();
  bool tieBreaksPerturbed() const;

  /// Install `hook` to run after every `everyEvents`-th executed event
  /// (the invariant auditor hangs off this). The hook must not assume it
  /// runs at any particular simulation time; it may inspect state but
  /// should not schedule events. Pass an empty function to uninstall.
  void setPeriodicHook(std::uint64_t everyEvents, std::function<void()> hook);

  /// Opaque observability hub (src/obs). The simulator never dereferences
  /// it; components resolve metrics/tracing through obs/observability.hpp.
  /// Install before constructing components so their construction-time
  /// instrument registration sees the hub. nullptr uninstalls.
  void setObservability(obs::Observability* hub) { observability_ = hub; }
  obs::Observability* observability() const { return observability_; }

  /// Per-event execution probe (opt-in profiling; see sim/probe.hpp).
  /// With a probe installed every event's callback is wall-clock timed.
  /// nullptr uninstalls.
  void setExecutionProbe(ExecutionProbe* probe) { probe_ = probe; }
  ExecutionProbe* executionProbe() const { return probe_; }

  const RngFactory& rng() const { return rngFactory_; }

 private:
  bool stepSharded(Time until);

  Time now_ = kTimeZero;
  bool stopRequested_ = false;
  std::uint64_t eventsExecuted_ = 0;
  std::uint64_t hookEvery_ = 0;
  std::function<void()> hook_;
  EventQueue queue_;
  /// Sharded engine (sequenced mode); nullptr = serial oracle path.
  std::unique_ptr<sharded::ShardedEngine> engine_;
  RngFactory rngFactory_;
  obs::Observability* observability_ = nullptr;
  ExecutionProbe* probe_ = nullptr;
  /// While this simulator exists, log lines on its thread are prefixed
  /// with the current sim time (declared after now_; reads &now_).
  util::LogSimClock logClock_{&now_};
};

}  // namespace ecgrid::sim
