#include "sim/simulator.hpp"

#include <chrono>  // ecgrid-lint: allow(banned-random)
#include <utility>

#include "sim/probe.hpp"
#include "sim/sharded/engine.hpp"
#include "util/error.hpp"

namespace ecgrid::sim {

Simulator::Simulator(std::uint64_t masterSeed) : rngFactory_(masterSeed) {}

// Out of line for the unique_ptr over the forward-declared engine.
Simulator::~Simulator() = default;

void Simulator::enableSharding(const sharded::ShardedEngineConfig& config) {
  ECGRID_REQUIRE(engine_ == nullptr, "sharding already enabled");
  ECGRID_REQUIRE(eventsExecuted_ == 0 && queue_.empty(),
                 "enableSharding must precede all scheduling");
  engine_ = std::make_unique<sharded::ShardedEngine>(config);
  if (queue_.tieBreakPerturbed()) {
    // perturbTieBreaks() ran first; arm the engine with the same stream.
    // Both sides draw once per push from a fresh "check/tiebreak"
    // stream, so the key sequences coincide.
    engine_->perturbTieBreak(rngFactory_.stream("check/tiebreak"));
  }
}

void Simulator::registerShardHost(std::uint64_t ownerKey,
                                  std::function<double()> xProvider) {
  if (engine_ != nullptr) engine_->registerHost(ownerKey, std::move(xProvider));
}

Simulator::HostScope::HostScope(Simulator& sim, std::uint64_t ownerKey)
    : engine_(sim.engine_.get()) {
  if (engine_ != nullptr) previousShard_ = engine_->enterHost(ownerKey);
}

Simulator::HostScope::~HostScope() {
  if (engine_ != nullptr) engine_->exitHost(previousShard_);
}

ECGRID_HOT_PATH EventHandle Simulator::scheduleTaskIn(Time delay,
                                                      InlineTask action,
                                                      const char* label) {
  ECGRID_HOT_SCOPE();
  ECGRID_REQUIRE(delay >= 0.0, "cannot schedule into the past");
  if (engine_ != nullptr) {
    return engine_->pushLocal(now_ + delay, std::move(action), label);
  }
  return queue_.push(now_ + delay, std::move(action), label);
}

ECGRID_HOT_PATH EventHandle Simulator::scheduleTaskAt(Time when,
                                                      InlineTask action,
                                                      const char* label) {
  ECGRID_HOT_SCOPE();
  ECGRID_REQUIRE(when >= now_, "cannot schedule into the past");
  if (engine_ != nullptr) {
    return engine_->pushLocal(when, std::move(action), label);
  }
  return queue_.push(when, std::move(action), label);
}

ECGRID_HOT_PATH EventHandle Simulator::scheduleTaskFor(std::uint64_t ownerKey,
                                                       Time delay,
                                                       InlineTask action,
                                                       const char* label) {
  ECGRID_HOT_SCOPE();
  ECGRID_REQUIRE(delay >= 0.0, "cannot schedule into the past");
  if (engine_ != nullptr) {
    return engine_->pushFor(ownerKey, now_ + delay, std::move(action), label);
  }
  return queue_.push(now_ + delay, std::move(action), label);
}

Time Simulator::nextEventTime() {
  return engine_ != nullptr ? engine_->nextEventTime() : queue_.peekTime();
}

std::size_t Simulator::queueDepth() const {
  return engine_ != nullptr ? engine_->queueDepthTotal()
                            : queue_.sizeIncludingCancelled();
}

std::size_t Simulator::peakQueueDepth() const {
  return engine_ != nullptr ? engine_->peakQueueDepth() : queue_.peakDepth();
}

std::size_t Simulator::slabSlotsTotal() const {
  return engine_ != nullptr ? engine_->slabSlotsTotal() : queue_.slabSlots();
}

void Simulator::perturbTieBreaks() {
  if (engine_ != nullptr) {
    engine_->perturbTieBreak(rngFactory_.stream("check/tiebreak"));
    return;
  }
  queue_.perturbTieBreak(rngFactory_.stream("check/tiebreak"));
}

bool Simulator::tieBreaksPerturbed() const {
  return engine_ != nullptr ? engine_->tieBreakPerturbed()
                            : queue_.tieBreakPerturbed();
}

void Simulator::setPeriodicHook(std::uint64_t everyEvents,
                                std::function<void()> hook) {
  ECGRID_REQUIRE(everyEvents > 0 || !hook,
                 "periodic hook needs a positive event period");
  hookEvery_ = everyEvents;
  hook_ = std::move(hook);
}

ECGRID_HOT_PATH bool Simulator::step(Time until) {
  if (engine_ != nullptr) return stepSharded(until);
  if (queue_.peekTime() > until) return false;
  Time time = kTimeZero;
  InlineTask action;
  const char* label = nullptr;
  if (!queue_.pop(time, action, label)) return false;
  now_ = time;
  ++eventsExecuted_;
  if (probe_ != nullptr) {
    // Wall-clock attribution for the profiler. Reporting-only: wall time
    // never feeds the simulation, and without a probe installed no clock
    // is ever read — hence the lint suppressions, same as the bench
    // timers in bench/bench_support.hpp.
    // ecgrid-lint: allow(banned-random)
    const auto wallStart = std::chrono::steady_clock::now();
    action();
    // ecgrid-lint: allow(banned-random)
    const auto wallEnd = std::chrono::steady_clock::now();
    const double wallSeconds =
        std::chrono::duration<double>(wallEnd - wallStart).count();
    probe_->onEvent(label, wallSeconds, now_, eventsExecuted_,
                    queue_.sizeIncludingCancelled(), 0);
  } else {
    action();
  }
  if (hook_ && eventsExecuted_ % hookEvery_ == 0) hook_();
  return true;
}

ECGRID_HOT_PATH bool Simulator::stepSharded(Time until) {
  // Mirror of the serial step() above, event for event: same clock
  // advance, same counter bump, same probe and hook points — the engine
  // only changes where the event record lives.
  if (engine_->nextEventTime() > until) return false;
  Time time = kTimeZero;
  sharded::InlineTask task;
  const char* label = nullptr;
  int shard = 0;
  if (!engine_->popNext(time, task, label, shard)) return false;
  now_ = time;
  ++eventsExecuted_;
  if (probe_ != nullptr) {
    // ecgrid-lint: allow(banned-random)
    const auto wallStart = std::chrono::steady_clock::now();
    task();
    // ecgrid-lint: allow(banned-random)
    const auto wallEnd = std::chrono::steady_clock::now();
    const double wallSeconds =
        std::chrono::duration<double>(wallEnd - wallStart).count();
    probe_->onEvent(label, wallSeconds, now_, eventsExecuted_,
                    engine_->queueDepthTotal(), shard);
  } else {
    task();
  }
  task.reset();
  engine_->finishCurrent();
  if (hook_ && eventsExecuted_ % hookEvery_ == 0) hook_();
  return true;
}

void Simulator::run(Time until) {
  stopRequested_ = false;
  while (!stopRequested_ && step(until)) {
  }
  // Advance the clock to the horizon so post-run queries (battery reads,
  // alive checks) observe the full interval even if the queue went quiet.
  if (!stopRequested_ && until != kTimeNever && now_ < until) {
    now_ = until;
  }
}

}  // namespace ecgrid::sim
