#include "sim/simulator.hpp"

#include <chrono>  // ecgrid-lint: allow(banned-random)

#include "sim/probe.hpp"
#include "util/error.hpp"

namespace ecgrid::sim {

Simulator::Simulator(std::uint64_t masterSeed) : rngFactory_(masterSeed) {}

EventHandle Simulator::schedule(Time delay, std::function<void()> action,
                                const char* label) {
  ECGRID_REQUIRE(delay >= 0.0, "cannot schedule into the past");
  return queue_.push(now_ + delay, std::move(action), label);
}

EventHandle Simulator::scheduleAt(Time when, std::function<void()> action,
                                  const char* label) {
  ECGRID_REQUIRE(when >= now_, "cannot schedule into the past");
  return queue_.push(when, std::move(action), label);
}

void Simulator::setPeriodicHook(std::uint64_t everyEvents,
                                std::function<void()> hook) {
  ECGRID_REQUIRE(everyEvents > 0 || !hook,
                 "periodic hook needs a positive event period");
  hookEvery_ = everyEvents;
  hook_ = std::move(hook);
}

bool Simulator::step(Time until) {
  if (queue_.peekTime() > until) return false;
  Time time = kTimeZero;
  std::function<void()> action;
  const char* label = nullptr;
  if (!queue_.pop(time, action, label)) return false;
  now_ = time;
  ++eventsExecuted_;
  if (probe_ != nullptr) {
    // Wall-clock attribution for the profiler. Reporting-only: wall time
    // never feeds the simulation, and without a probe installed no clock
    // is ever read — hence the lint suppressions, same as the bench
    // timers in bench/bench_support.hpp.
    // ecgrid-lint: allow(banned-random)
    const auto wallStart = std::chrono::steady_clock::now();
    action();
    // ecgrid-lint: allow(banned-random)
    const auto wallEnd = std::chrono::steady_clock::now();
    const double wallSeconds =
        std::chrono::duration<double>(wallEnd - wallStart).count();
    probe_->onEvent(label, wallSeconds, now_, eventsExecuted_,
                    queue_.sizeIncludingCancelled());
  } else {
    action();
  }
  if (hook_ && eventsExecuted_ % hookEvery_ == 0) hook_();
  return true;
}

void Simulator::run(Time until) {
  stopRequested_ = false;
  while (!stopRequested_ && step(until)) {
  }
  // Advance the clock to the horizon so post-run queries (battery reads,
  // alive checks) observe the full interval even if the queue went quiet.
  if (!stopRequested_ && until != kTimeNever && now_ < until) {
    now_ = until;
  }
}

}  // namespace ecgrid::sim
