// InlineTask — move-only callable with inline storage for event payloads.
//
// std::function's 16-byte small-buffer optimisation forces a heap
// allocation for the hot phy/deliver closure (receiver pointer + 48-byte
// Packet + duration ≈ 64 bytes) — one malloc/free pair per delivered
// frame. Both event engines store InlineTask instead: any nothrow-movable
// callable up to kInlineBytes lives directly in the pooled event slot, so
// steady-state dispatch performs no heap traffic at all. Larger callables
// fall back to a heap box transparently (same observable semantics).
//
// The sharded engine's per-shard queues (sim/sharded/shard_queue.hpp)
// adopted this shape in PR 7 and proved the 2.1–2.3× win; PR 9 migrated
// the serial EventQueue and Simulator::schedule onto it, so the serial
// oracle and the shards now share one slot layout. A std::function is 32
// bytes and therefore always fits inline, which is how legacy
// std::function-typed callables still ride the queues without double
// indirection: the function object (and whatever allocation it already
// made) is moved, never re-wrapped.
#pragma once

#include <cstddef>
#include <type_traits>
#include <utility>

#include "util/hot_path.hpp"
#include "util/ownership.hpp"

namespace ecgrid::sim {

class ECGRID_DOMAIN_PER_SCENARIO InlineTask {
 public:
  /// Sized for the largest hot-path closure (phy/deliver: receiver
  /// pointer + net::Packet + duration) with headroom for one more
  /// capture; anything bigger transparently boxes on the heap.
  static constexpr std::size_t kInlineBytes = 96;

  InlineTask() = default;

  template <class F,
            class = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineTask>>>
  InlineTask(F&& callable) {  // NOLINT(google-explicit-constructor)
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= kInlineBytes &&
                  alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      new (static_cast<void*>(storage_)) Fn(std::forward<F>(callable));
      invoke_ = [](void* p) { (*static_cast<Fn*>(p))(); };
      relocate_ = [](void* from, void* to) {
        Fn* src = static_cast<Fn*>(from);
        new (to) Fn(std::move(*src));
        src->~Fn();
      };
      destroy_ = [](void* p) { static_cast<Fn*>(p)->~Fn(); };
    } else {
      // Heap box: the slot stores only the pointer.
      new (static_cast<void*>(storage_)) Fn*(new Fn(std::forward<F>(callable)));
      invoke_ = [](void* p) { (**static_cast<Fn**>(p))(); };
      relocate_ = [](void* from, void* to) {
        new (to) Fn*(*static_cast<Fn**>(from));
      };
      destroy_ = [](void* p) { delete *static_cast<Fn**>(p); };
    }
  }

  InlineTask(InlineTask&& other) noexcept { moveFrom(other); }
  InlineTask& operator=(InlineTask&& other) noexcept {
    if (this != &other) {
      reset();
      moveFrom(other);
    }
    return *this;
  }
  InlineTask(const InlineTask&) = delete;
  InlineTask& operator=(const InlineTask&) = delete;
  ~InlineTask() { reset(); }

  void operator()() { invoke_(storage_); }

  [[nodiscard]] explicit operator bool() const { return invoke_ != nullptr; }

  /// Destroy the held callable (no-op when empty).
  void reset() {
    if (destroy_ != nullptr) destroy_(storage_);
    invoke_ = nullptr;
    relocate_ = nullptr;
    destroy_ = nullptr;
  }

 private:
  void moveFrom(InlineTask& other) {
    if (other.invoke_ == nullptr) return;
    other.relocate_(other.storage_, storage_);
    invoke_ = other.invoke_;
    relocate_ = other.relocate_;
    destroy_ = other.destroy_;
    other.invoke_ = nullptr;
    other.relocate_ = nullptr;
    other.destroy_ = nullptr;
  }

  alignas(std::max_align_t) unsigned char storage_[kInlineBytes];
  void (*invoke_)(void*) = nullptr;
  void (*relocate_)(void*, void*) = nullptr;
  void (*destroy_)(void*) = nullptr;
};

/// One InlineTask sits in every pooled event slot of every queue; at
/// 100k hosts the slabs hold hundreds of thousands of these.
ECGRID_LAYOUT_BUDGET(InlineTask, 128);

}  // namespace ecgrid::sim
