// Cancellable events and the deterministic event queue.
//
// Events are closures scheduled at absolute simulation times. Ties in time
// are broken by insertion sequence number, making every run's event order a
// total order that is independent of heap internals — a prerequisite for
// bit-for-bit reproducibility across platforms.
//
// Storage is a slab: event records live in a pooled free-list and are
// addressed by (index, generation) handles, so steady-state scheduling
// performs no heap allocation at all — closures are stored as InlineTask
// (sim/task.hpp), which keeps hot-path captures in the slot itself (the
// pre-PR-9 design paid one std::function heap box per event whose capture
// exceeded 16 bytes, and the design before that a shared_ptr control
// block per event). The heap is an inlined binary heap of plain
// (time, sequence, slot) entries. The `alloc-audit` preset proves the
// zero-allocation property at runtime (src/check/alloc_audit.hpp).
//
// Cancellation is O(1): the handle flips a flag on the pooled record and
// the queue discards flagged records lazily when they reach the top. A
// popped record's slot is not recycled until the *next* pop, so a handle
// to the currently-executing event still reports pending() — the same
// observable semantics the previous shared_ptr-based queue had while
// Simulator::step kept the record alive through the callback.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "sim/rng.hpp"
#include "sim/task.hpp"
#include "sim/time.hpp"
#include "util/hot_path.hpp"
#include "util/ownership.hpp"

namespace ecgrid::sim {

class EventHandle;

/// Backend interface behind EventHandle: anything owning pooled event
/// slots addressed by (index, generation). The serial EventQueue and the
/// sharded engine's per-shard queues (sim/sharded/shard_queue.hpp) both
/// implement it, so a handle is oblivious to which engine minted it.
class EventTarget {
 public:
  virtual ~EventTarget() = default;

 protected:
  friend class EventHandle;
  virtual void cancelSlot(std::uint32_t slot, std::uint32_t generation) = 0;
  virtual bool slotPending(std::uint32_t slot,
                           std::uint32_t generation) const = 0;
  /// Handle factory for implementations (EventHandle's constructor is
  /// private to keep (slot, generation) pairs unforgeable).
  static EventHandle makeHandle(EventTarget* target, std::uint32_t slot,
                                std::uint32_t generation);
};

/// Handle to a scheduled event. Default-constructed handles are inert.
/// Copyable; all copies refer to the same event. A handle must not be
/// used after its queue (i.e. the Simulator) is destroyed — all simulator
/// components already obey this by construction, as they hold a
/// reference to the Simulator that owns the queue.
class EventHandle {
 public:
  EventHandle() = default;

  /// Cancel the event if it has not fired yet. Idempotent.
  void cancel();

  /// True if the event is still scheduled to fire (or firing right now).
  [[nodiscard]] bool pending() const;

 private:
  friend class EventTarget;
  EventHandle(EventTarget* target, std::uint32_t slot,
              std::uint32_t generation)
      : target_(target), slot_(slot), generation_(generation) {}

  EventTarget* target_ = nullptr;
  std::uint32_t slot_ = 0;
  std::uint32_t generation_ = 0;
};

inline EventHandle EventTarget::makeHandle(EventTarget* target,
                                           std::uint32_t slot,
                                           std::uint32_t generation) {
  return EventHandle(target, slot, generation);
}

/// Min-heap of events ordered by (time, sequence), backed by a slab of
/// pooled records. Non-copyable and non-movable: handles store a pointer
/// back to the queue.
class ECGRID_DOMAIN_PER_SCENARIO EventQueue : public EventTarget {
 public:
  EventQueue();
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  /// `label` is an optional schedule-site tag for the execution profiler
  /// (see Simulator::schedule); it must point at storage outliving the
  /// queue — in practice a string literal. Any callable converts to
  /// InlineTask implicitly; hot-path captures up to
  /// InlineTask::kInlineBytes stay allocation-free.
  EventHandle push(Time time, InlineTask action, const char* label = nullptr);

  /// Determinism-analysis debug mode (src/check): replace the insertion-
  /// sequence tie-break among equal-time events with random keys drawn
  /// from `stream` (sequence stays the final tie-break, so a perturbed
  /// run is itself exactly reproducible). Affects only events pushed
  /// after the call. Correct protocol logic must not care which of two
  /// same-instant events runs first; a digest that diverges under this
  /// mode marks order-dependent logic — the simulator's data-race
  /// analogue. Never enable in runs whose numbers you intend to keep.
  void perturbTieBreak(RngStream stream) { tieBreakRng_ = stream; }
  bool tieBreakPerturbed() const { return tieBreakRng_.has_value(); }

  /// Discards cancelled records, then moves the next live event's time and
  /// action into the out-parameters and removes it. Returns false when the
  /// queue is empty. The event's slot is recycled on the *next* pop, so
  /// handles to it stay pending() while the caller runs the action.
  bool pop(Time& time, InlineTask& action);
  /// As above, also reporting the event's schedule-site label (nullptr
  /// when the push site gave none).
  bool pop(Time& time, InlineTask& action, const char*& label);

  /// Time of the next live event, or kTimeNever if empty.
  Time peekTime();

  bool empty();

  std::size_t sizeIncludingCancelled() const { return heap_.size(); }

  /// Largest heap size ever observed (cancelled records included) — the
  /// queue-depth high-water mark run telemetry reports. Tracked at push,
  /// so it is exact: depth only grows when an event is inserted.
  std::size_t peakDepth() const { return peakDepth_; }

  /// Pooled slot records ever allocated (the slab high-water mark; slots
  /// are recycled, never returned to the allocator).
  std::size_t slabSlots() const { return slots_.size(); }

 protected:
  // EventTarget backends (EventHandle reaches them through the base).
  void cancelSlot(std::uint32_t slot, std::uint32_t generation) override;
  bool slotPending(std::uint32_t slot,
                   std::uint32_t generation) const override;

 private:
  static constexpr std::uint32_t kNoSlot = 0xffffffffu;

  struct Slot {
    Time time = kTimeZero;
    std::uint32_t generation = 0;
    bool live = false;       ///< allocated: queued or currently executing
    bool cancelled = false;
    const char* label = nullptr;  ///< schedule-site tag (static storage)
    InlineTask action;
    std::uint32_t nextFree = kNoSlot;
  };
  /// The slab holds one Slot per in-flight event; at city scale that is
  /// hundreds of thousands. InlineTask (96B inline + 3 fn ptrs, padded to
  /// 16-byte alignment) dominates.
  ECGRID_LAYOUT_BUDGET(Slot, 176);

  struct HeapEntry {
    Time time = kTimeZero;
    /// Tie-break among equal times: == sequence normally, a random draw
    /// under perturbTieBreak() (see above).
    std::uint64_t tieKey = 0;
    std::uint64_t sequence = 0;
    std::uint32_t slot = 0;
  };
  ECGRID_LAYOUT_BUDGET(HeapEntry, 32);

  static bool earlier(const HeapEntry& a, const HeapEntry& b) {
    if (a.time != b.time) return a.time < b.time;
    if (a.tieKey != b.tieKey) return a.tieKey < b.tieKey;
    return a.sequence < b.sequence;
  }

  /// Purge threshold: once at least this many cancelled records sit in
  /// the heap AND they make up half of it, purgeCancelled() rebuilds the
  /// heap without them. Keeps cancel-heavy workloads (depletion re-arms,
  /// ack timeouts) from growing the queue with dead far-future entries;
  /// the floor keeps small queues from purging constantly.
  static constexpr std::size_t kPurgeFloor = 64;

  std::uint32_t allocSlot();
  void freeSlot(std::uint32_t index);
  void removeHeapTop();
  void siftUp(std::size_t i);
  void siftDown(std::size_t i);
  void skipCancelled();
  void purgeCancelled();

  std::vector<Slot> slots_;
  std::vector<HeapEntry> heap_;
  std::optional<RngStream> tieBreakRng_;
  std::uint32_t freeHead_ = kNoSlot;
  std::uint32_t executing_ = kNoSlot;  ///< slot recycled on next pop
  std::uint64_t nextSequence_ = 0;
  std::size_t cancelledInHeap_ = 0;  ///< cancelled records awaiting reclaim
  std::size_t peakDepth_ = 0;        ///< max heap_.size() ever observed
};

inline void EventHandle::cancel() {
  if (target_ != nullptr) target_->cancelSlot(slot_, generation_);
}

inline bool EventHandle::pending() const {
  return target_ != nullptr && target_->slotPending(slot_, generation_);
}

}  // namespace ecgrid::sim
