// Cancellable events and the deterministic event queue.
//
// Events are closures scheduled at absolute simulation times. Ties in time
// are broken by insertion sequence number, making every run's event order a
// total order that is independent of heap internals — a prerequisite for
// bit-for-bit reproducibility across platforms.
//
// Cancellation is O(1): the handle flips a flag on the shared event record
// and the queue discards flagged records lazily when they reach the top.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "sim/time.hpp"

namespace ecgrid::sim {

namespace detail {

struct EventRecord {
  Time time = kTimeZero;
  std::uint64_t sequence = 0;
  bool cancelled = false;
  std::function<void()> action;
};

struct EventLater {
  bool operator()(const std::shared_ptr<EventRecord>& a,
                  const std::shared_ptr<EventRecord>& b) const {
    if (a->time != b->time) return a->time > b->time;
    return a->sequence > b->sequence;
  }
};

}  // namespace detail

/// Handle to a scheduled event. Default-constructed handles are inert.
/// Copyable; all copies refer to the same event.
class EventHandle {
 public:
  EventHandle() = default;

  /// Cancel the event if it has not fired yet. Idempotent.
  void cancel() {
    if (auto rec = record_.lock()) {
      rec->cancelled = true;
      rec->action = nullptr;  // release captured state eagerly
    }
  }

  /// True if the event is still scheduled to fire.
  bool pending() const {
    auto rec = record_.lock();
    return rec != nullptr && !rec->cancelled;
  }

 private:
  friend class EventQueue;
  explicit EventHandle(std::weak_ptr<detail::EventRecord> record)
      : record_(std::move(record)) {}

  std::weak_ptr<detail::EventRecord> record_;
};

/// Min-heap of events ordered by (time, sequence).
class EventQueue {
 public:
  EventHandle push(Time time, std::function<void()> action);

  /// Discards cancelled records, then returns the next live event or
  /// nullptr if the queue is empty. The returned record is removed.
  std::shared_ptr<detail::EventRecord> pop();

  /// Time of the next live event, or kTimeNever if empty.
  Time peekTime();

  bool empty();

  std::size_t sizeIncludingCancelled() const { return heap_.size(); }

 private:
  void skipCancelled();

  std::priority_queue<std::shared_ptr<detail::EventRecord>,
                      std::vector<std::shared_ptr<detail::EventRecord>>,
                      detail::EventLater>
      heap_;
  std::uint64_t nextSequence_ = 0;
};

}  // namespace ecgrid::sim
