// Simulation time.
//
// Time is a double counting seconds since the start of the run. The paper's
// scenarios span 0–2000 s with events at microsecond granularity (packet
// airtimes of ~2 ms, backoff slots of 20 µs), which double represents
// exactly enough: 2000 s has an ulp of ~2.3e-13 s, eight orders of
// magnitude below the finest timer we schedule.
#pragma once

namespace ecgrid::sim {

using Time = double;  ///< seconds since simulation start

inline constexpr Time kTimeZero = 0.0;

/// Sentinel meaning "never" (beyond any horizon we simulate).
inline constexpr Time kTimeNever = 1e18;

inline constexpr Time microseconds(double us) { return us * 1e-6; }
inline constexpr Time milliseconds(double ms) { return ms * 1e-3; }
inline constexpr Time seconds(double s) { return s; }

}  // namespace ecgrid::sim
