#include "sim/sharded/mailbox.hpp"

#include <algorithm>
#include <utility>

#include "util/error.hpp"
#include "util/hot_path.hpp"

namespace ecgrid::sim::sharded {

namespace {
/// Both buffers pre-sized so boundary bursts in baseline runs never grow
/// them on the hot path.
constexpr std::size_t kInitialPostings = 64;
}  // namespace

EdgeMailbox::EdgeMailbox() {
  util::MutexLock lock(mutex_);
  postings_.reserve(kInitialPostings);
  drainScratch_.reserve(kInitialPostings);
}

ECGRID_HOT_PATH void EdgeMailbox::post(const EventKey& key, InlineTask task,
                                       const char* label, Time notBefore) {
  ECGRID_REQUIRE(key.time >= notBefore,
                 "cross-shard event violates the causality floor");
  util::MutexLock lock(mutex_);
  postings_.push_back(Posting{key, std::move(task), label});
}

ECGRID_HOT_PATH std::size_t EdgeMailbox::drainInto(ShardQueue& target) {
  {
    util::MutexLock lock(mutex_);
    // Swap, not move-from: the producer gets the scratch's empty buffer
    // with its high-water capacity intact, so steady-state posting never
    // reallocates once both buffers have seen the burst peak.
    drainScratch_.swap(postings_);
  }
  std::sort(drainScratch_.begin(), drainScratch_.end(),
            [](const Posting& a, const Posting& b) {
              return earlierKey(a.key, b.key);
            });
  for (Posting& posting : drainScratch_) {
    target.push(posting.key, std::move(posting.task), posting.label);
  }
  const std::size_t drained = drainScratch_.size();
  drainScratch_.clear();  // keep capacity for the next swap
  return drained;
}

std::size_t EdgeMailbox::pendingCount() {
  util::MutexLock lock(mutex_);
  return postings_.size();
}

}  // namespace ecgrid::sim::sharded
