#include "sim/sharded/mailbox.hpp"

#include <algorithm>
#include <utility>

#include "util/error.hpp"

namespace ecgrid::sim::sharded {

void EdgeMailbox::post(const EventKey& key, InlineTask task, const char* label,
                       Time notBefore) {
  ECGRID_REQUIRE(key.time >= notBefore,
                 "cross-shard event violates the causality floor");
  util::MutexLock lock(mutex_);
  postings_.push_back(Posting{key, std::move(task), label});
}

std::size_t EdgeMailbox::drainInto(ShardQueue& target) {
  std::vector<Posting> drained;
  {
    util::MutexLock lock(mutex_);
    drained.swap(postings_);
  }
  std::sort(drained.begin(), drained.end(),
            [](const Posting& a, const Posting& b) {
              return earlierKey(a.key, b.key);
            });
  for (Posting& posting : drained) {
    target.push(posting.key, std::move(posting.task), posting.label);
  }
  return drained.size();
}

std::size_t EdgeMailbox::pendingCount() {
  util::MutexLock lock(mutex_);
  return postings_.size();
}

}  // namespace ecgrid::sim::sharded
