// ShardedEngine — spatially sharded event execution for one scenario.
//
// The plane is striped into column shards (ShardMap); each shard owns a
// slab ShardQueue of the events targeting its hosts, and boundary events
// cross through per-edge EdgeMailboxes. The engine runs in one of two
// modes, chosen by how it is driven:
//
// SEQUENCED (the scenario mode, behind Simulator::enableSharding).
//   Events carry keys from ONE global (time, tieKey, sequence) space and
//   commit one at a time via a K-way minimum over the shard-queue heads.
//   That makes the executed event order — and therefore every digest
//   sample, metric, and RNG draw — byte-identical to the serial
//   EventQueue oracle at ANY shard count, by construction. What shards
//   buy here is mechanical: inline task storage (no per-event heap
//   traffic for bounded closures), smaller per-shard heaps, and the
//   ownership/attribution fabric (per-shard wall-time in the profiler,
//   cross-shard and migration accounting).
//
// WINDOWED (engine-level workloads: benches, stress tests).
//   Classic conservative synchronisation: all shards execute one LBTS
//   window [floor, floor + lookahead] at a time — in parallel across a
//   worker pool when workers > 1 — with cross-shard posts restricted to
//   delays >= lookahead and drained at the window barrier. Sequence
//   numbers are striped (counter * shards + shard) so keys stay globally
//   unique without cross-thread coordination. Full scenarios do NOT run
//   windowed: carrier sense couples shards at bare propagation delay
//   (~µs) and phy::Channel holds shared per-scenario state, so the
//   honest scenario path is sequenced (DESIGN.md §14 quantifies this).
//
// An engine instance is driven in exactly one of the two modes.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "sim/event.hpp"
#include "sim/rng.hpp"
#include "sim/sharded/mailbox.hpp"
#include "sim/sharded/shard_map.hpp"
#include "sim/sharded/shard_queue.hpp"
#include "sim/sharded/task.hpp"
#include "sim/time.hpp"
#include "util/ownership.hpp"

namespace ecgrid::sim::sharded {

struct ShardedEngineConfig {
  int shards = 1;
  /// Extent of the x-axis being striped (ScenarioConfig::fieldSize).
  double fieldWidth = 1000.0;
  /// Conservative window width for windowed mode (lookahead.hpp);
  /// unused in sequenced mode.
  double lookaheadSeconds = 0.0;
};

/// Outcome of a runWindowed call.
struct WindowedStats {
  std::uint64_t eventsExecuted = 0;
  std::uint64_t remotePosted = 0;
  std::uint64_t windows = 0;
  /// (shard, window) pairs where the shard committed zero events — the
  /// load-imbalance signal for windowed workloads: a stalled shard sat at
  /// the window barrier doing nothing while its peers worked.
  std::uint64_t stalledShardWindows = 0;
};

class ECGRID_DOMAIN_PER_SCENARIO ShardedEngine {
 public:
  explicit ShardedEngine(const ShardedEngineConfig& config);

  [[nodiscard]] int shardCount() const { return map_.shardCount(); }
  [[nodiscard]] double lookaheadSeconds() const {
    return config_.lookaheadSeconds;
  }

  // ---- Host registry & execution-context attribution -------------------

  /// Register host `key` (sim::hostEventKey of its node id) with a live
  /// x-position provider; ownership follows the host across stripe
  /// boundaries (ShardMap). Unregistered keys belong to the hub shard.
  void registerHost(std::uint64_t key, std::function<double()> xProvider);

  /// Shard whose context is currently executing; events pushed without
  /// an owner key land here. Starts at the hub shard.
  [[nodiscard]] int currentShard() const { return currentShard_; }

  /// Enter/leave host `key`'s shard context (Simulator::HostScope drives
  /// this from the per-host entry points). Returns the previous shard.
  int enterHost(std::uint64_t key);
  void exitHost(int previousShard);

  // ---- Sequenced mode (Simulator facade) -------------------------------

  /// Queue `task` on the current context's shard with the next global
  /// key. Returns a live handle.
  EventHandle pushLocal(Time time, InlineTask task, const char* label);

  /// Queue `task` for host `ownerKey`'s shard. Same-shard pushes return
  /// a live handle; cross-shard pushes travel through the edge mailbox
  /// and return an inert handle — boundary deliveries are fire-and-
  /// forget (every call site is a phy/paging delivery that discards it).
  EventHandle pushFor(std::uint64_t ownerKey, Time time, InlineTask task,
                      const char* label);

  /// Commit the globally next event: drain dirty mailboxes, take the
  /// K-way minimum over shard heads, pop it, and make its shard the
  /// current context. Caller runs the task, then calls finishCurrent().
  bool popNext(Time& time, InlineTask& task, const char*& label, int& shard);

  /// Recycle the committed event's slot (after its callback returned).
  void finishCurrent();

  /// Time of the globally next live event, or kTimeNever.
  Time nextEventTime();

  /// Heap entries across all shards plus mailbox-buffered events
  /// (the sharded analogue of EventQueue::sizeIncludingCancelled).
  [[nodiscard]] std::size_t queueDepthTotal() const;

  /// Mirror of EventQueue::perturbTieBreak for the sequenced key space:
  /// same stream, same one-draw-per-push discipline, so a perturbed
  /// sharded run reproduces the perturbed serial run exactly.
  void perturbTieBreak(RngStream stream) { tieBreakRng_ = stream; }
  [[nodiscard]] bool tieBreakPerturbed() const {
    return tieBreakRng_.has_value();
  }

  /// Boundary events that crossed a shard edge (sequenced mode).
  [[nodiscard]] std::uint64_t crossShardEvents() const {
    return crossShardEvents_;
  }
  /// Host ownership changes observed (mobility across stripe edges).
  [[nodiscard]] std::uint64_t hostMigrations() const {
    return map_.migrations();
  }

  // ---- Telemetry surface (both modes) ----------------------------------

  /// Events committed per shard: sequenced-mode popNext commits plus
  /// windowed-mode per-context executions. Deterministic — a pure
  /// function of the event schedule, never of wall time.
  [[nodiscard]] std::vector<std::uint64_t> committedPerShard() const;

  /// High-water mark of queueDepthTotal(), sampled at commit granularity
  /// (sequenced: before each popNext; windowed: at each window barrier).
  /// Commit-granularity sampling can miss intra-event spikes but is
  /// deterministic and costs one O(shards) sum per commit — the same
  /// order as the K-way minimum popNext already pays.
  [[nodiscard]] std::size_t peakQueueDepth() const { return peakQueueDepth_; }

  /// Pooled slot records ever allocated across all shard queues (slab
  /// high-water; slabs recycle slots but never shrink).
  [[nodiscard]] std::size_t slabSlotsTotal() const;

  /// Cumulative stalled (shard, window) pairs over all runWindowed calls.
  /// Always 0 in sequenced mode, where there are no window barriers.
  [[nodiscard]] std::uint64_t windowStalls() const { return windowStalls_; }

  // ---- Windowed mode (engine-level workloads) --------------------------

  /// Per-shard execution context handed to windowed tasks (tasks capture
  /// the pointer from shardContext()). Stable for the engine's lifetime.
  class ShardContext {
   public:
    [[nodiscard]] int shard() const { return shard_; }
    /// Simulation time of the event being executed on this shard.
    [[nodiscard]] Time now() const { return now_; }

    /// Queue a follow-up on this shard, `delay >= 0` from now().
    void postLocal(Time delay, InlineTask task, const char* label = nullptr);

    /// Queue a follow-up on another shard through the edge mailbox.
    /// `delay` must be >= the engine lookahead — the conservative
    /// guarantee that the target cannot have executed past the arrival
    /// time yet.
    void postRemote(int targetShard, Time delay, InlineTask task,
                    const char* label = nullptr);

   private:
    friend class ShardedEngine;
    ShardedEngine* engine_ = nullptr;
    int shard_ = 0;
    Time now_ = kTimeZero;
    std::uint64_t nextLocalSeq_ = 0;
    std::uint64_t executed_ = 0;
    std::uint64_t remotePosted_ = 0;
  };

  [[nodiscard]] ShardContext& shardContext(int shard);

  /// Seed a windowed workload before runWindowed (single-threaded
  /// set-up phase).
  void seedWindowed(int shard, Time time, InlineTask task,
                    const char* label = nullptr);

  /// Run windows until all queues drain past `until`. `workers <= 1`
  /// executes every shard inline on the calling thread (same schedule,
  /// no thread pool — the 1-core bench path); `workers > 1` fans each
  /// window's shards over that many threads with a barrier at the window
  /// edge. Requires lookaheadSeconds > 0.
  WindowedStats runWindowed(int workers, Time until);

 private:
  [[nodiscard]] std::size_t edgeIndex(int from, int to) const {
    return static_cast<std::size_t>(from) *
               static_cast<std::size_t>(map_.shardCount()) +
           static_cast<std::size_t>(to);
  }
  EventKey nextSequencedKey(Time time);
  void drainDirtyEdges();
  std::size_t drainAllEdges();
  void runShardWindow(int shard, Time horizon);

  ShardedEngineConfig config_;
  ShardMap map_;
  std::vector<std::unique_ptr<ShardQueue>> queues_;
  std::vector<std::unique_ptr<EdgeMailbox>> mailboxes_;
  std::vector<ShardContext> contexts_;
  /// Sequenced-mode dirty-edge set (single-threaded): avoids probing
  /// every mailbox mutex per committed event.
  std::vector<std::size_t> dirtyEdges_;
  std::vector<char> edgeDirty_;
  std::optional<RngStream> tieBreakRng_;
  /// Sequenced-mode commits attributed to each shard (telemetry).
  std::vector<std::uint64_t> committedSequenced_;
  std::uint64_t nextSequence_ = 0;
  std::uint64_t crossShardEvents_ = 0;
  std::uint64_t windowStalls_ = 0;
  std::size_t mailboxBuffered_ = 0;
  std::size_t peakQueueDepth_ = 0;
  int currentShard_ = ShardMap::kHubShard;
  int executingShard_ = -1;
  /// Current window horizon — the causality floor for windowed posts.
  Time windowHorizon_ = kTimeZero;
};

}  // namespace ecgrid::sim::sharded
