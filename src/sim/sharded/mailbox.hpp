// EdgeMailbox — deterministic cross-shard event hand-off.
//
// One mailbox per directed shard edge (from → to). Boundary events —
// frames delivered across a stripe edge, paging signals to a host owned
// elsewhere, timers following a host that migrated — are posted here
// with their global EventKey already assigned, and later drained into
// the target shard's queue sorted by (time, tieKey, sequence). Because
// the keys are global, drain timing can never reorder events relative
// to the run's total order; the sort only fixes the order postings
// enter the target slab, keeping drains deterministic.
//
// Locking: in windowed mode the producing shard's worker posts while the
// engine drains only between windows (the window barrier already
// sequences the two), but the mutex keeps the type safe under any
// caller and lets clang's thread-safety analysis check it. In sequenced
// mode (single-threaded) the lock is uncontended.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/sharded/shard_queue.hpp"
#include "sim/sharded/task.hpp"
#include "util/mutex.hpp"
#include "util/ownership.hpp"
#include "util/thread_annotations.hpp"

namespace ecgrid::sim::sharded {

class ECGRID_DOMAIN_PER_SCENARIO EdgeMailbox {
 public:
  EdgeMailbox();
  EdgeMailbox(const EdgeMailbox&) = delete;
  EdgeMailbox& operator=(const EdgeMailbox&) = delete;

  /// Post a boundary event. `notBefore` is the causality floor: in
  /// windowed mode the current window horizon (a conservative engine may
  /// never receive an event earlier than what the target might already
  /// have processed); pass kTimeZero in sequenced mode, where the global
  /// commit order makes any key safe.
  void post(const EventKey& key, InlineTask task, const char* label,
            Time notBefore);

  /// Move all postings into `target`, sorted by EventKey. Returns the
  /// number of events drained.
  std::size_t drainInto(ShardQueue& target);

  /// Postings currently buffered.
  std::size_t pendingCount();

 private:
  struct Posting {
    EventKey key;
    InlineTask task;
    const char* label = nullptr;
  };
  ECGRID_LAYOUT_BUDGET(Posting, 176);

  util::Mutex mutex_;
  std::vector<Posting> postings_ ECGRID_GUARDED_BY(mutex_);
  /// Drain-side scratch, swapped with postings_ under the lock so both
  /// buffers keep their high-water capacity — draining must not return
  /// the producer to a zero-capacity vector (steady-state churn the
  /// alloc audit would flag). Touched only by the draining (consumer)
  /// side outside the lock; the swap under the lock is the hand-off.
  std::vector<Posting> drainScratch_;
};

}  // namespace ecgrid::sim::sharded
