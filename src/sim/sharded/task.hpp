// InlineTask moved to sim/task.hpp when the serial EventQueue adopted the
// inline-slot shape (PR 9) — the serial oracle and the shard queues now
// share one task type. This alias header keeps existing
// sim::sharded::InlineTask spellings compiling.
#pragma once

#include "sim/task.hpp"

namespace ecgrid::sim::sharded {

using InlineTask = ::ecgrid::sim::InlineTask;

}  // namespace ecgrid::sim::sharded
