#include "sim/sharded/engine.hpp"

#include <algorithm>
#include <thread>
#include <utility>

#include "util/error.hpp"
#include "util/hot_path.hpp"

namespace ecgrid::sim::sharded {

ShardedEngine::ShardedEngine(const ShardedEngineConfig& config)
    : config_(config), map_(config.fieldWidth, config.shards) {
  const int shards = map_.shardCount();
  queues_.reserve(static_cast<std::size_t>(shards));
  contexts_.resize(static_cast<std::size_t>(shards));
  for (int s = 0; s < shards; ++s) {
    queues_.push_back(std::make_unique<ShardQueue>());
    contexts_[static_cast<std::size_t>(s)].engine_ = this;
    contexts_[static_cast<std::size_t>(s)].shard_ = s;
  }
  const std::size_t edges =
      static_cast<std::size_t>(shards) * static_cast<std::size_t>(shards);
  mailboxes_.reserve(edges);
  for (std::size_t e = 0; e < edges; ++e) {
    mailboxes_.push_back(std::make_unique<EdgeMailbox>());
  }
  edgeDirty_.assign(edges, 0);
  dirtyEdges_.reserve(edges);
  committedSequenced_.assign(static_cast<std::size_t>(shards), 0);
}

void ShardedEngine::registerHost(std::uint64_t key,
                                 std::function<double()> xProvider) {
  map_.registerHost(key, std::move(xProvider));
}

int ShardedEngine::enterHost(std::uint64_t key) {
  const int previous = currentShard_;
  currentShard_ = map_.shardOfHost(key);
  return previous;
}

void ShardedEngine::exitHost(int previousShard) {
  currentShard_ = previousShard;
}

EventKey ShardedEngine::nextSequencedKey(Time time) {
  // Mirrors EventQueue::push exactly: one sequence bump, then one
  // tie-break draw from the same "check/tiebreak" stream when perturbed
  // — push order is identical to the serial run's, so the key stream is
  // too (the digest-parity precondition).
  const std::uint64_t sequence = nextSequence_++;
  const std::uint64_t tieKey = tieBreakRng_ ? tieBreakRng_->raw() : sequence;
  return EventKey{time, tieKey, sequence};
}

ECGRID_HOT_PATH EventHandle ShardedEngine::pushLocal(Time time,
                                                     InlineTask task,
                                                     const char* label) {
  ECGRID_HOT_SCOPE();
  return queues_[static_cast<std::size_t>(currentShard_)]->push(
      nextSequencedKey(time), std::move(task), label);
}

ECGRID_HOT_PATH EventHandle ShardedEngine::pushFor(std::uint64_t ownerKey,
                                                   Time time, InlineTask task,
                                                   const char* label) {
  ECGRID_HOT_SCOPE();
  const int target = map_.shardOfHost(ownerKey);
  const EventKey key = nextSequencedKey(time);
  if (target == currentShard_) {
    return queues_[static_cast<std::size_t>(target)]->push(
        key, std::move(task), label);
  }
  ++crossShardEvents_;
  const std::size_t edge = edgeIndex(currentShard_, target);
  mailboxes_[edge]->post(key, std::move(task), label, kTimeZero);
  ++mailboxBuffered_;
  if (edgeDirty_[edge] == 0) {
    edgeDirty_[edge] = 1;
    dirtyEdges_.push_back(edge);
  }
  return EventHandle{};
}

ECGRID_HOT_PATH void ShardedEngine::drainDirtyEdges() {
  if (dirtyEdges_.empty()) return;
  for (std::size_t edge : dirtyEdges_) {
    const int target = static_cast<int>(
        edge % static_cast<std::size_t>(map_.shardCount()));
    mailboxBuffered_ -=
        mailboxes_[edge]->drainInto(*queues_[static_cast<std::size_t>(target)]);
    edgeDirty_[edge] = 0;
  }
  dirtyEdges_.clear();
}

ECGRID_HOT_PATH bool ShardedEngine::popNext(Time& time, InlineTask& task,
                                            const char*& label, int& shard) {
  ECGRID_HOT_SCOPE();
  drainDirtyEdges();
  // Depth high-water at commit granularity: everything queued is in the
  // shard heaps now (the drain above emptied the mailboxes).
  const std::size_t depth = queueDepthTotal();
  if (depth > peakQueueDepth_) peakQueueDepth_ = depth;
  int best = -1;
  const EventKey* bestKey = nullptr;
  const int shards = map_.shardCount();
  for (int s = 0; s < shards; ++s) {
    const EventKey* key = queues_[static_cast<std::size_t>(s)]->peek();
    if (key != nullptr && (bestKey == nullptr || earlierKey(*key, *bestKey))) {
      best = s;
      bestKey = key;
    }
  }
  if (best < 0) return false;
  const bool popped =
      queues_[static_cast<std::size_t>(best)]->popFront(time, task, label);
  ECGRID_REQUIRE(popped, "peeked shard head vanished before pop");
  ++committedSequenced_[static_cast<std::size_t>(best)];
  currentShard_ = best;
  executingShard_ = best;
  shard = best;
  return true;
}

void ShardedEngine::finishCurrent() {
  if (executingShard_ < 0) return;
  queues_[static_cast<std::size_t>(executingShard_)]->finishExecuting();
  executingShard_ = -1;
}

Time ShardedEngine::nextEventTime() {
  drainDirtyEdges();
  Time next = kTimeNever;
  const int shards = map_.shardCount();
  for (int s = 0; s < shards; ++s) {
    const EventKey* key = queues_[static_cast<std::size_t>(s)]->peek();
    if (key != nullptr && key->time < next) next = key->time;
  }
  return next;
}

std::size_t ShardedEngine::queueDepthTotal() const {
  std::size_t total = mailboxBuffered_;
  for (const auto& queue : queues_) total += queue->sizeIncludingCancelled();
  return total;
}

std::vector<std::uint64_t> ShardedEngine::committedPerShard() const {
  std::vector<std::uint64_t> committed = committedSequenced_;
  for (std::size_t s = 0; s < committed.size(); ++s) {
    committed[s] += contexts_[s].executed_;
  }
  return committed;
}

std::size_t ShardedEngine::slabSlotsTotal() const {
  std::size_t total = 0;
  for (const auto& queue : queues_) total += queue->slabSlots();
  return total;
}

// ---- Windowed mode ---------------------------------------------------------

ShardedEngine::ShardContext& ShardedEngine::shardContext(int shard) {
  ECGRID_REQUIRE(shard >= 0 && shard < map_.shardCount(),
                 "shard index out of range");
  return contexts_[static_cast<std::size_t>(shard)];
}

void ShardedEngine::ShardContext::postLocal(Time delay, InlineTask task,
                                            const char* label) {
  ECGRID_REQUIRE(delay >= 0.0, "cannot schedule into the past");
  // Striped sequence: globally unique across shards without any
  // cross-thread coordination.
  const std::uint64_t sequence =
      nextLocalSeq_++ * static_cast<std::uint64_t>(engine_->shardCount()) +
      static_cast<std::uint64_t>(shard_);
  engine_->queues_[static_cast<std::size_t>(shard_)]->push(
      EventKey{now_ + delay, sequence, sequence}, std::move(task), label);
}

void ShardedEngine::ShardContext::postRemote(int targetShard, Time delay,
                                             InlineTask task,
                                             const char* label) {
  ECGRID_REQUIRE(targetShard >= 0 && targetShard < engine_->shardCount(),
                 "shard index out of range");
  ECGRID_REQUIRE(delay >= engine_->lookaheadSeconds(),
                 "cross-shard post below the conservative lookahead");
  const std::uint64_t sequence =
      nextLocalSeq_++ * static_cast<std::uint64_t>(engine_->shardCount()) +
      static_cast<std::uint64_t>(shard_);
  engine_->mailboxes_[engine_->edgeIndex(shard_, targetShard)]->post(
      EventKey{now_ + delay, sequence, sequence}, std::move(task), label,
      engine_->windowHorizon_);
  ++remotePosted_;
}

void ShardedEngine::seedWindowed(int shard, Time time, InlineTask task,
                                 const char* label) {
  ECGRID_REQUIRE(shard >= 0 && shard < map_.shardCount(),
                 "shard index out of range");
  ShardContext& context = contexts_[static_cast<std::size_t>(shard)];
  const std::uint64_t sequence =
      context.nextLocalSeq_++ *
          static_cast<std::uint64_t>(map_.shardCount()) +
      static_cast<std::uint64_t>(shard);
  queues_[static_cast<std::size_t>(shard)]->push(
      EventKey{time, sequence, sequence}, std::move(task), label);
}

std::size_t ShardedEngine::drainAllEdges() {
  std::size_t drained = 0;
  const std::size_t edges = mailboxes_.size();
  const int shards = map_.shardCount();
  for (std::size_t edge = 0; edge < edges; ++edge) {
    const int target =
        static_cast<int>(edge % static_cast<std::size_t>(shards));
    drained += mailboxes_[edge]->drainInto(
        *queues_[static_cast<std::size_t>(target)]);
  }
  return drained;
}

void ShardedEngine::runShardWindow(int shard, Time horizon) {
  ShardQueue& queue = *queues_[static_cast<std::size_t>(shard)];
  ShardContext& context = contexts_[static_cast<std::size_t>(shard)];
  Time time = kTimeZero;
  InlineTask task;
  const char* label = nullptr;
  while (true) {
    const EventKey* key = queue.peek();
    if (key == nullptr || key->time > horizon) break;
    const bool popped = queue.popFront(time, task, label);
    ECGRID_REQUIRE(popped, "windowed shard head vanished before pop");
    context.now_ = time;
    task();
    task.reset();
    queue.finishExecuting();
    ++context.executed_;
  }
}

WindowedStats ShardedEngine::runWindowed(int workers, Time until) {
  ECGRID_REQUIRE(config_.lookaheadSeconds > 0.0,
                 "windowed mode needs a positive lookahead");
  const int shards = map_.shardCount();
  WindowedStats stats;
  std::vector<std::uint64_t> executedAtBarrier(
      static_cast<std::size_t>(shards), 0);
  while (true) {
    // Window barrier: all boundary events posted in the previous window
    // land before the next floor is computed.
    drainAllEdges();
    // Depth high-water at the barrier (single-threaded point, so the sum
    // over shard heaps is race-free).
    const std::size_t depth = queueDepthTotal();
    if (depth > peakQueueDepth_) peakQueueDepth_ = depth;
    Time floor = kTimeNever;
    for (int s = 0; s < shards; ++s) {
      const EventKey* key = queues_[static_cast<std::size_t>(s)]->peek();
      if (key != nullptr && key->time < floor) floor = key->time;
    }
    if (floor == kTimeNever || floor > until) break;
    const Time horizon = std::min(floor + config_.lookaheadSeconds, until);
    windowHorizon_ = horizon;
    for (int s = 0; s < shards; ++s) {
      executedAtBarrier[static_cast<std::size_t>(s)] =
          contexts_[static_cast<std::size_t>(s)].executed_;
    }
    if (workers <= 1 || shards == 1) {
      for (int s = 0; s < shards; ++s) runShardWindow(s, horizon);
    } else {
      // One thread per shard group; spawn/join per window is the
      // barrier. The joins give the next drainAllEdges a happens-before
      // edge over every in-window mailbox post.
      const int threads = std::min(workers, shards);
      std::vector<std::thread> pool;
      pool.reserve(static_cast<std::size_t>(threads - 1));
      for (int t = 1; t < threads; ++t) {
        pool.emplace_back([this, t, threads, shards, horizon] {
          for (int s = t; s < shards; s += threads) runShardWindow(s, horizon);
        });
      }
      for (int s = 0; s < shards; s += threads) runShardWindow(s, horizon);
      for (std::thread& thread : pool) thread.join();
    }
    ++stats.windows;
    // Stall accounting after the joins: a shard that committed nothing
    // this window sat idle at the barrier while its peers worked.
    for (int s = 0; s < shards; ++s) {
      if (contexts_[static_cast<std::size_t>(s)].executed_ ==
          executedAtBarrier[static_cast<std::size_t>(s)]) {
        ++stats.stalledShardWindows;
      }
    }
  }
  windowStalls_ += stats.stalledShardWindows;
  for (const ShardContext& context : contexts_) {
    stats.eventsExecuted += context.executed_;
    stats.remotePosted += context.remotePosted_;
  }
  return stats;
}

}  // namespace ecgrid::sim::sharded
