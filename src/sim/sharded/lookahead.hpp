// Conservative lookahead derivation for the windowed engine mode.
//
// A conservative (null-message / LBTS) engine may run shards ahead of
// each other only up to the minimum latency of any cross-shard
// influence. For the wireless model that latency is the time before a
// frame transmitted in one stripe can change *decoded* state in another:
// the propagation delay across the inter-stripe gap plus the frame's
// serialisation on air (PLCP preamble + payload at the channel bitrate)
// — the quantities phy::ChannelConfig carries.
//
// Scope note (DESIGN.md §14): this bound covers decode-level influence
// only. Carrier sense reacts at the *start* of a reception, i.e. after
// the bare propagation delay (~µs), which is why full scenarios run the
// engine in sequenced mode and the windowed mode is reserved for
// engine-level workloads whose cross-shard interactions honour this
// lookahead by construction.
//
// Plain doubles in/out: this header is included from sim/, which may not
// depend on phy/ — the harness passes the ChannelConfig fields down.
#pragma once

#include "util/error.hpp"

namespace ecgrid::sim::sharded {

/// Minimum cross-shard influence latency in seconds.
///
/// `gapMeters`: closest approach between hosts of adjacent shards. With
/// column stripes and hosts registered anywhere in them this is 0 —
/// pass the known minimum for the workload, or 0 for the conservative
/// floor (the preamble + serialisation terms still give a usable
/// window). `minFrameBytes`: smallest frame the workload transmits.
inline double conservativeLookahead(double gapMeters,
                                    double propagationSpeedMps,
                                    double preambleSeconds,
                                    int minFrameBytes, double bitrateBps) {
  ECGRID_REQUIRE(propagationSpeedMps > 0.0 && bitrateBps > 0.0,
                 "lookahead needs positive propagation speed and bitrate");
  ECGRID_REQUIRE(gapMeters >= 0.0 && preambleSeconds >= 0.0 &&
                     minFrameBytes >= 0,
                 "lookahead inputs must be non-negative");
  return gapMeters / propagationSpeedMps + preambleSeconds +
         (static_cast<double>(minFrameBytes) * 8.0) / bitrateBps;
}

}  // namespace ecgrid::sim::sharded
