// ShardMap — column-stripe spatial partition and host-ownership table.
//
// The plane is cut into `shardCount` equal-width vertical stripes (the
// same bucketing idea phy::SpatialIndex uses, collapsed to one axis so a
// shard boundary is a single x-coordinate). Every host registers a live
// x-position provider; the shard that owns a host is re-derived from that
// provider on lookup, so mobility-driven migration across a stripe
// boundary is automatic — the map records each observed ownership change
// as a migration (the boundary event DESIGN.md §14 describes).
//
// The map is ECGRID_DOMAIN_PER_SCENARIO state driven only from the
// sequenced commit loop (one thread); windowed-mode workloads address
// shards explicitly and never consult it concurrently.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>

#include "util/ownership.hpp"

namespace ecgrid::sim::sharded {

class ECGRID_DOMAIN_PER_SCENARIO ShardMap {
 public:
  /// `fieldWidth` is the extent of the x-axis being striped; positions
  /// outside [0, fieldWidth) clamp to the edge stripes.
  ShardMap(double fieldWidth, int shardCount);

  [[nodiscard]] int shardCount() const { return shards_; }
  [[nodiscard]] double fieldWidth() const { return fieldWidth_; }

  /// Stripe owning x-coordinate `x` (clamped).
  [[nodiscard]] int shardOfX(double x) const;

  /// Register host `key` with a live x-position provider. The provider
  /// must stay valid for the map's lifetime and be pure (no RNG draws,
  /// no event scheduling) — it is consulted on every ownership lookup.
  void registerHost(std::uint64_t key, std::function<double()> xProvider);

  /// True when `key` has a registered provider.
  [[nodiscard]] bool knowsHost(std::uint64_t key) const;

  /// Current owner shard of host `key`, re-derived from its position
  /// provider; counts a migration when ownership changed since the last
  /// lookup. Unregistered keys fall back to the hub shard (0), where
  /// per-scenario components (traffic, stats, fault) live.
  int shardOfHost(std::uint64_t key);

  /// Ownership changes observed across all shardOfHost lookups.
  [[nodiscard]] std::uint64_t migrations() const { return migrations_; }

  static constexpr int kHubShard = 0;

 private:
  struct HostEntry {
    std::function<double()> x;
    int lastShard = kHubShard;
  };

  double fieldWidth_;
  double stripeWidth_;
  int shards_;
  std::uint64_t migrations_ = 0;
  // Keyed lookups only — never iterated, so hash order cannot leak into
  // event order.
  std::unordered_map<std::uint64_t, HostEntry> hosts_;
};

}  // namespace ecgrid::sim::sharded
