#include "sim/sharded/shard_queue.hpp"

#include <utility>

#include "util/error.hpp"
#include "util/hot_path.hpp"

namespace ecgrid::sim::sharded {

namespace {
/// Pre-sized like the serial EventQueue so baseline runs never grow the
/// slab vectors on the hot path (the alloc-audit gate would count it).
constexpr std::size_t kInitialSlots = 256;
}  // namespace

ShardQueue::ShardQueue() {
  slots_.reserve(kInitialSlots);
  heap_.reserve(kInitialSlots);
}

ECGRID_HOT_PATH std::uint32_t ShardQueue::allocSlot() {
  if (freeHead_ != kNoSlot) {
    std::uint32_t index = freeHead_;
    freeHead_ = slots_[index].nextFree;
    return index;
  }
  if (slots_.size() == slots_.capacity()) {
    // High-water slab growth, audit-exempt — see the serial EventQueue.
    ECGRID_ALLOC_EXEMPT();
    slots_.reserve(slots_.empty() ? kInitialSlots : slots_.capacity() * 2);
  }
  slots_.emplace_back();
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

ECGRID_HOT_PATH void ShardQueue::freeSlot(std::uint32_t index) {
  Slot& slot = slots_[index];
  slot.live = false;
  slot.cancelled = false;
  slot.label = nullptr;
  slot.task.reset();
  ++slot.generation;
  slot.nextFree = freeHead_;
  freeHead_ = index;
}

ECGRID_HOT_PATH EventHandle ShardQueue::push(const EventKey& key, InlineTask task,
                             const char* label) {
  ECGRID_REQUIRE(static_cast<bool>(task), "event task must be callable");
  std::uint32_t index = allocSlot();
  Slot& slot = slots_[index];
  slot.time = key.time;
  slot.live = true;
  slot.cancelled = false;
  slot.label = label;
  slot.task = std::move(task);
  if (heap_.size() == heap_.capacity()) {
    // High-water growth, same argument as the slab in allocSlot().
    ECGRID_ALLOC_EXEMPT();
    heap_.reserve(heap_.empty() ? kInitialSlots : heap_.capacity() * 2);
  }
  heap_.push_back(HeapEntry{key, index});
  if (heap_.size() > peakDepth_) peakDepth_ = heap_.size();
  siftUp(heap_.size() - 1);
  return makeHandle(this, index, slot.generation);
}

ECGRID_HOT_PATH void ShardQueue::siftUp(std::size_t i) {
  HeapEntry entry = heap_[i];
  while (i > 0) {
    std::size_t parent = (i - 1) / 2;
    if (!earlierKey(entry.key, heap_[parent].key)) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = entry;
}

ECGRID_HOT_PATH void ShardQueue::siftDown(std::size_t i) {
  const std::size_t size = heap_.size();
  HeapEntry entry = heap_[i];
  while (true) {
    std::size_t child = 2 * i + 1;
    if (child >= size) break;
    if (child + 1 < size && earlierKey(heap_[child + 1].key, heap_[child].key))
      ++child;
    if (!earlierKey(heap_[child].key, entry.key)) break;
    heap_[i] = heap_[child];
    i = child;
  }
  heap_[i] = entry;
}

ECGRID_HOT_PATH void ShardQueue::removeHeapTop() {
  heap_.front() = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) siftDown(0);
}

ECGRID_HOT_PATH void ShardQueue::skipCancelled() {
  while (!heap_.empty() && slots_[heap_.front().slot].cancelled) {
    freeSlot(heap_.front().slot);
    removeHeapTop();
    --cancelledInHeap_;
  }
}

ECGRID_HOT_PATH void ShardQueue::purgeCancelled() {
  std::size_t kept = 0;
  for (const HeapEntry& entry : heap_) {
    if (slots_[entry.slot].cancelled) {
      freeSlot(entry.slot);
    } else {
      heap_[kept++] = entry;
    }
  }
  heap_.resize(kept);
  // Bottom-up heapify; pop order is fixed by the EventKey total order
  // alone, so the digest gate against the serial oracle is unaffected.
  for (std::size_t i = kept / 2; i-- > 0;) siftDown(i);
  cancelledInHeap_ = 0;
}

const EventKey* ShardQueue::peek() {
  skipCancelled();
  return heap_.empty() ? nullptr : &heap_.front().key;
}

ECGRID_HOT_PATH bool ShardQueue::popFront(Time& time, InlineTask& task, const char*& label) {
  ECGRID_REQUIRE(executing_ == kNoSlot,
                 "previous event not finished (finishExecuting missing)");
  skipCancelled();
  if (heap_.empty()) return false;
  std::uint32_t index = heap_.front().slot;
  Slot& slot = slots_[index];
  time = slot.time;
  task = std::move(slot.task);
  slot.task.reset();
  label = slot.label;
  removeHeapTop();
  executing_ = index;
  return true;
}

void ShardQueue::finishExecuting() {
  if (executing_ == kNoSlot) return;
  freeSlot(executing_);
  executing_ = kNoSlot;
}

void ShardQueue::cancelSlot(std::uint32_t slot, std::uint32_t generation) {
  if (slot >= slots_.size()) return;
  Slot& record = slots_[slot];
  if (!record.live || record.generation != generation) return;
  if (record.cancelled) return;
  record.cancelled = true;
  // Release the closure eagerly, matching the serial queue.
  record.task.reset();
  // Count-and-purge, matching the serial queue: cancel-heavy workloads
  // must not grow the heap with dead far-future entries.
  if (slot != executing_) {
    ++cancelledInHeap_;
    if (cancelledInHeap_ >= kPurgeFloor && cancelledInHeap_ * 2 >= heap_.size()) {
      purgeCancelled();
    }
  }
}

bool ShardQueue::slotPending(std::uint32_t slot,
                             std::uint32_t generation) const {
  if (slot >= slots_.size()) return false;
  const Slot& record = slots_[slot];
  return record.live && record.generation == generation && !record.cancelled;
}

}  // namespace ecgrid::sim::sharded
