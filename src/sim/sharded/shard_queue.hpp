// ShardQueue — one shard's slab event queue, keyed by global event keys.
//
// Same slab + inlined-binary-heap layout as the serial sim::EventQueue
// (see sim/event.hpp for the design rationale) with two deliberate
// differences:
//
//   * Payloads are InlineTask, not std::function — the hot phy/deliver
//     closure lives inside the pooled slot with no heap round-trip.
//   * Ordering keys (time, tieKey, sequence) are supplied by the caller
//     instead of drawn from a queue-local counter. The ShardedEngine
//     assigns keys from ONE global sequence space, so the K-way minimum
//     over shard heads reproduces the serial queue's total order exactly
//     — the property the digest-parity tests pin down.
//
// Implements EventTarget, so EventHandles minted here are
// indistinguishable from serial ones. Executing-slot semantics match the
// serial queue observably: the popped slot stays live (handles report
// pending()) until finishExecuting() is called after the callback
// returns, mirroring the serial queue's recycle-on-next-pop.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/event.hpp"
#include "sim/sharded/task.hpp"
#include "sim/time.hpp"
#include "util/ownership.hpp"

namespace ecgrid::sim::sharded {

/// Position of an event in the run's global total order.
struct EventKey {
  Time time = kTimeZero;
  /// == sequence normally; a random draw under tie-break perturbation
  /// (mirrors sim::EventQueue::perturbTieBreak).
  std::uint64_t tieKey = 0;
  /// Globally unique across all shards of one engine.
  std::uint64_t sequence = 0;
};

inline bool earlierKey(const EventKey& a, const EventKey& b) {
  if (a.time != b.time) return a.time < b.time;
  if (a.tieKey != b.tieKey) return a.tieKey < b.tieKey;
  return a.sequence < b.sequence;
}

class ECGRID_DOMAIN_PER_SCENARIO ShardQueue : public EventTarget {
 public:
  ShardQueue();
  ShardQueue(const ShardQueue&) = delete;
  ShardQueue& operator=(const ShardQueue&) = delete;

  /// Queue `task` at `key`. `label` follows the sim::EventQueue contract
  /// (static storage or nullptr).
  EventHandle push(const EventKey& key, InlineTask task, const char* label);

  /// Key of the next live event after discarding cancelled heads, or
  /// nullptr when the queue is empty. The pointer is invalidated by any
  /// mutating call.
  const EventKey* peek();

  /// Pop the head event. The popped slot stays live (handles to it still
  /// report pending()) until finishExecuting(). At most one event may be
  /// in the executing state at a time.
  bool popFront(Time& time, InlineTask& task, const char*& label);

  /// Recycle the slot of the event last popped; call after its callback
  /// returns. No-op when nothing is executing.
  void finishExecuting();

  /// Queued heap entries, including not-yet-discarded cancellations
  /// (matches sim::EventQueue::sizeIncludingCancelled for depth probes).
  std::size_t sizeIncludingCancelled() const { return heap_.size(); }

  /// Largest heap size ever observed — exact per-shard depth high-water
  /// mark, tracked at push like sim::EventQueue::peakDepth().
  std::size_t peakDepth() const { return peakDepth_; }

  /// Pooled slot records ever allocated (slab high-water; never shrinks).
  std::size_t slabSlots() const { return slots_.size(); }

 protected:
  void cancelSlot(std::uint32_t slot, std::uint32_t generation) override;
  bool slotPending(std::uint32_t slot,
                   std::uint32_t generation) const override;

 private:
  static constexpr std::uint32_t kNoSlot = 0xffffffffu;

  struct Slot {
    Time time = kTimeZero;
    std::uint32_t generation = 0;
    bool live = false;
    bool cancelled = false;
    const char* label = nullptr;
    InlineTask task;
    std::uint32_t nextFree = kNoSlot;
  };
  /// Same shape (and budget) as the serial EventQueue::Slot: one per
  /// in-flight event, InlineTask-dominated, 16-byte aligned.
  ECGRID_LAYOUT_BUDGET(Slot, 176);

  struct HeapEntry {
    EventKey key;
    std::uint32_t slot = 0;
  };
  ECGRID_LAYOUT_BUDGET(HeapEntry, 32);

  /// Purge threshold, matching the serial EventQueue: rebuild the heap
  /// without cancelled records once they are at least this many AND half
  /// the heap, so cancel-heavy workloads stay bounded.
  static constexpr std::size_t kPurgeFloor = 64;

  std::uint32_t allocSlot();
  void freeSlot(std::uint32_t index);
  void removeHeapTop();
  void siftUp(std::size_t i);
  void siftDown(std::size_t i);
  void skipCancelled();
  void purgeCancelled();

  std::vector<Slot> slots_;
  std::vector<HeapEntry> heap_;
  std::uint32_t freeHead_ = kNoSlot;
  std::uint32_t executing_ = kNoSlot;
  std::size_t cancelledInHeap_ = 0;  ///< cancelled records awaiting reclaim
  std::size_t peakDepth_ = 0;        ///< max heap_.size() ever observed
};

}  // namespace ecgrid::sim::sharded
