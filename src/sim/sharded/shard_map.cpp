#include "sim/sharded/shard_map.hpp"

#include <utility>

#include "util/error.hpp"

namespace ecgrid::sim::sharded {

ShardMap::ShardMap(double fieldWidth, int shardCount)
    : fieldWidth_(fieldWidth),
      stripeWidth_(fieldWidth / shardCount),
      shards_(shardCount) {
  ECGRID_REQUIRE(fieldWidth > 0.0, "field width must be positive");
  ECGRID_REQUIRE(shardCount >= 1, "need at least one shard");
}

int ShardMap::shardOfX(double x) const {
  if (x <= 0.0) return 0;
  int stripe = static_cast<int>(x / stripeWidth_);
  return stripe >= shards_ ? shards_ - 1 : stripe;
}

void ShardMap::registerHost(std::uint64_t key,
                            std::function<double()> xProvider) {
  ECGRID_REQUIRE(xProvider != nullptr, "host needs a position provider");
  HostEntry& entry = hosts_[key];
  entry.x = std::move(xProvider);
  entry.lastShard = shardOfX(entry.x());
}

bool ShardMap::knowsHost(std::uint64_t key) const {
  return hosts_.find(key) != hosts_.end();
}

int ShardMap::shardOfHost(std::uint64_t key) {
  auto it = hosts_.find(key);
  if (it == hosts_.end()) return kHubShard;
  int shard = shardOfX(it->second.x());
  if (shard != it->second.lastShard) {
    ++migrations_;
    it->second.lastShard = shard;
  }
  return shard;
}

}  // namespace ecgrid::sim::sharded
