// Deterministic random-number streams.
//
// Every source of randomness in a run draws from a named RngStream split
// off a single master seed, so (a) runs are exactly reproducible given a
// ScenarioConfig, and (b) changing how one component consumes randomness
// (say, the MAC backoff) does not perturb another component's draws (say,
// waypoint selection) — essential for apples-to-apples protocol
// comparisons on the same mobility trace.
#pragma once

#include <cstdint>
#include <random>
#include <string>
#include "util/ownership.hpp"

namespace ecgrid::sim {

/// One independent random stream. Thin, value-type wrapper over
/// std::mt19937_64 with the distributions the simulator needs.
class RngStream {
 public:
  explicit RngStream(std::uint64_t seed) : engine_(seed) {}

  // Every draw advances the stream, so a discarded result silently
  // shifts all later draws — [[nodiscard]] turns that into a warning.

  /// Uniform real in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] (inclusive).
  [[nodiscard]] std::int64_t uniformInt(std::int64_t lo, std::int64_t hi);

  /// Exponentially distributed with the given mean (> 0).
  [[nodiscard]] double exponential(double mean);

  /// Normally distributed with the given mean and stddev (>= 0).
  [[nodiscard]] double gaussian(double mean, double stddev);

  /// Bernoulli trial.
  [[nodiscard]] bool chance(double probability);

  [[nodiscard]] std::uint64_t raw() { return engine_(); }

 private:
  std::mt19937_64 engine_;
};

/// Factory that derives independent streams from (masterSeed, name).
/// The same (seed, name) pair always yields the same stream.
class ECGRID_DOMAIN_PER_SCENARIO RngFactory {
 public:
  explicit RngFactory(std::uint64_t masterSeed) : masterSeed_(masterSeed) {}

  [[nodiscard]] RngStream stream(const std::string& name) const;

  /// Convenience for per-node streams: stream("mac/17") etc.
  [[nodiscard]] RngStream stream(const std::string& component, int index) const;

  [[nodiscard]] std::uint64_t masterSeed() const { return masterSeed_; }

 private:
  std::uint64_t masterSeed_;
};

}  // namespace ecgrid::sim
