#include "traffic/cbr.hpp"

#include "util/error.hpp"

namespace ecgrid::traffic {

CbrSource::CbrSource(sim::Simulator& sim, net::Node& sourceNode,
                     const CbrFlowConfig& config, SentCallback onSent)
    : sim_(sim), node_(sourceNode), config_(config), onSent_(std::move(onSent)) {
  ECGRID_REQUIRE(config.packetsPerSecond > 0.0, "CBR rate must be positive");
  ECGRID_REQUIRE(config.payloadBytes > 0, "payload must be positive");
  ECGRID_REQUIRE(config.source != config.destination,
                 "flow endpoints must differ");
  sim::Time firstAt =
      config_.startTime > sim_.now() ? config_.startTime : sim_.now();
  timer_ = sim_.scheduleAt(firstAt, [this] { tick(); }, "traffic/cbr");
}

void CbrSource::tick() {
  if (sim_.now() >= config_.stopTime) return;
  bool alive = node_.alive();
  std::uint64_t seq = nextSequence_++;
  if (onSent_) onSent_(config_, seq, alive);
  if (alive) {
    net::DataTag tag;
    tag.flowId = config_.flowId;
    tag.sequence = seq;
    tag.sentAt = sim_.now();
    node_.sendFromApp(config_.destination, config_.payloadBytes, tag);
  }
  timer_ = sim_.schedule(1.0 / config_.packetsPerSecond,
                         [this] { tick(); }, "traffic/cbr");
}

}  // namespace ecgrid::traffic
