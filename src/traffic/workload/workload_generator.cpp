#include "traffic/workload/workload_generator.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace ecgrid::traffic {

namespace {

bool validMetricName(const std::string& name) {
  if (name.empty()) return false;
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '-';
    if (!ok) return false;
  }
  return true;
}

}  // namespace

void WorkloadPlan::validate() const {
  ECGRID_REQUIRE(sinkCount >= 1, "workload needs at least one backhaul sink");
  ECGRID_REQUIRE(clientPopulation >= 0,
                 "client population cannot be negative");
  ECGRID_REQUIRE(stopTime > startTime,
                 "workload arrival window is empty: stopTime must be after "
                 "startTime");
  for (std::size_t i = 0; i < classes.size(); ++i) {
    const WorkloadClass& c = classes[i];
    ECGRID_REQUIRE(validMetricName(c.name),
                   "workload class name must be non-empty [A-Za-z0-9_-]+ "
                   "(it becomes a metric name component)");
    for (std::size_t j = 0; j < i; ++j) {
      ECGRID_REQUIRE(classes[j].name != c.name,
                     "workload class names must be unique");
    }
    ECGRID_REQUIRE(c.sessionsPerSecond > 0.0,
                   "session arrival rate must be positive");
    ECGRID_REQUIRE(c.minFlowBytes > 0.0, "flow size scale must be positive");
    ECGRID_REQUIRE(c.flowSizeShape > 0.0,
                   "flow size tail index must be positive");
    ECGRID_REQUIRE(c.maxFlowBytes >= c.minFlowBytes,
                   "flow size cap must be >= the scale");
    ECGRID_REQUIRE(c.packetBytes > 0, "workload packet size must be positive");
    ECGRID_REQUIRE(c.packetsPerSecond > 0.0,
                   "in-session pacing rate must be positive");
    ECGRID_REQUIRE(c.sloSeconds > 0.0, "SLO must be positive");
    ECGRID_REQUIRE(c.abortAfterSeconds > 0.0, "abort deadline must be positive");
    if (c.arrivals == ArrivalKind::kParetoOnOff) {
      ECGRID_REQUIRE(c.onMeanSeconds > 0.0 && c.offMeanSeconds > 0.0,
                     "ON/OFF sojourn means must be positive");
      ECGRID_REQUIRE(c.onOffShape > 1.0,
                     "ON/OFF Pareto shape must exceed 1 (finite mean)");
    }
    if (c.requestResponse) {
      ECGRID_REQUIRE(c.responseBytes > 0.0,
                     "response size must be positive when requestResponse");
    }
  }
}

double WorkloadGenerator::drawInterArrival(sim::RngStream& rng, double rate) {
  return rng.exponential(1.0 / rate);
}

double WorkloadGenerator::drawPareto(sim::RngStream& rng, double xm,
                                     double shape) {
  const double u = rng.uniform(0.0, 1.0);  // in [0, 1): 1-u never hits 0
  return xm * std::pow(1.0 - u, -1.0 / shape);
}

double WorkloadGenerator::drawBoundedPareto(sim::RngStream& rng, double xm,
                                            double shape, double cap) {
  if (cap <= xm) return xm;
  // Inverse CDF of the truncated Pareto: exact in one draw.
  const double u = rng.uniform(0.0, 1.0);
  const double tail = 1.0 - std::pow(xm / cap, shape);
  return xm / std::pow(1.0 - u * tail, 1.0 / shape);
}

double WorkloadGenerator::drawParetoSojourn(sim::RngStream& rng,
                                            double meanSeconds, double shape) {
  const double xm = meanSeconds * (shape - 1.0) / shape;
  return drawPareto(rng, xm, shape);
}

WorkloadGenerator::WorkloadGenerator(net::Network& network,
                                     const WorkloadPlan& plan,
                                     stats::PacketAccounting& accounting)
    : network_(network),
      sim_(network.simulator()),
      plan_(plan),
      accounting_(accounting),
      arrivalRng_(sim_.rng().stream("traffic/arrivals")),
      clientRng_(sim_.rng().stream("traffic/clients")),
      sizeRng_(sim_.rng().stream("traffic/sizes")) {
  plan_.validate();
  ECGRID_REQUIRE(!plan_.empty(), "workload plan has no classes");

  std::vector<net::NodeId> pool = plan_.eligibleHosts;
  if (pool.empty()) {
    pool.reserve(network.nodeCount());
    for (std::size_t i = 0; i < network.nodeCount(); ++i) {
      pool.push_back(network.node(i).id());
    }
  }
  const std::size_t sinkCount = static_cast<std::size_t>(plan_.sinkCount);
  ECGRID_REQUIRE(pool.size() > sinkCount,
                 "need more hosts than backhaul sinks");

  // Sinks first, then clients, both by deterministic partial
  // Fisher–Yates on the "traffic/clients" stream.
  auto drawDistinct = [this, &pool](std::size_t count) {
    std::vector<net::NodeId> out;
    for (std::size_t i = 0; i < count && !pool.empty(); ++i) {
      const std::size_t pick = static_cast<std::size_t>(clientRng_.uniformInt(
          0, static_cast<std::int64_t>(pool.size()) - 1));
      out.push_back(pool[pick]);
      pool[pick] = pool.back();
      pool.pop_back();
    }
    return out;
  };
  sinks_ = drawDistinct(sinkCount);
  const std::size_t clientCount =
      plan_.clientPopulation > 0
          ? std::min(pool.size(),
                     static_cast<std::size_t>(plan_.clientPopulation))
          : pool.size();
  clients_ = drawDistinct(clientCount);
  ECGRID_CHECK(!clients_.empty(), "no client hosts left for the workload");

  requestPacketsMetric_ = obs::counter(sim_, "workload.request_packets_sent");
  responsePacketsMetric_ =
      obs::counter(sim_, "workload.response_packets_sent");

  classes_.reserve(plan_.classes.size());
  for (const WorkloadClass& cls : plan_.classes) {
    ClassState state;
    state.config = cls;
    state.cursor = plan_.startTime;
    state.onUntil = plan_.startTime;  // kParetoOnOff opens its first burst
    const std::string prefix = "workload." + cls.name + ".";
    state.attemptedMetric =
        obs::counter(sim_, prefix + "sessions_attempted");
    state.completedMetric = obs::counter(sim_, prefix + "flows_completed");
    state.abortedMetric = obs::counter(sim_, prefix + "flows_aborted");
    state.sloMetMetric = obs::counter(sim_, prefix + "slo_met");
    state.latencyMetric = obs::histogram(
        sim_, prefix + "latency_s",
        obs::Histogram::exponentialEdges(0.01, 2.0, 16));
    classes_.push_back(std::move(state));
  }

  accounting_.setDeliveryListener(
      [this](const net::DataTag& tag, sim::Time now) {
        onDelivered(tag, now);
      });

  for (std::size_t i = 0; i < classes_.size(); ++i) {
    if (classes_[i].config.arrivals == ArrivalKind::kParetoOnOff) {
      classes_[i].onUntil =
          plan_.startTime + drawParetoSojourn(arrivalRng_,
                                              classes_[i].config.onMeanSeconds,
                                              classes_[i].config.onOffShape);
    }
    scheduleNextArrival(i);
  }
}

WorkloadGenerator::~WorkloadGenerator() { stopAll(); }

void WorkloadGenerator::stopAll() {
  for (ClassState& cls : classes_) cls.arrivalTimer.cancel();
  for (auto& [id, flow] : flows_) {
    flow.paceTimer.cancel();
    flow.abortTimer.cancel();
  }
  accounting_.setDeliveryListener(nullptr);
}

void WorkloadGenerator::scheduleNextArrival(std::size_t classIndex) {
  ClassState& cls = classes_[classIndex];
  const WorkloadClass& config = cls.config;
  cls.cursor += drawInterArrival(arrivalRng_, config.sessionsPerSecond);
  if (config.arrivals == ArrivalKind::kParetoOnOff) {
    // An arrival drawn past the burst's end belongs to a later burst:
    // jump the cursor over the OFF sojourn and redraw from the next ON
    // start (exact for Poisson-in-burst by memorylessness).
    while (cls.cursor > cls.onUntil) {
      const sim::Time onStart =
          cls.onUntil + drawParetoSojourn(arrivalRng_, config.offMeanSeconds,
                                          config.onOffShape);
      cls.onUntil = onStart + drawParetoSojourn(
                                  arrivalRng_, config.onMeanSeconds,
                                  config.onOffShape);
      cls.cursor =
          onStart + drawInterArrival(arrivalRng_, config.sessionsPerSecond);
    }
  }
  if (cls.cursor >= plan_.stopTime) return;  // window closed: no re-arm
  cls.arrivalTimer = sim_.scheduleAt(
      cls.cursor, [this, classIndex] { onArrival(classIndex); },
      "traffic/workload/arrival");
}

void WorkloadGenerator::onArrival(std::size_t classIndex) {
  ClassState& cls = classes_[classIndex];
  ++cls.stats.sessionsAttempted;
  cls.attemptedMetric.add();

  FlowState flow;
  flow.id = nextFlowId_++;
  flow.classIndex = classIndex;
  flow.client = clients_[static_cast<std::size_t>(clientRng_.uniformInt(
      0, static_cast<std::int64_t>(clients_.size()) - 1))];
  flow.sink = sinks_[static_cast<std::size_t>(clientRng_.uniformInt(
      0, static_cast<std::int64_t>(sinks_.size()) - 1))];
  flow.startedAt = sim_.now();

  const WorkloadClass& config = cls.config;
  const double sizeBytes =
      drawBoundedPareto(sizeRng_, config.minFlowBytes, config.flowSizeShape,
                        config.maxFlowBytes);
  flow.requestPackets = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             std::ceil(sizeBytes / config.packetBytes)));
  flow.responsePackets =
      config.requestResponse
          ? std::max<std::uint64_t>(
                1, static_cast<std::uint64_t>(
                       std::ceil(config.responseBytes / config.packetBytes)))
          : 0;

  const std::uint64_t id = flow.id;
  flow.abortTimer = sim_.schedule(
      config.abortAfterSeconds,
      [this, id] {
        auto it = flows_.find(id);
        if (it != flows_.end()) abortFlow(it->second);
      },
      "traffic/workload/abort");
  flows_.emplace(id, std::move(flow));

  sendNextPacket(id);
  scheduleNextArrival(classIndex);
}

void WorkloadGenerator::sendNextPacket(std::uint64_t flowId) {
  auto it = flows_.find(flowId);
  if (it == flows_.end()) return;  // completed or aborted meanwhile
  FlowState& flow = it->second;
  const WorkloadClass& config = classes_[flow.classIndex].config;

  const net::NodeId senderId = flow.responsePhase ? flow.sink : flow.client;
  const net::NodeId destination = flow.responsePhase ? flow.client : flow.sink;
  net::Node* sender = network_.findNode(senderId);
  const bool alive = sender != nullptr && sender->alive();
  if (!alive) {
    // The sending end is dead or crashed: the user (or backhaul) is gone,
    // so the session is abandoned, not retried forever.
    abortFlow(flow);
    return;
  }

  const std::uint64_t seq = flow.nextSeq++;
  accounting_.onSent(flow.id, seq, alive, sim_.now());
  net::DataTag tag;
  tag.flowId = flow.id;
  tag.sequence = seq;
  tag.sentAt = sim_.now();
  sender->sendFromApp(destination, config.packetBytes, tag);
  if (flow.responsePhase) {
    responsePacketsMetric_.add();
  } else {
    requestPacketsMetric_.add();
  }

  const std::uint64_t phaseEnd =
      flow.responsePhase ? flow.requestPackets + flow.responsePackets
                         : flow.requestPackets;
  if (flow.nextSeq < phaseEnd) {
    const std::uint64_t id = flow.id;
    flow.paceTimer = sim_.schedule(
        1.0 / config.packetsPerSecond, [this, id] { sendNextPacket(id); },
        "traffic/workload/pace");
  }
}

void WorkloadGenerator::onDelivered(const net::DataTag& tag, sim::Time now) {
  if (tag.flowId < kWorkloadFlowBase) return;  // CBR flow, not ours
  auto it = flows_.find(tag.flowId);
  if (it == flows_.end()) return;  // delivery after abort: stale packet
  FlowState& flow = it->second;

  if (tag.sequence < flow.requestPackets) {
    ++flow.requestDelivered;
    if (flow.requestDelivered == flow.requestPackets && !flow.responsePhase) {
      if (flow.responsePackets > 0) {
        // The sink answers: same flow id, sequences above the request
        // range, paced from the sink's side.
        flow.responsePhase = true;
        flow.nextSeq = flow.requestPackets;
        const std::uint64_t id = flow.id;
        flow.paceTimer = sim_.schedule(
            0.0, [this, id] { sendNextPacket(id); },
            "traffic/workload/pace");
      } else {
        completeFlow(flow, now);
      }
    }
  } else {
    ++flow.responseDelivered;
    if (flow.responseDelivered == flow.responsePackets) {
      completeFlow(flow, now);
    }
  }
}

void WorkloadGenerator::completeFlow(FlowState& flow, sim::Time now) {
  ClassState& cls = classes_[flow.classIndex];
  ++cls.stats.flowsCompleted;
  cls.completedMetric.add();
  const double latency = now - flow.startedAt;
  cls.latencyMetric.observe(latency);
  if (latency <= cls.config.sloSeconds) {
    ++cls.stats.sloMet;
    cls.sloMetMetric.add();
  }
  flow.paceTimer.cancel();
  flow.abortTimer.cancel();
  flows_.erase(flow.id);
}

void WorkloadGenerator::abortFlow(FlowState& flow) {
  ClassState& cls = classes_[flow.classIndex];
  ++cls.stats.flowsAborted;
  cls.abortedMetric.add();
  accounting_.onFlowAborted(flow.id);
  flow.paceTimer.cancel();
  flow.abortTimer.cancel();
  flows_.erase(flow.id);
}

}  // namespace ecgrid::traffic
