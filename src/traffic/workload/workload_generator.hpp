// Open-loop production-traffic generator (see workload_plan.hpp).
//
// One WorkloadGenerator drives every class of a WorkloadPlan against a
// built Network: it draws session arrivals on the dedicated
// "traffic/arrivals" stream, picks the client and sink for each session
// from "traffic/clients", sizes the request from "traffic/sizes", then
// paces request packets through Node::sendFromApp exactly like the CBR
// sources do — same PacketAccounting, same MAC/routing path, same
// delivery-rate denominator. Delivery observation rides the accounting's
// delivery listener (PacketAccounting::setDeliveryListener), so the
// single app-receive hook FlowManager installs stays untouched.
//
// Open-loop means arrivals never wait for completions: a saturated
// network keeps receiving sessions at the configured rate, queues grow,
// SLOs blow, and the abort timer records the carnage — which is exactly
// the signal an offered-load sweep is after.
//
// Determinism: all randomness flows through the three traffic/* streams
// above; constructing the generator draws nothing from any pre-existing
// stream, so a scenario with an empty plan is byte-identical to one
// without the workload layer at all, and a run with the same (plan,
// seed) replays byte-identically (tests/workload_test.cpp).
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "net/network.hpp"
#include "obs/observability.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"
#include "stats/packet_accounting.hpp"
#include "traffic/workload/workload_plan.hpp"
#include "util/ownership.hpp"

namespace ecgrid::traffic {

/// Workload flow ids live above every CBR flow id so the two populations
/// cannot collide in the shared PacketAccounting.
inline constexpr std::uint64_t kWorkloadFlowBase = std::uint64_t{1} << 32;

/// Per-class outcome counters (mirrored into "workload.<class>.*"
/// metrics; exposed directly for tests and the campaign runner).
struct WorkloadClassStats {
  std::uint64_t sessionsAttempted = 0;
  std::uint64_t flowsCompleted = 0;
  std::uint64_t flowsAborted = 0;
  std::uint64_t sloMet = 0;  ///< completions within the class SLO
};

class ECGRID_DOMAIN_PER_SCENARIO WorkloadGenerator {
 public:
  /// Draws sinks then clients, registers the per-class metrics, installs
  /// the delivery listener, and schedules each class's first arrival.
  /// `accounting` and `network` must outlive the generator.
  WorkloadGenerator(net::Network& network, const WorkloadPlan& plan,
                    stats::PacketAccounting& accounting);
  ~WorkloadGenerator();
  WorkloadGenerator(const WorkloadGenerator&) = delete;
  WorkloadGenerator& operator=(const WorkloadGenerator&) = delete;

  [[nodiscard]] const std::vector<net::NodeId>& clients() const {
    return clients_;
  }
  [[nodiscard]] const std::vector<net::NodeId>& sinks() const {
    return sinks_;
  }
  [[nodiscard]] const WorkloadClassStats& classStats(std::size_t i) const {
    return classes_[i].stats;
  }
  [[nodiscard]] std::size_t activeFlows() const { return flows_.size(); }

  /// Cancel every pending arrival, pacing, and abort timer. Active
  /// sessions stay in the accounting as in-flight (not aborted).
  void stopAll();

  // --- distribution primitives (exposed for the statistical tests) -------
  /// Exponential inter-arrival gap for a Poisson process of `rate` (1/s).
  [[nodiscard]] static double drawInterArrival(sim::RngStream& rng,
                                               double rate);
  /// Unbounded Pareto(scale xm, tail index shape) via inverse CDF.
  [[nodiscard]] static double drawPareto(sim::RngStream& rng, double xm,
                                         double shape);
  /// Pareto truncated at `cap` (inverse CDF of the truncated law, not
  /// rejection — one draw, exact distribution).
  [[nodiscard]] static double drawBoundedPareto(sim::RngStream& rng,
                                                double xm, double shape,
                                                double cap);
  /// Pareto sojourn with the given *mean* and tail index (> 1).
  [[nodiscard]] static double drawParetoSojourn(sim::RngStream& rng,
                                                double meanSeconds,
                                                double shape);

 private:
  struct ClassState {
    WorkloadClass config;
    WorkloadClassStats stats;
    /// Virtual cursor of the arrival process (>= now; ON/OFF bursts can
    /// push it ahead of the clock before the next arrival is drawn).
    sim::Time cursor = 0.0;
    sim::Time onUntil = 0.0;  ///< current ON period end (kParetoOnOff)
    sim::EventHandle arrivalTimer;
    obs::Counter attemptedMetric;
    obs::Counter completedMetric;
    obs::Counter abortedMetric;
    obs::Counter sloMetMetric;
    obs::Histogram latencyMetric;
  };

  struct FlowState {
    std::uint64_t id = 0;
    std::size_t classIndex = 0;
    net::NodeId client = 0;
    net::NodeId sink = 0;
    sim::Time startedAt = 0.0;
    std::uint64_t requestPackets = 0;
    std::uint64_t responsePackets = 0;
    std::uint64_t requestDelivered = 0;
    std::uint64_t responseDelivered = 0;
    std::uint64_t nextSeq = 0;
    bool responsePhase = false;
    sim::EventHandle paceTimer;
    sim::EventHandle abortTimer;
  };

  void scheduleNextArrival(std::size_t classIndex);
  void onArrival(std::size_t classIndex);
  void sendNextPacket(std::uint64_t flowId);
  void onDelivered(const net::DataTag& tag, sim::Time now);
  void completeFlow(FlowState& flow, sim::Time now);
  void abortFlow(FlowState& flow);

  net::Network& network_;
  sim::Simulator& sim_;
  WorkloadPlan plan_;
  stats::PacketAccounting& accounting_;

  sim::RngStream arrivalRng_;
  sim::RngStream clientRng_;
  sim::RngStream sizeRng_;

  std::vector<net::NodeId> clients_;
  std::vector<net::NodeId> sinks_;
  std::vector<ClassState> classes_;
  std::map<std::uint64_t, FlowState> flows_;
  std::uint64_t nextFlowId_ = kWorkloadFlowBase;

  obs::Counter requestPacketsMetric_;
  obs::Counter responsePacketsMetric_;
};

}  // namespace ecgrid::traffic
