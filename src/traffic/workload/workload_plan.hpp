// Production-traffic workload description (pure value, no behaviour).
//
// The paper's evaluation drives the grid protocols with a handful of
// fixed-rate CBR pairs; a WorkloadPlan instead describes the *offered
// load* of a large client population the way a production experiment
// would: open-loop session arrivals (Poisson, or bursty Pareto on–off),
// heavy-tailed flow sizes, and request/response exchanges that cross the
// field from a client host to a backhaul sink and back — funnelling
// through whatever grid gateways the routing protocol has elected along
// the way. Each workload class carries its own latency SLO so attainment
// can be reported per class (interactive vs bulk), through the
// MetricsRegistry ("workload.<class>.*").
//
// An empty plan (`classes` empty) is completely inert: the harness never
// constructs a WorkloadGenerator for it, no traffic/* stream is drawn,
// and the run is byte-identical to one predating this layer
// (tests/workload_test.cpp gates that).
#pragma once

#include <cstdint>

#include <string>
#include <vector>

#include "net/packet.hpp"
#include "sim/time.hpp"

namespace ecgrid::traffic {

enum class ArrivalKind : std::uint8_t {
  kPoisson,     ///< memoryless open-loop arrivals at sessionsPerSecond
  kParetoOnOff  ///< Pareto-sojourn ON/OFF bursts; Poisson arrivals at
                ///< sessionsPerSecond *within* ON periods only
};

struct WorkloadClass {
  /// Metric-name component ("workload.<name>.flows_completed", ...);
  /// restricted to [A-Za-z0-9_-]+ and unique within the plan.
  std::string name = "interactive";

  ArrivalKind arrivals = ArrivalKind::kPoisson;
  /// Session arrival rate (1/s). For kParetoOnOff this is the in-burst
  /// rate; the long-run offered rate is scaled by the ON duty cycle
  /// onMeanSeconds / (onMeanSeconds + offMeanSeconds).
  double sessionsPerSecond = 1.0;

  // --- kParetoOnOff burst structure (ignored for kPoisson) ---------------
  double onMeanSeconds = 2.0;   ///< mean ON sojourn
  double offMeanSeconds = 8.0;  ///< mean OFF sojourn
  /// Pareto tail index of both sojourn distributions; must exceed 1 so
  /// the configured means exist. 1 < shape <= 2 gives the classic
  /// long-range-dependent aggregate.
  double onOffShape = 1.5;

  // --- request flow ------------------------------------------------------
  /// Request size drawn from a bounded Pareto: scale minFlowBytes, tail
  /// index flowSizeShape, truncated at maxFlowBytes (elephants exist but
  /// stay finite).
  double minFlowBytes = 1024.0;
  double flowSizeShape = 1.3;
  double maxFlowBytes = 262144.0;
  int packetBytes = 512;           ///< request/response packetisation
  double packetsPerSecond = 20.0;  ///< in-session pacing rate

  // --- response ----------------------------------------------------------
  /// When true the sink answers the fully-delivered request with a
  /// responseBytes flow back to the client; the session completes when
  /// the *response* has fully arrived (else when the request has).
  bool requestResponse = true;
  double responseBytes = 512.0;

  // --- service objectives ------------------------------------------------
  /// Completion-latency SLO (s), measured arrival → session complete.
  double sloSeconds = 2.0;
  /// Give up on a session this long after arrival: pacing stops and the
  /// flow is marked aborted in the PacketAccounting (distinguishable from
  /// merely in-flight at horizon end).
  double abortAfterSeconds = 60.0;
};

struct WorkloadPlan {
  std::vector<WorkloadClass> classes;

  /// Client hosts generating sessions. 0 = every network host is a
  /// client; otherwise that many distinct hosts are drawn from the
  /// population (the "traffic/clients" stream) — the knob that separates
  /// "everyone chats" from "a few hot cells funnel everything".
  int clientPopulation = 0;
  /// Backhaul sinks (request destinations / response sources), drawn
  /// disjoint from the clients.
  int sinkCount = 1;
  /// If non-empty, clients and sinks are drawn from this id set instead
  /// of every node (GAF Model 1 runs restrict to the endpoint hosts).
  std::vector<net::NodeId> eligibleHosts;

  /// Arrival window. The harness caps stopTime at the scenario horizon.
  sim::Time startTime = 1.0;
  sim::Time stopTime = sim::kTimeNever;

  [[nodiscard]] bool empty() const { return classes.empty(); }

  /// Throws std::invalid_argument (util/error.hpp) on non-positive rates
  /// or sizes, sojourn shapes <= 1, duplicate or malformed class names,
  /// an empty arrival window, or a non-positive sink count.
  void validate() const;
};

}  // namespace ecgrid::traffic
