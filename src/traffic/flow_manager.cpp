#include "traffic/flow_manager.hpp"

#include "util/error.hpp"

namespace ecgrid::traffic {

void FlowPlan::validate() const {
  ECGRID_REQUIRE(flowCount >= 0, "flow count cannot be negative");
  ECGRID_REQUIRE(stopTime > startTime,
                 "flow window is empty: stopTime must be after startTime "
                 "(the plan would silently generate nothing)");
  ECGRID_REQUIRE(packetsPerSecond > 0.0, "flow rate must be positive");
  ECGRID_REQUIRE(payloadBytes > 0, "flow payload must be positive");
}

FlowManager::FlowManager(net::Network& network, const FlowPlan& plan,
                         stats::PacketAccounting& accounting,
                         sim::RngStream rng) {
  plan.validate();

  std::vector<net::NodeId> pool = plan.eligibleEndpoints;
  if (pool.empty()) {
    pool.reserve(network.nodeCount());
    for (std::size_t i = 0; i < network.nodeCount(); ++i) {
      pool.push_back(network.node(i).id());
    }
  }
  ECGRID_REQUIRE(pool.size() >= 2 || plan.flowCount == 0,
                 "need at least two endpoints for traffic");

  // Every node reports received app data to the accounting (data can only
  // arrive at its addressed node, so one shared hook suffices).
  for (std::size_t i = 0; i < network.nodeCount(); ++i) {
    net::Node& node = network.node(i);
    net::Node* nodePtr = &node;
    node.setAppReceiveCallback(
        [&accounting, nodePtr](net::NodeId /*src*/, const net::DataTag& tag,
                               int /*bytes*/) {
          accounting.onReceived(tag, nodePtr->simulator().now());
        });
  }

  for (int f = 0; f < plan.flowCount; ++f) {
    CbrFlowConfig config;
    config.flowId = static_cast<std::uint64_t>(f);
    config.packetsPerSecond = plan.packetsPerSecond;
    config.payloadBytes = plan.payloadBytes;
    // Random phase offset, as ns-2's CBR generators use: without it every
    // flow fires in the same instant and packets collide at shared relays
    // on every single tick.
    config.startTime =
        plan.startTime + rng.uniform(0.0, 1.0 / plan.packetsPerSecond);
    config.stopTime = plan.stopTime;
    config.source = pool[static_cast<std::size_t>(
        rng.uniformInt(0, static_cast<std::int64_t>(pool.size()) - 1))];
    do {
      config.destination = pool[static_cast<std::size_t>(
          rng.uniformInt(0, static_cast<std::int64_t>(pool.size()) - 1))];
    } while (config.destination == config.source);

    net::Node* sourceNode = network.findNode(config.source);
    ECGRID_CHECK(sourceNode != nullptr, "flow source not in network");
    flowConfigs_.push_back(config);
    sim::Simulator* sim = &network.simulator();
    sources_.push_back(std::make_unique<CbrSource>(
        network.simulator(), *sourceNode, config,
        [&accounting, sim](const CbrFlowConfig& flow, std::uint64_t seq,
                           bool alive) {
          accounting.onSent(flow.flowId, seq, alive, sim->now());
        }));
  }
}

void FlowManager::stopAll() {
  for (auto& source : sources_) source->stop();
}

}  // namespace ecgrid::traffic
