// Sets up the scenario's CBR flows and funnels end-to-end delivery events
// into the packet accounting.
#pragma once

#include <memory>
#include <vector>

#include "net/network.hpp"
#include "sim/rng.hpp"
#include "stats/packet_accounting.hpp"
#include "traffic/cbr.hpp"
#include "util/ownership.hpp"

namespace ecgrid::traffic {

struct FlowPlan {
  int flowCount = 10;
  double packetsPerSecond = 1.0;
  int payloadBytes = 512;
  sim::Time startTime = 1.0;
  sim::Time stopTime = sim::kTimeNever;
  /// If non-empty, endpoints are drawn from this id set (GAF Model 1
  /// restricts flows to the infinite-energy hosts); otherwise from every
  /// node in the network.
  std::vector<net::NodeId> eligibleEndpoints;

  /// Reject silently-inert plans loudly: a negative flowCount, a window
  /// that closes before (or the instant) it opens, a non-positive rate or
  /// payload would all "generate nothing" without this. Throws
  /// std::invalid_argument (util/error.hpp); FlowManager calls it first.
  void validate() const;
};

class ECGRID_DOMAIN_PER_SCENARIO FlowManager {
 public:
  /// Chooses random (source, destination) pairs, creates the sources, and
  /// installs the app-receive hook on every node. `accounting` must
  /// outlive the manager.
  FlowManager(net::Network& network, const FlowPlan& plan,
              stats::PacketAccounting& accounting, sim::RngStream rng);

  const std::vector<CbrFlowConfig>& flows() const { return flowConfigs_; }

  void stopAll();

 private:
  std::vector<CbrFlowConfig> flowConfigs_;
  std::vector<std::unique_ptr<CbrSource>> sources_;
};

}  // namespace ecgrid::traffic
