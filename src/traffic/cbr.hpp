// Constant-bit-rate application flows (paper §4: "each source host sends a
// CBR flow with one or ten 512-byte packets per second").
#pragma once

#include <cstdint>
#include <functional>

#include "net/host_env.hpp"
#include "net/node.hpp"
#include "sim/simulator.hpp"
#include "util/ownership.hpp"

namespace ecgrid::traffic {

struct CbrFlowConfig {
  std::uint64_t flowId = 0;
  net::NodeId source = 0;
  net::NodeId destination = 0;
  double packetsPerSecond = 1.0;
  int payloadBytes = 512;
  sim::Time startTime = 0.0;
  sim::Time stopTime = sim::kTimeNever;
};

/// Drives one CBR flow: hands packets to the source node's protocol at a
/// fixed rate and reports each attempt through `onSent` (whether the
/// source was still alive is reported too, so delivery-ratio accounting
/// can decide what its denominator is).
class ECGRID_DOMAIN_PER_HOST CbrSource {
 public:
  using SentCallback = std::function<void(
      const CbrFlowConfig&, std::uint64_t sequence, bool sourceAlive)>;

  CbrSource(sim::Simulator& sim, net::Node& sourceNode,
            const CbrFlowConfig& config, SentCallback onSent);

  ~CbrSource() { timer_.cancel(); }
  CbrSource(const CbrSource&) = delete;
  CbrSource& operator=(const CbrSource&) = delete;

  const CbrFlowConfig& config() const { return config_; }
  std::uint64_t packetsIssued() const { return nextSequence_; }

  void stop() { timer_.cancel(); }

 private:
  void tick();

  sim::Simulator& sim_;
  net::Node& node_;
  CbrFlowConfig config_;
  SentCallback onSent_;
  std::uint64_t nextSequence_ = 0;
  sim::EventHandle timer_;
};

}  // namespace ecgrid::traffic
