#include "energy/battery.hpp"

#include "util/error.hpp"

namespace ecgrid::energy {

const char* toString(BatteryLevel level) {
  switch (level) {
    case BatteryLevel::kUpper:
      return "upper";
    case BatteryLevel::kBoundary:
      return "boundary";
    case BatteryLevel::kLower:
      return "lower";
    case BatteryLevel::kDead:
      return "dead";
  }
  return "?";
}

int electionRank(BatteryLevel level) {
  switch (level) {
    case BatteryLevel::kUpper:
      return 3;
    case BatteryLevel::kBoundary:
      return 2;
    case BatteryLevel::kLower:
      return 1;
    case BatteryLevel::kDead:
      return 0;
  }
  return 0;
}

Battery::Battery(double capacityJ) : Battery(capacityJ, /*infinite=*/false) {
  ECGRID_REQUIRE(capacityJ > 0.0, "battery capacity must be positive");
}

Battery::Battery(double capacityJ, bool infinite)
    : capacityJ_(capacityJ), remainingJ_(capacityJ), infinite_(infinite) {}

Battery Battery::infinite() {
  return Battery(std::numeric_limits<double>::infinity(), /*infinite=*/true);
}

void Battery::advanceTo(sim::Time now) {
  ECGRID_CHECK(now + 1e-9 >= lastUpdate_, "battery time went backwards");
  if (now <= lastUpdate_) return;
  double spent = powerW_ * (now - lastUpdate_);
  consumedJ_ += spent;
  if (!infinite_) {
    if (spent >= remainingJ_ && remainingJ_ > 0.0 && powerW_ > 0.0) {
      // Crossed zero somewhere inside the interval; pin the death time.
      deathTime_ = lastUpdate_ + remainingJ_ / powerW_;
    }
    remainingJ_ -= spent;
    if (remainingJ_ < 0.0) remainingJ_ = 0.0;
  }
  lastUpdate_ = now;
}

double Battery::remainingJ(sim::Time now) {
  advanceTo(now);
  return remainingJ_;
}

double Battery::peekRemainingJ(sim::Time now) const {
  if (infinite_ || now <= lastUpdate_) return remainingJ_;
  double left = remainingJ_ - powerW_ * (now - lastUpdate_);
  return left < 0.0 ? 0.0 : left;
}

double Battery::consumedJ(sim::Time now) {
  advanceTo(now);
  return consumedJ_;
}

double Battery::remainingRatio(sim::Time now) {
  if (infinite_) return 1.0;
  return remainingJ(now) / capacityJ_;
}

BatteryLevel Battery::level(sim::Time now) {
  if (infinite_) return BatteryLevel::kUpper;
  double r = remainingRatio(now);
  if (r <= 0.0) return BatteryLevel::kDead;
  if (r >= 0.6) return BatteryLevel::kUpper;
  if (r >= 0.2) return BatteryLevel::kBoundary;
  return BatteryLevel::kLower;
}

bool Battery::isDead(sim::Time now) {
  return level(now) == BatteryLevel::kDead;
}

void Battery::setPowerW(double watts, sim::Time now) {
  ECGRID_REQUIRE(watts >= 0.0, "power draw cannot be negative");
  advanceTo(now);
  powerW_ = watts;
}

void Battery::drain(double joules, sim::Time now) {
  ECGRID_REQUIRE(joules >= 0.0, "cannot drain negative energy");
  advanceTo(now);
  consumedJ_ += joules;
  if (!infinite_) {
    if (joules >= remainingJ_ && remainingJ_ > 0.0) deathTime_ = now;
    remainingJ_ -= joules;
    if (remainingJ_ < 0.0) remainingJ_ = 0.0;
  }
}

void Battery::injectJ(double joules, sim::Time now) {
  ECGRID_REQUIRE(joules >= 0.0, "cannot inject negative energy");
  advanceTo(now);
  if (infinite_) return;
  remainingJ_ += joules;
  if (remainingJ_ > capacityJ_) remainingJ_ = capacityJ_;
}

double Battery::timeToEmpty(sim::Time now) {
  if (infinite_) return std::numeric_limits<double>::infinity();
  advanceTo(now);
  if (powerW_ <= 0.0) return std::numeric_limits<double>::infinity();
  return remainingJ_ / powerW_;
}

}  // namespace ecgrid::energy
