// Radio power model (paper §4).
//
// The paper adopts the Span/Feeney–Nillsson measurements of a Cabletron
// Roamabout 802.11 DS card at 2 Mbps: transmit 1400 mW, receive 1000 mW,
// idle 830 mW, sleep 130 mW. Every host additionally pays 33 mW for its
// GPS receiver (all three protocols). The RAS pager's consumption is
// explicitly ignored by the paper and is therefore zero here.
#pragma once

#include <cstdint>

#include "util/error.hpp"

namespace ecgrid::energy {

/// Power-relevant radio state. `Off` models a dead host (battery empty)
/// and draws nothing.
enum class PowerState : std::uint8_t {
  kTx,
  kRx,
  kIdle,
  kSleep,
  kOff,
};

inline const char* toString(PowerState s) {
  switch (s) {
    case PowerState::kTx:
      return "tx";
    case PowerState::kRx:
      return "rx";
    case PowerState::kIdle:
      return "idle";
    case PowerState::kSleep:
      return "sleep";
    case PowerState::kOff:
      return "off";
  }
  return "?";
}

struct PowerProfile {
  double txW = 1.400;
  double rxW = 1.000;
  double idleW = 0.830;
  double sleepW = 0.130;
  double gpsW = 0.033;

  /// Radio draw for a state, excluding GPS.
  double radioPowerW(PowerState state) const {
    switch (state) {
      case PowerState::kTx:
        return txW;
      case PowerState::kRx:
        return rxW;
      case PowerState::kIdle:
        return idleW;
      case PowerState::kSleep:
        return sleepW;
      case PowerState::kOff:
        return 0.0;
    }
    ECGRID_CHECK(false, "unreachable power state");
  }

  /// Total host draw: radio + GPS. A dead host draws nothing.
  double totalPowerW(PowerState state) const {
    return state == PowerState::kOff ? 0.0 : radioPowerW(state) + gpsW;
  }

  /// The exact numbers used throughout the paper's evaluation.
  static PowerProfile paperDefaults() { return PowerProfile{}; }
};

}  // namespace ecgrid::energy
