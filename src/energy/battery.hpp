// Battery with lazy state-time energy integration (paper §2, §4).
//
// The battery drains at a piecewise-constant power. Draw changes are
// applied by first charging the elapsed interval at the previous power
// (advanceTo), so the integral is exact regardless of how often anyone
// looks. The paper classifies the remaining-capacity ratio R_brc into
// three levels that drive gateway election and load balancing:
// upper (R ≥ 0.6), boundary (0.2 ≤ R < 0.6), lower (R < 0.2).
#pragma once

#include <cstdint>

#include <functional>
#include <limits>

#include "sim/time.hpp"
#include "util/ownership.hpp"

namespace ecgrid::energy {

/// Paper's three-way classification of remaining battery capacity, plus
/// Dead for an exhausted host.
enum class BatteryLevel : std::uint8_t {
  kUpper,     ///< R_brc >= 0.6
  kBoundary,  ///< 0.2 <= R_brc < 0.6
  kLower,     ///< 0 < R_brc < 0.2
  kDead,      ///< empty
};

const char* toString(BatteryLevel level);

/// Returns the priority order used by the gateway election rules:
/// upper > boundary > lower > dead (larger is better).
int electionRank(BatteryLevel level);

class ECGRID_DOMAIN_PER_HOST Battery {
 public:
  /// A finite battery with `capacityJ` joules, initially full.
  explicit Battery(double capacityJ);

  /// An inexhaustible battery (GAF "Model 1" endpoints). Level always
  /// reports kUpper; draw accounting still records consumed energy.
  static Battery infinite();

  [[nodiscard]] bool isInfinite() const { return infinite_; }
  [[nodiscard]] double capacityJ() const { return capacityJ_; }

  /// Remaining energy after integrating up to `now`.
  [[nodiscard]] double remainingJ(sim::Time now);

  /// Pure observer: remaining energy at `now` WITHOUT committing the
  /// integration point. Committed reads chunk the integral at read
  /// times, so the rounded sum depends on when anyone looked; state
  /// digests use this peek so observation can never leave a
  /// floating-point trace in the simulation.
  [[nodiscard]] double peekRemainingJ(sim::Time now) const;

  /// Total energy consumed so far (meaningful for infinite batteries too).
  double consumedJ(sim::Time now);

  /// Remaining-capacity ratio R_brc in [0, 1] (1 for infinite batteries).
  double remainingRatio(sim::Time now);

  BatteryLevel level(sim::Time now);

  bool isDead(sim::Time now);

  /// Change the draw to `watts` effective at `now`. The interval since the
  /// previous change is charged at the old draw first.
  void setPowerW(double watts, sim::Time now);

  /// Withdraw `joules` instantaneously at `now` (fault injection / test
  /// setup: pre-aged batteries, surge consumers). No-op for infinite
  /// batteries beyond the consumption ledger.
  void drain(double joules, sim::Time now);

  /// Fault injection ONLY: add `joules` back at `now`, capped at capacity.
  /// Real batteries in this model never recharge — the invariant-audit
  /// tests use this to fabricate the monotonicity violation the auditor
  /// must catch. No-op for infinite batteries.
  void injectJ(double joules, sim::Time now);

  [[nodiscard]] double currentPowerW() const { return powerW_; }

  /// Time from `now` until the battery empties at the current draw;
  /// +infinity for infinite batteries or zero draw.
  double timeToEmpty(sim::Time now);

  /// Moment the host died (battery hit zero), or kTimeNever.
  [[nodiscard]] sim::Time deathTime() const { return deathTime_; }

 private:
  Battery(double capacityJ, bool infinite);

  /// Integrates consumption up to `now`; records death when crossing zero.
  void advanceTo(sim::Time now);

  double capacityJ_;
  double remainingJ_;
  double consumedJ_ = 0.0;
  double powerW_ = 0.0;
  bool infinite_;
  sim::Time lastUpdate_ = sim::kTimeZero;
  sim::Time deathTime_ = sim::kTimeNever;
};

}  // namespace ecgrid::energy
