// 2-D vectors for host positions and velocities (metres, metres/second).
#pragma once

#include <cmath>
#include <ostream>

namespace ecgrid::geo {

struct Vec2 {
  double x = 0.0;
  double y = 0.0;

  constexpr Vec2 operator+(const Vec2& o) const { return {x + o.x, y + o.y}; }
  constexpr Vec2 operator-(const Vec2& o) const { return {x - o.x, y - o.y}; }
  constexpr Vec2 operator*(double s) const { return {x * s, y * s}; }
  constexpr Vec2 operator/(double s) const { return {x / s, y / s}; }
  constexpr Vec2& operator+=(const Vec2& o) {
    x += o.x;
    y += o.y;
    return *this;
  }

  constexpr bool operator==(const Vec2& o) const = default;

  [[nodiscard]] constexpr double dot(const Vec2& o) const {
    return x * o.x + y * o.y;
  }
  [[nodiscard]] constexpr double lengthSquared() const { return x * x + y * y; }
  [[nodiscard]] double length() const { return std::sqrt(lengthSquared()); }

  [[nodiscard]] double distanceTo(const Vec2& o) const {
    return (*this - o).length();
  }
  [[nodiscard]] constexpr double distanceSquaredTo(const Vec2& o) const {
    return (*this - o).lengthSquared();
  }

  /// Unit vector in this direction; the zero vector maps to zero.
  [[nodiscard]] Vec2 normalized() const {
    double len = length();
    return len > 0.0 ? Vec2{x / len, y / len} : Vec2{};
  }
};

inline constexpr Vec2 operator*(double s, const Vec2& v) { return v * s; }

inline std::ostream& operator<<(std::ostream& os, const Vec2& v) {
  return os << "(" << v.x << ", " << v.y << ")";
}

}  // namespace ecgrid::geo
