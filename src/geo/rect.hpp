// Axis-aligned rectangles of grid cells.
//
// ECGRID confines route discovery to a search rectangle (the `range` field
// of RREQ, paper §3.3): only gateways whose grid lies inside participate,
// which bounds the broadcast storm. The default policy is the smallest
// rectangle covering the source and destination grids, exactly as in the
// paper's worked example (Fig. 2).
#pragma once

#include <algorithm>
#include <ostream>

#include "geo/grid.hpp"

namespace ecgrid::geo {

struct GridRect {
  GridCoord lo;  ///< inclusive lower-left cell
  GridCoord hi;  ///< inclusive upper-right cell

  constexpr bool operator==(const GridRect&) const = default;

  constexpr bool contains(const GridCoord& g) const {
    return g.x >= lo.x && g.x <= hi.x && g.y >= lo.y && g.y <= hi.y;
  }

  constexpr std::int64_t cellCount() const {
    // Widen before subtracting: everywhere() spans ±2^30, so the spans
    // themselves (let alone their product) overflow 32-bit arithmetic.
    return (static_cast<std::int64_t>(hi.x) - lo.x + 1) *
           (static_cast<std::int64_t>(hi.y) - lo.y + 1);
  }

  /// Smallest rectangle covering both cells.
  static constexpr GridRect covering(const GridCoord& a, const GridCoord& b) {
    return GridRect{{std::min(a.x, b.x), std::min(a.y, b.y)},
                    {std::max(a.x, b.x), std::max(a.y, b.y)}};
  }

  /// Rectangle grown by `margin` cells on every side.
  constexpr GridRect expanded(std::int32_t margin) const {
    return GridRect{{lo.x - margin, lo.y - margin},
                    {hi.x + margin, hi.y + margin}};
  }

  /// The whole plane — used for the paper's "global search" fallback when
  /// a confined search fails or the destination location is unknown.
  static constexpr GridRect everywhere() {
    constexpr std::int32_t kBig = 1 << 30;
    return GridRect{{-kBig, -kBig}, {kBig, kBig}};
  }
};

inline std::ostream& operator<<(std::ostream& os, const GridRect& r) {
  return os << "[" << r.lo << " .. " << r.hi << "]";
}

}  // namespace ecgrid::geo
