// Logical grid partition of the simulation plane (paper §2).
//
// The MANET area is split into square cells of side d. The paper picks
// d = √2·r/3 for radio range r: a gateway at the *centre* of a cell can
// then reach a gateway located *anywhere* inside any of the eight
// neighbouring cells (worst case distance = 1.5·√2·d ≤ r). The evaluation
// uses r = 250 m and rounds down to d = 100 m.
#pragma once

#include <cstdint>
#include <functional>
#include <ostream>

#include "geo/vec2.hpp"

namespace ecgrid::geo {

/// Integer grid coordinate (cell index), following the paper's
/// (x, y) convention with (0, 0) at the lower-left corner.
struct GridCoord {
  std::int32_t x = 0;
  std::int32_t y = 0;

  constexpr bool operator==(const GridCoord&) const = default;
  constexpr bool operator!=(const GridCoord&) const = default;

  /// Lexicographic order so GridCoord can key std::map.
  constexpr bool operator<(const GridCoord& o) const {
    return x != o.x ? x < o.x : y < o.y;
  }

  /// Chebyshev distance — two cells are neighbours iff this is <= 1.
  [[nodiscard]] constexpr std::int32_t chebyshevTo(const GridCoord& o) const {
    std::int32_t dx = x > o.x ? x - o.x : o.x - x;
    std::int32_t dy = y > o.y ? y - o.y : o.y - y;
    return dx > dy ? dx : dy;
  }

  [[nodiscard]] constexpr bool isNeighbourOf(const GridCoord& o) const {
    return *this != o && chebyshevTo(o) <= 1;
  }
};

inline std::ostream& operator<<(std::ostream& os, const GridCoord& g) {
  return os << "(" << g.x << ", " << g.y << ")";
}

/// Maximum cell side d such that a centre gateway reaches all points of the
/// eight neighbouring cells with radio range r: d = √2·r/3 (paper §2).
[[nodiscard]] double maxCellSideForRange(double radioRange);

/// Maps between continuous positions and grid cells.
class GridMap {
 public:
  /// cellSide: d in metres, must be > 0.
  explicit GridMap(double cellSide);

  [[nodiscard]] double cellSide() const { return cellSide_; }

  /// Cell containing `position`. Points exactly on a boundary belong to
  /// the cell on the upper/right side (floor semantics).
  [[nodiscard]] GridCoord cellOf(const Vec2& position) const;

  /// Geometric centre of `cell`.
  [[nodiscard]] Vec2 centerOf(const GridCoord& cell) const;

  /// Lower-left corner of `cell`.
  [[nodiscard]] Vec2 originOf(const GridCoord& cell) const;

  /// Distance from `position` to the centre of its own cell.
  [[nodiscard]] double distanceToOwnCenter(const Vec2& position) const;

  /// Time until a point moving from `position` with constant `velocity`
  /// exits the cell it is currently in. Returns +infinity when velocity is
  /// zero (the point never leaves). Used for the sleepers' dwell timers
  /// (paper §3.2).
  [[nodiscard]] double timeToExitCell(const Vec2& position,
                                      const Vec2& velocity) const;

 private:
  double cellSide_;
};

}  // namespace ecgrid::geo

template <>
struct std::hash<ecgrid::geo::GridCoord> {
  std::size_t operator()(const ecgrid::geo::GridCoord& g) const noexcept {
    // 2-D -> 1-D mix; coordinates are small so collisions are not a worry.
    std::uint64_t ux = static_cast<std::uint32_t>(g.x);
    std::uint64_t uy = static_cast<std::uint32_t>(g.y);
    return static_cast<std::size_t>(ux * 0x9e3779b97f4a7c15ull ^ (uy << 32 | uy));
  }
};
