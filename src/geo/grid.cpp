#include "geo/grid.hpp"

#include <cmath>
#include <limits>

#include "util/error.hpp"

namespace ecgrid::geo {

double maxCellSideForRange(double radioRange) {
  ECGRID_REQUIRE(radioRange > 0.0, "radio range must be positive");
  return std::sqrt(2.0) * radioRange / 3.0;
}

GridMap::GridMap(double cellSide) : cellSide_(cellSide) {
  ECGRID_REQUIRE(cellSide > 0.0, "cell side must be positive");
}

GridCoord GridMap::cellOf(const Vec2& position) const {
  return GridCoord{static_cast<std::int32_t>(std::floor(position.x / cellSide_)),
                   static_cast<std::int32_t>(std::floor(position.y / cellSide_))};
}

Vec2 GridMap::centerOf(const GridCoord& cell) const {
  return Vec2{(cell.x + 0.5) * cellSide_, (cell.y + 0.5) * cellSide_};
}

Vec2 GridMap::originOf(const GridCoord& cell) const {
  return Vec2{cell.x * cellSide_, cell.y * cellSide_};
}

double GridMap::distanceToOwnCenter(const Vec2& position) const {
  return position.distanceTo(centerOf(cellOf(position)));
}

namespace {

// Time for coordinate `p` moving at `v` to reach either wall of the slab
// [lo, hi]. Infinite when v == 0 (never exits along this axis).
double timeToExitSlab(double p, double v, double lo, double hi) {
  if (v > 0.0) return (hi - p) / v;
  if (v < 0.0) return (lo - p) / v;
  return std::numeric_limits<double>::infinity();
}

}  // namespace

double GridMap::timeToExitCell(const Vec2& position, const Vec2& velocity) const {
  GridCoord cell = cellOf(position);
  Vec2 lo = originOf(cell);
  double tx = timeToExitSlab(position.x, velocity.x, lo.x, lo.x + cellSide_);
  double ty = timeToExitSlab(position.y, velocity.y, lo.y, lo.y + cellSide_);
  double t = tx < ty ? tx : ty;
  // A point sitting exactly on the exit boundary yields t == 0; report a
  // tiny positive value so callers' timers always make progress.
  return t > 0.0 ? t : 0.0;
}

}  // namespace ecgrid::geo
