#include "harness/scenario.hpp"

#include <algorithm>
#include <chrono>  // ecgrid-lint: allow(banned-random)
#include <memory>
#include <numeric>
#include <optional>

#include "check/alloc_audit.hpp"
#include "check/determinism.hpp"

#include "check/network_audits.hpp"
#include "fault/fault_injector.hpp"
#include "mobility/random_waypoint.hpp"
#include "obs/observability.hpp"
#include "sim/sharded/engine.hpp"
#include "protocols/flooding/flooding_protocol.hpp"
#include "protocols/grid/grid_protocol.hpp"
#include "stats/energy_recorder.hpp"
#include "traffic/flow_manager.hpp"
#include "traffic/workload/workload_generator.hpp"
#include "util/error.hpp"
#include "util/hot_path.hpp"

namespace ecgrid::harness {

const char* toString(ProtocolKind kind) {
  switch (kind) {
    case ProtocolKind::kGrid:
      return "GRID";
    case ProtocolKind::kEcgrid:
      return "ECGRID";
    case ProtocolKind::kGaf:
      return "GAF";
    case ProtocolKind::kFlooding:
      return "FLOOD";
  }
  return "?";
}

std::optional<ProtocolKind> protocolFromString(const std::string& name) {
  if (name == "GRID" || name == "grid") return ProtocolKind::kGrid;
  if (name == "ECGRID" || name == "ecgrid") return ProtocolKind::kEcgrid;
  if (name == "GAF" || name == "gaf") return ProtocolKind::kGaf;
  if (name == "FLOOD" || name == "flood" || name == "flooding") {
    return ProtocolKind::kFlooding;
  }
  return std::nullopt;
}

namespace {

/// GPS location oracle: the paper's location-aware assumption lets a
/// source confine its RREQ search rectangle around the destination's
/// position. The oracle reads the destination's true current cell.
std::function<std::optional<geo::GridCoord>(net::NodeId)> makeOracle(
    net::Network& network, bool enabled) {
  if (!enabled) {
    return [](net::NodeId) { return std::optional<geo::GridCoord>{}; };
  }
  return [&network](net::NodeId id) -> std::optional<geo::GridCoord> {
    net::Node* node = network.findNode(id);
    if (node == nullptr || !node->alive()) return std::nullopt;
    return node->cell();
  };
}

std::unique_ptr<net::RoutingProtocol> makeProtocol(
    const ScenarioConfig& config, net::Node& node, net::Network& network,
    bool gafEndpoint) {
  auto oracle = makeOracle(network, config.useLocationOracle);
  switch (config.protocol) {
    case ProtocolKind::kGrid: {
      protocols::GridProtocolConfig c = config.grid;
      c.locationHint = oracle;
      return std::make_unique<protocols::GridProtocol>(node, c);
    }
    case ProtocolKind::kEcgrid: {
      core::EcgridConfig c = config.ecgrid;
      c.base.locationHint = oracle;
      return std::make_unique<core::EcgridProtocol>(node, c);
    }
    case ProtocolKind::kGaf: {
      protocols::GafConfig c = config.gaf;
      c.locationHint = oracle;
      c.endpointMode = gafEndpoint;
      return std::make_unique<protocols::GafProtocol>(node, c);
    }
    case ProtocolKind::kFlooding: {
      return std::make_unique<protocols::FloodingProtocol>(
          node, protocols::FloodingConfig{});
    }
  }
  // Direct call rather than ECGRID_CHECK(false, ...): the macro's branch
  // hides the [[noreturn]] from -Wreturn-type at -O0 (coverage builds).
  util::throwCheck("unreachable", __FILE__, __LINE__, "unknown protocol kind");
}

}  // namespace

ScenarioResult runScenario(const ScenarioConfig& config) {
  ECGRID_REQUIRE(config.hostCount > 0, "need at least one host");
  ECGRID_REQUIRE(config.duration > 0.0, "duration must be positive");

  // Fresh allocation-audit counters (and phase = setup) for this thread:
  // back-to-back scenarios on one worker must never inherit counts.
  check::allocAuditReset();

  sim::Simulator simulator(config.seed);
  // Before anything is scheduled, so every event of the run gets a
  // perturbed tie-break key (determinism analysis; see scenario.hpp).
  if (config.perturbTieBreak) simulator.perturbTieBreaks();
  ECGRID_REQUIRE(config.shards >= 1, "need at least one shard");
  if (config.shards > 1) {
    // Swap in the sharded engine before any component can schedule.
    // shards == 1 deliberately never touches the engine: the serial
    // queue is the oracle the digest-parity tests compare against.
    sim::sharded::ShardedEngineConfig engineConfig;
    engineConfig.shards = config.shards;
    engineConfig.fieldWidth = config.fieldSize;
    simulator.enableSharding(engineConfig);
  }

  // The hub must exist before any component so constructor-time
  // obs::counter() registrations resolve to live cells.
  obs::Observability observability(simulator);
  if (!config.eventTracePath.empty()) {
    observability.openTrace(config.eventTracePath,
                            {{"protocol", toString(config.protocol)},
                             {"seed", std::to_string(config.seed)}});
  }
  obs::SimProfiler* profiler = nullptr;
  if (config.profileSimulator) {
    profiler = &observability.enableProfiler(config.profileQueueSampleEvents);
  }
  obs::RunTelemetry* telemetry = nullptr;
  if (!config.telemetryPath.empty()) {
    ECGRID_REQUIRE(config.telemetryEveryEvents > 0,
                   "telemetry needs a positive sample period");
    telemetry = &observability.openTelemetry(
        config.telemetryPath, config.telemetryEveryEvents,
        {{"protocol", toString(config.protocol)},
         {"seed", std::to_string(config.seed)},
         {"shards", std::to_string(config.shards)}});
    // obs/ may not include src/check (layer DAG), so the harness injects
    // the alloc-audit counters the samples report.
    telemetry->setAllocSampler([] {
      obs::AllocSample sample;
      const check::AllocPhase phase = check::allocAuditPhase();
      switch (phase) {
        case check::AllocPhase::kSetup:
          sample.phase = "setup";
          break;
        case check::AllocPhase::kWarmup:
          sample.phase = "warmup";
          break;
        case check::AllocPhase::kSteady:
          sample.phase = "steady";
          break;
      }
      const check::AllocAuditCounts counts = check::allocAuditCounts(phase);
      sample.allocations = counts.allocations;
      sample.hotAllocations = counts.hotAllocations;
      return sample;
    });
  }

  net::NetworkConfig netConfig;
  netConfig.gridCellSide = config.gridCellSide;
  netConfig.channel.rangeMeters = config.radioRange;
  netConfig.channel.bitrateBps = config.bitrateBps;
  if (config.interferenceRangeFactor > 1.0) {
    netConfig.channel.interferenceRangeMeters =
        config.interferenceRangeFactor * config.radioRange;
  }
  netConfig.channel.useSpatialIndex = config.channelSpatialIndex;
  netConfig.paging.rangeMeters = config.radioRange;
  net::Network network(simulator, netConfig);

  mobility::RandomWaypointConfig rwp;
  rwp.fieldWidth = config.fieldSize;
  rwp.fieldHeight = config.fieldSize;
  rwp.maxSpeed = config.maxSpeed;
  rwp.pauseTime = config.pauseTime;

  const bool gafRun = config.protocol == ProtocolKind::kGaf;
  const int endpointCount =
      gafRun && config.gafModelOne ? config.gafEndpointCount : 0;
  const int totalHosts = config.hostCount + endpointCount;

  std::vector<net::Node*> metered;
  std::vector<net::NodeId> endpointIds;
  for (int i = 0; i < totalHosts; ++i) {
    const bool isEndpoint = i >= config.hostCount;
    net::NodeConfig nodeConfig;
    nodeConfig.id = i;
    nodeConfig.batteryCapacityJ = config.batteryCapacityJ;
    nodeConfig.infiniteBattery = isEndpoint;
    auto mobility = std::make_unique<mobility::RandomWaypoint>(
        rwp, simulator.rng().stream("mobility", i));
    net::Node& node = network.addNode(std::move(mobility), nodeConfig);
    // Factory install (not a one-shot setProtocol) so a crashed host can
    // reboot with a fresh protocol stack; invoked once right here, so
    // construction order is unchanged.
    node.setProtocolFactory([&config, &node, &network, isEndpoint] {
      return makeProtocol(config, node, network, isEndpoint);
    });
    if (isEndpoint) {
      endpointIds.push_back(node.id());
    } else {
      metered.push_back(&node);
    }
    // Shard-ownership registration (no-op on the serial path). The
    // provider reads the host's true x lazily; mobility legs are drawn
    // from the host's dedicated stream in the same sequence regardless
    // of when they are realised, so ownership lookups cannot perturb
    // the run.
    net::Node* owned = &node;
    simulator.registerShardHost(sim::hostEventKey(node.id()),
                                [owned] { return owned->truePosition().x; });
  }

  stats::EnergyRecorder recorder(network, config.sampleInterval, metered);
  stats::PacketAccounting accounting;

  traffic::FlowPlan plan;
  plan.flowCount = config.flowCount;
  plan.packetsPerSecond = config.packetsPerSecondPerFlow;
  plan.payloadBytes = config.payloadBytes;
  plan.startTime = config.trafficStart;
  plan.stopTime = config.duration;
  plan.eligibleEndpoints = endpointIds;  // empty unless GAF Model 1
  traffic::FlowManager flows(network, plan, accounting,
                             simulator.rng().stream("flows"));

  // Workload layer, armed only for a non-empty plan (same contract as the
  // fault injector below): an empty plan draws no traffic/* stream and
  // registers no workload.* metric, keeping the run byte-identical to a
  // build without the layer.
  std::optional<traffic::WorkloadGenerator> workload;
  if (!config.workload.empty()) {
    traffic::WorkloadPlan workloadPlan = config.workload;
    workloadPlan.stopTime = std::min(workloadPlan.stopTime, config.duration);
    if (workloadPlan.eligibleHosts.empty() && !endpointIds.empty()) {
      workloadPlan.eligibleHosts = endpointIds;  // GAF Model 1
    }
    workload.emplace(network, workloadPlan, accounting);
  }

  // Armed only for a non-empty plan: an empty plan must leave the run
  // byte-identical to a build without the fault layer at all.
  std::optional<fault::FaultInjector> injector;
  if (!config.fault.empty()) {
    injector.emplace(simulator, network, config.fault);
  }

  check::InvariantAuditor auditor(check::FailMode::kThrow);
  if (config.auditInvariants) {
    check::StandardAuditOptions auditOptions;
    if (config.fault.gps.enabled()) {
      // Hosts claim the grid they believe they occupy; only physically
      // adjacent claimants can resolve a contest.
      auditOptions.gatewayConflictRangeMeters = config.radioRange;
    }
    check::installStandardAudits(auditor, network, auditOptions);
  }

  // The Simulator has a single periodic hook; the auditor, the digest
  // recorder, and the telemetry sampler share it at the gcd of their
  // periods (std::gcd(0, n) == n, so a lone subscriber keeps its exact
  // cadence). Telemetry samples by committed-event count, not wall time,
  // so which samples exist is machine-independent.
  check::DigestTrace digestTrace;
  const std::uint64_t auditEvery =
      config.auditInvariants ? config.auditPeriodEvents : 0;
  const std::uint64_t digestEvery = config.digestEveryEvents;
  const std::uint64_t telemetryEvery =
      telemetry != nullptr ? config.telemetryEveryEvents : 0;
  const bool hookInstalled =
      auditEvery > 0 || digestEvery > 0 || telemetryEvery > 0;
  if (hookInstalled) {
    simulator.setPeriodicHook(
        std::gcd(std::gcd(auditEvery, digestEvery), telemetryEvery),
        [&, auditEvery, digestEvery, telemetryEvery] {
          const std::uint64_t n = simulator.eventsExecuted();
          if (auditEvery > 0 && n % auditEvery == 0) {
            auditor.run(simulator.now());
          }
          if (digestEvery > 0 && n % digestEvery == 0) {
            digestTrace.push_back(
                {n, simulator.now(), check::stateDigest(network)});
          }
          if (telemetryEvery > 0 && n % telemetryEvery == 0) {
            telemetry->sample();
          }
        });
  }

  // Run-loop wall timer: reporting-only (campaign status heartbeat and
  // straggler detection read ScenarioResult::runWallSeconds); never fed
  // back into the simulation or serialized into campaign records.
  // ecgrid-lint: allow(banned-random)
  const auto runWallStart = std::chrono::steady_clock::now();

  network.start();
  // Warmup/steady split for the allocation audit. Running to the warmup
  // horizon first schedules nothing and draws no RNG, so the event
  // sequence — and with it every digest and metric — is byte-identical
  // to a single run(duration) call.
  const double warmup =
      std::min(std::max(config.allocAuditWarmup, 0.0), config.duration);
  if (warmup > 0.0) {
    check::allocAuditSetPhase(check::AllocPhase::kWarmup);
    simulator.run(warmup);
  }
  check::allocAuditSetPhase(check::AllocPhase::kSteady);
  if (config.allocAuditInjectCanary) {
    // Deliberate discipline violation: an allocation inside an open hot
    // scope, in steady state. Proves the gate trips (tests only). Direct
    // calls to the allocation functions, because a plain `delete new int`
    // pair is elidable at -O2 and would leave the canary silent.
    simulator.schedule(
        0.0,
        [] {
          util::HotPathScope hot;
          ::operator delete(::operator new(16));
        },
        "check/alloc-canary");
  }
  simulator.run(config.duration);
  // Capture phase counters at the horizon, before closing samples and
  // teardown add their own (legitimately counted, never hot) allocations.
  const check::AllocAuditCounts setupCounts =
      check::allocAuditCounts(check::AllocPhase::kSetup);
  const check::AllocAuditCounts warmupCounts =
      check::allocAuditCounts(check::AllocPhase::kWarmup);
  const check::AllocAuditCounts steadyCounts =
      check::allocAuditCounts(check::AllocPhase::kSteady);
  if (config.allocAuditGate) {
    ECGRID_CHECK(steadyCounts.hotAllocations == 0,
                 "alloc-audit gate: steady-state allocation on the hot path");
  }
  recorder.sample();  // closing sample at the horizon
  if (config.auditInvariants) {
    auditor.run(simulator.now());  // closing sweep at the horizon
  }
  if (digestEvery > 0) {
    // Closing sample: the final digest, regardless of where the event
    // count stood when the queue drained.
    digestTrace.push_back({simulator.eventsExecuted(), simulator.now(),
                           check::stateDigest(network)});
  }
  if (hookInstalled) {
    simulator.setPeriodicHook(0, nullptr);
  }
  if (telemetry != nullptr) {
    // Closing summary record at the horizon, after the closing audit and
    // digest samples so its event count matches the final digest's.
    telemetry->finish();
  }

  ScenarioResult result;
  // ecgrid-lint: allow(banned-random)
  const auto runWallEnd = std::chrono::steady_clock::now();
  result.runWallSeconds =
      std::chrono::duration<double>(runWallEnd - runWallStart).count();
  result.allocAudit.enabled = check::allocAuditCompiled();
  result.allocAudit.setupAllocations = setupCounts.allocations;
  result.allocAudit.warmupAllocations = warmupCounts.allocations;
  result.allocAudit.warmupHotAllocations = warmupCounts.hotAllocations;
  result.allocAudit.steadyAllocations = steadyCounts.allocations;
  result.allocAudit.steadyDeallocations = steadyCounts.deallocations;
  result.allocAudit.steadyBytes = steadyCounts.bytes;
  result.allocAudit.steadyHotAllocations = steadyCounts.hotAllocations;
  result.aliveFraction = recorder.aliveFraction();
  result.aen = recorder.aen();
  result.awakeFraction = recorder.awakeFraction();
  result.deathTimes = recorder.deathTimes();
  result.firstDeath = recorder.firstDeath();
  result.networkDown = recorder.aliveFraction().firstTimeBelow(0.0);
  result.packetsSent = accounting.packetsSent();
  result.packetsReceived = accounting.packetsReceived();
  result.abortedFlows = accounting.abortedFlows();
  result.deliveryRate = accounting.deliveryRate();
  result.meanLatencySeconds = accounting.meanLatency();
  result.p50LatencySeconds = accounting.latencyPercentile(50.0);
  result.p95LatencySeconds = accounting.latencyPercentile(95.0);
  result.p99LatencySeconds = accounting.latencyPercentile(99.0);
  result.latencies = accounting.latencies();
  result.framesTransmitted = network.channel().framesTransmitted();
  result.pagesSent = network.paging().pagesSent();
  result.deliveriesCorrupted = network.channel().deliveriesCorrupted();
  result.pagesLost = network.paging().pagesLost();
  if (injector) {
    result.crashesInjected = injector->crashesInjected();
    result.restartsInjected = injector->restartsInjected();
  }
  result.eventsExecuted = simulator.eventsExecuted();
  result.auditRuns = auditor.runs();
  result.digestTrace = std::move(digestTrace);
  if (const sim::sharded::ShardedEngine* engine = simulator.shardedEngine()) {
    result.crossShardEvents = engine->crossShardEvents();
    result.shardMigrations = engine->hostMigrations();
    result.shardCommitted = engine->committedPerShard();
    result.shardWindowStalls = engine->windowStalls();
    std::uint64_t total = 0;
    std::uint64_t peak = 0;
    for (std::uint64_t count : result.shardCommitted) {
      total += count;
      peak = std::max(peak, count);
    }
    if (total > 0 && result.shardCommitted.size() > 1) {
      result.shardImbalance =
          static_cast<double>(peak) * static_cast<double>(result.shardCommitted.size()) /
          static_cast<double>(total);
    }
  }
  result.peakQueueDepth = static_cast<std::uint64_t>(simulator.peakQueueDepth());
  result.slabSlotsTotal = static_cast<std::uint64_t>(simulator.slabSlotsTotal());
  if (telemetry != nullptr) {
    result.telemetrySamples = telemetry->samplesWritten();
  }

  for (auto& nodePtr : network.nodes()) {
    result.macFramesSent += nodePtr->mac().framesSent();
    result.macFramesDropped += nodePtr->mac().framesDropped();
    result.macRetransmissions += nodePtr->mac().retransmissions();
    result.macAcksSkipped += nodePtr->mac().acksSkipped();
    result.macAcksSent += nodePtr->mac().acksSent();
    const protocols::RoutingStats* stats = nullptr;
    if (auto* base = dynamic_cast<protocols::GridProtocolBase*>(
            &nodePtr->protocol())) {
      stats = &base->routingStats();
    } else if (auto* gaf = dynamic_cast<protocols::GafProtocol*>(
                   &nodePtr->protocol())) {
      stats = &gaf->routingStats();
    }
    if (stats == nullptr) continue;
    result.routing.dataOriginated += stats->dataOriginated;
    result.routing.dataForwarded += stats->dataForwarded;
    result.routing.dataDeliveredLocal += stats->dataDeliveredLocal;
    result.routing.dataDropped += stats->dataDropped;
    result.routing.rreqsSent += stats->rreqsSent;
    result.routing.rrepsSent += stats->rrepsSent;
    result.routing.rerrsSent += stats->rerrsSent;
    result.routing.discoveriesStarted += stats->discoveriesStarted;
    result.routing.discoveriesFailed += stats->discoveriesFailed;
  }

  // Post-run aggregates: traffic accounting and the end-to-end latency
  // distribution folded into a fixed-bin histogram (satellite of the
  // observability layer — the bench JSON reports p99 and bin counts
  // instead of shipping every raw latency).
  obs::MetricsRegistry& registry = observability.metrics();
  registry.counter("traffic.packets_sent").add(result.packetsSent);
  registry.counter("traffic.packets_received").add(result.packetsReceived);
  if (workload) {
    // Registered only when the workload is armed, so metric snapshots of
    // plain CBR runs stay byte-identical to the pre-workload era.
    registry.counter("traffic.aborted_flows").add(result.abortedFlows);
    registry.gauge("traffic.in_flight_flows")
        .set(static_cast<double>(accounting.inFlightFlows()));
  }
  obs::Histogram e2e = registry.histogram(
      "e2e.latency_s", {0.001, 0.002, 0.005, 0.01, 0.02, 0.05, 0.1, 0.2,
                        0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0});
  for (double latency : result.latencies) e2e.observe(latency);
  if (profiler != nullptr) {
    profiler->mergeInto(registry);
    result.queueDepthSamples = profiler->queueDepthSamples();
  }
  result.metrics = registry.snapshot();
  if (obs::EventTracer* tracer = observability.tracer()) {
    result.traceEventsWritten = tracer->eventsWritten();
  }
  return result;
}

}  // namespace ecgrid::harness
