#include "harness/determinism.hpp"

#include <sstream>
#include <stdexcept>

namespace ecgrid::harness {

namespace {

std::string describeTraceDivergence(const check::DigestTrace& a,
                                    const check::DigestTrace& b) {
  if (a.size() != b.size()) {
    std::ostringstream out;
    out << "replay trace length mismatch: " << a.size() << " vs " << b.size()
        << " samples";
    return out.str();
  }
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] == b[i]) continue;
    std::ostringstream out;
    out << "replay digest mismatch at sample " << i << " (event "
        << a[i].eventsExecuted << ", t=" << a[i].at << "): " << std::hex
        << a[i].digest << " vs " << b[i].digest;
    return out.str();
  }
  return {};
}

}  // namespace

DeterminismReport checkDeterminism(ScenarioConfig config) {
  if (config.perturbTieBreak) {
    throw std::invalid_argument(
        "checkDeterminism: perturbTieBreak is owned by the harness; "
        "leave it false in the input config");
  }
  if (config.digestEveryEvents == 0) config.digestEveryEvents = 2000;

  const ScenarioResult reference = runScenario(config);
  const ScenarioResult replay = runScenario(config);

  ScenarioConfig perturbed = config;
  perturbed.perturbTieBreak = true;
  const ScenarioResult shuffled = runScenario(perturbed);

  DeterminismReport report;
  report.samplesCompared = reference.digestTrace.size();
  report.divergence =
      describeTraceDivergence(reference.digestTrace, replay.digestTrace);
  report.replayIdentical = report.divergence.empty();

  // The closing sample always exists (digestEveryEvents > 0).
  report.finalDigest = reference.digestTrace.back().digest;
  report.perturbedFinalDigest = shuffled.digestTrace.back().digest;
  report.tieOrderStable = report.finalDigest == report.perturbedFinalDigest;
  if (report.replayIdentical && !report.tieOrderStable) {
    std::ostringstream out;
    out << "tie-order divergence: final digest " << std::hex
        << report.finalDigest << " != perturbed " << std::hex
        << report.perturbedFinalDigest
        << " — some component depends on the execution order of "
           "same-instant events";
    report.divergence = out.str();
  }
  return report;
}

}  // namespace ecgrid::harness
