// Replay & tie-order determinism harness.
//
// checkDeterminism() subjects one ScenarioConfig to the two determinism
// properties the experiment pipeline depends on:
//
//   1. Replay: running the config twice yields identical state-digest
//      traces (sampled every digestEveryEvents executed events) — the
//      seed-stream discipline holds end to end.
//   2. Tie-order stability: re-running with the event queue's tie-break
//      among equal-time events randomised (EventQueue::perturbTieBreak)
//      yields the same *final* digest. Intermediate samples are allowed
//      to differ — a sample may land between two legally reordered
//      same-instant events — but once every event up to the horizon has
//      executed, order-independent logic must converge to the same
//      state. Divergence here is the simulator's data-race analogue:
//      some component's result depends on which of two simultaneous
//      events ran first.
//
// Cost: three full scenario runs per call. Size configs accordingly
// (tests horizon-cap them like the CI bench smokes).
#pragma once

#include <cstdint>
#include <string>

#include "harness/scenario.hpp"

namespace ecgrid::harness {

struct DeterminismReport {
  bool replayIdentical = false;   ///< property 1: trace equality
  bool tieOrderStable = false;    ///< property 2: final-digest equality
  std::size_t samplesCompared = 0;
  std::uint64_t finalDigest = 0;           ///< reference run
  std::uint64_t perturbedFinalDigest = 0;  ///< tie-perturbed run
  /// Human-readable description of the first divergence, empty if none.
  std::string divergence;

  [[nodiscard]] bool passed() const {
    return replayIdentical && tieOrderStable;
  }
};

/// Run `config` three times (reference, replay, tie-perturbed) and
/// compare digests. `config.digestEveryEvents` is defaulted to 2000 when
/// unset; `config.perturbTieBreak` must be false (the harness owns that
/// knob — it throws std::invalid_argument otherwise).
[[nodiscard]] DeterminismReport checkDeterminism(ScenarioConfig config);

}  // namespace ecgrid::harness
