// Parallel execution of independent scenarios.
//
// runScenario() is a pure function of its config: every run builds its
// own Simulator, Network, and RNG streams, and touches no global mutable
// state (logging goes through an atomic level gate). Runs are therefore
// embarrassingly parallel, and executing them on a thread pool yields
// results bit-identical to the serial loop — results come back in input
// order, so callers' output (tables, CSVs) cannot tell the difference.
// The benches use this to spread a figure's (protocol × speed × seed)
// sweep across ECGRID_BENCH_JOBS worker threads.
#pragma once

#include <vector>

#include "harness/scenario.hpp"

namespace ecgrid::harness {

/// Run every config through runScenario on up to `jobs` worker threads
/// and return the results in input order. `jobs <= 1` (or a single
/// config) degenerates to the plain serial loop on the calling thread.
/// If any run throws, the first failure in *input order* is rethrown
/// after all workers have drained.
std::vector<ScenarioResult> runScenariosParallel(
    const std::vector<ScenarioConfig>& configs, unsigned jobs);

}  // namespace ecgrid::harness
