// Parallel execution of independent scenarios.
//
// runScenario() is a pure function of its config: every run builds its
// own Simulator, Network, and RNG streams (ECGRID_DOMAIN_PER_SCENARIO —
// see util/ownership.hpp), and touches no global mutable state beyond
// the thread-safe Logger. Runs are therefore embarrassingly parallel,
// and executing them on a thread pool yields results bit-identical to
// the serial loop — results come back in input order, so callers'
// output (tables, CSVs) cannot tell the difference. The benches use
// this to spread a figure's (protocol × speed × seed) sweep across
// ECGRID_BENCH_JOBS worker threads.
//
// Shared state inside the pool is written at disjoint indices only:
// workers claim input slots through one atomic counter and each writes
// results[i]/failures[i] for the slots it claimed, so no lock (and no
// capability annotation) is needed — the joins publish everything.
#pragma once

#include <exception>
#include <vector>

#include "harness/scenario.hpp"

namespace ecgrid::harness {

/// Run every config through runScenario on up to `jobs` worker threads
/// and return the results in input order. `jobs <= 1` (or a single
/// config) degenerates to the plain serial loop on the calling thread.
/// If any run throws, the first failure in *input order* is rethrown
/// after all workers have drained.
std::vector<ScenarioResult> runScenariosParallel(
    const std::vector<ScenarioConfig>& configs, unsigned jobs);

/// Failure-collecting variant: never rethrows scenario errors. Every
/// config is attempted; `failures` is resized to the input size and
/// failures[i] holds the exception thrown by config i (or nullptr), with
/// results[i] left default-constructed on failure. Surviving results are
/// byte-identical to what a fully-successful sweep produces for the same
/// configs — one poisoned config cannot perturb its neighbours. This is
/// the entry point for campaign-style runners that tolerate partial
/// failure (ROADMAP item 3).
std::vector<ScenarioResult> runScenariosParallel(
    const std::vector<ScenarioConfig>& configs, unsigned jobs,
    std::vector<std::exception_ptr>& failures);

}  // namespace ecgrid::harness
