#include "harness/parallel_runner.hpp"

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <exception>
#include <thread>

namespace ecgrid::harness {

std::vector<ScenarioResult> runScenariosParallel(
    const std::vector<ScenarioConfig>& configs, unsigned jobs,
    std::vector<std::exception_ptr>& failures) {
  const std::size_t count = configs.size();
  std::vector<ScenarioResult> results(count);
  failures.assign(count, nullptr);

  if (jobs <= 1 || count <= 1) {
    for (std::size_t i = 0; i < count; ++i) {
      try {
        results[i] = runScenario(configs[i]);
      } catch (...) {
        failures[i] = std::current_exception();
      }
    }
    return results;
  }

  const unsigned workers =
      static_cast<unsigned>(std::min<std::size_t>(jobs, count));
  // Work distribution: one atomic ticket counter; each worker owns the
  // results/failures slots whose tickets it drew, so writes never alias
  // and the thread joins below publish them to the caller.
  std::atomic<std::size_t> next{0};

  auto worker = [&] {
    while (true) {
      std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      try {
        results[i] = runScenario(configs[i]);
      } catch (...) {
        failures[i] = std::current_exception();
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (unsigned w = 0; w < workers; ++w) pool.emplace_back(worker);
  for (std::thread& t : pool) t.join();
  return results;
}

std::vector<ScenarioResult> runScenariosParallel(
    const std::vector<ScenarioConfig>& configs, unsigned jobs) {
  std::vector<std::exception_ptr> failures;
  std::vector<ScenarioResult> results =
      runScenariosParallel(configs, jobs, failures);
  for (const std::exception_ptr& failure : failures) {
    if (failure) std::rethrow_exception(failure);
  }
  return results;
}

}  // namespace ecgrid::harness
