// Scenario harness: builds and runs a complete paper experiment.
//
// A ScenarioConfig is a pure value describing one simulation run — field,
// host population, mobility, traffic, protocol and its parameters, seed —
// and runScenario() is a pure function from it to a ScenarioResult.
// Defaults reproduce the paper's common setup (§4): 1000×1000 m field,
// 2 Mbps / 250 m radios, d = 100 m grid, 500 J batteries, random waypoint,
// 10 CBR flows of one 512 B packet per second.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "check/determinism.hpp"
#include "core/ecgrid_protocol.hpp"
#include "fault/fault_plan.hpp"
#include "net/network.hpp"
#include "obs/metrics.hpp"
#include "protocols/common/grid_protocol_base.hpp"
#include "protocols/gaf/gaf_protocol.hpp"
#include "stats/packet_accounting.hpp"
#include "stats/timeseries.hpp"
#include "traffic/workload/workload_plan.hpp"

namespace ecgrid::harness {

enum class ProtocolKind : std::uint8_t {
  kGrid,
  kEcgrid,
  kGaf,
  kFlooding,
};

const char* toString(ProtocolKind kind);
std::optional<ProtocolKind> protocolFromString(const std::string& name);

struct ScenarioConfig {
  ProtocolKind protocol = ProtocolKind::kEcgrid;

  // population & field (paper §4)
  int hostCount = 100;
  double fieldSize = 1000.0;   ///< square field side, metres
  double gridCellSide = 100.0;
  double radioRange = 250.0;
  double bitrateBps = 2e6;
  double batteryCapacityJ = 500.0;

  // mobility (random waypoint)
  double maxSpeed = 1.0;   ///< m/s
  double pauseTime = 0.0;  ///< s

  // traffic
  int flowCount = 10;
  double packetsPerSecondPerFlow = 1.0;
  int payloadBytes = 512;
  double trafficStart = 1.0;

  // run control
  double duration = 2000.0;
  double sampleInterval = 10.0;
  std::uint64_t seed = 1;

  /// Spatial shards for the event engine (sim/sharded). 1 = the serial
  /// single-queue oracle, untouched. >1 stripes the field into that many
  /// column shards, each owning its hosts' events, with boundary events
  /// crossing per-edge mailboxes — committed in the identical global
  /// order, so the run's digest trace, metrics, and results are
  /// byte-identical at any shard count (gated in tests/sharded_test.cpp).
  int shards = 1;

  // invariant auditing (src/check): when enabled, the standard audits run
  // every `auditPeriodEvents` executed events and a violation aborts the
  // run with std::logic_error. Tests keep this on; benches leave it off
  // so figure numbers are not perturbed by audit-time battery reads.
  bool auditInvariants = false;
  std::uint64_t auditPeriodEvents = 2000;

  // GAF Model 1 (paper §4): ten extra infinite-energy endpoint hosts
  // source/sink all traffic; the `hostCount` finite hosts only forward.
  bool gafModelOne = true;
  int gafEndpointCount = 10;

  // protocol knobs (benches override for ablations)
  core::EcgridConfig ecgrid;
  protocols::GridProtocolConfig grid;
  protocols::GafConfig gaf;

  /// Interference ring as a multiple of the decode range (1.0 = pure
  /// unit disk, the paper's model). See ChannelConfig.
  double interferenceRangeFactor = 1.0;

  /// Spatially index channel attachments so broadcasts scan O(density)
  /// radios instead of all N. Off = brute-force scan; both modes produce
  /// bit-identical runs (the differential tests prove it).
  bool channelSpatialIndex = true;

  /// When true, RREQ search areas are confined using a GPS location
  /// oracle over the destination (the paper's location-aware assumption);
  /// when false every discovery floods globally.
  bool useLocationOracle = true;

  /// Determinism analysis (src/check): when nonzero, sample a
  /// check::stateDigest every this many executed events (sharing the
  /// Simulator periodic hook with the invariant auditor) and return the
  /// trace in ScenarioResult::digestTrace. Two runs of the same config
  /// must produce identical traces; checkDeterminism() relies on it.
  std::uint64_t digestEveryEvents = 0;

  /// Debug mode: randomise the event queue's tie-break among equal-time
  /// events (EventQueue::perturbTieBreak, "check/tiebreak" stream). The
  /// run stays deterministic in `seed` but executes same-instant events
  /// in a different order — the final state digest must not care. Never
  /// enable for runs whose figures you intend to keep.
  bool perturbTieBreak = false;

  /// Allocation audit (src/check/alloc_audit): the harness always tags
  /// the run's phases — setup until network start, then `allocAuditWarmup`
  /// sim-seconds of warmup (slab high-water growth, first discoveries),
  /// then steady state. Under the `alloc-audit` preset the counting
  /// operator new attributes every allocation to the current phase and
  /// flags those inside hot scopes; ScenarioResult::allocAudit reports
  /// them. Splitting run() at the warmup boundary schedules nothing and
  /// draws no RNG, so the run stays byte-identical for any warmup value.
  double allocAuditWarmup = 0.0;
  /// When true, fail the run (std::logic_error) if any steady-phase
  /// allocation fired inside an open hot scope. Only trips when built
  /// with ECGRID_ALLOC_AUDIT; harmless to leave on elsewhere.
  bool allocAuditGate = false;
  /// Test canary: schedule one steady-phase event that deliberately
  /// allocates inside a hot scope, proving the gate trips. Test-only —
  /// the extra event perturbs replay digests.
  bool allocAuditInjectCanary = false;

  /// Observability (src/obs): when non-empty, protocol events are traced
  /// into this JSONL file (see obs::EventTracer; convert with
  /// tools/trace_chrome.py, validate with tools/trace_check.py). Tracing
  /// draws no RNG and schedules nothing, so the run's digest trace is
  /// byte-identical with tracing on or off (gated in tests/obs_test.cpp).
  std::string eventTracePath;

  /// Run-health telemetry (obs::RunTelemetry): when non-empty, stream
  /// "ecgrid-telemetry" v1 JSONL health samples — sim-time progress vs
  /// wall time, events/s, queue depth and slab high-water, per-shard
  /// dispatch counts, alloc-audit phase counters — into this file,
  /// sampled every `telemetryEveryEvents` committed events (shares the
  /// periodic hook with the auditor and digest sampler). Sampling reads
  /// state only — no RNG, no scheduling — so replay digests stay
  /// byte-identical with telemetry armed (gated in
  /// tests/telemetry_test.cpp). Validate output with tools/trace_check.py.
  std::string telemetryPath;
  std::uint64_t telemetryEveryEvents = 16384;

  /// Profile the simulator: per-event-type dispatch counts, wall-clock
  /// attribution, and event-queue depth samples, folded into
  /// ScenarioResult::metrics ("profile.*") and queueDepthSamples. Reads
  /// wall clocks, so profiled numbers vary run-to-run — but the simulation
  /// itself stays bit-identical (the probe only observes).
  bool profileSimulator = false;
  /// Queue-depth sampling cadence while profiling, in executed events.
  std::uint64_t profileQueueSampleEvents = 1024;

  /// Production-traffic workload (src/traffic/workload): open-loop
  /// session arrivals with heavy-tailed sizes and request/response
  /// exchanges, layered on top of the CBR flows. The default (empty) plan
  /// arms nothing — no traffic/* RNG stream is touched and the run is
  /// byte-identical to a build without the workload layer (gated in
  /// tests/workload_test.cpp). When armed, stopTime is capped at the
  /// scenario horizon and the "workload.*" metrics appear in `metrics`.
  /// GAF Model 1 runs restrict clients and sinks to the endpoint hosts.
  traffic::WorkloadPlan workload;

  /// Adverse conditions (src/fault): channel error model, host
  /// crash/restart schedule, GPS error, RAS paging loss. The default
  /// (empty) plan arms nothing and the run is byte-identical to a
  /// simulation without the fault layer. When a GPS fault is armed and
  /// auditing is on, the gateway-uniqueness audit automatically switches
  /// to its physical-proximity reading (see StandardAuditOptions).
  fault::FaultPlan fault;
};

struct ScenarioResult {
  stats::TimeSeries aliveFraction;
  stats::TimeSeries aen;
  stats::TimeSeries awakeFraction;
  std::vector<sim::Time> deathTimes;
  sim::Time firstDeath = sim::kTimeNever;
  /// Time the alive fraction reached zero (the paper's "network is down").
  sim::Time networkDown = sim::kTimeNever;

  std::uint64_t packetsSent = 0;
  std::uint64_t packetsReceived = 0;
  /// Flows the workload layer gave up on (abort deadline hit); 0 when the
  /// workload plan is empty. Distinguishable from flows merely in flight
  /// at the horizon — see stats::PacketAccounting::FlowTimes.
  std::uint64_t abortedFlows = 0;
  double deliveryRate = 1.0;
  double meanLatencySeconds = 0.0;
  double p50LatencySeconds = 0.0;
  double p95LatencySeconds = 0.0;
  double p99LatencySeconds = 0.0;

  std::uint64_t framesTransmitted = 0;  ///< MAC frames on the air
  std::uint64_t pagesSent = 0;          ///< RAS pages

  // fault-injection accounting (all zero when the plan is empty)
  std::uint64_t crashesInjected = 0;      ///< host crashes applied
  std::uint64_t restartsInjected = 0;     ///< host reboots applied
  std::uint64_t deliveriesCorrupted = 0;  ///< frames lost to channel errors
  std::uint64_t pagesLost = 0;            ///< RAS pages missed

  std::uint64_t eventsExecuted = 0;
  std::uint64_t auditRuns = 0;  ///< invariant-audit sweeps completed

  // sharded-engine accounting (both zero when config.shards == 1).
  // Engine-level counters live here rather than in `metrics` so metric
  // snapshots stay byte-identical across shard counts.
  std::uint64_t crossShardEvents = 0;  ///< boundary events through mailboxes
  std::uint64_t shardMigrations = 0;   ///< host ownership changes observed

  // Run-health roll-ups (PR 10): deterministic engine-state high-water
  // marks, populated for every run whether or not a telemetry file was
  // requested. Plain fields rather than `metrics` entries for the same
  // reason as the shard counters above.
  std::uint64_t peakQueueDepth = 0;  ///< event-queue depth high-water mark
  std::uint64_t slabSlotsTotal = 0;  ///< pooled event slots ever allocated
  /// Events committed per shard (empty when config.shards == 1).
  std::vector<std::uint64_t> shardCommitted;
  /// max/mean over shardCommitted; 1.0 when serial or perfectly balanced.
  double shardImbalance = 1.0;
  /// Stalled (shard, window) pairs — always 0 in sequenced scenario runs
  /// (no window barriers); meaningful for engine-level windowed workloads.
  std::uint64_t shardWindowStalls = 0;
  /// Samples written to config.telemetryPath (0 when telemetry was off).
  std::uint64_t telemetrySamples = 0;

  /// Wall-clock seconds the run loop took. Reporting-only: feeds the
  /// campaign status heartbeat and straggler detection, and must NEVER be
  /// serialized into campaign result records (those are byte-reproducible
  /// pure functions of the config — the resume-equality CI gate depends
  /// on it).
  double runWallSeconds = 0.0;

  /// Sampled state digests (empty unless config.digestEveryEvents > 0).
  /// The last sample is always taken at the horizon after the closing
  /// energy sample, so `digestTrace.back().digest` is the final digest.
  check::DigestTrace digestTrace;
  std::uint64_t macFramesSent = 0;      ///< frames handed off successfully
  std::uint64_t macFramesDropped = 0;   ///< MAC-level drops (all causes)
  std::uint64_t macRetransmissions = 0; ///< ARQ retransmissions
  std::uint64_t macAcksSent = 0;
  std::uint64_t macAcksSkipped = 0;  ///< ACKs suppressed (radio busy)

  /// Every delivered packet's end-to-end latency, seconds (unordered).
  std::vector<double> latencies;

  protocols::RoutingStats routing;  ///< summed over all hosts

  /// Flattened snapshot of every counter/gauge/histogram the layers
  /// registered during the run (obs::MetricsRegistry), plus post-run
  /// aggregates (traffic.*, e2e.latency_s histogram) and, when profiling,
  /// the profile.* attribution. Deterministic except for profile.*wall_s.
  obs::MetricsSnapshot metrics;

  /// Event-queue depth over sim time; empty unless profileSimulator.
  std::vector<std::pair<double, double>> queueDepthSamples;

  /// Events written to eventTracePath (0 when tracing was off).
  std::uint64_t traceEventsWritten = 0;

  /// Allocation-audit report (check/alloc_audit.hpp). `enabled` is false
  /// — and every counter zero — unless built with ECGRID_ALLOC_AUDIT.
  /// steadyHotAllocations is the gated quantity: allocations that fired
  /// inside an open hot scope after warmup. Counts are captured the
  /// moment the run's horizon is reached, before closing samples.
  struct AllocAudit {
    bool enabled = false;
    std::uint64_t setupAllocations = 0;
    std::uint64_t warmupAllocations = 0;
    std::uint64_t warmupHotAllocations = 0;
    std::uint64_t steadyAllocations = 0;
    std::uint64_t steadyDeallocations = 0;
    std::uint64_t steadyBytes = 0;
    std::uint64_t steadyHotAllocations = 0;
  } allocAudit;
};

/// Build, run, and tear down one simulation. Deterministic in `config`.
ScenarioResult runScenario(const ScenarioConfig& config);

}  // namespace ecgrid::harness
