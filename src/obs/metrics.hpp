// MetricsRegistry — deterministic hierarchical run metrics.
//
// One registry lives on the run's Observability hub (obs/observability.hpp)
// and every layer registers its instruments against it by dotted name:
// "mac.retransmissions", "routing.rreqs_sent", "paging.wake_latency_s".
// Three instrument kinds cover the repo's needs:
//
//   Counter    monotone uint64 (events, frames, drops)
//   Gauge      last-write-wins double (queue depth, final ratios)
//   Histogram  fixed-bin distribution with count/sum/min/max and
//              interpolated percentiles (latencies)
//
// Instruments are *handles*: registering returns a tiny value type holding
// a pointer to the registry-owned cell. A default-constructed handle is
// inert — every operation is a no-op — so components instrument
// unconditionally and pay nothing when no Observability hub is installed
// (obs::counter(sim, ...) returns an inert handle then). Registering the
// same name twice returns the same cell, which is exactly what per-node
// components (100 MACs, one "mac.frames_sent") want.
//
// Determinism: storage is ordered (std::map keyed by name), snapshots are
// pure reads, and no instrument draws RNG, schedules events, or reads wall
// clocks — enabling metrics cannot perturb a run, and two replays of the
// same scenario produce byte-identical snapshots. The determinism gate in
// tests/obs_test.cpp holds the repo to that.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>
#include "util/ownership.hpp"

namespace ecgrid::obs {

namespace detail {

struct CounterCell {
  std::uint64_t value = 0;
};

struct GaugeCell {
  double value = 0.0;
};

struct HistogramCell {
  /// Ascending upper bin edges; an implicit overflow bin follows the last.
  std::vector<double> upperEdges;
  /// bins[i] counts observations v <= upperEdges[i] (first matching edge);
  /// bins.back() is the overflow bin.
  std::vector<std::uint64_t> bins;
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;

  void observe(double value);
  /// Interpolated percentile (p in [0,100]) from the binned distribution:
  /// linear within the containing bin, clamped to [min, max]. 0 when empty.
  [[nodiscard]] double percentile(double p) const;
};

}  // namespace detail

/// Monotone event counter. Inert when default-constructed.
class Counter {
 public:
  Counter() = default;
  void add(std::uint64_t n = 1) {
    if (cell_ != nullptr) cell_->value += n;
  }
  [[nodiscard]] std::uint64_t value() const {
    return cell_ != nullptr ? cell_->value : 0;
  }

 private:
  friend class MetricsRegistry;
  explicit Counter(detail::CounterCell* cell) : cell_(cell) {}
  detail::CounterCell* cell_ = nullptr;
};

/// Last-write-wins scalar. Inert when default-constructed.
class Gauge {
 public:
  Gauge() = default;
  void set(double value) {
    if (cell_ != nullptr) cell_->value = value;
  }
  [[nodiscard]] double value() const {
    return cell_ != nullptr ? cell_->value : 0.0;
  }

 private:
  friend class MetricsRegistry;
  explicit Gauge(detail::GaugeCell* cell) : cell_(cell) {}
  detail::GaugeCell* cell_ = nullptr;
};

/// Fixed-bin histogram. Inert when default-constructed.
class Histogram {
 public:
  Histogram() = default;
  void observe(double value) {
    if (cell_ != nullptr) cell_->observe(value);
  }
  [[nodiscard]] std::uint64_t count() const {
    return cell_ != nullptr ? cell_->count : 0;
  }
  [[nodiscard]] double sum() const { return cell_ != nullptr ? cell_->sum : 0.0; }
  [[nodiscard]] double percentile(double p) const {
    return cell_ != nullptr ? cell_->percentile(p) : 0.0;
  }

  /// n equal-width upper edges spanning (lo, hi]; convenience for
  /// registration sites.
  [[nodiscard]] static std::vector<double> linearEdges(double lo, double hi,
                                                       int n);
  /// Geometric edges: first, first*factor, ... (n of them).
  [[nodiscard]] static std::vector<double> exponentialEdges(double first,
                                                            double factor,
                                                            int n);

 private:
  friend class MetricsRegistry;
  explicit Histogram(detail::HistogramCell* cell) : cell_(cell) {}
  detail::HistogramCell* cell_ = nullptr;
};

/// Flattened snapshot: one double per name. Histograms expand into
/// <name>.count/.sum/.mean/.min/.max/.p50/.p95/.p99 plus cumulative
/// <name>.le_<edge> bucket counts ending in <name>.le_inf. Names stay
/// within [A-Za-z0-9_.-], so BenchReport serializes them unescaped.
using MetricsSnapshot = std::map<std::string, double>;

class ECGRID_DOMAIN_PER_SCENARIO MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Find-or-create. Throws if `name` is malformed or already registered
  /// as a different instrument kind.
  Counter counter(const std::string& name);
  Gauge gauge(const std::string& name);
  /// Histogram edges must be non-empty and strictly ascending; re-registering
  /// requires identical edges.
  Histogram histogram(const std::string& name, std::vector<double> upperEdges);

  [[nodiscard]] MetricsSnapshot snapshot() const;

  [[nodiscard]] std::size_t instrumentCount() const {
    return counters_.size() + gauges_.size() + histograms_.size();
  }

 private:
  void requireFreshName(const std::string& name, const char* kind) const;

  std::map<std::string, std::unique_ptr<detail::CounterCell>> counters_;
  std::map<std::string, std::unique_ptr<detail::GaugeCell>> gauges_;
  std::map<std::string, std::unique_ptr<detail::HistogramCell>> histograms_;
};

}  // namespace ecgrid::obs
