// EventTracer — structured sim-time protocol event tracing (JSONL).
//
// An EventTracer appends one JSON object per protocol event to a file:
//
//   {"schema":"ecgrid-events","version":1,"protocol":"ECGRID","seed":"7"}
//   {"t":12.004103,"cat":"pkt","ev":"flow","ph":"b","id":4294967299,
//    "node":31,"args":{"dst":58,"bytes":512}}
//   {"t":12.051327,"cat":"mac","ev":"tx","ph":"i","node":31,
//    "args":{"hdr":"DATA","dst":17,"attempt":1}}
//
// ph follows the Chrome trace-event phase alphabet: "b"/"e" open and close
// an async span correlated by (cat, id); "i" is an instant. Spans may be
// left open (a packet that never arrives has no "e" — that *is* the
// signal), but every "e" must match an open "b": tools/trace_check.py
// validates exactly that, and tools/trace_chrome.py converts the file to
// the Chrome trace-event JSON that Perfetto / chrome://tracing render.
//
// Determinism: emission only formats and writes — no RNG, no scheduling,
// no clock reads beyond Simulator::now() — so tracing-on and tracing-off
// runs replay to identical state digests (gated in tests/obs_test.cpp).
// Component code should treat its tracer pointer as optional and emit
// only behind a null check; obs::tracer(sim) returns nullptr when tracing
// is off.
#pragma once

#include <cstdint>
#include <cstdio>
#include <initializer_list>
#include <map>
#include <string>

#include "sim/simulator.hpp"
#include "util/ownership.hpp"

namespace ecgrid::obs {

/// One key/value argument of a trace event. Implicitly constructible from
/// the types call sites actually pass (ids, counts, seconds, reason
/// strings), so emission reads as a brace list:
///   tracer->instant("mac", "drop", node, {{"reason", "retry_limit"}});
struct TraceField {
  enum class Kind : std::uint8_t { kInt, kDouble, kString };

  TraceField(const char* key, int value)
      : key(key), kind(Kind::kInt), intValue(value) {}
  TraceField(const char* key, long value)
      : key(key), kind(Kind::kInt), intValue(value) {}
  TraceField(const char* key, long long value)
      : key(key), kind(Kind::kInt), intValue(value) {}
  TraceField(const char* key, unsigned value)
      : key(key), kind(Kind::kInt), intValue(static_cast<long long>(value)) {}
  TraceField(const char* key, unsigned long value)
      : key(key), kind(Kind::kInt), intValue(static_cast<long long>(value)) {}
  TraceField(const char* key, unsigned long long value)
      : key(key), kind(Kind::kInt), intValue(static_cast<long long>(value)) {}
  TraceField(const char* key, double value)
      : key(key), kind(Kind::kDouble), doubleValue(value) {}
  TraceField(const char* key, const char* value)
      : key(key), kind(Kind::kString), stringValue(value) {}

  const char* key;
  Kind kind;
  long long intValue = 0;
  double doubleValue = 0.0;
  const char* stringValue = "";
};

class ECGRID_DOMAIN_PER_SCENARIO EventTracer {
 public:
  /// Opens `path` (truncated) and writes the schema header line, extended
  /// with `meta` key/value pairs (run provenance: protocol, seed, ...).
  /// Throws when the file cannot be opened.
  EventTracer(sim::Simulator& sim, const std::string& path,
              const std::map<std::string, std::string>& meta = {});
  ~EventTracer();
  EventTracer(const EventTracer&) = delete;
  EventTracer& operator=(const EventTracer&) = delete;

  /// Open an async span; correlated with its end() by (cat, id).
  void begin(const char* cat, const char* ev, std::uint64_t id, int node,
             std::initializer_list<TraceField> args = {});
  /// Close the matching open span.
  void end(const char* cat, const char* ev, std::uint64_t id, int node,
           std::initializer_list<TraceField> args = {});
  /// Point event.
  void instant(const char* cat, const char* ev, int node,
               std::initializer_list<TraceField> args = {});

  /// Events written so far (header line excluded).
  [[nodiscard]] std::uint64_t eventsWritten() const { return events_; }

  void flush();

 private:
  void writeLine(const char* cat, const char* ev, const char* ph,
                 const std::uint64_t* id, int node,
                 std::initializer_list<TraceField> args);

  sim::Simulator& sim_;
  std::FILE* out_ = nullptr;
  std::uint64_t events_ = 0;
};

}  // namespace ecgrid::obs
