// SimProfiler — per-event-type dispatch counts and wall-clock attribution.
//
// Implements sim::ExecutionProbe: once installed on a Simulator
// (Observability::enableProfiler does both), every executed event is
// attributed to its schedule-site label ("mac/access", "phy/deliver",
// "proto/hello", ...) with a dispatch count and summed wall-clock cost,
// and the event-queue size is sampled on a fixed event cadence as a
// (sim-time, size) series — the data the perf trajectory needs to see
// where simulated seconds are spent and whether the queue breathes.
//
// Wall-clock readings happen in Simulator::step (sim/simulator.cpp, with
// the same ecgrid-lint justification as the bench timers); the profiler
// itself only accumulates. Aggregation is keyed on the label *pointer*
// (labels are string literals, so one schedule site is one key) for a
// cheap hot path; byLabel()/mergeInto() re-key by string value, giving
// deterministic, content-ordered output. The probe draws no RNG and never
// schedules, so profiling cannot perturb a run.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "sim/probe.hpp"
#include "util/ownership.hpp"

namespace ecgrid::obs {

class ECGRID_DOMAIN_PER_SCENARIO SimProfiler final : public sim::ExecutionProbe {
 public:
  /// Sample the queue size every `queueSampleEveryEvents` executed events
  /// (0 disables queue-depth sampling).
  explicit SimProfiler(std::uint64_t queueSampleEveryEvents = 1024)
      : queueSampleEvery_(queueSampleEveryEvents) {}

  void onEvent(const char* label, double wallSeconds, sim::Time simTime,
               std::uint64_t eventsExecuted, std::size_t queueSize,
               int shard) override;

  struct LabelStats {
    std::uint64_t count = 0;
    double wallSeconds = 0.0;
  };

  /// Attribution merged by label string, in lexicographic order.
  [[nodiscard]] std::map<std::string, LabelStats> byLabel() const;

  /// Per-shard dispatch counts and wall time, indexed by shard id (one
  /// entry, shard 0, on the serial engine).
  [[nodiscard]] const std::vector<LabelStats>& byShard() const {
    return byShard_;
  }

  /// (sim time, queue size) samples on the configured event cadence.
  [[nodiscard]] const std::vector<std::pair<double, double>>&
  queueDepthSamples() const {
    return queueDepth_;
  }

  [[nodiscard]] std::uint64_t eventsObserved() const { return events_; }
  [[nodiscard]] double totalWallSeconds() const { return totalWall_; }

  /// Fold the attribution into `metrics` as profile.events.<label>.count /
  /// .wall_s plus profile.events_total and profile.wall_s_total. Labels'
  /// '/' separators become '.' to stay inside the metric-name charset.
  /// Per-shard attribution lands as profile.shards.<k>.count / .wall_s.
  void mergeInto(MetricsRegistry& metrics) const;

 private:
  std::uint64_t queueSampleEvery_;
  std::uint64_t events_ = 0;
  double totalWall_ = 0.0;
  std::map<const char*, LabelStats> byPointer_;
  std::vector<LabelStats> byShard_;
  std::vector<std::pair<double, double>> queueDepth_;
};

}  // namespace ecgrid::obs
