// RunTelemetry — live run-health probe streaming "ecgrid-telemetry" v1.
//
// Long-horizon runs (city-scale scenarios, campaign sweeps) execute for
// minutes to hours, and without a health stream a wedged run looks
// exactly like a slow one. RunTelemetry periodically snapshots the
// engine's health surface and appends one JSON object per sample:
//
//   {"schema":"ecgrid-telemetry","version":1,"sample_every_events":16384,
//    "protocol":"ECGRID","seed":"7"}
//   {"kind":"sample","seq":1,"events":16384,"sim_t":4.012345,
//    "wall_s":0.031922,"events_per_wall_s":513258.1,"sim_per_wall":125.7,
//    "queue_depth":412,"peak_queue_depth":498,"slab_slots":512,
//    "alloc_phase":"steady","alloc_count":0,"alloc_hot":0,
//    "shards":4,"shard_committed":[5122,3810,3800,3652],
//    "shard_imbalance":1.25,"window_stalls":0,"cross_shard":118}
//   {"kind":"summary","samples":12,"events":196608,...}
//
// Sampling is driven by committed-event count (the harness periodic
// hook), never by wall time — so WHICH samples exist, and every
// deterministic field in them (events, sim_t, depths, shard counts), is
// a pure function of the scenario, identical on any machine. Only the
// wall_s / events_per_wall_s / sim_per_wall fields vary across hosts;
// they are reporting-only, never fed back into the simulation, which is
// why the clock reads below carry lint allows (same argument as
// SimProfiler and the bench timers).
//
// Determinism contract: sampling draws zero RNG, schedules nothing, and
// only reads engine state — so a run with telemetry armed replays to
// byte-identical state digests (gated in tests/telemetry_test.cpp).
//
// The serial-engine fields are always present; the shard fields
// (shards/shard_committed/shard_imbalance/window_stalls/cross_shard)
// appear only when the simulator runs the sharded engine.
#pragma once

#include <cstdint>
#include <cstdio>
#include <functional>
#include <map>
#include <string>

#include "sim/simulator.hpp"
#include "util/ownership.hpp"

namespace ecgrid::obs {

/// Alloc-audit snapshot for one sample. obs/ may not depend on src/check
/// (the include-layering DAG), so the harness injects the live counters
/// through an AllocSampler (runScenario wires check::allocAuditCounts);
/// without one, samples report phase "off" with zero counts.
struct AllocSample {
  const char* phase = "off";
  std::uint64_t allocations = 0;
  std::uint64_t hotAllocations = 0;
};
using AllocSampler = std::function<AllocSample()>;

/// Deterministic roll-up of one run's telemetry, for callers that fold
/// health stats into records that must stay byte-reproducible (campaign
/// JSONL): every field is a pure function of the event schedule.
struct TelemetryRollup {
  std::uint64_t samples = 0;
  std::size_t peakQueueDepth = 0;
  std::size_t slabSlots = 0;
  /// max(per-shard committed) / mean(per-shard committed); 1.0 when
  /// perfectly balanced or when running serial / a single shard.
  double shardImbalance = 1.0;
  std::uint64_t windowStalls = 0;
};

class ECGRID_DOMAIN_PER_SCENARIO RunTelemetry {
 public:
  /// Opens `path` (truncated) and writes the schema header, extended with
  /// `meta` provenance pairs. `sampleEveryEvents` is recorded in the
  /// header so readers can validate cadence; the *caller* drives sample()
  /// at that cadence (the harness periodic hook does). Throws when the
  /// file cannot be opened.
  RunTelemetry(sim::Simulator& sim, const std::string& path,
               std::uint64_t sampleEveryEvents,
               const std::map<std::string, std::string>& meta = {});
  /// Writes the summary record (via finish()) and closes the file.
  ~RunTelemetry();
  RunTelemetry(const RunTelemetry&) = delete;
  RunTelemetry& operator=(const RunTelemetry&) = delete;

  /// Install the alloc-audit counter source (see AllocSampler above).
  /// Call before the first sample(); pass an empty function to clear.
  void setAllocSampler(AllocSampler sampler) {
    allocSampler_ = std::move(sampler);
  }

  /// Append one health sample. Reads engine state only: no RNG, no
  /// scheduling, no mutation of anything the digest covers.
  void sample();

  /// Append the final summary record and flush. Idempotent; the
  /// destructor calls it, so every well-formed stream ends in a summary
  /// even when the harness unwinds early.
  void finish();

  [[nodiscard]] std::uint64_t samplesWritten() const { return samples_; }

  /// Deterministic roll-up of everything sampled so far (see
  /// TelemetryRollup). Valid before or after finish().
  [[nodiscard]] TelemetryRollup rollup() const;

 private:
  /// Fields shared by sample and summary records: progress counters,
  /// wall-side rates, depth/slab high-water, alloc-audit phase counts,
  /// and the shard block when sharded.
  void writeHealthFields(double wallSeconds);

  sim::Simulator& sim_;
  std::FILE* out_ = nullptr;
  AllocSampler allocSampler_;
  std::uint64_t sampleEvery_ = 0;
  std::uint64_t samples_ = 0;
  bool finished_ = false;
  /// Wall-clock origin (construction) and previous-sample marks for
  /// rate-over-interval fields. Seconds on the steady clock.
  double wallStart_ = 0.0;
  double lastWall_ = 0.0;
  std::uint64_t lastEvents_ = 0;
  double lastSimTime_ = 0.0;
};

}  // namespace ecgrid::obs
