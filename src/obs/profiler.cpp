#include "obs/profiler.hpp"

namespace ecgrid::obs {

namespace {

constexpr const char* kUnlabeled = "unlabeled";

std::string metricLabel(const std::string& label) {
  std::string out = label;
  for (char& c : out) {
    if (c == '/') c = '.';
  }
  return out;
}

}  // namespace

void SimProfiler::onEvent(const char* label, double wallSeconds,
                          sim::Time simTime, std::uint64_t eventsExecuted,
                          std::size_t queueSize, int shard) {
  ++events_;
  totalWall_ += wallSeconds;
  LabelStats& stats = byPointer_[label == nullptr ? kUnlabeled : label];
  ++stats.count;
  stats.wallSeconds += wallSeconds;
  if (shard >= 0) {
    if (static_cast<std::size_t>(shard) >= byShard_.size()) {
      byShard_.resize(static_cast<std::size_t>(shard) + 1);
    }
    LabelStats& shardStats = byShard_[static_cast<std::size_t>(shard)];
    ++shardStats.count;
    shardStats.wallSeconds += wallSeconds;
  }
  if (queueSampleEvery_ > 0 && eventsExecuted % queueSampleEvery_ == 0) {
    queueDepth_.emplace_back(simTime, static_cast<double>(queueSize));
  }
}

std::map<std::string, SimProfiler::LabelStats> SimProfiler::byLabel() const {
  // Distinct schedule sites may share a label string (e.g. two components
  // both labeling "proto/hello"); merging by value folds them together and
  // makes iteration order independent of pointer values.
  std::map<std::string, LabelStats> merged;
  for (const auto& [label, stats] : byPointer_) {
    LabelStats& into = merged[label];
    into.count += stats.count;
    into.wallSeconds += stats.wallSeconds;
  }
  return merged;
}

void SimProfiler::mergeInto(MetricsRegistry& metrics) const {
  for (const auto& [label, stats] : byLabel()) {
    const std::string base = "profile.events." + metricLabel(label);
    metrics.counter(base + ".count").add(stats.count);
    metrics.gauge(base + ".wall_s").set(stats.wallSeconds);
  }
  for (std::size_t shard = 0; shard < byShard_.size(); ++shard) {
    const std::string base =
        "profile.shards." + std::to_string(shard);
    metrics.counter(base + ".count").add(byShard_[shard].count);
    metrics.gauge(base + ".wall_s").set(byShard_[shard].wallSeconds);
  }
  metrics.counter("profile.events_total").add(events_);
  metrics.gauge("profile.wall_s_total").set(totalWall_);
}

}  // namespace ecgrid::obs
