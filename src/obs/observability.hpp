// Observability — the per-run hub tying metrics, tracing, and profiling
// to one Simulator.
//
// The harness constructs one Observability right after the Simulator and
// before any component, and the constructor registers it on the simulator
// (Simulator::setObservability). Components then reach it through the
// simulator reference they already hold, via the null-safe helpers below:
//
//   obs::Counter drops_ = obs::counter(sim_, "mac.frames_dropped");
//   obs::EventTracer* trace_ = obs::tracer(sim_);
//
// With no hub installed (bare unit tests, ad-hoc sims) the helpers return
// inert handles / nullptr and instrumentation costs a pointer check.
//
// Metrics are always on once a hub exists — registering and bumping
// counters is cheap and deterministic. Tracing (openTrace) and profiling
// (enableProfiler) are opt-in per run; neither draws RNG nor schedules
// events, so enabling them leaves the replay digest byte-identical
// (tests/obs_test.cpp gates this).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"
#include "sim/simulator.hpp"
#include "util/ownership.hpp"

namespace ecgrid::obs {

class ECGRID_DOMAIN_PER_SCENARIO Observability {
 public:
  explicit Observability(sim::Simulator& sim) : sim_(sim) {
    sim_.setObservability(this);
  }
  ~Observability() {
    sim_.setExecutionProbe(nullptr);
    sim_.setObservability(nullptr);
  }
  Observability(const Observability&) = delete;
  Observability& operator=(const Observability&) = delete;

  MetricsRegistry& metrics() { return metrics_; }

  /// Start event tracing into `path` (see EventTracer). `meta` key/value
  /// pairs land in the schema header line for provenance.
  EventTracer& openTrace(const std::string& path,
                         const std::map<std::string, std::string>& meta = {}) {
    tracer_ = std::make_unique<EventTracer>(sim_, path, meta);
    return *tracer_;
  }
  [[nodiscard]] EventTracer* tracer() { return tracer_.get(); }

  /// Install a SimProfiler as the simulator's execution probe.
  SimProfiler& enableProfiler(std::uint64_t queueSampleEveryEvents = 1024) {
    profiler_ = std::make_unique<SimProfiler>(queueSampleEveryEvents);
    sim_.setExecutionProbe(profiler_.get());
    return *profiler_;
  }
  [[nodiscard]] SimProfiler* profiler() { return profiler_.get(); }

  /// Start run-health telemetry into `path` (see RunTelemetry). The
  /// caller drives sampling — the harness folds telemetry->sample() into
  /// its periodic event-count hook at `sampleEveryEvents`.
  RunTelemetry& openTelemetry(
      const std::string& path, std::uint64_t sampleEveryEvents,
      const std::map<std::string, std::string>& meta = {}) {
    telemetry_ =
        std::make_unique<RunTelemetry>(sim_, path, sampleEveryEvents, meta);
    return *telemetry_;
  }
  [[nodiscard]] RunTelemetry* telemetry() { return telemetry_.get(); }

 private:
  sim::Simulator& sim_;
  MetricsRegistry metrics_;
  std::unique_ptr<EventTracer> tracer_;
  std::unique_ptr<SimProfiler> profiler_;
  std::unique_ptr<RunTelemetry> telemetry_;
};

// --- null-safe component helpers -------------------------------------------
// Resolve once at construction; all are no-ops when no hub is installed.

[[nodiscard]] inline Observability* of(sim::Simulator& sim) {
  return sim.observability();
}

[[nodiscard]] inline Counter counter(sim::Simulator& sim,
                                     const std::string& name) {
  Observability* hub = sim.observability();
  return hub != nullptr ? hub->metrics().counter(name) : Counter{};
}

[[nodiscard]] inline Gauge gauge(sim::Simulator& sim,
                                 const std::string& name) {
  Observability* hub = sim.observability();
  return hub != nullptr ? hub->metrics().gauge(name) : Gauge{};
}

[[nodiscard]] inline Histogram histogram(sim::Simulator& sim,
                                         const std::string& name,
                                         std::vector<double> upperEdges) {
  Observability* hub = sim.observability();
  return hub != nullptr
             ? hub->metrics().histogram(name, std::move(upperEdges))
             : Histogram{};
}

[[nodiscard]] inline EventTracer* tracer(sim::Simulator& sim) {
  Observability* hub = sim.observability();
  return hub != nullptr ? hub->tracer() : nullptr;
}

}  // namespace ecgrid::obs
