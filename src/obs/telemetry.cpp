#include "obs/telemetry.hpp"

#include <algorithm>
#include <chrono>  // ecgrid-lint: allow(banned-random)
#include <vector>

#include "sim/sharded/engine.hpp"
#include "util/error.hpp"

namespace ecgrid::obs {

namespace {

/// Seconds on the monotonic clock. Reporting-only: wall time appears in
/// the stream but never feeds the simulation, so telemetry-armed runs
/// replay byte-identically — the same justification SimProfiler and the
/// bench timers carry for their lint allows.
double wallNowSeconds() {
  // ecgrid-lint: allow(banned-random)
  const auto now = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(now.time_since_epoch()).count();
}

/// Minimal JSON string escaping for header meta (matches trace.cpp).
void writeEscaped(std::FILE* out, const char* s) {
  for (; *s != '\0'; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') {
      std::fputc('\\', out);
      std::fputc(c, out);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      std::fprintf(out, "\\u%04x", static_cast<unsigned char>(c));
    } else {
      std::fputc(c, out);
    }
  }
}

/// max/mean ratio over per-shard committed counts; 1.0 for degenerate
/// inputs (serial, single shard, nothing committed yet).
double imbalanceRatio(const std::vector<std::uint64_t>& committed) {
  if (committed.size() < 2) return 1.0;
  std::uint64_t total = 0;
  std::uint64_t peak = 0;
  for (std::uint64_t count : committed) {
    total += count;
    peak = std::max(peak, count);
  }
  if (total == 0) return 1.0;
  const double mean =
      static_cast<double>(total) / static_cast<double>(committed.size());
  return static_cast<double>(peak) / mean;
}

}  // namespace

RunTelemetry::RunTelemetry(sim::Simulator& sim, const std::string& path,
                           std::uint64_t sampleEveryEvents,
                           const std::map<std::string, std::string>& meta)
    : sim_(sim), sampleEvery_(sampleEveryEvents) {
  out_ = std::fopen(path.c_str(), "w");
  ECGRID_REQUIRE(out_ != nullptr, "cannot open telemetry output: " + path);
  std::fprintf(out_,
               "{\"schema\":\"ecgrid-telemetry\",\"version\":1,"
               "\"sample_every_events\":%llu",
               static_cast<unsigned long long>(sampleEvery_));
  for (const auto& [key, value] : meta) {
    std::fprintf(out_, ",\"");
    writeEscaped(out_, key.c_str());
    std::fprintf(out_, "\":\"");
    writeEscaped(out_, value.c_str());
    std::fprintf(out_, "\"");
  }
  std::fprintf(out_, "}\n");
  wallStart_ = wallNowSeconds();
  lastWall_ = wallStart_;
}

RunTelemetry::~RunTelemetry() {
  finish();
  if (out_ != nullptr) std::fclose(out_);
}

void RunTelemetry::writeHealthFields(double wallNow) {
  const std::uint64_t events = sim_.eventsExecuted();
  const double simTime = sim_.now();
  std::fprintf(out_,
               "\"events\":%llu,\"sim_t\":%.9f,\"wall_s\":%.6f,"
               "\"queue_depth\":%zu,\"peak_queue_depth\":%zu,"
               "\"slab_slots\":%zu",
               static_cast<unsigned long long>(events), simTime,
               wallNow - wallStart_, sim_.queueDepth(), sim_.peakQueueDepth(),
               sim_.slabSlotsTotal());
  const AllocSample alloc = allocSampler_ ? allocSampler_() : AllocSample{};
  std::fprintf(out_,
               ",\"alloc_phase\":\"%s\",\"alloc_count\":%llu,"
               "\"alloc_hot\":%llu",
               alloc.phase,
               static_cast<unsigned long long>(alloc.allocations),
               static_cast<unsigned long long>(alloc.hotAllocations));
  const sim::sharded::ShardedEngine* engine = sim_.shardedEngine();
  if (engine != nullptr) {
    const std::vector<std::uint64_t> committed = engine->committedPerShard();
    std::fprintf(out_, ",\"shards\":%d,\"shard_committed\":[",
                 engine->shardCount());
    for (std::size_t s = 0; s < committed.size(); ++s) {
      std::fprintf(out_, "%s%llu", s == 0 ? "" : ",",
                   static_cast<unsigned long long>(committed[s]));
    }
    std::fprintf(out_,
                 "],\"shard_imbalance\":%.6f,\"window_stalls\":%llu,"
                 "\"cross_shard\":%llu",
                 imbalanceRatio(committed),
                 static_cast<unsigned long long>(engine->windowStalls()),
                 static_cast<unsigned long long>(engine->crossShardEvents()));
  }
}

void RunTelemetry::sample() {
  if (out_ == nullptr || finished_) return;
  const double wallNow = wallNowSeconds();
  const std::uint64_t events = sim_.eventsExecuted();
  const double simTime = sim_.now();
  // Interval rates since the previous sample (or construction). Wall
  // deltas can be ~0 on coarse clocks; rates degrade to 0 rather than
  // inf/NaN so downstream JSON parsing never sees a non-finite token.
  const double wallDelta = wallNow - lastWall_;
  const double eventsRate =
      wallDelta > 0.0
          ? static_cast<double>(events - lastEvents_) / wallDelta
          : 0.0;
  const double simRate =
      wallDelta > 0.0 ? (simTime - lastSimTime_) / wallDelta : 0.0;
  ++samples_;
  std::fprintf(out_, "{\"kind\":\"sample\",\"seq\":%llu,",
               static_cast<unsigned long long>(samples_));
  writeHealthFields(wallNow);
  std::fprintf(out_, ",\"events_per_wall_s\":%.3f,\"sim_per_wall\":%.6f}\n",
               eventsRate, simRate);
  lastWall_ = wallNow;
  lastEvents_ = events;
  lastSimTime_ = simTime;
}

void RunTelemetry::finish() {
  if (out_ == nullptr || finished_) return;
  const double wallNow = wallNowSeconds();
  const double wallTotal = wallNow - wallStart_;
  const std::uint64_t events = sim_.eventsExecuted();
  // Summary rates are run means (whole run over whole wall), unlike the
  // per-sample interval rates.
  const double eventsRate =
      wallTotal > 0.0 ? static_cast<double>(events) / wallTotal : 0.0;
  const double simRate = wallTotal > 0.0 ? sim_.now() / wallTotal : 0.0;
  std::fprintf(out_, "{\"kind\":\"summary\",\"samples\":%llu,",
               static_cast<unsigned long long>(samples_));
  writeHealthFields(wallNow);
  std::fprintf(out_, ",\"events_per_wall_s\":%.3f,\"sim_per_wall\":%.6f}\n",
               eventsRate, simRate);
  std::fflush(out_);
  finished_ = true;
}

TelemetryRollup RunTelemetry::rollup() const {
  TelemetryRollup rollup;
  rollup.samples = samples_;
  rollup.peakQueueDepth = sim_.peakQueueDepth();
  rollup.slabSlots = sim_.slabSlotsTotal();
  const sim::sharded::ShardedEngine* engine = sim_.shardedEngine();
  if (engine != nullptr) {
    rollup.shardImbalance = imbalanceRatio(engine->committedPerShard());
    rollup.windowStalls = engine->windowStalls();
  }
  return rollup;
}

}  // namespace ecgrid::obs
