#include "obs/trace.hpp"

#include "util/error.hpp"

namespace ecgrid::obs {

namespace {

/// Minimal JSON string escaping. Trace keys and values are controlled
/// short identifiers, but a stray quote or backslash must not corrupt
/// the stream.
void writeEscaped(std::FILE* out, const char* s) {
  for (; *s != '\0'; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') {
      std::fputc('\\', out);
      std::fputc(c, out);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      std::fprintf(out, "\\u%04x", static_cast<unsigned char>(c));
    } else {
      std::fputc(c, out);
    }
  }
}

}  // namespace

EventTracer::EventTracer(sim::Simulator& sim, const std::string& path,
                         const std::map<std::string, std::string>& meta)
    : sim_(sim) {
  out_ = std::fopen(path.c_str(), "w");
  ECGRID_REQUIRE(out_ != nullptr, "cannot open event trace output: " + path);
  std::fprintf(out_, "{\"schema\":\"ecgrid-events\",\"version\":1");
  for (const auto& [key, value] : meta) {
    std::fprintf(out_, ",\"");
    writeEscaped(out_, key.c_str());
    std::fprintf(out_, "\":\"");
    writeEscaped(out_, value.c_str());
    std::fprintf(out_, "\"");
  }
  std::fprintf(out_, "}\n");
}

EventTracer::~EventTracer() {
  if (out_ != nullptr) std::fclose(out_);
}

void EventTracer::flush() {
  if (out_ != nullptr) std::fflush(out_);
}

void EventTracer::writeLine(const char* cat, const char* ev, const char* ph,
                            const std::uint64_t* id, int node,
                            std::initializer_list<TraceField> args) {
  std::fprintf(out_, "{\"t\":%.9f,\"cat\":\"", sim_.now());
  writeEscaped(out_, cat);
  std::fprintf(out_, "\",\"ev\":\"");
  writeEscaped(out_, ev);
  std::fprintf(out_, "\",\"ph\":\"%s\"", ph);
  if (id != nullptr) {
    std::fprintf(out_, ",\"id\":%llu", static_cast<unsigned long long>(*id));
  }
  std::fprintf(out_, ",\"node\":%d", node);
  if (args.size() > 0) {
    std::fprintf(out_, ",\"args\":{");
    bool first = true;
    for (const TraceField& field : args) {
      std::fprintf(out_, "%s\"", first ? "" : ",");
      writeEscaped(out_, field.key);
      std::fprintf(out_, "\":");
      switch (field.kind) {
        case TraceField::Kind::kInt:
          std::fprintf(out_, "%lld", field.intValue);
          break;
        case TraceField::Kind::kDouble:
          std::fprintf(out_, "%.9g", field.doubleValue);
          break;
        case TraceField::Kind::kString:
          std::fprintf(out_, "\"");
          writeEscaped(out_, field.stringValue);
          std::fprintf(out_, "\"");
          break;
      }
      first = false;
    }
    std::fprintf(out_, "}");
  }
  std::fprintf(out_, "}\n");
  ++events_;
}

void EventTracer::begin(const char* cat, const char* ev, std::uint64_t id,
                        int node, std::initializer_list<TraceField> args) {
  writeLine(cat, ev, "b", &id, node, args);
}

void EventTracer::end(const char* cat, const char* ev, std::uint64_t id,
                      int node, std::initializer_list<TraceField> args) {
  writeLine(cat, ev, "e", &id, node, args);
}

void EventTracer::instant(const char* cat, const char* ev, int node,
                          std::initializer_list<TraceField> args) {
  writeLine(cat, ev, "i", nullptr, node, args);
}

}  // namespace ecgrid::obs
