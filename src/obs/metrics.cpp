#include "obs/metrics.hpp"

#include <algorithm>
#include <cstdio>

#include "util/error.hpp"

namespace ecgrid::obs {

namespace detail {

void HistogramCell::observe(double value) {
  if (count == 0) {
    min = value;
    max = value;
  } else {
    min = std::min(min, value);
    max = std::max(max, value);
  }
  ++count;
  sum += value;
  // First edge >= value; past-the-end means the overflow bin.
  auto it = std::lower_bound(upperEdges.begin(), upperEdges.end(), value);
  ++bins[static_cast<std::size_t>(it - upperEdges.begin())];
}

double HistogramCell::percentile(double p) const {
  if (count == 0) return 0.0;
  const double target = p / 100.0 * static_cast<double>(count);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < bins.size(); ++i) {
    if (bins[i] == 0) continue;
    const std::uint64_t before = cumulative;
    cumulative += bins[i];
    if (static_cast<double>(cumulative) < target) continue;
    // Linear interpolation inside bin i. The bin spans (lower, upper]
    // where lower/upper come from the edges, tightened by the observed
    // min/max so percentiles never leave the data's range.
    double lower = i == 0 ? min : upperEdges[i - 1];
    double upper = i < upperEdges.size() ? upperEdges[i] : max;
    lower = std::max(lower, min);
    upper = std::min(upper, max);
    if (upper < lower) upper = lower;
    const double frac =
        (target - static_cast<double>(before)) / static_cast<double>(bins[i]);
    return lower + frac * (upper - lower);
  }
  return max;
}

}  // namespace detail

namespace {

bool validMetricName(const std::string& name) {
  if (name.empty()) return false;
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '.' || c == '-';
    if (!ok) return false;
  }
  return true;
}

std::string edgeKey(const std::string& name, double edge) {
  char buffer[48];
  std::snprintf(buffer, sizeof(buffer), "%g", edge);
  return name + ".le_" + buffer;
}

}  // namespace

std::vector<double> Histogram::linearEdges(double lo, double hi, int n) {
  ECGRID_REQUIRE(n >= 1 && hi > lo, "need at least one ascending edge");
  std::vector<double> edges;
  edges.reserve(static_cast<std::size_t>(n));
  const double width = (hi - lo) / n;
  for (int i = 1; i <= n; ++i) edges.push_back(lo + width * i);
  return edges;
}

std::vector<double> Histogram::exponentialEdges(double first, double factor,
                                                int n) {
  ECGRID_REQUIRE(n >= 1 && first > 0.0 && factor > 1.0,
                 "exponential edges need first > 0 and factor > 1");
  std::vector<double> edges;
  edges.reserve(static_cast<std::size_t>(n));
  double edge = first;
  for (int i = 0; i < n; ++i) {
    edges.push_back(edge);
    edge *= factor;
  }
  return edges;
}

void MetricsRegistry::requireFreshName(const std::string& name,
                                       const char* kind) const {
  ECGRID_REQUIRE(validMetricName(name),
                 "metric names are non-empty [A-Za-z0-9_.-]: " + name);
  const bool isCounter = counters_.count(name) > 0;
  const bool isGauge = gauges_.count(name) > 0;
  const bool isHistogram = histograms_.count(name) > 0;
  const std::string k = kind;
  ECGRID_REQUIRE((isCounter ? k == "counter" : true) &&
                     (isGauge ? k == "gauge" : true) &&
                     (isHistogram ? k == "histogram" : true),
                 "metric already registered as a different kind: " + name);
}

Counter MetricsRegistry::counter(const std::string& name) {
  requireFreshName(name, "counter");
  auto& cell = counters_[name];
  if (cell == nullptr) cell = std::make_unique<detail::CounterCell>();
  return Counter(cell.get());
}

Gauge MetricsRegistry::gauge(const std::string& name) {
  requireFreshName(name, "gauge");
  auto& cell = gauges_[name];
  if (cell == nullptr) cell = std::make_unique<detail::GaugeCell>();
  return Gauge(cell.get());
}

Histogram MetricsRegistry::histogram(const std::string& name,
                                     std::vector<double> upperEdges) {
  requireFreshName(name, "histogram");
  ECGRID_REQUIRE(!upperEdges.empty(), "histogram needs at least one edge");
  ECGRID_REQUIRE(std::is_sorted(upperEdges.begin(), upperEdges.end()) &&
                     std::adjacent_find(upperEdges.begin(), upperEdges.end()) ==
                         upperEdges.end(),
                 "histogram edges must be strictly ascending");
  auto& cell = histograms_[name];
  if (cell == nullptr) {
    cell = std::make_unique<detail::HistogramCell>();
    cell->upperEdges = std::move(upperEdges);
    cell->bins.assign(cell->upperEdges.size() + 1, 0);
  } else {
    ECGRID_REQUIRE(cell->upperEdges == upperEdges,
                   "histogram re-registered with different edges: " + name);
  }
  return Histogram(cell.get());
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot out;
  for (const auto& [name, cell] : counters_) {
    out[name] = static_cast<double>(cell->value);
  }
  for (const auto& [name, cell] : gauges_) {
    out[name] = cell->value;
  }
  for (const auto& [name, cell] : histograms_) {
    out[name + ".count"] = static_cast<double>(cell->count);
    out[name + ".sum"] = cell->sum;
    out[name + ".mean"] =
        cell->count > 0 ? cell->sum / static_cast<double>(cell->count) : 0.0;
    out[name + ".min"] = cell->min;
    out[name + ".max"] = cell->max;
    out[name + ".p50"] = cell->percentile(50.0);
    out[name + ".p95"] = cell->percentile(95.0);
    out[name + ".p99"] = cell->percentile(99.0);
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < cell->upperEdges.size(); ++i) {
      cumulative += cell->bins[i];
      out[edgeKey(name, cell->upperEdges[i])] =
          static_cast<double>(cumulative);
    }
    out[name + ".le_inf"] = static_cast<double>(cell->count);
  }
  return out;
}

}  // namespace ecgrid::obs
