// Tests for the parallel scenario runner: results identical to the
// serial loop (order and content), exception propagation, and degenerate
// job counts. The thread-safety of concurrent runScenario calls is also
// exercised under TSan by the CI tsan preset.
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "harness/parallel_runner.hpp"
#include "harness/scenario.hpp"

namespace ecgrid::harness {
namespace {

std::vector<ScenarioConfig> smallSweep() {
  std::vector<ScenarioConfig> configs;
  for (ProtocolKind protocol :
       {ProtocolKind::kGrid, ProtocolKind::kEcgrid, ProtocolKind::kGaf}) {
    for (std::uint64_t seed : {1u, 2u}) {
      ScenarioConfig config;
      config.protocol = protocol;
      config.hostCount = 20;
      config.fieldSize = 600.0;
      config.duration = 40.0;
      config.flowCount = 2;
      config.seed = seed;
      configs.push_back(config);
    }
  }
  return configs;
}

void expectSameResult(const ScenarioResult& a, const ScenarioResult& b) {
  EXPECT_EQ(a.eventsExecuted, b.eventsExecuted);
  EXPECT_EQ(a.framesTransmitted, b.framesTransmitted);
  EXPECT_EQ(a.packetsSent, b.packetsSent);
  EXPECT_EQ(a.packetsReceived, b.packetsReceived);
  EXPECT_EQ(a.latencies, b.latencies);
  EXPECT_EQ(a.deathTimes, b.deathTimes);
  EXPECT_EQ(a.aen.points(), b.aen.points());
  EXPECT_EQ(a.aliveFraction.points(), b.aliveFraction.points());
}

TEST(ParallelRunner, MatchesSerialRunInOrderAndContent) {
  std::vector<ScenarioConfig> configs = smallSweep();
  std::vector<ScenarioResult> serial = runScenariosParallel(configs, 1);
  std::vector<ScenarioResult> parallel = runScenariosParallel(configs, 4);
  ASSERT_EQ(serial.size(), configs.size());
  ASSERT_EQ(parallel.size(), configs.size());
  for (std::size_t i = 0; i < configs.size(); ++i) {
    SCOPED_TRACE(i);
    expectSameResult(serial[i], parallel[i]);
  }
  // Distinct configs really produced distinct runs (ordering is not a
  // fluke of every result being equal).
  EXPECT_NE(serial[0].eventsExecuted, serial[2].eventsExecuted);
}

TEST(ParallelRunner, MoreJobsThanWorkIsFine) {
  std::vector<ScenarioConfig> configs = smallSweep();
  configs.resize(2);
  std::vector<ScenarioResult> results = runScenariosParallel(configs, 16);
  EXPECT_EQ(results.size(), 2u);
  EXPECT_GT(results[0].eventsExecuted, 0u);
}

TEST(ParallelRunner, EmptyInputYieldsEmptyOutput) {
  EXPECT_TRUE(runScenariosParallel({}, 4).empty());
}

TEST(ParallelRunner, FirstFailureInInputOrderPropagates) {
  std::vector<ScenarioConfig> configs = smallSweep();
  configs[1].duration = -1.0;  // invalid: runScenario rejects it
  configs[3].hostCount = 0;    // also invalid, but later in input order
  try {
    runScenariosParallel(configs, 4);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("duration"), std::string::npos);
  }
}

TEST(ParallelRunner, SingleJobTakesTheSerialPathWithIdenticalResults) {
  std::vector<ScenarioConfig> configs = smallSweep();
  std::vector<ScenarioResult> one = runScenariosParallel(configs, 1);
  std::vector<ScenarioResult> many = runScenariosParallel(configs, 3);
  ASSERT_EQ(one.size(), configs.size());
  for (std::size_t i = 0; i < configs.size(); ++i) {
    SCOPED_TRACE(i);
    expectSameResult(one[i], many[i]);
  }
}

TEST(ParallelRunner, SingleConfigRunsOnTheCallingThread) {
  std::vector<ScenarioConfig> configs = smallSweep();
  configs.resize(1);
  std::vector<ScenarioResult> results = runScenariosParallel(configs, 8);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_GT(results[0].eventsExecuted, 0u);
}

// The propagated failure is a deterministic function of the input, not
// of worker scheduling: every job count surfaces the same (first in
// input order) exception.
TEST(ParallelRunner, PropagatedFailureIsStableAcrossJobCounts) {
  std::vector<ScenarioConfig> configs = smallSweep();
  configs[2].hostCount = 0;
  configs[4].duration = -1.0;
  for (unsigned jobs : {1u, 2u, 8u}) {
    SCOPED_TRACE(jobs);
    try {
      runScenariosParallel(configs, jobs);
      FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument& e) {
      // configs[2] (hostCount) precedes configs[4] (duration).
      EXPECT_NE(std::string(e.what()).find("host"), std::string::npos);
    }
  }
}

// Collecting mode: a scenario that throws mid-sweep is reported at its
// own index and cannot perturb its neighbours — the surviving results
// are bit-identical to a sweep that never contained the poisoned config.
TEST(ParallelRunner, CollectingModeKeepsLaterResultsDeterministic) {
  std::vector<ScenarioConfig> configs = smallSweep();
  std::vector<ScenarioResult> clean = runScenariosParallel(configs, 1);

  configs[1].duration = -1.0;
  std::vector<std::exception_ptr> failures;
  std::vector<ScenarioResult> partial =
      runScenariosParallel(configs, 4, failures);
  ASSERT_EQ(partial.size(), configs.size());
  ASSERT_EQ(failures.size(), configs.size());
  for (std::size_t i = 0; i < configs.size(); ++i) {
    SCOPED_TRACE(i);
    if (i == 1) {
      ASSERT_TRUE(failures[i] != nullptr);
      EXPECT_THROW(std::rethrow_exception(failures[i]),
                   std::invalid_argument);
      EXPECT_EQ(partial[i].eventsExecuted, 0u);  // slot left default
    } else {
      EXPECT_TRUE(failures[i] == nullptr);
      expectSameResult(clean[i], partial[i]);
    }
  }
}

TEST(ParallelRunner, CollectingModeOnEmptyInput) {
  std::vector<std::exception_ptr> failures{std::exception_ptr{}};
  EXPECT_TRUE(runScenariosParallel({}, 4, failures).empty());
  EXPECT_TRUE(failures.empty());  // resized to the input size
}

}  // namespace
}  // namespace ecgrid::harness
