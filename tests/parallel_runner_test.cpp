// Tests for the parallel scenario runner: results identical to the
// serial loop (order and content), exception propagation, and degenerate
// job counts. The thread-safety of concurrent runScenario calls is also
// exercised under TSan by the CI tsan preset.
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "harness/parallel_runner.hpp"
#include "harness/scenario.hpp"

namespace ecgrid::harness {
namespace {

std::vector<ScenarioConfig> smallSweep() {
  std::vector<ScenarioConfig> configs;
  for (ProtocolKind protocol :
       {ProtocolKind::kGrid, ProtocolKind::kEcgrid, ProtocolKind::kGaf}) {
    for (std::uint64_t seed : {1u, 2u}) {
      ScenarioConfig config;
      config.protocol = protocol;
      config.hostCount = 20;
      config.fieldSize = 600.0;
      config.duration = 40.0;
      config.flowCount = 2;
      config.seed = seed;
      configs.push_back(config);
    }
  }
  return configs;
}

void expectSameResult(const ScenarioResult& a, const ScenarioResult& b) {
  EXPECT_EQ(a.eventsExecuted, b.eventsExecuted);
  EXPECT_EQ(a.framesTransmitted, b.framesTransmitted);
  EXPECT_EQ(a.packetsSent, b.packetsSent);
  EXPECT_EQ(a.packetsReceived, b.packetsReceived);
  EXPECT_EQ(a.latencies, b.latencies);
  EXPECT_EQ(a.deathTimes, b.deathTimes);
  EXPECT_EQ(a.aen.points(), b.aen.points());
  EXPECT_EQ(a.aliveFraction.points(), b.aliveFraction.points());
}

TEST(ParallelRunner, MatchesSerialRunInOrderAndContent) {
  std::vector<ScenarioConfig> configs = smallSweep();
  std::vector<ScenarioResult> serial = runScenariosParallel(configs, 1);
  std::vector<ScenarioResult> parallel = runScenariosParallel(configs, 4);
  ASSERT_EQ(serial.size(), configs.size());
  ASSERT_EQ(parallel.size(), configs.size());
  for (std::size_t i = 0; i < configs.size(); ++i) {
    SCOPED_TRACE(i);
    expectSameResult(serial[i], parallel[i]);
  }
  // Distinct configs really produced distinct runs (ordering is not a
  // fluke of every result being equal).
  EXPECT_NE(serial[0].eventsExecuted, serial[2].eventsExecuted);
}

TEST(ParallelRunner, MoreJobsThanWorkIsFine) {
  std::vector<ScenarioConfig> configs = smallSweep();
  configs.resize(2);
  std::vector<ScenarioResult> results = runScenariosParallel(configs, 16);
  EXPECT_EQ(results.size(), 2u);
  EXPECT_GT(results[0].eventsExecuted, 0u);
}

TEST(ParallelRunner, EmptyInputYieldsEmptyOutput) {
  EXPECT_TRUE(runScenariosParallel({}, 4).empty());
}

TEST(ParallelRunner, FirstFailureInInputOrderPropagates) {
  std::vector<ScenarioConfig> configs = smallSweep();
  configs[1].duration = -1.0;  // invalid: runScenario rejects it
  configs[3].hostCount = 0;    // also invalid, but later in input order
  try {
    runScenariosParallel(configs, 4);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("duration"), std::string::npos);
  }
}

}  // namespace
}  // namespace ecgrid::harness
