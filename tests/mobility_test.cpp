// Tests for mobility models and the event-exact grid tracker.
#include <gtest/gtest.h>

#include <cmath>

#include "mobility/grid_tracker.hpp"
#include "mobility/mobility_model.hpp"
#include "mobility/random_walk.hpp"
#include "mobility/random_waypoint.hpp"
#include "sim/simulator.hpp"

namespace ecgrid::mobility {
namespace {

TEST(StaticMobility, NeverMoves) {
  StaticMobility model({10.0, 20.0});
  EXPECT_EQ(model.positionAt(0.0), (geo::Vec2{10.0, 20.0}));
  EXPECT_EQ(model.positionAt(1e6), (geo::Vec2{10.0, 20.0}));
  EXPECT_EQ(model.velocityAt(5.0), (geo::Vec2{}));
  EXPECT_GE(model.nextChangeTime(0.0), sim::kTimeNever);
}

TEST(ScriptedMobility, FollowsLegs) {
  ScriptedMobility model({
      {0.0, {0.0, 0.0}, {1.0, 0.0}},   // east at 1 m/s
      {10.0, {10.0, 0.0}, {0.0, 2.0}},  // then north at 2 m/s
  });
  EXPECT_EQ(model.positionAt(5.0), (geo::Vec2{5.0, 0.0}));
  EXPECT_EQ(model.positionAt(10.0), (geo::Vec2{10.0, 0.0}));
  EXPECT_EQ(model.positionAt(12.0), (geo::Vec2{10.0, 4.0}));
  EXPECT_EQ(model.velocityAt(3.0), (geo::Vec2{1.0, 0.0}));
  EXPECT_EQ(model.velocityAt(11.0), (geo::Vec2{0.0, 2.0}));
  EXPECT_DOUBLE_EQ(model.nextChangeTime(3.0), 10.0);
}

TEST(ScriptedMobility, ValidatesLegOrdering) {
  using Legs = std::vector<ScriptedMobility::Leg>;
  EXPECT_THROW(ScriptedMobility(Legs{}), std::invalid_argument);
  EXPECT_THROW(ScriptedMobility(Legs{{1.0, {}, {}}}), std::invalid_argument);
  EXPECT_THROW(ScriptedMobility(Legs{{0.0, {}, {}}, {0.0, {}, {}}}),
               std::invalid_argument);
}

TEST(MobilityModel, NextPossibleCellExitUsesMotion) {
  geo::GridMap grid(100.0);
  ScriptedMobility model({{0.0, {50.0, 50.0}, {10.0, 0.0}}});
  // Exit at x=100 → t=5, plus the epsilon nudge.
  sim::Time exit = model.nextPossibleCellExit(grid, 0.0);
  EXPECT_NEAR(exit, 5.0, 1e-4);
  EXPECT_GT(exit, 5.0);
}

TEST(MobilityModel, NextPossibleCellExitUsesLegChange) {
  geo::GridMap grid(100.0);
  // Paused until t=3, then moves; the dwell check must fire at the leg
  // change (velocity could change direction there).
  ScriptedMobility model({
      {0.0, {50.0, 50.0}, {0.0, 0.0}},
      {3.0, {50.0, 50.0}, {100.0, 0.0}},
  });
  EXPECT_NEAR(model.nextPossibleCellExit(grid, 0.0), 3.0, 1e-4);
}

TEST(MobilityModel, StaticHostNeverExits) {
  geo::GridMap grid(100.0);
  StaticMobility model({50.0, 50.0});
  EXPECT_GE(model.nextPossibleCellExit(grid, 0.0), sim::kTimeNever);
}

class WaypointSweep : public ::testing::TestWithParam<
                          std::tuple<double, double, std::uint64_t>> {};

TEST_P(WaypointSweep, StaysInFieldAndRespectsSpeed) {
  auto [maxSpeed, pause, seed] = GetParam();
  RandomWaypointConfig config;
  config.maxSpeed = maxSpeed;
  config.pauseTime = pause;
  sim::RngFactory factory(seed);
  RandomWaypoint model(config, factory.stream("m"));
  geo::Vec2 prev = model.positionAt(0.0);
  double t = 0.0;
  for (int i = 0; i < 500; ++i) {
    t += 2.0;
    geo::Vec2 pos = model.positionAt(t);
    EXPECT_GE(pos.x, -1e-9);
    EXPECT_LE(pos.x, 1000.0 + 1e-9);
    EXPECT_GE(pos.y, -1e-9);
    EXPECT_LE(pos.y, 1000.0 + 1e-9);
    // Displacement over 2 s can never exceed 2·maxSpeed.
    EXPECT_LE(prev.distanceTo(pos), 2.0 * maxSpeed + 1e-9);
    double speed = model.velocityAt(t).length();
    EXPECT_LE(speed, maxSpeed + 1e-9);
    prev = pos;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, WaypointSweep,
    ::testing::Combine(::testing::Values(1.0, 10.0),
                       ::testing::Values(0.0, 30.0),
                       ::testing::Values(1u, 77u, 424242u)));

TEST(RandomWaypoint, PausesAtWaypoints) {
  RandomWaypointConfig config;
  config.maxSpeed = 10.0;
  config.minSpeed = 9.0;  // fast, so waypoints are reached quickly
  config.pauseTime = 50.0;
  sim::RngFactory factory(5);
  RandomWaypoint model(config, factory.stream("m"));
  // Initial leg is a pause (matches ns-2 setdest traces).
  EXPECT_EQ(model.velocityAt(0.0), (geo::Vec2{}));
  EXPECT_DOUBLE_EQ(model.nextChangeTime(0.0), 50.0);
  // Sample a long run: paused fraction should be substantial.
  int paused = 0;
  const int samples = 2000;
  for (int i = 0; i < samples; ++i) {
    if (model.velocityAt(i * 1.0).lengthSquared() == 0.0) ++paused;
  }
  EXPECT_GT(paused, samples / 10);
}

TEST(RandomWaypoint, ZeroPauseNeverStops) {
  RandomWaypointConfig config;
  config.pauseTime = 0.0;
  sim::RngFactory factory(6);
  RandomWaypoint model(config, factory.stream("m"));
  for (int i = 1; i < 300; ++i) {
    EXPECT_GT(model.velocityAt(i * 3.0).lengthSquared(), 0.0);
  }
}

TEST(RandomWaypoint, RejectsBadConfig) {
  sim::RngFactory factory(1);
  RandomWaypointConfig config;
  config.maxSpeed = 0.0;
  EXPECT_THROW(RandomWaypoint(config, factory.stream("x")),
               std::invalid_argument);
}

TEST(RandomWalk, StaysInField) {
  RandomWalkConfig config;
  config.speed = 5.0;
  sim::RngFactory factory(8);
  RandomWalk model(config, factory.stream("w"));
  for (int i = 0; i < 1000; ++i) {
    geo::Vec2 pos = model.positionAt(i * 1.7);
    EXPECT_GE(pos.x, -1e-6);
    EXPECT_LE(pos.x, 1000.0 + 1e-6);
    EXPECT_GE(pos.y, -1e-6);
    EXPECT_LE(pos.y, 1000.0 + 1e-6);
    EXPECT_NEAR(model.velocityAt(i * 1.7).length(), 5.0, 1e-9);
  }
}

TEST(GridTracker, FiresExactlyOnCrossing) {
  sim::Simulator simulator;
  geo::GridMap grid(100.0);
  // East at 10 m/s from x=50: crossings at t=5, 15, 25, ...
  ScriptedMobility model({{0.0, {50.0, 50.0}, {10.0, 0.0}}});
  std::vector<std::pair<geo::GridCoord, geo::GridCoord>> crossings;
  std::vector<sim::Time> when;
  GridTracker tracker(simulator, grid, model,
                      [&](const geo::GridCoord& from, const geo::GridCoord& to) {
                        crossings.emplace_back(from, to);
                        when.push_back(simulator.now());
                      });
  simulator.run(26.0);
  ASSERT_EQ(crossings.size(), 3u);
  EXPECT_EQ(crossings[0].first, (geo::GridCoord{0, 0}));
  EXPECT_EQ(crossings[0].second, (geo::GridCoord{1, 0}));
  EXPECT_EQ(crossings[2].second, (geo::GridCoord{3, 0}));
  EXPECT_NEAR(when[0], 5.0, 1e-3);
  EXPECT_NEAR(when[1], 15.0, 1e-3);
  EXPECT_NEAR(when[2], 25.0, 1e-3);
}

TEST(GridTracker, StopCancelsCallbacks) {
  sim::Simulator simulator;
  geo::GridMap grid(100.0);
  ScriptedMobility model({{0.0, {50.0, 50.0}, {10.0, 0.0}}});
  int crossings = 0;
  GridTracker tracker(simulator, grid, model,
                      [&](const geo::GridCoord&, const geo::GridCoord&) {
                        ++crossings;
                        if (crossings == 1) tracker.stop();
                      });
  simulator.run(100.0);
  EXPECT_EQ(crossings, 1);
}

TEST(GridTracker, PositionOffsetShiftsCrossingsToTheBelievedBoundary) {
  sim::Simulator simulator;
  geo::GridMap grid(100.0);
  // East at 10 m/s from x=10: TRUE crossings at t=9, 19. With a +50 m
  // offset the tracked (believed) x is 60 + 10t, so the crossings fire
  // at t=4, 14 — between the true ones, not at them.
  ScriptedMobility model({{0.0, {10.0, 50.0}, {10.0, 0.0}}});
  geo::Vec2 offset{50.0, 0.0};
  std::vector<sim::Time> when;
  GridTracker tracker(
      simulator, grid, model,
      [&](const geo::GridCoord&, const geo::GridCoord&) {
        when.push_back(simulator.now());
      },
      [&] { return offset; });
  EXPECT_EQ(tracker.currentCell(), (geo::GridCoord{0, 0}));
  simulator.run(15.0);
  ASSERT_EQ(when.size(), 2u);
  EXPECT_NEAR(when[0], 4.0, 1e-3);
  EXPECT_NEAR(when[1], 14.0, 1e-3);
  EXPECT_EQ(tracker.currentCell(), (geo::GridCoord{2, 0}));
}

TEST(GridTracker, RefreshReTestsTheCellAndReArmsOnOffsetChange) {
  sim::Simulator simulator;
  geo::GridMap grid(100.0);
  ScriptedMobility model({{0.0, {10.0, 50.0}, {10.0, 0.0}}});
  geo::Vec2 offset{0.0, 0.0};
  std::vector<sim::Time> when;
  GridTracker tracker(
      simulator, grid, model,
      [&](const geo::GridCoord&, const geo::GridCoord&) {
        when.push_back(simulator.now());
      },
      [&] { return offset; });
  simulator.run(2.0);  // believed x = 30: still the first cell
  EXPECT_TRUE(when.empty());

  offset = {75.0, 0.0};  // believed x jumps to 105: next cell, right now
  tracker.refresh();
  ASSERT_EQ(when.size(), 1u);
  EXPECT_DOUBLE_EQ(when[0], 2.0);

  // And the timer was re-aimed at the SHIFTED boundary: believed
  // x = 85 + 10t crosses 200 m at t = 11.5, not at the t = 19 a
  // zero-offset arming would predict.
  simulator.run(13.0);
  ASSERT_EQ(when.size(), 2u);
  EXPECT_NEAR(when[1], 11.5, 1e-3);
}

TEST(GridTracker, TracksWaypointModelWithoutMisses) {
  // Against a random waypoint trace, every callback must be a real cell
  // change and consecutive callbacks must chain (to == next from).
  sim::Simulator simulator(31);
  geo::GridMap grid(100.0);
  RandomWaypointConfig config;
  config.maxSpeed = 10.0;
  RandomWaypoint model(config, simulator.rng().stream("m"));
  geo::GridCoord last = grid.cellOf(model.positionAt(0.0));
  int count = 0;
  GridTracker tracker(simulator, grid, model,
                      [&](const geo::GridCoord& from, const geo::GridCoord& to) {
                        EXPECT_EQ(from, last);
                        EXPECT_NE(from, to);
                        last = to;
                        ++count;
                      });
  simulator.run(600.0);
  EXPECT_GT(count, 5);
  EXPECT_EQ(last, grid.cellOf(model.positionAt(simulator.now())));
}

}  // namespace
}  // namespace ecgrid::mobility
