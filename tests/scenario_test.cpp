// End-to-end integration tests through the scenario harness: the paper's
// headline behaviours, determinism, and cross-protocol invariants.
// Durations are kept short so the suite stays fast; the full-length
// figures live in bench/.
#include <gtest/gtest.h>

#include "harness/scenario.hpp"

namespace ecgrid::harness {
namespace {

ScenarioConfig smallBase() {
  ScenarioConfig config;
  config.hostCount = 40;
  config.flowCount = 1;
  config.packetsPerSecondPerFlow = 10.0;
  config.duration = 120.0;
  config.seed = 7;
  // Every harness-driven test also sweeps the runtime invariant audits;
  // a violation anywhere aborts the run and fails the test.
  config.auditInvariants = true;
  return config;
}

TEST(Scenario, ProtocolNamesRoundTrip) {
  for (ProtocolKind kind : {ProtocolKind::kGrid, ProtocolKind::kEcgrid,
                            ProtocolKind::kGaf, ProtocolKind::kFlooding}) {
    auto parsed = protocolFromString(toString(kind));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, kind);
  }
  EXPECT_FALSE(protocolFromString("nonsense").has_value());
}

class ProtocolSmoke : public ::testing::TestWithParam<ProtocolKind> {};

TEST_P(ProtocolSmoke, DeliversMostTraffic) {
  ScenarioConfig config = smallBase();
  config.protocol = GetParam();
  ScenarioResult result = runScenario(config);
  EXPECT_GT(result.packetsSent, 1000u);
  EXPECT_GT(result.deliveryRate, 0.90)
      << toString(GetParam()) << " delivered only "
      << 100.0 * result.deliveryRate << "%";
  EXPECT_GT(result.meanLatencySeconds, 0.0);
  EXPECT_LT(result.meanLatencySeconds, 0.5);
  // Nobody dies in 120 s with 500 J batteries.
  EXPECT_EQ(result.deathTimes.size(), 0u);
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, ProtocolSmoke,
                         ::testing::Values(ProtocolKind::kGrid,
                                           ProtocolKind::kEcgrid,
                                           ProtocolKind::kGaf));

TEST(Scenario, SameSeedIsBitwiseDeterministic) {
  ScenarioConfig config = smallBase();
  config.protocol = ProtocolKind::kEcgrid;
  ScenarioResult a = runScenario(config);
  ScenarioResult b = runScenario(config);
  EXPECT_EQ(a.packetsSent, b.packetsSent);
  EXPECT_EQ(a.packetsReceived, b.packetsReceived);
  EXPECT_EQ(a.eventsExecuted, b.eventsExecuted);
  EXPECT_EQ(a.framesTransmitted, b.framesTransmitted);
  EXPECT_DOUBLE_EQ(a.meanLatencySeconds, b.meanLatencySeconds);
  ASSERT_EQ(a.aen.size(), b.aen.size());
  for (std::size_t i = 0; i < a.aen.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.aen.points()[i].second, b.aen.points()[i].second);
  }
}

TEST(Scenario, DifferentSeedsDiffer) {
  ScenarioConfig config = smallBase();
  config.protocol = ProtocolKind::kEcgrid;
  ScenarioResult a = runScenario(config);
  config.seed = 8;
  ScenarioResult b = runScenario(config);
  EXPECT_NE(a.eventsExecuted, b.eventsExecuted);
}

TEST(Scenario, EcgridSleepsGridDoesNot) {
  // Denser population so grids hold several hosts and sleeping is
  // actually possible (sparse nets are mostly solo gateways).
  ScenarioConfig config = smallBase();
  config.hostCount = 80;
  config.protocol = ProtocolKind::kGrid;
  ScenarioResult grid = runScenario(config);
  config.protocol = ProtocolKind::kEcgrid;
  ScenarioResult ecgrid = runScenario(config);
  EXPECT_DOUBLE_EQ(grid.awakeFraction.valueAt(100.0), 1.0);
  EXPECT_LT(ecgrid.awakeFraction.valueAt(100.0), 0.85);
}

TEST(Scenario, EcgridConsumesLessEnergyThanGrid) {
  ScenarioConfig config = smallBase();
  config.hostCount = 80;
  config.protocol = ProtocolKind::kGrid;
  double gridAen = runScenario(config).aen.valueAt(120.0);
  config.protocol = ProtocolKind::kEcgrid;
  double ecgridAen = runScenario(config).aen.valueAt(120.0);
  EXPECT_GT(gridAen, ecgridAen * 1.15)
      << "expected a clear energy gap (paper: ~33%)";
}

TEST(Scenario, GridNetworkDiesNearPaperWall) {
  // The headline number: all-idle hosts with 500 J at 0.863 W die at
  // ≈ 580 s; the paper rounds to "simulation time = 590 seconds".
  ScenarioConfig config = smallBase();
  config.protocol = ProtocolKind::kGrid;
  config.duration = 700.0;
  ScenarioResult result = runScenario(config);
  ASSERT_FALSE(result.deathTimes.empty());
  EXPECT_GT(result.firstDeath, 540.0);
  EXPECT_LT(result.firstDeath, 600.0);
  EXPECT_DOUBLE_EQ(result.aliveFraction.valueAt(650.0), 0.0);
}

TEST(Scenario, EcgridOutlivesGrid) {
  ScenarioConfig config = smallBase();
  config.hostCount = 80;
  config.duration = 800.0;
  config.protocol = ProtocolKind::kGrid;
  ScenarioResult grid = runScenario(config);
  config.protocol = ProtocolKind::kEcgrid;
  ScenarioResult ecgrid = runScenario(config);
  EXPECT_DOUBLE_EQ(grid.aliveFraction.valueAt(800.0), 0.0);
  EXPECT_GT(ecgrid.aliveFraction.valueAt(800.0), 0.3);
}

TEST(Scenario, EcgridLifetimeGrowsWithDensity) {
  // Fig. 8's mechanism in miniature: more hosts per grid ⇒ more gateway
  // rotation ⇒ later deaths.
  ScenarioConfig config = smallBase();
  config.protocol = ProtocolKind::kEcgrid;
  config.duration = 900.0;
  config.hostCount = 30;
  double sparse = runScenario(config).aliveFraction.valueAt(850.0);
  config.hostCount = 90;
  double dense = runScenario(config).aliveFraction.valueAt(850.0);
  EXPECT_GT(dense, sparse + 0.1);
}

TEST(Scenario, GafModelOneAddsEndpoints) {
  ScenarioConfig config = smallBase();
  config.protocol = ProtocolKind::kGaf;
  config.gafModelOne = true;
  config.gafEndpointCount = 10;
  ScenarioResult result = runScenario(config);
  // Flows run between infinite-energy endpoints; the 40 metered hosts
  // neither source nor sink, so delivery stays high while they sleep.
  EXPECT_GT(result.deliveryRate, 0.9);
  EXPECT_LT(result.awakeFraction.valueAt(100.0), 0.95);
}

TEST(Scenario, DisablingOracleStillDelivers) {
  ScenarioConfig config = smallBase();
  config.protocol = ProtocolKind::kEcgrid;
  config.useLocationOracle = false;  // every search floods globally
  ScenarioResult result = runScenario(config);
  EXPECT_GT(result.deliveryRate, 0.9);
}

TEST(Scenario, RejectsNonsenseConfig) {
  ScenarioConfig config = smallBase();
  config.hostCount = 0;
  EXPECT_THROW(runScenario(config), std::invalid_argument);
  config = smallBase();
  config.duration = -1.0;
  EXPECT_THROW(runScenario(config), std::invalid_argument);
}

}  // namespace
}  // namespace ecgrid::harness
