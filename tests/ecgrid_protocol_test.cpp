// Protocol-level tests for ECGRID — the paper's contribution: sleeping,
// RAS paging, ACQ, buffered wakeup delivery, load balancing.
#include <gtest/gtest.h>

#include "test_net.hpp"

namespace ecgrid::test {
namespace {

using Role = protocols::GridProtocolBase::Role;

TEST(Ecgrid, ElectionPrefersBatteryLevel) {
  TestNet net;
  // Node 2 sits dead-centre but starts with a drained battery (lower
  // level); node 1 is farther but full. Rule 1 beats rule 2.
  net::Node& drained = net.addStatic(2, {50.0, 50.0});
  drained.batteryRef().drain(450.0, 0.0);  // pre-aged to 10 %
  net.addStatic(1, {80.0, 80.0});
  net.installEcgridEverywhere();
  net.start(5.0);
  EXPECT_TRUE(net.gridProtocolOf(1).isGateway());
  EXPECT_FALSE(net.gridProtocolOf(2).isGateway());
}

TEST(Ecgrid, NonGatewaysSleepAfterElection) {
  TestNet net;
  net.addStatic(1, {50.0, 50.0});
  net.addStatic(2, {30.0, 30.0});
  net.addStatic(3, {70.0, 60.0});
  net.installEcgridEverywhere();
  net.start(6.0);
  EXPECT_EQ(net.gateways(), (std::vector<net::NodeId>{1}));
  EXPECT_FALSE(net.network.findNode(1)->radio().sleeping());
  EXPECT_TRUE(net.network.findNode(2)->radio().sleeping());
  EXPECT_TRUE(net.network.findNode(3)->radio().sleeping());
  EXPECT_EQ(net.ecgridOf(2).role(), Role::kSleeping);
}

TEST(Ecgrid, SleepersConsumeSleepPower) {
  TestNet net;
  net.addStatic(1, {50.0, 50.0});
  net.addStatic(2, {30.0, 30.0});
  net.installEcgridEverywhere();
  net.start(6.0);
  double t0 = net.simulator.now();
  double sleeperBefore =
      net.network.findNode(2)->batteryRef().consumedJ(t0);
  net.simulator.run(t0 + 100.0);
  double sleeperDelta =
      net.network.findNode(2)->batteryRef().consumedJ(t0 + 100.0) -
      sleeperBefore;
  // 100 s at 0.163 W (sleep + GPS), no wakeups in a static quiet net.
  EXPECT_NEAR(sleeperDelta, 16.3, 0.5);
  // The gateway burns idle power the whole time.
  double gatewayRate =
      net.network.findNode(1)->batteryRef().consumedJ(t0 + 100.0) / (t0 + 100);
  EXPECT_GT(gatewayRate, 0.8);
}

TEST(Ecgrid, DataToSleepingHostIsPagedAndDelivered) {
  TestNet net;
  net.addStatic(1, {50.0, 50.0});   // gateway of (0,0)
  net.addStatic(2, {30.0, 30.0});   // sleeper in (0,0)
  net.addStatic(3, {150.0, 50.0});  // gateway of (1,0), source
  net.installEcgridEverywhere();
  int delivered = 0;
  net.network.findNode(2)->setAppReceiveCallback(
      [&](net::NodeId src, const net::DataTag&, int) {
        EXPECT_EQ(src, 3);
        ++delivered;
      });
  net.start(6.0);
  ASSERT_TRUE(net.network.findNode(2)->radio().sleeping());
  net.network.findNode(3)->sendFromApp(2, 512, {});
  net.simulator.run(net.simulator.now() + 2.0);
  EXPECT_EQ(delivered, 1);
  EXPECT_GT(net.network.paging().pagesSent(), 0u);
}

TEST(Ecgrid, SleepingSourceWakesWithAcq) {
  TestNet net;
  net.addStatic(1, {50.0, 50.0});   // gateway (0,0)
  net.addStatic(2, {30.0, 30.0});   // sleeping source
  net.addStatic(3, {150.0, 50.0});  // destination gateway (1,0)
  net.installEcgridEverywhere();
  int delivered = 0;
  net.network.findNode(3)->setAppReceiveCallback(
      [&](net::NodeId src, const net::DataTag&, int) {
        EXPECT_EQ(src, 2);
        ++delivered;
      });
  net.start(6.0);
  ASSERT_TRUE(net.network.findNode(2)->radio().sleeping());
  net.network.findNode(2)->sendFromApp(3, 512, {});
  net.simulator.run(net.simulator.now() + 2.0);
  EXPECT_EQ(delivered, 1);
}

TEST(Ecgrid, SleeperReturnsToSleepAfterTraffic) {
  TestNet net;
  net.addStatic(1, {50.0, 50.0});
  net.addStatic(2, {30.0, 30.0});
  net.addStatic(3, {150.0, 50.0});
  net.installEcgridEverywhere();
  net.start(6.0);
  net.network.findNode(3)->sendFromApp(2, 512, {});
  net.simulator.run(net.simulator.now() + 0.2);
  EXPECT_FALSE(net.network.findNode(2)->radio().sleeping());  // woken
  net.simulator.run(net.simulator.now() + 3.0);
  EXPECT_TRUE(net.network.findNode(2)->radio().sleeping());  // back asleep
}

TEST(Ecgrid, GridPageWakesWholeGridForElection) {
  TestNet net;
  // Gateway dies silently. Static sleepers cannot notice on their own —
  // the paper's detector 2 fires when a sleeper wakes *to transmit*, gets
  // no gateway response, pages the grid, and an election follows.
  net.addStatic(1, {50.0, 50.0}, /*batteryJ=*/10.0);
  net.addStatic(2, {30.0, 30.0});
  net.addStatic(3, {70.0, 70.0});
  net.addStatic(4, {150.0, 50.0});  // destination in the next grid
  core::EcgridConfig config;
  config.enableLoadBalance = false;  // force a *silent* death (no RETIRE)
  net.installEcgridEverywhere(config);
  net.start(6.0);
  EXPECT_EQ(net.gateways(), (std::vector<net::NodeId>{1, 4}));
  net.simulator.run(20.0);  // node 1's battery empties at ~11.6 s
  EXPECT_FALSE(net.network.findNode(1)->alive());
  // Sleeper 2 wakes to send: ACQ gets no answer → grid page → election.
  net.network.findNode(2)->sendFromApp(4, 64, {});
  net.simulator.run(30.0);
  bool recovered = false;
  for (net::NodeId id : {2, 3}) {
    recovered |= net.gridProtocolOf(id).isGateway();
  }
  EXPECT_TRUE(recovered);
}

TEST(Ecgrid, LoadBalanceRotatesGateway) {
  TestNet net;
  // Two hosts; small batteries so the upper→boundary transition happens
  // quickly. The sitting gateway must retire at the level drop and the
  // rested sleeper must take over.
  net.addStatic(1, {50.0, 50.0}, /*batteryJ=*/25.0);
  net.addStatic(2, {40.0, 40.0}, /*batteryJ=*/25.0);
  net.installEcgridEverywhere();
  net.start(4.0);
  ASSERT_EQ(net.gateways(), (std::vector<net::NodeId>{1}));
  // Gateway burns ~0.863 W ⇒ crosses 60 % (leaving upper) after ~11.6 s.
  net.simulator.run(20.0);
  EXPECT_EQ(net.gateways(), (std::vector<net::NodeId>{2}));
  // And the retired host went back to sleep.
  EXPECT_TRUE(net.network.findNode(1)->radio().sleeping());
}

TEST(Ecgrid, SleepDisabledBehavesLikeGridPlusRules) {
  TestNet net;
  core::EcgridConfig config;
  config.enableSleep = false;
  net.addStatic(1, {50.0, 50.0});
  net.addStatic(2, {30.0, 30.0});
  net.installEcgridEverywhere(config);
  net.start(8.0);
  EXPECT_FALSE(net.network.findNode(2)->radio().sleeping());
}

TEST(Ecgrid, SleepingMemberCrossingGridsReregisters) {
  TestNet net;
  net.addStatic(1, {50.0, 50.0});  // gateway (0,0)
  net.addScripted(2, {{0.0, {30.0, 50.0}, {0.0, 0.0}},
                      {8.0, {30.0, 50.0}, {10.0, 0.0}},
                      {21.0, {160.0, 50.0}, {0.0, 0.0}}});
  net.addStatic(3, {150.0, 50.0});  // gateway (1,0)
  net.addStatic(4, {250.0, 50.0});  // source, gateway (2,0)
  net.installEcgridEverywhere();
  net.start(6.0);
  ASSERT_TRUE(net.network.findNode(2)->radio().sleeping());
  int delivered = 0;
  net.network.findNode(2)->setAppReceiveCallback(
      [&](net::NodeId, const net::DataTag&, int) { ++delivered; });
  // Let node 2 wander into grid (1,0) and fall asleep there.
  net.simulator.run(30.0);
  EXPECT_EQ(net.network.findNode(2)->cell(), (geo::GridCoord{1, 0}));
  EXPECT_TRUE(net.network.findNode(2)->radio().sleeping());
  // Traffic must find it through its *new* gateway.
  net.network.findNode(4)->sendFromApp(2, 128, {});
  net.simulator.run(net.simulator.now() + 3.0);
  EXPECT_EQ(delivered, 1);
}

TEST(Ecgrid, GatewaySendsFinalRetireBeforeExhaustion) {
  TestNet net;
  // Lone gateway with tiny battery: before dying it must page + RETIRE so
  // the sleeper inherits (here the sleeper is in the same grid).
  net.addStatic(1, {50.0, 50.0}, /*batteryJ=*/12.0);
  net.addStatic(2, {30.0, 30.0}, /*batteryJ=*/500.0);
  core::EcgridConfig config;
  config.enableLoadBalance = true;
  net.installEcgridEverywhere(config);
  net.start(4.0);
  ASSERT_EQ(net.gateways(), (std::vector<net::NodeId>{1}));
  net.simulator.run(30.0);
  // Node 1 retired at a level drop (25 J batteries cross levels fast) or
  // the final-retire threshold; either way node 2 now gateways.
  EXPECT_EQ(net.gateways(), (std::vector<net::NodeId>{2}));
}

}  // namespace
}  // namespace ecgrid::test
