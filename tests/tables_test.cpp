// Tests for the protocol state tables: routing table freshness rules,
// RREQ duplicate cache, neighbour-gateway table, host table.
#include <gtest/gtest.h>

#include "protocols/common/routing_table.hpp"
#include "protocols/common/tables.hpp"

namespace ecgrid::protocols {
namespace {

RouteEntry route(geo::GridCoord next, SeqNo seq, int hops) {
  RouteEntry entry;
  entry.nextGrid = next;
  entry.destGrid = next;
  entry.destSeq = seq;
  entry.hopCount = hops;
  return entry;
}

TEST(RoutingTable, StoresAndLooksUp) {
  RoutingTable table(10.0);
  EXPECT_TRUE(table.update(5, route({1, 0}, 3, 2), 0.0));
  auto found = table.lookup(5, 1.0);
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(found->nextGrid, (geo::GridCoord{1, 0}));
  EXPECT_EQ(found->destSeq, 3u);
  EXPECT_FALSE(table.lookup(6, 1.0).has_value());
}

TEST(RoutingTable, EntriesExpire) {
  RoutingTable table(10.0);
  table.update(5, route({1, 0}, 3, 2), 0.0);
  EXPECT_TRUE(table.lookup(5, 9.9).has_value());
  EXPECT_FALSE(table.lookup(5, 10.1).has_value());
}

TEST(RoutingTable, RefreshExtendsLifetime) {
  RoutingTable table(10.0);
  table.update(5, route({1, 0}, 3, 2), 0.0);
  table.refresh(5, 8.0);
  EXPECT_TRUE(table.lookup(5, 15.0).has_value());
  EXPECT_FALSE(table.lookup(5, 18.1).has_value());
}

TEST(RoutingTable, StalerSequenceIsRejected) {
  RoutingTable table(10.0);
  table.update(5, route({1, 0}, 10, 2), 0.0);
  EXPECT_FALSE(table.update(5, route({2, 0}, 9, 1), 1.0));
  EXPECT_EQ(table.lookup(5, 1.0)->nextGrid, (geo::GridCoord{1, 0}));
}

TEST(RoutingTable, SameSeqShorterPathWins) {
  RoutingTable table(10.0);
  table.update(5, route({1, 0}, 10, 5), 0.0);
  EXPECT_TRUE(table.update(5, route({2, 0}, 10, 3), 1.0));
  EXPECT_EQ(table.lookup(5, 1.0)->hopCount, 3);
  EXPECT_FALSE(table.update(5, route({3, 0}, 10, 4), 2.0));
}

TEST(RoutingTable, SequenceWraparound) {
  RoutingTable table(10.0);
  SeqNo nearMax = 0xFFFFFFF0u;
  table.update(5, route({1, 0}, nearMax, 1), 0.0);
  // A wrapped-around (small) number is fresher than a near-max one.
  EXPECT_TRUE(table.update(5, route({2, 0}, 5u, 1), 1.0));
}

TEST(RoutingTable, ExpiredEntryIsReplaceableByAnything) {
  RoutingTable table(1.0);
  table.update(5, route({1, 0}, 100, 1), 0.0);
  // After expiry even a stale sequence number may install.
  EXPECT_TRUE(table.update(5, route({2, 0}, 1, 1), 5.0));
}

TEST(RoutingTable, ExportImportRoundTrip) {
  RoutingTable source(10.0);
  source.update(5, route({1, 0}, 3, 2), 0.0);
  source.update(7, route({2, 2}, 8, 1), 0.0);
  auto records = source.exportRecords(1.0);
  EXPECT_EQ(records.size(), 2u);

  RoutingTable target(10.0);
  target.importRecords(records, 1.0);
  EXPECT_TRUE(target.lookup(5, 2.0).has_value());
  EXPECT_TRUE(target.lookup(7, 2.0).has_value());
  EXPECT_EQ(target.lastKnownSeq(7), 8u);
}

TEST(RoutingTable, ExportSkipsExpired) {
  RoutingTable table(1.0);
  table.update(5, route({1, 0}, 3, 2), 0.0);
  EXPECT_TRUE(table.exportRecords(0.5).size() == 1);
  EXPECT_TRUE(table.exportRecords(2.0).empty());
}

TEST(RoutingTable, ImportKeepsFresherLocalEntry) {
  RoutingTable table(10.0);
  table.update(5, route({1, 0}, 10, 1), 0.0);
  RouteRecord rec;
  rec.destination = 5;
  rec.nextGrid = {9, 9};
  rec.destSeq = 4;  // staler
  rec.expiry = 8.0;
  table.importRecords({rec}, 1.0);
  EXPECT_EQ(table.lookup(5, 1.0)->nextGrid, (geo::GridCoord{1, 0}));
}

TEST(RreqCache, SuppressesDuplicates) {
  RreqCache cache(5.0);
  EXPECT_TRUE(cache.firstSighting(1, 100, 0.0));
  EXPECT_FALSE(cache.firstSighting(1, 100, 0.1));
  EXPECT_TRUE(cache.firstSighting(1, 101, 0.1));  // different request
  EXPECT_TRUE(cache.firstSighting(2, 100, 0.1));  // different source
}

TEST(RreqCache, ForgetsAfterHorizon) {
  RreqCache cache(5.0);
  EXPECT_TRUE(cache.firstSighting(1, 100, 0.0));
  // Re-sighting inside the horizon keeps the suppression alive…
  EXPECT_FALSE(cache.firstSighting(1, 100, 4.0));
  // …but long after the last copy, the pair is forgotten.
  EXPECT_TRUE(cache.firstSighting(1, 100, 30.0));
}

TEST(NeighbourGatewayTable, ObserveAndLookup) {
  NeighbourGatewayTable table(5.0);
  table.observe({1, 1}, 7, {150.0, 150.0}, 0.0);
  EXPECT_EQ(table.gatewayOf({1, 1}, 1.0), std::optional<net::NodeId>(7));
  EXPECT_FALSE(table.gatewayOf({2, 2}, 1.0).has_value());
  EXPECT_FALSE(table.gatewayOf({1, 1}, 6.0).has_value());  // stale
}

TEST(NeighbourGatewayTable, RangeCheckedLookup) {
  NeighbourGatewayTable table(5.0);
  table.observe({1, 1}, 7, {150.0, 150.0}, 0.0);
  EXPECT_TRUE(table.gatewayOf({1, 1}, 1.0, {50.0, 50.0}, 230.0).has_value());
  EXPECT_FALSE(
      table.gatewayOf({1, 1}, 1.0, {500.0, 500.0}, 230.0).has_value());
}

TEST(NeighbourGatewayTable, ForgetVariants) {
  NeighbourGatewayTable table(5.0);
  table.observe({1, 1}, 7, {}, 0.0);
  table.observe({2, 2}, 7, {}, 0.0);
  table.observe({3, 3}, 8, {}, 0.0);
  table.forget({1, 1}, 9);  // wrong gateway: no-op
  EXPECT_TRUE(table.gatewayOf({1, 1}, 1.0).has_value());
  table.forget({1, 1}, 7);
  EXPECT_FALSE(table.gatewayOf({1, 1}, 1.0).has_value());
  table.forgetById(7);
  EXPECT_FALSE(table.gatewayOf({2, 2}, 1.0).has_value());
  EXPECT_TRUE(table.gatewayOf({3, 3}, 1.0).has_value());
}

TEST(NeighbourGatewayTable, NewObservationReplacesOld) {
  NeighbourGatewayTable table(5.0);
  table.observe({1, 1}, 7, {}, 0.0);
  table.observe({1, 1}, 9, {}, 1.0);  // gateway changed
  EXPECT_EQ(table.gatewayOf({1, 1}, 1.5), std::optional<net::NodeId>(9));
}

TEST(HostTable, TracksStatus) {
  HostTable table(2.5);
  table.markActive(4, 0.0);
  table.markSleeping(5, 0.0);
  EXPECT_TRUE(table.contains(4, 0.0));
  EXPECT_TRUE(table.contains(5, 0.0));
  EXPECT_FALSE(table.contains(6, 0.0));
  EXPECT_FALSE(table.isSleeping(4, 1.0));
  EXPECT_TRUE(table.isSleeping(5, 1.0));
}

TEST(HostTable, StaleActivesArePresumedAsleep) {
  HostTable table(2.5);
  table.markActive(4, 0.0);
  EXPECT_FALSE(table.isSleeping(4, 2.0));
  EXPECT_TRUE(table.isSleeping(4, 3.0));  // stopped HELLOing
  EXPECT_TRUE(table.contains(4, 3.0));    // still a member, though
}

TEST(HostTable, SleepersNeverAgeOut) {
  HostTable table(2.5);
  table.markSleeping(5, 0.0);
  EXPECT_TRUE(table.contains(5, 1000.0));
  EXPECT_TRUE(table.isSleeping(5, 1000.0));
}

TEST(HostTable, ExportImportRoundTrip) {
  HostTable source(2.5);
  source.markActive(4, 0.0);
  source.markSleeping(5, 0.0);
  HostTable target(2.5);
  target.importEntries(source.exportEntries(), 1.0);
  EXPECT_TRUE(target.contains(4, 1.0));
  EXPECT_TRUE(target.isSleeping(5, 1.0));
  EXPECT_FALSE(target.isSleeping(4, 1.0));
}

TEST(HostTable, RemoveAndDemote) {
  HostTable table(2.5);
  table.markActive(4, 0.0);
  table.remove(4);
  EXPECT_FALSE(table.contains(4, 0.0));
  table.markActive(6, 0.0);
  table.demoteStaleActives(5.0);
  EXPECT_TRUE(table.isSleeping(6, 5.0));
}

}  // namespace
}  // namespace ecgrid::protocols
