// Tests for the PHY layer: radio state machine + energy, unit-disk
// channel, collision semantics, NAV, and the RAS paging channel.
#include <gtest/gtest.h>

#include <memory>

#include "energy/battery.hpp"
#include "phy/channel.hpp"
#include "phy/paging.hpp"
#include "phy/radio.hpp"
#include "sim/simulator.hpp"

namespace ecgrid::phy {
namespace {

class StubHeader final : public net::Header {
 public:
  explicit StubHeader(int bytes = 66) : bytes_(bytes) {}
  int bytes() const override { return bytes_; }
  const char* name() const override { return "STUB"; }

 private:
  int bytes_;
};

net::Packet makeFrame(net::NodeId src, net::NodeId dst, int bytes = 66) {
  net::Packet frame;
  frame.macSrc = src;
  frame.macDst = dst;
  frame.header = std::make_shared<StubHeader>(bytes);
  return frame;
}

/// Two-radio rig at a configurable distance.
struct Rig {
  sim::Simulator simulator;
  energy::PowerProfile profile;
  phy::Channel channel{simulator, phy::ChannelConfig{}};
  energy::Battery batteryA{500.0};
  energy::Battery batteryB{500.0};
  Radio a{simulator, batteryA, energy::PowerProfile{}, 0};
  Radio b{simulator, batteryB, energy::PowerProfile{}, 1};

  explicit Rig(double distance = 100.0) {
    a.attachChannel(&channel);
    b.attachChannel(&channel);
    channel.attach(&a, [] { return geo::Vec2{0.0, 0.0}; });
    channel.attach(&b, [distance] { return geo::Vec2{distance, 0.0}; });
  }
};

TEST(Channel, FrameAirtimeIncludesPreamble) {
  sim::Simulator simulator;
  Channel channel(simulator, ChannelConfig{});
  // 546-byte frame at 2 Mbps: 192 µs preamble + 2184 µs payload.
  EXPECT_NEAR(channel.frameAirtime(546), 192e-6 + 546 * 8 / 2e6, 1e-12);
}

TEST(Radio, DeliversUnicastWithinRange) {
  Rig rig(100.0);
  net::Packet received;
  int count = 0;
  rig.b.setFrameCallback([&](const net::Packet& f) {
    received = f;
    ++count;
  });
  rig.a.transmit(makeFrame(0, 1), 1e-3);
  rig.simulator.run(1.0);
  EXPECT_EQ(count, 1);
  EXPECT_EQ(received.macSrc, 0);
  EXPECT_GT(received.uid, 0u);
}

TEST(Radio, NothingBeyondUnitDisk) {
  Rig rig(251.0);
  int count = 0;
  rig.b.setFrameCallback([&](const net::Packet&) { ++count; });
  rig.a.transmit(makeFrame(0, 1), 1e-3);
  rig.simulator.run(1.0);
  EXPECT_EQ(count, 0);
}

TEST(Radio, BroadcastReachesEveryoneInRange) {
  sim::Simulator simulator;
  Channel channel(simulator, ChannelConfig{});
  energy::Battery batteries[3] = {energy::Battery(500.0),
                                  energy::Battery(500.0),
                                  energy::Battery(500.0)};
  std::vector<std::unique_ptr<Radio>> radios;
  int received = 0;
  for (int i = 0; i < 3; ++i) {
    radios.push_back(std::make_unique<Radio>(simulator, batteries[i],
                                             energy::PowerProfile{}, i));
    radios.back()->attachChannel(&channel);
    double x = i * 200.0;  // 0, 200 (in range), 400 (also in range of 200)
    channel.attach(radios.back().get(), [x] { return geo::Vec2{x, 0.0}; });
    radios.back()->setFrameCallback([&](const net::Packet&) { ++received; });
  }
  radios[1]->transmit(makeFrame(1, net::kBroadcastId), 1e-3);
  simulator.run(1.0);
  EXPECT_EQ(received, 2);  // both neighbours of the middle radio
}

TEST(Radio, UnicastForOthersIsNotDeliveredUp) {
  Rig rig(100.0);
  int count = 0;
  rig.b.setFrameCallback([&](const net::Packet&) { ++count; });
  rig.a.transmit(makeFrame(0, 99), 1e-3);  // addressed elsewhere
  rig.simulator.run(1.0);
  EXPECT_EQ(count, 0);
}

TEST(Radio, OverlappingTransmissionsCollide) {
  sim::Simulator simulator;
  Channel channel(simulator, ChannelConfig{});
  energy::Battery b0(500.0), b1(500.0), b2(500.0);
  Radio left(simulator, b0, energy::PowerProfile{}, 0);
  Radio mid(simulator, b1, energy::PowerProfile{}, 1);
  Radio right(simulator, b2, energy::PowerProfile{}, 2);
  for (Radio* r : {&left, &mid, &right}) r->attachChannel(&channel);
  channel.attach(&left, [] { return geo::Vec2{0.0, 0.0}; });
  channel.attach(&mid, [] { return geo::Vec2{240.0, 0.0}; });
  channel.attach(&right, [] { return geo::Vec2{480.0, 0.0}; });
  // left and right are hidden from each other; both transmit to mid.
  int delivered = 0;
  mid.setFrameCallback([&](const net::Packet&) { ++delivered; });
  left.transmit(makeFrame(0, 1), 2e-3);
  simulator.schedule(0.5e-3, [&] { right.transmit(makeFrame(2, 1), 2e-3); });
  simulator.run(1.0);
  EXPECT_EQ(delivered, 0);  // no capture: both corrupted
  EXPECT_EQ(mid.state(), RadioState::kIdle);
}

TEST(Radio, SequentialTransmissionsBothDecode) {
  Rig rig(100.0);
  int delivered = 0;
  rig.b.setFrameCallback([&](const net::Packet&) { ++delivered; });
  rig.a.transmit(makeFrame(0, 1), 1e-3);
  rig.simulator.schedule(2e-3, [&] { rig.a.transmit(makeFrame(0, 1), 1e-3); });
  rig.simulator.run(1.0);
  EXPECT_EQ(delivered, 2);
}

TEST(Radio, SleepingRadioHearsNothing) {
  Rig rig(100.0);
  int delivered = 0;
  rig.b.setFrameCallback([&](const net::Packet&) { ++delivered; });
  rig.b.sleep();
  EXPECT_TRUE(rig.b.sleeping());
  rig.a.transmit(makeFrame(0, 1), 1e-3);
  rig.simulator.run(1.0);
  EXPECT_EQ(delivered, 0);
  rig.b.wake();
  EXPECT_EQ(rig.b.state(), RadioState::kIdle);
}

TEST(Radio, SleepDuringTransmissionIsDeferred) {
  Rig rig(100.0);
  rig.a.transmit(makeFrame(0, 1), 2e-3);
  rig.a.sleep();
  EXPECT_EQ(rig.a.state(), RadioState::kTx);  // still finishing
  rig.simulator.run(1.0);
  EXPECT_TRUE(rig.a.sleeping());
}

TEST(Radio, EnergyAccountingTracksStates) {
  Rig rig(100.0);
  // Idle for 1 s, then sleep for 1 s.
  rig.simulator.schedule(1.0, [&] { rig.b.sleep(); });
  rig.simulator.run(2.0);
  double consumed = rig.batteryB.consumedJ(2.0);
  EXPECT_NEAR(consumed, 0.863 + 0.163, 1e-6);
}

TEST(Radio, TransmissionCostsTxPower) {
  Rig rig(100.0);
  rig.a.transmit(makeFrame(0, 1), 0.5);
  rig.simulator.run(1.0);
  // 0.5 s at tx (1.400+GPS) + 0.5 s idle (0.830+GPS)
  EXPECT_NEAR(rig.batteryA.consumedJ(1.0), 0.5 * 1.433 + 0.5 * 0.863, 1e-6);
}

TEST(Radio, DiesExactlyAtDepletion) {
  sim::Simulator simulator;
  Channel channel(simulator, ChannelConfig{});
  energy::Battery small(0.863);  // exactly 1 s of idle+GPS
  Radio radio(simulator, small, energy::PowerProfile{}, 7);
  radio.attachChannel(&channel);
  channel.attach(&radio, [] { return geo::Vec2{}; });
  sim::Time died = -1.0;
  radio.setDeathCallback([&] { died = simulator.now(); });
  simulator.run(10.0);
  EXPECT_NEAR(died, 1.0, 1e-9);
  EXPECT_TRUE(radio.dead());
  // Dead radios hear nothing and transmit nothing.
  EXPECT_EQ(radio.state(), RadioState::kOff);
}

TEST(Radio, MediumIdleAtCoversReceptionsAndNav) {
  Rig rig(100.0);
  rig.b.setNavGuard(400e-6);
  // a sends a unicast addressed to someone else: b overhears and must
  // reserve the ACK gap (NAV).
  rig.a.transmit(makeFrame(0, 99), 1e-3);
  rig.simulator.schedule(0.5e-3, [&] {
    EXPECT_GT(rig.b.mediumIdleAt(), rig.simulator.now());
    // Reception ends at 1 ms (+prop); NAV extends ~400 µs beyond.
    EXPECT_NEAR(rig.b.mediumIdleAt(), 1e-3 + 400e-6, 1e-5);
  });
  rig.simulator.run(1.0);
}

// --- interference ring --------------------------------------------------

TEST(Radio, InterferenceCorruptsOngoingReception) {
  Rig rig(100.0);
  int delivered = 0;
  rig.b.setFrameCallback([&](const net::Packet&) { ++delivered; });
  rig.a.transmit(makeFrame(0, 1), 2e-3);
  rig.simulator.schedule(0.5e-3, [&] { rig.b.beginInterference(1e-3); });
  rig.simulator.run(1.0);
  EXPECT_EQ(delivered, 0);
}

TEST(Radio, InterferenceCorruptsLaterArrivalsWhileItLasts) {
  Rig rig(100.0);
  int delivered = 0;
  rig.b.setFrameCallback([&](const net::Packet&) { ++delivered; });
  rig.b.beginInterference(5e-3);
  rig.simulator.schedule(1e-3, [&] { rig.a.transmit(makeFrame(0, 1), 1e-3); });
  // A second frame after the interference ends decodes fine.
  rig.simulator.schedule(10e-3,
                         [&] { rig.a.transmit(makeFrame(0, 1), 1e-3); });
  rig.simulator.run(1.0);
  EXPECT_EQ(delivered, 1);
}

TEST(Radio, InterferenceHoldsCarrierSense) {
  Rig rig(100.0);
  rig.b.beginInterference(3e-3);
  EXPECT_GE(rig.b.mediumIdleAt(), 3e-3);
}

TEST(Channel, InterferenceRingReachesPastDecodeRange) {
  sim::Simulator simulator;
  ChannelConfig config;
  config.interferenceRangeMeters = 500.0;
  Channel channel(simulator, config);
  energy::Battery b0(500.0), b1(500.0), b2(500.0);
  Radio tx(simulator, b0, energy::PowerProfile{}, 0);
  Radio nearRx(simulator, b1, energy::PowerProfile{}, 1);
  Radio farRx(simulator, b2, energy::PowerProfile{}, 2);
  for (Radio* r : {&tx, &nearRx, &farRx}) r->attachChannel(&channel);
  channel.attach(&tx, [] { return geo::Vec2{0.0, 0.0}; });
  channel.attach(&nearRx, [] { return geo::Vec2{400.0, 0.0}; });
  channel.attach(&farRx, [] { return geo::Vec2{400.0, 0.0}; });
  // nearRx also has a legitimate sender within decode range.
  energy::Battery b3(500.0);
  Radio legit(simulator, b3, energy::PowerProfile{}, 3);
  legit.attachChannel(&channel);
  channel.attach(&legit, [] { return geo::Vec2{450.0, 0.0}; });

  int delivered = 0;
  nearRx.setFrameCallback([&](const net::Packet&) { ++delivered; });
  // The distant (400 m) transmitter cannot be decoded, but its energy
  // ruins the legitimate 50 m reception that overlaps it.
  tx.transmit(makeFrame(0, net::kBroadcastId), 3e-3);
  simulator.schedule(1e-3, [&] { legit.transmit(makeFrame(3, 1), 1e-3); });
  simulator.run(1.0);
  EXPECT_EQ(delivered, 0);
}

// --- paging -----------------------------------------------------------

struct PagingRig {
  sim::Simulator simulator;
  PagingChannel paging{simulator, PagingConfig{}};
};

TEST(Paging, WakesTargetHostWithinRange) {
  PagingRig rig;
  int pages = 0;
  net::PageSignal last;
  rig.paging.attach(
      5, [] { return geo::Vec2{100.0, 0.0}; },
      [] { return geo::GridCoord{1, 0}; },
      [&](const net::PageSignal& s) {
        ++pages;
        last = s;
      });
  rig.paging.pageHost(9, {0.0, 0.0}, 5);
  rig.simulator.run(1.0);
  EXPECT_EQ(pages, 1);
  EXPECT_EQ(last.kind, net::PageKind::kHost);
  EXPECT_EQ(last.host, 5);
  EXPECT_EQ(last.pagedBy, 9);
}

TEST(Paging, OutOfRangePagesAreLost) {
  PagingRig rig;
  int pages = 0;
  rig.paging.attach(
      5, [] { return geo::Vec2{400.0, 0.0}; },
      [] { return geo::GridCoord{4, 0}; },
      [&](const net::PageSignal&) { ++pages; });
  rig.paging.pageHost(9, {0.0, 0.0}, 5);
  rig.simulator.run(1.0);
  EXPECT_EQ(pages, 0);
}

TEST(Paging, GridPageWakesOnlyThatGrid) {
  PagingRig rig;
  int inGrid = 0;
  int outGrid = 0;
  rig.paging.attach(
      1, [] { return geo::Vec2{50.0, 50.0}; },
      [] { return geo::GridCoord{0, 0}; },
      [&](const net::PageSignal& s) {
        EXPECT_EQ(s.kind, net::PageKind::kGrid);
        EXPECT_EQ(s.grid, (geo::GridCoord{0, 0}));
        ++inGrid;
      });
  rig.paging.attach(
      2, [] { return geo::Vec2{150.0, 50.0}; },
      [] { return geo::GridCoord{1, 0}; },
      [&](const net::PageSignal&) { ++outGrid; });
  rig.paging.pageGrid(9, {60.0, 60.0}, {0, 0});
  rig.simulator.run(1.0);
  EXPECT_EQ(inGrid, 1);
  EXPECT_EQ(outGrid, 0);
}

TEST(Paging, PagerDoesNotPageItself) {
  PagingRig rig;
  int pages = 0;
  rig.paging.attach(
      7, [] { return geo::Vec2{}; }, [] { return geo::GridCoord{0, 0}; },
      [&](const net::PageSignal&) { ++pages; });
  rig.paging.pageGrid(7, {0.0, 0.0}, {0, 0});
  rig.simulator.run(1.0);
  EXPECT_EQ(pages, 0);
}

TEST(Paging, DetachedPagersStaySilent) {
  PagingRig rig;
  int pages = 0;
  std::size_t id = rig.paging.attach(
      5, [] { return geo::Vec2{}; }, [] { return geo::GridCoord{0, 0}; },
      [&](const net::PageSignal&) { ++pages; });
  rig.paging.detach(id);
  rig.paging.pageHost(9, {0.0, 0.0}, 5);
  rig.simulator.run(1.0);
  EXPECT_EQ(pages, 0);
}

TEST(Paging, DeliveryHasConfiguredLatency) {
  PagingRig rig;
  sim::Time deliveredAt = -1.0;
  rig.paging.attach(
      5, [] { return geo::Vec2{}; }, [] { return geo::GridCoord{0, 0}; },
      [&](const net::PageSignal&) { deliveredAt = rig.simulator.now(); });
  rig.paging.pageHost(9, {1.0, 0.0}, 5);
  rig.simulator.run(1.0);
  EXPECT_DOUBLE_EQ(deliveredAt, rig.paging.config().latencySeconds);
}

}  // namespace
}  // namespace ecgrid::phy
