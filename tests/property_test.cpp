// Cross-cutting property and stress tests: conservation laws, lossless
// regimes, and mobility stressors, swept over seeds.
#include <gtest/gtest.h>

#include "harness/scenario.hpp"
#include "stats/packet_accounting.hpp"
#include "test_net.hpp"
#include "traffic/flow_manager.hpp"
#include "mobility/random_walk.hpp"

namespace ecgrid::test {
namespace {

// In a static, collision-quiet ECGRID network, the RAS machinery must be
// perfectly lossless: every packet to a sleeping destination is paged,
// buffered, and delivered.
class StaticLossless : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StaticLossless, EverySinglePacketArrives) {
  TestNet net;
  sim::RngStream rng(GetParam());
  // 12 hosts scattered over a 3x3-cell neighbourhood (all mutually
  // routable through gateways).
  for (int i = 0; i < 12; ++i) {
    net.addStatic(i, {rng.uniform(10.0, 290.0), rng.uniform(10.0, 290.0)});
  }
  net.installEcgridEverywhere();
  int delivered = 0;
  for (auto& node : net.network.nodes()) {
    node->setAppReceiveCallback(
        [&](net::NodeId, const net::DataTag&, int) { ++delivered; });
  }
  net.start(4.0);
  int sent = 0;
  for (int round = 0; round < 30; ++round) {
    net::NodeId src = static_cast<net::NodeId>(rng.uniformInt(0, 11));
    net::NodeId dst = static_cast<net::NodeId>(rng.uniformInt(0, 11));
    if (src == dst) continue;
    net::DataTag tag;
    tag.flowId = static_cast<std::uint64_t>(round);
    tag.sentAt = net.simulator.now();
    net.network.findNode(src)->sendFromApp(dst, 256, tag);
    ++sent;
    net.simulator.run(net.simulator.now() + rng.uniform(0.3, 1.2));
  }
  net.simulator.run(net.simulator.now() + 5.0);
  EXPECT_EQ(delivered, sent);
}

INSTANTIATE_TEST_SUITE_P(Seeds, StaticLossless,
                         ::testing::Values(2u, 17u, 2026u));

// Network-wide energy conservation: at every sample, Σ consumed + Σ
// remaining == n · capacity, and aen is exactly Σ consumed / (n·E₀).
TEST(Conservation, NetworkEnergyLedgerBalances) {
  TestNet net;
  for (int i = 0; i < 10; ++i) {
    net.addStatic(i, {30.0 + 25.0 * i, 40.0 + 15.0 * (i % 3)}, 50.0);
  }
  net.installEcgridEverywhere();
  net.network.start();
  for (int step = 1; step <= 12; ++step) {
    net.simulator.run(step * 5.0);
    double consumed = 0.0;
    double remaining = 0.0;
    for (auto& node : net.network.nodes()) {
      consumed += node->batteryRef().consumedJ(net.simulator.now());
      remaining += node->batteryRef().remainingJ(net.simulator.now());
    }
    EXPECT_NEAR(consumed + remaining, 10 * 50.0, 1e-6);
  }
}

// The radio can never be cheaper than permanent sleep nor dearer than
// permanent transmit: every host's mean draw lies in [sleep+gps, tx+gps].
TEST(Conservation, PowerDrawStaysWithinPhysicalBounds) {
  harness::ScenarioConfig config;
  config.protocol = harness::ProtocolKind::kEcgrid;
  config.hostCount = 30;
  config.duration = 100.0;
  config.flowCount = 2;
  config.packetsPerSecondPerFlow = 5.0;
  config.auditInvariants = true;
  harness::ScenarioResult result = harness::runScenario(config);
  double aen = result.aen.valueAt(100.0);
  double meanW = aen * 500.0 / 100.0;
  EXPECT_GE(meanW, 0.163 - 1e-6);  // sleep + GPS
  EXPECT_LE(meanW, 1.433 + 1e-6);  // tx + GPS
}

// Fast random-walk mobility produces far more grid crossings per second
// than waypoint at the same speed — the protocol machinery (LEAVE,
// newcomer handshakes, handovers) must hold up.
TEST(Stress, RandomWalkChurnStillDelivers) {
  sim::Simulator simulator(5);
  net::Network network(simulator, net::NetworkConfig{});
  mobility::RandomWalkConfig walk;
  walk.speed = 10.0;
  walk.epoch = 8.0;
  auto oracle = [&network](net::NodeId id) -> std::optional<geo::GridCoord> {
    net::Node* node = network.findNode(id);
    if (node == nullptr || !node->alive()) return std::nullopt;
    return node->cell();
  };
  for (int i = 0; i < 50; ++i) {
    net::NodeConfig config;
    config.id = i;
    net::Node& node = network.addNode(
        std::make_unique<mobility::RandomWalk>(
            walk, simulator.rng().stream("walk", i)),
        config);
    core::EcgridConfig protoConfig;
    protoConfig.base.locationHint = oracle;
    node.setProtocol(
        std::make_unique<core::EcgridProtocol>(node, protoConfig));
  }
  stats::PacketAccounting accounting;
  for (std::size_t i = 0; i < network.nodeCount(); ++i) {
    network.node(i).setAppReceiveCallback(
        [&](net::NodeId, const net::DataTag& tag, int) {
          accounting.onReceived(tag, simulator.now());
        });
  }
  traffic::FlowPlan plan;
  plan.flowCount = 2;
  plan.packetsPerSecond = 5.0;
  traffic::FlowManager flows(network, plan, accounting,
                             simulator.rng().stream("flows"));
  network.start();
  simulator.run(120.0);
  EXPECT_GT(accounting.packetsSent(), 1000u);
  // This churn rate (direction changes every ≤8 s at 10 m/s) is an order
  // of magnitude past the paper's workload; the requirement is graceful
  // degradation, not the >99 % of the calm scenarios.
  EXPECT_GT(accounting.deliveryRate(), 0.70)
      << "delivered " << accounting.packetsReceived() << "/"
      << accounting.packetsSent();
}

// Interference-ring runs must not break the protocol logic, only cost
// some retransmissions.
TEST(Stress, SurvivesWideInterferenceRing) {
  harness::ScenarioConfig config;
  config.protocol = harness::ProtocolKind::kEcgrid;
  config.hostCount = 60;
  config.duration = 120.0;
  config.interferenceRangeFactor = 2.0;
  config.auditInvariants = true;
  harness::ScenarioResult result = harness::runScenario(config);
  EXPECT_GT(result.deliveryRate, 0.9);
}

// Determinism must survive the full protocol zoo under churn.
class ChurnDeterminism
    : public ::testing::TestWithParam<harness::ProtocolKind> {};

TEST_P(ChurnDeterminism, TwoRunsIdentical) {
  harness::ScenarioConfig config;
  config.protocol = GetParam();
  config.hostCount = 50;
  config.maxSpeed = 10.0;
  config.duration = 90.0;
  config.seed = 99;
  config.auditInvariants = true;
  harness::ScenarioResult a = harness::runScenario(config);
  harness::ScenarioResult b = harness::runScenario(config);
  EXPECT_EQ(a.eventsExecuted, b.eventsExecuted);
  EXPECT_EQ(a.framesTransmitted, b.framesTransmitted);
  EXPECT_EQ(a.packetsReceived, b.packetsReceived);
  EXPECT_EQ(a.pagesSent, b.pagesSent);
}

INSTANTIATE_TEST_SUITE_P(Protocols, ChurnDeterminism,
                         ::testing::Values(harness::ProtocolKind::kGrid,
                                           harness::ProtocolKind::kEcgrid,
                                           harness::ProtocolKind::kGaf));

}  // namespace
}  // namespace ecgrid::test
