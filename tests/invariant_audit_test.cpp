// Tests for the runtime invariant-audit subsystem (src/check): auditor
// mechanics, every shipped audit both passing healthy state and firing on
// a deliberately injected violation, and the scenario-harness wiring.
#include <gtest/gtest.h>

#include <stdexcept>

#include "check/audits.hpp"
#include "check/invariant_auditor.hpp"
#include "check/network_audits.hpp"
#include "harness/scenario.hpp"
#include "test_net.hpp"

namespace ecgrid::check {
namespace {

// --------------------------------------------------------------------------
// auditor mechanics

TEST(InvariantAuditor, RunsEveryAuditEachSweep) {
  InvariantAuditor auditor(FailMode::kRecord);
  int aRuns = 0;
  int bRuns = 0;
  auditor.add("a", [&](AuditContext&) { ++aRuns; });
  auditor.add("b", [&](AuditContext&) { ++bRuns; });
  auditor.run(1.0);
  auditor.run(2.0);
  EXPECT_EQ(auditor.runs(), 2u);
  EXPECT_EQ(auditor.auditCount(), 2u);
  EXPECT_EQ(aRuns, 2);
  EXPECT_EQ(bRuns, 2);
  EXPECT_TRUE(auditor.violations().empty());
}

TEST(InvariantAuditor, RecordModeCollectsNamedViolations) {
  InvariantAuditor auditor(FailMode::kRecord);
  auditor.add("always-broken",
              [](AuditContext& context) { context.report("the sky fell"); });
  auditor.run(42.0);
  ASSERT_EQ(auditor.violations().size(), 1u);
  EXPECT_EQ(auditor.violations()[0].audit, "always-broken");
  EXPECT_EQ(auditor.violations()[0].detail, "the sky fell");
  EXPECT_DOUBLE_EQ(auditor.violations()[0].when, 42.0);
  auditor.clearViolations();
  EXPECT_TRUE(auditor.violations().empty());
}

TEST(InvariantAuditor, ThrowModeRaisesLogicErrorWithContext) {
  InvariantAuditor auditor(FailMode::kThrow);
  auditor.add("broken", [](AuditContext& context) { context.report("boom"); });
  try {
    auditor.run(7.0);
    FAIL() << "expected std::logic_error";
  } catch (const std::logic_error& e) {
    std::string what = e.what();
    EXPECT_NE(what.find("broken"), std::string::npos);
    EXPECT_NE(what.find("boom"), std::string::npos);
  }
  ASSERT_EQ(auditor.violations().size(), 1u);
}

TEST(InvariantAuditor, RejectsAnonymousOrEmptyAudits) {
  InvariantAuditor auditor;
  EXPECT_THROW(auditor.add("", [](AuditContext&) {}), std::invalid_argument);
  EXPECT_THROW(auditor.add("x", nullptr), std::invalid_argument);
}

// Record-mode auditor exposing one stateful audit via `fn`; the tests
// below drive the audit objects through it at chosen timestamps.
class Probe {
 public:
  explicit Probe(std::function<void(AuditContext&)> fn)
      : auditor_(FailMode::kRecord) {
    auditor_.add("probe", std::move(fn));
  }
  std::size_t violationsAfter(sim::Time now) {
    auditor_.run(now);
    return auditor_.violations().size();
  }
  const std::vector<Violation>& violations() const {
    return auditor_.violations();
  }

 private:
  InvariantAuditor auditor_;
};

// --------------------------------------------------------------------------
// 1. gateway uniqueness

TEST(GatewayUniquenessAudit, AcceptsUniqueGatewaysAndTransientConflicts) {
  GatewayUniquenessAudit audit(/*conflictGrace=*/5.0);
  std::vector<GatewaySighting> sightings;
  Probe probe([&](AuditContext& context) { audit.observe(sightings, context); });

  // Distinct grids: never a conflict.
  sightings = {{{0, 0}, 1, {}}, {{1, 0}, 2, {}}};
  EXPECT_EQ(probe.violationsAfter(0.0), 0u);

  // A split-brain that resolves within the grace window is fine.
  sightings = {{{0, 0}, 1, {}}, {{0, 0}, 2, {}}};
  EXPECT_EQ(probe.violationsAfter(10.0), 0u);
  EXPECT_EQ(probe.violationsAfter(14.0), 0u);
  sightings = {{{0, 0}, 2, {}}};
  EXPECT_EQ(probe.violationsAfter(16.0), 0u);

  // Re-contest restarts the clock.
  sightings = {{{0, 0}, 1, {}}, {{0, 0}, 2, {}}};
  EXPECT_EQ(probe.violationsAfter(20.0), 0u);
}

TEST(GatewayUniquenessAudit, FiresOnPersistentDoubleGateway) {
  GatewayUniquenessAudit audit(/*conflictGrace=*/5.0);
  std::vector<GatewaySighting> sightings = {{{3, 4}, 7, {}}, {{3, 4}, 9, {}}};
  Probe probe([&](AuditContext& context) { audit.observe(sightings, context); });
  EXPECT_EQ(probe.violationsAfter(100.0), 0u);
  ASSERT_EQ(probe.violationsAfter(106.0), 1u);
  EXPECT_NE(probe.violations()[0].detail.find("2 gateways"), std::string::npos);
}

// --------------------------------------------------------------------------
// 2. no TX while sleeping

TEST(SleepTransmitAudit, AcceptsConsistentAndSettlingSleepers) {
  SleepTransmitAudit audit(/*settleGrace=*/1.0);
  std::vector<SleepTxSighting> sightings;
  Probe probe([&](AuditContext& context) { audit.observe(sightings, context); });

  sightings = {
      {0, true, phy::RadioState::kSleep, false},  // properly asleep
      {1, true, phy::RadioState::kTx, true},      // sleep deferred behind TX
      {2, false, phy::RadioState::kTx, false},    // awake host transmitting
      {3, true, phy::RadioState::kOff, false},    // died while asleep
  };
  EXPECT_EQ(probe.violationsAfter(0.0), 0u);

  // Momentarily awake mid-transition (SLEEP notice draining): tolerated…
  sightings = {{4, true, phy::RadioState::kIdle, false}};
  EXPECT_EQ(probe.violationsAfter(5.0), 0u);
  // …because it resolves before the grace elapses.
  sightings = {{4, true, phy::RadioState::kSleep, false}};
  EXPECT_EQ(probe.violationsAfter(5.5), 0u);
  sightings = {{4, true, phy::RadioState::kIdle, false}};
  EXPECT_EQ(probe.violationsAfter(8.0), 0u);
}

TEST(SleepTransmitAudit, FiresWhenSleepingHostKeepsTransmitting) {
  SleepTransmitAudit audit(/*settleGrace=*/1.0);
  std::vector<SleepTxSighting> sightings = {
      {5, true, phy::RadioState::kTx, false}};
  Probe probe([&](AuditContext& context) { audit.observe(sightings, context); });
  EXPECT_EQ(probe.violationsAfter(10.0), 0u);
  ASSERT_EQ(probe.violationsAfter(11.5), 1u);
  EXPECT_NE(probe.violations()[0].detail.find("host 5"), std::string::npos);
}

// --------------------------------------------------------------------------
// 3. battery monotonicity

TEST(BatteryMonotonicityAudit, AcceptsDrainingAndSteadyBatteries) {
  BatteryMonotonicityAudit audit;
  double level = 500.0;
  Probe probe(
      [&](AuditContext& context) { audit.observe(1, level, context); });
  EXPECT_EQ(probe.violationsAfter(0.0), 0u);
  level = 400.0;
  EXPECT_EQ(probe.violationsAfter(1.0), 0u);
  EXPECT_EQ(probe.violationsAfter(2.0), 0u);  // steady is fine
  level = 0.0;
  EXPECT_EQ(probe.violationsAfter(3.0), 0u);
}

TEST(BatteryMonotonicityAudit, FiresWhenEnergyRises) {
  BatteryMonotonicityAudit audit;
  double level = 400.0;
  Probe probe(
      [&](AuditContext& context) { audit.observe(2, level, context); });
  EXPECT_EQ(probe.violationsAfter(0.0), 0u);
  level = 450.0;
  ASSERT_EQ(probe.violationsAfter(1.0), 1u);
  EXPECT_NE(probe.violations()[0].detail.find("rose"), std::string::npos);
}

TEST(BatteryMonotonicityAudit, CatchesInjectedRechargeOnRealNetwork) {
  test::TestNet net;
  for (int i = 0; i < 4; ++i) {
    net.addStatic(i, {20.0 + 10.0 * i, 20.0});
  }
  net.installEcgridEverywhere();

  InvariantAuditor auditor(FailMode::kRecord);
  installStandardAudits(auditor, net.network);
  net.start(5.0);
  auditor.run(net.simulator.now());
  EXPECT_TRUE(auditor.violations().empty());

  // Fabricate the impossible: a host's battery gains energy mid-run.
  net.network.findNode(2)->batteryRef().injectJ(100.0, net.simulator.now());
  auditor.run(net.simulator.now());
  ASSERT_FALSE(auditor.violations().empty());
  EXPECT_EQ(auditor.violations()[0].audit, "battery-monotonicity");
}

// --------------------------------------------------------------------------
// 4. routing-table next-hop liveness

TEST(RouteLivenessAudit, AcceptsHealthyExpiredAndRecentlyDeadRoutes) {
  RouteLivenessAudit audit(/*deadGrace=*/15.0);
  std::vector<RouteSighting> sightings;
  Probe probe([&](AuditContext& context) { audit.observe(sightings, context); });

  RouteSighting live;  // healthy: live entry, live hop
  live.owner = 1;
  live.destination = 9;
  live.nextHop = 2;

  RouteSighting expired = live;  // expired entries may point anywhere
  expired.expired = true;
  expired.nextHopExists = false;

  RouteSighting recentlyDead = live;  // RERR still propagating: tolerated
  recentlyDead.nextHop = 3;
  recentlyDead.nextHopAlive = false;
  recentlyDead.nextHopDeadSince = 95.0;

  RouteSighting endpoint = live;  // no concrete hop recorded
  endpoint.nextHop = net::kBroadcastId;
  endpoint.nextHopExists = false;

  sightings = {live, expired, recentlyDead, endpoint};
  EXPECT_EQ(probe.violationsAfter(100.0), 0u);
}

TEST(RouteLivenessAudit, FiresOnNonexistentNextHop) {
  RouteLivenessAudit audit;
  RouteSighting bogus;
  bogus.owner = 1;
  bogus.destination = 9;
  bogus.nextHop = 999;
  bogus.nextHopExists = false;
  std::vector<RouteSighting> sightings = {bogus};
  Probe probe([&](AuditContext& context) { audit.observe(sightings, context); });
  ASSERT_EQ(probe.violationsAfter(100.0), 1u);
  EXPECT_NE(probe.violations()[0].detail.find("nonexistent"),
            std::string::npos);
}

TEST(RouteLivenessAudit, FiresOnLongDeadNextHop) {
  RouteLivenessAudit audit(/*deadGrace=*/15.0);
  RouteSighting stale;
  stale.owner = 1;
  stale.destination = 9;
  stale.nextHop = 3;
  stale.nextHopAlive = false;
  stale.nextHopDeadSince = 50.0;
  std::vector<RouteSighting> sightings = {stale};
  Probe probe([&](AuditContext& context) { audit.observe(sightings, context); });
  ASSERT_EQ(probe.violationsAfter(100.0), 1u);
  EXPECT_NE(probe.violations()[0].detail.find("died"), std::string::npos);
}

TEST(RouteLivenessAudit, CatchesInjectedBogusRouteOnRealNetwork) {
  test::TestNet net;
  net.addStatic(1, {50.0, 50.0});
  net.addStatic(2, {60.0, 60.0});
  net.installGridEverywhere();

  InvariantAuditor auditor(FailMode::kRecord);
  installStandardAudits(auditor, net.network);
  net.start(5.0);
  auditor.run(net.simulator.now());
  EXPECT_TRUE(auditor.violations().empty());

  // Plant a live route whose next hop does not exist in the network.
  protocols::RouteEntry entry;
  entry.nextGrid = {1, 0};
  entry.destGrid = {2, 0};
  entry.nextHop = 999;
  entry.destSeq = 41;
  net.gridProtocolOf(1).routingEngine().routes().update(77, entry,
                                                        net.simulator.now());
  auditor.run(net.simulator.now());
  ASSERT_FALSE(auditor.violations().empty());
  EXPECT_EQ(auditor.violations()[0].audit, "route-next-hop-liveness");
}

// --------------------------------------------------------------------------
// 5. event-queue time monotonicity

TEST(EventTimeMonotonicityAudit, AcceptsForwardMarchingClock) {
  EventTimeMonotonicityAudit audit;
  sim::Time now = 0.0;
  sim::Time next = 1.0;
  Probe probe(
      [&](AuditContext& context) { audit.observe(now, next, context); });
  EXPECT_EQ(probe.violationsAfter(0.0), 0u);
  now = 1.0;
  next = sim::kTimeNever;  // drained queue is fine
  EXPECT_EQ(probe.violationsAfter(1.0), 0u);
  now = 1.0;  // time may stall between sweeps
  EXPECT_EQ(probe.violationsAfter(1.0), 0u);
}

TEST(EventTimeMonotonicityAudit, FiresOnClockRegression) {
  EventTimeMonotonicityAudit audit;
  sim::Time now = 5.0;
  sim::Time next = 6.0;
  Probe probe(
      [&](AuditContext& context) { audit.observe(now, next, context); });
  EXPECT_EQ(probe.violationsAfter(5.0), 0u);
  now = 4.0;
  ASSERT_EQ(probe.violationsAfter(4.0), 1u);
  EXPECT_NE(probe.violations()[0].detail.find("regressed"), std::string::npos);
}

TEST(EventTimeMonotonicityAudit, FiresOnEventPendingInThePast) {
  EventTimeMonotonicityAudit audit;
  Probe probe([&](AuditContext& context) { audit.observe(10.0, 9.0, context); });
  ASSERT_EQ(probe.violationsAfter(10.0), 1u);
  EXPECT_NE(probe.violations()[0].detail.find("before the clock"),
            std::string::npos);
}

// --------------------------------------------------------------------------
// 6. channel attachment count

TEST(ChannelAttachmentAudit, CatchesInjectedDetachOnRealNetwork) {
  test::TestNet net;
  for (int i = 0; i < 4; ++i) {
    net.addStatic(i, {20.0 + 10.0 * i, 20.0});
  }
  net.installEcgridEverywhere();

  InvariantAuditor auditor(FailMode::kRecord);
  installStandardAudits(auditor, net.network);
  net.start(5.0);
  auditor.run(net.simulator.now());
  EXPECT_TRUE(auditor.violations().empty());

  // Rip a live host's attachment out from under it: the live-attachment
  // count no longer matches the alive-host count.
  net.network.channel().detach(
      net.network.findNode(2)->radio().channelAttachmentId());
  auditor.run(net.simulator.now());
  ASSERT_FALSE(auditor.violations().empty());
  EXPECT_EQ(auditor.violations()[0].audit, "channel-attachment-count");
}

// --------------------------------------------------------------------------
// wiring: standard audits over a live network and the scenario flag

TEST(StandardAudits, HealthyEcgridRunStaysViolationFree) {
  test::TestNet net;
  for (int i = 0; i < 9; ++i) {
    net.addStatic(i, {25.0 + 85.0 * (i % 3), 25.0 + 85.0 * (i / 3)});
  }
  net.installEcgridEverywhere();

  InvariantAuditor auditor(FailMode::kRecord);
  installStandardAudits(auditor, net.network);
  EXPECT_EQ(auditor.auditCount(), 6u);
  net.simulator.setPeriodicHook(
      200, [&] { auditor.run(net.simulator.now()); });
  net.start(60.0);
  EXPECT_GT(auditor.runs(), 10u);
  EXPECT_TRUE(auditor.violations().empty());
}

TEST(StandardAudits, ScenarioFlagSweepsAudits) {
  harness::ScenarioConfig config;
  config.hostCount = 20;
  config.duration = 30.0;
  config.flowCount = 2;
  config.auditInvariants = true;
  config.auditPeriodEvents = 500;
  harness::ScenarioResult result = harness::runScenario(config);
  EXPECT_GT(result.auditRuns, 10u);
}

TEST(StandardAudits, ScenarioFlagOffMeansNoSweeps) {
  harness::ScenarioConfig config;
  config.hostCount = 20;
  config.duration = 30.0;
  config.flowCount = 2;
  config.auditInvariants = false;
  harness::ScenarioResult result = harness::runScenario(config);
  EXPECT_EQ(result.auditRuns, 0u);
}

}  // namespace
}  // namespace ecgrid::check
