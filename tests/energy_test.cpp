// Unit and property tests for the battery and power model.
#include <gtest/gtest.h>

#include <cmath>

#include "energy/battery.hpp"
#include "energy/power_profile.hpp"
#include "sim/rng.hpp"

namespace ecgrid::energy {
namespace {

TEST(PowerProfile, PaperNumbers) {
  PowerProfile p = PowerProfile::paperDefaults();
  EXPECT_DOUBLE_EQ(p.radioPowerW(PowerState::kTx), 1.400);
  EXPECT_DOUBLE_EQ(p.radioPowerW(PowerState::kRx), 1.000);
  EXPECT_DOUBLE_EQ(p.radioPowerW(PowerState::kIdle), 0.830);
  EXPECT_DOUBLE_EQ(p.radioPowerW(PowerState::kSleep), 0.130);
  EXPECT_DOUBLE_EQ(p.gpsW, 0.033);
  EXPECT_DOUBLE_EQ(p.totalPowerW(PowerState::kIdle), 0.863);
  EXPECT_DOUBLE_EQ(p.totalPowerW(PowerState::kOff), 0.0);
}

TEST(Battery, IntegratesConstantDraw) {
  Battery battery(100.0);
  battery.setPowerW(2.0, 0.0);
  EXPECT_DOUBLE_EQ(battery.remainingJ(10.0), 80.0);
  EXPECT_DOUBLE_EQ(battery.consumedJ(10.0), 20.0);
  EXPECT_DOUBLE_EQ(battery.remainingRatio(10.0), 0.8);
}

TEST(Battery, PiecewiseDrawIsExact) {
  Battery battery(100.0);
  battery.setPowerW(1.0, 0.0);
  battery.setPowerW(3.0, 10.0);  // 10 J consumed so far
  battery.setPowerW(0.5, 20.0);  // + 30 J
  EXPECT_DOUBLE_EQ(battery.remainingJ(30.0), 100.0 - 10.0 - 30.0 - 5.0);
}

TEST(Battery, LevelsMatchPaperThresholds) {
  Battery battery(100.0);
  battery.setPowerW(1.0, 0.0);
  EXPECT_EQ(battery.level(0.0), BatteryLevel::kUpper);
  EXPECT_EQ(battery.level(39.9), BatteryLevel::kUpper);   // R ≈ 0.601
  EXPECT_EQ(battery.level(40.0), BatteryLevel::kUpper);   // R = 0.6 inclusive
  EXPECT_EQ(battery.level(40.1), BatteryLevel::kBoundary);
  EXPECT_EQ(battery.level(79.9), BatteryLevel::kBoundary);
  EXPECT_EQ(battery.level(80.1), BatteryLevel::kLower);
  EXPECT_EQ(battery.level(100.0), BatteryLevel::kDead);
  EXPECT_TRUE(battery.isDead(150.0));
}

TEST(Battery, ElectionRankOrder) {
  EXPECT_GT(electionRank(BatteryLevel::kUpper),
            electionRank(BatteryLevel::kBoundary));
  EXPECT_GT(electionRank(BatteryLevel::kBoundary),
            electionRank(BatteryLevel::kLower));
  EXPECT_GT(electionRank(BatteryLevel::kLower),
            electionRank(BatteryLevel::kDead));
}

TEST(Battery, DeathTimeIsPinnedExactly) {
  Battery battery(10.0);
  battery.setPowerW(2.0, 0.0);
  // Look far past depletion: death occurred at t = 5 exactly.
  EXPECT_DOUBLE_EQ(battery.remainingJ(100.0), 0.0);
  EXPECT_DOUBLE_EQ(battery.deathTime(), 5.0);
}

TEST(Battery, TimeToEmpty) {
  Battery battery(10.0);
  battery.setPowerW(2.0, 0.0);
  EXPECT_DOUBLE_EQ(battery.timeToEmpty(0.0), 5.0);
  EXPECT_DOUBLE_EQ(battery.timeToEmpty(2.0), 3.0);
  battery.setPowerW(0.0, 3.0);
  EXPECT_TRUE(std::isinf(battery.timeToEmpty(3.0)));
}

TEST(Battery, InfiniteBatteryNeverDies) {
  Battery battery = Battery::infinite();
  battery.setPowerW(1000.0, 0.0);
  EXPECT_FALSE(battery.isDead(1e9));
  EXPECT_EQ(battery.level(1e9), BatteryLevel::kUpper);
  EXPECT_DOUBLE_EQ(battery.remainingRatio(1e9), 1.0);
  // Consumption is still accounted (Model-1 endpoints are excluded from
  // metering, but the ledger stays meaningful).
  EXPECT_DOUBLE_EQ(battery.consumedJ(10.0), 10000.0);
}

TEST(Battery, RejectsBadInputs) {
  EXPECT_THROW(Battery(0.0), std::invalid_argument);
  EXPECT_THROW(Battery(-1.0), std::invalid_argument);
  Battery battery(10.0);
  EXPECT_THROW(battery.setPowerW(-0.1, 0.0), std::invalid_argument);
}

TEST(Battery, PaperLifetimeSanity) {
  // 500 J at idle+GPS (0.863 W) ⇒ ≈ 579 s — the paper's ≈590 s GRID wall.
  Battery battery(500.0);
  PowerProfile p;
  battery.setPowerW(p.totalPowerW(PowerState::kIdle), 0.0);
  EXPECT_NEAR(battery.timeToEmpty(0.0), 579.4, 0.5);
  // A sleeping host (+GPS) instead lasts ≈ 3067 s.
  Battery sleeper(500.0);
  sleeper.setPowerW(p.totalPowerW(PowerState::kSleep), 0.0);
  EXPECT_NEAR(sleeper.timeToEmpty(0.0), 3067.5, 1.0);
}

// Property: for random piecewise-constant schedules, consumed + remaining
// equals capacity until depletion, and consumption is monotone.
class BatterySchedule : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BatterySchedule, ConservationAndMonotonicity) {
  sim::RngStream rng(GetParam());
  Battery battery(50.0);
  double t = 0.0;
  double lastConsumed = 0.0;
  for (int i = 0; i < 200; ++i) {
    battery.setPowerW(rng.uniform(0.0, 2.0), t);
    t += rng.uniform(0.0, 2.0);
    double consumed = battery.consumedJ(t);
    double remaining = battery.remainingJ(t);
    EXPECT_GE(consumed, lastConsumed);
    lastConsumed = consumed;
    if (!battery.isDead(t)) {
      EXPECT_NEAR(consumed + remaining, 50.0, 1e-9);
    } else {
      EXPECT_DOUBLE_EQ(remaining, 0.0);
      EXPECT_LE(battery.deathTime(), t);
      break;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BatterySchedule,
                         ::testing::Values(3u, 14u, 159u, 2653u, 58979u));

}  // namespace
}  // namespace ecgrid::energy
