// Determinism-analysis layer (ISSUE 4): event-queue tie-break
// perturbation, state digests, and harness::checkDeterminism.
//
// The headline guarantees under test:
//   * replay — the same ScenarioConfig produces the same digest trace;
//   * tie-order stability — randomising the tie-break among equal-time
//     events leaves the final state digest unchanged for every shipped
//     protocol (the simulator's data-race check);
//   * sensitivity — an injected unordered-iteration order dependence IS
//     caught by the perturbation mode, so a green check means something.
#include <gtest/gtest.h>

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "check/determinism.hpp"
#include "harness/determinism.hpp"
#include "harness/scenario.hpp"
#include "sim/simulator.hpp"

namespace ecgrid {
namespace {

// ---------------------------------------------------------------------------
// EventQueue tie-break perturbation semantics
// ---------------------------------------------------------------------------

/// Run `count` events all scheduled at the same instant and return the
/// order their ids executed in.
std::vector<int> sameTimeExecutionOrder(bool perturb, std::uint64_t seed) {
  sim::Simulator simulator(seed);
  if (perturb) simulator.perturbTieBreaks();
  std::vector<int> order;
  constexpr int kCount = 32;
  for (int i = 0; i < kCount; ++i) {
    simulator.schedule(1.0, [i, &order] { order.push_back(i); });
  }
  simulator.run();
  EXPECT_EQ(order.size(), static_cast<std::size_t>(kCount));
  return order;
}

TEST(TieBreakPerturbation, DisabledModeRunsTiesInInsertionOrder) {
  std::vector<int> order = sameTimeExecutionOrder(false, 1);
  for (int i = 0; i < static_cast<int>(order.size()); ++i) {
    EXPECT_EQ(order[i], i);
  }
}

TEST(TieBreakPerturbation, PerturbedModeShufflesSameTimeEvents) {
  std::vector<int> insertion = sameTimeExecutionOrder(false, 1);
  std::vector<int> shuffled = sameTimeExecutionOrder(true, 1);
  // Same event set…
  std::vector<int> sorted = shuffled;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, insertion);
  // …in a different order (P[identity shuffle] = 1/32! ≈ 0).
  EXPECT_NE(shuffled, insertion);
}

TEST(TieBreakPerturbation, PerturbedRunIsItselfReproducible) {
  EXPECT_EQ(sameTimeExecutionOrder(true, 9), sameTimeExecutionOrder(true, 9));
  // A different master seed shuffles differently.
  EXPECT_NE(sameTimeExecutionOrder(true, 9), sameTimeExecutionOrder(true, 10));
}

TEST(TieBreakPerturbation, TimeOrderStillDominatesTieKeys) {
  sim::Simulator simulator(3);
  simulator.perturbTieBreaks();
  std::vector<int> order;
  // Interleave three distinct times; only same-time pairs may reorder.
  for (int i = 0; i < 30; ++i) {
    const double when = 1.0 + static_cast<double>(i % 3);
    simulator.schedule(when, [i, &order] { order.push_back(i); });
  }
  simulator.run();
  ASSERT_EQ(order.size(), 30u);
  for (std::size_t k = 1; k < order.size(); ++k) {
    EXPECT_LE(order[k - 1] % 3, order[k] % 3) << "time ordering violated";
  }
}

TEST(TieBreakPerturbation, CancellationStillWorksWhilePerturbed) {
  sim::Simulator simulator(4);
  simulator.perturbTieBreaks();
  int fired = 0;
  std::vector<sim::EventHandle> handles;
  handles.reserve(16);
  for (int i = 0; i < 16; ++i) {
    handles.push_back(simulator.schedule(1.0, [&fired] { ++fired; }));
  }
  for (int i = 0; i < 16; i += 2) handles[i].cancel();
  simulator.run();
  EXPECT_EQ(fired, 8);
}

// ---------------------------------------------------------------------------
// Sensitivity: an injected order dependence must be caught
// ---------------------------------------------------------------------------

/// Worst-case hash: every key lands in one bucket, so the container's
/// iteration order is its insertion order reversed — exactly the
/// hash-order leakage ecgrid_lint's unordered-iteration rule exists to
/// keep out of event-scheduling code.
struct CollidingHash {
  std::size_t operator()(int) const { return 0; }
};

/// Deliberately order-dependent component: same-instant events insert
/// into an unordered container and the "result" is a fold over its
/// iteration order. Returns the digest of that fold.
// ecgrid-lint fixtures live in tests/lint/; this inline injection is the
// runtime counterpart the perturbation harness must flag.
std::uint64_t orderDependentDigest(bool perturb) {
  sim::Simulator simulator(11);
  if (perturb) simulator.perturbTieBreaks();
  std::unordered_map<int, int, CollidingHash> sightings;
  for (int i = 0; i < 24; ++i) {
    simulator.schedule(5.0, [i, &sightings] {
      sightings.emplace(i, i);  // insertion order == execution order
    });
  }
  simulator.run();
  check::Fnv1a h;
  // The order dependence below is this test's entire point.
  // ecgrid-lint: allow(unordered-iteration)
  for (const auto& [id, value] : sightings) {  // hash-order iteration
    h.mixI64(id);
    h.mixI64(value);
  }
  return h.value();
}

TEST(TieBreakPerturbation, CatchesInjectedUnorderedIterationDependence) {
  const std::uint64_t reference = orderDependentDigest(false);
  // Replay of the unperturbed run is still exact…
  EXPECT_EQ(reference, orderDependentDigest(false));
  // …but the perturbed tie order changes the insertion order and with it
  // the hash-order fold: the divergence the harness exists to detect.
  EXPECT_NE(reference, orderDependentDigest(true));
}

// ---------------------------------------------------------------------------
// Full-scenario replay + tie-order checks (GRID / ECGRID / GAF / faulted)
// ---------------------------------------------------------------------------

harness::ScenarioConfig checkBase() {
  harness::ScenarioConfig config;
  // Horizon-capped like the CI bench smokes: checkDeterminism runs the
  // scenario three times.
  config.hostCount = 30;
  config.flowCount = 2;
  config.packetsPerSecondPerFlow = 4.0;
  config.duration = 60.0;
  config.seed = 21;
  config.digestEveryEvents = 1000;
  return config;
}

class DeterminismCheck
    : public ::testing::TestWithParam<harness::ProtocolKind> {};

TEST_P(DeterminismCheck, ReplayAndTieOrderStable) {
  harness::ScenarioConfig config = checkBase();
  config.protocol = GetParam();
  harness::DeterminismReport report = harness::checkDeterminism(config);
  EXPECT_TRUE(report.replayIdentical) << report.divergence;
  EXPECT_TRUE(report.tieOrderStable) << report.divergence;
  EXPECT_TRUE(report.passed());
  EXPECT_GT(report.samplesCompared, 10u);
  EXPECT_TRUE(report.divergence.empty()) << report.divergence;
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, DeterminismCheck,
                         ::testing::Values(harness::ProtocolKind::kGrid,
                                           harness::ProtocolKind::kEcgrid,
                                           harness::ProtocolKind::kGaf));

TEST(DeterminismCheckFaulted, ReplayAndTieOrderStableUnderFaults) {
  harness::ScenarioConfig config = checkBase();
  config.protocol = harness::ProtocolKind::kEcgrid;
  config.fault.channel.kind = fault::ChannelErrorKind::kIid;
  config.fault.channel.lossProbability = 0.05;
  config.fault.hosts.crashes.push_back({4, 10.0, 30.0});
  config.fault.paging.lossProbability = 0.05;
  harness::DeterminismReport report = harness::checkDeterminism(config);
  EXPECT_TRUE(report.passed()) << report.divergence;
}

TEST(DeterminismCheck, RejectsPrePerturbedConfig) {
  harness::ScenarioConfig config = checkBase();
  config.perturbTieBreak = true;
  EXPECT_THROW(harness::checkDeterminism(config), std::invalid_argument);
}

TEST(DeterminismCheck, DigestTraceIsOffByDefault) {
  harness::ScenarioConfig config = checkBase();
  config.digestEveryEvents = 0;
  config.duration = 10.0;
  harness::ScenarioResult result = harness::runScenario(config);
  EXPECT_TRUE(result.digestTrace.empty());
}

TEST(DeterminismCheck, DigestTraceEndsWithClosingSample) {
  harness::ScenarioConfig config = checkBase();
  config.duration = 10.0;
  harness::ScenarioResult result = harness::runScenario(config);
  ASSERT_FALSE(result.digestTrace.empty());
  EXPECT_EQ(result.digestTrace.back().eventsExecuted, result.eventsExecuted);
  EXPECT_DOUBLE_EQ(result.digestTrace.back().at, config.duration);
}

// An inert digest hook must not change the simulation itself: the run's
// observable results are identical with and without sampling. (The
// digest is a pure observer — batteries are peeked, not advanced, so
// sampling leaves no floating-point trace in the run.)
TEST(DeterminismCheck, DigestSamplingDoesNotPerturbTheRun) {
  harness::ScenarioConfig config = checkBase();
  config.duration = 30.0;
  config.digestEveryEvents = 0;
  harness::ScenarioResult plain = harness::runScenario(config);
  config.digestEveryEvents = 500;
  harness::ScenarioResult sampled = harness::runScenario(config);
  EXPECT_EQ(plain.eventsExecuted, sampled.eventsExecuted);
  EXPECT_EQ(plain.packetsReceived, sampled.packetsReceived);
  EXPECT_EQ(plain.framesTransmitted, sampled.framesTransmitted);
  EXPECT_EQ(plain.macFramesSent, sampled.macFramesSent);
}

}  // namespace
}  // namespace ecgrid
