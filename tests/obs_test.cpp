// Observability layer (src/obs): MetricsRegistry semantics, EventTracer
// output and span pairing, SimProfiler attribution, the null-safe inert
// helpers, and — the load-bearing guarantee — the determinism gate:
// enabling metrics, tracing, and profiling leaves a scenario's replay
// digest trace byte-identical to a bare run.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "harness/scenario.hpp"
#include "obs/metrics.hpp"
#include "obs/observability.hpp"
#include "obs/profiler.hpp"
#include "obs/trace.hpp"
#include "sim/simulator.hpp"

namespace ecgrid {
namespace {

std::string tempPath(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

std::vector<std::string> readLines(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

// ---------------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------------

TEST(MetricsRegistry, CounterFindOrCreateSharesOneCell) {
  obs::MetricsRegistry registry;
  obs::Counter a = registry.counter("mac.frames_sent");
  obs::Counter b = registry.counter("mac.frames_sent");
  a.add();
  b.add(4);
  EXPECT_EQ(a.value(), 5u);
  EXPECT_EQ(b.value(), 5u);
  EXPECT_EQ(registry.instrumentCount(), 1u);
}

TEST(MetricsRegistry, GaugeIsLastWriteWins) {
  obs::MetricsRegistry registry;
  obs::Gauge g = registry.gauge("queue.depth");
  g.set(3.0);
  g.set(7.5);
  EXPECT_DOUBLE_EQ(g.value(), 7.5);
  EXPECT_DOUBLE_EQ(registry.snapshot().at("queue.depth"), 7.5);
}

TEST(MetricsRegistry, RejectsKindCollisionsAndBadNames) {
  obs::MetricsRegistry registry;
  registry.counter("x.count");
  EXPECT_THROW(registry.gauge("x.count"), std::invalid_argument);
  EXPECT_THROW(registry.histogram("x.count", {1.0}), std::invalid_argument);
  EXPECT_THROW(registry.counter(""), std::invalid_argument);
  EXPECT_THROW(registry.counter("has space"), std::invalid_argument);
  EXPECT_THROW(registry.counter("has\"quote"), std::invalid_argument);
}

TEST(MetricsRegistry, HistogramRequiresAscendingAndIdenticalEdges) {
  obs::MetricsRegistry registry;
  EXPECT_THROW(registry.histogram("h", {}), std::invalid_argument);
  EXPECT_THROW(registry.histogram("h", {2.0, 1.0}), std::invalid_argument);
  registry.histogram("h", {1.0, 2.0});
  EXPECT_NO_THROW(registry.histogram("h", {1.0, 2.0}));
  EXPECT_THROW(registry.histogram("h", {1.0, 3.0}), std::invalid_argument);
}

TEST(MetricsRegistry, HistogramSnapshotExpandsBinsAndPercentiles) {
  obs::MetricsRegistry registry;
  obs::Histogram h = registry.histogram("lat", {1.0, 2.0, 4.0});
  for (double v : {0.5, 0.5, 1.5, 3.0, 10.0}) h.observe(v);
  obs::MetricsSnapshot snap = registry.snapshot();
  EXPECT_DOUBLE_EQ(snap.at("lat.count"), 5.0);
  EXPECT_DOUBLE_EQ(snap.at("lat.sum"), 15.5);
  EXPECT_DOUBLE_EQ(snap.at("lat.mean"), 3.1);
  EXPECT_DOUBLE_EQ(snap.at("lat.min"), 0.5);
  EXPECT_DOUBLE_EQ(snap.at("lat.max"), 10.0);
  // Cumulative bucket counts, Prometheus-style.
  EXPECT_DOUBLE_EQ(snap.at("lat.le_1"), 2.0);
  EXPECT_DOUBLE_EQ(snap.at("lat.le_2"), 3.0);
  EXPECT_DOUBLE_EQ(snap.at("lat.le_4"), 4.0);
  EXPECT_DOUBLE_EQ(snap.at("lat.le_inf"), 5.0);
  // Percentiles come interpolated and clamped to the observed range.
  EXPECT_GT(snap.at("lat.p50"), 0.0);
  EXPECT_LE(snap.at("lat.p50"), snap.at("lat.p95"));
  EXPECT_LE(snap.at("lat.p95"), snap.at("lat.p99"));
  EXPECT_LE(snap.at("lat.p99"), 10.0);
}

TEST(MetricsRegistry, HistogramEdgeFactories) {
  std::vector<double> linear = obs::Histogram::linearEdges(0.0, 1.0, 4);
  ASSERT_EQ(linear.size(), 4u);
  EXPECT_DOUBLE_EQ(linear[0], 0.25);
  EXPECT_DOUBLE_EQ(linear[3], 1.0);
  std::vector<double> expo = obs::Histogram::exponentialEdges(1.0, 2.0, 3);
  ASSERT_EQ(expo.size(), 3u);
  EXPECT_DOUBLE_EQ(expo[2], 4.0);
}

TEST(MetricsRegistry, InertHandlesAreSafeNoOps) {
  obs::Counter counter;
  obs::Gauge gauge;
  obs::Histogram histogram;
  counter.add(10);
  gauge.set(1.0);
  histogram.observe(2.0);
  EXPECT_EQ(counter.value(), 0u);
  EXPECT_DOUBLE_EQ(gauge.value(), 0.0);
  EXPECT_EQ(histogram.count(), 0u);
  EXPECT_DOUBLE_EQ(histogram.percentile(50.0), 0.0);
}

TEST(ObsHelpers, ReturnInertHandlesWithoutAHub) {
  sim::Simulator simulator(1);
  obs::Counter counter = obs::counter(simulator, "a.b");
  counter.add();
  EXPECT_EQ(counter.value(), 0u);
  EXPECT_EQ(obs::tracer(simulator), nullptr);
  EXPECT_EQ(obs::of(simulator), nullptr);
}

TEST(ObsHelpers, ResolveAgainstTheInstalledHub) {
  sim::Simulator simulator(1);
  obs::Observability hub(simulator);
  obs::Counter viaSim = obs::counter(simulator, "a.b");
  viaSim.add(3);
  EXPECT_EQ(hub.metrics().counter("a.b").value(), 3u);
  EXPECT_EQ(obs::of(simulator), &hub);
}

// ---------------------------------------------------------------------------
// EventTracer
// ---------------------------------------------------------------------------

TEST(EventTracer, WritesHeaderSpansAndInstants) {
  sim::Simulator simulator(1);
  std::string path = tempPath("ecgrid_obs_trace.jsonl");
  {
    obs::EventTracer tracer(simulator, path, {{"protocol", "ECGRID"}});
    simulator.schedule(1.5, [&] {
      tracer.begin("pkt", "flow", 42, 7, {{"dst", 19}, {"bytes", 512}});
      tracer.instant("mac", "drop", 7,
                     {{"reason", "retry_limit"}, {"delay_s", 0.25}});
    });
    simulator.schedule(2.5, [&] { tracer.end("pkt", "flow", 42, 9); });
    simulator.run();
    EXPECT_EQ(tracer.eventsWritten(), 3u);
    tracer.flush();
  }
  std::vector<std::string> lines = readLines(path);
  ASSERT_EQ(lines.size(), 4u);
  EXPECT_NE(lines[0].find("\"schema\":\"ecgrid-events\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"version\":1"), std::string::npos);
  EXPECT_NE(lines[0].find("\"protocol\":\"ECGRID\""), std::string::npos);
  EXPECT_NE(lines[1].find("\"t\":1.500000000"), std::string::npos);
  EXPECT_NE(lines[1].find("\"ph\":\"b\""), std::string::npos);
  EXPECT_NE(lines[1].find("\"id\":42"), std::string::npos);
  EXPECT_NE(lines[1].find("\"args\":{\"dst\":19,\"bytes\":512}"),
            std::string::npos);
  EXPECT_NE(lines[2].find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(lines[2].find("\"reason\":\"retry_limit\""), std::string::npos);
  EXPECT_NE(lines[2].find("\"delay_s\":0.25"), std::string::npos);
  EXPECT_NE(lines[3].find("\"ph\":\"e\""), std::string::npos);
  EXPECT_NE(lines[3].find("\"node\":9"), std::string::npos);
  std::filesystem::remove(path);
}

TEST(EventTracer, ThrowsWhenFileCannotOpen) {
  sim::Simulator simulator(1);
  EXPECT_THROW(
      obs::EventTracer tracer(simulator, "/nonexistent-dir/trace.jsonl"),
      std::invalid_argument);
}

// Every "e" in a full scenario trace must close an open (cat, id) span —
// the invariant tools/trace_check.py enforces, checked here natively so
// the C++ suite catches a pairing regression without Python in the loop.
TEST(EventTracer, ScenarioTraceKeepsSpansPaired) {
  std::string path = tempPath("ecgrid_obs_pairing.jsonl");
  harness::ScenarioConfig config;
  config.hostCount = 30;
  config.flowCount = 2;
  config.packetsPerSecondPerFlow = 4.0;
  config.duration = 40.0;
  config.seed = 5;
  config.eventTracePath = path;
  harness::ScenarioResult result = harness::runScenario(config);
  EXPECT_GT(result.traceEventsWritten, 100u);

  std::vector<std::string> lines = readLines(path);
  ASSERT_EQ(lines.size(), result.traceEventsWritten + 1);
  std::map<std::pair<std::string, std::string>, int> open;
  int begins = 0;
  int ends = 0;
  for (std::size_t i = 1; i < lines.size(); ++i) {
    const std::string& line = lines[i];
    auto field = [&line](const char* key) {
      std::size_t at = line.find(key);
      EXPECT_NE(at, std::string::npos) << line;
      at += std::string(key).size();
      return line.substr(at, line.find_first_of(",}", at) - at);
    };
    std::string phase = field("\"ph\":\"");
    phase = phase.substr(0, phase.find('"'));
    if (phase == "i") continue;
    auto key = std::make_pair(field("\"cat\":\""), field("\"id\":"));
    if (phase == "b") {
      ++begins;
      ++open[key];
    } else {
      ASSERT_EQ(phase, "e") << line;
      ++ends;
      ASSERT_GT(open[key], 0) << "unmatched end: " << line;
      --open[key];
    }
  }
  EXPECT_GT(begins, 0);
  EXPECT_GT(ends, 0);
  EXPECT_GE(begins, ends);  // open spans at the horizon are legal
  std::filesystem::remove(path);
}

// ---------------------------------------------------------------------------
// SimProfiler
// ---------------------------------------------------------------------------

TEST(SimProfiler, AttributesEventsToScheduleLabels) {
  sim::Simulator simulator(1);
  obs::Observability hub(simulator);
  hub.enableProfiler(/*queueSampleEveryEvents=*/2);
  for (int i = 0; i < 6; ++i) {
    simulator.schedule(1.0 + i, [] {}, "test/tick");
  }
  simulator.schedule(10.0, [] {}, "test/other");
  simulator.schedule(11.0, [] {});  // unlabeled
  simulator.run();

  obs::SimProfiler* profiler = hub.profiler();
  ASSERT_NE(profiler, nullptr);
  EXPECT_EQ(profiler->eventsObserved(), 8u);
  auto byLabel = profiler->byLabel();
  EXPECT_EQ(byLabel.at("test/tick").count, 6u);
  EXPECT_EQ(byLabel.at("test/other").count, 1u);
  ASSERT_TRUE(byLabel.count("unlabeled"));
  EXPECT_EQ(byLabel.at("unlabeled").count, 1u);
  EXPECT_GE(profiler->totalWallSeconds(), 0.0);
  // Cadence 2 over 8 events -> 4 queue-depth samples.
  EXPECT_EQ(profiler->queueDepthSamples().size(), 4u);

  obs::MetricsRegistry registry;
  profiler->mergeInto(registry);
  obs::MetricsSnapshot snap = registry.snapshot();
  EXPECT_DOUBLE_EQ(snap.at("profile.events.test.tick.count"), 6.0);
  EXPECT_DOUBLE_EQ(snap.at("profile.events_total"), 8.0);
  EXPECT_GE(snap.at("profile.wall_s_total"), 0.0);
}

// ---------------------------------------------------------------------------
// Harness integration + the determinism gate
// ---------------------------------------------------------------------------

harness::ScenarioConfig gateBase() {
  harness::ScenarioConfig config;
  config.hostCount = 30;
  config.flowCount = 2;
  config.packetsPerSecondPerFlow = 4.0;
  config.duration = 60.0;
  config.seed = 21;
  config.digestEveryEvents = 1000;
  return config;
}

TEST(ScenarioMetrics, SnapshotCoversEveryLayer) {
  harness::ScenarioConfig config = gateBase();
  config.digestEveryEvents = 0;
  harness::ScenarioResult result = harness::runScenario(config);
  const obs::MetricsSnapshot& m = result.metrics;
  // One representative name per instrumented layer.
  EXPECT_GT(m.at("phy.frames_transmitted"), 0.0);
  EXPECT_GT(m.at("mac.frames_sent"), 0.0);
  EXPECT_GT(m.at("routing.data_forwarded"), 0.0);
  EXPECT_GT(m.at("grid.elections.started"), 0.0);
  EXPECT_GT(m.at("ecgrid.sleeps"), 0.0);
  EXPECT_GT(m.at("traffic.packets_sent"), 0.0);
  // The e2e latency histogram mirrors the raw latency vector, and its
  // bench-facing p99 matches the exact percentile within bin resolution.
  EXPECT_DOUBLE_EQ(m.at("e2e.latency_s.count"),
                   static_cast<double>(result.latencies.size()));
  EXPECT_GT(result.p99LatencySeconds, 0.0);
  // Registry counters agree with the legacy result fields.
  EXPECT_DOUBLE_EQ(m.at("mac.frames_sent"),
                   static_cast<double>(result.macFramesSent));
  EXPECT_DOUBLE_EQ(m.at("traffic.packets_sent"),
                   static_cast<double>(result.packetsSent));
  EXPECT_DOUBLE_EQ(m.at("traffic.packets_received"),
                   static_cast<double>(result.packetsReceived));
  // Profiling was off: no wall-clock-derived entries in the snapshot.
  for (const auto& [name, value] : m) {
    EXPECT_NE(name.rfind("profile.", 0), 0u) << name;
  }
}

TEST(ScenarioMetrics, ProfiledRunReportsDispatchAndQueueDepth) {
  harness::ScenarioConfig config = gateBase();
  config.digestEveryEvents = 0;
  config.duration = 30.0;
  config.profileSimulator = true;
  config.profileQueueSampleEvents = 512;
  harness::ScenarioResult result = harness::runScenario(config);
  EXPECT_DOUBLE_EQ(result.metrics.at("profile.events_total"),
                   static_cast<double>(result.eventsExecuted));
  EXPECT_GT(result.metrics.at("profile.events.mac.access.count"), 0.0);
  EXPECT_FALSE(result.queueDepthSamples.empty());
}

// The gate: metrics + tracing + profiling enabled must replay to the
// exact digest trace of a bare run. Observability observes; it never
// draws RNG, schedules, or reorders — this is the PR's core invariant.
TEST(ObservabilityDeterminismGate, TracingAndProfilingLeaveDigestsIdentical) {
  harness::ScenarioResult plain = harness::runScenario(gateBase());

  harness::ScenarioConfig instrumented = gateBase();
  instrumented.eventTracePath = tempPath("ecgrid_obs_gate.jsonl");
  instrumented.profileSimulator = true;
  harness::ScenarioResult traced = harness::runScenario(instrumented);
  EXPECT_GT(traced.traceEventsWritten, 0u);

  ASSERT_FALSE(plain.digestTrace.empty());
  ASSERT_EQ(plain.digestTrace.size(), traced.digestTrace.size());
  for (std::size_t i = 0; i < plain.digestTrace.size(); ++i) {
    EXPECT_EQ(plain.digestTrace[i].digest, traced.digestTrace[i].digest)
        << "digest diverged at sample " << i << " (t="
        << plain.digestTrace[i].at << ")";
    EXPECT_EQ(plain.digestTrace[i].eventsExecuted,
              traced.digestTrace[i].eventsExecuted);
  }
  EXPECT_EQ(plain.eventsExecuted, traced.eventsExecuted);
  EXPECT_EQ(plain.packetsReceived, traced.packetsReceived);
  std::filesystem::remove(instrumented.eventTracePath);
}

// Two identical instrumented runs also produce byte-identical trace files
// (sim-time stamps, no wall-clock leakage into the JSONL).
TEST(ObservabilityDeterminismGate, TraceFilesReplayByteIdentical) {
  harness::ScenarioConfig config = gateBase();
  config.digestEveryEvents = 0;
  config.duration = 30.0;
  config.eventTracePath = tempPath("ecgrid_obs_replay_a.jsonl");
  harness::runScenario(config);
  std::string pathA = config.eventTracePath;
  config.eventTracePath = tempPath("ecgrid_obs_replay_b.jsonl");
  harness::runScenario(config);

  std::vector<std::string> a = readLines(pathA);
  std::vector<std::string> b = readLines(config.eventTracePath);
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, b);
  std::filesystem::remove(pathA);
  std::filesystem::remove(config.eventTracePath);
}

}  // namespace
}  // namespace ecgrid
