// Fault-injection subsystem tests: error-model statistics against the
// analytic Gilbert–Elliott values, the zero-fault byte-identity guarantee,
// crash/restart semantics at the node level, deterministic fault runs
// through the scenario harness, and the proximity-gated gateway audit.
#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <vector>

#include "check/audits.hpp"
#include "check/invariant_auditor.hpp"
#include "fault/error_model.hpp"
#include "fault/fault_injector.hpp"
#include "fault/fault_plan.hpp"
#include "harness/scenario.hpp"
#include "test_net.hpp"

namespace ecgrid {
namespace {

// --------------------------------------------------------------------------
// FaultPlan value semantics

TEST(FaultPlan, EmptyUntilAnyFaultIsArmed) {
  fault::FaultPlan plan;
  EXPECT_TRUE(plan.empty());

  plan.channel.kind = fault::ChannelErrorKind::kIid;
  EXPECT_FALSE(plan.empty());

  plan = {};
  plan.hosts.crashes.push_back({3, 10.0});
  EXPECT_FALSE(plan.empty());

  plan = {};
  plan.hosts.crashRatePerHostPerSecond = 1e-3;
  EXPECT_FALSE(plan.empty());

  plan = {};
  plan.gps.offsetStddevMeters = 5.0;
  EXPECT_FALSE(plan.empty());

  plan = {};
  plan.gps.driftStddevMeters = 1.0;
  EXPECT_FALSE(plan.empty());

  plan = {};
  plan.paging.lossProbability = 0.1;
  EXPECT_FALSE(plan.empty());
}

// --------------------------------------------------------------------------
// Error models, driven directly against the analytic values

TEST(GilbertElliott, HelperHitsTargetStationaryLoss) {
  fault::ChannelFault ch;
  ch.kind = fault::ChannelErrorKind::kGilbertElliott;
  ch.pBadToGood = 0.05;  // mean burst = 20 frames
  ch.pGoodToBad = fault::gilbertElliottPGoodToBad(0.2, ch.pBadToGood);
  fault::GilbertElliottModel model(ch, sim::RngStream(1));
  EXPECT_NEAR(model.stationaryLoss(), 0.2, 1e-12);
  EXPECT_DOUBLE_EQ(model.meanBadSojournFrames(), 20.0);

  EXPECT_THROW(fault::gilbertElliottPGoodToBad(1.0, 0.05),
               std::invalid_argument);
  EXPECT_THROW(fault::gilbertElliottPGoodToBad(0.2, 0.0),
               std::invalid_argument);
}

TEST(GilbertElliott, EmpiricalLossAndBurstLengthMatchAnalytic) {
  // lossGood = 0, lossBad = 1 (the defaults), so a run of consecutive
  // drops IS one bad-state sojourn: both the loss rate and the mean burst
  // length are checkable against closed form.
  fault::ChannelFault ch;
  ch.kind = fault::ChannelErrorKind::kGilbertElliott;
  ch.pBadToGood = 0.05;
  ch.pGoodToBad = fault::gilbertElliottPGoodToBad(0.2, ch.pBadToGood);
  fault::GilbertElliottModel model(ch, sim::RngStream(42));

  const int kFrames = 200000;
  int drops = 0, bursts = 0;
  bool prevDrop = false;
  for (int i = 0; i < kFrames; ++i) {
    bool drop = model.dropDelivery(/*sender=*/1, /*receiver=*/2);
    if (drop) {
      ++drops;
      if (!prevDrop) ++bursts;
    }
    prevDrop = drop;
  }
  double empiricalLoss = static_cast<double>(drops) / kFrames;
  EXPECT_NEAR(empiricalLoss, model.stationaryLoss(), 0.02);
  ASSERT_GT(bursts, 0);
  double meanBurst = static_cast<double>(drops) / bursts;
  EXPECT_NEAR(meanBurst, model.meanBadSojournFrames(), 2.0);
}

TEST(GilbertElliott, KeepsIndependentChainsPerReceiver) {
  // A receiver that never takes frames while another is mid-burst must
  // still start Good: the first frame each receiver ever sees can only
  // drop with lossGood (= 0 here), whatever the other chains are doing.
  fault::ChannelFault ch;
  ch.kind = fault::ChannelErrorKind::kGilbertElliott;
  ch.pGoodToBad = 1.0;  // enter the bad state immediately…
  ch.pBadToGood = 1e-9;  // …and essentially never leave
  fault::GilbertElliottModel model(ch, sim::RngStream(3));
  EXPECT_FALSE(model.dropDelivery(1, 7));  // receiver 7: first frame, Good
  EXPECT_TRUE(model.dropDelivery(1, 7));   // now stuck Bad
  EXPECT_FALSE(model.dropDelivery(1, 8));  // fresh receiver still starts Good
  EXPECT_TRUE(model.dropDelivery(1, 7));
}

TEST(IidLossModel, EmpiricalLossMatchesProbability) {
  fault::IidLossModel model(0.3, sim::RngStream(7));
  const int kFrames = 100000;
  int drops = 0;
  for (int i = 0; i < kFrames; ++i) {
    if (model.dropDelivery(1, 2)) ++drops;
  }
  EXPECT_NEAR(static_cast<double>(drops) / kFrames, 0.3, 0.01);
  EXPECT_THROW(fault::IidLossModel(1.5, sim::RngStream(7)),
               std::invalid_argument);
}

// --------------------------------------------------------------------------
// Node-level crash/restart semantics

/// Payload-only header for driving the MAC directly.
class StubHeader final : public net::Header {
 public:
  int bytes() const override { return 66; }
  const char* name() const override { return "STUB"; }
};

/// Do-nothing protocol that records every onCellChanged with its time.
/// Doubles as the trivial factory product for restart-path tests.
class CellChangeRecorder final : public net::RoutingProtocol {
 public:
  CellChangeRecorder(
      net::HostEnv& env,
      std::vector<std::pair<sim::Time, geo::GridCoord>>* log = nullptr)
      : env_(env), log_(log) {}
  const char* name() const override { return "recorder"; }
  void start() override {}
  void onFrame(const net::Packet&) override {}
  void sendData(net::NodeId, int, const net::DataTag&) override {}
  void onPaged(const net::PageSignal&) override {}
  void onCellChanged(const geo::GridCoord&,
                     const geo::GridCoord& to) override {
    if (log_ != nullptr) log_->emplace_back(env_.simulator().now(), to);
  }
  void onShutdown() override {}

 private:
  net::HostEnv& env_;
  std::vector<std::pair<sim::Time, geo::GridCoord>>* log_;
};

core::EcgridConfig oracleConfig(net::Network& network) {
  core::EcgridConfig config;
  config.base.locationHint =
      [&network](net::NodeId id) -> std::optional<geo::GridCoord> {
    net::Node* node = network.findNode(id);
    if (node == nullptr || !node->alive()) return std::nullopt;
    return node->cell();
  };
  return config;
}

TEST(NodeCrash, FreezesBatteryDetachesMediaAndRestartRejoins) {
  test::TestNet net;
  for (int i = 0; i < 4; ++i) net.addStatic(i, {20.0 + 10.0 * i, 20.0});
  for (auto& node : net.network.nodes()) {
    net::Node* raw = node.get();
    raw->setProtocolFactory([raw, &net] {
      return std::make_unique<core::EcgridProtocol>(*raw,
                                                    oracleConfig(net.network));
    });
  }
  net.start(5.0);
  ASSERT_EQ(net.network.channel().liveAttachmentCount(), 4u);
  ASSERT_EQ(net.network.aliveCount(), 4u);

  net::Node& victim = *net.network.findNode(2);
  victim.crash();
  EXPECT_TRUE(victim.crashed());
  EXPECT_FALSE(victim.alive());
  EXPECT_DOUBLE_EQ(victim.crashedAt(), net.simulator.now());
  EXPECT_EQ(net.network.channel().liveAttachmentCount(), 3u);
  EXPECT_EQ(net.network.aliveCount(), 3u);
  victim.crash();  // no-op on an already-down host
  EXPECT_EQ(net.network.channel().liveAttachmentCount(), 3u);

  // A crash is not a battery death: while down, the host burns nothing.
  double joulesAtCrash = victim.batteryRef().remainingJ(net.simulator.now());
  net.simulator.run(net.simulator.now() + 20.0);
  EXPECT_DOUBLE_EQ(victim.batteryRef().remainingJ(net.simulator.now()),
                   joulesAtCrash);

  victim.restart();
  EXPECT_FALSE(victim.crashed());
  EXPECT_TRUE(victim.alive());
  EXPECT_EQ(net.network.channel().liveAttachmentCount(), 4u);
  EXPECT_EQ(net.network.aliveCount(), 4u);
  net.simulator.run(net.simulator.now() + 10.0);
  EXPECT_FALSE(net.gateways().empty());  // fresh stack rejoined the mesh
}

TEST(NodeCrash, MidTransmissionCrashDoesNotWedgeTheMac) {
  test::TestNet net;
  net::Node& victim = net.addStatic(0, {20.0, 20.0});
  net::Node& peer = net.addStatic(1, {70.0, 20.0});
  victim.setProtocolFactory([&victim] {
    return std::make_unique<CellChangeRecorder>(victim);
  });
  peer.setProtocol(std::make_unique<CellChangeRecorder>(peer));
  net.start(1.0);

  mac::CsmaMac& mac = victim.mac();
  net::Packet frame;
  frame.macSrc = 0;
  frame.macDst = net::kBroadcastId;
  frame.header = std::make_shared<StubHeader>();
  mac.send(frame);
  // Step until the frame is actually on the air (DIFS + backoff +
  // broadcast jitter), then yank the power mid-transmission: powerDown
  // cancels the radio's tx-end event, so onTxComplete never fires and
  // only clearQueue() can drop the MAC's transmit latch.
  while (victim.radio().state() != phy::RadioState::kTx) {
    ASSERT_LT(net.simulator.now(), 2.0) << "transmission never started";
    net.simulator.run(net.simulator.now() + 10e-6);
  }
  victim.crash();
  net.simulator.run(net.simulator.now() + 1.0);
  victim.restart();

  // The rebooted MAC must be able to transmit again.
  std::uint64_t sentBefore = mac.framesSent();
  net::Packet again;
  again.macSrc = 0;
  again.macDst = net::kBroadcastId;
  again.header = std::make_shared<StubHeader>();
  mac.send(again);
  net.simulator.run(net.simulator.now() + 1.0);
  EXPECT_EQ(mac.framesSent(), sentBefore + 1);
  EXPECT_EQ(mac.queueDepth(), 0u);
}

TEST(NodeCrash, RestartRequiresACrashAndAFactory) {
  test::TestNet net;
  net::Node& plain = net.addStatic(0, {20.0, 20.0});
  net.installEcgrid(plain);
  net.start(1.0);
  EXPECT_THROW(plain.restart(), std::invalid_argument);  // not crashed
  plain.crash();
  EXPECT_THROW(plain.restart(), std::invalid_argument);  // no factory
}

TEST(FaultInjector, RejectsBogusScriptedCrashes) {
  test::TestNet net;
  net::Node& node = net.addStatic(0, {20.0, 20.0});
  net.installEcgrid(node);

  fault::FaultPlan unknownHost;
  unknownHost.hosts.crashes.push_back({99, 10.0});
  EXPECT_THROW(
      fault::FaultInjector(net.simulator, net.network, unknownHost),
      std::invalid_argument);

  fault::FaultPlan restartBeforeCrash;
  restartBeforeCrash.hosts.crashes.push_back({0, 10.0, 5.0});
  EXPECT_THROW(
      fault::FaultInjector(net.simulator, net.network, restartBeforeCrash),
      std::invalid_argument);
}

TEST(GpsError, StaticOffsetFiresBelievedCrossingsBetweenTrueOnes) {
  test::TestNet net;
  // East at 10 m/s from x = 10: TRUE crossings at t = 9, 19, …
  net::Node& host = net.addScripted(0, {{0.0, {10.0, 50.0}, {10.0, 0.0}}});
  std::vector<std::pair<sim::Time, geo::GridCoord>> log;
  host.setProtocol(std::make_unique<CellChangeRecorder>(host, &log));
  net.start();

  // Static +50 m easting error: believed x = 60 + 10t crosses the 100 m
  // boundary at t = 4. The protocol must hear onCellChanged THEN — a
  // tracker watching only ground-truth crossings would sit silent until
  // t = 9.
  host.setGpsError({50.0, 0.0});
  net.simulator.run(8.0);
  ASSERT_EQ(log.size(), 1u);
  EXPECT_NEAR(log[0].first, 4.0, 1e-3);
  EXPECT_EQ(log[0].second, (geo::GridCoord{1, 0}));
  EXPECT_EQ(host.cell(), (geo::GridCoord{1, 0}));

  // At the TRUE crossing (t = 9) the believed x is 150 — mid-cell — so
  // nothing may fire there; the next event is the believed crossing of
  // the 200 m boundary at t = 14.
  net.simulator.run(13.0);
  EXPECT_EQ(log.size(), 1u);
  net.simulator.run(15.0);
  ASSERT_EQ(log.size(), 2u);
  EXPECT_NEAR(log[1].first, 14.0, 1e-3);
}

TEST(FaultInjector, ScriptedRestartDuringDowntimeReArmsPoissonCrashes) {
  test::TestNet net;
  net::Node& host = net.addStatic(0, {20.0, 20.0});
  host.setProtocolFactory([&host] {
    return std::make_unique<CellChangeRecorder>(host);
  });

  fault::FaultPlan plan;
  // Scripted crash almost immediately, reboot at t = 50. Poisson crashes
  // at 0.5 /s (mean 2 s) with no automatic downtime recovery: the first
  // Poisson crash event all but surely lands inside the scripted
  // [0.01, 50] downtime and must no-op WITHOUT ending the host's failure
  // process. After the scripted reboot revives the host the process is
  // re-armed, so a second (Poisson) crash follows.
  plan.hosts.crashes.push_back({0, 0.01, 50.0});
  plan.hosts.crashRatePerHostPerSecond = 0.5;
  fault::FaultInjector injector(net.simulator, net.network, plan);
  net.start();
  net.simulator.run(300.0);

  EXPECT_GE(injector.crashesInjected(), 2u);  // scripted + ≥1 Poisson
  EXPECT_GE(injector.restartsInjected(), 1u);
}

TEST(FaultInjector, PagingFaultSwallowsPages) {
  test::TestNet net;
  for (int i = 0; i < 3; ++i) net.addStatic(i, {20.0 + 30.0 * i, 20.0});
  net.installEcgridEverywhere();

  fault::FaultPlan plan;
  plan.paging.lossProbability = 1.0;  // every page is missed
  fault::FaultInjector injector(net.simulator, net.network, plan);
  net.start(1.0);

  std::uint64_t lostBefore = net.network.paging().pagesLost();
  net.network.findNode(0)->pageHost(2);
  net.simulator.run(net.simulator.now() + 1.0);
  EXPECT_GT(net.network.paging().pagesLost(), lostBefore);
}

// --------------------------------------------------------------------------
// Scenario-level: byte-identity, crash dips, Poisson determinism, GPS

harness::ScenarioConfig faultBase() {
  harness::ScenarioConfig config;
  config.hostCount = 40;
  config.flowCount = 1;
  config.packetsPerSecondPerFlow = 10.0;
  config.duration = 120.0;
  config.seed = 7;
  config.auditInvariants = true;  // any audit violation aborts the run
  return config;
}

void expectIdenticalRuns(const harness::ScenarioResult& a,
                         const harness::ScenarioResult& b) {
  EXPECT_EQ(a.packetsSent, b.packetsSent);
  EXPECT_EQ(a.packetsReceived, b.packetsReceived);
  EXPECT_EQ(a.eventsExecuted, b.eventsExecuted);
  EXPECT_EQ(a.framesTransmitted, b.framesTransmitted);
  EXPECT_DOUBLE_EQ(a.meanLatencySeconds, b.meanLatencySeconds);
  ASSERT_EQ(a.aen.size(), b.aen.size());
  for (std::size_t i = 0; i < a.aen.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.aen.points()[i].second, b.aen.points()[i].second);
  }
}

class ZeroEffectPlan : public ::testing::TestWithParam<harness::ProtocolKind> {
};

TEST_P(ZeroEffectPlan, IsByteIdenticalToNoFaultLayerAtAll) {
  // The injector is armed — the channel hook runs on every delivery and a
  // scripted crash sits beyond the horizon — but nothing it does can have
  // an effect, so the run must match an un-instrumented one exactly: the
  // fault layer draws only from its own RNG streams and schedules no
  // observable work.
  harness::ScenarioConfig config = faultBase();
  config.protocol = GetParam();
  config.duration = 60.0;
  harness::ScenarioResult bare = harness::runScenario(config);

  config.fault.channel.kind = fault::ChannelErrorKind::kIid;
  config.fault.channel.lossProbability = 0.0;  // hook runs, never corrupts
  config.fault.hosts.crashes.push_back(
      {0, config.duration + 100.0});  // scheduled, never fires
  harness::ScenarioResult armed = harness::runScenario(config);

  expectIdenticalRuns(bare, armed);
  EXPECT_EQ(armed.crashesInjected, 0u);
  EXPECT_EQ(armed.restartsInjected, 0u);
  EXPECT_EQ(armed.deliveriesCorrupted, 0u);
  EXPECT_EQ(armed.pagesLost, 0u);
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, ZeroEffectPlan,
                         ::testing::Values(harness::ProtocolKind::kGrid,
                                           harness::ProtocolKind::kEcgrid,
                                           harness::ProtocolKind::kGaf,
                                           harness::ProtocolKind::kFlooding));

TEST(ScenarioFault, ScheduledCrashDipsAliveFractionAndRestartRecovers) {
  harness::ScenarioConfig config = faultBase();
  config.protocol = harness::ProtocolKind::kEcgrid;
  config.fault.hosts.crashes.push_back({10, 30.0, 60.0});
  config.fault.hosts.crashes.push_back({11, 30.0, 60.0});
  // Audits stay armed (kThrow): the run completing proves the fault-aware
  // audits accept crashed hosts as down rather than flagging them.
  harness::ScenarioResult result = harness::runScenario(config);

  EXPECT_EQ(result.crashesInjected, 2u);
  EXPECT_EQ(result.restartsInjected, 2u);
  EXPECT_DOUBLE_EQ(result.aliveFraction.valueAt(45.0), 38.0 / 40.0);
  EXPECT_DOUBLE_EQ(result.aliveFraction.valueAt(110.0), 1.0);
  EXPECT_TRUE(result.deathTimes.empty());  // crashes are not battery deaths
  EXPECT_GT(result.deliveryRate, 0.5);
}

TEST(ScenarioFault, BurstLossDegradesButArqAbsorbsMost) {
  harness::ScenarioConfig config = faultBase();
  config.protocol = harness::ProtocolKind::kEcgrid;
  config.fault.channel.kind = fault::ChannelErrorKind::kGilbertElliott;
  config.fault.channel.pBadToGood = 0.05;
  config.fault.channel.pGoodToBad =
      fault::gilbertElliottPGoodToBad(0.2, 0.05);
  harness::ScenarioResult result = harness::runScenario(config);
  EXPECT_GT(result.deliveriesCorrupted, 100u);
  EXPECT_GT(result.deliveryRate, 0.5) << "ARQ should ride out 20% burst loss";
}

TEST(ScenarioFault, FullAdversePlanIsDeterministicPerSeed) {
  harness::ScenarioConfig config = faultBase();
  config.protocol = harness::ProtocolKind::kEcgrid;
  config.fault.channel.kind = fault::ChannelErrorKind::kGilbertElliott;
  config.fault.channel.pBadToGood = 0.05;
  config.fault.channel.pGoodToBad =
      fault::gilbertElliottPGoodToBad(0.1, 0.05);
  config.fault.hosts.crashRatePerHostPerSecond = 2e-3;
  config.fault.hosts.meanDowntimeSeconds = 20.0;
  config.fault.gps.offsetStddevMeters = 30.0;
  config.fault.gps.driftStddevMeters = 3.0;
  config.fault.paging.lossProbability = 0.2;

  harness::ScenarioResult a = harness::runScenario(config);
  harness::ScenarioResult b = harness::runScenario(config);
  expectIdenticalRuns(a, b);
  EXPECT_EQ(a.crashesInjected, b.crashesInjected);
  EXPECT_EQ(a.restartsInjected, b.restartsInjected);
  EXPECT_EQ(a.deliveriesCorrupted, b.deliveriesCorrupted);
  EXPECT_EQ(a.pagesLost, b.pagesLost);

  // 40 hosts × 120 s × 2e-3 crashes/host/s ≈ 9.6 expected crashes.
  EXPECT_GT(a.crashesInjected, 0u);
  EXPECT_GE(a.crashesInjected, a.restartsInjected);
  EXPECT_GT(a.deliveriesCorrupted, 0u);

  config.seed = 8;
  harness::ScenarioResult c = harness::runScenario(config);
  EXPECT_NE(a.eventsExecuted, c.eventsExecuted);
}

TEST(ScenarioFault, GpsErrorRunsCleanUnderAudits) {
  // With σ = 40 m hosts routinely misjudge their own 100 m grid. The
  // proximity-gated gateway audit (armed automatically when a GPS fault
  // is present) must not flag physically-distant double claims, so the
  // kThrow run completes.
  harness::ScenarioConfig config = faultBase();
  config.protocol = harness::ProtocolKind::kEcgrid;
  config.fault.gps.offsetStddevMeters = 40.0;
  config.fault.gps.driftStddevMeters = 5.0;
  harness::ScenarioResult result = harness::runScenario(config);
  EXPECT_GT(result.packetsSent, 100u);
  EXPECT_GT(result.deliveryRate, 0.2);
}

// --------------------------------------------------------------------------
// Proximity-gated gateway-uniqueness audit

// Record-mode auditor exposing one stateful audit (same shape as the
// Probe helper in invariant_audit_test.cpp).
class Probe {
 public:
  explicit Probe(std::function<void(check::AuditContext&)> fn)
      : auditor_(check::FailMode::kRecord) {
    auditor_.add("probe", std::move(fn));
  }
  std::size_t violationsAfter(sim::Time now) {
    auditor_.run(now);
    return auditor_.violations().size();
  }

 private:
  check::InvariantAuditor auditor_;
};

TEST(GatewayUniquenessAudit, ProximityModeExemptsUnhearableClaimants) {
  check::GatewayUniquenessAudit audit(/*conflictGrace=*/5.0,
                                      /*conflictRangeMeters=*/250.0);
  // Both claim grid (3,4) but sit ~1130 m apart: no HELLO can ever settle
  // the contest, so it must never be reported.
  std::vector<check::GatewaySighting> sightings = {
      {{3, 4}, 7, {100.0, 100.0}},
      {{3, 4}, 9, {900.0, 900.0}},
  };
  Probe probe(
      [&](check::AuditContext& context) { audit.observe(sightings, context); });
  EXPECT_EQ(probe.violationsAfter(100.0), 0u);
  EXPECT_EQ(probe.violationsAfter(200.0), 0u);

  // Bring one claimant into radio range: now the contest is resolvable
  // and the usual grace window applies.
  sightings[1].position = {220.0, 100.0};
  EXPECT_EQ(probe.violationsAfter(300.0), 0u);
  ASSERT_EQ(probe.violationsAfter(306.0), 1u);
}

TEST(GatewayUniquenessAudit, StrictModeStillCountsDistantClaimants) {
  check::GatewayUniquenessAudit audit(/*conflictGrace=*/5.0,
                                      /*conflictRangeMeters=*/0.0);
  std::vector<check::GatewaySighting> sightings = {
      {{3, 4}, 7, {100.0, 100.0}},
      {{3, 4}, 9, {900.0, 900.0}},
  };
  Probe probe(
      [&](check::AuditContext& context) { audit.observe(sightings, context); });
  EXPECT_EQ(probe.violationsAfter(100.0), 0u);
  ASSERT_EQ(probe.violationsAfter(106.0), 1u);
}

}  // namespace
}  // namespace ecgrid
