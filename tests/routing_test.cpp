// Routing-path tests: discovery semantics, search-range confinement,
// repair after topology changes — exercised through small static networks
// of GRID gateways.
#include <gtest/gtest.h>

#include "test_net.hpp"

namespace ecgrid::test {
namespace {

/// One host per cell along a straight line (each self-elects gateway).
void buildChain(TestNet& net, int cells, double y = 50.0) {
  for (int i = 0; i < cells; ++i) {
    net.addStatic(i, {50.0 + i * 100.0, y});
  }
}

protocols::GridProtocolConfig withOracle(TestNet& net) {
  protocols::GridProtocolConfig config;
  config.locationHint =
      [&net](net::NodeId id) -> std::optional<geo::GridCoord> {
    net::Node* node = net.network.findNode(id);
    if (node == nullptr || !node->alive()) return std::nullopt;
    return node->cell();
  };
  return config;
}

TEST(Routing, DiscoveryEstablishesReusableRoute) {
  TestNet net;
  buildChain(net, 6);
  net.installGridEverywhere(withOracle(net));
  int delivered = 0;
  net.network.findNode(5)->setAppReceiveCallback(
      [&](net::NodeId, const net::DataTag&, int) { ++delivered; });
  net.start(3.0);
  net.network.findNode(0)->sendFromApp(5, 128, {});
  net.simulator.run(net.simulator.now() + 1.0);
  auto& source = net.gridProtocolOf(0);
  std::uint64_t discoveriesAfterFirst = source.routingStats().discoveriesStarted;
  EXPECT_EQ(delivered, 1);
  EXPECT_GE(discoveriesAfterFirst, 1u);
  // Subsequent packets ride the cached route: no new discoveries.
  for (int k = 0; k < 5; ++k) {
    net.network.findNode(0)->sendFromApp(5, 128, {});
    net.simulator.run(net.simulator.now() + 0.3);
  }
  EXPECT_EQ(delivered, 6);
  EXPECT_EQ(source.routingStats().discoveriesStarted, discoveriesAfterFirst);
}

TEST(Routing, ConfinedSearchStaysInsideRectangle) {
  TestNet net;
  // A 3x5 block of gateways; source and destination on the middle row.
  for (int x = 0; x < 5; ++x) {
    for (int y = 0; y < 3; ++y) {
      net.addStatic(x * 3 + y, {50.0 + x * 100.0, 50.0 + y * 100.0});
    }
  }
  protocols::GridProtocolConfig config = withOracle(net);
  config.routing.rangeMargin = 0;  // exactly the covering rectangle
  net.installGridEverywhere(config);
  int delivered = 0;
  net::NodeId dst = 4 * 3 + 1;  // cell (4,1)
  net.network.findNode(dst)->setAppReceiveCallback(
      [&](net::NodeId, const net::DataTag&, int) { ++delivered; });
  net.start(3.0);
  net.network.findNode(0 * 3 + 1)->sendFromApp(dst, 128, {});  // cell (0,1)
  net.simulator.run(net.simulator.now() + 1.5);
  EXPECT_EQ(delivered, 1);
  // Gateways strictly outside the covering rectangle (rows y=0 and y=2
  // ARE inside here since rect covers only y=1… actually covering
  // rectangle of (0,1)-(4,1) is the single row y=1), so off-row gateways
  // never relayed:
  for (int x = 0; x < 5; ++x) {
    EXPECT_EQ(net.gridProtocolOf(x * 3 + 0).routingStats().rreqsSent, 0u);
    EXPECT_EQ(net.gridProtocolOf(x * 3 + 2).routingStats().rreqsSent, 0u);
  }
}

TEST(Routing, GlobalRetryWhenConfinedSearchFails) {
  TestNet net;
  // The straight-line rectangle between source and destination has a
  // 300 m hole that radio range cannot bridge, but a detour row exists.
  net.addStatic(0, {50.0, 50.0});     // source, cell (0,0)
  net.addStatic(1, {150.0, 50.0});    // cell (1,0)
  // hole at cells (2,0),(3,0): nothing until x=450
  net.addStatic(2, {450.0, 50.0});    // destination side, cell (4,0)
  // detour row at y=150 (cells (1..3,1)):
  net.addStatic(3, {150.0, 150.0});
  net.addStatic(4, {250.0, 150.0});
  net.addStatic(5, {350.0, 150.0});
  protocols::GridProtocolConfig config = withOracle(net);
  config.routing.rangeMargin = 0;  // force the first attempt to fail…
  net.installGridEverywhere(config);
  int delivered = 0;
  net.network.findNode(2)->setAppReceiveCallback(
      [&](net::NodeId, const net::DataTag&, int) { ++delivered; });
  net.start(3.0);
  net.network.findNode(0)->sendFromApp(2, 128, {});
  net.simulator.run(net.simulator.now() + 3.0);
  // …and the widened/global retry to succeed through the detour.
  EXPECT_EQ(delivered, 1);
  EXPECT_GE(net.gridProtocolOf(0).routingStats().rreqsSent, 2u);
}

TEST(Routing, RepairsAfterRelayDies) {
  TestNet net;
  // Two parallel relays; the route forms through one of them. When it
  // dies mid-flow, local repair must shift traffic to the other.
  net.addStatic(0, {50.0, 50.0});
  net.addStatic(1, {150.0, 50.0}, /*batteryJ=*/18.0);   // relay, dies ~21 s
  net.addStatic(2, {150.0, 150.0}, /*batteryJ=*/500.0); // backup relay
  net.addStatic(3, {250.0, 50.0});
  net.installGridEverywhere(withOracle(net));
  int delivered = 0;
  net.network.findNode(3)->setAppReceiveCallback(
      [&](net::NodeId, const net::DataTag&, int) { ++delivered; });
  net.start(3.0);
  int sent = 0;
  for (double t = 4.0; t < 40.0; t += 1.0) {
    net.simulator.run(t);
    net.network.findNode(0)->sendFromApp(3, 128, {});
    ++sent;
  }
  net.simulator.run(45.0);
  EXPECT_FALSE(net.network.findNode(1)->alive());
  // A couple of packets may die with the relay; the rest must arrive.
  EXPECT_GE(delivered, sent - 4);
}

TEST(Routing, UnknownDestinationFailsCleanly) {
  TestNet net;
  buildChain(net, 3);
  net.installGridEverywhere(withOracle(net));
  net.start(3.0);
  net.network.findNode(0)->sendFromApp(77, 128, {});  // nobody
  net.simulator.run(net.simulator.now() + 5.0);
  auto& stats = net.gridProtocolOf(0).routingStats();
  EXPECT_GE(stats.discoveriesFailed, 1u);
  EXPECT_GE(stats.dataDropped, 1u);
}

TEST(Routing, TwoWayTrafficSharesReversePaths) {
  TestNet net;
  buildChain(net, 5);
  net.installGridEverywhere(withOracle(net));
  int atLeft = 0;
  int atRight = 0;
  net.network.findNode(0)->setAppReceiveCallback(
      [&](net::NodeId, const net::DataTag&, int) { ++atLeft; });
  net.network.findNode(4)->setAppReceiveCallback(
      [&](net::NodeId, const net::DataTag&, int) { ++atRight; });
  net.start(3.0);
  for (int k = 0; k < 4; ++k) {
    net.network.findNode(0)->sendFromApp(4, 64, {});
    net.network.findNode(4)->sendFromApp(0, 64, {});
    net.simulator.run(net.simulator.now() + 0.5);
  }
  net.simulator.run(net.simulator.now() + 2.0);
  EXPECT_EQ(atLeft, 4);
  EXPECT_EQ(atRight, 4);
}

TEST(Routing, MemberTrafficRidesItsGateway) {
  TestNet net;
  net.addStatic(0, {50.0, 50.0});   // gateway (0,0)
  net.addStatic(1, {20.0, 20.0});   // member source
  net.addStatic(2, {150.0, 50.0});  // gateway (1,0)
  net.addStatic(3, {180.0, 80.0});  // member destination
  net.installGridEverywhere(withOracle(net));
  int delivered = 0;
  net.network.findNode(3)->setAppReceiveCallback(
      [&](net::NodeId src, const net::DataTag&, int) {
        EXPECT_EQ(src, 1);
        ++delivered;
      });
  net.start(3.0);
  net.network.findNode(1)->sendFromApp(3, 64, {});
  net.simulator.run(net.simulator.now() + 2.0);
  EXPECT_EQ(delivered, 1);
  // The gateways carried it: both forwarded at least one frame.
  EXPECT_GE(net.gridProtocolOf(0).routingStats().dataForwarded +
                net.gridProtocolOf(0).routingStats().dataDeliveredLocal,
            1u);
}

}  // namespace
}  // namespace ecgrid::test
