// util/json tests: parsing the RFC 8259 subset, canonical dumping
// (sorted keys, %.17g numbers — the campaign fingerprint contract),
// typed-accessor errors, and the parser's line:column error loci.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "util/json.hpp"

namespace ecgrid {
namespace {

using util::JsonArray;
using util::JsonObject;
using util::JsonValue;
using util::parseJson;

TEST(JsonParse, Scalars) {
  EXPECT_TRUE(parseJson("null").isNull());
  EXPECT_TRUE(parseJson("true").asBool());
  EXPECT_FALSE(parseJson("false").asBool());
  EXPECT_DOUBLE_EQ(parseJson("42").asNumber(), 42.0);
  EXPECT_DOUBLE_EQ(parseJson("-2.5e3").asNumber(), -2500.0);
  EXPECT_EQ(parseJson("\"hi\"").asString(), "hi");
}

TEST(JsonParse, NestedContainers) {
  const JsonValue doc =
      parseJson(R"({"a": [1, 2, {"b": true}], "c": {"d": "x"}})");
  const JsonArray& a = doc.find("a")->asArray();
  ASSERT_EQ(a.size(), 3u);
  EXPECT_DOUBLE_EQ(a[0].asNumber(), 1.0);
  EXPECT_TRUE(a[2].find("b")->asBool());
  EXPECT_EQ(doc.find("c")->find("d")->asString(), "x");
  EXPECT_EQ(doc.find("missing"), nullptr);
}

TEST(JsonParse, StringEscapes) {
  EXPECT_EQ(parseJson(R"("a\"b\\c\nd\tA")").asString(), "a\"b\\c\nd\tA");
}

TEST(JsonParse, RejectsMalformedInputWithLocus) {
  try {
    parseJson("{\"a\": 1,\n  oops}");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("2:"), std::string::npos)
        << e.what();  // error on line 2
  }
}

TEST(JsonParse, RejectsTrailingGarbage) {
  EXPECT_THROW(parseJson("1 2"), std::invalid_argument);
  EXPECT_THROW(parseJson("{} x"), std::invalid_argument);
}

TEST(JsonParse, RejectsSurrogateEscapes) {
  EXPECT_THROW(parseJson(R"("\ud83d")"), std::invalid_argument);
}

TEST(JsonValueApi, AccessorMismatchNamesBothKinds) {
  try {
    parseJson("[1]").asObject();
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("object"), std::string::npos) << what;
    EXPECT_NE(what.find("array"), std::string::npos) << what;
  }
}

TEST(JsonDump, CanonicalSortedCompact) {
  JsonObject object;
  object["zeta"] = 1;
  object["alpha"] = JsonArray{JsonValue(true), JsonValue("x")};
  object["mid"] = JsonObject{};
  EXPECT_EQ(JsonValue(object).dump(),
            R"({"alpha":[true,"x"],"mid":{},"zeta":1})");
}

TEST(JsonDump, RoundTripsThroughParse) {
  const std::string text =
      R"({"a":[1,2.5,null],"b":{"c":"quote\"backslash\\"},"d":false})";
  const JsonValue doc = parseJson(text);
  EXPECT_EQ(parseJson(doc.dump()).dump(), doc.dump());
}

TEST(JsonDump, NumbersSurviveExactly) {
  // %.17g round-trips every double; fingerprints depend on it.
  const double value = 0.1 + 0.2;
  const std::string dumped = JsonValue(value).dump();
  EXPECT_DOUBLE_EQ(parseJson(dumped).asNumber(), value);
}

TEST(JsonEscape, ControlAndQuoteCharacters) {
  EXPECT_EQ(util::jsonEscape("a\"b\\c\n\x01"), "a\\\"b\\\\c\\n\\u0001");
}

}  // namespace
}  // namespace ecgrid
