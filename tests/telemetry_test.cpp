// Fleet-telemetry tests (PR 10): the RunTelemetry JSONL stream (header,
// sampling cadence, serial vs sharded field sets, summary record), the
// acceptance gate that arming telemetry leaves replay digests
// byte-identical, the per-shard load metrics surfaced in
// ScenarioResult, and the campaign live-status file (progress counts,
// wall percentiles, straggler flagging, resume arithmetic).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <numeric>
#include <string>
#include <vector>

#include "campaign/campaign_runner.hpp"
#include "campaign/sweep_spec.hpp"
#include "harness/scenario.hpp"
#include "util/json.hpp"

namespace ecgrid {
namespace {

using campaign::CampaignOptions;
using campaign::CampaignOutcome;
using campaign::parseCampaignSpec;

std::string tempPath(const std::string& name) {
  return ::testing::TempDir() + "ecgrid_telemetry_" + name;
}

harness::ScenarioConfig smallConfig() {
  harness::ScenarioConfig config;
  config.hostCount = 12;
  config.duration = 8.0;
  config.flowCount = 1;
  config.sampleInterval = 4.0;
  config.seed = 7;
  return config;
}

std::vector<util::JsonValue> readJsonl(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.is_open()) << path;
  std::vector<util::JsonValue> records;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) records.push_back(util::parseJson(line));
  }
  return records;
}

double num(const util::JsonValue& record, const std::string& key) {
  const util::JsonValue* value = record.find(key);
  EXPECT_NE(value, nullptr) << "missing key " << key;
  return value->asNumber();
}

// --------------------------------------------------------------------------
// Telemetry stream shape

TEST(Telemetry, HeaderCadenceAndSummary) {
  const std::string path = tempPath("cadence.jsonl");
  harness::ScenarioConfig config = smallConfig();
  config.telemetryPath = path;
  config.telemetryEveryEvents = 256;

  const harness::ScenarioResult result = harness::runScenario(config);
  ASSERT_GT(result.telemetrySamples, 0u);

  const auto records = readJsonl(path);
  // Header + one record per sample + the final summary.
  ASSERT_EQ(records.size(), result.telemetrySamples + 2);

  const util::JsonValue& header = records.front();
  EXPECT_EQ(header.find("schema")->asString(), "ecgrid-telemetry");
  EXPECT_EQ(num(header, "version"), 1.0);
  EXPECT_EQ(num(header, "sample_every_events"), 256.0);

  double lastWall = -1.0, lastSim = -1.0;
  for (std::size_t i = 1; i + 1 < records.size(); ++i) {
    const util::JsonValue& sample = records[i];
    EXPECT_EQ(sample.find("kind")->asString(), "sample");
    // Samples land exactly on the committed-event cadence, in order.
    EXPECT_EQ(num(sample, "seq"), static_cast<double>(i));
    EXPECT_EQ(num(sample, "events"), static_cast<double>(i) * 256.0);
    EXPECT_GE(num(sample, "wall_s"), lastWall);
    EXPECT_GE(num(sample, "sim_t"), lastSim);
    lastWall = num(sample, "wall_s");
    lastSim = num(sample, "sim_t");
    EXPECT_GT(num(sample, "queue_depth"), 0.0);
    EXPECT_GE(num(sample, "peak_queue_depth"), num(sample, "queue_depth"));
    EXPECT_GT(num(sample, "slab_slots"), 0.0);
  }

  const util::JsonValue& summary = records.back();
  EXPECT_EQ(summary.find("kind")->asString(), "summary");
  EXPECT_EQ(num(summary, "samples"),
            static_cast<double>(result.telemetrySamples));
  EXPECT_EQ(num(summary, "events"),
            static_cast<double>(result.eventsExecuted));

  std::remove(path.c_str());
}

TEST(Telemetry, SerialOmitsShardFieldsShardedCarriesThem) {
  const std::string serialPath = tempPath("serial.jsonl");
  const std::string shardedPath = tempPath("sharded.jsonl");

  harness::ScenarioConfig config = smallConfig();
  config.telemetryPath = serialPath;
  config.telemetryEveryEvents = 256;
  harness::runScenario(config);

  config.telemetryPath = shardedPath;
  config.shards = 4;
  harness::runScenario(config);

  const auto serial = readJsonl(serialPath);
  const auto sharded = readJsonl(shardedPath);
  ASSERT_GE(serial.size(), 3u);
  ASSERT_GE(sharded.size(), 3u);

  // Serial samples carry no shard block; sharded ones carry all of it.
  EXPECT_EQ(serial[1].find("shards"), nullptr);
  EXPECT_EQ(serial[1].find("shard_committed"), nullptr);

  const util::JsonValue& summary = sharded.back();
  EXPECT_EQ(num(summary, "shards"), 4.0);
  ASSERT_NE(summary.find("shard_committed"), nullptr);
  const util::JsonArray& committed =
      summary.find("shard_committed")->asArray();
  ASSERT_EQ(committed.size(), 4u);
  double total = 0.0;
  for (const util::JsonValue& c : committed) total += c.asNumber();
  EXPECT_EQ(total, num(summary, "events"));
  EXPECT_GE(num(summary, "shard_imbalance"), 1.0);
  EXPECT_GE(num(summary, "cross_shard"), 0.0);

  std::remove(serialPath.c_str());
  std::remove(shardedPath.c_str());
}

// --------------------------------------------------------------------------
// Acceptance gate: arming telemetry cannot perturb the simulation

TEST(Telemetry, ReplayDigestsIdenticalWithTelemetryArmed) {
  for (int shards : {1, 4}) {
    harness::ScenarioConfig bare = smallConfig();
    bare.shards = shards;
    bare.digestEveryEvents = 4096;
    const harness::ScenarioResult before = harness::runScenario(bare);
    ASSERT_FALSE(before.digestTrace.empty());

    harness::ScenarioConfig armed = bare;
    armed.telemetryPath = tempPath("digest.jsonl");
    armed.telemetryEveryEvents = 1024;  // denser than the digest cadence
    const harness::ScenarioResult after = harness::runScenario(armed);

    EXPECT_GT(after.telemetrySamples, 0u);
    EXPECT_EQ(before.digestTrace, after.digestTrace)
        << "telemetry perturbed the replay digest at shards=" << shards;
    EXPECT_EQ(before.eventsExecuted, after.eventsExecuted);
    std::remove(armed.telemetryPath.c_str());
  }
}

// --------------------------------------------------------------------------
// Per-shard load metrics in ScenarioResult

TEST(Telemetry, ResultCarriesShardLoadMetrics) {
  harness::ScenarioConfig config = smallConfig();
  config.shards = 4;
  const harness::ScenarioResult result = harness::runScenario(config);

  ASSERT_EQ(result.shardCommitted.size(), 4u);
  const std::uint64_t total =
      std::accumulate(result.shardCommitted.begin(),
                      result.shardCommitted.end(), std::uint64_t{0});
  EXPECT_EQ(total, result.eventsExecuted);
  EXPECT_GE(result.shardImbalance, 1.0);
  EXPECT_GT(result.peakQueueDepth, 0u);
  EXPECT_GT(result.slabSlotsTotal, 0u);

  const harness::ScenarioResult serial =
      harness::runScenario(smallConfig());
  EXPECT_TRUE(serial.shardCommitted.empty());
  EXPECT_EQ(serial.shardImbalance, 1.0);
  EXPECT_GT(serial.peakQueueDepth, 0u);
}

// --------------------------------------------------------------------------
// Campaign live status

const char* kStragglerSpec = R"({
  "name": "status",
  "base": {
    "hostCount": 12,
    "flowCount": 1,
    "sampleInterval": 4
  },
  "axes": [
    { "key": "duration", "values": [4, 6, 8, 400] }
  ],
  "seeds": [1]
})";

util::JsonValue readStatus(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.is_open()) << path;
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  return util::parseJson(text);
}

TEST(CampaignStatus, FlagsTheSlowConfigAsStraggler) {
  const std::string results = tempPath("straggler_results.jsonl");
  const std::string status = tempPath("straggler_status.json");
  std::remove(results.c_str());

  CampaignOptions options;
  options.resultsPath = results;
  options.statusPath = status;
  options.stragglerFactor = 3.0;
  options.jobs = 1;  // sequential: wall times are per-run, comparable

  const CampaignOutcome outcome =
      campaign::runCampaign(parseCampaignSpec(kStragglerSpec), options);
  EXPECT_EQ(outcome.executed, 4u);
  EXPECT_EQ(outcome.failed, 0u);

  const util::JsonValue state = readStatus(status);
  EXPECT_EQ(state.find("campaign")->asString(), "status");
  EXPECT_EQ(num(state, "total_runs"), 4.0);
  EXPECT_EQ(num(state, "executed"), 4.0);
  EXPECT_EQ(num(state, "remaining"), 0.0);
  EXPECT_EQ(num(state, "eta_seconds"), 0.0);
  EXPECT_TRUE(state.find("done")->asBool());
  EXPECT_EQ(num(*state.find("wall_seconds"), "completed"), 4.0);

  // duration=400 runs ~50x the 4..8 s configs: it must be flagged.
  const util::JsonArray& stragglers = state.find("stragglers")->asArray();
  ASSERT_GE(stragglers.size(), 1u);
  double worst = 0.0;
  for (const util::JsonValue& s : stragglers) {
    worst = std::max(worst, num(s, "ratio"));
    EXPECT_FALSE(s.find("fingerprint")->asString().empty());
    EXPECT_GT(num(s, "wall_seconds"), 0.0);
  }
  EXPECT_GE(worst, 3.0);

  std::remove(results.c_str());
  std::remove(status.c_str());
}

TEST(CampaignStatus, ResumeArithmeticAcrossInterruptedRun) {
  const std::string results = tempPath("resume_results.jsonl");
  const std::string status = tempPath("resume_status.json");
  std::remove(results.c_str());

  const campaign::CampaignSpec spec = parseCampaignSpec(R"({
    "name": "resume",
    "base": { "duration": 6, "hostCount": 12, "flowCount": 1,
              "sampleInterval": 4 },
    "axes": [ { "key": "protocol", "values": ["GRID", "ECGRID"] } ],
    "seeds": [1, 2]
  })");

  CampaignOptions options;
  options.resultsPath = results;
  options.statusPath = status;
  options.maxRuns = 2;  // simulate a mid-campaign kill after two runs

  const CampaignOutcome first = campaign::runCampaign(spec, options);
  EXPECT_EQ(first.executed, 2u);
  util::JsonValue state = readStatus(status);
  EXPECT_EQ(num(state, "executed"), 2.0);
  EXPECT_EQ(num(state, "remaining"), 2.0);
  EXPECT_FALSE(state.find("done")->asBool());

  options.maxRuns = -1;
  const CampaignOutcome second = campaign::runCampaign(spec, options);
  EXPECT_EQ(second.skipped, 2u);
  EXPECT_EQ(second.executed, 2u);
  state = readStatus(status);
  EXPECT_EQ(num(state, "skipped"), 2.0);
  EXPECT_EQ(num(state, "executed"), 2.0);
  EXPECT_EQ(num(state, "remaining"), 0.0);
  EXPECT_TRUE(state.find("done")->asBool());

  std::remove(results.c_str());
  std::remove(status.c_str());
}

}  // namespace
}  // namespace ecgrid
