// Campaign subsystem tests: spec parsing and structural validation,
// deterministic expansion and fingerprinting, config resolution
// (including the workload.class.* sweep form), the JSONL record shape,
// and the acceptance gate for resume: run N scenarios, stop after K,
// restart, assert exactly N−K execute and the final results file equals
// the uninterrupted run's, order-normalized.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "campaign/campaign_runner.hpp"
#include "campaign/sweep_spec.hpp"
#include "util/json.hpp"

namespace ecgrid {
namespace {

using campaign::CampaignOptions;
using campaign::CampaignOutcome;
using campaign::CampaignSpec;
using campaign::parseCampaignSpec;
using campaign::RunSpec;

const char* kSmallSpec = R"({
  "name": "unit",
  "base": {
    "duration": 8,
    "hostCount": 12,
    "flowCount": 1,
    "sampleInterval": 4
  },
  "axes": [
    { "key": "protocol", "values": ["GRID", "ECGRID"] },
    { "key": "maxSpeed", "values": [0.5, 2.0] }
  ],
  "seeds": [1, 2]
})";

std::vector<std::string> sortedLines(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) lines.push_back(line);
  }
  std::sort(lines.begin(), lines.end());
  return lines;
}

std::string tempPath(const std::string& name) {
  return ::testing::TempDir() + "ecgrid_campaign_" + name;
}

// --------------------------------------------------------------------------
// Spec parsing

TEST(CampaignSpecParse, ParsesShapeAndCounts) {
  const CampaignSpec spec = parseCampaignSpec(kSmallSpec);
  EXPECT_EQ(spec.name, "unit");
  ASSERT_EQ(spec.axes.size(), 2u);
  EXPECT_EQ(spec.axes[0].key, "protocol");
  EXPECT_EQ(spec.seeds, (std::vector<std::uint64_t>{1, 2}));
  EXPECT_EQ(spec.runCount(), 8u);  // 2 × 2 axes × 2 seeds
}

TEST(CampaignSpecParse, RejectsUnknownTopLevelField) {
  EXPECT_THROW(parseCampaignSpec(R"({"name":"x","seeds":[1],"oops":1})"),
               std::invalid_argument);
}

TEST(CampaignSpecParse, RejectsMissingSeedsAndEmptyAxisValues) {
  EXPECT_THROW(parseCampaignSpec(R"({"name":"x"})"), std::invalid_argument);
  EXPECT_THROW(
      parseCampaignSpec(
          R"({"name":"x","seeds":[1],"axes":[{"key":"duration","values":[]}]})"),
      std::invalid_argument);
}

TEST(CampaignSpecParse, RejectsRepeatedAxisKey) {
  EXPECT_THROW(parseCampaignSpec(R"({"name":"x","seeds":[1],"axes":[
      {"key":"duration","values":[1]},
      {"key":"duration","values":[2]}]})"),
               std::invalid_argument);
}

// --------------------------------------------------------------------------
// Expansion & fingerprints

TEST(CampaignExpand, OdometerOrderIsDeterministic) {
  const CampaignSpec spec = parseCampaignSpec(kSmallSpec);
  const std::vector<RunSpec> a = campaign::expandCampaign(spec);
  const std::vector<RunSpec> b = campaign::expandCampaign(spec);
  ASSERT_EQ(a.size(), 8u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].fingerprint, b[i].fingerprint);
  }
  // Last axis fastest, seeds fastest of all: runs 0,1 share everything
  // but the seed.
  EXPECT_EQ(util::JsonValue(a[0].overrides).dump(),
            util::JsonValue(a[1].overrides).dump());
  EXPECT_NE(a[0].seed, a[1].seed);
}

TEST(CampaignExpand, FingerprintsAreUniqueAcrossTheGrid) {
  const std::vector<RunSpec> runs =
      campaign::expandCampaign(parseCampaignSpec(kSmallSpec));
  std::set<std::string> fingerprints;
  for (const RunSpec& run : runs) fingerprints.insert(run.fingerprint);
  EXPECT_EQ(fingerprints.size(), runs.size());
}

TEST(CampaignExpand, FingerprintIgnoresSourceFormatting) {
  // Same merged overrides from a differently-ordered, differently-spaced
  // spec document → same fingerprints (canonical dump is the contract).
  const char* reordered = R"({
    "seeds": [2, 1],
    "axes": [
      { "values": ["GRID", "ECGRID"], "key": "protocol" },
      { "key": "maxSpeed", "values": [0.5, 2.0] }
    ],
    "base": { "sampleInterval": 4, "flowCount": 1,
              "hostCount": 12, "duration": 8 },
    "name": "unit"
  })";
  std::set<std::string> a;
  std::set<std::string> b;
  for (const RunSpec& run :
       campaign::expandCampaign(parseCampaignSpec(kSmallSpec))) {
    a.insert(run.fingerprint);
  }
  for (const RunSpec& run :
       campaign::expandCampaign(parseCampaignSpec(reordered))) {
    b.insert(run.fingerprint);
  }
  EXPECT_EQ(a, b);
}

// --------------------------------------------------------------------------
// Config resolution

TEST(CampaignResolve, AppliesScenarioAndWorkloadKeys) {
  util::JsonObject overrides;
  overrides["protocol"] = "GAF";
  overrides["hostCount"] = 33;
  overrides["duration"] = 55.0;
  overrides["workload.classes"] = util::JsonArray{
      util::JsonObject{{"name", util::JsonValue("bulk")},
                       {"requestResponse", util::JsonValue(false)}}};
  overrides["workload.class.sessionsPerSecond"] = 3.5;
  overrides["workload.sinkCount"] = 2;

  const harness::ScenarioConfig config = campaign::resolveConfig(overrides, 9);
  EXPECT_EQ(config.protocol, harness::ProtocolKind::kGaf);
  EXPECT_EQ(config.hostCount, 33);
  EXPECT_DOUBLE_EQ(config.duration, 55.0);
  EXPECT_EQ(config.seed, 9u);
  ASSERT_EQ(config.workload.classes.size(), 1u);
  // workload.class.* must land on the class list even though it sorts
  // before "workload.classes" in the override map.
  EXPECT_DOUBLE_EQ(config.workload.classes[0].sessionsPerSecond, 3.5);
  EXPECT_EQ(config.workload.classes[0].name, "bulk");
  EXPECT_FALSE(config.workload.classes[0].requestResponse);
  EXPECT_EQ(config.workload.sinkCount, 2);
}

TEST(CampaignResolve, SweepingAClassKnobArmsTheDefaultClass) {
  util::JsonObject overrides;
  overrides["workload.class.sessionsPerSecond"] = 2.0;
  const harness::ScenarioConfig config = campaign::resolveConfig(overrides, 1);
  ASSERT_EQ(config.workload.classes.size(), 1u);
  EXPECT_DOUBLE_EQ(config.workload.classes[0].sessionsPerSecond, 2.0);
}

TEST(CampaignResolve, RejectsUnknownKeysLoudly) {
  util::JsonObject overrides;
  overrides["hostCont"] = 10;  // typo must not silently run defaults
  EXPECT_THROW(campaign::resolveConfig(overrides, 1), std::invalid_argument);
  overrides.clear();
  overrides["workload.class.sesionsPerSecond"] = 1.0;
  EXPECT_THROW(campaign::resolveConfig(overrides, 1), std::invalid_argument);
}

// --------------------------------------------------------------------------
// Records & resume bookkeeping

TEST(CampaignRecords, FailureRecordCarriesTheErrorText) {
  RunSpec run;
  run.fingerprint = "f00";
  run.seed = 3;
  run.overrides["duration"] = -1.0;
  const std::string line =
      campaign::recordToJson("unit", run, nullptr, "duration must be positive");
  const util::JsonValue record = util::parseJson(line);
  EXPECT_FALSE(record.find("ok")->asBool());
  EXPECT_EQ(record.find("error")->asString(), "duration must be positive");
  EXPECT_EQ(record.find("fingerprint")->asString(), "f00");
  EXPECT_EQ(record.find("result"), nullptr);
}

TEST(CampaignRecords, ResumeScanSkipsTornLines) {
  const std::string path = tempPath("torn.jsonl");
  {
    std::ofstream out(path);
    out << R"({"fingerprint":"aaaa","ok":true})" << '\n';
    out << R"({"fingerprint":"bbbb","ok":true})" << '\n';
    out << R"({"fingerprint":"cccc","o)";  // killed mid-write
  }
  const std::set<std::string> done = campaign::completedFingerprints({path});
  EXPECT_EQ(done, (std::set<std::string>{"aaaa", "bbbb"}));
  std::remove(path.c_str());
}

TEST(CampaignRecords, MissingResultsFileMeansNothingCompleted) {
  EXPECT_TRUE(
      campaign::completedFingerprints({tempPath("never-written.jsonl")})
          .empty());
}

// --------------------------------------------------------------------------
// The resume acceptance gate

TEST(CampaignRunner, InterruptedPlusResumedEqualsUninterrupted) {
  const CampaignSpec spec = parseCampaignSpec(kSmallSpec);
  const std::size_t n = spec.runCount();
  const std::size_t k = 3;  // complete K, then "die"

  const std::string uninterrupted = tempPath("full.jsonl");
  const std::string interrupted = tempPath("resumed.jsonl");
  std::remove(uninterrupted.c_str());
  std::remove(interrupted.c_str());

  CampaignOptions options;
  options.jobs = 2;

  options.resultsPath = uninterrupted;
  const CampaignOutcome full = campaign::runCampaign(spec, options);
  EXPECT_EQ(full.executed, n);
  EXPECT_EQ(full.failed, 0u);
  EXPECT_EQ(full.skipped, 0u);

  // First attempt: killed after K completions.
  options.resultsPath = interrupted;
  options.maxRuns = static_cast<long>(k);
  const CampaignOutcome first = campaign::runCampaign(spec, options);
  EXPECT_EQ(first.executed, k);

  // Restart: exactly N−K scenarios execute, K are skipped.
  options.maxRuns = -1;
  const CampaignOutcome second = campaign::runCampaign(spec, options);
  EXPECT_EQ(second.skipped, k);
  EXPECT_EQ(second.executed, n - k);

  // And the final file is the uninterrupted file, order-normalized.
  EXPECT_EQ(sortedLines(interrupted), sortedLines(uninterrupted));

  // A third invocation is a no-op.
  const CampaignOutcome third = campaign::runCampaign(spec, options);
  EXPECT_EQ(third.executed, 0u);
  EXPECT_EQ(third.skipped, n);

  std::remove(uninterrupted.c_str());
  std::remove(interrupted.c_str());
}

TEST(CampaignRunner, WorkerStripesPartitionTheExpansion) {
  const CampaignSpec spec = parseCampaignSpec(kSmallSpec);
  const std::string w0 = tempPath("w0.jsonl");
  const std::string w1 = tempPath("w1.jsonl");
  std::remove(w0.c_str());
  std::remove(w1.c_str());

  CampaignOptions options;
  options.jobs = 2;
  options.workerCount = 2;
  options.workerIndex = 0;
  options.resultsPath = w0;
  const CampaignOutcome a = campaign::runCampaign(spec, options);
  options.workerIndex = 1;
  options.resultsPath = w1;
  const CampaignOutcome b = campaign::runCampaign(spec, options);

  EXPECT_EQ(a.stripeRuns + b.stripeRuns, spec.runCount());
  EXPECT_EQ(a.executed + b.executed, spec.runCount());

  // The stripes are disjoint: no fingerprint appears in both files.
  const std::set<std::string> doneA = campaign::completedFingerprints({w0});
  const std::set<std::string> doneB = campaign::completedFingerprints({w1});
  for (const std::string& fingerprint : doneA) {
    EXPECT_EQ(doneB.count(fingerprint), 0u);
  }
  EXPECT_EQ(doneA.size() + doneB.size(), spec.runCount());

  std::remove(w0.c_str());
  std::remove(w1.c_str());
}

TEST(CampaignRunner, ValueErrorsBecomeFailureRecordsNotCrashes) {
  // hostCount −5 passes spec parsing (it is just a number) but
  // runScenario rejects it; the campaign must record the failure and
  // keep going.
  const CampaignSpec spec = parseCampaignSpec(R"({
    "name": "poison",
    "base": { "duration": 5, "flowCount": 1, "sampleInterval": 5 },
    "axes": [ { "key": "hostCount", "values": [-5, 10] } ],
    "seeds": [1]
  })");
  const std::string path = tempPath("poison.jsonl");
  std::remove(path.c_str());

  CampaignOptions options;
  options.resultsPath = path;
  const CampaignOutcome outcome = campaign::runCampaign(spec, options);
  EXPECT_EQ(outcome.executed, 2u);
  EXPECT_EQ(outcome.failed, 1u);

  std::size_t okCount = 0;
  std::size_t errCount = 0;
  for (const std::string& line : sortedLines(path)) {
    const util::JsonValue record = util::parseJson(line);
    if (record.find("ok")->asBool()) {
      ++okCount;
    } else {
      ++errCount;
      EXPECT_FALSE(record.find("error")->asString().empty());
    }
  }
  EXPECT_EQ(okCount, 1u);
  EXPECT_EQ(errCount, 1u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace ecgrid
