// Tests for the node/network layer: per-host stack wiring, death
// handling, paging plumbing, and network-level queries.
#include <gtest/gtest.h>

#include "test_net.hpp"

namespace ecgrid::test {
namespace {

TEST(Network, RejectsDuplicateIds) {
  TestNet net;
  net.addStatic(1, {50.0, 50.0});
  EXPECT_THROW(net.addStatic(1, {150.0, 50.0}), std::invalid_argument);
}

TEST(Network, FindNodeAndCounts) {
  TestNet net;
  net.addStatic(3, {50.0, 50.0});
  net.addStatic(7, {150.0, 50.0});
  EXPECT_EQ(net.network.nodeCount(), 2u);
  ASSERT_NE(net.network.findNode(7), nullptr);
  EXPECT_EQ(net.network.findNode(7)->id(), 7);
  EXPECT_EQ(net.network.findNode(99), nullptr);
  EXPECT_EQ(net.network.aliveCount(), 2u);
}

TEST(Node, ExposesGpsView) {
  TestNet net;
  net::Node& node = net.addStatic(1, {250.0, 420.0});
  net.installGrid(node);
  EXPECT_EQ(node.position(), (geo::Vec2{250.0, 420.0}));
  EXPECT_EQ(node.velocity(), (geo::Vec2{}));
  EXPECT_EQ(node.cell(), (geo::GridCoord{2, 4}));
  EXPECT_GE(node.nextPossibleCellExit(), sim::kTimeNever);
}

TEST(Node, StartRequiresProtocol) {
  TestNet net;
  net.addStatic(1, {50.0, 50.0});
  EXPECT_THROW(net.network.start(), std::logic_error);
}

TEST(Node, DeathCallbackFiresOnceWithTime) {
  TestNet net;
  net::Node& node = net.addStatic(1, {50.0, 50.0}, /*batteryJ=*/8.63);
  net.installGrid(node);
  int deaths = 0;
  sim::Time when = -1.0;
  node.setDeathCallback([&](net::NodeId id, sim::Time t) {
    EXPECT_EQ(id, 1);
    when = t;
    ++deaths;
  });
  net.network.start();
  net.simulator.run(60.0);
  EXPECT_EQ(deaths, 1);
  // 8.63 J at ≥0.863 W (idle, plus beacon transmissions) ⇒ ≤ 10 s.
  EXPECT_GT(when, 5.0);
  EXPECT_LE(when, 10.0);
  EXPECT_FALSE(node.alive());
  EXPECT_EQ(net.network.aliveCount(), 0u);
}

TEST(Node, DeadNodesDropAppTraffic) {
  TestNet net;
  net::Node& dying = net.addStatic(1, {50.0, 50.0}, /*batteryJ=*/5.0);
  net::Node& peer = net.addStatic(2, {80.0, 50.0});
  net.installGridEverywhere();
  int delivered = 0;
  peer.setAppReceiveCallback(
      [&](net::NodeId, const net::DataTag&, int) { ++delivered; });
  net.network.start();
  net.simulator.run(30.0);
  ASSERT_FALSE(dying.alive());
  dying.sendFromApp(2, 64, {});
  net.simulator.run(35.0);
  EXPECT_EQ(delivered, 0);
}

TEST(Node, SleepRadioClearsMacQueue) {
  TestNet net;
  net::Node& node = net.addStatic(1, {50.0, 50.0});
  net.installGrid(node);
  net.network.start();
  // Queue a few frames, then sleep before they can all leave.
  for (int i = 0; i < 4; ++i) {
    net::Packet frame;
    frame.macSrc = 1;
    frame.macDst = 42;
    frame.header = std::make_shared<protocols::LeaveHeader>(
        1, geo::GridCoord{0, 0});
    node.link().send(frame);
  }
  node.sleepRadio();
  EXPECT_EQ(node.link().queueDepth(), 0u);
  EXPECT_TRUE(node.radioSleeping());
  node.wakeRadio();
  EXPECT_FALSE(node.radioSleeping());
}

TEST(Node, PagingWakesSleepingRadioBeforeProtocolSeesIt) {
  TestNet net;
  net::Node& pager = net.addStatic(1, {50.0, 50.0});
  net::Node& target = net.addStatic(2, {80.0, 50.0});
  net.installGridEverywhere();  // GRID ignores pages, but the radio wakes
  net.network.start();
  target.sleepRadio();
  ASSERT_TRUE(target.radioSleeping());
  pager.pageHost(2);
  net.simulator.run(1.0);
  EXPECT_FALSE(target.radioSleeping());
}

TEST(Node, GridPageOnlyWakesThatGrid) {
  TestNet net;
  net::Node& pager = net.addStatic(1, {50.0, 50.0});
  net::Node& sameGrid = net.addStatic(2, {80.0, 50.0});
  net::Node& otherGrid = net.addStatic(3, {150.0, 50.0});
  net.installGridEverywhere();
  net.network.start();
  sameGrid.sleepRadio();
  otherGrid.sleepRadio();
  pager.pageGrid({0, 0});
  net.simulator.run(1.0);
  EXPECT_FALSE(sameGrid.radioSleeping());
  EXPECT_TRUE(otherGrid.radioSleeping());
}

TEST(Node, BatteryLevelPassthrough) {
  TestNet net;
  net::Node& node = net.addStatic(1, {50.0, 50.0});
  net.installGrid(node);
  EXPECT_EQ(node.batteryLevel(), energy::BatteryLevel::kUpper);
  node.batteryRef().drain(300.0, 0.0);  // 40 % left
  EXPECT_EQ(node.batteryLevel(), energy::BatteryLevel::kBoundary);
  EXPECT_NEAR(node.batteryRatio(), 0.4, 1e-9);
}

TEST(Node, DeadNodeStopsHearingFrames) {
  TestNet net;
  net::Node& dying = net.addStatic(1, {50.0, 50.0}, /*batteryJ=*/5.0);
  net::Node& talker = net.addStatic(2, {80.0, 50.0});
  net.installGridEverywhere();
  net.network.start();
  net.simulator.run(30.0);
  ASSERT_FALSE(dying.alive());
  std::uint64_t framesBefore = net.network.channel().deliveriesScheduled();
  net::Packet frame;
  frame.macSrc = 2;
  frame.macDst = 1;
  frame.header =
      std::make_shared<protocols::LeaveHeader>(2, geo::GridCoord{0, 0});
  talker.link().send(frame);
  net.simulator.run(35.0);
  // The dead node is detached from the channel: no delivery was even
  // scheduled toward it.
  EXPECT_EQ(net.network.channel().deliveriesScheduled(), framesBefore);
}

}  // namespace
}  // namespace ecgrid::test
