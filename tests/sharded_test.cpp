// Sharded parallel event engine (sim/sharded): digest parity against the
// serial oracle, shard-count invariance, boundary-event mechanics, and
// the windowed conservative mode.
//
// The headline guarantees under test:
//   * oracle parity — a sharded scenario run (shards > 1) produces a
//     digest trace BYTE-IDENTICAL to the serial engine's, for every
//     shipped protocol and under an active fault plan;
//   * shard-count invariance — 1/2/4/8 shards agree on digest traces,
//     results, and the full metrics snapshot;
//   * boundary events — frames/pages crossing stripe edges travel the
//     per-edge mailboxes, and mobility-driven ownership migration is
//     observed and counted;
//   * tie-order perturbation — the determinism harness's perturbed mode
//     reproduces the perturbed serial run exactly on the sharded engine;
//   * windowed mode — the conservative LBTS loop executes the same
//     schedule whether shards run inline or on a worker pool.
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <memory>
#include <stdexcept>
#include <utility>
#include <vector>

#include "harness/scenario.hpp"
#include "sim/sharded/engine.hpp"
#include "sim/sharded/lookahead.hpp"
#include "sim/sharded/mailbox.hpp"
#include "sim/sharded/shard_map.hpp"
#include "sim/sharded/shard_queue.hpp"
#include "sim/sharded/task.hpp"
#include "sim/simulator.hpp"

namespace ecgrid {
namespace {

using sim::sharded::EventKey;
using sim::sharded::InlineTask;

// ---------------------------------------------------------------------------
// InlineTask storage semantics
// ---------------------------------------------------------------------------

TEST(InlineTask, InvokesInlineCallable) {
  int hits = 0;
  InlineTask task([&hits] { ++hits; });
  ASSERT_TRUE(static_cast<bool>(task));
  task();
  task();
  EXPECT_EQ(hits, 2);
}

TEST(InlineTask, MoveTransfersOwnership) {
  int hits = 0;
  InlineTask a([&hits] { ++hits; });
  InlineTask b(std::move(a));
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
  ASSERT_TRUE(static_cast<bool>(b));
  b();
  EXPECT_EQ(hits, 1);
  InlineTask c;
  c = std::move(b);
  ASSERT_TRUE(static_cast<bool>(c));
  c();
  EXPECT_EQ(hits, 2);
}

TEST(InlineTask, OversizedCallableBoxesOnHeapWithSameSemantics) {
  // Capture well past kInlineBytes to force the heap-box path.
  struct Big {
    double padding[32] = {};
  };
  Big big;
  big.padding[31] = 7.0;
  double seen = 0.0;
  static_assert(sizeof(Big) > InlineTask::kInlineBytes);
  InlineTask task([big, &seen] { seen = big.padding[31]; });
  InlineTask moved(std::move(task));
  moved();
  EXPECT_DOUBLE_EQ(seen, 7.0);
  moved.reset();
  EXPECT_FALSE(static_cast<bool>(moved));
}

TEST(InlineTask, HoldsStdFunctionWithoutReWrapping) {
  int hits = 0;
  std::function<void()> fn = [&hits] { ++hits; };
  InlineTask task(std::move(fn));
  task();
  EXPECT_EQ(hits, 1);
}

// ---------------------------------------------------------------------------
// ShardQueue: ordering, cancellation, executing-slot semantics
// ---------------------------------------------------------------------------

TEST(ShardQueue, PopsInGlobalKeyOrder) {
  sim::sharded::ShardQueue queue;
  std::vector<int> order;
  // Same time, distinct tie keys; then an earlier time.
  queue.push(EventKey{5.0, 3, 3}, InlineTask([&] { order.push_back(3); }),
             nullptr);
  queue.push(EventKey{5.0, 1, 1}, InlineTask([&] { order.push_back(1); }),
             nullptr);
  queue.push(EventKey{2.0, 9, 9}, InlineTask([&] { order.push_back(0); }),
             nullptr);
  sim::Time time = 0.0;
  InlineTask task;
  const char* label = nullptr;
  while (queue.popFront(time, task, label)) {
    task();
    task.reset();
    queue.finishExecuting();
  }
  EXPECT_EQ(order, (std::vector<int>{0, 1, 3}));
}

TEST(ShardQueue, CancelledEventsAreSkippedAndHandlesReport) {
  sim::sharded::ShardQueue queue;
  int fired = 0;
  sim::EventHandle keep = queue.push(
      EventKey{1.0, 0, 0}, InlineTask([&fired] { ++fired; }), nullptr);
  sim::EventHandle drop = queue.push(
      EventKey{1.0, 1, 1}, InlineTask([&fired] { ++fired; }), nullptr);
  EXPECT_TRUE(keep.pending());
  EXPECT_TRUE(drop.pending());
  drop.cancel();
  EXPECT_FALSE(drop.pending());
  sim::Time time = 0.0;
  InlineTask task;
  const char* label = nullptr;
  while (queue.popFront(time, task, label)) {
    task();
    task.reset();
    queue.finishExecuting();
  }
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(keep.pending());
}

TEST(ShardQueue, HandleStaysPendingDuringOwnCallback) {
  // Mirrors the serial queue's recycle-on-next-pop semantics.
  sim::sharded::ShardQueue queue;
  sim::EventHandle handle;
  bool pendingDuringCallback = false;
  handle = queue.push(EventKey{1.0, 0, 0}, InlineTask([&] {
                        pendingDuringCallback = handle.pending();
                      }),
                      nullptr);
  sim::Time time = 0.0;
  InlineTask task;
  const char* label = nullptr;
  ASSERT_TRUE(queue.popFront(time, task, label));
  task();
  task.reset();
  EXPECT_TRUE(pendingDuringCallback);
  EXPECT_TRUE(handle.pending());  // not yet recycled
  queue.finishExecuting();
  EXPECT_FALSE(handle.pending());
}

// ---------------------------------------------------------------------------
// EdgeMailbox: sorted deterministic drains + causality floor
// ---------------------------------------------------------------------------

TEST(EdgeMailbox, DrainsSortedByGlobalKey) {
  sim::sharded::EdgeMailbox mailbox;
  sim::sharded::ShardQueue queue;
  std::vector<int> order;
  mailbox.post(EventKey{3.0, 5, 5}, InlineTask([&] { order.push_back(5); }),
               nullptr, sim::kTimeZero);
  mailbox.post(EventKey{3.0, 2, 2}, InlineTask([&] { order.push_back(2); }),
               nullptr, sim::kTimeZero);
  mailbox.post(EventKey{1.0, 8, 8}, InlineTask([&] { order.push_back(8); }),
               nullptr, sim::kTimeZero);
  EXPECT_EQ(mailbox.pendingCount(), 3u);
  EXPECT_EQ(mailbox.drainInto(queue), 3u);
  EXPECT_EQ(mailbox.pendingCount(), 0u);
  sim::Time time = 0.0;
  InlineTask task;
  const char* label = nullptr;
  while (queue.popFront(time, task, label)) {
    task();
    task.reset();
    queue.finishExecuting();
  }
  EXPECT_EQ(order, (std::vector<int>{8, 2, 5}));
}

TEST(EdgeMailbox, RejectsPostsBelowTheCausalityFloor) {
  sim::sharded::EdgeMailbox mailbox;
  EXPECT_THROW(mailbox.post(EventKey{1.0, 0, 0}, InlineTask([] {}), nullptr,
                            /*notBefore=*/2.0),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// ShardMap: stripes, hub fallback, migration accounting
// ---------------------------------------------------------------------------

TEST(ShardMap, StripesTheFieldWithEdgeClamping) {
  sim::sharded::ShardMap map(1000.0, 4);
  EXPECT_EQ(map.shardOfX(0.0), 0);
  EXPECT_EQ(map.shardOfX(249.0), 0);
  EXPECT_EQ(map.shardOfX(250.0), 1);
  EXPECT_EQ(map.shardOfX(999.0), 3);
  EXPECT_EQ(map.shardOfX(-5.0), 0);     // clamped
  EXPECT_EQ(map.shardOfX(1500.0), 3);   // clamped
}

TEST(ShardMap, UnknownHostsBelongToTheHubShard) {
  sim::sharded::ShardMap map(1000.0, 4);
  EXPECT_FALSE(map.knowsHost(77));
  EXPECT_EQ(map.shardOfHost(77), sim::sharded::ShardMap::kHubShard);
  EXPECT_EQ(map.migrations(), 0u);
}

TEST(ShardMap, MigrationIsObservedWhenAHostCrossesAStripeEdge) {
  sim::sharded::ShardMap map(1000.0, 4);
  double x = 100.0;
  map.registerHost(1, [&x] { return x; });
  EXPECT_TRUE(map.knowsHost(1));
  EXPECT_EQ(map.shardOfHost(1), 0);
  EXPECT_EQ(map.migrations(), 0u);
  x = 600.0;  // crosses from stripe 0 into stripe 2
  EXPECT_EQ(map.shardOfHost(1), 2);
  EXPECT_EQ(map.migrations(), 1u);
  EXPECT_EQ(map.shardOfHost(1), 2);  // stable lookups do not re-count
  EXPECT_EQ(map.migrations(), 1u);
}

// ---------------------------------------------------------------------------
// Sequenced engine mechanics through the Simulator facade
// ---------------------------------------------------------------------------

/// Identical schedule on a serial and a 4-shard simulator: per-host timer
/// chains plus cross-owner deliveries. Returns the execution order.
std::vector<int> facadeExecutionOrder(int shards) {
  sim::Simulator simulator(5);
  if (shards > 1) {
    sim::sharded::ShardedEngineConfig config;
    config.shards = shards;
    config.fieldWidth = 1000.0;
    simulator.enableSharding(config);
  }
  // Four hosts pinned across the stripes.
  std::vector<double> xs = {50.0, 300.0, 550.0, 800.0};
  for (int host = 0; host < 4; ++host) {
    simulator.registerShardHost(sim::hostEventKey(host),
                                [&xs, host] { return xs[host]; });
  }
  std::vector<int> order;
  for (int host = 0; host < 4; ++host) {
    sim::Simulator::HostScope scope(simulator, sim::hostEventKey(host));
    simulator.schedule(1.0 + host * 0.25, [&simulator, &order, host] {
      order.push_back(host);
      // Cross-owner delivery to the host two stripes over.
      const int peer = (host + 2) % 4;
      simulator.scheduleFor(sim::hostEventKey(peer), 0.5,
                            [&order, peer] { order.push_back(100 + peer); });
    });
  }
  simulator.run(10.0);
  return order;
}

TEST(ShardedFacade, ExecutionOrderMatchesTheSerialOracle) {
  const std::vector<int> serial = facadeExecutionOrder(1);
  EXPECT_EQ(facadeExecutionOrder(2), serial);
  EXPECT_EQ(facadeExecutionOrder(4), serial);
  EXPECT_EQ(serial.size(), 8u);
}

TEST(ShardedFacade, CrossShardDeliveriesAreCountedAndHubIsDefault) {
  sim::Simulator simulator(6);
  sim::sharded::ShardedEngineConfig config;
  config.shards = 4;
  config.fieldWidth = 1000.0;
  simulator.enableSharding(config);
  sim::sharded::ShardedEngine* engine = simulator.shardedEngine();
  ASSERT_NE(engine, nullptr);
  EXPECT_EQ(engine->currentShard(), sim::sharded::ShardMap::kHubShard);
  simulator.registerShardHost(sim::hostEventKey(1), [] { return 900.0; });
  int fired = 0;
  // Hub context (shard 0) → host 1's stripe (shard 3): a boundary event.
  simulator.scheduleFor(sim::hostEventKey(1), 1.0, [&fired] { ++fired; });
  simulator.run(2.0);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(engine->crossShardEvents(), 1u);
}

TEST(ShardedFacade, EnableShardingAfterSchedulingIsRejected) {
  sim::Simulator simulator(7);
  simulator.schedule(1.0, [] {});
  sim::sharded::ShardedEngineConfig config;
  config.shards = 2;
  EXPECT_THROW(simulator.enableSharding(config), std::invalid_argument);
}

TEST(ShardedFacade, PerturbedTieOrderMatchesThePerturbedSerialRun) {
  auto perturbedOrder = [](int shards) {
    sim::Simulator simulator(13);
    simulator.perturbTieBreaks();
    if (shards > 1) {
      sim::sharded::ShardedEngineConfig config;
      config.shards = shards;
      simulator.enableSharding(config);
    }
    std::vector<int> order;
    for (int i = 0; i < 32; ++i) {
      simulator.schedule(1.0, [i, &order] { order.push_back(i); });
    }
    simulator.run();
    return order;
  };
  const std::vector<int> serial = perturbedOrder(1);
  EXPECT_EQ(perturbedOrder(4), serial);
  // And the perturbation is actually live (not insertion order).
  std::vector<int> insertion(32);
  for (int i = 0; i < 32; ++i) insertion[static_cast<std::size_t>(i)] = i;
  EXPECT_NE(serial, insertion);
}

// ---------------------------------------------------------------------------
// Windowed conservative mode
// ---------------------------------------------------------------------------

/// PHOLD-style workload: per-shard self-rescheduling timers that
/// periodically hand off to the next shard with delay >= lookahead.
/// Returns per-shard (executions, time-weighted checksum) folded into a
/// vector comparable across worker counts.
std::vector<std::uint64_t> windowedChecksums(int shards, int workers) {
  sim::sharded::ShardedEngineConfig config;
  config.shards = shards;
  config.fieldWidth = 1000.0;
  config.lookaheadSeconds = sim::sharded::conservativeLookahead(
      /*gapMeters=*/0.0, /*propagationSpeedMps=*/3e8,
      /*preambleSeconds=*/192e-6, /*minFrameBytes=*/40, /*bitrateBps=*/2e6);
  sim::sharded::ShardedEngine engine(config);

  struct ShardState {
    std::uint64_t checksum = 0;
    std::uint64_t rng = 0;
  };
  std::vector<ShardState> states(static_cast<std::size_t>(shards));

  struct Timer {
    sim::sharded::ShardedEngine* engine;
    sim::sharded::ShardedEngine::ShardContext* context;
    std::vector<ShardState>* states;
    int hops;
    void operator()() {
      const int shard = context->shard();
      ShardState& state = (*states)[static_cast<std::size_t>(shard)];
      state.rng = state.rng * 6364136223846793005ULL + 1442695040888963407ULL;
      state.checksum ^= state.rng + static_cast<std::uint64_t>(
                                        context->now() * 1e9);
      if (hops <= 0) return;
      const double lookahead = engine->lookaheadSeconds();
      Timer next = *this;
      --next.hops;
      if (state.rng % 4 == 0 && engine->shardCount() > 1) {
        const int target = (shard + 1) % engine->shardCount();
        next.context = &engine->shardContext(target);
        context->postRemote(target, lookahead * (1.0 + (state.rng % 7)),
                            InlineTask(next), "bench/hop");
      } else {
        context->postLocal(lookahead * 0.25 * (1 + (state.rng % 5)),
                           InlineTask(next), "bench/tick");
      }
    }
  };
  static_assert(sizeof(Timer) <= InlineTask::kInlineBytes);

  for (int s = 0; s < shards; ++s) {
    states[static_cast<std::size_t>(s)].rng =
        0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(s + 1);
    for (int i = 0; i < 8; ++i) {
      Timer timer{&engine, &engine.shardContext(s), &states, 200};
      engine.seedWindowed(s, 1e-5 * (i + 1), InlineTask(timer), "bench/seed");
    }
  }
  const sim::sharded::WindowedStats stats = engine.runWindowed(workers, 10.0);
  EXPECT_GT(stats.eventsExecuted, 0u);
  EXPECT_GT(stats.windows, 0u);
  if (shards > 1) {
    EXPECT_GT(stats.remotePosted, 0u);
  }
  std::vector<std::uint64_t> out;
  out.reserve(states.size());
  for (const ShardState& state : states) out.push_back(state.checksum);
  return out;
}

TEST(WindowedEngine, WorkerPoolMatchesInlineExecution) {
  // The window schedule is independent of the worker count: inline
  // (workers=1) and threaded (workers=4) runs must agree bit-for-bit.
  // Under the tsan preset this is also the engine's data-race gate.
  const std::vector<std::uint64_t> inline4 = windowedChecksums(4, 1);
  EXPECT_EQ(windowedChecksums(4, 4), inline4);
  EXPECT_EQ(windowedChecksums(4, 2), inline4);
}

TEST(WindowedEngine, SingleShardDegeneratesCleanly) {
  const std::vector<std::uint64_t> one = windowedChecksums(1, 1);
  ASSERT_EQ(one.size(), 1u);
  EXPECT_NE(one[0], 0u);
}

TEST(WindowedEngine, RemotePostBelowLookaheadIsRejected) {
  sim::sharded::ShardedEngineConfig config;
  config.shards = 2;
  config.lookaheadSeconds = 1.0;
  sim::sharded::ShardedEngine engine(config);
  sim::sharded::ShardedEngine::ShardContext& context = engine.shardContext(0);
  EXPECT_THROW(context.postRemote(1, 0.5, InlineTask([] {})),
               std::invalid_argument);
}

TEST(WindowedEngine, RequiresAPositiveLookahead) {
  sim::sharded::ShardedEngineConfig config;
  config.shards = 2;
  config.lookaheadSeconds = 0.0;
  sim::sharded::ShardedEngine engine(config);
  EXPECT_THROW(engine.runWindowed(1, 1.0), std::invalid_argument);
}

TEST(Lookahead, DerivesFromChannelQuantities) {
  // Paper channel: 2 Mbps, 192 µs preamble. A 40-byte minimum frame
  // serialises in 160 µs; zero gap contributes nothing.
  const double lookahead = sim::sharded::conservativeLookahead(
      0.0, 3e8, 192e-6, 40, 2e6);
  EXPECT_NEAR(lookahead, 192e-6 + 160e-6, 1e-12);
  // A 300 m gap at c adds 1 µs.
  EXPECT_NEAR(sim::sharded::conservativeLookahead(300.0, 3e8, 0.0, 0, 2e6),
              1e-6, 1e-12);
  EXPECT_THROW(sim::sharded::conservativeLookahead(0.0, 0.0, 0.0, 0, 2e6),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Full-scenario oracle parity (GRID / ECGRID / GAF / faulted)
// ---------------------------------------------------------------------------

harness::ScenarioConfig parityBase() {
  harness::ScenarioConfig config;
  config.hostCount = 30;
  config.flowCount = 2;
  config.packetsPerSecondPerFlow = 4.0;
  config.duration = 60.0;
  config.seed = 33;
  config.digestEveryEvents = 1000;
  return config;
}

void expectSameRun(const harness::ScenarioResult& serial,
                   const harness::ScenarioResult& sharded) {
  ASSERT_FALSE(serial.digestTrace.empty());
  // Byte-identical digest traces: same events executed at every sample
  // point, same times, same FNV-1a state digests.
  EXPECT_EQ(serial.digestTrace, sharded.digestTrace);
  EXPECT_EQ(serial.eventsExecuted, sharded.eventsExecuted);
  EXPECT_EQ(serial.packetsSent, sharded.packetsSent);
  EXPECT_EQ(serial.packetsReceived, sharded.packetsReceived);
  EXPECT_EQ(serial.framesTransmitted, sharded.framesTransmitted);
  EXPECT_EQ(serial.macFramesSent, sharded.macFramesSent);
  EXPECT_EQ(serial.pagesSent, sharded.pagesSent);
  EXPECT_EQ(serial.metrics, sharded.metrics);
}

class ShardedOracleParity
    : public ::testing::TestWithParam<harness::ProtocolKind> {};

TEST_P(ShardedOracleParity, DigestTraceMatchesSerialAtFourShards) {
  harness::ScenarioConfig config = parityBase();
  config.protocol = GetParam();
  const harness::ScenarioResult serial = harness::runScenario(config);
  config.shards = 4;
  const harness::ScenarioResult sharded = harness::runScenario(config);
  expectSameRun(serial, sharded);
  EXPECT_EQ(serial.crossShardEvents, 0u);
  EXPECT_GT(sharded.crossShardEvents, 0u);  // boundary traffic existed
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, ShardedOracleParity,
                         ::testing::Values(harness::ProtocolKind::kGrid,
                                           harness::ProtocolKind::kEcgrid,
                                           harness::ProtocolKind::kGaf));

TEST(ShardedOracleParityFaulted, DigestTraceMatchesSerialUnderFaults) {
  harness::ScenarioConfig config = parityBase();
  config.protocol = harness::ProtocolKind::kEcgrid;
  config.fault.channel.kind = fault::ChannelErrorKind::kIid;
  config.fault.channel.lossProbability = 0.05;
  config.fault.hosts.crashes.push_back({4, 10.0, 30.0});
  config.fault.paging.lossProbability = 0.05;
  const harness::ScenarioResult serial = harness::runScenario(config);
  config.shards = 4;
  const harness::ScenarioResult sharded = harness::runScenario(config);
  expectSameRun(serial, sharded);
}

TEST(ShardedScenario, ShardCountInvariance) {
  // 1 vs 2 vs 4 vs 8 shards: byte-identical digest traces, results, and
  // metrics snapshots (engine counters deliberately live outside the
  // registry so this holds exactly).
  harness::ScenarioConfig config = parityBase();
  config.protocol = harness::ProtocolKind::kEcgrid;
  const harness::ScenarioResult reference = harness::runScenario(config);
  for (int shards : {2, 4, 8}) {
    config.shards = shards;
    const harness::ScenarioResult run = harness::runScenario(config);
    expectSameRun(reference, run);
  }
}

TEST(ShardedScenario, TieOrderPerturbationPassesOnTheShardedEngine) {
  // The PR-4 tie-order gate, re-run with the sharded engine underneath:
  // the perturbed sharded run must agree with the perturbed serial run
  // sample-for-sample, and the final digest must match the unperturbed
  // one (no order dependence introduced by sharding).
  harness::ScenarioConfig config = parityBase();
  config.protocol = harness::ProtocolKind::kEcgrid;
  const harness::ScenarioResult plain = harness::runScenario(config);
  config.perturbTieBreak = true;
  const harness::ScenarioResult perturbedSerial = harness::runScenario(config);
  config.shards = 4;
  const harness::ScenarioResult perturbedSharded =
      harness::runScenario(config);
  EXPECT_EQ(perturbedSerial.digestTrace, perturbedSharded.digestTrace);
  ASSERT_FALSE(plain.digestTrace.empty());
  EXPECT_EQ(plain.digestTrace.back().digest,
            perturbedSharded.digestTrace.back().digest);
}

TEST(ShardedScenario, MobilityMigratesHostsAcrossShardBoundaries) {
  harness::ScenarioConfig config = parityBase();
  config.protocol = harness::ProtocolKind::kEcgrid;
  config.maxSpeed = 20.0;  // fast hosts: stripe crossings are certain
  config.duration = 120.0;
  config.digestEveryEvents = 0;
  config.shards = 4;
  const harness::ScenarioResult result = harness::runScenario(config);
  EXPECT_GT(result.shardMigrations, 0u);
  EXPECT_GT(result.crossShardEvents, 0u);
}

TEST(ShardedScenario, SerialPathReportsNoShardActivity) {
  harness::ScenarioConfig config = parityBase();
  config.duration = 20.0;
  config.digestEveryEvents = 0;
  const harness::ScenarioResult result = harness::runScenario(config);
  EXPECT_EQ(result.crossShardEvents, 0u);
  EXPECT_EQ(result.shardMigrations, 0u);
}

}  // namespace
}  // namespace ecgrid
